(* omega-fuzz: the resource-safety fuzzing driver.

     omega-fuzz --seed 42 --iters 20000
     omega-fuzz --seconds 30 --corpus test/corpus

   Feeds a seeded stream of structure-aware inputs ([Datagen.Fuzz]) at the
   three parsers and, for queries that parse, at the full engine under
   tight governor budgets.  The contract under test:

   - every parser returns a typed result ([Ok]/[Error]/[Parse_error]) —
     never an escaping exception and never [Stack_overflow];
   - admitted queries respect their budgets end-to-end: evaluation
     terminates with a typed [Engine.termination], a rejected query never
     touches the graph ([edges_scanned = 0]), and the push count stays
     within the tuple budget plus bounded overshoot.

   Any violation is a crash: the offending input is written to the corpus
   directory (replayed forever after by [test/test_fuzz.ml]) and the
   process exits non-zero.  Each iteration derives its own RNG from
   [seed + iter], so a single failing iteration reproduces directly. *)

open Cmdliner
module Fuzz = Datagen.Fuzz

(* A small fixed graph whose node and edge labels overlap the generator's
   alphabets, so fuzzed queries actually traverse something. *)
let build_graph () =
  let g = Graphstore.Graph.create () in
  let k = Ontology.create (Graphstore.Graph.interner g) in
  let n = 12 in
  let nodes = Array.init n (fun i -> Graphstore.Graph.add_node g (Printf.sprintf "N%d" i)) in
  let consts = Array.map (Graphstore.Graph.add_node g) [| "C0"; "UK"; "Work Episode" |] in
  let labels = [| "a"; "b"; "c"; "knows"; "worksAt"; "livesIn"; "type"; "p'"; "q0"; "_" |] in
  Array.iteri
    (fun i src ->
      Array.iteri (fun j l -> Graphstore.Graph.add_edge_s g src l nodes.((i + j + 1) mod n)) labels)
    nodes;
  Array.iteri
    (fun i c ->
      Graphstore.Graph.add_edge_s g c "type" nodes.(i);
      Graphstore.Graph.add_edge_s g nodes.(i + 1) "knows" c)
    consts;
  Ontology.add_subclass k "C0" "UK";
  Ontology.add_subproperty k "a" "b";
  Ontology.add_domain k "knows" "C0";
  Ontology.add_range k "knows" "UK";
  Graphstore.Graph.freeze g;
  (g, k)

let tuple_budget = 5_000

(* Governor polling is cooperative: a trip is honoured at the next poll,
   so pushes can overshoot the budget by one frontier expansion.  The
   fixture graph's fan-out bounds that well under this slack. *)
let push_slack = 10_000

let fuzz_options =
  {
    Core.Options.default with
    (* OMEGA_DOMAINS (the CI multi-core job sets 4) runs every generated
       query through the parallel evaluator, fuzzing the shard workers,
       the ranked merge and the governor's shared-trip path *)
    Core.Options.domains = Core.Options.domains_from_env ();
    Core.Options.max_tuples = Some tuple_budget;
    max_answers = Some 64;
    max_memory_bytes = Some (256 * 1024);
    (* tight enough that a fat generated regex occasionally trips them, so
       the admission path gets fuzzed too *)
    max_states = Some 24;
    max_product_est = Some 300;
  }

exception Violation of string

(* The in-process query server the Server_case frames are fed to: the
   handle_request seam must return exactly one typed JSON response per
   frame — never an escaping exception — and the crash-only backstop
   (code 1) must stay cold: an internal exception that the seam had to
   catch is itself a finding. *)
let make_daemon graph ontology =
  Server.Daemon.create ~graph ~ontology
    {
      Server.Daemon.default_config with
      Server.Daemon.options = fuzz_options;
      max_inflight = 4;
      tenant_inflight = 2;
      default_limit = 20;
    }

let check_server_response line resp =
  match resp with
  | None ->
    if String.trim line <> "" then
      raise (Violation "handle_request returned no response for a non-blank frame")
  | Some resp -> (
    match Obs.Json.parse resp with
    | Error msg -> raise (Violation (Printf.sprintf "response is not valid JSON: %s" msg))
    | Ok j -> (
      match Server.Protocol.response_code j with
      | None -> raise (Violation "response has no integer \"code\" field")
      | Some 1 -> raise (Violation "crash-only backstop fired: an internal exception escaped")
      | Some c when c >= 0 && c <= 7 -> ()
      | Some c -> raise (Violation (Printf.sprintf "response code %d outside the taxonomy" c))))

let run_query graph ontology q =
  match Core.Engine.run ~graph ~ontology ~options:fuzz_options ~limit:20 q with
  | exception Invalid_argument _ -> `Invalid (* typed semantic rejection (Query.validate) *)
  | outcome -> (
    let stats = outcome.Core.Engine.stats in
    if stats.Core.Exec_stats.pushes > tuple_budget + push_slack then
      raise
        (Violation
           (Printf.sprintf "tuple budget not respected: %d pushes against a budget of %d"
              stats.Core.Exec_stats.pushes tuple_budget));
    match outcome.Core.Engine.termination with
    | Core.Engine.Rejected _ ->
      if outcome.Core.Engine.answers <> [] then raise (Violation "rejected query produced answers");
      if stats.Core.Exec_stats.edges_scanned <> 0 || stats.Core.Exec_stats.pushes <> 0 then
        raise (Violation "rejected query touched the graph");
      `Rejected
    | Core.Engine.Completed | Core.Engine.Exhausted _ -> `Ran)

type tally = {
  mutable parsed : int;
  mutable refused : int;  (** typed parse/validation errors — the expected outcome for garbage *)
  mutable ran : int;
  mutable rejected : int;  (** turned away by admission control *)
}

let check_case graph ontology daemon tally = function
  | Fuzz.Server_case s -> (
    let resp = Server.Daemon.handle_request daemon s in
    check_server_response s resp;
    match
      Option.bind resp (fun r -> Option.bind (Result.to_option (Obs.Json.parse r)) Server.Protocol.response_code)
    with
    | Some 0 | Some 3 | Some 4 | Some 5 -> tally.ran <- tally.ran + 1
    | Some 6 | Some 7 -> tally.rejected <- tally.rejected + 1
    | _ -> tally.refused <- tally.refused + 1)
  | Fuzz.Regex_case s -> (
    match Rpq_regex.Parser.parse_result s with
    | Ok _ -> tally.parsed <- tally.parsed + 1
    | Error _ -> tally.refused <- tally.refused + 1)
  | Fuzz.Query_case s -> (
    match Core.Query_parser.parse_result s with
    | Error _ -> tally.refused <- tally.refused + 1
    | Ok q -> (
      tally.parsed <- tally.parsed + 1;
      match run_query graph ontology q with
      | `Ran -> tally.ran <- tally.ran + 1
      | `Rejected -> tally.rejected <- tally.rejected + 1
      | `Invalid -> tally.refused <- tally.refused + 1))
  | Fuzz.Nt_case s ->
    (* lenient must always salvage; strict must fail typed or succeed *)
    let (_ : (Graphstore.Graph.t * Ontology.t) * Ntriples.Nt.report) =
      Ntriples.Nt.read_string_report ~lenient:true s
    in
    (match Ntriples.Nt.read_string_report ~lenient:false s with
    | _ -> tally.parsed <- tally.parsed + 1
    | exception Ntriples.Nt.Parse_error _ -> tally.refused <- tally.refused + 1)

let save_crasher corpus case seed iter =
  match corpus with
  | None -> None
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let ext = match case with Fuzz.Nt_case _ -> "nt" | _ -> "txt" in
    let path = Filename.concat dir (Printf.sprintf "%s_seed%d_i%d.%s" (Fuzz.case_label case) seed iter ext) in
    let oc = open_out_bin path in
    output_string oc (Fuzz.case_input case);
    close_out oc;
    Some path

let truncate_for_display s =
  if String.length s <= 200 then String.escaped s
  else String.escaped (String.sub s 0 200) ^ Printf.sprintf "... (%d bytes)" (String.length s)

let run_fuzz seed iters seconds corpus verbose =
  let graph, ontology = build_graph () in
  let daemon = make_daemon graph ontology in
  let t0 = Unix.gettimeofday () in
  let deadline = if seconds > 0. then Some (t0 +. seconds) else None in
  let tally = { parsed = 0; refused = 0; ran = 0; rejected = 0 } in
  let crashes = ref 0 in
  let iter = ref 0 in
  let expired () =
    match deadline with None -> false | Some d -> Unix.gettimeofday () > d
  in
  while !iter < iters && not (expired ()) do
    (* per-iteration rng: [seed + iter] reproduces one case in isolation *)
    let rng = Datagen.Rng.create (seed + !iter) in
    let case = Fuzz.case rng in
    if verbose then
      Printf.printf "[%d] %s: %s\n%!" !iter (Fuzz.case_label case)
        (truncate_for_display (Fuzz.case_input case));
    (match check_case graph ontology daemon tally case with
    | () -> ()
    | exception e ->
      incr crashes;
      Printf.eprintf "CRASH at seed=%d iter=%d (%s parser): %s\n  input: %s\n" seed !iter
        (Fuzz.case_label case) (Printexc.to_string e)
        (truncate_for_display (Fuzz.case_input case));
      (match save_crasher corpus case seed !iter with
      | Some path -> Printf.eprintf "  written to %s (add it to the replay corpus)\n" path
      | None -> ()));
    incr iter
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf
    "fuzzed %d input(s) in %.1fs (seed %d): %d parsed, %d refused (typed), %d queries ran under \
     budget, %d rejected by admission, %d crash(es)\n"
    !iter dt seed tally.parsed tally.refused tally.ran tally.rejected !crashes;
  if !crashes > 0 then 1 else 0

let cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"INT" ~doc:"Base RNG seed (iteration $(i,i) uses seed + $(i,i)).") in
  let iters =
    Arg.(value & opt int 10_000 & info [ "iters" ] ~docv:"N" ~doc:"Maximum number of fuzz inputs.")
  in
  let seconds =
    Arg.(
      value & opt float 0.
      & info [ "seconds" ] ~docv:"S" ~doc:"Wall-clock bound; 0 (default) means $(b,--iters) alone decides.")
  in
  let corpus =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Directory to write crashing inputs to (created if missing).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every input before feeding it.") in
  Cmd.v
    (Cmd.info "omega-fuzz" ~version:"1.0.0"
       ~doc:"Fuzz the omega parsers and engine: typed errors only, budgets respected, no escaping exceptions.")
    Term.(const run_fuzz $ seed $ iters $ seconds $ corpus $ verbose)

let () = exit (Cmd.eval' cmd)
