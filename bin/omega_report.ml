(* Aggregate query-observatory audit logs (omega --audit / OMEGA_AUDIT)
   into a report: per-class latency percentiles, termination breakdown,
   admission accuracy, slowest queries, shard imbalance — and an old-vs-new
   regression comparison.

     omega_report audit.jsonl
     omega_report --json --top 10 a.jsonl b.jsonl
     omega_report --compare baseline.jsonl current.jsonl
*)

open Cmdliner

let load_all paths =
  List.concat_map
    (fun path ->
      match Obs.Audit.load path with
      | Error msg ->
        Printf.eprintf "%s: %s\n" path msg;
        exit 2
      | Ok (records, skipped) ->
        if skipped > 0 then
          Printf.eprintf "%s: skipped %d malformed line(s) (kept %d records)\n" path skipped
            (List.length records);
        records)
    paths

let logs_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"LOG" ~doc:"Audit log(s) in JSONL format, concatenated before aggregation.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")

let top_arg =
  Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc:"Rows in the slowest-queries table.")

let compare_arg =
  Arg.(
    value
    & opt (some (pair ~sep:',' string string)) None
    & info [ "compare" ] ~docv:"OLD,NEW"
        ~doc:
          "Regression view: aggregate the $(b,OLD) and $(b,NEW) audit logs separately and report \
           per-class p50/p99 wall-latency deltas and termination shifts.  Positional logs are \
           ignored in this mode.")

let flight_arg =
  Arg.(
    value & opt (some string) None
    & info [ "flight" ] ~docv:"DUMP"
        ~doc:
          "Postmortem view of a flight-recorder dump (omega query --flight / \\$OMEGA_FLIGHT): \
           reconstruct the interleaving from the per-domain rings, re-validate the sealed-bound \
           invariants, and localise the first violating event with its surrounding window.  \
           Combinable with positional audit logs; exit code 7 if the dump violates an invariant.")

let run logs json top compare flight =
  match compare with
  | Some (old_path, new_path) ->
    let old_ = Obs.Report.build ~top (load_all [ old_path ]) in
    let new_ = Obs.Report.build ~top (load_all [ new_path ]) in
    if json then print_endline (Obs.Json.to_string (Obs.Report.compare_json old_ new_))
    else Format.printf "%a" Obs.Report.pp_compare (old_, new_)
  | None ->
    if logs = [] && flight = None then begin
      Printf.eprintf "omega_report: no audit log or flight dump given (see --help)\n";
      exit 2
    end;
    let flight_report =
      match flight with
      | None -> None
      | Some path -> (
        match Obs.Replay.load path with
        | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 2
        | Ok r -> Some r)
    in
    if json then begin
      let audit_json =
        if logs = [] then []
        else
          match Obs.Report.to_json (Obs.Report.build ~top (load_all logs)) with
          | Obs.Json.Obj fields -> fields
          | j -> [ ("report", j) ]
      in
      let flight_json =
        match flight_report with None -> [] | Some r -> [ ("flight", Obs.Replay.to_json r) ]
      in
      print_endline (Obs.Json.to_string (Obs.Json.Obj (audit_json @ flight_json)))
    end
    else begin
      if logs <> [] then Format.printf "%a" Obs.Report.pp (Obs.Report.build ~top (load_all logs));
      match flight_report with
      | None -> ()
      | Some r ->
        if logs <> [] then Format.printf "@.";
        Format.printf "%a" Obs.Replay.pp r
    end;
    if (match flight_report with Some r -> not (Obs.Replay.ok r) | None -> false) then exit 7

let () =
  let doc = "aggregate omega audit logs into a latency/termination/admission report" in
  exit
    (Cmd.eval
       (Cmd.v (Cmd.info "omega_report" ~version:"1.0.0" ~doc)
          Term.(const run $ logs_arg $ json_arg $ top_arg $ compare_arg $ flight_arg)))
