(* Aggregate query-observatory audit logs (omega --audit / OMEGA_AUDIT)
   into a report: per-class latency percentiles, termination breakdown,
   admission accuracy, slowest queries, shard imbalance — and an old-vs-new
   regression comparison.

     omega_report audit.jsonl
     omega_report --json --top 10 a.jsonl b.jsonl
     omega_report --compare baseline.jsonl current.jsonl
*)

open Cmdliner

let load_all paths =
  List.concat_map
    (fun path ->
      match Obs.Audit.load path with
      | Error msg ->
        Printf.eprintf "%s: %s\n" path msg;
        exit 2
      | Ok (records, skipped) ->
        if skipped > 0 then
          Printf.eprintf "%s: skipped %d malformed line(s) (kept %d records)\n" path skipped
            (List.length records);
        records)
    paths

let logs_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"LOG" ~doc:"Audit log(s) in JSONL format, concatenated before aggregation.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")

let top_arg =
  Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc:"Rows in the slowest-queries table.")

let compare_arg =
  Arg.(
    value
    & opt (some (pair ~sep:',' string string)) None
    & info [ "compare" ] ~docv:"OLD,NEW"
        ~doc:
          "Regression view: aggregate the $(b,OLD) and $(b,NEW) audit logs separately and report \
           per-class p50/p99 wall-latency deltas and termination shifts.  Positional logs are \
           ignored in this mode.")

let run logs json top compare =
  match compare with
  | Some (old_path, new_path) ->
    let old_ = Obs.Report.build ~top (load_all [ old_path ]) in
    let new_ = Obs.Report.build ~top (load_all [ new_path ]) in
    if json then print_endline (Obs.Json.to_string (Obs.Report.compare_json old_ new_))
    else Format.printf "%a" Obs.Report.pp_compare (old_, new_)
  | None ->
    if logs = [] then begin
      Printf.eprintf "omega_report: no audit log given (see --help)\n";
      exit 2
    end;
    let report = Obs.Report.build ~top (load_all logs) in
    if json then print_endline (Obs.Json.to_string (Obs.Report.to_json report))
    else Format.printf "%a" Obs.Report.pp report

let () =
  let doc = "aggregate omega audit logs into a latency/termination/admission report" in
  exit
    (Cmd.eval
       (Cmd.v (Cmd.info "omega_report" ~version:"1.0.0" ~doc)
          Term.(const run $ logs_arg $ json_arg $ top_arg $ compare_arg)))
