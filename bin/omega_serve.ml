(* omega_serve: the always-on query daemon (and its line client).

   `run` serves the line-delimited JSON protocol of Server.Protocol over a
   Unix-domain socket (or stdio for tests/pipelines): crash-only request
   isolation, per-tenant overload shedding, SIGTERM/SIGINT graceful drain,
   SIGHUP audit-log rotation.  `call` is the matching client: one request
   line in, one response line out, exit code = the response's code — the
   same taxonomy as `omega query`. *)

open Cmdliner

let load_dataset ?(lenient = false) path =
  match Ntriples.Nt.load_report ~lenient path with
  | (graph, ontology), report ->
    if report.Ntriples.Nt.malformed > 0 then
      Printf.eprintf "%s: skipped %d malformed line(s) (kept %d triples)\n" path
        report.Ntriples.Nt.malformed report.Ntriples.Nt.triples;
    Graphstore.Graph.freeze graph;
    (graph, ontology)
  | exception Ntriples.Nt.Parse_error (msg, line) ->
    Printf.eprintf "%s:%d: %s (rerun with --lenient to skip malformed lines)\n" path line msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2

(* --- run ------------------------------------------------------------- *)

let run_cmd =
  let data =
    Arg.(
      required
      & opt (some string) None
      & info [ "data" ] ~docv:"FILE" ~doc:"N-Triples file to serve queries against.")
  in
  let lenient = Arg.(value & flag & info [ "lenient" ] ~doc:"Skip malformed triples on load.") in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path to listen on.")
  in
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:"Serve one session over stdin/stdout instead of a socket (tests, pipelines).")
  in
  let audit =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit" ] ~docv:"FILE"
          ~doc:
            "Append one audit record per request to FILE (JSONL; $(b,OMEGA_AUDIT) is the \
             default).  SIGHUP reopens the file, so logrotate works without a restart.")
  in
  let max_inflight =
    Arg.(
      value & opt int 8
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Global cap on concurrently evaluating requests; beyond it requests are shed.")
  in
  let tenant_inflight =
    Arg.(
      value & opt int 2
      & info [ "tenant-inflight" ] ~docv:"N"
          ~doc:"Per-tenant share of the in-flight cap (fair admission).")
  in
  let retry_after_ms =
    Arg.(
      value & opt int 50
      & info [ "retry-after-ms" ] ~docv:"MS" ~doc:"Backpressure hint returned on shed responses.")
  in
  let hard_timeout_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "hard-timeout-ms" ] ~docv:"MS"
          ~doc:
            "The stuck-query reaper: cancel any request running longer than MS, whatever budgets \
             it asked for.")
  in
  let drain_grace_ms =
    Arg.(
      value & opt int 500
      & info [ "drain-grace-ms" ] ~docv:"MS"
          ~doc:"How long a drain waits for cancelled in-flight requests before exiting.")
  in
  let max_line_bytes =
    Arg.(
      value
      & opt int (1024 * 1024)
      & info [ "max-line-bytes" ] ~docv:"N"
          ~doc:"Request-frame cap: longer lines are rejected without being materialised.")
  in
  let default_limit =
    Arg.(
      value & opt int 100
      & info [ "limit" ] ~docv:"N" ~doc:"Answer limit when a request names none.")
  in
  let max_limit =
    Arg.(
      value & opt int 1000
      & info [ "max-limit" ] ~docv:"N" ~doc:"Ceiling on any request's answer limit.")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Default per-query deadline (requests can only tighten it).")
  in
  let max_tuples =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-tuples" ] ~docv:"N" ~doc:"Default per-query tuple budget (the memory stand-in).")
  in
  let max_states =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-states" ] ~docv:"N"
          ~doc:"Admission control: reject queries compiling past this many automaton states.")
  in
  let flex_timeout_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "flex-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Tighter default deadline for flexible-operator queries (any APPROX/RELAX conjunct) — \
             the expensive class pays for itself.")
  in
  let flex_max_tuples =
    Arg.(
      value
      & opt (some int) None
      & info [ "flex-max-tuples" ] ~docv:"N"
          ~doc:"Tighter default tuple budget for flexible-operator queries.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N" ~doc:"OCaml domains per query evaluation (1-64).")
  in
  let decompose =
    Arg.(value & flag & info [ "decompose" ] ~doc:"Enable alternation decomposition (§4.3).")
  in
  let distance_aware =
    Arg.(value & flag & info [ "distance-aware" ] ~doc:"Enable distance-aware retrieval (§4.3).")
  in
  let debug_ops =
    Arg.(
      value & flag
      & info [ "enable-debug-ops" ]
          ~doc:
            "Accept the $(b,sleep) drill op (occupies an admission slot in cancellable naps) — \
             how the chaos suite and CI provoke deterministic sheds and drain cuts.  Off in \
             production.")
  in
  let failpoints =
    Arg.(
      value
      & opt (some string) None
      & info [ "failpoints" ] ~docv:"SPEC"
          ~doc:
            "Arm fault-injection points, e.g. $(b,read=0.1,write=0.1#42) \
             ($(b,OMEGA_FAILPOINTS) is the default).  Server faults abort one connection, never \
             the daemon.")
  in
  let run data lenient socket stdio audit max_inflight tenant_inflight retry_after_ms
      hard_timeout_ms drain_grace_ms max_line_bytes default_limit max_limit timeout_ms max_tuples
      max_states flex_timeout_ms flex_max_tuples domains decompose distance_aware debug_ops
      failpoints =
    if (not stdio) && socket = None then begin
      Printf.eprintf "omega_serve run: need --socket PATH (or --stdio)\n";
      exit 2
    end;
    Obs.Clock.install (fun () -> int_of_float (1e9 *. Unix.gettimeofday ()));
    (match (match audit with Some _ -> audit | None -> Sys.getenv_opt Obs.Audit.env_var) with
    | None -> ()
    | Some path -> (
      try Obs.Audit.enable path
      with Sys_error msg ->
        Printf.eprintf "cannot open audit log: %s\n" msg;
        exit 2));
    (match
       ( (match failpoints with
         | Some spec -> Core.Failpoints.arm_spec spec |> Result.map (fun () -> true)
         | None -> Core.Failpoints.arm_from_env ()),
         () )
     with
    | Ok _, () -> ()
    | Error msg, () ->
      Printf.eprintf "bad failpoint spec: %s\n" msg;
      exit 2);
    let graph, ontology = load_dataset ~lenient data in
    let options =
      {
        Core.Options.default with
        Core.Options.timeout_ns = Option.map (fun ms -> ms * 1_000_000) timeout_ms;
        max_tuples;
        max_states;
        decompose;
        distance_aware;
        domains = (if domains >= 1 && domains <= 64 then domains else 1);
      }
    in
    let config =
      {
        Server.Daemon.max_line_bytes;
        max_inflight;
        tenant_inflight;
        retry_after_ms;
        hard_timeout_ms;
        drain_grace_ms;
        max_limit;
        default_limit;
        options;
        flex_timeout_ms;
        flex_max_tuples;
        debug_ops;
      }
    in
    let t = Server.Daemon.create ~graph ~ontology config in
    let on_drain _ = Server.Daemon.request_drain t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_drain);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_drain);
    (try Sys.set_signal Sys.sighup (Sys.Signal_handle (fun _ -> Server.Daemon.request_audit_reopen t))
     with Invalid_argument _ -> ());
    if stdio then Server.Daemon.serve_stdio t
    else begin
      let socket = Option.get socket in
      Printf.eprintf "omega_serve: listening on %s\n%!" socket;
      Server.Daemon.run_unix t ~socket;
      let served, shed, errors = Server.Daemon.counts t in
      Printf.eprintf "omega_serve: drained (served %d, shed %d, errors %d)\n%!" served shed errors
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run the always-on query daemon (Unix socket or stdio).")
    Term.(
      const run $ data $ lenient $ socket $ stdio $ audit $ max_inflight $ tenant_inflight
      $ retry_after_ms $ hard_timeout_ms $ drain_grace_ms $ max_line_bytes $ default_limit
      $ max_limit $ timeout_ms $ max_tuples $ max_states $ flex_timeout_ms $ flex_max_tuples
      $ domains $ decompose $ distance_aware $ debug_ops $ failpoints)

(* --- call ------------------------------------------------------------ *)

let call_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"The daemon's Unix-domain socket.")
  in
  let request =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"REQUEST" ~doc:"Request lines (JSON objects); stdin when none are given.")
  in
  let run socket requests =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX socket)
     with Unix.Unix_error (e, _, _) ->
       Printf.eprintf "cannot connect to %s: %s\n" socket (Unix.error_message e);
       exit 1);
    let ic = Unix.in_channel_of_descr fd in
    let send line =
      let b = Bytes.of_string (line ^ "\n") in
      let n = Bytes.length b in
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write fd b !off (n - !off)
      done
    in
    let last_code = ref 0 in
    let roundtrip line =
      if String.trim line <> "" then begin
        send line;
        match input_line ic with
        | resp ->
          print_endline resp;
          last_code :=
            Option.value ~default:1
              (Option.bind (Result.to_option (Obs.Json.parse resp)) Server.Protocol.response_code)
        | exception End_of_file ->
          Printf.eprintf "connection closed before a response arrived\n";
          exit 1
      end
    in
    (match requests with
    | [] -> ( try
                while true do
                  roundtrip (input_line stdin)
                done
              with End_of_file -> ())
    | lines -> List.iter roundtrip lines);
    (try Unix.close fd with Unix.Unix_error _ -> ());
    exit !last_code
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:
         "Send request lines to a running daemon and print the response lines; the exit code is \
          the last response's code (the CLI taxonomy: 0 ok, 2 error, 3/4/5 partial, 6 rejected, \
          7 shed).")
    Term.(const run $ socket $ request)

let () =
  let doc = "always-on flexible-RPQ query server (crash-only, shedding, graceful drain)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "omega_serve" ~version:"1.0.0" ~doc) [ run_cmd; call_cmd ]))
