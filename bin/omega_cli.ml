(* The omega command-line tool: generate workloads, inspect graphs, and run
   CRP queries with APPROX/RELAX against a triple file.

     omega generate --dataset l4all --scale L2 -o l2.nt
     omega stats -d l2.nt
     omega query -d l2.nt --limit 10 "(?X) <- APPROX (Librarians, type-, ?X)"
*)

open Cmdliner

let load_dataset ?(lenient = false) path =
  match Ntriples.Nt.load_report ~lenient path with
  | (graph, ontology), report ->
    if report.Ntriples.Nt.malformed > 0 then begin
      Printf.eprintf "%s: skipped %d malformed line(s) (kept %d triples):\n" path
        report.Ntriples.Nt.malformed report.Ntriples.Nt.triples;
      List.iter
        (fun (msg, line) -> Printf.eprintf "  %s:%d: %s\n" path line msg)
        report.Ntriples.Nt.errors
    end;
    (* loading is over: freeze the store so queries run on the CSR index *)
    Graphstore.Graph.freeze graph;
    (graph, ontology)
  | exception Ntriples.Nt.Parse_error (msg, line) ->
    Printf.eprintf "%s:%d: %s (rerun with --lenient to skip malformed lines)\n" path line msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2

(* --- generate ------------------------------------------------------- *)

let generate_cmd =
  let dataset =
    Arg.(
      required
      & opt (some (enum [ ("l4all", `L4all); ("yago", `Yago) ])) None
      & info [ "dataset" ] ~docv:"NAME" ~doc:"Workload to generate: $(b,l4all) or $(b,yago).")
  in
  let scale =
    Arg.(
      value & opt string "L1"
      & info [ "scale" ] ~docv:"SCALE"
          ~doc:
            "For l4all: one of L1, L2, L3, L4 (timeline counts 143/1,201/5,221/11,416) or an \
             explicit number of timelines. For yago: a float scale factor (1.0 = full YAGO size).")
  in
  let seed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"INT" ~doc:"Generator seed.")
  in
  let output =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output triple file.")
  in
  let run dataset scale seed output =
    let graph, ontology =
      match dataset with
      | `L4all -> (
        let named =
          List.find_opt (fun s -> Datagen.L4all.scale_name s = scale) Datagen.L4all.all_scales
        in
        match named with
        | Some s -> Datagen.L4all.generate ?seed ~timelines:(Datagen.L4all.timelines s) ()
        | None -> (
          match int_of_string_opt scale with
          | Some n -> Datagen.L4all.generate ?seed ~timelines:n ()
          | None ->
            Printf.eprintf "bad l4all scale %S (expected L1..L4 or a timeline count)\n" scale;
            exit 2))
      | `Yago ->
        let params =
          match float_of_string_opt scale with
          | Some f when scale <> "L1" ->
            { Datagen.Yago_sim.default_params with Datagen.Yago_sim.scale = f }
          | _ -> Datagen.Yago_sim.default_params
        in
        let params =
          match seed with
          | Some s -> { params with Datagen.Yago_sim.seed = s }
          | None -> params
        in
        Datagen.Yago_sim.generate ~params ()
    in
    Ntriples.Nt.save output ~graph ~ontology;
    let s = Graphstore.Graph.stats graph in
    Printf.printf "wrote %s: %d nodes, %d edges, %d labels\n" output s.Graphstore.Graph.nodes
      s.Graphstore.Graph.edges s.Graphstore.Graph.distinct_labels
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic workload graph (L4All timelines or YAGO-shaped).")
    Term.(const run $ dataset $ scale $ seed $ output)

(* --- stats ---------------------------------------------------------- *)

let data_arg =
  Arg.(required & opt (some string) None & info [ "d"; "data" ] ~docv:"FILE" ~doc:"Triple file to load.")

let lenient_arg =
  Arg.(
    value & flag
    & info [ "lenient" ]
        ~doc:"Skip malformed triple lines (reporting how many) instead of aborting the load.")

let stats_cmd =
  let run data lenient =
    let graph, ontology = load_dataset ~lenient data in
    Format.printf "graph: %a@." Graphstore.Graph.pp_stats (Graphstore.Graph.stats graph);
    let interner = Graphstore.Graph.interner graph in
    List.iter
      (fun root ->
        Format.printf "class hierarchy: %a@."
          (Ontology.pp_hierarchy_stats interner)
          (Ontology.class_hierarchy_stats ontology root))
      (Ontology.class_roots ontology);
    List.iter
      (fun root ->
        Format.printf "property hierarchy: %a@."
          (Ontology.pp_hierarchy_stats interner)
          (Ontology.property_hierarchy_stats ontology root))
      (Ontology.property_roots ontology)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print graph and ontology statistics.") Term.(const run $ data_arg $ lenient_arg)

(* --- saturate ------------------------------------------------------- *)

let saturate_cmd =
  let output =
    Arg.(
      required & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to write the saturated triple file.")
  in
  let no_subclass = Arg.(value & flag & info [ "no-subclass" ] ~doc:"Skip rdfs9 (subclass).") in
  let no_subproperty =
    Arg.(value & flag & info [ "no-subproperty" ] ~doc:"Skip rdfs7 (subproperty).")
  in
  let no_domain_range =
    Arg.(value & flag & info [ "no-domain-range" ] ~doc:"Skip rdfs2/rdfs3 (domain/range).")
  in
  let run data lenient output no_subclass no_subproperty no_domain_range =
    let graph, ontology = load_dataset ~lenient data in
    let before = Graphstore.Graph.n_edges graph in
    let stats =
      Rdfs.saturate ~subclass:(not no_subclass) ~subproperty:(not no_subproperty)
        ~domain_range:(not no_domain_range) graph ontology
    in
    Ntriples.Nt.save output ~graph ~ontology;
    Format.printf "saturated %d -> %d edges (%a); wrote %s@." before
      (Graphstore.Graph.n_edges graph)
      Rdfs.pp_stats stats output
  in
  Cmd.v
    (Cmd.info "saturate"
       ~doc:
         "Materialise the RDFS entailments (rdfs2/3/7/9) of a triple file into the data graph — \
          the space-hungry alternative to query-time RELAX.")
    Term.(const run $ data_arg $ lenient_arg $ output $ no_subclass $ no_subproperty $ no_domain_range)

(* --- query ---------------------------------------------------------- *)

let query_cmd =
  let query =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"The CRP query text.")
  in
  let limit =
    Arg.(value & opt int 100 & info [ "limit" ] ~docv:"N" ~doc:"Maximum number of answers (ranked).")
  in
  let distance_aware =
    Arg.(value & flag & info [ "distance-aware" ] ~doc:"Enable distance-aware retrieval (§4.3).")
  in
  let decompose =
    Arg.(value & flag & info [ "decompose" ] ~doc:"Enable alternation-by-disjunction decomposition (§4.3).")
  in
  let domains =
    Arg.(
      value
      & opt int (Core.Options.domains_from_env ())
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Evaluate parallelisable conjuncts on N OCaml domains (default 1, or \
             \\$OMEGA_DOMAINS).  $(b,(?X, R, ?Y)) conjuncts partition their seed vertices across \
             the pool; constant-seeded decomposed conjuncts partition their alternation \
             sub-automata.  With N=1 the sequential code path runs unchanged; with N>1 the \
             answer stream is the same answer set in non-decreasing distance with a \
             deterministic tie-break, identical at any domain count.")
  in
  let max_tuples =
    Arg.(
      value & opt (some int) None
      & info [ "max-tuples"; "budget" ] ~docv:"N"
          ~doc:
            "Stop after N tuples have been queued (memory stand-in; cumulative over conjuncts, \
             joins and distance-aware restarts).  Answers emitted so far are kept.")
  in
  let timeout_ms =
    Arg.(
      value & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock deadline for the whole query.  On expiry the answers found so far are \
             printed (a valid ranked prefix) and the exit code is 3.")
  in
  let max_answers =
    Arg.(
      value & opt (some int) None
      & info [ "max-answers" ] ~docv:"N"
          ~doc:"Stop cleanly after N answers (like $(b,--limit), but reported as a governor trip).")
  in
  let max_memory_mb =
    Arg.(
      value & opt (some int) None
      & info [ "max-memory-mb" ] ~docv:"MB"
          ~doc:
            "Memory budget for the evaluation's dominant structures (queues, visited sets, \
             provenance, join state), tracked by the engine's cost model.  Under pressure the \
             engine degrades gracefully — drops provenance arenas, then declines ψ window growth \
             — before terminating with exit code 4; the answers printed are still a correct \
             ranked prefix.")
  in
  let max_states =
    Arg.(
      value & opt (some int) None
      & info [ "max-states" ] ~docv:"N"
          ~doc:
            "Admission control: reject the query (exit code 6, before touching the graph) if any \
             conjunct's automaton, after APPROX/RELAX expansion, has more than N states.")
  in
  let max_product_est =
    Arg.(
      value & opt (some int) None
      & info [ "max-product-est" ] ~docv:"N"
          ~doc:
            "Admission control: reject the query (exit code 6) if the estimated product-automaton \
             frontier — automaton states times estimated seed nodes, summed over conjuncts — \
             exceeds N.")
  in
  let failpoints =
    Arg.(
      value & opt (some string) None
      & info [ "failpoints" ] ~docv:"SPEC"
          ~doc:
            "Arm fault-injection points, e.g. $(b,scan=0.01,join=0.05#42) (point=probability, \
             $(b,#seed) for determinism; points: scan, seed, join, onto).  Also read from \
             \\$OMEGA_FAILPOINTS.  Injected faults terminate the query gracefully with exit code 5.")
  in
  let edit_cost =
    Arg.(value & opt int 1 & info [ "edit-cost" ] ~docv:"C" ~doc:"Cost of each APPROX edit operation.")
  in
  let relax_cost =
    Arg.(value & opt int 1 & info [ "relax-cost" ] ~docv:"C" ~doc:"Cost of each RELAX step.")
  in
  let show_stats =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print execution counters and the metrics registry (histograms).")
  in
  let stats_json =
    Arg.(
      value & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Write the query's audit record — execution counters, GC deltas, latency, termination, \
             admission estimate vs actual, per-shard breakdown — as a single JSON object to FILE \
             ($(b,-) for stdout).  Same codec as $(b,--audit) records.")
  in
  let audit =
    Arg.(
      value & opt (some string) None
      & info [ "audit" ] ~docv:"FILE"
          ~doc:
            "Append one schema-versioned JSON line per query to FILE (the query observatory's \
             audit log; see $(b,omega_report)).  Also read from \\$OMEGA_AUDIT.  Crash-safe: each \
             record is written and flushed atomically.")
  in
  let flight =
    Arg.(
      value & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Turn on the parallel flight recorder and dump its scheduling event log (shard \
             deliveries, bucket seals with their bound inputs, merge emits, park/unpark, governor \
             trips) to FILE as JSONL when the query closes.  Also read from \\$OMEGA_FLIGHT.  \
             Inspect with $(b,omega_report --flight).")
  in
  let explain_flag =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the physical plan — per-conjunct automata ($(b,M_R)/$(b,A_R)/$(b,M^K_R)) with \
             their sizes, evaluation strategies, seeding regimes, join method and governor limits \
             — without running the query.")
  in
  let explain_analyze =
    Arg.(
      value & flag
      & info [ "explain-analyze" ]
          ~doc:
            "Run the query, then print the plan annotated with the live execution counters of \
             each conjunct (implies running; combine with $(b,--limit) etc. as usual).")
  in
  let trace =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record the evaluation as a Chrome trace_event timeline (automaton build phases, seed \
             batches, ψ windows, join pulls, governor trips) and write it to FILE — loadable in \
             chrome://tracing or Perfetto.  When provenance is on ($(b,--why)/$(b,--profile)), the \
             wasted-work profile is embedded in the export's top-level object.")
  in
  let why =
    Arg.(
      value & flag
      & info [ "why" ]
          ~doc:
            "Print each answer's witness under it: the data path traversed and the \
             edit/relaxation script whose operation costs sum to the reported distance.  Enables \
             provenance tracking (parent pointers on queued tuples).")
  in
  let why_json =
    Arg.(
      value & opt (some string) None
      & info [ "why-json" ] ~docv:"FILE"
          ~doc:
            "Write the answers with their witnesses as JSON to FILE (implies provenance tracking \
             like $(b,--why)).")
  in
  let profile_flag =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Print the wasted-work query profile: tuples popped vs answers emitted per distance \
             bucket, discard attribution (visited dedup / duplicate finals / ψ pruning / tuples \
             left queued) and per-operation cost totals.  Enables provenance tracking.")
  in
  let run data lenient query limit distance_aware decompose domains max_tuples timeout_ms
      max_answers max_memory_mb max_states max_product_est failpoints edit_cost relax_cost
      show_stats stats_json audit flight explain_flag explain_analyze trace why why_json
      profile_flag =
    let wall_ns () = int_of_float (1e9 *. Unix.gettimeofday ()) in
    let audit = match audit with Some _ -> audit | None -> Sys.getenv_opt Obs.Audit.env_var in
    let flight = match flight with Some _ -> flight | None -> Sys.getenv_opt Obs.Flight.env_var in
    (* One shared init for every time source: scan-time attribution, governor
       deadlines and trace timestamps all read the same installed clock.
       (Separate conditional installs used to leave scan_ns silently 0 when
       only a deadline was requested.) *)
    if
      show_stats || explain_analyze || timeout_ms <> None || trace <> None || audit <> None
      || stats_json <> None || flight <> None
    then Obs.Clock.install wall_ns;
    if trace <> None then Obs.Trace.enable ();
    (match flight with
    | None -> ()
    | Some path ->
      Obs.Flight.set_dump_target (Some path);
      Obs.Flight.enable ~detail:true ());
    (match audit with
    | None -> ()
    | Some path -> (
      try Obs.Audit.enable path
      with Sys_error msg ->
        Printf.eprintf "cannot open audit log: %s\n" msg;
        exit 2));
    let failpoints =
      match failpoints with
      | Some _ -> failpoints
      | None -> Sys.getenv_opt Core.Failpoints.env_var
    in
    let graph, ontology = load_dataset ~lenient data in
    let options =
      {
        Core.Options.costs =
          {
            Core.Options.ins = edit_cost;
            del = edit_cost;
            sub = edit_cost;
            beta = relax_cost;
            gamma = relax_cost;
          };
        batch_size = 100;
        distance_aware;
        decompose;
        max_tuples;
        timeout_ns = Option.map (fun ms -> ms * 1_000_000) timeout_ms;
        max_answers;
        max_memory_bytes = Option.map (fun mb -> mb * 1024 * 1024) max_memory_mb;
        max_states;
        max_product_est;
        failpoints;
        final_priority = true;
        batched_seeding = true;
        (* --explain-analyze turns provenance on too, so its profile section
           includes the per-operation cost totals (fed by witnesses) *)
        provenance = why || why_json <> None || profile_flag || explain_analyze;
        domains = (if domains >= 1 && domains <= 64 then domains else 1);
        par_queue_cap = Core.Options.default.Core.Options.par_queue_cap;
      }
    in
    let export_trace ?(extra = []) () =
      match trace with
      | None -> ()
      | Some path ->
        Obs.Trace.export ~extra path;
        Format.printf "trace written to %s (%d event(s))@." path
          (List.length (Obs.Trace.events ()))
    in
    match Core.Query_parser.parse_result query with
    | Error msg ->
      Printf.eprintf "query error: %s\n" msg;
      exit 2
    | Ok q -> (
      if explain_flag && not explain_analyze then (
        match Core.Engine.explain ~graph ~ontology ~options q with
        | plan ->
          Format.printf "%a@." Obs.Explain.pp plan;
          export_trace ()
        | exception Invalid_argument msg ->
          Printf.eprintf "query error: %s\n" msg;
          exit 2)
      else
        let t0 = Unix.gettimeofday () in
        match
          let governor = Core.Options.governor ~limit options in
          let st = Core.Engine.open_query ~graph ~ontology ~options ~governor q in
          (st, Core.Engine.drain ~limit st)
        with
        | exception Invalid_argument msg ->
          Printf.eprintf "query error: %s\n" msg;
          exit 2
        | st, outcome ->
          let node oid = Graphstore.Graph.node_label graph oid in
          let label l = Graphstore.Interner.name (Graphstore.Graph.interner graph) l in
          List.iteri
            (fun i a ->
              Format.printf "%3d. %a@." (i + 1) Core.Engine.pp_answer a;
              if why then
                List.iter
                  (fun w -> Format.printf "     @[<v>%a@]@." (Core.Witness.pp ~node ~label) w)
                  a.Core.Engine.witnesses)
            outcome.Core.Engine.answers;
          (match why_json with
          | None -> ()
          | Some path ->
            let answers_json =
              Obs.Json.List
                (List.map
                   (fun (a : Core.Engine.answer) ->
                     Obs.Json.Obj
                       [
                         ( "bindings",
                           Obs.Json.Obj
                             (List.map (fun (v, x) -> (v, Obs.Json.String x)) a.bindings) );
                         ("distance", Obs.Json.Int a.distance);
                         ( "witnesses",
                           Obs.Json.List
                             (List.map (Core.Witness.to_json ~node ~label) a.witnesses) );
                       ])
                   outcome.Core.Engine.answers)
            in
            let oc = open_out path in
            Obs.Json.to_channel oc (Obs.Json.Obj [ ("answers", answers_json) ]);
            output_char oc '\n';
            close_out oc;
            Format.printf "witnesses written to %s@." path);
          if explain_analyze then begin
            let plan = Core.Engine.explain ~graph ~ontology ~options q in
            Core.Engine.annotate st plan;
            Format.printf "%a@." Obs.Explain.pp plan
          end;
          let exit_code =
            match outcome.Core.Engine.termination with
            | Core.Engine.Completed -> 0
            | Core.Engine.Exhausted { reason; _ } -> (
              Format.printf "-- partial: %a (the ranked prefix above is still correct)@."
                Core.Engine.pp_termination outcome.Core.Engine.termination;
              match reason with
              | Core.Governor.Answer_limit -> 0
              | Core.Governor.Deadline -> 3
              | Core.Governor.Tuple_budget | Core.Governor.Memory_budget -> 4
              | Core.Governor.Fault _ -> 5)
            | Core.Engine.Rejected r ->
              Format.printf "-- rejected by admission control: %a@." Core.Admission.pp_rejection r;
              6
          in
          Format.printf "%d answer(s) in %.2f ms@."
            (List.length outcome.Core.Engine.answers)
            (1000. *. (Unix.gettimeofday () -. t0));
          if show_stats then begin
            Format.printf "stats: %a@." Core.Exec_stats.pp outcome.Core.Engine.stats;
            Format.printf "metrics:@.%a@." Obs.Metrics.pp outcome.Core.Engine.metrics
          end;
          (match stats_json with
          | None -> ()
          | Some target ->
            let line = Obs.Json.to_string (Obs.Audit.to_json (Core.Engine.audit_record st)) in
            if target = "-" then print_endline line
            else begin
              let oc = open_out target in
              output_string oc line;
              output_char oc '\n';
              close_out oc;
              Format.printf "stats written to %s@." target
            end);
          (match flight with
          | None -> ()
          | Some path ->
            let recorded, dropped = Obs.Flight.stats () in
            Format.printf "flight recorded to %s (%d event(s), %d dropped)@." path recorded dropped);
          let profile = Obs.Profile.of_metrics outcome.Core.Engine.metrics in
          if profile_flag then Format.printf "%a@." Obs.Profile.pp profile;
          export_trace
            ~extra:
              (if options.Core.Options.provenance then
                 [ ("profile", Obs.Profile.to_json profile) ]
               else [])
            ();
          if exit_code <> 0 then exit exit_code)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a CRP query (with optional APPROX/RELAX conjuncts) against a triple file.")
    Term.(
      const run $ data_arg $ lenient_arg $ query $ limit $ distance_aware $ decompose $ domains
      $ max_tuples $ timeout_ms $ max_answers $ max_memory_mb $ max_states $ max_product_est
      $ failpoints $ edit_cost $ relax_cost $ show_stats $ stats_json $ audit $ flight
      $ explain_flag $ explain_analyze $ trace $ why $ why_json $ profile_flag)

let () =
  let doc = "flexible regular path queries over graph data (APPROX / RELAX)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "omega" ~version:"1.0.0" ~doc) [ generate_cmd; stats_cmd; saturate_cmd; query_cmd ]))
