(* The omega command-line tool: generate workloads, inspect graphs, and run
   CRP queries with APPROX/RELAX against a triple file.

     omega generate --dataset l4all --scale L2 -o l2.nt
     omega stats -d l2.nt
     omega query -d l2.nt --limit 10 "(?X) <- APPROX (Librarians, type-, ?X)"
*)

open Cmdliner

let load_dataset path =
  match Ntriples.Nt.load path with
  | graph, ontology ->
    (* loading is over: freeze the store so queries run on the CSR index *)
    Graphstore.Graph.freeze graph;
    (graph, ontology)
  | exception Ntriples.Nt.Parse_error (msg, line) ->
    Printf.eprintf "%s:%d: %s\n" path line msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2

(* --- generate ------------------------------------------------------- *)

let generate_cmd =
  let dataset =
    Arg.(
      required
      & opt (some (enum [ ("l4all", `L4all); ("yago", `Yago) ])) None
      & info [ "dataset" ] ~docv:"NAME" ~doc:"Workload to generate: $(b,l4all) or $(b,yago).")
  in
  let scale =
    Arg.(
      value & opt string "L1"
      & info [ "scale" ] ~docv:"SCALE"
          ~doc:
            "For l4all: one of L1, L2, L3, L4 (timeline counts 143/1,201/5,221/11,416) or an \
             explicit number of timelines. For yago: a float scale factor (1.0 = full YAGO size).")
  in
  let seed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"INT" ~doc:"Generator seed.")
  in
  let output =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output triple file.")
  in
  let run dataset scale seed output =
    let graph, ontology =
      match dataset with
      | `L4all -> (
        let named =
          List.find_opt (fun s -> Datagen.L4all.scale_name s = scale) Datagen.L4all.all_scales
        in
        match named with
        | Some s -> Datagen.L4all.generate ?seed ~timelines:(Datagen.L4all.timelines s) ()
        | None -> (
          match int_of_string_opt scale with
          | Some n -> Datagen.L4all.generate ?seed ~timelines:n ()
          | None ->
            Printf.eprintf "bad l4all scale %S (expected L1..L4 or a timeline count)\n" scale;
            exit 2))
      | `Yago ->
        let params =
          match float_of_string_opt scale with
          | Some f when scale <> "L1" ->
            { Datagen.Yago_sim.default_params with Datagen.Yago_sim.scale = f }
          | _ -> Datagen.Yago_sim.default_params
        in
        let params =
          match seed with
          | Some s -> { params with Datagen.Yago_sim.seed = s }
          | None -> params
        in
        Datagen.Yago_sim.generate ~params ()
    in
    Ntriples.Nt.save output ~graph ~ontology;
    let s = Graphstore.Graph.stats graph in
    Printf.printf "wrote %s: %d nodes, %d edges, %d labels\n" output s.Graphstore.Graph.nodes
      s.Graphstore.Graph.edges s.Graphstore.Graph.distinct_labels
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic workload graph (L4All timelines or YAGO-shaped).")
    Term.(const run $ dataset $ scale $ seed $ output)

(* --- stats ---------------------------------------------------------- *)

let data_arg =
  Arg.(required & opt (some string) None & info [ "d"; "data" ] ~docv:"FILE" ~doc:"Triple file to load.")

let stats_cmd =
  let run data =
    let graph, ontology = load_dataset data in
    Format.printf "graph: %a@." Graphstore.Graph.pp_stats (Graphstore.Graph.stats graph);
    let interner = Graphstore.Graph.interner graph in
    List.iter
      (fun root ->
        Format.printf "class hierarchy: %a@."
          (Ontology.pp_hierarchy_stats interner)
          (Ontology.class_hierarchy_stats ontology root))
      (Ontology.class_roots ontology);
    List.iter
      (fun root ->
        Format.printf "property hierarchy: %a@."
          (Ontology.pp_hierarchy_stats interner)
          (Ontology.property_hierarchy_stats ontology root))
      (Ontology.property_roots ontology)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print graph and ontology statistics.") Term.(const run $ data_arg)

(* --- saturate ------------------------------------------------------- *)

let saturate_cmd =
  let output =
    Arg.(
      required & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to write the saturated triple file.")
  in
  let no_subclass = Arg.(value & flag & info [ "no-subclass" ] ~doc:"Skip rdfs9 (subclass).") in
  let no_subproperty =
    Arg.(value & flag & info [ "no-subproperty" ] ~doc:"Skip rdfs7 (subproperty).")
  in
  let no_domain_range =
    Arg.(value & flag & info [ "no-domain-range" ] ~doc:"Skip rdfs2/rdfs3 (domain/range).")
  in
  let run data output no_subclass no_subproperty no_domain_range =
    let graph, ontology = load_dataset data in
    let before = Graphstore.Graph.n_edges graph in
    let stats =
      Rdfs.saturate ~subclass:(not no_subclass) ~subproperty:(not no_subproperty)
        ~domain_range:(not no_domain_range) graph ontology
    in
    Ntriples.Nt.save output ~graph ~ontology;
    Format.printf "saturated %d -> %d edges (%a); wrote %s@." before
      (Graphstore.Graph.n_edges graph)
      Rdfs.pp_stats stats output
  in
  Cmd.v
    (Cmd.info "saturate"
       ~doc:
         "Materialise the RDFS entailments (rdfs2/3/7/9) of a triple file into the data graph — \
          the space-hungry alternative to query-time RELAX.")
    Term.(const run $ data_arg $ output $ no_subclass $ no_subproperty $ no_domain_range)

(* --- query ---------------------------------------------------------- *)

let query_cmd =
  let query =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"The CRP query text.")
  in
  let limit =
    Arg.(value & opt int 100 & info [ "limit" ] ~docv:"N" ~doc:"Maximum number of answers (ranked).")
  in
  let distance_aware =
    Arg.(value & flag & info [ "distance-aware" ] ~doc:"Enable distance-aware retrieval (§4.3).")
  in
  let decompose =
    Arg.(value & flag & info [ "decompose" ] ~doc:"Enable alternation-by-disjunction decomposition (§4.3).")
  in
  let budget =
    Arg.(
      value & opt (some int) None
      & info [ "budget" ] ~docv:"N" ~doc:"Abort after N tuples are queued (memory stand-in).")
  in
  let edit_cost =
    Arg.(value & opt int 1 & info [ "edit-cost" ] ~docv:"C" ~doc:"Cost of each APPROX edit operation.")
  in
  let relax_cost =
    Arg.(value & opt int 1 & info [ "relax-cost" ] ~docv:"C" ~doc:"Cost of each RELAX step.")
  in
  let show_stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print execution counters.") in
  let run data query limit distance_aware decompose budget edit_cost relax_cost show_stats =
    if show_stats then
      Core.Exec_stats.now_ns := (fun () -> int_of_float (1e9 *. Unix.gettimeofday ()));
    let graph, ontology = load_dataset data in
    let options =
      {
        Core.Options.costs =
          {
            Core.Options.ins = edit_cost;
            del = edit_cost;
            sub = edit_cost;
            beta = relax_cost;
            gamma = relax_cost;
          };
        batch_size = 100;
        distance_aware;
        decompose;
        max_tuples = budget;
        final_priority = true;
        batched_seeding = true;
      }
    in
    let t0 = Unix.gettimeofday () in
    match Core.Engine.run_string ~graph ~ontology ~options ~limit query with
    | Error msg ->
      Printf.eprintf "query error: %s\n" msg;
      exit 2
    | Ok outcome ->
      List.iteri
        (fun i a -> Format.printf "%3d. %a@." (i + 1) Core.Engine.pp_answer a)
        outcome.Core.Engine.answers;
      if outcome.Core.Engine.aborted then
        Format.printf "-- aborted: tuple budget exhausted (the paper's out-of-memory case)@.";
      Format.printf "%d answer(s) in %.2f ms@."
        (List.length outcome.Core.Engine.answers)
        (1000. *. (Unix.gettimeofday () -. t0));
      if show_stats then Format.printf "stats: %a@." Core.Exec_stats.pp outcome.Core.Engine.stats
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a CRP query (with optional APPROX/RELAX conjuncts) against a triple file.")
    Term.(
      const run $ data_arg $ query $ limit $ distance_aware $ decompose $ budget $ edit_cost
      $ relax_cost $ show_stats)

let () =
  let doc = "flexible regular path queries over graph data (APPROX / RELAX)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "omega" ~version:"1.0.0" ~doc) [ generate_cmd; stats_cmd; saturate_cmd; query_cmd ]))
