(* Provenance suite (the PR-4 tentpole contract).

   Property: every answer the engine emits with [options.provenance] carries
   a witness that (a) replays on the data graph — each Edge hop is a real
   edge admitted by its transition label, hops chain from the seed to the
   answer node — and (b) whose edit/relaxation script accounts for the whole
   distance: hop costs sum to [dist], each hop's op costs sum to that hop's
   cost.  Checked under APPROX, RELAX and the alternation-decomposition
   optimisation, over the same random instances as the differential oracle.

   Deterministic cases pin the actual scripts (a substitution witness, a
   RELAX super-property witness, join witnesses summing to the combined
   distance) and that provenance off means no witnesses at all. *)

module Graph = Graphstore.Graph
module Q = Core.Query
module R = Rpq_regex.Regex
module Engine = Core.Engine
module Options = Core.Options
module Witness = Core.Witness
module Nfa = Automaton.Nfa
open Instance_gen

(* Does the data graph admit one traversal step [src] -> [dst] under this
   transition label?  The same matching as the oracle's [label_adjacency]. *)
let step_exists g (src, lbl, dst) =
  let type_l = Graph.type_label g in
  let found = ref false in
  Graph.iter_edges g (fun s l d ->
      if not !found then begin
        let hit =
          match lbl with
          | Nfa.Eps -> false
          | Nfa.Sym (Nfa.Fwd, a) -> l = a && s = src && d = dst
          | Nfa.Sym (Nfa.Bwd, a) -> l = a && s = dst && d = src
          | Nfa.Any -> (s = src && d = dst) || (s = dst && d = src)
          | Nfa.Any_dir Nfa.Fwd -> s = src && d = dst
          | Nfa.Any_dir Nfa.Bwd -> s = dst && d = src
          | Nfa.Sub_closure (Nfa.Fwd, ls) ->
            Array.exists (fun x -> x = l) ls && s = src && d = dst
          | Nfa.Sub_closure (Nfa.Bwd, ls) ->
            Array.exists (fun x -> x = l) ls && s = dst && d = src
          | Nfa.Type_to c -> l = type_l && s = src && d = dst && dst = c
        in
        if hit then found := true
      end);
  !found

(* Hops must chain: Seed first (at [source]), Edge hops contiguous, an
   optional Final hop last, ending at [target]. *)
let chain_ok (w : Witness.t) =
  let rec go current = function
    | [] -> current = w.Witness.target
    | Witness.Seed _ :: _ -> false (* a seed hop is only valid first *)
    | Witness.Edge { src; dst; _ } :: rest -> current = src && go dst rest
    | Witness.Final _ :: rest -> rest = [] && current = w.Witness.target
  in
  match w.Witness.hops with
  | Witness.Seed { node; _ } :: rest -> node = w.Witness.source && go node rest
  | _ -> false

let witness_ok g dist (w : Witness.t) =
  let hop_accounted h =
    List.fold_left (fun acc (_, c) -> acc + c) 0 (Witness.hop_ops h) = Witness.hop_cost h
  in
  w.Witness.dist = dist
  && Witness.cost w = dist
  && Witness.ops_cost w = dist (* unit default costs: every surcharge is flexible *)
  && List.for_all hop_accounted w.Witness.hops
  && chain_ok w
  && List.for_all (step_exists g) (Witness.edges w)

(* Single-conjunct random instances (the oracle generator), engine run with
   provenance on; every answer must carry exactly one valid witness whose
   endpoints are the answer's own binding values. *)
let query_of inst =
  let inst =
    match (inst.subj, inst.obj) with
    | (`Node _ | `Ghost), (`Node _ | `Ghost) -> { inst with obj = `Fresh }
    | _ -> inst
  in
  (inst, Q.make ~head:(Q.conjunct_vars (conjunct_of inst)) [ conjunct_of inst ])

(* Swept over the domain counts of [Instance_gen.domains_under_test]:
   witnesses built in shard-local provenance arenas must replay and account
   for their distances exactly like sequentially-built ones. *)
let check_instance ~options inst =
  let inst, q = query_of inst in
  let g, k = build inst in
  List.for_all
    (fun domains ->
      let options = with_domains options domains in
      let outcome = Engine.run ~graph:g ~ontology:k ~options ~limit:60 q in
      List.for_all
        (fun (a : Engine.answer) ->
          match a.Engine.witnesses with
          | [ w ] ->
            let endpoints =
              [ Graph.node_label g w.Witness.source; Graph.node_label g w.Witness.target ]
            in
            witness_ok g a.Engine.distance w
            && List.for_all (fun (_, v) -> List.mem v endpoints) a.Engine.bindings
          | _ -> false)
        outcome.Engine.answers)
    (domains_under_test ())

let prov_options = { Options.default with Options.provenance = true }

let witness_replays_approx =
  QCheck2.Test.make ~name:"APPROX witnesses replay; scripts sum to distance" ~count:60
    (gen_instance ~mode:Q.Approx)
    (check_instance ~options:prov_options)

let witness_replays_relax =
  QCheck2.Test.make ~name:"RELAX witnesses replay; scripts sum to distance" ~count:60
    (gen_instance ~mode:Q.Relax)
    (check_instance ~options:prov_options)

let witness_replays_decomposed =
  QCheck2.Test.make
    ~name:"witnesses replay under alternation decomposition" ~count:40
    (gen_instance ~mode:Q.Approx)
    (check_instance ~options:{ prov_options with Options.decompose = true })

(* distance-aware retrieval restarts the evaluation at each ψ bump: the
   arena grows across restarts and the parent chains must stay valid *)
let witness_replays_distance_aware =
  QCheck2.Test.make ~name:"witnesses replay under distance-aware retrieval" ~count:40
    (gen_instance ~mode:Q.Relax)
    (check_instance ~options:{ prov_options with Options.distance_aware = true })

(* --- deterministic scripts ---------------------------------------------- *)

(* a --p--> b --q--> c *)
let chain_graph () =
  let g = Graph.create () in
  let a = Graph.add_node g "a" in
  let b = Graph.add_node g "b" in
  let c = Graph.add_node g "c" in
  Graph.add_edge_s g a "p" b;
  Graph.add_edge_s g b "q" c;
  let k = Ontology.create (Graph.interner g) in
  Graph.freeze g;
  (g, k, a, b, c)

let find_answer outcome pred =
  match List.find_opt pred outcome.Engine.answers with
  | Some a -> a
  | None -> Alcotest.fail "expected answer not produced"

let approx_substitution_test () =
  let g, k, _, _, _ = chain_graph () in
  (* X (p . p) Y: (a, c) is reachable at distance 1 by substituting the
     second p for the q edge *)
  let q = Q.single ~mode:Q.Approx (Q.Var "X") (R.seq (R.lbl "p") (R.lbl "p")) (Q.Var "Y") in
  let outcome = Engine.run ~graph:g ~ontology:k ~options:prov_options q in
  let a =
    find_answer outcome (fun a ->
        a.Engine.distance = 1 && List.assoc_opt "Y" a.Engine.bindings = Some "c")
  in
  let w = List.hd a.Engine.witnesses in
  Alcotest.(check bool) "witness well-formed" true (witness_ok g 1 w);
  Alcotest.(check bool) "script is one substitution" true
    (match Witness.ops w with [ (Nfa.Subst, 1) ] -> true | _ -> false);
  Alcotest.(check int) "two data edges traversed" 2 (List.length (Witness.edges w));
  (* and the rendered script names the operation *)
  let rendered = Format.asprintf "%a" Witness.pp_script w in
  Alcotest.(check bool) "rendering mentions sub(+1)" true
    (let n = String.length rendered in
     let rec go i = i + 7 <= n && (String.sub rendered i 7 = "sub(+1)" || go (i + 1)) in
     go 0)

let relax_super_prop_test () =
  let g = Graph.create () in
  let a = Graph.add_node g "a" in
  let b = Graph.add_node g "b" in
  Graph.add_edge_s g a "super" b;
  let k = Ontology.create (Graph.interner g) in
  Ontology.add_subproperty k "p" "super";
  Graph.freeze g;
  (* RELAX X p Y: no p edge, but relaxing p to its super-property (depth 1,
     cost beta) admits the super edge *)
  let q = Q.single ~mode:Q.Relax (Q.Var "X") (R.lbl "p") (Q.Var "Y") in
  let outcome = Engine.run ~graph:g ~ontology:k ~options:prov_options q in
  let ans = find_answer outcome (fun ans -> ans.Engine.distance = 1) in
  Alcotest.(check (option string)) "X=a" (Some "a") (List.assoc_opt "X" ans.Engine.bindings);
  Alcotest.(check (option string)) "Y=b" (Some "b") (List.assoc_opt "Y" ans.Engine.bindings);
  let w = List.hd ans.Engine.witnesses in
  Alcotest.(check bool) "witness well-formed" true (witness_ok g 1 w);
  Alcotest.(check bool) "script is one depth-1 super-property relaxation" true
    (match Witness.ops w with [ (Nfa.Super_prop 1, 1) ] -> true | _ -> false);
  ignore a;
  ignore b

let join_witnesses_test () =
  let g, k, _, _, _ = chain_graph () in
  (* (X p Y) join (Y p Z): the second conjunct only matches b -q-> c by
     substitution, so the combined distance is 1 and the two witnesses'
     distances sum to it *)
  let q =
    Q.make ~head:[ "X"; "Y"; "Z" ]
      [
        Q.conjunct ~mode:Q.Approx (Q.Var "X") (R.lbl "p") (Q.Var "Y");
        Q.conjunct ~mode:Q.Approx (Q.Var "Y") (R.lbl "p") (Q.Var "Z");
      ]
  in
  let outcome = Engine.run ~graph:g ~ontology:k ~options:prov_options q in
  let a =
    find_answer outcome (fun a ->
        List.map snd a.Engine.bindings = [ "a"; "b"; "c" ] && a.Engine.distance = 1)
  in
  Alcotest.(check int) "one witness per conjunct" 2 (List.length a.Engine.witnesses);
  Alcotest.(check int) "witness distances sum to the answer distance" a.Engine.distance
    (List.fold_left (fun acc w -> acc + w.Witness.dist) 0 a.Engine.witnesses);
  List.iter
    (fun w -> Alcotest.(check bool) "each join witness replays" true (witness_ok g w.Witness.dist w))
    a.Engine.witnesses

let provenance_off_test () =
  let g, k, _, _, _ = chain_graph () in
  let q = Q.single ~mode:Q.Approx (Q.Var "X") (R.seq (R.lbl "p") (R.lbl "p")) (Q.Var "Y") in
  let outcome = Engine.run ~graph:g ~ontology:k q in
  Alcotest.(check bool) "answers still flow" true (outcome.Engine.answers <> []);
  List.iter
    (fun (a : Engine.answer) ->
      Alcotest.(check int) "no witnesses without the flag" 0 (List.length a.Engine.witnesses))
    outcome.Engine.answers

let () =
  Alcotest.run "provenance"
    [
      ( "deterministic",
        [
          Alcotest.test_case "APPROX substitution script" `Quick approx_substitution_test;
          Alcotest.test_case "RELAX super-property script" `Quick relax_super_prop_test;
          Alcotest.test_case "join witnesses sum" `Quick join_witnesses_test;
          Alcotest.test_case "provenance off: no witnesses" `Quick provenance_off_test;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest witness_replays_approx;
          QCheck_alcotest.to_alcotest witness_replays_relax;
          QCheck_alcotest.to_alcotest witness_replays_decomposed;
          QCheck_alcotest.to_alcotest witness_replays_distance_aware;
        ] );
    ]
