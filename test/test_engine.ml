(* Integration tests for the Omega engine: exact, APPROX and RELAX conjunct
   evaluation, multi-conjunct joins, and the §4.3 optimisations, on small
   hand-built graphs with known answers. *)

module Graph = Graphstore.Graph
module Q = Core.Query
module QP = Core.Query_parser
module Engine = Core.Engine
module Options = Core.Options

let check = Alcotest.check

(* A miniature YAGO-flavoured fixture:

     alice -gradFrom-> birkbeck -locatedIn-> london -locatedIn-> uk
     bob   -gradFrom-> ucl      -locatedIn-> london
     carol -livesIn->  london
     conf  -happenedIn-> london
     alice -marriedTo-> bob
     birkbeck -type-> University ; ucl -type-> University
     ontology: gradFrom sp relationLocatedByObject
               happenedIn sp relationLocatedByObject
               University sc Institution
               gradFrom dom Person, range Institution *)
let fixture () =
  let g = Graph.create () in
  let n = Graph.add_node g in
  let alice = n "alice"
  and bob = n "bob"
  and carol = n "carol"
  and conf = n "conf"
  and birkbeck = n "birkbeck"
  and ucl = n "ucl"
  and london = n "london"
  and uk = n "uk"
  and university = n "University"
  and institution = n "Institution"
  and person = n "Person" in
  ignore person;
  Graph.add_edge_s g alice "gradFrom" birkbeck;
  Graph.add_edge_s g bob "gradFrom" ucl;
  Graph.add_edge_s g birkbeck "locatedIn" london;
  Graph.add_edge_s g ucl "locatedIn" london;
  Graph.add_edge_s g london "locatedIn" uk;
  Graph.add_edge_s g carol "livesIn" london;
  Graph.add_edge_s g conf "happenedIn" london;
  Graph.add_edge_s g alice "marriedTo" bob;
  Graph.add_edge_s g birkbeck "type" university;
  Graph.add_edge_s g ucl "type" university;
  Graph.add_edge_s g birkbeck "type" institution;
  Graph.add_edge_s g ucl "type" institution;
  Graph.add_edge_s g university "type" institution;
  let k = Ontology.create (Graph.interner g) in
  Ontology.add_subproperty k "gradFrom" "relationLocatedByObject";
  Ontology.add_subproperty k "happenedIn" "relationLocatedByObject";
  Ontology.add_subclass k "University" "Institution";
  Ontology.add_domain k "gradFrom" "Person";
  Ontology.add_range k "gradFrom" "Institution";
  (* the integration tests run on the frozen CSR index, like production
     loads; test_engine_properties keeps exercising the unfrozen path *)
  Graph.freeze g;
  (g, k)

let run ?options ?limit g k s =
  match Engine.run_string ~graph:g ~ontology:k ?options ?limit s with
  | Ok outcome -> outcome
  | Error msg -> Alcotest.failf "query failed to parse: %s" msg

let values var outcome =
  List.map
    (fun (a : Engine.answer) ->
      match List.assoc_opt var a.bindings with
      | Some v -> v
      | None -> Alcotest.failf "missing binding ?%s" var)
    outcome.Engine.answers

let distances outcome = List.map (fun (a : Engine.answer) -> a.Engine.distance) outcome.Engine.answers

let sorted l = List.sort compare l

(* --- exact evaluation ---------------------------------------------------- *)

let test_exact_const_subject () =
  let g, k = fixture () in
  let o = run g k "(?X) <- (alice, gradFrom.locatedIn, ?X)" in
  check (Alcotest.list Alcotest.string) "answers" [ "london" ] (values "X" o);
  check (Alcotest.list Alcotest.int) "distances" [ 0 ] (distances o)

let test_exact_const_object () =
  let g, k = fixture () in
  let o = run g k "(?X) <- (?X, gradFrom.locatedIn.locatedIn, uk)" in
  check (Alcotest.list Alcotest.string) "answers" (sorted [ "alice"; "bob" ])
    (sorted (values "X" o))

let test_exact_star () =
  let g, k = fixture () in
  let o = run g k "(?X) <- (london, locatedIn*, ?X)" in
  check (Alcotest.list Alcotest.string) "answers" (sorted [ "london"; "uk" ])
    (sorted (values "X" o))

let test_exact_plus_vs_star () =
  let g, k = fixture () in
  let o = run g k "(?X) <- (london, locatedIn+, ?X)" in
  check (Alcotest.list Alcotest.string) "answers" [ "uk" ] (values "X" o)

let test_exact_inverse () =
  let g, k = fixture () in
  let o = run g k "(?X) <- (london, locatedIn-, ?X)" in
  check (Alcotest.list Alcotest.string) "answers" (sorted [ "birkbeck"; "ucl" ])
    (sorted (values "X" o))

let test_exact_var_var () =
  let g, k = fixture () in
  let o = run g k "(?X, ?Y) <- (?X, gradFrom, ?Y)" in
  check Alcotest.int "count" 2 (List.length o.Engine.answers)

let test_exact_alternation () =
  let g, k = fixture () in
  let o = run g k "(?X) <- (london, (livesIn-)|(happenedIn-), ?X)" in
  check (Alcotest.list Alcotest.string) "answers" (sorted [ "carol"; "conf" ])
    (sorted (values "X" o))

let test_exact_wildcard () =
  let g, k = fixture () in
  let o = run g k "(?X) <- (uk, _-, ?X)" in
  check (Alcotest.list Alcotest.string) "answers" [ "london" ] (values "X" o)

let test_exact_no_answers () =
  let g, k = fixture () in
  (* only people graduate; UK <-locatedIn- x -gradFrom-> y needs x to be both
     located in the UK and a graduate: no such x (the paper's Example 1) *)
  let o = run g k "(?X) <- (uk, locatedIn-.gradFrom, ?X)" in
  check Alcotest.int "no exact answers" 0 (List.length o.Engine.answers)

let test_unknown_constant () =
  let g, k = fixture () in
  let o = run g k "(?X) <- (nowhere, locatedIn, ?X)" in
  check Alcotest.int "count" 0 (List.length o.Engine.answers)

(* --- APPROX -------------------------------------------------------------- *)

let approx = { Options.default with Options.distance_aware = false }

let test_approx_returns_exact_first () =
  let g, k = fixture () in
  let o = run ~options:approx g k "(?X) <- APPROX (alice, gradFrom.locatedIn, ?X)" in
  match o.Engine.answers with
  | first :: _ ->
    check Alcotest.string "first answer is the exact one" "london"
      (List.assoc "X" first.Engine.bindings);
    check Alcotest.int "at distance 0" 0 first.Engine.distance
  | [] -> Alcotest.fail "no answers"

let test_approx_example2 () =
  (* The paper's Example 2: substituting the last label's direction finds
     answers where the exact query had none. *)
  let g, k = fixture () in
  let o = run ~limit:20 ~options:approx g k "(?X) <- APPROX (uk, locatedIn-.gradFrom, ?X)" in
  let with_dist =
    List.map (fun (a : Engine.answer) -> (List.assoc "X" a.Engine.bindings, a.Engine.distance)) o.Engine.answers
  in
  (* The exact query has no answers (test_exact_no_answers); substituting
     gradFrom by a reverse locatedIn step reaches the institutions at
     distance 1, and a further insertion reaches their graduates at 2. *)
  check Alcotest.bool "birkbeck found at distance 1" true (List.mem ("birkbeck", 1) with_dist);
  check Alcotest.bool "a graduate found at distance 2" true
    (List.mem ("alice", 2) with_dist || List.mem ("bob", 2) with_dist)

let test_approx_monotone_distances () =
  let g, k = fixture () in
  let o = run ~limit:50 ~options:approx g k "(?X) <- APPROX (alice, gradFrom, ?X)" in
  let ds = distances o in
  check Alcotest.bool "non-decreasing" true
    (List.for_all2 (fun a b -> a <= b) (List.filteri (fun i _ -> i < List.length ds - 1) ds)
       (List.tl ds))

let test_approx_deletion () =
  let g, k = fixture () in
  (* deleting 'marriedTo' at cost 1 makes (alice, ε, alice) an answer *)
  let o = run ~limit:50 ~options:approx g k "(?X) <- APPROX (alice, marriedTo, ?X)" in
  let with_dist =
    List.map (fun (a : Engine.answer) -> (List.assoc "X" a.Engine.bindings, a.Engine.distance)) o.Engine.answers
  in
  check Alcotest.bool "bob at 0" true (List.mem ("bob", 0) with_dist);
  check Alcotest.bool "alice at 1 (deletion)" true (List.mem ("alice", 1) with_dist)

(* --- RELAX --------------------------------------------------------------- *)

let test_relax_superproperty () =
  let g, k = fixture () in
  (* relationLocatedByObject's closure matches happenedIn as well: conf's
     edge is reached by relaxing gradFrom one step up. *)
  let o = run ~limit:20 g k "(?X) <- RELAX (london, gradFrom-, ?X)" in
  let with_dist =
    List.map (fun (a : Engine.answer) -> (List.assoc "X" a.Engine.bindings, a.Engine.distance)) o.Engine.answers
  in
  check Alcotest.bool "conf at distance 1" true (List.mem ("conf", 1) with_dist)

let test_relax_class_ancestors () =
  let g, k = fixture () in
  (* (University, type-, ?X) relaxes University to Institution: the direct
     type edges of Institution appear at distance 1. *)
  let o = run ~limit:20 g k "(?X) <- RELAX (University, type-, ?X)" in
  let with_dist =
    List.map (fun (a : Engine.answer) -> (List.assoc "X" a.Engine.bindings, a.Engine.distance)) o.Engine.answers
  in
  check Alcotest.bool "birkbeck at 0" true (List.mem ("birkbeck", 0) with_dist);
  check Alcotest.bool "university at 1 (via Institution)" true
    (List.mem ("University", 1) with_dist)

let test_relax_exact_subset () =
  let g, k = fixture () in
  let exact = run g k "(?X) <- (alice, gradFrom, ?X)" in
  let relaxed = run ~limit:50 g k "(?X) <- RELAX (alice, gradFrom, ?X)" in
  List.iter
    (fun v -> check Alcotest.bool ("exact answer " ^ v ^ " kept") true (List.mem v (values "X" relaxed)))
    (values "X" exact)

let test_relax_rule2_domain () =
  let g, k = fixture () in
  (* gradFrom relaxed by rule (ii): alice -gradFrom-> y becomes
     alice -type-> Person; alice has no type edge, so no extra answer — but
     birkbeck -type-> Institution matches for (birkbeck, gradFrom, ?X)
     relaxation? birkbeck's gradFrom rewritten to type->Person: no.
     Exercise the positive case via range: (?X, gradFrom, birkbeck) reversed
     gives gradFrom- from birkbeck, whose range rewrite is a type edge to
     Institution: birkbeck -type-> Institution exists, so Institution
     appears at distance gamma = 1. *)
  let o = run ~limit:50 g k "(?X) <- RELAX (?X, gradFrom, birkbeck)" in
  ignore o;
  let o2 = run ~limit:50 g k "(?Y) <- RELAX (birkbeck, gradFrom-, ?Y)" in
  let with_dist =
    List.map (fun (a : Engine.answer) -> (List.assoc "Y" a.Engine.bindings, a.Engine.distance)) o2.Engine.answers
  in
  check Alcotest.bool "alice at 0" true (List.mem ("alice", 0) with_dist);
  check Alcotest.bool "Institution at 1 (rule ii)" true (List.mem ("Institution", 1) with_dist)

(* --- multi-conjunct ------------------------------------------------------ *)

let test_join_two_conjuncts () =
  let g, k = fixture () in
  let o = run g k "(?X, ?Y) <- (?X, gradFrom, ?Y), (?Y, locatedIn, london)" in
  check Alcotest.int "two graduates" 2 (List.length o.Engine.answers)

let test_join_projection_dedup () =
  let g, k = fixture () in
  let o = run g k "(?Y) <- (?X, gradFrom, ?Y), (?Y, locatedIn, london)" in
  check Alcotest.int "two institutions" 2 (List.length o.Engine.answers)

let test_join_total_distance () =
  let g, k = fixture () in
  let o =
    run ~limit:10 g k "(?X) <- APPROX (alice, marriedTo, ?X), APPROX (?X, gradFrom, ucl)"
  in
  match o.Engine.answers with
  | first :: _ ->
    check Alcotest.string "bob" "bob" (List.assoc "X" first.Engine.bindings);
    check Alcotest.int "total 0" 0 first.Engine.distance
  | [] -> Alcotest.fail "no answers"

(* --- optimisations ------------------------------------------------------- *)

let test_distance_aware_same_answers () =
  let g, k = fixture () in
  let q = "(?X) <- APPROX (uk, locatedIn-.gradFrom, ?X)" in
  let plain = run ~limit:10 ~options:approx g k q in
  let da = run ~limit:10 ~options:{ approx with Options.distance_aware = true } g k q in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "same ranked answers"
    (List.map (fun (a : Engine.answer) -> (List.assoc "X" a.Engine.bindings, a.Engine.distance)) plain.Engine.answers
    |> sorted)
    (List.map (fun (a : Engine.answer) -> (List.assoc "X" a.Engine.bindings, a.Engine.distance)) da.Engine.answers
    |> sorted)

let test_decompose_same_answers () =
  let g, k = fixture () in
  let q = "(?X) <- APPROX (london, (livesIn-)|(happenedIn-), ?X)" in
  let plain = run ~limit:10 ~options:approx g k q in
  let dec = run ~limit:10 ~options:{ approx with Options.decompose = true } g k q in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "same ranked answers"
    (List.map (fun (a : Engine.answer) -> (List.assoc "X" a.Engine.bindings, a.Engine.distance)) plain.Engine.answers
    |> sorted)
    (List.map (fun (a : Engine.answer) -> (List.assoc "X" a.Engine.bindings, a.Engine.distance)) dec.Engine.answers
    |> sorted)

let test_budget_aborts () =
  let g, k = fixture () in
  let o =
    run
      ~options:{ approx with Options.max_tuples = Some 5 }
      g k "(?X, ?Y) <- APPROX (?X, gradFrom, ?Y)"
  in
  check Alcotest.bool "aborted" true o.Engine.aborted

(* --- governor ------------------------------------------------------- *)

(* Regression: [Engine.next] used to raise [Options.Out_of_budget] when
   [max_tuples] ran out mid-stream; it must now return [None] and report
   the trip through [Engine.status]. *)
let test_next_never_raises_on_budget () =
  let g, k = fixture () in
  let q =
    match Core.Query_parser.parse_result "(?X, ?Y) <- APPROX (?X, gradFrom, ?Y)" with
    | Ok q -> q
    | Error m -> Alcotest.fail m
  in
  let st =
    Engine.open_query ~graph:g ~ontology:k
      ~options:{ approx with Options.max_tuples = Some 5 }
      q
  in
  let rec drain n = match Engine.next st with Some _ -> drain (n + 1) | None -> n in
  let emitted = drain 0 in
  match Engine.status st with
  | Engine.Exhausted { reason = Core.Governor.Tuple_budget; answers; _ } ->
    check Alcotest.int "termination counts the emitted answers" emitted answers
  | t -> Alcotest.failf "expected a tuple-budget trip, got %a" Core.Engine.pp_termination t

(* Pins the documented semantics of [Options.max_tuples] under
   distance-aware evaluation: the budget is CUMULATIVE across psi-level
   restarts, not per restart.  The clean run needs P pushes spread over
   several restarts (each restart re-seeds, so every level pushes at least
   once and no single level reaches P - 1); a budget of P - 1 must
   therefore trip, while P must not — a per-restart budget would pass
   P - 1 untripped. *)
let test_budget_cumulative_across_restarts () =
  let g, k = fixture () in
  let q = "(?X) <- APPROX (uk, locatedIn-.gradFrom, ?X)" in
  let da = { approx with Options.distance_aware = true } in
  let clean = run ~options:da g k q in
  check Alcotest.bool "clean run completes" true (clean.Engine.termination = Engine.Completed);
  let p = clean.Engine.stats.Core.Exec_stats.pushes in
  let r = clean.Engine.stats.Core.Exec_stats.restarts in
  check Alcotest.bool "several psi levels ran" true (r >= 2);
  let tripped = run ~options:{ da with Options.max_tuples = Some (p - 1) } g k q in
  (match tripped.Engine.termination with
  | Engine.Exhausted { reason = Core.Governor.Tuple_budget; _ } -> ()
  | t ->
    Alcotest.failf "budget P-1 must trip across restarts, got %a" Core.Engine.pp_termination t);
  check Alcotest.bool "aborted mirrors Tuple_budget" true tripped.Engine.aborted;
  let fits = run ~options:{ da with Options.max_tuples = Some p } g k q in
  check Alcotest.bool "budget P completes" true (fits.Engine.termination = Engine.Completed)

(* [limit] is enforced through the governor's answer cap: reaching it is an
   [Answer_limit] termination, and the compat [aborted] flag stays false. *)
let test_answer_limit_termination () =
  let g, k = fixture () in
  let o = run ~limit:1 g k "(?X) <- (london, locatedIn-, ?X)" in
  check Alcotest.int "exactly the limit" 1 (List.length o.Engine.answers);
  (match o.Engine.termination with
  | Engine.Exhausted { reason = Core.Governor.Answer_limit; answers = 1; _ } -> ()
  | t -> Alcotest.failf "expected Answer_limit, got %a" Core.Engine.pp_termination t);
  check Alcotest.bool "not aborted" false o.Engine.aborted

(* --- edge cases ----------------------------------------------------- *)

let test_const_const () =
  let g, k = fixture () in
  let o = run g k "(?X) <- (alice, gradFrom, birkbeck), (alice, marriedTo, ?X)" in
  check (Alcotest.list Alcotest.string) "satisfied anchor" [ "bob" ] (values "X" o);
  let o = run g k "(?X) <- (alice, gradFrom, ucl), (alice, marriedTo, ?X)" in
  check Alcotest.int "unsatisfied anchor kills the query" 0 (List.length o.Engine.answers)

let test_same_variable () =
  let g, k = fixture () in
  (* (?X, R, ?X): only nodes with a loop path; none exist exactly, but the
     empty path via a star matches every node *)
  let o = run g k "(?X) <- (?X, locatedIn, ?X)" in
  check Alcotest.int "no locatedIn self-loops" 0 (List.length o.Engine.answers);
  let o = run g k "(?X) <- (?X, locatedIn*, ?X)" in
  check Alcotest.int "every node via the empty path" 11 (List.length o.Engine.answers)

let test_epsilon_regex () =
  let g, k = fixture () in
  let o = run g k "(?X, ?Y) <- (?X, <eps>, ?Y)" in
  check Alcotest.int "identity pairs only" 11 (List.length o.Engine.answers);
  List.iter
    (fun (a : Engine.answer) ->
      check Alcotest.string "X = Y"
        (List.assoc "X" a.Engine.bindings)
        (List.assoc "Y" a.Engine.bindings))
    o.Engine.answers

let test_star_includes_identity () =
  let g, k = fixture () in
  let o = run g k "(?X, ?Y) <- (?X, locatedIn*, ?Y)" in
  (* 11 identity pairs + birkbeck/ucl/london chains:
     birkbeck->london->uk (2), ucl->london->uk (2), london->uk (1) *)
  check Alcotest.int "identity + chains" 16 (List.length o.Engine.answers)

let test_relax_non_class_constant () =
  let g, k = fixture () in
  (* alice is not a class: RELAX seeding degrades to the plain seed *)
  let exact = run g k "(?X) <- (alice, gradFrom, ?X)" in
  let relaxed = run ~limit:50 g k "(?X) <- RELAX (alice, gradFrom, ?X)" in
  check Alcotest.bool "exact subset kept" true
    (List.for_all (fun v -> List.mem v (values "X" relaxed)) (values "X" exact))

let test_three_conjunct_chain () =
  let g, k = fixture () in
  let o =
    run g k "(?A, ?C) <- (?A, gradFrom, ?B), (?B, locatedIn, ?C), (?C, locatedIn, uk)"
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "both graduates resolve through london"
    [ ("alice", "london"); ("bob", "london") ]
    (sorted
       (List.map
          (fun (a : Engine.answer) ->
            (List.assoc "A" a.Engine.bindings, List.assoc "C" a.Engine.bindings))
          o.Engine.answers))

let test_limit_semantics () =
  let g, k = fixture () in
  let o = run ~limit:1 g k "(?X) <- (london, locatedIn-, ?X)" in
  check Alcotest.int "exactly the limit" 1 (List.length o.Engine.answers)

let test_custom_costs_change_ranking () =
  let g, k = fixture () in
  (* cheap deletions: the deletion repair (alice herself) must rank at the
     deletion cost, below any substitution *)
  let costs = { Options.default_costs with Options.del = 1; sub = 5; ins = 5 } in
  let o =
    run ~limit:30 ~options:{ Options.default with Options.costs } g k
      "(?X) <- APPROX (alice, marriedTo, ?X)"
  in
  let with_dist =
    List.map (fun (a : Engine.answer) -> (List.assoc "X" a.Engine.bindings, a.Engine.distance)) o.Engine.answers
  in
  check Alcotest.bool "deletion at cost 1" true (List.mem ("alice", 1) with_dist);
  check Alcotest.bool "no substitution below 5" true
    (List.for_all (fun (v, d) -> v = "alice" || v = "bob" || d >= 5) with_dist)

let test_invalid_query_rejected () =
  let g, k = fixture () in
  match Engine.run_string ~graph:g ~ontology:k "(?Z) <- (alice, gradFrom, ?X)" with
  | Ok _ -> Alcotest.fail "head variable not in body must be rejected"
  | Error _ -> ()

let test_binding_order_follows_head () =
  let g, k = fixture () in
  let o = run g k "(?Y, ?X) <- (?X, gradFrom, ?Y)" in
  match o.Engine.answers with
  | a :: _ ->
    check (Alcotest.list Alcotest.string) "head order" [ "Y"; "X" ] (List.map fst a.Engine.bindings)
  | [] -> Alcotest.fail "expected answers"

let test_stats_populated () =
  let g, k = fixture () in
  let o = run g k "(?X) <- (alice, gradFrom.locatedIn, ?X)" in
  check Alcotest.bool "pushes counted" true (o.Engine.stats.Core.Exec_stats.pushes > 0);
  check Alcotest.bool "pops counted" true (o.Engine.stats.Core.Exec_stats.pops > 0);
  check Alcotest.int "answers counted" 1 o.Engine.stats.Core.Exec_stats.answers

(* --- unknown object constants --------------------------------------------- *)

module R = Rpq_regex.Regex
module Evaluator = Core.Evaluator

let drain ev =
  let rec loop acc =
    match Evaluator.next ev with Some a -> loop (a :: acc) | None -> List.rev acc
  in
  loop []

(* Regression: a conjunct whose object constant names no node used to get a
   [-1] target annotation while keeping its seeds, so the whole reachable
   product was explored for an answer that can never exist (oids are dense
   non-negative ints, so the sentinel cannot collide with a real node).  It
   must terminate immediately — zero seeds, zero D_R pushes — under every
   evaluation strategy and flexible mode. *)
let test_unknown_object_terminates () =
  let g, k = fixture () in
  let regex = R.alt (R.lbl "gradFrom") (R.lbl "marriedTo") in
  List.iter
    (fun mode ->
      List.iter
        (fun options ->
          let conjunct = Q.conjunct ~mode (Q.Const "alice") regex (Q.Const "nowhere") in
          let ev = Evaluator.create ~graph:g ~ontology:k ~options conjunct in
          check Alcotest.int "no answers" 0 (List.length (drain ev));
          let s = Evaluator.stats ev in
          check Alcotest.int "no seeds" 0 s.Core.Exec_stats.seeds;
          check Alcotest.int "no pushes" 0 s.Core.Exec_stats.pushes)
        [
          Options.default;
          { Options.default with Options.distance_aware = true };
          { Options.default with Options.decompose = true };
        ])
    [ Q.Exact; Q.Approx; Q.Relax ]

let test_unknown_object_in_queries () =
  let g, k = fixture () in
  (* anchored join: the ghost anchor kills the whole query *)
  let o = run g k "(?X) <- (alice, gradFrom, nowhere), (alice, marriedTo, ?X)" in
  check Alcotest.int "ghost anchor kills the join" 0 (List.length o.Engine.answers);
  (* case-2 rewrite: the ghost object becomes an unknown subject constant *)
  let o = run g k "(?X) <- (?X, gradFrom, nowhere)" in
  check Alcotest.int "ghost object after reversal" 0 (List.length o.Engine.answers)

(* --- level reordering under decomposition ---------------------------------- *)

(* Decomposed evaluation re-runs the parts of a top-level alternation level
   by level, reordering them at each level boundary by increasing answer
   count of the previous level (§4.3).  Two disconnected families make the
   reorder observable: the a-branch holds three exact answers, the b-branch
   one, so parts open in syntactic order [a; b] at level 0 and must swap to
   [b; a] at level 1 — the first edit-distance-1 emission has to come from
   the b-chain. *)
let test_decompose_reorders_parts () =
  let g = Graph.create () in
  let n = Graph.add_node g in
  let a = Array.init 9 (fun i -> n (Printf.sprintf "a%d" i)) in
  let b = Array.init 3 (fun i -> n (Printf.sprintf "b%d" i)) in
  List.iter
    (fun i ->
      Graph.add_edge_s g a.((3 * i)) "a" a.((3 * i) + 1);
      Graph.add_edge_s g a.((3 * i) + 1) "a" a.((3 * i) + 2))
    [ 0; 1; 2 ];
  Graph.add_edge_s g b.(0) "b" b.(1);
  Graph.add_edge_s g b.(1) "b" b.(2);
  Graph.freeze g;
  let k = Ontology.create (Graph.interner g) in
  let conjunct =
    Q.conjunct ~mode:Q.Approx (Q.Var "X")
      (R.alt (R.seq (R.lbl "a") (R.lbl "a")) (R.seq (R.lbl "b") (R.lbl "b")))
      (Q.Var "Y")
  in
  let options = { Options.default with Options.decompose = true } in
  let ev = Evaluator.create ~graph:g ~ontology:k ~options conjunct in
  let answers = drain ev in
  let in_family fam (ans : Core.Conjunct.answer) = Array.exists (fun o -> o = ans.x) fam in
  let exact = List.filter (fun (ans : Core.Conjunct.answer) -> ans.dist = 0) answers in
  check Alcotest.int "exact answers" 4 (List.length exact);
  (match answers with
  | first :: _ ->
    check Alcotest.bool "level 0 runs the a-branch first (syntactic order)" true
      (in_family a first)
  | [] -> Alcotest.fail "expected answers");
  (match List.find_opt (fun (ans : Core.Conjunct.answer) -> ans.dist = 1) answers with
  | Some promoted ->
    check Alcotest.bool "level 1 runs the b-branch first (fewest answers)" true
      (in_family b promoted)
  | None -> Alcotest.fail "expected distance-1 answers");
  (* the promoted b-part drains completely before the a-part reopens: every
     b-family answer of the level precedes every a-family one *)
  let at_1 = List.filter (fun (ans : Core.Conjunct.answer) -> ans.dist = 1) answers in
  check Alcotest.bool "some b-pairs at distance 1" true (List.exists (in_family b) at_1);
  let rec b_prefix_then_a = function
    | x :: rest when in_family b x -> b_prefix_then_a rest
    | rest -> not (List.exists (in_family b) rest)
  in
  check Alcotest.bool "whole b-part drains first" true (b_prefix_then_a at_1);
  (* every level boundary re-opened both parts: at least levels 0 and 1 *)
  let s = Evaluator.stats ev in
  check Alcotest.bool "level restarts recorded" true (s.Core.Exec_stats.restarts >= 4)

let () =
  Alcotest.run "engine"
    [
      ( "exact",
        [
          Alcotest.test_case "constant subject" `Quick test_exact_const_subject;
          Alcotest.test_case "constant object (reversal)" `Quick test_exact_const_object;
          Alcotest.test_case "star closure" `Quick test_exact_star;
          Alcotest.test_case "plus excludes start" `Quick test_exact_plus_vs_star;
          Alcotest.test_case "inverse traversal" `Quick test_exact_inverse;
          Alcotest.test_case "var-var conjunct" `Quick test_exact_var_var;
          Alcotest.test_case "alternation" `Quick test_exact_alternation;
          Alcotest.test_case "wildcard" `Quick test_exact_wildcard;
          Alcotest.test_case "example 1: zero answers" `Quick test_exact_no_answers;
          Alcotest.test_case "unknown constant" `Quick test_unknown_constant;
        ] );
      ( "approx",
        [
          Alcotest.test_case "exact answers first" `Quick test_approx_returns_exact_first;
          Alcotest.test_case "example 2: substitution" `Quick test_approx_example2;
          Alcotest.test_case "monotone distances" `Quick test_approx_monotone_distances;
          Alcotest.test_case "deletion edit" `Quick test_approx_deletion;
        ] );
      ( "relax",
        [
          Alcotest.test_case "super-property closure" `Quick test_relax_superproperty;
          Alcotest.test_case "class ancestors" `Quick test_relax_class_ancestors;
          Alcotest.test_case "exact answers kept" `Quick test_relax_exact_subset;
          Alcotest.test_case "rule (ii) range rewrite" `Quick test_relax_rule2_domain;
        ] );
      ( "join",
        [
          Alcotest.test_case "two conjuncts" `Quick test_join_two_conjuncts;
          Alcotest.test_case "projection dedup" `Quick test_join_projection_dedup;
          Alcotest.test_case "total distance ranking" `Quick test_join_total_distance;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "constant-constant conjunct" `Quick test_const_const;
          Alcotest.test_case "same variable twice" `Quick test_same_variable;
          Alcotest.test_case "epsilon regex" `Quick test_epsilon_regex;
          Alcotest.test_case "star includes identity" `Quick test_star_includes_identity;
          Alcotest.test_case "relax non-class constant" `Quick test_relax_non_class_constant;
          Alcotest.test_case "three-conjunct chain" `Quick test_three_conjunct_chain;
          Alcotest.test_case "limit semantics" `Quick test_limit_semantics;
          Alcotest.test_case "custom costs change ranking" `Quick test_custom_costs_change_ranking;
          Alcotest.test_case "invalid query rejected" `Quick test_invalid_query_rejected;
          Alcotest.test_case "binding order follows head" `Quick test_binding_order_follows_head;
          Alcotest.test_case "stats populated" `Quick test_stats_populated;
          Alcotest.test_case "unknown object terminates" `Quick test_unknown_object_terminates;
          Alcotest.test_case "unknown object in queries" `Quick test_unknown_object_in_queries;
        ] );
      ( "optimisations",
        [
          Alcotest.test_case "distance-aware equivalence" `Quick test_distance_aware_same_answers;
          Alcotest.test_case "decomposition equivalence" `Quick test_decompose_same_answers;
          Alcotest.test_case "decomposition reorders parts" `Quick test_decompose_reorders_parts;
          Alcotest.test_case "tuple budget aborts" `Quick test_budget_aborts;
        ] );
      ( "governor",
        [
          Alcotest.test_case "next never raises on budget" `Quick test_next_never_raises_on_budget;
          Alcotest.test_case "budget is cumulative across restarts" `Quick
            test_budget_cumulative_across_restarts;
          Alcotest.test_case "limit reports Answer_limit" `Quick test_answer_limit_termination;
        ] );
    ]
