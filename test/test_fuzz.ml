(* The fuzzing harness's regression surface:

   - replay the crash corpus under test/corpus: every input a past fuzzing
     run flagged — plus hand-seeded tricky cases — is fed to its parser
     on every `dune runtest`, asserting the typed-error contract holds;
   - a fixed-seed mini-fuzz: a few thousand inputs from [Datagen.Fuzz]'s
     mixed stream through all three parsers and (for parsed queries) the
     engine under tight budgets — the in-tree slice of what
     `omega-fuzz` runs at scale in CI;
   - generator sanity: the valid tier really is valid (otherwise the
     "parser must accept" half of the contract silently tests nothing).

   Corpus files are dispatched on their name prefix: [regex_*] to
   [Rpq_regex.Parser], [query_*] to [Core.Query_parser], [nt_*] to
   [Ntriples.Nt].  `omega-fuzz --corpus test/corpus` writes new crashers
   in exactly this convention. *)

module Fuzz = Datagen.Fuzz
module Rng = Datagen.Rng
module Graph = Graphstore.Graph

let check = Alcotest.check

(* resolved next to the test binary, so `dune runtest` (cwd = test dir)
   and `dune exec test/test_fuzz.exe` (cwd = project root) both find the
   copy dune stages via the glob_files dep *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus"
  else Filename.concat (Filename.dirname Sys.executable_name) "corpus"

(* the in-process daemon Server_case frames are replayed against: tight
   budgets, sequential, audit disabled — only the handle_request contract
   (one typed JSON response, never an exception, backstop cold) matters *)
let feed_daemon =
  lazy
    (let g = Graph.create () in
     let n = Array.init 6 (fun i -> Graph.add_node g (Printf.sprintf "N%d" i)) in
     Array.iteri
       (fun i src ->
         List.iter (fun l -> Graph.add_edge_s g src l n.((i + 1) mod 6)) [ "a"; "b"; "knows" ])
       n;
     let k = Ontology.create (Graph.interner g) in
     Graph.freeze g;
     Server.Daemon.create ~graph:g ~ontology:k
       {
         Server.Daemon.default_config with
         Server.Daemon.options =
           {
             Core.Options.default with
             Core.Options.max_tuples = Some 1_000;
             max_answers = Some 32;
             max_states = Some 64;
           };
         default_limit = 10;
       })

let feed = function
  | Fuzz.Regex_case s -> (
    match Rpq_regex.Parser.parse_result s with Ok _ | Error _ -> ())
  | Fuzz.Query_case s -> (
    match Core.Query_parser.parse_result s with Ok _ | Error _ -> ())
  | Fuzz.Nt_case s ->
    let ((_ : Graph.t * Ontology.t), (_ : Ntriples.Nt.report)) =
      Ntriples.Nt.read_string_report ~lenient:true s
    in
    (match Ntriples.Nt.read_string_report ~lenient:false s with
    | _ -> ()
    | exception Ntriples.Nt.Parse_error _ -> ())
  | Fuzz.Server_case s -> (
    match Server.Daemon.handle_request (Lazy.force feed_daemon) s with
    | None -> if String.trim s <> "" then failwith "no response for a non-blank frame"
    | Some resp -> (
      match Obs.Json.parse resp with
      | Error msg -> failwith ("response is not valid JSON: " ^ msg)
      | Ok j -> (
        match Server.Protocol.response_code j with
        | Some 1 -> failwith "crash-only backstop fired: an internal exception escaped"
        | Some c when c >= 0 && c <= 7 -> ()
        | _ -> failwith "response code missing or outside the taxonomy")))

let case_of_file name contents =
  if String.length name >= 6 && String.sub name 0 6 = "regex_" then Some (Fuzz.Regex_case contents)
  else if String.length name >= 6 && String.sub name 0 6 = "query_" then
    Some (Fuzz.Query_case contents)
  else if String.length name >= 7 && String.sub name 0 7 = "server_" then
    Some (Fuzz.Server_case contents)
  else if String.length name >= 3 && String.sub name 0 3 = "nt_" then Some (Fuzz.Nt_case contents)
  else None

let test_replay_corpus () =
  let files = Sys.readdir corpus_dir |> Array.to_list |> List.sort compare in
  check Alcotest.bool "corpus is not empty" true (files <> []);
  List.iter
    (fun name ->
      let contents =
        In_channel.with_open_bin (Filename.concat corpus_dir name) In_channel.input_all
      in
      match case_of_file name contents with
      | None -> Alcotest.failf "%s: unknown corpus prefix (expected regex_/query_/nt_)" name
      | Some case -> (
        match feed case with
        | () -> ()
        | exception e ->
          Alcotest.failf "corpus replay %s: escaped exception %s" name (Printexc.to_string e)))
    files

(* --- fixed-seed mini-fuzz --------------------------------------------- *)

let tiny_graph () =
  let g = Graph.create () in
  let n = Array.init 8 (fun i -> Graph.add_node g (Printf.sprintf "N%d" i)) in
  Array.iteri
    (fun i src ->
      List.iter
        (fun l -> Graph.add_edge_s g src l n.((i + 1) mod 8))
        [ "a"; "b"; "knows"; "type" ])
    n;
  let k = Ontology.create (Graph.interner g) in
  Ontology.add_subclass k "C0" "C1";
  Graph.freeze g;
  (g, k)

let tight_options =
  {
    Core.Options.default with
    Core.Options.max_tuples = Some 1_000;
    max_answers = Some 32;
    max_memory_bytes = Some (64 * 1024);
    max_states = Some 64;
    max_product_est = Some 10_000;
  }

let test_mini_fuzz () =
  let g, k = tiny_graph () in
  for i = 0 to 1_999 do
    let rng = Rng.create (0x5eed + i) in
    let case = Fuzz.case rng in
    match case with
    | Fuzz.Query_case s -> (
      match Core.Query_parser.parse_result s with
      | Error _ -> ()
      | Ok q -> (
        match Core.Engine.run ~graph:g ~ontology:k ~options:tight_options ~limit:10 q with
        | exception Invalid_argument _ -> () (* typed semantic rejection *)
        | exception e ->
          Alcotest.failf "mini-fuzz iter %d: engine escaped %s on %S" i (Printexc.to_string e) s
        | outcome -> (
          match outcome.Core.Engine.termination with
          | Core.Engine.Rejected _ ->
            check Alcotest.int
              (Printf.sprintf "iter %d: rejected query scanned nothing" i)
              0 outcome.Core.Engine.stats.Core.Exec_stats.edges_scanned
          | Core.Engine.Completed | Core.Engine.Exhausted _ -> ())))
    | case -> (
      match feed case with
      | () -> ()
      | exception e ->
        Alcotest.failf "mini-fuzz iter %d (%s): escaped exception %s" i (Fuzz.case_label case)
          (Printexc.to_string e))
  done

(* --- generator sanity -------------------------------------------------- *)

let test_valid_tier_is_valid () =
  for i = 0 to 199 do
    let rng = Rng.create (7_000 + i) in
    (match Rpq_regex.Parser.parse_result (Fuzz.regex_string rng) with
    | Ok _ -> ()
    | Error m -> Alcotest.failf "valid regex tier produced a reject (seed %d): %s" i m);
    let doc = Fuzz.ntriples_doc rng in
    match Ntriples.Nt.read_string_report ~lenient:false doc with
    | _, report -> check Alcotest.int "no malformed lines in the valid tier" 0 report.Ntriples.Nt.malformed
    | exception Ntriples.Nt.Parse_error (m, l) ->
      Alcotest.failf "valid nt tier failed strict parse (seed %d, line %d): %s" i l m
  done

let () =
  Alcotest.run "fuzz"
    [
      ("corpus", [ Alcotest.test_case "replay crash corpus" `Quick test_replay_corpus ]);
      ("stream", [ Alcotest.test_case "fixed-seed mini-fuzz (2k inputs)" `Quick test_mini_fuzz ]);
      ( "generators",
        [ Alcotest.test_case "valid tier parses" `Quick test_valid_tier_is_valid ] );
    ]
