(* Differential tests: the engine (on a frozen, CSR-indexed graph) against
   the brute-force product-Dijkstra oracle of [Oracle], on random ~30-node
   graphs with a small class/property hierarchy.  The instances cover every
   conjunct shape the engine distinguishes — variable and constant subjects
   and objects (including unknown constants and repeated variables), exact /
   APPROX / RELAX modes, and the distance-aware / decomposed / unbatched
   evaluation strategies.

   A second group checks the emission-order contract of [Evaluator.next]:
   no (x, y) pair is ever emitted twice, and distances never decrease by
   more than the level slack — 0 for plain evaluation, phi - 1 across the
   level restarts of the distance-aware and decomposed strategies (answers
   within one level can interleave across parts when operation costs are
   heterogeneous). *)

module Graph = Graphstore.Graph
module Q = Core.Query
module R = Rpq_regex.Regex

let labels = [ "p"; "q"; "r"; "type" ]
let n_classes = 3

type instance = {
  n_base : int; (* plain nodes n0 .. n{n_base-1}; class nodes C0..C2 follow *)
  edges : (int * string * int) list;
  types : (int * int) list; (* base node -> class index, as type edges *)
  regex : R.t;
  mode : Q.mode;
  subj : [ `Var | `Node of int | `Ghost ];
  obj : [ `Fresh | `Same | `Node of int | `Ghost ];
}

let gen_regex =
  QCheck2.Gen.(
    sized (fun size ->
        let rec gen n =
          if n <= 1 then
            oneof
              [
                return (R.lbl "p"); return (R.lbl "q"); return (R.lbl "r");
                return (R.inv "p"); return (R.inv "q"); return R.any;
                return (R.lbl "type"); return (R.inv "type");
              ]
          else
            oneof
              [
                map2 R.seq (gen (n / 2)) (gen (n / 2));
                map2 R.alt (gen (n / 2)) (gen (n / 2));
                map R.star (gen (n / 2));
                map R.plus (gen (n / 2));
              ]
        in
        gen (min size 8)))

let gen_instance ~mode =
  QCheck2.Gen.(
    let* n_base = int_range 12 27 in
    let n_total = n_base + n_classes in
    let* edges =
      list_size (int_range 10 60)
        (triple (int_bound (n_total - 1))
           (map (List.nth labels) (int_bound 3))
           (int_bound (n_total - 1)))
    in
    let* types = list_size (int_range 0 8) (pair (int_bound (n_base - 1)) (int_bound (n_classes - 1))) in
    let* regex = gen_regex in
    let* subj =
      frequency
        [
          (4, return `Var);
          (3, map (fun i -> `Node i) (int_bound (n_total - 1)));
          (1, return `Ghost);
        ]
    in
    let* obj =
      frequency
        [
          (4, return `Fresh);
          (1, return `Same);
          (2, map (fun i -> `Node i) (int_bound (n_total - 1)));
          (1, return `Ghost);
        ]
    in
    return { n_base; edges; types; regex; mode; subj; obj })

let name_of inst i =
  if i < inst.n_base then Printf.sprintf "n%d" i else Printf.sprintf "C%d" (i - inst.n_base)

let build inst =
  let g = Graph.create () in
  for i = 0 to inst.n_base + n_classes - 1 do
    ignore (Graph.add_node g (name_of inst i))
  done;
  List.iter (fun (s, l, d) -> Graph.add_edge_s g s l d) inst.edges;
  List.iter (fun (n, c) -> Graph.add_edge_s g n "type" (inst.n_base + c)) inst.types;
  let k = Ontology.create (Graph.interner g) in
  Ontology.add_subclass k "C0" "C1";
  Ontology.add_subclass k "C1" "C2";
  Ontology.add_subproperty k "q" "p";
  Ontology.add_subproperty k "p" "super";
  Ontology.add_domain k "p" "C0";
  Ontology.add_range k "p" "C1";
  (* the engine side always runs on the frozen CSR index *)
  Graph.freeze g;
  (g, k)

let conjunct_of inst =
  let subj =
    match inst.subj with
    | `Var -> Q.Var "X"
    | `Node i -> Q.Const (name_of inst i)
    | `Ghost -> Q.Const "missing"
  in
  let obj =
    match inst.obj with
    | `Fresh -> Q.Var "Y"
    | `Same -> Q.Var "X"
    | `Node i -> Q.Const (name_of inst i)
    | `Ghost -> Q.Const "absent"
  in
  Q.conjunct ~mode:inst.mode subj inst.regex obj

(* --- engine = oracle --------------------------------------------------- *)

let agree ?(options = Core.Options.default) inst =
  let g, k = build inst in
  let conjunct = conjunct_of inst in
  let expected = Oracle.answers g k options conjunct in
  let actual = Oracle.engine_stream g k options conjunct in
  List.sort compare actual = expected

let diff_prop name ~count ~mode options =
  QCheck2.Test.make ~name ~count (gen_instance ~mode) (fun inst -> agree ?options inst)

let exact_prop = diff_prop "frozen engine = oracle (exact)" ~count:60 ~mode:Q.Exact None
let approx_prop = diff_prop "frozen engine = oracle (APPROX)" ~count:50 ~mode:Q.Approx None
let relax_prop = diff_prop "frozen engine = oracle (RELAX)" ~count:50 ~mode:Q.Relax None

let distance_aware = Some { Core.Options.default with Core.Options.distance_aware = true }

let approx_da_prop =
  diff_prop "distance-aware = oracle (APPROX)" ~count:35 ~mode:Q.Approx distance_aware

let relax_da_prop =
  diff_prop "distance-aware = oracle (RELAX)" ~count:25 ~mode:Q.Relax distance_aware

let unbatched_prop =
  diff_prop "unbatched seeding = oracle (exact)" ~count:25 ~mode:Q.Exact
    (Some { Core.Options.default with Core.Options.batched_seeding = false })

let decomposed_prop =
  QCheck2.Test.make ~name:"decomposed = oracle (APPROX alternation)" ~count:35
    (QCheck2.Gen.pair (gen_instance ~mode:Q.Approx) gen_regex)
    (fun (inst, extra) ->
      (* force a top-level alternation so decomposition actually kicks in *)
      let inst = { inst with regex = R.Alt (inst.regex, extra) } in
      agree ~options:{ Core.Options.default with Core.Options.decompose = true } inst)

(* --- emission order ---------------------------------------------------- *)

let hetero_costs =
  { Core.Options.ins = 2; del = 2; sub = 4; beta = 2; gamma = 3 }

(* No duplicate (x, y) pair in the whole stream, and distances never drop
   below the running maximum by more than [slack]. *)
let well_ordered options inst =
  let g, k = build inst in
  let conjunct = conjunct_of inst in
  let stream = Oracle.engine_stream g k options conjunct in
  let levelled =
    options.Core.Options.distance_aware
    || (options.Core.Options.decompose
       && List.length (R.top_level_alternatives conjunct.Q.regex) > 1)
  in
  let slack = if levelled then Core.Options.phi options conjunct.Q.cmode - 1 else 0 in
  let seen = Hashtbl.create 64 in
  let hi = ref 0 in
  List.for_all
    (fun (x, y, d) ->
      let fresh = not (Hashtbl.mem seen (x, y)) in
      Hashtbl.replace seen (x, y) ();
      let ordered = d >= !hi - slack in
      if d > !hi then hi := d;
      fresh && ordered)
    stream

let order_prop name ~count ~mode options =
  QCheck2.Test.make ~name ~count (gen_instance ~mode) (well_ordered options)

let plain_order_prop =
  order_prop "plain emission: strict non-decreasing, no dup pairs (hetero APPROX)" ~count:30
    ~mode:Q.Approx
    { Core.Options.default with Core.Options.costs = hetero_costs }

let da_order_prop =
  order_prop "distance-aware emission: slack phi-1, no dup pairs (hetero APPROX)" ~count:30
    ~mode:Q.Approx
    { Core.Options.default with Core.Options.costs = hetero_costs; distance_aware = true }

let da_relax_order_prop =
  order_prop "distance-aware emission: slack phi-1, no dup pairs (hetero RELAX)" ~count:20
    ~mode:Q.Relax
    { Core.Options.default with Core.Options.costs = hetero_costs; distance_aware = true }

let da_exact_order_prop =
  order_prop "distance-aware emission: strict for exact (phi = 1)" ~count:20 ~mode:Q.Exact
    { Core.Options.default with Core.Options.distance_aware = true }

let decomposed_order_prop =
  QCheck2.Test.make
    ~name:"decomposed emission: slack phi-1, no dup pairs across level restarts" ~count:30
    (QCheck2.Gen.pair (gen_instance ~mode:Q.Approx) gen_regex)
    (fun (inst, extra) ->
      let inst = { inst with regex = R.Alt (inst.regex, extra) } in
      well_ordered
        { Core.Options.default with Core.Options.costs = hetero_costs; decompose = true }
        inst)

let () =
  Alcotest.run "oracle"
    [
      ( "engine = oracle",
        [
          QCheck_alcotest.to_alcotest exact_prop;
          QCheck_alcotest.to_alcotest approx_prop;
          QCheck_alcotest.to_alcotest relax_prop;
          QCheck_alcotest.to_alcotest approx_da_prop;
          QCheck_alcotest.to_alcotest relax_da_prop;
          QCheck_alcotest.to_alcotest decomposed_prop;
          QCheck_alcotest.to_alcotest unbatched_prop;
        ] );
      ( "emission order",
        [
          QCheck_alcotest.to_alcotest plain_order_prop;
          QCheck_alcotest.to_alcotest da_order_prop;
          QCheck_alcotest.to_alcotest da_relax_order_prop;
          QCheck_alcotest.to_alcotest da_exact_order_prop;
          QCheck_alcotest.to_alcotest decomposed_order_prop;
        ] );
    ]
