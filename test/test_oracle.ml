(* Differential tests: the engine (on a frozen, CSR-indexed graph) against
   the brute-force product-Dijkstra oracle of [Oracle], on random ~30-node
   graphs with a small class/property hierarchy.  The instances cover every
   conjunct shape the engine distinguishes — variable and constant subjects
   and objects (including unknown constants and repeated variables), exact /
   APPROX / RELAX modes, and the distance-aware / decomposed / unbatched
   evaluation strategies.

   A second group checks the emission-order contract of [Evaluator.next]:
   no (x, y) pair is ever emitted twice, and distances never decrease by
   more than the level slack — 0 for plain evaluation, phi - 1 across the
   level restarts of the distance-aware and decomposed strategies (answers
   within one level can interleave across parts when operation costs are
   heterogeneous). *)

module Q = Core.Query
module R = Rpq_regex.Regex
open Instance_gen

(* --- engine = oracle --------------------------------------------------- *)

(* Every property re-runs at each domain count of
   [Instance_gen.domains_under_test]: the parallel evaluator must agree
   with the oracle on exactly the instances the sequential one does (the
   oracle is computed once per instance; only the engine side re-runs). *)
let agree ?(options = Core.Options.default) inst =
  let g, k = build inst in
  let conjunct = conjunct_of inst in
  let expected = Oracle.answers g k options conjunct in
  List.for_all
    (fun domains ->
      let actual = Oracle.engine_stream g k (with_domains options domains) conjunct in
      List.sort compare actual = expected)
    (domains_under_test ())

let diff_prop name ~count ~mode options =
  QCheck2.Test.make ~name ~count (gen_instance ~mode) (fun inst -> agree ?options inst)

let exact_prop = diff_prop "frozen engine = oracle (exact)" ~count:60 ~mode:Q.Exact None
let approx_prop = diff_prop "frozen engine = oracle (APPROX)" ~count:50 ~mode:Q.Approx None
let relax_prop = diff_prop "frozen engine = oracle (RELAX)" ~count:50 ~mode:Q.Relax None

let distance_aware = Some { Core.Options.default with Core.Options.distance_aware = true }

let approx_da_prop =
  diff_prop "distance-aware = oracle (APPROX)" ~count:35 ~mode:Q.Approx distance_aware

let relax_da_prop =
  diff_prop "distance-aware = oracle (RELAX)" ~count:25 ~mode:Q.Relax distance_aware

let unbatched_prop =
  diff_prop "unbatched seeding = oracle (exact)" ~count:25 ~mode:Q.Exact
    (Some { Core.Options.default with Core.Options.batched_seeding = false })

let decomposed_prop =
  QCheck2.Test.make ~name:"decomposed = oracle (APPROX alternation)" ~count:35
    (QCheck2.Gen.pair (gen_instance ~mode:Q.Approx) gen_regex)
    (fun (inst, extra) ->
      (* force a top-level alternation so decomposition actually kicks in *)
      let inst = { inst with regex = R.Alt (inst.regex, extra) } in
      agree ~options:{ Core.Options.default with Core.Options.decompose = true } inst)

(* --- emission order ---------------------------------------------------- *)

let hetero_costs =
  { Core.Options.ins = 2; del = 2; sub = 4; beta = 2; gamma = 3 }

(* No duplicate (x, y) pair in the whole stream, and distances never drop
   below the running maximum by more than [slack].  Swept over the domain
   counts: a parallel stream's canonical order is stricter than any slack,
   but the dup-pair ban is exactly the merge-dedup contract. *)
let well_ordered options inst =
  let g, k = build inst in
  let conjunct = conjunct_of inst in
  let levelled =
    options.Core.Options.distance_aware
    || (options.Core.Options.decompose
       && List.length (R.top_level_alternatives conjunct.Q.regex) > 1)
  in
  let slack = if levelled then Core.Options.phi options conjunct.Q.cmode - 1 else 0 in
  List.for_all
    (fun domains ->
      let stream = Oracle.engine_stream g k (with_domains options domains) conjunct in
      let seen = Hashtbl.create 64 in
      let hi = ref 0 in
      List.for_all
        (fun (x, y, d) ->
          let fresh = not (Hashtbl.mem seen (x, y)) in
          Hashtbl.replace seen (x, y) ();
          let ordered = d >= !hi - slack in
          if d > !hi then hi := d;
          fresh && ordered)
        stream)
    (domains_under_test ())

let order_prop name ~count ~mode options =
  QCheck2.Test.make ~name ~count (gen_instance ~mode) (well_ordered options)

let plain_order_prop =
  order_prop "plain emission: strict non-decreasing, no dup pairs (hetero APPROX)" ~count:30
    ~mode:Q.Approx
    { Core.Options.default with Core.Options.costs = hetero_costs }

let da_order_prop =
  order_prop "distance-aware emission: slack phi-1, no dup pairs (hetero APPROX)" ~count:30
    ~mode:Q.Approx
    { Core.Options.default with Core.Options.costs = hetero_costs; distance_aware = true }

let da_relax_order_prop =
  order_prop "distance-aware emission: slack phi-1, no dup pairs (hetero RELAX)" ~count:20
    ~mode:Q.Relax
    { Core.Options.default with Core.Options.costs = hetero_costs; distance_aware = true }

let da_exact_order_prop =
  order_prop "distance-aware emission: strict for exact (phi = 1)" ~count:20 ~mode:Q.Exact
    { Core.Options.default with Core.Options.distance_aware = true }

let decomposed_order_prop =
  QCheck2.Test.make
    ~name:"decomposed emission: slack phi-1, no dup pairs across level restarts" ~count:30
    (QCheck2.Gen.pair (gen_instance ~mode:Q.Approx) gen_regex)
    (fun (inst, extra) ->
      let inst = { inst with regex = R.Alt (inst.regex, extra) } in
      well_ordered
        { Core.Options.default with Core.Options.costs = hetero_costs; decompose = true }
        inst)

let () =
  Alcotest.run "oracle"
    [
      ( "engine = oracle",
        [
          QCheck_alcotest.to_alcotest exact_prop;
          QCheck_alcotest.to_alcotest approx_prop;
          QCheck_alcotest.to_alcotest relax_prop;
          QCheck_alcotest.to_alcotest approx_da_prop;
          QCheck_alcotest.to_alcotest relax_da_prop;
          QCheck_alcotest.to_alcotest decomposed_prop;
          QCheck_alcotest.to_alcotest unbatched_prop;
        ] );
      ( "emission order",
        [
          QCheck_alcotest.to_alcotest plain_order_prop;
          QCheck_alcotest.to_alcotest da_order_prop;
          QCheck_alcotest.to_alcotest da_relax_order_prop;
          QCheck_alcotest.to_alcotest da_exact_order_prop;
          QCheck_alcotest.to_alcotest decomposed_order_prop;
        ] );
    ]
