(* Query-observatory test suite (lib/obs/{audit,quantile,slo,report}).

   Pins the audit record contract end to end: the JSON codec round-trips
   and its validator rejects version/field/type drift; the sink's
   one-line-plus-flush discipline makes [Audit.load] tolerant of a
   crash-truncated tail; the quantile estimator stays inside its
   documented 2x relative error bound against exact nearest-rank
   percentiles of synthetic distributions; the report renderer is
   byte-stable over a committed fixture log (the golden test — the same
   aggregation code [bin/omega_report] runs); and the engine emits exactly
   one schema-valid record per query through [Engine.close], for drained,
   rejected and parallel streams alike. *)

module Graph = Graphstore.Graph
module Q = Core.Query
module R = Rpq_regex.Regex
module Engine = Core.Engine
module Options = Core.Options
module Audit = Obs.Audit
module Quantile = Obs.Quantile
module Slo = Obs.Slo
module Report = Obs.Report
module Metrics = Obs.Metrics
module Json = Obs.Json
open Instance_gen

(* --- audit: hash -------------------------------------------------------- *)

let hash_test () =
  (* FNV-1a 64-bit reference vectors — the hash must stay stable across
     builds or logs from different runs stop aggregating together *)
  Alcotest.(check string) "empty string" "cbf29ce484222325" (Audit.hash "");
  Alcotest.(check string) "single char" "af63dc4c8601ec8c" (Audit.hash "a");
  Alcotest.(check bool) "distinct inputs, distinct hashes" true
    (Audit.hash "(?X, ?Y) <- (?X, p, ?Y)" <> Audit.hash "(?X, ?Y) <- (?X, q, ?Y)");
  Alcotest.(check int) "16 hex digits" 16 (String.length (Audit.hash "anything"))

(* --- audit: codec round-trip and schema validation ----------------------- *)

let full_record =
  {
    Audit.ts_ns = 123456789;
    query_hash = Audit.hash "(?X, ?Y) <- (?X, p|q, ?Y)";
    query = "(?X, ?Y) <- (?X, p|q, ?Y)";
    query_class = "exact+decomposed";
    plan = "1:exact/M_R(3s,2t)/parts(2)/batched(100)";
    termination = "exhausted";
    reason = Some "answer-limit";
    answers = 42;
    wall_ns = 1_500_000;
    cpu_ns = 1_400_000;
    est_states = 3;
    est_product = 700;
    actual_tuples = 655;
    domains = 2;
    shards =
      [
        { Audit.s_index = 0; s_busy_ns = 900_000; s_answers = 30 };
        { Audit.s_index = 1; s_busy_ns = 450_000; s_answers = 12 };
      ];
    merge_wait_ns = 120_000;
    imbalance_pct = 133;
    flight = Some { Audit.f_path = "flight.jsonl"; f_events = 480; f_dropped = 3 };
    tenant = Some "acme";
    stats = [ ("pushes", 655); ("pops", 600); ("answers", 42) ];
    gc = [ ("minor_words", 50_000); ("major_words", 1_200) ];
  }

let roundtrip_test () =
  (* through the full pipeline: record -> JSON -> string -> parse -> record *)
  let s = Json.to_string (Audit.to_json full_record) in
  match Json.parse s with
  | Error msg -> Alcotest.failf "serialised record does not re-parse: %s" msg
  | Ok j -> (
    match Audit.of_json j with
    | Error msg -> Alcotest.failf "re-parsed record rejected: %s" msg
    | Ok r ->
      Alcotest.(check bool) "round-trips structurally" true (r = full_record);
      (* reason = None / flight = None must survive as JSON null, not be dropped *)
      let r0 =
        { full_record with Audit.reason = None; flight = None; shards = []; stats = []; gc = [] }
      in
      (match Audit.of_json (Audit.to_json r0) with
      | Ok r0' -> Alcotest.(check bool) "null reason / empty lists round-trip" true (r0' = r0)
      | Error msg -> Alcotest.failf "minimal record rejected: %s" msg))

let schema_rejection_test () =
  let j = Audit.to_json full_record in
  (match Audit.validate j with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid record rejected: %s" msg);
  let reject what j =
    match Audit.validate j with
    | Ok () -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  (match j with
  | Json.Obj fields ->
    reject "future schema version"
      (Json.Obj (List.map (function "v", _ -> ("v", Json.Int 99) | kv -> kv) fields));
    reject "missing termination field"
      (Json.Obj (List.filter (fun (k, _) -> k <> "termination") fields));
    reject "wall_ns as string"
      (Json.Obj
         (List.map (function "wall_ns", _ -> ("wall_ns", Json.String "fast") | kv -> kv) fields));
    reject "malformed shard"
      (Json.Obj
         (List.map
            (function "shards", _ -> ("shards", Json.List [ Json.Obj [ ("i", Json.Int 0) ] ]) | kv -> kv)
            fields));
    reject "malformed flight link"
      (Json.Obj
         (List.map
            (function "flight", _ -> ("flight", Json.Obj [ ("path", Json.Int 3) ]) | kv -> kv)
            fields));
    (* pre-flight v1 records stay loadable, reading flight as None *)
    (match
       Audit.of_json
         (Json.Obj
            (List.filter_map
               (function
                 | "v", _ -> Some ("v", Json.Int 1)
                 | "flight", _ -> None
                 | kv -> Some kv)
               fields))
     with
    | Ok r -> Alcotest.(check bool) "v1 record reads with flight = None" true (r.Audit.flight = None)
    | Error msg -> Alcotest.failf "v1 record rejected: %s" msg)
  | _ -> Alcotest.fail "to_json did not produce an object");
  reject "non-object record" (Json.List [])

(* --- audit: sink crash-safety and tolerant load -------------------------- *)

let temp_path name =
  let path = Filename.temp_file name ".jsonl" in
  Sys.remove path;
  path

let sink_load_test () =
  let path = temp_path "audit_sink" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let sink = Audit.open_sink path in
      Audit.write sink full_record;
      Audit.write sink { full_record with Audit.answers = 7 };
      Audit.close_sink sink;
      (* simulate a crash truncating the record being written: the tail is
         half a JSON object with no newline *)
      let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
      output_string oc "{\"v\":1,\"ts_ns\":99,\"query_ha";
      close_out oc;
      match Audit.load path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok (records, skipped) ->
        Alcotest.(check int) "both complete records survive" 2 (List.length records);
        Alcotest.(check int) "truncated tail counted, not fatal" 1 skipped;
        Alcotest.(check bool) "first record intact" true (List.hd records = full_record));
  match Audit.load "/nonexistent/audit.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "load of a missing file must be an Error"

let global_sink_test () =
  let path = temp_path "audit_global" in
  Fun.protect
    ~finally:(fun () ->
      Audit.disable ();
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Alcotest.(check bool) "disabled by default" false (Audit.enabled ());
      Audit.emit full_record;
      (* no sink: emit is a no-op *)
      Alcotest.(check bool) "no file created while disabled" false (Sys.file_exists path);
      Audit.enable path;
      Alcotest.(check bool) "enabled" true (Audit.enabled ());
      Audit.emit full_record;
      Audit.disable ();
      Alcotest.(check bool) "disabled again" false (Audit.enabled ());
      Audit.emit full_record;
      match Audit.load path with
      | Ok (records, 0) -> Alcotest.(check int) "only the enabled-window emit landed" 1 (List.length records)
      | Ok (_, skipped) -> Alcotest.failf "unexpected skipped lines: %d" skipped
      | Error msg -> Alcotest.failf "load failed: %s" msg)

(* --- quantile: error bound vs exact percentiles -------------------------- *)

(* exact nearest-rank percentile of a sorted list *)
let exact_quantile sorted p =
  let n = List.length sorted in
  let rank = max 1 (int_of_float (ceil (p *. float_of_int n))) in
  float_of_int (List.nth sorted (rank - 1))

let check_bound ~what values p =
  let sorted = List.sort compare values in
  let r = Metrics.create () in
  let h = Metrics.histogram r "q" in
  List.iter (Metrics.observe h) values;
  let est = Quantile.of_histogram h p in
  let exact = exact_quantile sorted p in
  (* the documented bound: the estimate lies in the exact value's log2
     bucket, so it is off by strictly less than a factor of 2 *)
  if exact > 0. then begin
    if not (est > exact /. 2. && est < exact *. 2.) then
      Alcotest.failf "%s p%.0f: estimate %.0f outside (%.0f, %.0f)" what (100. *. p) est
        (exact /. 2.) (exact *. 2.)
  end
  else if est <> 0. then Alcotest.failf "%s p%.0f: expected 0, got %.0f" what (100. *. p) est

let quantile_bound_test () =
  let ps = [ 0.5; 0.9; 0.99 ] in
  let uniform = List.init 1000 (fun i -> i + 1) in
  let constant = List.init 64 (fun _ -> 777) in
  let heavy_tail = List.init 500 (fun i -> if i < 450 then 100 + (i mod 7) else 1 lsl (10 + (i mod 8))) in
  let tiny = [ 3 ] in
  List.iter
    (fun p ->
      check_bound ~what:"uniform 1..1000" uniform p;
      check_bound ~what:"constant" constant p;
      check_bound ~what:"heavy tail" heavy_tail p;
      check_bound ~what:"single value" tiny p)
    ps;
  (* empty distribution: 0, not NaN *)
  let r = Metrics.create () in
  let h = Metrics.histogram r "empty" in
  Alcotest.(check (float 0.)) "empty histogram p99" 0. (Quantile.of_histogram h 0.99);
  (* out-of-range p is clamped, not an exception *)
  let h2 = Metrics.histogram r "one" in
  Metrics.observe h2 10;
  Alcotest.(check bool) "p>1 clamps" true (Quantile.of_histogram h2 1.5 > 0.);
  Alcotest.(check bool) "p<0 clamps" true (Quantile.of_histogram h2 (-1.) >= 0.)

let quantile_monotone_prop =
  QCheck2.Test.make ~name:"quantile is monotone in p" ~count:100
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 100_000))
    (fun values ->
      let r = Metrics.create () in
      let h = Metrics.histogram r "q" in
      List.iter (Metrics.observe h) values;
      let qs = List.map (Quantile.of_histogram h) [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ] in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono qs)

(* --- slo ----------------------------------------------------------------- *)

let slo_test () =
  let t = Slo.create () in
  Alcotest.(check (list string)) "no classes yet" [] (Slo.classes t);
  Alcotest.(check bool) "summary of unseen class" true (Slo.summary t "exact" = None);
  for i = 1 to 100 do
    Slo.observe t ~cls:"exact" ~wall_ns:(i * 1000) ~cpu_ns:(i * 900)
  done;
  Slo.observe t ~cls:"approx" ~wall_ns:5_000_000 ~cpu_ns:4_000_000;
  Alcotest.(check (list string)) "classes sorted" [ "approx"; "exact" ] (Slo.classes t);
  (match Slo.summary t "exact" with
  | None -> Alcotest.fail "exact summary missing"
  | Some s ->
    Alcotest.(check int) "query count" 100 s.Slo.queries;
    Alcotest.(check int) "wall max exact" 100_000 s.Slo.wall_max;
    Alcotest.(check int) "cpu max exact" 90_000 s.Slo.cpu_max;
    let exact_p50 = 50_000. in
    Alcotest.(check bool) "wall p50 within 2x" true
      (s.Slo.wall_p50 > exact_p50 /. 2. && s.Slo.wall_p50 < exact_p50 *. 2.);
    Alcotest.(check bool) "percentiles ordered" true
      (s.Slo.wall_p50 <= s.Slo.wall_p90 && s.Slo.wall_p90 <= s.Slo.wall_p99));
  match Json.parse (Json.to_string (Slo.to_json t)) with
  | Error msg -> Alcotest.failf "slo JSON does not re-parse: %s" msg
  | Ok j -> (
    match Json.member "exact" j with
    | Some cls -> (
      match Json.member "queries" cls with
      | Some (Json.Int n) -> Alcotest.(check int) "queries in JSON" 100 n
      | _ -> Alcotest.fail "no queries field under the class")
    | None -> Alcotest.fail "class key missing from slo JSON")

(* --- report: golden output over the committed fixture log ----------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture_records () =
  match Audit.load "fixtures/audit_fixture.jsonl" with
  | Error msg -> Alcotest.failf "fixture unreadable: %s" msg
  | Ok (records, 0) -> records
  | Ok (_, skipped) -> Alcotest.failf "fixture has %d malformed line(s)" skipped

let report_golden_test () =
  let records = fixture_records () in
  Alcotest.(check int) "fixture record count" 6 (List.length records);
  let report = Report.build records in
  Alcotest.(check int) "total" 6 (Report.total report);
  let rendered = Format.asprintf "%a" Report.pp report in
  let golden = read_file "fixtures/report_golden.txt" in
  Alcotest.(check string) "text report matches the golden fixture" golden rendered

let report_json_test () =
  let report = Report.build (fixture_records ()) in
  match Json.parse (Json.to_string (Report.to_json report)) with
  | Error msg -> Alcotest.failf "report JSON does not re-parse: %s" msg
  | Ok j ->
    (match Json.member "queries" j with
    | Some (Json.Int n) -> Alcotest.(check int) "queries" 6 n
    | _ -> Alcotest.fail "no queries field");
    (match Json.member "admission" j with
    | Some adm -> (
      match (Json.member "vetted" adm, Json.member "underestimated" adm) with
      | Some (Json.Int v), Some (Json.Int u) ->
        Alcotest.(check int) "vetted (est_product > 0)" 5 v;
        Alcotest.(check int) "underestimated (actual > est)" 2 u
      | _ -> Alcotest.fail "admission summary incomplete")
    | None -> Alcotest.fail "no admission section");
    match Json.member "parallel" j with
    | Some par -> (
      match Json.member "sharded" par with
      | Some (Json.Int n) -> Alcotest.(check int) "one sharded query" 1 n
      | _ -> Alcotest.fail "no sharded count")
    | None -> Alcotest.fail "no parallel section"

(* clockless hosts: a sharded run with unmeasured busy times (imbalance 0,
   merge_wait 0) must render '-' / JSON null, never a bogus figure *)
let report_clockless_parallel_test () =
  let clockless =
    {
      full_record with
      Audit.imbalance_pct = 0;
      merge_wait_ns = 0;
      shards =
        [
          { Audit.s_index = 0; s_busy_ns = 0; s_answers = 30 };
          { Audit.s_index = 1; s_busy_ns = 0; s_answers = 12 };
        ];
    }
  in
  let report = Report.build [ clockless ] in
  let rendered = Format.asprintf "%a" Report.pp report in
  Alcotest.(check bool) "text reports unmeasured as '-'" true
    (let needle = "sharded=1 imbalance mean=- max=- merge_wait=-" in
     let n = String.length needle in
     let rec find i =
       i + n <= String.length rendered && (String.sub rendered i n = needle || find (i + 1))
     in
     find 0);
  (match Json.member "parallel" (Report.to_json report) with
  | Some par ->
    Alcotest.(check bool) "imbalance_mean_pct is null" true
      (Json.member "imbalance_mean_pct" par = Some Json.Null);
    Alcotest.(check bool) "merge_wait_total_ns is null" true
      (Json.member "merge_wait_total_ns" par = Some Json.Null);
    Alcotest.(check bool) "measured count is 0" true (Json.member "measured" par = Some (Json.Int 0))
  | None -> Alcotest.fail "no parallel section");
  (* and a measured record keeps its numbers *)
  let measured = Report.build [ full_record ] in
  match Json.member "parallel" (Report.to_json measured) with
  | Some par ->
    Alcotest.(check bool) "measured imbalance stays numeric" true
      (Json.member "imbalance_max_pct" par = Some (Json.Int 133))
  | None -> Alcotest.fail "no parallel section (measured)"

let report_compare_test () =
  let report = Report.build (fixture_records ()) in
  (* identical logs: the comparison must render and the JSON re-parse *)
  let rendered = Format.asprintf "%a" Report.pp_compare (report, report) in
  Alcotest.(check bool) "comparison renders" true (String.length rendered > 0);
  match Json.parse (Json.to_string (Report.compare_json report report)) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "compare JSON does not re-parse: %s" msg

(* per-tenant rollup: server logs stamp records with a tenant; the report
   groups query work and sheds by it.  Tenant-less (pre-v3) logs must not
   grow a section — the golden fixture pins that above. *)
let report_tenant_rollup_test () =
  let q tenant cls wall =
    { full_record with Audit.tenant; query_class = cls; wall_ns = wall; shards = []; imbalance_pct = 0; merge_wait_ns = 0 }
  in
  let shed tenant =
    {
      (q tenant "server" 0) with
      Audit.termination = "shed";
      reason = Some "overload";
      answers = 0;
    }
  in
  let records =
    [
      q (Some "acme") "exact" 1_000;
      q (Some "acme") "exact" 3_000;
      q (Some "acme") "approx" 9_000;
      shed (Some "acme");
      shed (Some "acme");
      q (Some "zeta") "exact" 2_000;
      q None "exact" 500 (* pre-v3 record in the same log: counted globally only *);
      { (q (Some "server") "server" 0) with Audit.termination = "drain" };
    ]
  in
  let report = Report.build records in
  let rendered = Format.asprintf "%a" Report.pp report in
  let contains needle hay =
    let n = String.length needle in
    let rec find i = i + n <= String.length hay && (String.sub hay i n = needle || find (i + 1)) in
    find 0
  in
  Alcotest.(check bool) "per-tenant section renders" true (contains "per-tenant:" rendered);
  Alcotest.(check bool) "acme rollup line" true
    (contains "acme               queries=3    shed=2" rendered);
  Alcotest.(check bool) "zeta rollup line" true
    (contains "zeta               queries=1    shed=0" rendered);
  Alcotest.(check bool) "server bookkeeping rows carry no query work" true
    (contains "server             queries=0    shed=0" rendered);
  (match Json.member "tenants" (Report.to_json report) with
  | Some (Json.Obj tenants) -> (
    Alcotest.(check (list string)) "tenants sorted" [ "acme"; "server"; "zeta" ]
      (List.map fst tenants);
    match Json.member "acme" (Json.Obj tenants) with
    | Some acme ->
      Alcotest.(check bool) "acme queries" true (Json.member "queries" acme = Some (Json.Int 3));
      Alcotest.(check bool) "acme shed" true (Json.member "shed" acme = Some (Json.Int 2));
      (match Json.member "classes" acme with
      | Some cls -> (
        match Json.member "exact" cls with
        | Some exact ->
          Alcotest.(check bool) "acme exact class count" true
            (Json.member "queries" exact = Some (Json.Int 2))
        | None -> Alcotest.fail "acme exact class missing")
      | None -> Alcotest.fail "acme classes missing")
    | None -> Alcotest.fail "acme missing from tenants JSON")
  | _ -> Alcotest.fail "no tenants object in report JSON");
  (* tenant-less logs: no section, empty JSON object *)
  let plain = Report.build (fixture_records ()) in
  Alcotest.(check bool) "no per-tenant section for pre-v3 logs" false
    (contains "per-tenant:" (Format.asprintf "%a" Report.pp plain));
  match Json.member "tenants" (Report.to_json plain) with
  | Some (Json.Obj []) -> ()
  | _ -> Alcotest.fail "tenants should be an empty object for tenant-less logs"

(* --- engine integration: one schema-valid record per query ---------------- *)

let audit_instance =
  {
    n_base = 12;
    edges = List.init 40 (fun i -> (i mod 12, "p", (i * 7) mod 12));
    types = [ (0, 0); (3, 1) ];
    regex = R.star (R.lbl "p");
    mode = Q.Approx;
    subj = `Var;
    obj = `Fresh;
  }

(* run one query with the global audit sink pointed at a temp file and
   return the emitted records *)
let with_audit f =
  let path = temp_path "audit_engine" in
  Fun.protect
    ~finally:(fun () ->
      Audit.disable ();
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Audit.enable path;
      f ();
      Audit.disable ();
      match Audit.load path with
      | Error msg -> Alcotest.failf "audit log unreadable: %s" msg
      | Ok (records, 0) -> records
      | Ok (_, skipped) -> Alcotest.failf "engine wrote %d malformed line(s)" skipped)

let engine_audit_test () =
  let g, k = build audit_instance in
  let q = Q.single ~mode:Q.Approx (Q.Var "X") audit_instance.regex (Q.Var "Y") in
  let records =
    with_audit (fun () ->
        let st = Engine.open_query ~graph:g ~ontology:k q in
        let outcome = Engine.drain ~limit:50 st in
        Alcotest.(check bool) "query produced answers" true (outcome.Engine.answers <> []))
  in
  match records with
  | [ r ] ->
    Alcotest.(check string) "class" "approx" r.Audit.query_class;
    Alcotest.(check string) "hash matches the canonical query text" (Audit.hash r.Audit.query)
      r.Audit.query_hash;
    Alcotest.(check bool) "plan is non-empty" true (r.Audit.plan <> "");
    Alcotest.(check bool) "stats carried" true (List.mem_assoc "pushes" r.Audit.stats);
    Alcotest.(check bool) "gc deltas carried" true (List.mem_assoc "minor_words" r.Audit.gc);
    Alcotest.(check int) "sequential run has no shards" 0 (List.length r.Audit.shards);
    Alcotest.(check bool) "record validates" true (Audit.validate (Audit.to_json r) = Ok ())
  | l -> Alcotest.failf "expected exactly one audit record, got %d" (List.length l)

let engine_audit_close_idempotent_test () =
  let g, k = build audit_instance in
  let q = Q.single ~mode:Q.Approx (Q.Var "X") audit_instance.regex (Q.Var "Y") in
  let records =
    with_audit (fun () ->
        let st = Engine.open_query ~graph:g ~ontology:k q in
        ignore (Engine.drain ~limit:5 st);
        (* drain already closed the stream; closing again must not emit a
           second record *)
        Engine.close st;
        Engine.close st)
  in
  Alcotest.(check int) "one record despite repeated close" 1 (List.length records)

let engine_audit_rejected_test () =
  let g, k = build audit_instance in
  let q = Q.single ~mode:Q.Approx (Q.Var "X") audit_instance.regex (Q.Var "Y") in
  let options = { Options.default with Options.max_states = Some 1 } in
  let records =
    with_audit (fun () ->
        let st = Engine.open_query ~graph:g ~ontology:k ~options q in
        Alcotest.(check bool) "stream yields nothing" true (Engine.next st = None))
  in
  match records with
  | [ r ] ->
    Alcotest.(check string) "termination" "rejected" r.Audit.termination;
    Alcotest.(check bool) "rejection reason present" true (r.Audit.reason <> None);
    Alcotest.(check string) "plan marks the rejection" "rejected" r.Audit.plan;
    Alcotest.(check int) "no answers" 0 r.Audit.answers
  | l -> Alcotest.failf "expected one rejected record, got %d" (List.length l)

let engine_audit_parallel_test () =
  let g, k = build audit_instance in
  let q = Q.single ~mode:Q.Approx (Q.Var "X") audit_instance.regex (Q.Var "Y") in
  let options = { Options.default with Options.domains = 2 } in
  Obs.Clock.install (fun () -> int_of_float (1e9 *. Unix.gettimeofday ()));
  let records =
    Fun.protect ~finally:Obs.Clock.uninstall (fun () ->
        with_audit (fun () ->
            let st = Engine.open_query ~graph:g ~ontology:k ~options q in
            ignore (Engine.drain st)))
  in
  match records with
  | [ r ] ->
    Alcotest.(check int) "domains recorded" 2 r.Audit.domains;
    Alcotest.(check int) "two shards reported" 2 (List.length r.Audit.shards);
    List.iter
      (fun s -> Alcotest.(check bool) "shard busy time measured" true (s.Audit.s_busy_ns > 0))
      r.Audit.shards;
    Alcotest.(check bool) "imbalance measured (>= 100 = max/mean)" true (r.Audit.imbalance_pct >= 100)
  | l -> Alcotest.failf "expected one parallel record, got %d" (List.length l)

(* both sinks active: the audit record cross-links the flight dump *)
let engine_audit_flight_link_test () =
  let g, k = build audit_instance in
  let q = Q.single ~mode:Q.Approx (Q.Var "X") audit_instance.regex (Q.Var "Y") in
  let options = { Options.default with Options.domains = 2 } in
  let dump = temp_path "flight_dump" in
  Obs.Clock.install (fun () -> int_of_float (1e9 *. Unix.gettimeofday ()));
  Obs.Flight.set_dump_target (Some dump);
  Obs.Flight.enable ();
  let records =
    Fun.protect
      ~finally:(fun () ->
        Obs.Flight.disable ();
        Obs.Flight.set_dump_target None;
        Obs.Flight.clear ();
        Obs.Clock.uninstall ())
      (fun () ->
        with_audit (fun () ->
            let st = Engine.open_query ~graph:g ~ontology:k ~options q in
            ignore (Engine.drain st)))
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dump then Sys.remove dump) @@ fun () ->
  match records with
  | [ r ] -> (
    match r.Audit.flight with
    | None -> Alcotest.fail "audit record missing the flight link"
    | Some f ->
      Alcotest.(check string) "flight path recorded" dump f.Audit.f_path;
      Alcotest.(check bool) "events recorded" true (f.Audit.f_events > 0);
      Alcotest.(check bool) "record validates under v2" true (Audit.validate (Audit.to_json r) = Ok ());
      (* the dump itself replays clean *)
      (match Obs.Replay.load f.Audit.f_path with
      | Error msg -> Alcotest.failf "dump unreadable: %s" msg
      | Ok rep ->
        Alcotest.(check bool) "replay finds no violation" true (Obs.Replay.ok rep);
        Alcotest.(check int) "replay event count matches the link" f.Audit.f_events
          (List.length rep.Obs.Replay.events)))
  | l -> Alcotest.failf "expected one record, got %d" (List.length l)

let () =
  Alcotest.run "observatory"
    [
      ( "audit",
        [
          Alcotest.test_case "FNV-1a hash vectors" `Quick hash_test;
          Alcotest.test_case "JSON round-trip" `Quick roundtrip_test;
          Alcotest.test_case "schema validation rejects drift" `Quick schema_rejection_test;
          Alcotest.test_case "sink write / tolerant load" `Quick sink_load_test;
          Alcotest.test_case "global sink enable/disable" `Quick global_sink_test;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "2x error bound vs exact percentiles" `Quick quantile_bound_test;
          QCheck_alcotest.to_alcotest quantile_monotone_prop;
        ] );
      ( "slo", [ Alcotest.test_case "per-class summaries" `Quick slo_test ] );
      ( "report",
        [
          Alcotest.test_case "golden text output" `Quick report_golden_test;
          Alcotest.test_case "JSON aggregates" `Quick report_json_test;
          Alcotest.test_case "clockless parallel figures render unmeasured" `Quick
            report_clockless_parallel_test;
          Alcotest.test_case "comparison view" `Quick report_compare_test;
          Alcotest.test_case "per-tenant rollup" `Quick report_tenant_rollup_test;
        ] );
      ( "engine",
        [
          Alcotest.test_case "one record per drained query" `Quick engine_audit_test;
          Alcotest.test_case "close is emit-once" `Quick engine_audit_close_idempotent_test;
          Alcotest.test_case "rejected queries audited" `Quick engine_audit_rejected_test;
          Alcotest.test_case "parallel shard breakdown" `Quick engine_audit_parallel_test;
          Alcotest.test_case "flight dump cross-linked" `Quick engine_audit_flight_link_test;
        ] );
    ]
