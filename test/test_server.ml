(* The query server's chaos suite: the crash-only / shed / drain contract.

   Protocol layer: torn, garbage and wrong-typed frames get typed code-2
   responses and the daemon answers the next request normally; an
   oversized frame is bounded at the transport (never materialised) and
   the connection stays usable; injected accept/read/write faults abort
   one connection, never the process; a client disconnecting mid-stream
   is a non-event.

   Overload: a full in-flight set sheds with the configured
   retry_after_ms; a tenant at its own cap sheds while another tenant is
   still admitted (fairness); the stuck-query reaper cuts an over-age
   request through its governor.

   Drain: cancels in-flight requests (they answer partial/5 fault:drain),
   sheds new arrivals with reason "draining", and audits — every request
   exactly once, plus the final termination:"drain" marker whose stats
   reconcile with the served/shed/error counters.

   Rotation: Obs.Audit.reopen re-creates the sink at its path after a
   rename — the SIGHUP logrotate contract. *)

module Daemon = Server.Daemon
module Protocol = Server.Protocol
module Json = Obs.Json
module Graph = Graphstore.Graph

let check = Alcotest.check

let () = Obs.Clock.install (fun () -> int_of_float (1e9 *. Unix.gettimeofday ()))

(* --- fixture ----------------------------------------------------------- *)

let build_graph () =
  let g = Graph.create () in
  let n = Array.init 8 (fun i -> Graph.add_node g (Printf.sprintf "N%d" i)) in
  Array.iteri
    (fun i src ->
      List.iter (fun l -> Graph.add_edge_s g src l n.((i + 1) mod 8)) [ "a"; "b"; "knows" ])
    n;
  let k = Ontology.create (Graph.interner g) in
  Graph.freeze g;
  (g, k)

let make_daemon ?(config = Daemon.default_config) () =
  let graph, ontology = build_graph () in
  Daemon.create ~graph ~ontology config

let handle t line =
  match Daemon.handle_request t line with
  | None -> Alcotest.failf "no response for %S" line
  | Some resp -> (
    match Json.parse resp with
    | Error m -> Alcotest.failf "unparseable response %S: %s" resp m
    | Ok j -> j)

let code j =
  match Protocol.response_code j with
  | Some c -> c
  | None -> Alcotest.failf "response without a code: %s" (Json.to_string j)

let str_field k j =
  match Json.member k j with Some (Json.String s) -> Some s | _ -> None

let int_field k j = Option.bind (Json.member k j) Json.to_int

let with_audit f =
  let path = Filename.temp_file "omega_server_audit" ".jsonl" in
  Obs.Audit.enable path;
  Fun.protect
    ~finally:(fun () ->
      Obs.Audit.disable ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let load_audit path =
  match Obs.Audit.load path with
  | Ok (records, 0) -> records
  | Ok (_, skipped) -> Alcotest.failf "audit log has %d malformed line(s)" skipped
  | Error m -> Alcotest.failf "cannot load audit log: %s" m

let good_query = {|{"id":1,"tenant":"acme","query":"(?X) <- (N0, a, ?X)"}|}

(* wait until [cond] holds (the cooperative machinery needs real time) *)
let await ?(timeout_s = 5.) cond =
  let t0 = Unix.gettimeofday () in
  while (not (cond ())) && Unix.gettimeofday () -. t0 < timeout_s do
    Thread.delay 0.005
  done;
  check Alcotest.bool "condition reached before timeout" true (cond ())

(* --- request isolation ------------------------------------------------- *)

let test_garbage_frames () =
  let t = make_daemon () in
  List.iter
    (fun (frame, kind) ->
      let j = handle t frame in
      check Alcotest.int (Printf.sprintf "code 2 for %S" frame) 2 (code j);
      check (Alcotest.option Alcotest.string)
        (Printf.sprintf "error kind for %S" frame)
        (Some kind) (str_field "error_kind" j))
    [
      ("garbage", "bad-json");
      ("{\"id\":", "bad-json");
      ("[1,2,3]", "bad-json");
      ("{\"id\":1}", "bad-request");
      ("{\"query\":42}", "bad-request");
      ("{\"op\":\"nope\",\"query\":\"x\"}", "bad-request");
      ("{\"op\":false}", "bad-request");
      ("{\"tenant\":\"\",\"query\":\"(?X) <- (N0, a, ?X)\"}", "bad-request");
      ("{\"limit\":0,\"query\":\"(?X) <- (N0, a, ?X)\"}", "bad-request");
      ("{\"query\":\"(?X <- nonsense\"}", "bad-query");
      ("{\"query\":\"(?X) <- (?Y, a, ?Z)\"}", "bad-query");
    ];
  (* the daemon answers the next request normally: not wedged, not crashed *)
  let j = handle t good_query in
  check Alcotest.int "good query still served" 0 (code j);
  check Alcotest.bool "answers arrived" true (int_field "count" j = Some 1);
  (* blank lines are keep-alive noise, not errors *)
  check Alcotest.bool "blank line ignored" true (Daemon.handle_request t "  " = None);
  let _, _, errors = Daemon.counts t in
  check Alcotest.int "every bad frame counted" 11 errors

let test_errors_audited_exactly_once () =
  with_audit (fun path ->
      let t = make_daemon () in
      ignore (handle t "garbage");
      ignore (handle t good_query);
      ignore (handle t {|{"op":"ping"}|});
      (* ping is a liveness probe: deliberately not audited *)
      let records = load_audit path in
      check Alcotest.int "two records: one error, one query" 2 (List.length records);
      (match records with
      | [ err; ok ] ->
        check Alcotest.string "error record termination" "error" err.Obs.Audit.termination;
        check (Alcotest.option Alcotest.string) "error reason" (Some "bad-json")
          err.Obs.Audit.reason;
        check (Alcotest.option Alcotest.string) "error tenant" (Some "anon") err.Obs.Audit.tenant;
        check Alcotest.string "query record termination" "completed" ok.Obs.Audit.termination;
        check (Alcotest.option Alcotest.string) "query tenant stamped" (Some "acme")
          ok.Obs.Audit.tenant
      | _ -> Alcotest.fail "unexpected record shape");
      (* and the records round-trip the v3 schema *)
      List.iter
        (fun r ->
          match Obs.Audit.validate (Obs.Audit.to_json r) with
          | Ok () -> ()
          | Error m -> Alcotest.failf "server audit record fails validation: %s" m)
        records)

(* --- transport chaos --------------------------------------------------- *)

(* run one server-side connection over a socketpair; returns the client fd
   and the server thread *)
let connected_pair t =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let th = Thread.create (fun () -> Daemon.serve_connection t server) () in
  (client, th)

let send_line fd line =
  let b = Bytes.of_string (line ^ "\n") in
  ignore (Unix.write fd b 0 (Bytes.length b))

let recv_line fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> Buffer.contents buf
    | _ -> if Bytes.get b 0 = '\n' then Buffer.contents buf else (Buffer.add_char buf (Bytes.get b 0); go ())
  in
  go ()

let test_oversized_frame () =
  let t = make_daemon ~config:{ Daemon.default_config with Daemon.max_line_bytes = 256 } () in
  let client, th = connected_pair t in
  send_line client (String.make 10_000 'x');
  let j = Result.get_ok (Json.parse (recv_line client)) in
  check Alcotest.int "oversized frame: code 2" 2 (code j);
  check (Alcotest.option Alcotest.string) "typed as request-too-large" (Some "request-too-large")
    (str_field "error_kind" j);
  (* the bounded reader consumed the tail: the connection is still usable *)
  send_line client good_query;
  let j = Result.get_ok (Json.parse (recv_line client)) in
  check Alcotest.int "same connection still serves" 0 (code j);
  Unix.close client;
  Thread.join th;
  let _, _, errors = Daemon.counts t in
  check Alcotest.int "oversized frame audited as an error" 1 errors

let test_disconnect_mid_stream () =
  let t = make_daemon () in
  let client, th = connected_pair t in
  (* a torn frame: half a request, then the client vanishes *)
  ignore (Unix.write client (Bytes.of_string "{\"id\":1,\"query\":\"(?X) <-") 0 24);
  Unix.close client;
  Thread.join th;
  (* the daemon is fine: direct requests still serve *)
  check Alcotest.int "daemon survives the disconnect" 0 (code (handle t good_query))

let test_failpoint_faults () =
  let t = make_daemon () in
  (* read fault: the connection aborts after serving nothing *)
  Core.Failpoints.arm ~seed:7 [ (Core.Failpoints.Srv_read, 1.0) ];
  let client, th = connected_pair t in
  send_line client good_query;
  check Alcotest.string "read fault: connection closed without a response" "" (recv_line client);
  Unix.close client;
  Thread.join th;
  (* write fault: the request is handled (and audited) but the response
     write aborts the connection *)
  Core.Failpoints.arm ~seed:7 [ (Core.Failpoints.Srv_write, 1.0) ];
  let client, th = connected_pair t in
  send_line client good_query;
  check Alcotest.string "write fault: connection closed" "" (recv_line client);
  Unix.close client;
  Thread.join th;
  Core.Failpoints.disarm ();
  (* the daemon never noticed: a fresh connection serves normally *)
  let client, th = connected_pair t in
  send_line client good_query;
  let j = Result.get_ok (Json.parse (recv_line client)) in
  check Alcotest.int "daemon survives injected faults" 0 (code j);
  Unix.close client;
  Thread.join th

(* --- overload ---------------------------------------------------------- *)

let sleep_frame ?(tenant = "t1") ms =
  Printf.sprintf {|{"op":"sleep","tenant":"%s","ms":%d}|} tenant ms

let debug_config =
  { Daemon.default_config with Daemon.debug_ops = true; max_inflight = 1; retry_after_ms = 33 }

let test_flood_sheds () =
  let t = make_daemon ~config:debug_config () in
  let sleeper = Thread.create (fun () -> handle t (sleep_frame 2_000)) () in
  await (fun () -> Daemon.inflight t = 1);
  let j = handle t good_query in
  check Alcotest.int "full in-flight set sheds" 7 (code j);
  check Alcotest.string "shed status" "shed" (Option.get (str_field "status" j));
  check (Alcotest.option Alcotest.string) "shed reason" (Some "overload") (str_field "reason" j);
  check (Alcotest.option Alcotest.int) "configured retry hint" (Some 33)
    (int_field "retry_after_ms" j);
  (* cut the sleeper so the test exits promptly *)
  Daemon.drain t;
  Thread.join sleeper

let test_tenant_fairness () =
  let t =
    make_daemon
      ~config:
        { Daemon.default_config with Daemon.debug_ops = true; max_inflight = 4; tenant_inflight = 1 }
      ()
  in
  let sleeper = Thread.create (fun () -> handle t (sleep_frame ~tenant:"t1" 2_000)) () in
  await (fun () -> Daemon.inflight t = 1);
  (* t1 is at its per-tenant cap: shed, even though the global cap has room *)
  let j = handle t {|{"tenant":"t1","query":"(?X) <- (N0, a, ?X)"}|} in
  check Alcotest.int "flooding tenant shed" 7 (code j);
  (* t2 is unaffected: fairness *)
  let j = handle t {|{"tenant":"t2","query":"(?X) <- (N0, a, ?X)"}|} in
  check Alcotest.int "other tenant still admitted" 0 (code j);
  Daemon.drain t;
  Thread.join sleeper

let test_reaper_cuts_stuck () =
  let t =
    make_daemon
      ~config:{ debug_config with Daemon.hard_timeout_ms = Some 50; max_inflight = 2 }
      ()
  in
  let result = ref Json.Null in
  let sleeper = Thread.create (fun () -> result := handle t (sleep_frame 10_000)) () in
  await (fun () -> Daemon.inflight t = 1);
  Thread.delay 0.08 (* past the hard timeout *);
  check Alcotest.int "one stuck request reaped" 1 (Daemon.reap_stuck t);
  Thread.join sleeper;
  check Alcotest.int "stuck request answered partial/5" 5 (code !result);
  check (Alcotest.option Alcotest.string) "cut reason is the reaper's" (Some "fault:stuck")
    (str_field "reason" !result)

(* --- drain ------------------------------------------------------------- *)

let test_drain () =
  with_audit (fun path ->
      let t = make_daemon ~config:{ debug_config with Daemon.max_inflight = 2 } () in
      ignore (handle t good_query);
      let result = ref Json.Null in
      let sleeper = Thread.create (fun () -> result := handle t (sleep_frame 10_000)) () in
      await (fun () -> Daemon.inflight t = 1);
      Daemon.drain t;
      Thread.join sleeper;
      check Alcotest.int "in-flight request cut, not dropped" 5 (code !result);
      check (Alcotest.option Alcotest.string) "cut by the drain" (Some "fault:drain")
        (str_field "reason" !result);
      (* post-drain arrivals shed with the draining reason *)
      let j = handle t good_query in
      check Alcotest.int "draining server sheds" 7 (code j);
      check (Alcotest.option Alcotest.string) "draining reason" (Some "draining")
        (str_field "reason" j);
      (* audit: query + cut sleep + drain marker, exactly once each (the
         post-drain shed lands after the sink closed — by design: the
         marker is the log's final line) *)
      let records = load_audit path in
      check Alcotest.int "three records" 3 (List.length records);
      let drain_rec = List.nth records 2 in
      check Alcotest.string "final record is the drain marker" "drain"
        drain_rec.Obs.Audit.termination;
      check (Alcotest.option Alcotest.string) "marker tenant" (Some "server")
        drain_rec.Obs.Audit.tenant;
      let stat k = List.assoc k drain_rec.Obs.Audit.stats in
      check Alcotest.int "marker: served reconciles" 2 (stat "served");
      check Alcotest.int "marker: one request cut" 1 (stat "cut");
      check Alcotest.int "marker: nothing stranded" 0 (stat "stranded");
      (* drain is idempotent *)
      Daemon.drain t)

(* --- audit rotation (the SIGHUP contract) ------------------------------ *)

let test_audit_rotation () =
  let dir = Filename.temp_file "omega_rotate" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let live = Filename.concat dir "audit.jsonl" in
  let rotated = Filename.concat dir "audit.jsonl.1" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Audit.disable ();
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Obs.Audit.enable live;
      let t = make_daemon () in
      ignore (handle t good_query);
      (* logrotate renames the live file, then SIGHUPs the daemon; the
         handler funnels into Obs.Audit.reopen — called directly here *)
      Sys.rename live rotated;
      Obs.Audit.reopen ();
      ignore (handle t good_query);
      check Alcotest.int "pre-rotation record stayed in the rotated file" 1
        (List.length (load_audit rotated));
      check Alcotest.bool "sink re-created the live path" true (Sys.file_exists live);
      check Alcotest.int "post-rotation record landed in the new file" 1
        (List.length (load_audit live)))

(* --- protocol unit surface --------------------------------------------- *)

let test_protocol_parse () =
  (match Protocol.parse_request good_query with
  | Ok req ->
    check Alcotest.string "tenant" "acme" req.Protocol.tenant;
    check Alcotest.bool "op query" true (req.Protocol.op = Protocol.Query)
  | Error _ -> Alcotest.fail "good query frame must parse");
  (match Protocol.parse_request {|{"id":"abc","op":"ping"}|} with
  | Ok req ->
    check Alcotest.bool "id echoed" true (req.Protocol.id = Json.String "abc");
    check Alcotest.string "tenant defaults" "anon" req.Protocol.tenant
  | Error _ -> Alcotest.fail "ping frame must parse");
  match Protocol.parse_request {|{"id":7,"query":true}|} with
  | Ok _ -> Alcotest.fail "wrong-typed query field must be rejected"
  | Error (id, err) ->
    check Alcotest.bool "id recovered into the error" true (id = Json.Int 7);
    check Alcotest.string "typed" "bad-request" (Protocol.error_tag err)

let () =
  Alcotest.run "server"
    [
      ( "isolation",
        [
          Alcotest.test_case "garbage frames answered, daemon lives" `Quick test_garbage_frames;
          Alcotest.test_case "audited exactly once" `Quick test_errors_audited_exactly_once;
        ] );
      ( "transport",
        [
          Alcotest.test_case "oversized frame bounded" `Quick test_oversized_frame;
          Alcotest.test_case "disconnect mid-stream" `Quick test_disconnect_mid_stream;
          Alcotest.test_case "injected read/write faults" `Quick test_failpoint_faults;
        ] );
      ( "overload",
        [
          Alcotest.test_case "flood sheds with retry_after_ms" `Quick test_flood_sheds;
          Alcotest.test_case "per-tenant fairness" `Quick test_tenant_fairness;
          Alcotest.test_case "reaper cuts stuck queries" `Quick test_reaper_cuts_stuck;
        ] );
      ("drain", [ Alcotest.test_case "graceful drain" `Quick test_drain ]);
      ("rotation", [ Alcotest.test_case "SIGHUP audit reopen" `Quick test_audit_rotation ]);
      ("protocol", [ Alcotest.test_case "request parsing" `Quick test_protocol_parse ]);
    ]
