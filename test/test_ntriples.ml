(* Tests for the triple-file persistence layer: writing, parsing, escaping,
   round-trips of data graphs and ontologies, and error reporting. *)

module Graph = Graphstore.Graph
module Nt = Ntriples.Nt

let check = Alcotest.check

let with_temp_file f =
  let path = Filename.temp_file "omega-test" ".nt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let fixture () =
  let g = Graph.create () in
  let a = Graph.add_node g "alice"
  and b = Graph.add_node g "bob"
  and lonely = Graph.add_node g "lonely node" in
  ignore lonely;
  Graph.add_edge_s g a "knows" b;
  Graph.add_edge_s g b "type" (Graph.add_node g "Person");
  let k = Ontology.create (Graph.interner g) in
  Ontology.add_subclass k "Person" "Agent";
  Ontology.add_subproperty k "knows" "relatesTo";
  Ontology.add_domain k "knows" "Person";
  Ontology.add_range k "knows" "Person";
  (g, k)

let test_roundtrip () =
  let g, k = fixture () in
  with_temp_file (fun path ->
      Nt.save path ~graph:g ~ontology:k;
      let g', k' = Nt.load path in
      check Alcotest.int "edges" (Graph.n_edges g) (Graph.n_edges g');
      (* Agent appears as a class node after the roundtrip *)
      check Alcotest.bool "class node added" true (Graph.find_node g' "Agent" <> None);
      check Alcotest.bool "isolated node kept" true (Graph.find_node g' "lonely node" <> None);
      let alice = Option.get (Graph.find_node g' "alice") in
      let knows = Graphstore.Interner.intern (Graph.interner g') "knows" in
      check Alcotest.int "alice knows one" 1 (List.length (Graph.neighbors g' alice knows Graph.Out));
      let interner = Ontology.interner k' in
      let person = Graphstore.Interner.intern interner "Person" in
      check Alcotest.(list int) "subclass kept"
        [ Graphstore.Interner.intern interner "Agent" ]
        (Ontology.super_classes k' person);
      let knows_p = Graphstore.Interner.intern interner "knows" in
      check Alcotest.bool "subproperty kept" true (Ontology.super_properties k' knows_p <> []);
      check Alcotest.bool "domain kept" true (Ontology.domain k' knows_p = Some person))

let test_escaping () =
  let g = Graph.create () in
  let weird = "a>b\\c <d>" in
  let x = Graph.add_node g weird and y = Graph.add_node g "plain" in
  Graph.add_edge_s g x "p>q" y;
  let k = Ontology.create (Graph.interner g) in
  with_temp_file (fun path ->
      Nt.save path ~graph:g ~ontology:k;
      let g', _ = Nt.load path in
      check Alcotest.bool "weird label survives" true (Graph.find_node g' weird <> None);
      let x' = Option.get (Graph.find_node g' weird) in
      let p = Graphstore.Interner.intern (Graph.interner g') "p>q" in
      check Alcotest.int "weird edge label survives" 1
        (List.length (Graph.neighbors g' x' p Graph.Out)))

let test_comments_and_blank_lines () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "# a comment\n\n<a> <p> <b> .\n   \n";
      close_out oc;
      let g, _ = Nt.load path in
      check Alcotest.int "one edge" 1 (Graph.n_edges g);
      check Alcotest.int "two nodes" 2 (Graph.n_nodes g))

let test_parse_errors () =
  let bad_cases = [ "<a> <p> <b>"; "<a> <p>"; "a <p> <b> ."; "<a <p> <b> ." ] in
  List.iter
    (fun line ->
      with_temp_file (fun path ->
          let oc = open_out path in
          output_string oc (line ^ "\n");
          close_out oc;
          match Nt.load path with
          | _ -> Alcotest.failf "expected %S to fail" line
          | exception Nt.Parse_error (_, 1) -> ()))
    bad_cases

let test_line_numbers () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "<a> <p> <b> .\n<broken\n";
      close_out oc;
      match Nt.load path with
      | _ -> Alcotest.fail "expected a parse error"
      | exception Nt.Parse_error (_, 2) -> ())

let test_lenient_mixed () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc
        "<a> <p> <b> .\n\
         <broken\n\
         # comment\n\
         <b> <p> <c> .\n\
         <a> <p>\n\
         junk line\n\
         <c> <sc> <D> .\n\
         <c> <p> <a> \n";
      close_out oc;
      (* strict load still aborts on the first malformed line *)
      (match Nt.load path with
      | _ -> Alcotest.fail "strict load must fail"
      | exception Nt.Parse_error (_, 2) -> ());
      let (g, k), report = Nt.load_report ~lenient:true path in
      check Alcotest.int "triples kept" 3 report.Nt.triples;
      check Alcotest.int "malformed counted" 4 report.Nt.malformed;
      check
        Alcotest.(list int)
        "error line numbers recorded" [ 2; 5; 6; 8 ]
        (List.map snd report.Nt.errors);
      check Alcotest.int "edges from the good lines" 2 (Graph.n_edges g);
      let interner = Ontology.interner k in
      let c = Graphstore.Interner.intern interner "c" in
      check Alcotest.bool "ontology line kept" true (Ontology.super_classes k c <> []);
      (* a clean file reports zero malformed lines *)
      let oc = open_out path in
      output_string oc "<a> <p> <b> .\n";
      close_out oc;
      let _, clean = Nt.load_report ~lenient:true path in
      check Alcotest.int "clean file: no malformed" 0 clean.Nt.malformed;
      check Alcotest.int "clean file: one triple" 1 clean.Nt.triples)

(* A line longer than the cap must fail with a typed oversized-line error
   in strict mode and be counted + skipped in lenient mode, with the
   reader retaining at most [max_line_bytes] of it — never the whole line
   (the [input_line] failure mode this replaces would materialise a
   multi-gigabyte hostile line in full). *)
let test_oversized_line () =
  let cap = 64 in
  let doc =
    "<a> <p> <b> .\n" ^ "<" ^ String.make 500 'x' ^ "> <p> <c> .\n" ^ "<c> <p> <d> .\n"
  in
  (* strict: typed Parse_error naming the offending line *)
  (match Nt.read_string_report ~max_line_bytes:cap doc with
  | _ -> Alcotest.fail "expected a Parse_error on the oversized line"
  | exception Nt.Parse_error (msg, line) ->
    check Alcotest.int "error on line 2" 2 line;
    let contains sub str =
      let n = String.length sub and m = String.length str in
      let rec go i = i + n <= m && (String.sub str i n = sub || go (i + 1)) in
      go 0
    in
    check Alcotest.bool "message mentions the cap" true (contains "64" msg));
  (* lenient: counted + skipped, the rest of the file salvaged *)
  let (g, _), report = Nt.read_string_report ~lenient:true ~max_line_bytes:cap doc in
  check Alcotest.int "one malformed line" 1 report.Nt.malformed;
  check Alcotest.int "two triples kept" 2 report.Nt.triples;
  check Alcotest.int "four nodes" 4 (Graph.n_nodes g);
  (* the default cap applies to files too *)
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc doc;
      close_out oc;
      let _, r = Nt.load_report ~lenient:true ~max_line_bytes:cap path in
      check Alcotest.int "file reader agrees" 1 r.Nt.malformed)

(* The in-memory reader (the fuzzer's entry point) must agree with the
   channel reader on an ordinary mixed document. *)
let test_string_reader () =
  let doc = "# header\n<a> <p> <b> .\n\nbroken line\n<b> <sc> <c> .\n" in
  let (g1, _), r1 = Nt.read_string_report ~lenient:true doc in
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc doc;
      close_out oc;
      let (g2, _), r2 = Nt.load_report ~lenient:true path in
      check Alcotest.int "same triples" r2.Nt.triples r1.Nt.triples;
      check Alcotest.int "same malformed" r2.Nt.malformed r1.Nt.malformed;
      check Alcotest.int "same nodes" (Graph.n_nodes g2) (Graph.n_nodes g1);
      check Alcotest.int "same edges" (Graph.n_edges g2) (Graph.n_edges g1))

let test_generated_dataset_roundtrip () =
  (* an end-to-end sized roundtrip: the L4All 21-timeline graph *)
  let g, k = Datagen.L4all.generate ~timelines:21 () in
  with_temp_file (fun path ->
      Nt.save path ~graph:g ~ontology:k;
      let g', k' = Nt.load path in
      check Alcotest.int "nodes" (Graph.n_nodes g) (Graph.n_nodes g');
      check Alcotest.int "edges" (Graph.n_edges g) (Graph.n_edges g');
      (* queries answer identically on the reloaded graph *)
      let q = Datagen.L4all.query_text 3 Core.Query.Exact in
      let on gk kk =
        match Core.Engine.run_string ~graph:gk ~ontology:kk ~limit:max_int q with
        | Ok o ->
          List.map
            (fun (a : Core.Engine.answer) -> List.map snd a.Core.Engine.bindings)
            o.Core.Engine.answers
          |> List.sort compare
        | Error m -> Alcotest.fail m
      in
      check Alcotest.(list (list string)) "same answers" (on g k) (on g' k'))

let () =
  Alcotest.run "ntriples"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "graph + ontology" `Quick test_roundtrip;
          Alcotest.test_case "escaping" `Quick test_escaping;
          Alcotest.test_case "generated dataset" `Quick test_generated_dataset_roundtrip;
        ] );
      ( "parsing",
        [
          Alcotest.test_case "comments and blanks" `Quick test_comments_and_blank_lines;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "line numbers" `Quick test_line_numbers;
          Alcotest.test_case "lenient mode skips bad lines" `Quick test_lenient_mixed;
          Alcotest.test_case "oversized lines bounded" `Quick test_oversized_line;
          Alcotest.test_case "string reader mirrors channel reader" `Quick test_string_reader;
        ] );
    ]
