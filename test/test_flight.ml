(* The parallel flight recorder (lib/obs/flight.ml) and its offline replay
   checker (lib/obs/replay.ml):

   - ring semantics: wraparound keeps the *newest* events and the dropped
     counter is exact; concurrent single-writer rings at 2 and 4 domains
     publish consistent snapshots to a racing reader;
   - codec: every event kind round-trips through the versioned JSONL
     codec, dumps round-trip through [load], and a crash-truncated tail is
     tolerated (skipped and counted, never fatal);
   - the invariant checker: one unit test per rule, including the
     seal-overrun rule that caught the sealed-bucket window of ROADMAP
     open item 5 (a tripped shard's term must stay in the seal bound);
   - the online monitor: captures the first violation with its event
     window and auto-dumps a postmortem; a clean flow passes [assert_ok];
   - replay: the committed violation fixture is localised to the injected
     seal-overrun, and the postmortem rendering is pinned byte-for-byte
     against fixtures/flight_golden.txt (the `omega_report --flight`
     section prints exactly this). *)

module Flight = Obs.Flight
module Replay = Obs.Replay

let with_recorder ?capacity f =
  Flight.enable ?capacity ();
  Fun.protect
    ~finally:(fun () ->
      Flight.Monitor.disable ();
      Flight.disable ();
      Flight.set_dump_target None;
      Flight.clear ())
    f

let with_temp_file f =
  let path = Filename.temp_file "omega-flight-test" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

(* --- ring semantics ----------------------------------------------------- *)

let wraparound_test () =
  with_recorder ~capacity:8 (fun () ->
      for d = 0 to 19 do
        Flight.record ~flow:0 ~shard:0 (Flight.Deliver { dist = d })
      done;
      let evs = Flight.events () in
      Alcotest.(check int) "ring keeps exactly the capacity" 8 (List.length evs);
      Alcotest.(check (list int)) "the newest events survive"
        [ 12; 13; 14; 15; 16; 17; 18; 19 ]
        (List.map (fun (e : Flight.event) -> e.Flight.seq) evs);
      let recorded, dropped = Flight.stats () in
      Alcotest.(check int) "every record counted" 20 recorded;
      Alcotest.(check int) "dropped counter is exact" 12 dropped)

(* N writer domains each publish [per_domain] events into their own ring
   while the main domain repeatedly snapshots: no snapshot may contain a
   duplicated sequence number or be unsorted (the publication order
   guarantees a reader never sees an unpublished slot), and after the join
   every event is present exactly once. *)
let concurrent_test n () =
  let per_domain = 200 in
  with_recorder ~capacity:4096 (fun () ->
      let writers =
        Array.init n (fun i ->
            Domain.spawn (fun () ->
                for d = 0 to per_domain - 1 do
                  Flight.record ~flow:0 ~shard:i (Flight.Deliver { dist = d })
                done))
      in
      (* racing reader: every snapshot must be internally consistent *)
      for _ = 1 to 50 do
        let evs = Flight.events () in
        let seqs = List.map (fun (e : Flight.event) -> e.Flight.seq) evs in
        if List.sort_uniq compare seqs <> seqs then
          Alcotest.fail "snapshot has duplicated or unsorted sequence numbers"
      done;
      Array.iter Domain.join writers;
      let evs = Flight.events () in
      Alcotest.(check int) "all events present after join" (n * per_domain) (List.length evs);
      Alcotest.(check (list int)) "sequence numbers are a gapless range"
        (List.init (n * per_domain) Fun.id)
        (List.map (fun (e : Flight.event) -> e.Flight.seq) evs);
      (* per-shard (= per-writer) subsequences must be in increasing dist
         order: the single-writer ring preserves its own program order *)
      for i = 0 to n - 1 do
        let dists =
          List.filter_map
            (fun (e : Flight.event) ->
              match e.Flight.kind with
              | Flight.Deliver { dist } when e.Flight.shard = i -> Some dist
              | _ -> None)
            evs
        in
        Alcotest.(check (list int))
          (Printf.sprintf "writer %d's events kept their order" i)
          (List.init per_domain Fun.id) dists
      done;
      let recorded, dropped = Flight.stats () in
      Alcotest.(check int) "recorded total" (n * per_domain) recorded;
      Alcotest.(check int) "nothing dropped below capacity" 0 dropped)

(* --- codec -------------------------------------------------------------- *)

let sample_events =
  let mk seq kind = { Flight.seq; ts_ns = 1000 * seq; domain = 1; flow = 0; shard = 2; kind } in
  [
    mk 0 (Flight.Flow_open { shards = 4; slack = 2; label = "shard" });
    mk 1 Flight.Shard_start;
    mk 2 (Flight.Deliver { dist = 7 });
    mk 3 (Flight.Park { qlen = 8192 });
    mk 4 Flight.Unpark;
    mk 5 (Flight.Heartbeat { qlen = 12; last = 9 });
    mk 6 (Flight.Shard_done { complete = false; answers = 420 });
    mk 7
      (Flight.Seal
         {
           bound = 11;
           batch = 3;
           inputs =
             [
               { Flight.i_shard = 0; i_last = 13; i_state = 0 };
               { Flight.i_shard = 1; i_last = 11; i_state = 2 };
             ];
         });
    mk 8 (Flight.Emit { dist = 3; x = 17; y = 42 });
    mk 9 (Flight.Stall { silent_ns = 300_000_000 });
    mk 10 Flight.Stop;
    mk 11 (Flight.Trip { reason = "deadline" });
  ]

let codec_roundtrip_test () =
  List.iter
    (fun ev ->
      match Flight.of_json (Flight.to_json ev) with
      | Ok ev' ->
        if ev' <> ev then
          Alcotest.failf "event %s did not round-trip" (Flight.kind_tag ev.Flight.kind)
      | Error msg -> Alcotest.failf "%s: %s" (Flight.kind_tag ev.Flight.kind) msg)
    sample_events;
  (* the string rendering exists for every kind (postmortem windows) *)
  List.iter (fun ev -> ignore (Format.asprintf "%a" Flight.pp_event ev)) sample_events;
  Alcotest.(check (list string)) "tag list matches the constructors"
    (List.map (fun e -> Flight.kind_tag e.Flight.kind) sample_events)
    Flight.all_tags

let dump_roundtrip_test () =
  with_recorder (fun () ->
      Flight.record ~flow:0 (Flight.Flow_open { shards = 1; slack = 0; label = "shard" });
      Flight.record ~flow:0 ~shard:0 Flight.Shard_start;
      for d = 0 to 4 do
        Flight.record ~flow:0 ~shard:0 (Flight.Deliver { dist = d })
      done;
      Flight.record ~flow:0 ~shard:0 (Flight.Shard_done { complete = true; answers = 5 });
      let live = Flight.events () in
      with_temp_file (fun path ->
          let n = Flight.dump path in
          Alcotest.(check int) "dump reports the event count" (List.length live) n;
          (match Flight.load path with
          | Error msg -> Alcotest.fail msg
          | Ok (meta, evs, skipped) ->
            Alcotest.(check int) "no skipped lines" 0 skipped;
            (match meta with
            | None -> Alcotest.fail "dump has no meta line"
            | Some m ->
              Alcotest.(check int) "meta recorded" (List.length live) m.Flight.m_recorded;
              Alcotest.(check int) "meta dropped" 0 m.Flight.m_dropped);
            if evs <> live then Alcotest.fail "loaded events differ from the live snapshot");
          (* crash truncation: cut the file mid-way through the last line —
             the loader must skip-and-count it, keeping everything before *)
          let contents = In_channel.with_open_bin path In_channel.input_all in
          let cut = String.rindex (String.sub contents 0 (String.length contents - 1)) '\n' in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc (String.sub contents 0 (cut + 5)));
          match Flight.load path with
          | Error msg -> Alcotest.failf "truncated dump must still load: %s" msg
          | Ok (meta, evs, skipped) ->
            Alcotest.(check bool) "meta survives truncation" true (meta <> None);
            Alcotest.(check int) "the torn line is skipped and counted" 1 skipped;
            Alcotest.(check int) "all whole lines kept" (List.length live - 1) (List.length evs)))

(* --- the invariant checker --------------------------------------------- *)

(* Feed a synthetic interleaving to [Check.step]; return the first
   violation. *)
let run_check evs =
  let st = Flight.Check.init () in
  let rec go i = function
    | [] -> None
    | kindspec :: rest -> (
      let shard, kind = kindspec in
      let ev = { Flight.seq = i; ts_ns = 1000 * i; domain = 0; flow = 0; shard; kind } in
      match Flight.Check.step st ev with Some (rule, _) -> Some rule | None -> go (i + 1) rest)
  in
  go 0 evs

let open2 = (-1, Flight.Flow_open { shards = 2; slack = 0; label = "shard" })
let deliver s d = (s, Flight.Deliver { dist = d })
let done_ s complete = (s, Flight.Shard_done { complete; answers = 0 })
let seal b = (-1, Flight.Seal { bound = b; batch = 1; inputs = [] })
let emit d = (-1, Flight.Emit { dist = d; x = 0; y = d })

let check_rules_test () =
  let cases =
    [
      ( "clean flow passes",
        [ open2; deliver 0 2; deliver 1 3; done_ 1 true; done_ 0 true; seal max_int; emit 2; emit 3 ],
        None );
      ( "a complete shard leaves the bound",
        [ open2; deliver 0 5; done_ 0 true; deliver 1 3; seal 3 ],
        None );
      (* THE open-item-5 rule: an incomplete (tripped/stopped) shard's term
         stays in the min — sealing past its frontier is the bug the
         recorder caught in the old [Par.bound_locked] *)
      ( "seal-overrun: bound past a tripped shard's frontier",
        [ open2; deliver 0 5; deliver 1 3; done_ 1 false; seal 6 ],
        Some "seal-overrun" );
      ( "seal-overrun: bound past a live shard's frontier",
        [ open2; deliver 0 5; deliver 1 3; seal 4 ],
        Some "seal-overrun" );
      ( "seal-regression: the bound never decreases",
        [ open2; deliver 0 9; deliver 1 9; seal 8; seal 7 ],
        Some "seal-regression" );
      ( "shard-regression: per-shard streams are monotone up to slack",
        [ open2; deliver 0 5; deliver 0 3 ],
        Some "shard-regression" );
      ( "late-delivery: nothing lands below a sealed bound",
        [ open2; deliver 0 9; deliver 1 9; seal 8; deliver 1 2 ],
        Some "late-delivery" );
      ( "emit-unsealed: answers only leave sealed buckets",
        [ open2; deliver 0 9; deliver 1 9; seal 8; emit 8 ],
        Some "emit-unsealed" );
      ( "emit-order: the canonical (dist, x, y) order",
        [ open2; deliver 0 9; deliver 1 9; seal 8; emit 5; emit 3 ],
        Some "emit-order" );
    ]
  in
  List.iter
    (fun (name, evs, expect) ->
      Alcotest.(check (option string)) name expect (run_check evs))
    cases

(* slack shifts both the monotonicity tolerance and the safe bound *)
let check_slack_test () =
  Alcotest.(check (option string)) "regression within slack is fine" None
    (run_check
       [ (-1, Flight.Flow_open { shards = 1; slack = 2; label = "s" }); deliver 0 5; deliver 0 3 ]);
  Alcotest.(check (option string)) "safe bound is last - slack"
    (Some "seal-overrun")
    (run_check
       [ (-1, Flight.Flow_open { shards = 1; slack = 2; label = "s" }); deliver 0 5; seal 4 ])

(* --- the online monitor -------------------------------------------------- *)

let monitor_violation_test () =
  with_temp_file (fun target ->
      with_recorder (fun () ->
          Flight.set_dump_target (Some target);
          Flight.Monitor.enable ();
          Flight.record ~flow:0 (Flight.Flow_open { shards = 2; slack = 0; label = "shard" });
          Flight.record ~flow:0 ~shard:0 (Flight.Deliver { dist = 5 });
          Flight.record ~flow:0 ~shard:1 (Flight.Deliver { dist = 3 });
          Flight.record ~flow:0 ~shard:1 (Flight.Shard_done { complete = false; answers = 1 });
          Flight.record ~flow:0 (Flight.Seal { bound = 6; batch = 1; inputs = [] });
          (match Flight.Monitor.first_violation () with
          | None -> Alcotest.fail "the monitor missed the seal-overrun"
          | Some v ->
            Alcotest.(check string) "rule" "seal-overrun" v.Flight.v_rule;
            Alcotest.(check int) "the offending seal is localised" 4 v.Flight.v_seq;
            (match List.rev v.Flight.v_window with
            | last :: _ ->
              Alcotest.(check int) "window ends at the offender" v.Flight.v_seq last.Flight.seq
            | [] -> Alcotest.fail "empty violation window");
            ignore (Format.asprintf "%a" Flight.pp_violation v));
          (* the automatic postmortem dump landed on the configured target *)
          (match Flight.Monitor.last_dump_path () with
          | Some p when p = target -> ()
          | Some p -> Alcotest.failf "auto-dump went to %s, expected %s" p target
          | None -> Alcotest.fail "no automatic dump");
          (match Replay.load target with
          | Error msg -> Alcotest.fail msg
          | Ok r ->
            Alcotest.(check bool) "the dump replays to the same violation" false (Replay.ok r));
          match Flight.Monitor.assert_ok () with
          | () -> Alcotest.fail "assert_ok must raise on a recorded violation"
          | exception Flight.Violation v ->
            Alcotest.(check string) "assert_ok raises the first violation" "seal-overrun"
              v.Flight.v_rule))

let monitor_clean_test () =
  with_recorder (fun () ->
      Flight.Monitor.enable ();
      Flight.record ~flow:0 (Flight.Flow_open { shards = 1; slack = 0; label = "shard" });
      Flight.record ~flow:0 ~shard:0 (Flight.Deliver { dist = 1 });
      Flight.record ~flow:0 ~shard:0 (Flight.Shard_done { complete = true; answers = 1 });
      Flight.record ~flow:0 (Flight.Seal { bound = max_int; batch = 1; inputs = [] });
      Flight.record ~flow:0 (Flight.Emit { dist = 1; x = 0; y = 0 });
      Flight.Monitor.assert_ok ();
      Alcotest.(check bool) "no violation" true (Flight.Monitor.first_violation () = None))

(* --- replay of the committed fixtures ----------------------------------- *)

let replay_clean_fixture_test () =
  match Replay.load "fixtures/flight_fixture.jsonl" with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    Alcotest.(check bool) "clean fixture passes every invariant" true (Replay.ok r);
    Alcotest.(check int) "48 events (as cross-linked by the audit fixture)" 48
      (List.length r.Replay.events);
    Alcotest.(check int) "no sequence gaps" 0 r.Replay.seq_gaps;
    (match r.Replay.meta with
    | Some m -> Alcotest.(check int) "meta recorded" 48 m.Flight.m_recorded
    | None -> Alcotest.fail "fixture has no meta line")

(* The postmortem rendering is a contract: `omega_report --flight` prints
   exactly this (plus exit code 7), so the golden pins both the
   localisation (seal-overrun at seq 11) and the window formatting. *)
let replay_golden_test () =
  match Replay.load "fixtures/flight_violation.jsonl" with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    (match r.Replay.violation with
    | Some v ->
      Alcotest.(check string) "rule" "seal-overrun" v.Flight.v_rule;
      Alcotest.(check int) "first violating event localised" 11 v.Flight.v_seq
    | None -> Alcotest.fail "the injected violation was not found");
    let expected = In_channel.with_open_bin "fixtures/flight_golden.txt" In_channel.input_all in
    let got = Format.asprintf "%a" Replay.pp r in
    Alcotest.(check string) "postmortem rendering matches the golden" expected got;
    (* the JSON view carries the same localisation *)
    (match Obs.Json.member "violation" (Replay.to_json r) with
    | Some (Obs.Json.Obj fields) ->
      Alcotest.(check bool) "violation.seq present" true
        (List.assoc_opt "seq" fields = Some (Obs.Json.Int 11))
    | _ -> Alcotest.fail "replay JSON has no violation object")

let () =
  Alcotest.run "flight"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound keeps newest, dropped exact" `Quick wraparound_test;
          Alcotest.test_case "concurrent writers, racing reader (2 domains)" `Quick
            (concurrent_test 2);
          Alcotest.test_case "concurrent writers, racing reader (4 domains)" `Quick
            (concurrent_test 4);
        ] );
      ( "codec",
        [
          Alcotest.test_case "every kind round-trips" `Quick codec_roundtrip_test;
          Alcotest.test_case "dump/load round-trip + truncated tail" `Quick dump_roundtrip_test;
        ] );
      ( "check",
        [
          Alcotest.test_case "one case per invariant rule" `Quick check_rules_test;
          Alcotest.test_case "slack widens regressions and the bound" `Quick check_slack_test;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "violation captured, windowed, auto-dumped" `Quick
            monitor_violation_test;
          Alcotest.test_case "clean flow passes assert_ok" `Quick monitor_clean_test;
        ] );
      ( "replay",
        [
          Alcotest.test_case "clean fixture validates" `Quick replay_clean_fixture_test;
          Alcotest.test_case "violation fixture localised + golden rendering" `Quick
            replay_golden_test;
        ] );
    ]
