(* A brute-force differential oracle for single-conjunct evaluation.

   [answers] computes the full ranked answer set of a conjunct by naive
   Dijkstra over the explicit (automaton x graph) product: the product's
   adjacency is rebuilt from the raw edge list ([Graph.iter_edges]) for
   every query, so the oracle shares nothing with the engine's physical
   layer — no CSR index, no seeder, no D_R queue, no U-cache, no visited
   set.  Only the automaton compiler is shared, which is exactly what the
   differential tests want to pin down: the engine's Open/GetNext/Succ
   machinery against the textbook semantics of the same automaton.

   The query-level semantics of [Conjunct.open_] are mirrored here
   independently:
   - case 2 rewriting: (?X, R, C) becomes (C, R-, ?X) with answers swapped
     back;
   - unknown subject or object constants yield the empty answer set;
   - RELAX seeds a class-named subject constant at every super-class node,
     at distance depth * beta;
   - an object constant keeps only answers landing on its node, and a
     repeated variable (?X, R, ?X) keeps only loops. *)

module Graph = Graphstore.Graph
module Interner = Graphstore.Interner
module Nfa = Automaton.Nfa
module Q = Core.Query

(* Product adjacency from the raw edge list: for each transition label of
   the automaton, the nodes reachable from each node in one step.  One scan
   of the edge list per distinct label. *)
let label_adjacency g nfa =
  let n = Graph.n_nodes g in
  let type_l = Graph.type_label g in
  let table : (Nfa.tlabel, int list array) Hashtbl.t = Hashtbl.create 8 in
  Nfa.iter_transitions nfa (fun _ tr ->
      if not (Hashtbl.mem table tr.Nfa.lbl) then begin
        let adj = Array.make n [] in
        Graph.iter_edges g (fun src l dst ->
            match tr.Nfa.lbl with
            | Nfa.Eps -> ()
            | Nfa.Sym (Fwd, a) -> if l = a then adj.(src) <- dst :: adj.(src)
            | Nfa.Sym (Bwd, a) -> if l = a then adj.(dst) <- src :: adj.(dst)
            | Nfa.Any ->
              adj.(src) <- dst :: adj.(src);
              adj.(dst) <- src :: adj.(dst)
            | Nfa.Any_dir Fwd -> adj.(src) <- dst :: adj.(src)
            | Nfa.Any_dir Bwd -> adj.(dst) <- src :: adj.(dst)
            | Nfa.Sub_closure (Fwd, ls) ->
              if Array.exists (fun x -> x = l) ls then adj.(src) <- dst :: adj.(src)
            | Nfa.Sub_closure (Bwd, ls) ->
              if Array.exists (fun x -> x = l) ls then adj.(dst) <- src :: adj.(dst)
            | Nfa.Type_to c -> if l = type_l && dst = c then adj.(src) <- dst :: adj.(src));
        Hashtbl.add table tr.Nfa.lbl adj
      end);
  table

module Frontier = Set.Make (struct
  type t = int * int * int (* dist, node, state *)

  let compare = compare
end)

(* Dijkstra over (node, state) from one start node; returns the distance
   array indexed by node * n_states + state, or -1 when unreachable. *)
let product_distances g nfa adjacency start =
  let n_states = Nfa.n_states nfa in
  let dist = Array.make (Graph.n_nodes g * n_states) (-1) in
  let key n s = (n * n_states) + s in
  dist.(key start (Nfa.initial nfa)) <- 0;
  let frontier = ref (Frontier.singleton (0, start, Nfa.initial nfa)) in
  while not (Frontier.is_empty !frontier) do
    let ((d, n, s) as min) = Frontier.min_elt !frontier in
    frontier := Frontier.remove min !frontier;
    if d = dist.(key n s) then
      List.iter
        (fun (tr : Nfa.transition) ->
          List.iter
            (fun m ->
              let nd = d + tr.Nfa.cost in
              let k = key m tr.Nfa.dst in
              if dist.(k) < 0 || nd < dist.(k) then begin
                dist.(k) <- nd;
                frontier := Frontier.add (nd, m, tr.Nfa.dst) !frontier
              end)
            (Hashtbl.find adjacency tr.Nfa.lbl).(n))
        (Nfa.out nfa s)
  done;
  dist

(* RELAX class-ancestor seeding, mirroring [Conjunct.relax_ancestor_seeds]:
   a class-named constant also starts from every super-class node, at
   distance depth * beta. *)
let relax_seeds g k ~beta oid =
  let interner = Graph.interner g in
  let label_id = Interner.intern interner (Graph.node_label g oid) in
  if not (Ontology.is_class k label_id) then [ (oid, 0) ]
  else
    List.filter_map
      (fun (cls, depth) ->
        match Graph.find_node g (Interner.name interner cls) with
        | Some node -> Some (node, depth * beta)
        | None -> None)
      (Ontology.ancestors_by_specificity k label_id)

(* The full ranked answer set [(x, y, dist)] of a conjunct, sorted. *)
let answers g k (options : Core.Options.t) (conjunct : Q.conjunct) =
  let subj, regex, obj, swap =
    match (conjunct.Q.subj, conjunct.Q.obj) with
    | Q.Var _, Q.Const _ ->
      (conjunct.Q.obj, Rpq_regex.Regex.reverse conjunct.Q.regex, conjunct.Q.subj, true)
    | _ -> (conjunct.Q.subj, conjunct.Q.regex, conjunct.Q.obj, false)
  in
  let mode = Core.Options.compile_mode options conjunct.Q.cmode in
  let nfa = Automaton.Compile.conjunct_automaton ~graph:g ~ontology:k ~mode regex in
  let starts =
    match subj with
    | Q.Const c -> (
      match Graph.find_node g c with
      | None -> []
      | Some oid ->
        if conjunct.Q.cmode = Q.Relax then
          relax_seeds g k ~beta:options.Core.Options.costs.beta oid
        else [ (oid, 0) ])
    | Q.Var _ -> List.init (Graph.n_nodes g) (fun i -> (i, 0))
  in
  let target =
    match obj with
    | Q.Const c -> ( match Graph.find_node g c with Some oid -> `Node oid | None -> `Unsat)
    | Q.Var _ -> `Free
  in
  let same_var = match (subj, obj) with Q.Var a, Q.Var b -> a = b | _ -> false in
  match target with
  | `Unsat -> []
  | _ ->
    let n_states = Nfa.n_states nfa in
    let finals = Nfa.finals nfa in
    let adjacency = label_adjacency g nfa in
    let best = Hashtbl.create 64 in
    List.iter
      (fun (v, seed_cost) ->
        let dist = product_distances g nfa adjacency v in
        Graph.iter_nodes g (fun n ->
            let keep =
              (match target with `Node oid -> n = oid | _ -> true)
              && ((not same_var) || v = n)
            in
            if keep then
              List.iter
                (fun (s, weight) ->
                  let d = dist.((n * n_states) + s) in
                  if d >= 0 then begin
                    let total = seed_cost + d + weight in
                    match Hashtbl.find_opt best (v, n) with
                    | Some t when t <= total -> ()
                    | _ -> Hashtbl.replace best (v, n) total
                  end)
                finals))
      starts;
    Hashtbl.fold
      (fun (v, n) d acc -> (if swap then (n, v, d) else (v, n, d)) :: acc)
      best []
    |> List.sort compare

(* The engine's answers in emission order, drained to exhaustion. *)
let engine_stream g k options conjunct =
  let ev = Core.Evaluator.create ~graph:g ~ontology:k ~options conjunct in
  let rec drain acc =
    match Core.Evaluator.next ev with
    | Some (a : Core.Conjunct.answer) -> drain ((a.x, a.y, a.dist) :: acc)
    | None -> List.rev acc
  in
  drain []
