(* Chaos property suite for the query governor and the failpoints.

   Randomized queries from the shared Instance_gen generator run under
   injected faults, deterministic deadlines, tuple budgets and answer caps.
   Every instance asserts the robustness contract of the governor:

   - no crash: [Engine.next] never lets an exception escape — injected
     faults and exhausted budgets all surface as a structured
     [Engine.termination];
   - informative termination: the reported reason matches the disturbance
     that was injected (a fault names its failpoint, a deadline reports
     [Deadline], a budget reports [Tuple_budget], ...);
   - valid ranked prefix: the emitted answers are an exact prefix of the
     undisturbed run's emission sequence (a governed run is the same
     deterministic computation, merely cut short), and the undisturbed run
     itself equals the brute-force product-Dijkstra oracle — so by
     transitivity every truncated run is a prefix of the oracle's ranked
     answer set;
   - monotone stats: every execution counter of the disturbed run is
     non-negative and bounded by the undisturbed run's counter (cutting a
     computation short can only do less work).

   The CI chaos job tightens the screws via the environment:
   [OMEGA_FAILPOINTS] overrides the armed spec of the fault group, and
   [OMEGA_CHAOS_DEADLINE_MS] adds a real-clock aggressive deadline to the
   deadline group. *)

module Graph = Graphstore.Graph
module Q = Core.Query
module Engine = Core.Engine
module Governor = Core.Governor
module Failpoints = Core.Failpoints
module Options = Core.Options
open Instance_gen

(* A single-conjunct query projecting all conjunct variables; instances
   whose conjunct has no variable (constant subject and object) get a
   variable object so the query validates. *)
let query_of inst =
  let inst =
    match (inst.subj, inst.obj) with
    | (`Node _ | `Ghost), (`Node _ | `Ghost) -> { inst with obj = `Fresh }
    | _ -> inst
  in
  let c = conjunct_of inst in
  (inst, Q.make ~head:(Q.conjunct_vars c) [ c ])

(* The oracle's ranked answer set, projected to the query head exactly as
   the engine projects it: head variables to node labels, duplicate
   projected bindings deduplicated at their smallest distance. *)
let oracle_projected g (q : Q.t) raw =
  let c = List.hd q.Q.conjuncts in
  let best = Hashtbl.create 64 in
  List.iter
    (fun (x, y, d) ->
      let bind =
        (match c.Q.subj with Q.Var v -> [ (v, x) ] | Q.Const _ -> [])
        @ (match c.Q.obj with Q.Var v -> [ (v, y) ] | Q.Const _ -> [])
      in
      let key = List.map (fun v -> Graph.node_label g (List.assoc v bind)) q.Q.head in
      match Hashtbl.find_opt best key with
      | Some d' when d' <= d -> ()
      | _ -> Hashtbl.replace best key d)
    raw;
  Hashtbl.fold (fun k d acc -> (k, d) :: acc) best [] |> List.sort compare

let projected (answers : Engine.answer list) =
  List.sort compare
    (List.map (fun (a : Engine.answer) -> (List.map snd a.Engine.bindings, a.Engine.distance)) answers)

let is_list_prefix ~of_:full prefix =
  let rec go = function
    | [], _ -> true
    | _ :: _, [] -> false
    | a :: p, b :: f -> a = b && go (p, f)
  in
  go (prefix, full)

let non_decreasing (answers : Engine.answer list) =
  let rec go hi = function
    | [] -> true
    | (a : Engine.answer) :: rest -> a.Engine.distance >= hi && go a.Engine.distance rest
  in
  go 0 answers

(* Field-wise [chaos <= clean]: a run cut short can only have done less. *)
let stats_bounded ~(chaos : Core.Exec_stats.t) ~(clean : Core.Exec_stats.t) =
  let open Core.Exec_stats in
  chaos.pushes >= 0 && chaos.pops >= 0 && chaos.pops <= chaos.pushes
  && chaos.pushes <= clean.pushes && chaos.pops <= clean.pops
  && chaos.succ_calls <= clean.succ_calls
  && chaos.edges_scanned <= clean.edges_scanned
  && chaos.batches <= clean.batches && chaos.seeds <= clean.seeds
  && chaos.answers <= clean.answers && chaos.peak_queue <= clean.peak_queue
  && chaos.restarts <= clean.restarts && chaos.pruned <= clean.pruned

(* The consistency every disturbed outcome must satisfy against its clean
   counterpart, whatever the disturbance was. *)
let outcome_consistent ~(clean : Engine.outcome) (chaos : Engine.outcome) =
  is_list_prefix ~of_:clean.Engine.answers chaos.Engine.answers
  && non_decreasing chaos.Engine.answers
  && stats_bounded ~chaos:chaos.Engine.stats ~clean:clean.Engine.stats
  &&
  match chaos.Engine.termination with
  | Engine.Completed -> not chaos.Engine.aborted
  | Engine.Exhausted e ->
    e.answers = List.length chaos.Engine.answers
    && e.tuples >= 0 && e.elapsed_ns >= 0
    && chaos.Engine.aborted = (e.reason = Governor.Tuple_budget)
  | Engine.Rejected _ ->
    (* no admission limits are configured in these groups *)
    false

(* The clean (ungoverned, fault-free) run, checked against the oracle. *)
let clean_run g k options q =
  let clean = Engine.run ~graph:g ~ontology:k ~options q in
  let complete = clean.Engine.termination = Engine.Completed in
  let raw = Oracle.answers g k options (List.hd q.Q.conjuncts) in
  let agrees = projected clean.Engine.answers = oracle_projected g q raw in
  (clean, complete && agrees)

(* --- injected faults --------------------------------------------------- *)

let env_fault_points =
  match Sys.getenv_opt Failpoints.env_var with
  | Some s when String.trim s <> "" -> (
    match Failpoints.parse s with
    | Ok (points, _) -> Some points
    | Error msg -> failwith (Failpoints.env_var ^ ": " ^ msg))
  | _ -> None

let point_names = List.map Failpoints.point_name Failpoints.all_points

let fault_prop name ~count ~mode =
  QCheck2.Test.make ~name ~count
    QCheck2.Gen.(
      triple (gen_instance ~mode) (int_bound 1_000_000)
        (map (List.nth [ 0.002; 0.01; 0.03 ]) (int_bound 2)))
    (fun (inst, seed, prob) ->
      let inst, q = query_of inst in
      let g, k = build inst in
      let options = Options.default in
      let clean, clean_ok = clean_run g k options q in
      let points =
        match env_fault_points with
        | Some points -> points
        | None -> List.map (fun p -> (p, prob)) Failpoints.all_points
      in
      Failpoints.arm ~seed points;
      let chaos =
        Fun.protect
          ~finally:(fun () -> Failpoints.disarm ())
          (fun () -> Engine.run ~graph:g ~ontology:k ~options q)
      in
      let reason_ok =
        match chaos.Engine.termination with
        | Engine.Completed -> true
        | Engine.Exhausted { reason = Governor.Fault p; _ } -> List.mem p point_names
        | Engine.Exhausted _ | Engine.Rejected _ -> false
      in
      clean_ok && reason_ok && outcome_consistent ~clean chaos)

let fault_exact = fault_prop "faults: exact, prefix + fault termination" ~count:30 ~mode:Q.Exact
let fault_approx = fault_prop "faults: APPROX, prefix + fault termination" ~count:50 ~mode:Q.Approx
let fault_relax = fault_prop "faults: RELAX, prefix + fault termination" ~count:50 ~mode:Q.Relax

(* --- deadlines --------------------------------------------------------- *)

(* Deterministic deadlines: a fake counter clock advances 97 "nanoseconds"
   per read, so a random [timeout_ns] cuts the run after a reproducible
   number of governor clock reads — no wall-clock flakiness.  When
   OMEGA_CHAOS_DEADLINE_MS is set (the CI chaos job), a second real-clock
   pass runs the same instance under that aggressive wall-clock deadline. *)
let env_deadline_ms =
  match Sys.getenv_opt "OMEGA_CHAOS_DEADLINE_MS" with
  | Some s -> int_of_string_opt (String.trim s)
  | None -> None

let restore_clock () = Governor.now_ns := fun () -> 0

let deadline_reason_ok (o : Engine.outcome) =
  match o.Engine.termination with
  | Engine.Completed -> true
  | Engine.Exhausted { reason = Governor.Deadline; elapsed_ns; _ } -> elapsed_ns > 0
  | Engine.Exhausted _ | Engine.Rejected _ -> false

let deadline_prop =
  QCheck2.Test.make ~name:"deadlines: prefix + Deadline termination (fake clock)" ~count:60
    QCheck2.Gen.(pair (gen_instance ~mode:Q.Approx) (int_bound 30_000))
    (fun (inst, timeout_ns) ->
      let inst, q = query_of inst in
      let g, k = build inst in
      let clean, clean_ok = clean_run g k Options.default q in
      let options = { Options.default with Options.timeout_ns = Some timeout_ns } in
      let chaos =
        let counter = ref 0 in
        Governor.now_ns :=
          (fun () ->
            incr counter;
            !counter * 97);
        Fun.protect ~finally:restore_clock (fun () -> Engine.run ~graph:g ~ontology:k ~options q)
      in
      let real_ok =
        match env_deadline_ms with
        | None -> true
        | Some ms ->
          Governor.now_ns := (fun () -> int_of_float (1e9 *. Unix.gettimeofday ()));
          let aggressive =
            Fun.protect ~finally:restore_clock (fun () ->
                Engine.run ~graph:g ~ontology:k
                  ~options:{ Options.default with Options.timeout_ns = Some (ms * 1_000_000) }
                  q)
          in
          deadline_reason_ok aggressive && outcome_consistent ~clean aggressive
      in
      clean_ok && deadline_reason_ok chaos && outcome_consistent ~clean chaos && real_ok)

(* --- tuple budgets and answer caps ------------------------------------- *)

let budget_prop =
  QCheck2.Test.make ~name:"budgets: prefix + Tuple_budget/Answer_limit termination" ~count:60
    QCheck2.Gen.(triple (gen_instance ~mode:Q.Approx) bool (int_range 1 400))
    (fun (inst, by_answers, cap) ->
      let inst, q = query_of inst in
      let g, k = build inst in
      let clean, clean_ok = clean_run g k Options.default q in
      let options =
        if by_answers then
          { Options.default with Options.max_answers = Some (min cap 50) }
        else { Options.default with Options.max_tuples = Some cap }
      in
      let chaos = Engine.run ~graph:g ~ontology:k ~options q in
      let reason_ok =
        match (chaos.Engine.termination, by_answers) with
        | Engine.Completed, _ -> true
        | Engine.Exhausted { reason = Governor.Answer_limit; _ }, true ->
          List.length chaos.Engine.answers = min cap 50
        | Engine.Exhausted { reason = Governor.Tuple_budget; _ }, false -> chaos.Engine.aborted
        | (Engine.Exhausted _ | Engine.Rejected _), _ -> false
      in
      clean_ok && reason_ok && outcome_consistent ~clean chaos)

(* --- memory budgets ---------------------------------------------------- *)

(* The graceful-degradation contract: under a byte budget the run may drop
   provenance arenas and decline ψ escalations before terminating with
   [Memory_budget], but the answers it did emit are an exact ranked prefix
   of the clean run's emission sequence.  Witnesses are excluded from the
   prefix comparison — dropping an arena (stage 1) legitimately loses them
   without affecting bindings or distances. *)
let strip (a : Engine.answer) = (a.Engine.bindings, a.Engine.distance)

let memory_prop ~name ~distance_aware ~provenance =
  QCheck2.Test.make ~name ~count:50
    QCheck2.Gen.(pair (gen_instance ~mode:Q.Approx) (int_range 2_000 60_000))
    (fun (inst, cap) ->
      let inst, q = query_of inst in
      let g, k = build inst in
      let base = { Options.default with Options.distance_aware; provenance } in
      let clean, clean_ok = clean_run g k base q in
      let options = { base with Options.max_memory_bytes = Some cap } in
      let chaos = Engine.run ~graph:g ~ontology:k ~options q in
      let stats = chaos.Engine.stats in
      let reason_ok =
        match chaos.Engine.termination with
        | Engine.Completed -> true
        | Engine.Exhausted { reason = Governor.Memory_budget; _ } ->
          stats.Core.Exec_stats.mem_bytes_peak > 0
        | Engine.Exhausted _ | Engine.Rejected _ -> false
      in
      clean_ok && reason_ok
      && is_list_prefix
           ~of_:(List.map strip clean.Engine.answers)
           (List.map strip chaos.Engine.answers)
      && non_decreasing chaos.Engine.answers
      && stats_bounded ~chaos:stats ~clean:clean.Engine.stats
      && stats.Core.Exec_stats.degrade_drop_provenance >= 0
      && stats.Core.Exec_stats.degrade_shrink_psi >= 0)

let memory_plain =
  memory_prop ~name:"memory: prefix + Memory_budget termination" ~distance_aware:false
    ~provenance:false

let memory_provenance =
  memory_prop ~name:"memory: prefix with provenance degradation (stage 1)" ~distance_aware:false
    ~provenance:true

let memory_distance_aware =
  memory_prop ~name:"memory: prefix under distance-aware ψ shrinking (stage 2)"
    ~distance_aware:true ~provenance:false

(* --- admission control -------------------------------------------------- *)

(* A rejected query must never touch the graph; a generously-admitted query
   must behave exactly like an unvetted one. *)
let admission_prop =
  QCheck2.Test.make ~name:"admission: rejection is free, generous admission is invisible"
    ~count:50
    (gen_instance ~mode:Q.Approx)
    (fun inst ->
      let inst, q = query_of inst in
      let g, k = build inst in
      let clean, clean_ok = clean_run g k Options.default q in
      let rejected =
        Engine.run ~graph:g ~ontology:k
          ~options:{ Options.default with Options.max_states = Some 0 }
          q
      in
      let rejected_ok =
        match rejected.Engine.termination with
        | Engine.Rejected _ ->
          rejected.Engine.answers = []
          && rejected.Engine.stats.Core.Exec_stats.edges_scanned = 0
          && rejected.Engine.stats.Core.Exec_stats.pushes = 0
          && rejected.Engine.stats.Core.Exec_stats.seeds = 0
        | Engine.Completed | Engine.Exhausted _ -> false
      in
      let admitted =
        Engine.run ~graph:g ~ontology:k
          ~options:
            {
              Options.default with
              Options.max_states = Some 1_000_000;
              max_product_est = Some 1_000_000_000;
            }
          q
      in
      clean_ok && rejected_ok
      && admitted.Engine.termination = Engine.Completed
      && projected admitted.Engine.answers = projected clean.Engine.answers
      && admitted.Engine.stats.Core.Exec_stats.admission_est_states > 0)

(* --- multi-conjunct joins under chaos ---------------------------------- *)

(* Two conjuncts sharing ?Y, evaluated through the ranked join, with faults
   and a tuple budget at once.  No oracle here (the clean join's correctness
   is test_join's business): the claims are no-crash, prefix and stats. *)
let join_prop =
  QCheck2.Test.make ~name:"joins: prefix + structured termination under faults" ~count:40
    QCheck2.Gen.(
      quad (gen_instance ~mode:Q.Approx) gen_regex (int_bound 1_000_000) (int_range 50 2_000))
    (fun (inst, regex2, seed, budget) ->
      let inst = { inst with subj = `Var; obj = `Fresh } in
      let g, k = build inst in
      let c1 = conjunct_of inst in
      let c2 = Q.conjunct ~mode:Q.Exact (Q.Var "Y") regex2 (Q.Var "Z") in
      let q = Q.make ~head:[ "X"; "Z" ] [ c1; c2 ] in
      let limit = 150 in
      let clean = Engine.run ~graph:g ~ontology:k ~limit q in
      Failpoints.arm ~seed [ (Failpoints.Join_pull, 0.005); (Failpoints.Graph_scan, 0.002) ];
      let chaos =
        Fun.protect
          ~finally:(fun () -> Failpoints.disarm ())
          (fun () ->
            Engine.run ~graph:g ~ontology:k
              ~options:{ Options.default with Options.max_tuples = Some budget }
              ~limit q)
      in
      let reason_ok =
        match chaos.Engine.termination with
        | Engine.Completed -> true
        | Engine.Exhausted { reason = Governor.Fault p; _ } -> List.mem p point_names
        | Engine.Exhausted { reason = Governor.Tuple_budget | Governor.Answer_limit; _ } -> true
        | Engine.Exhausted { reason = Governor.Deadline | Governor.Memory_budget; _ } -> false
        | Engine.Rejected _ -> false
      in
      non_decreasing clean.Engine.answers && reason_ok && outcome_consistent ~clean chaos)

(* --- parallel executions under chaos ----------------------------------- *)

(* The same robustness contract on the parallel evaluator
   ([options.domains > 1]): the clean parallel run agrees with the oracle,
   and a faulted / deadlined / budgeted parallel run is an exact
   element-wise prefix of the clean parallel run's emission sequence (the
   canonical sealed-merge order — see test_par).  Shard workers convert an
   injected fault into a shard-governor fault, so terminations stay
   structured at any domain count, and the taxonomy property pins the
   stronger claim behind the CLI's exit codes 3/4/5/6: for deterministic
   disturbances (tuple budgets, answer caps, certain faults) the
   termination *kind* is identical regardless of [domains], because the
   total work and the answer set are domain-count independent. *)

let gen_domains = QCheck2.Gen.(map (List.nth [ 2; 4 ]) (int_bound 1))

(* Every parallel property runs under the flight recorder with the online
   seal-bound monitor armed: an invariant violation (a bucket sealed past a
   live or tripped shard's frontier, an answer emitted from an unsealed
   bucket, ...) fails the instance with its auto-dumped postmortem path,
   and a plain property failure also leaves a dump behind for
   `omega_report --flight`.  This is the harness that localised ROADMAP
   open item 5 to the sealed-bucket window after a trip. *)
let monitored prop arg =
  Obs.Flight.enable ~detail:true ();
  Obs.Flight.Monitor.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Flight.Monitor.disable ();
      Obs.Flight.disable ();
      Obs.Flight.clear ())
    (fun () ->
      let dump_now what =
        let path = Filename.temp_file "omega-flight-chaos" ".jsonl" in
        (try ignore (Obs.Flight.dump path) with Sys_error _ -> ());
        Printf.eprintf "flight dump (%s): %s\n%!" what path;
        path
      in
      let ok =
        try prop arg
        with e ->
          ignore (dump_now "property raised");
          raise e
      in
      (match Obs.Flight.Monitor.first_violation () with
      | Some v ->
        QCheck2.Test.fail_reportf "flight invariant violation: %s at seq %d — postmortem dump: %s"
          v.Obs.Flight.v_rule v.Obs.Flight.v_seq
          (Option.value ~default:"<unwritable>" (Obs.Flight.Monitor.last_dump_path ()))
      | None -> ());
      if not ok then
        QCheck2.Test.fail_reportf "parallel property failed — flight dump: %s"
          (dump_now "property failed");
      ok)

(* only variable/variable conjuncts seed-shard — anything else would
   silently fall back to the (already covered) sequential path *)
let par_inst inst = { inst with subj = `Var; obj = `Fresh }

let par_fault_prop =
  QCheck2.Test.make ~name:"parallel faults: prefix of clean parallel run" ~count:25
    QCheck2.Gen.(
      quad (gen_instance ~mode:Q.Approx) gen_domains (int_bound 1_000_000)
        (map (List.nth [ 0.002; 0.01; 0.03 ]) (int_bound 2)))
    (monitored (fun (inst, domains, seed, prob) ->
      let inst, q = query_of (par_inst inst) in
      let g, k = build inst in
      let options = { Options.default with Options.domains } in
      let clean, clean_ok = clean_run g k options q in
      Failpoints.arm ~seed (List.map (fun p -> (p, prob)) Failpoints.all_points);
      let chaos =
        Fun.protect
          ~finally:(fun () -> Failpoints.disarm ())
          (fun () -> Engine.run ~graph:g ~ontology:k ~options q)
      in
      let reason_ok =
        match chaos.Engine.termination with
        | Engine.Completed -> true
        | Engine.Exhausted { reason = Governor.Fault p; _ } -> List.mem p point_names
        | Engine.Exhausted _ | Engine.Rejected _ -> false
      in
      clean_ok && reason_ok && outcome_consistent ~clean chaos))

(* The deterministic fake clock must be domain-safe here: shard workers and
   the merge all read it concurrently, so it is an [Atomic] counter, not a
   [ref] — every read still advances it by exactly 97 fake nanoseconds. *)
let par_deadline_prop =
  QCheck2.Test.make ~name:"parallel deadlines: prefix + Deadline termination (atomic clock)"
    ~count:20
    QCheck2.Gen.(triple (gen_instance ~mode:Q.Approx) gen_domains (int_bound 30_000))
    (monitored (fun (inst, domains, timeout_ns) ->
      let inst, q = query_of (par_inst inst) in
      let g, k = build inst in
      let options = { Options.default with Options.domains } in
      let clean, clean_ok = clean_run g k options q in
      let chaos =
        let counter = Atomic.make 0 in
        Governor.now_ns := (fun () -> (Atomic.fetch_and_add counter 1 + 1) * 97);
        Fun.protect ~finally:restore_clock (fun () ->
            Engine.run ~graph:g ~ontology:k
              ~options:{ options with Options.timeout_ns = Some timeout_ns }
              q)
      in
      clean_ok && deadline_reason_ok chaos && outcome_consistent ~clean chaos))

let par_budget_prop =
  QCheck2.Test.make ~name:"parallel budgets: prefix + Tuple_budget/Answer_limit termination"
    ~count:25
    QCheck2.Gen.(quad (gen_instance ~mode:Q.Approx) gen_domains bool (int_range 1 400))
    (monitored (fun (inst, domains, by_answers, cap) ->
      let inst, q = query_of (par_inst inst) in
      let g, k = build inst in
      let base = { Options.default with Options.domains } in
      let clean, clean_ok = clean_run g k base q in
      let options =
        if by_answers then { base with Options.max_answers = Some (min cap 50) }
        else { base with Options.max_tuples = Some cap }
      in
      let chaos = Engine.run ~graph:g ~ontology:k ~options q in
      let reason_ok =
        match (chaos.Engine.termination, by_answers) with
        | Engine.Completed, _ -> true
        | Engine.Exhausted { reason = Governor.Answer_limit; _ }, true ->
          List.length chaos.Engine.answers = min cap 50
        | Engine.Exhausted { reason = Governor.Tuple_budget; _ }, false -> chaos.Engine.aborted
        | (Engine.Exhausted _ | Engine.Rejected _), _ -> false
      in
      clean_ok && reason_ok && outcome_consistent ~clean chaos))

let reason_kind (o : Engine.outcome) =
  match o.Engine.termination with
  | Engine.Completed -> "completed"
  | Engine.Exhausted { reason = Governor.Tuple_budget; _ } -> "tuple-budget"
  | Engine.Exhausted { reason = Governor.Deadline; _ } -> "deadline"
  | Engine.Exhausted { reason = Governor.Answer_limit; _ } -> "answer-limit"
  | Engine.Exhausted { reason = Governor.Memory_budget; _ } -> "memory-budget"
  | Engine.Exhausted { reason = Governor.Fault p; _ } -> "fault:" ^ p
  | Engine.Rejected _ -> "rejected"

(* Deterministic disturbances only: total tuple work and the answer set are
   the same at every domain count (seed-sharding re-partitions the same
   per-seed explorations), so whether a budget trips — and therefore the
   exit code the CLI derives — cannot depend on [domains].  A
   probability-1 seed fault likewise fires on the very first seed batch of
   every shard.  (Probabilistic faults and real-clock deadlines are
   excluded by construction: their firing is genuinely timing-dependent.) *)
let par_taxonomy_prop =
  QCheck2.Test.make ~name:"parallel taxonomy: termination kind is domain-count independent"
    ~count:20
    QCheck2.Gen.(triple (gen_instance ~mode:Q.Approx) (int_bound 3) (int_range 1 400))
    (monitored (fun (inst, disturbance, cap) ->
      let inst, q = query_of (par_inst inst) in
      let g, k = build inst in
      let run domains =
        let options = { Options.default with Options.domains } in
        match disturbance with
        | 0 -> Engine.run ~graph:g ~ontology:k ~options q
        | 1 ->
          Engine.run ~graph:g ~ontology:k
            ~options:{ options with Options.max_tuples = Some cap }
            q
        | 2 ->
          Engine.run ~graph:g ~ontology:k
            ~options:{ options with Options.max_answers = Some (min cap 50) }
            q
        | _ ->
          Failpoints.arm [ (Failpoints.Seed_batch, 1.0) ];
          Fun.protect
            ~finally:(fun () -> Failpoints.disarm ())
            (fun () -> Engine.run ~graph:g ~ontology:k ~options q)
      in
      match List.map (fun n -> reason_kind (run n)) [ 1; 2; 4 ] with
      | k1 :: rest -> List.for_all (( = ) k1) rest
      | [] -> false))

(* --- the sealed-bucket trip window (ROADMAP open item 5) ---------------- *)

(* Drives [Par.create] directly through the exact interleaving that made
   the parallel chaos properties flake on loaded 1-core hosts: shard 0
   delivers answers up to distance 2 and then trips (holding, in the real
   engine, undelivered answers at or above [last - slack]); shard 1 keeps
   delivering *higher* distances around the trip broadcast, tempting the
   consumer — woken inside its merge wait — to recompute the seal bound
   without shard 0 and release buckets the tripped shard still owed.

   The fixed sealing rule freezes an incomplete shard's term at its
   frontier, so nothing at or above distance 2 may ever be emitted; the
   online monitor cross-checks every seal and emit against the recorded
   event stream.  Under the pre-fix rule (any [done_] shard left the min)
   this test trips the monitor's seal-overrun rule within a few dozen
   iterations. *)
let answer dist x = { Core.Conjunct.x; y = 0; dist; witness = None }

let trip_window_iteration () =
  let governor = Options.governor Options.default in
  let metrics = Obs.Metrics.create () in
  let build ~shard ~governor ~metrics:_ =
    if shard = 0 then begin
      (* deliver up to distance 2, then trip *while the consumer is parked
         in the merge wait*: done but *incomplete*, frontier frozen at 2 *)
      let step = ref 0 in
      let pull () =
        incr step;
        match !step with
        | 1 -> Some (answer 0 2)
        | 2 -> Some (answer 2 2)
        | _ ->
          Unix.sleepf 0.004;
          Governor.fault governor "trip-window";
          None
      in
      (pull, Core.Exec_stats.create)
    end
    else begin
      (* advance past the tripped shard's frontier around the trip
         broadcast, tempting a stale-bound seal of the dist-2 bucket *)
      let step = ref 0 in
      let pull () =
        incr step;
        match !step with
        | 1 -> Some (answer 1 9)
        | 2 ->
          Unix.sleepf 0.001;
          Some (answer 3 9)
        | 3 ->
          Unix.sleepf 0.004;
          Some (answer 4 9)
        | _ -> None
      in
      (pull, Core.Exec_stats.create)
    end
  in
  let p =
    Core.Par.create ~domains:2 ~slack:0 ~governor ~metrics ~label:"trip-window" ~build ()
  in
  let rec drain acc =
    match Core.Par.next p with Some a -> drain (a :: acc) | None -> List.rev acc
  in
  let emitted = Fun.protect ~finally:(fun () -> Core.Par.close p) (fun () -> drain []) in
  List.iter
    (fun (a : Core.Conjunct.answer) ->
      if a.Core.Conjunct.dist >= 2 then
        Alcotest.failf
          "emitted dist=%d from a bucket the tripped shard still owed (frozen bound is 2)"
          a.Core.Conjunct.dist)
    emitted

let trip_window_test () =
  Obs.Flight.enable ~detail:true ();
  Obs.Flight.Monitor.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Flight.Monitor.disable ();
      Obs.Flight.disable ();
      Obs.Flight.clear ())
    (fun () ->
      for _ = 1 to 500 do
        trip_window_iteration ()
      done;
      (* the monitor re-checked every seal/emit of all 50 interleavings *)
      Obs.Flight.Monitor.assert_ok ())

(* --- born-tripped streams ---------------------------------------------- *)

(* A fault during query opening (RELAX ontology seeding) must yield a
   stream that reports the fault and streams nothing — not an exception. *)
let open_fault_test () =
  let g = Graph.create () in
  ignore (Graph.add_node g "C0");
  ignore (Graph.add_node g "n0");
  Graph.add_edge_s g 1 "p" 0;
  let k = Ontology.create (Graph.interner g) in
  Ontology.add_subclass k "C0" "C1";
  Graph.freeze g;
  let q = Q.single ~mode:Q.Relax (Q.Const "C0") (Rpq_regex.Regex.lbl "p") (Q.Var "Y") in
  Failpoints.arm [ (Failpoints.Ontology_lookup, 1.0) ];
  Fun.protect
    ~finally:(fun () -> Failpoints.disarm ())
    (fun () ->
      let st = Engine.open_query ~graph:g ~ontology:k q in
      Alcotest.(check (option reject)) "no answers from a born-tripped stream" None
        (Engine.next st);
      match Engine.status st with
      | Engine.Exhausted { reason = Governor.Fault "onto"; answers = 0; _ } -> ()
      | t -> Alcotest.failf "expected onto fault, got %a" Engine.pp_termination t)

(* Cancellation is immediate: after [Governor.cancel] the stream yields
   nothing more and reports the fault. *)
let cancel_test () =
  let inst =
    {
      n_base = 12;
      edges = List.init 40 (fun i -> (i mod 12, "p", (i * 7) mod 12));
      types = [];
      regex = Rpq_regex.Regex.star (Rpq_regex.Regex.lbl "p");
      mode = Q.Approx;
      subj = `Var;
      obj = `Fresh;
    }
  in
  let g, k = build inst in
  let q = Q.single ~mode:Q.Approx (Q.Var "X") inst.regex (Q.Var "Y") in
  let st = Engine.open_query ~graph:g ~ontology:k q in
  (match Engine.next st with
  | Some _ -> ()
  | None -> Alcotest.fail "expected at least one answer before cancelling");
  Governor.cancel ~reason:"client-disconnect" (Engine.governor st);
  Alcotest.(check (option reject)) "nothing after cancel" None (Engine.next st);
  match Engine.status st with
  | Engine.Exhausted { reason = Governor.Fault "client-disconnect"; _ } -> ()
  | t -> Alcotest.failf "expected cancellation fault, got %a" Engine.pp_termination t

let () =
  Alcotest.run "chaos"
    [
      ( "faults",
        [
          QCheck_alcotest.to_alcotest fault_exact;
          QCheck_alcotest.to_alcotest fault_approx;
          QCheck_alcotest.to_alcotest fault_relax;
        ] );
      ("deadlines", [ QCheck_alcotest.to_alcotest deadline_prop ]);
      ("budgets", [ QCheck_alcotest.to_alcotest budget_prop ]);
      ( "memory",
        [
          QCheck_alcotest.to_alcotest memory_plain;
          QCheck_alcotest.to_alcotest memory_provenance;
          QCheck_alcotest.to_alcotest memory_distance_aware;
        ] );
      ("admission", [ QCheck_alcotest.to_alcotest admission_prop ]);
      ("joins", [ QCheck_alcotest.to_alcotest join_prop ]);
      ( "parallel",
        [
          QCheck_alcotest.to_alcotest par_fault_prop;
          QCheck_alcotest.to_alcotest par_deadline_prop;
          QCheck_alcotest.to_alcotest par_budget_prop;
          QCheck_alcotest.to_alcotest par_taxonomy_prop;
        ] );
      ( "flight",
        [
          Alcotest.test_case "sealed-bucket trip window stays frozen" `Quick trip_window_test;
        ] );
      ( "edges",
        [
          Alcotest.test_case "fault while opening" `Quick open_fault_test;
          Alcotest.test_case "cooperative cancel" `Quick cancel_test;
        ] );
    ]
