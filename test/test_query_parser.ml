(* Tests for the CRP query parser and the query AST helpers. *)

module Q = Core.Query
module QP = Core.Query_parser
module R = Rpq_regex.Regex

let check = Alcotest.check

let query = Alcotest.testable Q.pp (fun a b -> a = b)
let conjunct = Alcotest.testable Q.pp_conjunct (fun a b -> a = b)

let test_single_conjunct () =
  check query "constant subject"
    (Q.make ~head:[ "X" ] [ Q.conjunct (Q.Const "UK") (R.seq (R.inv "isLocatedIn") (R.lbl "gradFrom")) (Q.Var "X") ])
    (QP.parse "(?X) <- (UK, isLocatedIn-.gradFrom, ?X)")

let test_operators () =
  let c = QP.parse_conjunct "APPROX (UK, locatedIn-, ?X)" in
  check conjunct "approx"
    (Q.conjunct ~mode:Q.Approx (Q.Const "UK") (R.inv "locatedIn") (Q.Var "X"))
    c;
  let c = QP.parse_conjunct "relax (UK, locatedIn-, ?X)" in
  check conjunct "relax lowercase"
    (Q.conjunct ~mode:Q.Relax (Q.Const "UK") (R.inv "locatedIn") (Q.Var "X"))
    c

let test_constants_with_spaces () =
  let q = QP.parse "(?X) <- (Work Episode, type-, ?X)" in
  match (List.hd q.Q.conjuncts).Q.subj with
  | Q.Const c -> check Alcotest.string "kept intact" "Work Episode" c
  | Q.Var _ -> Alcotest.fail "expected a constant"

let test_multi_conjunct () =
  let q =
    QP.parse "(?X, ?Y) <- (?X, job.type, ?Y), APPROX (?Y, next, ?Z), RELAX (?Z, prereq, ?X)"
  in
  check Alcotest.int "three conjuncts" 3 (List.length q.Q.conjuncts);
  check Alcotest.(list string) "head" [ "X"; "Y" ] q.Q.head;
  check
    (Alcotest.list (Alcotest.testable Q.pp_mode ( = )))
    "modes in order"
    [ Q.Exact; Q.Approx; Q.Relax ]
    (List.map (fun c -> c.Q.cmode) q.Q.conjuncts)

let test_parenthesised_regex_with_commas_absent () =
  (* alternation groups parse inside the conjunct *)
  let q = QP.parse "(?X) <- (UK, (livesIn-.hasCurrency)|(locatedIn-.gradFrom), ?X)" in
  match (List.hd q.Q.conjuncts).Q.regex with
  | R.Alt _ -> ()
  | _ -> Alcotest.fail "expected a top-level alternation"

let test_roundtrip_print_parse () =
  let texts =
    [
      "(?X) <- (UK, isLocatedIn-.gradFrom, ?X)";
      "(?X) <- APPROX (UK, isLocatedIn-.gradFrom, ?X)";
      "(?X, ?Y) <- (?X, job.type, ?Y), RELAX (?Y, next+, ?X)";
    ]
  in
  List.iter
    (fun t ->
      let q = QP.parse t in
      check query ("roundtrip " ^ t) q (QP.parse (Q.to_string q)))
    texts

let test_errors () =
  let fails s =
    match QP.parse_result s with
    | Ok _ -> Alcotest.failf "expected %S to fail" s
    | Error _ -> ()
  in
  List.iter fails
    [
      "";
      "(?X)";
      "(?X) <- ";
      "(?X) <- (a, b)";
      "(?X) <- (a, b, c, d)";
      "(X) <- (a, p, ?X)";
      "(?Y) <- (a, p, ?X)";
      (* head var not in body *)
      "(?X) <- (a, p..q, ?X)";
      (* bad regex *)
      "(?X) <- a, p, ?X";
      "(?X) <- (?, p, ?X)";
    ]

let test_validate () =
  check
    (Alcotest.result Alcotest.unit Alcotest.string)
    "head var missing"
    (Error "head variable ?Z does not appear in the body")
    (Q.validate { Q.head = [ "Z" ]; conjuncts = [ Q.conjunct (Q.Var "X") (R.lbl "p") (Q.Var "Y") ] });
  check
    (Alcotest.result Alcotest.unit Alcotest.string)
    "no conjuncts"
    (Error "a CRP query needs at least one conjunct")
    (Q.validate { Q.head = [ "X" ]; conjuncts = [] })

(* A conjunct flood (or head-variable flood) past [max_conjuncts] must be
   refused with a typed error before any per-conjunct work happens —
   regression for the resource-safety audit. *)
let test_conjunct_cap () =
  let flood n = "(?X) <- " ^ String.concat ", " (List.init n (fun _ -> "(?X, a, ?Y)")) in
  (match QP.parse_result (flood (QP.max_conjuncts + 1)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected the conjunct flood to be refused");
  let head_flood =
    "(" ^ String.concat ", " (List.init (QP.max_conjuncts + 1) (fun i -> Printf.sprintf "?V%d" i))
    ^ ") <- (?V0, a, ?V1)"
  in
  (match QP.parse_result head_flood with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected the head-variable flood to be refused");
  (* a large-but-legal body still parses *)
  match QP.parse_result (flood 64) with
  | Ok q -> check Alcotest.int "64 conjuncts" 64 (List.length q.Q.conjuncts)
  | Error m -> Alcotest.fail m

let test_vars_order () =
  let q = QP.parse "(?X) <- (?Y, p, ?X), (?X, q, ?Z)" in
  check Alcotest.(list string) "first occurrence order" [ "Y"; "X"; "Z" ] (Q.vars q)

let test_single_builder () =
  let q = Q.single ~mode:Q.Approx (Q.Const "a") (R.lbl "p") (Q.Var "X") in
  check Alcotest.(list string) "head inferred" [ "X" ] q.Q.head;
  Alcotest.check_raises "no variables" (Invalid_argument "Query.single: no variables") (fun () ->
      ignore (Q.single (Q.Const "a") (R.lbl "p") (Q.Const "b")))

let () =
  Alcotest.run "query_parser"
    [
      ( "parse",
        [
          Alcotest.test_case "single conjunct" `Quick test_single_conjunct;
          Alcotest.test_case "operators" `Quick test_operators;
          Alcotest.test_case "constants with spaces" `Quick test_constants_with_spaces;
          Alcotest.test_case "multi conjunct" `Quick test_multi_conjunct;
          Alcotest.test_case "alternation groups" `Quick test_parenthesised_regex_with_commas_absent;
          Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip_print_parse;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "conjunct flood capped" `Quick test_conjunct_cap;
        ] );
      ( "ast",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "vars order" `Quick test_vars_order;
          Alcotest.test_case "single builder" `Quick test_single_builder;
        ] );
    ]
