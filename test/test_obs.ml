(* Observability test suite.

   Pins the algebra the metrics pipeline relies on ([Exec_stats.merge_into]
   associativity/commutativity with [peak_queue] as max, [reset], [copy]
   independence), the histogram bucket boundaries ([Metrics.bucket_index] /
   [bucket_bounds]), the registry merge semantics, and two engine-level
   contracts: trace span nesting stays well-formed under injected faults and
   deterministic deadlines, and polling [Engine.stream_stats] mid-stream
   does not perturb the evaluation (the satellite-6 regression). *)

module Graph = Graphstore.Graph
module Q = Core.Query
module R = Rpq_regex.Regex
module Engine = Core.Engine
module Governor = Core.Governor
module Failpoints = Core.Failpoints
module Options = Core.Options
module Stats = Core.Exec_stats
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Json = Obs.Json
open Instance_gen

(* --- Exec_stats algebra ------------------------------------------------ *)

let set_fields (s : Stats.t) = function
  | [ a; b; c; d; e; f; g; h; i; j; k; m; n; o ] ->
    s.Stats.pushes <- a;
    s.Stats.pops <- b;
    s.Stats.succ_calls <- c;
    s.Stats.edges_scanned <- d;
    s.Stats.adjacency_bytes <- e;
    s.Stats.scan_ns <- f;
    s.Stats.batches <- g;
    s.Stats.seeds <- h;
    s.Stats.answers <- i;
    s.Stats.peak_queue <- j;
    s.Stats.restarts <- k;
    s.Stats.pruned <- m;
    s.Stats.drop_visited <- n;
    s.Stats.drop_dup <- o
  | _ -> assert false

let gen_stats =
  QCheck2.Gen.(
    map
      (fun fields ->
        let s = Stats.create () in
        set_fields s fields;
        s)
      (list_repeat 14 (int_bound 10_000)))

let assoc s = Stats.to_assoc s

let merge_assoc_prop =
  QCheck2.Test.make ~name:"merge_into is associative and commutative" ~count:200
    QCheck2.Gen.(triple gen_stats gen_stats gen_stats)
    (fun (a, b, c) ->
      (* ((a ⊕ b) ⊕ c) = (a ⊕ (b ⊕ c)) over disjoint accumulators *)
      let ab = Stats.copy a in
      Stats.merge_into ab b;
      let abc_l = Stats.copy ab in
      Stats.merge_into abc_l c;
      let bc = Stats.copy b in
      Stats.merge_into bc c;
      let abc_r = Stats.copy a in
      Stats.merge_into abc_r bc;
      let ba = Stats.copy b in
      Stats.merge_into ba a;
      assoc abc_l = assoc abc_r && assoc ab = assoc ba)

let peak_queue_max_test () =
  let a = Stats.create () and b = Stats.create () in
  a.Stats.peak_queue <- 5;
  a.Stats.pushes <- 10;
  b.Stats.peak_queue <- 3;
  b.Stats.pushes <- 7;
  Stats.merge_into a b;
  Alcotest.(check int) "peak_queue takes the max, not the sum" 5 a.Stats.peak_queue;
  Alcotest.(check int) "pushes add" 17 a.Stats.pushes;
  (* and the max is symmetric: a smaller accumulator adopts the larger peak *)
  let c = Stats.create () in
  c.Stats.peak_queue <- 2;
  Stats.merge_into c a;
  Alcotest.(check int) "max adopted when accumulator is smaller" 5 c.Stats.peak_queue

let reset_test () =
  let s = Stats.create () in
  set_fields s [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14 ];
  Stats.reset s;
  List.iter (fun (k, v) -> Alcotest.(check int) (k ^ " reset to 0") 0 v) (assoc s)

let copy_independent_test () =
  let s = Stats.create () in
  s.Stats.pushes <- 4;
  let snap = Stats.copy s in
  s.Stats.pushes <- 99;
  Alcotest.(check int) "copy is a snapshot" 4 snap.Stats.pushes

let field_names_test () =
  Alcotest.(check int) "25 scalar counters" 25 (List.length Stats.field_names);
  let s = Stats.create () in
  Alcotest.(check (list string)) "to_assoc follows field_names order" Stats.field_names
    (List.map fst (assoc s))

let scan_ns_na_test () =
  Obs.Clock.uninstall ();
  let s = Stats.create () in
  let rendered = Format.asprintf "%a" Stats.pp s in
  let contains sub str =
    let n = String.length sub and m = String.length str in
    let rec go i = i + n <= m && (String.sub str i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "scan-ns flagged n/a without a clock" true (contains "scan-ns=n/a" rendered);
  Obs.Clock.install (fun () -> 42);
  Alcotest.(check bool) "installed flag set" true (Obs.Clock.installed ());
  Alcotest.(check int) "installed clock read" 42 (!Obs.Clock.now_ns ());
  let with_clock = Format.asprintf "%a" Stats.pp s in
  Alcotest.(check bool) "measured 0 printed as 0 once a clock exists" false
    (contains "scan-ns=n/a" with_clock);
  Obs.Clock.uninstall ();
  Alcotest.(check bool) "uninstall clears the flag" false (Obs.Clock.installed ());
  Alcotest.(check int) "zero clock restored" 0 (!Obs.Clock.now_ns ())

(* --- histogram bucket boundaries --------------------------------------- *)

let bucket_boundary_test () =
  Alcotest.(check int) "0 lands in bucket 0" 0 (Metrics.bucket_index 0);
  Alcotest.(check int) "negatives land in bucket 0" 0 (Metrics.bucket_index (-17));
  Alcotest.(check int) "1 lands in bucket 1" 1 (Metrics.bucket_index 1);
  Alcotest.(check (pair int int)) "bucket 0 bounds" (min_int, 0) (Metrics.bucket_bounds 0);
  for i = 1 to 30 do
    let lo = 1 lsl (i - 1) and hi = (1 lsl i) - 1 in
    Alcotest.(check int) (Printf.sprintf "lo 2^%d lands in bucket %d" (i - 1) i) i
      (Metrics.bucket_index lo);
    Alcotest.(check int) (Printf.sprintf "hi 2^%d-1 lands in bucket %d" i i) i
      (Metrics.bucket_index hi);
    Alcotest.(check (pair int int)) (Printf.sprintf "bucket %d bounds" i) (lo, hi)
      (Metrics.bucket_bounds i)
  done

let bucket_membership_prop =
  QCheck2.Test.make ~name:"bucket_bounds contains every observed value" ~count:500
    QCheck2.Gen.(int_range (-1000) 1_000_000_000)
    (fun v ->
      let i = Metrics.bucket_index v in
      let lo, hi = Metrics.bucket_bounds i in
      lo <= v && v <= hi)

let histogram_observe_test () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "h" in
  List.iter (Metrics.observe h) [ 1; 2; 3; 100; 0 ];
  Alcotest.(check int) "count" 5 (Metrics.h_count h);
  Alcotest.(check int) "sum" 106 (Metrics.h_sum h);
  Alcotest.(check int) "max" 100 (Metrics.h_max h);
  let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 (Metrics.buckets h) in
  Alcotest.(check int) "bucket counts total the observations" 5 total

let registry_merge_test () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter a "c");
  Metrics.incr ~by:4 (Metrics.counter b "c");
  let hb = Metrics.histogram b "h" in
  List.iter (Metrics.observe hb) [ 1; 2; 3; 100 ];
  Metrics.merge_into a b;
  Alcotest.(check int) "counters add" 7 (Metrics.value (Metrics.counter a "c"));
  let ha = Metrics.histogram a "h" in
  Alcotest.(check int) "absent histogram created on merge" 4 (Metrics.h_count ha);
  Alcotest.(check int) "merged sum" 106 (Metrics.h_sum ha);
  Alcotest.(check int) "merged max" 100 (Metrics.h_max ha);
  Alcotest.(check (list string)) "names sorted" [ "c"; "h" ] (Metrics.names a);
  (* kind clash: "c" is a counter in [a], a histogram in [clash] *)
  let clash = Metrics.create () in
  ignore (Metrics.histogram clash "c");
  (match Metrics.merge_into a clash with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "merging a histogram into a counter must raise");
  match Metrics.histogram a "c" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "re-registering a counter name as a histogram must raise"

(* --- JSON float writer (satellite: round-trip safety) ------------------- *)

let float_nonfinite_test () =
  List.iter
    (fun f ->
      Alcotest.(check string) "non-finite floats encode as null" "null"
        (Json.to_string (Json.Float f)))
    [ infinity; neg_infinity; nan ];
  (* a document containing them stays valid JSON *)
  match Json.parse (Json.to_string (Json.Obj [ ("x", Json.Float nan) ])) with
  | Ok (Json.Obj [ ("x", Json.Null) ]) -> ()
  | Ok _ -> Alcotest.fail "expected {\"x\":null}"
  | Error msg -> Alcotest.failf "does not re-parse: %s" msg

let float_roundtrip f =
  match Json.parse (Json.to_string (Json.Float f)) with
  | Error _ -> false
  | Ok j -> ( match Json.to_float j with Some g -> f = g | None -> false)

let float_roundtrip_cases_test () =
  List.iter
    (fun f ->
      Alcotest.(check bool) (Printf.sprintf "%h survives encode/parse" f) true (float_roundtrip f))
    [
      0.1;
      0.2;
      0.3;
      1.5;
      -2.75;
      Float.pi;
      1e15 +. 1. (* just past the integral shortcut: needs full precision *);
      1e-300;
      4.9e-324 (* smallest subnormal *);
      1.7976931348623157e308 (* max finite *);
      123456789.123456789;
    ]

let float_roundtrip_prop =
  QCheck2.Test.make ~name:"finite floats survive encode/parse exactly" ~count:1000
    QCheck2.Gen.float
    (fun f -> (not (Float.is_finite f)) || float_roundtrip f)

(* --- profile (wasted-work report) ---------------------------------------- *)

module Profile = Obs.Profile

let profile_roundtrip_test () =
  let r = Metrics.create () in
  let pop = Metrics.histogram r "pop_distance" in
  List.iter (Metrics.observe pop) [ 0; 1; 1; 2; 3; 5; 9 ];
  let ans = Metrics.histogram r "answer_distance" in
  List.iter (Metrics.observe ans) [ 0; 2; 5 ];
  let ins = Metrics.histogram r "ops_insert" in
  List.iter (Metrics.observe ins) [ 1; 1; 2 ];
  Metrics.incr ~by:20 (Metrics.counter r "pushes");
  Metrics.incr ~by:7 (Metrics.counter r "pops");
  Metrics.incr ~by:3 (Metrics.counter r "answers");
  Metrics.incr ~by:2 (Metrics.counter r "drop_visited");
  Metrics.incr ~by:1 (Metrics.counter r "drop_dup");
  Metrics.incr ~by:4 (Metrics.counter r "pruned");
  let p = Profile.of_metrics r in
  Alcotest.(check int) "queue_left = pushes - pops" 13 p.Profile.queue_left;
  Alcotest.(check int) "pops counter" 7 p.Profile.pops;
  Alcotest.(check int) "discards attributed" 2 p.Profile.drop_visited;
  let popped_total =
    List.fold_left (fun acc (b : Profile.bucket_row) -> acc + b.Profile.popped) 0 p.Profile.buckets
  in
  let answer_total =
    List.fold_left (fun acc (b : Profile.bucket_row) -> acc + b.Profile.answers) 0 p.Profile.buckets
  in
  Alcotest.(check int) "bucket pops total the observations" 7 popped_total;
  Alcotest.(check int) "bucket answers total the observations" 3 answer_total;
  let ins_stat = List.find (fun (o : Profile.op_stat) -> o.Profile.op = "ins") p.Profile.ops in
  Alcotest.(check int) "ins op count" 3 ins_stat.Profile.op_count;
  Alcotest.(check int) "ins op cost" 4 ins_stat.Profile.op_cost;
  Alcotest.(check int) "all five ops reported (zero rows included)" 5 (List.length p.Profile.ops);
  Alcotest.(check bool) "text rendering non-empty" true
    (String.length (Format.asprintf "%a" Profile.pp p) > 0);
  match Json.parse (Json.to_string (Profile.to_json p)) with
  | Error msg -> Alcotest.failf "profile JSON does not re-parse: %s" msg
  | Ok j -> (
    match Profile.of_json j with
    | None -> Alcotest.fail "of_json rejected to_json output"
    | Some p' -> Alcotest.(check bool) "of_json inverts to_json" true (p = p'))

let profile_empty_test () =
  (* an untouched registry yields a well-formed all-zero profile *)
  let p = Profile.of_metrics (Metrics.create ()) in
  Alcotest.(check int) "no buckets" 0 (List.length p.Profile.buckets);
  Alcotest.(check int) "zero queue_left" 0 p.Profile.queue_left;
  match Profile.of_json (Profile.to_json p) with
  | Some p' -> Alcotest.(check bool) "empty profile round-trips" true (p = p')
  | None -> Alcotest.fail "empty profile did not round-trip"

(* --- tracer ------------------------------------------------------------- *)

let span_depth_ok events =
  let rec go depth = function
    | [] -> depth = 0
    | (e : Trace.event) :: rest -> (
      match e.Trace.ph with
      | Trace.Begin -> go (depth + 1) rest
      | Trace.End -> depth > 0 && go (depth - 1) rest
      | Trace.Instant | Trace.Complete _ | Trace.Meta -> go depth rest)
  in
  go 0 events

let trace_disabled_test () =
  Trace.enable ~capacity:16 ();
  Trace.disable ();
  (* a fresh (empty) buffer, tracer off: nothing may be recorded *)
  Alcotest.(check int) "with_span is transparent when disabled" 7
    (Trace.with_span "off" (fun () -> 7));
  Trace.instant "off";
  Trace.complete ~start_ns:0 "off";
  Alcotest.(check int) "no events recorded while disabled" 0 (List.length (Trace.events ()))

let trace_exception_test () =
  Trace.enable ~capacity:64 ();
  Fun.protect ~finally:Trace.disable (fun () ->
      (try Trace.with_span "outer" (fun () -> Trace.with_span "boom" (fun () -> failwith "x"))
       with Failure _ -> ());
      let events = Trace.events () in
      Alcotest.(check int) "two B + two E" 4 (List.length events);
      Alcotest.(check bool) "spans closed despite the raise" true (span_depth_ok events))

let trace_json_test () =
  Trace.enable ~capacity:64 ();
  Fun.protect ~finally:Trace.disable (fun () ->
      Obs.Clock.install (fun () -> 1_000_000_000 + (List.length (Trace.events ()) * 1000));
      Fun.protect ~finally:Obs.Clock.uninstall (fun () ->
          Trace.with_span ~cat:"t" ~args:[ ("k", Trace.Num 3) ] "span" (fun () -> Trace.instant "tick");
          let doc = Trace.to_json () in
          match Json.parse (Json.to_string doc) with
          | Error msg -> Alcotest.failf "trace JSON does not re-parse: %s" msg
          | Ok j -> (
            match Json.member "traceEvents" j with
            | None -> Alcotest.fail "no traceEvents array"
            | Some evs -> (
              match Json.to_list evs with
              | None -> Alcotest.fail "traceEvents is not an array"
              | Some l ->
                Alcotest.(check int) "B + i + E exported" 3 (List.length l);
                List.iter
                  (fun e ->
                    match Json.to_float (Option.get (Json.member "ts" e)) with
                    | Some ts -> Alcotest.(check bool) "ts rebased to non-negative" true (ts >= 0.)
                    | None -> Alcotest.fail "ts is not a number")
                  l))))

let trace_dropped_test () =
  Trace.enable ~capacity:16 ();
  Fun.protect ~finally:Trace.disable (fun () ->
      for _ = 1 to 40 do
        Trace.instant "tick"
      done;
      Alcotest.(check int) "ring buffer truncation counted" 24 (Trace.dropped ());
      let doc = Trace.to_json ~extra:[ ("profile", Json.Obj [ ("pops", Json.Int 0) ]) ] () in
      (match Json.member "dropped" doc with
      | Some (Json.Int d) -> Alcotest.(check int) "dropped surfaced in the export" 24 d
      | _ -> Alcotest.fail "no top-level dropped field in trace export");
      match Json.member "profile" doc with
      | Some (Json.Obj _) -> ()
      | _ -> Alcotest.fail "extra fields not carried through to_json")

(* Randomized engine runs under injected faults and a deterministic counter
   deadline: whatever trips, the buffered span events must nest. *)
let query_of inst =
  let inst =
    match (inst.subj, inst.obj) with
    | (`Node _ | `Ghost), (`Node _ | `Ghost) -> { inst with obj = `Fresh }
    | _ -> inst
  in
  (inst, Q.make ~head:(Q.conjunct_vars (conjunct_of inst)) [ conjunct_of inst ])

let trace_nesting_prop =
  QCheck2.Test.make ~name:"trace spans stay balanced under faults + deadlines" ~count:40
    QCheck2.Gen.(triple (gen_instance ~mode:Q.Approx) (int_bound 1_000_000) (int_bound 30_000))
    (fun (inst, seed, timeout_ns) ->
      let inst, q = query_of inst in
      let g, k = build inst in
      let options = { Options.default with Options.timeout_ns = Some timeout_ns } in
      Trace.enable ();
      let counter = ref 0 in
      (Governor.now_ns :=
         fun () ->
           incr counter;
           !counter * 97);
      Failpoints.arm ~seed (List.map (fun p -> (p, 0.01)) Failpoints.all_points);
      let _ =
        Fun.protect
          ~finally:(fun () ->
            Failpoints.disarm ();
            Governor.now_ns := (fun () -> 0);
            Trace.disable ())
          (fun () -> Engine.run ~graph:g ~ontology:k ~options q)
      in
      Trace.dropped () > 0 || span_depth_ok (Trace.events ()))

(* --- engine: stream_stats mid-stream polling regression ----------------- *)

let poll_instance =
  {
    n_base = 12;
    edges = List.init 40 (fun i -> (i mod 12, "p", (i * 7) mod 12));
    types = [ (0, 0); (3, 1) ];
    regex = R.star (R.lbl "p");
    mode = Q.Approx;
    subj = `Var;
    obj = `Fresh;
  }

let collect ~poll st =
  let rec go acc =
    if poll then begin
      (* the regression: interrogating the stream between pulls must be
         free of side effects on the evaluation *)
      ignore (Engine.stream_stats st);
      ignore (Stats.copy (Engine.stream_stats st));
      ignore (Engine.metrics st)
    end;
    match Engine.next st with
    | Some a -> go ((a.Engine.bindings, a.Engine.distance) :: acc)
    | None -> List.rev acc
  in
  go []

let polling_regression_test () =
  let g, k = build poll_instance in
  let q = Q.single ~mode:Q.Approx (Q.Var "X") poll_instance.regex (Q.Var "Y") in
  let limit = 200 in
  let run ~poll =
    let governor = Governor.create ~max_answers:limit () in
    let st = Engine.open_query ~graph:g ~ontology:k ~governor q in
    let answers = collect ~poll st in
    (answers, Stats.copy (Engine.stream_stats st))
  in
  let plain_answers, plain_stats = run ~poll:false in
  let polled_answers, polled_stats = run ~poll:true in
  Alcotest.(check int) "same answer count" (List.length plain_answers) (List.length polled_answers);
  Alcotest.(check bool) "same answers in the same order" true (plain_answers = polled_answers);
  List.iter2
    (fun (k, v) (k', v') ->
      Alcotest.(check string) "same counter" k k';
      (* the gc_* deltas are excluded: polling itself allocates (that's what
         they measure), so only the evaluation counters must be identical *)
      if not (String.length k >= 3 && String.sub k 0 3 = "gc_") then
        Alcotest.(check int) ("counter " ^ k ^ " unperturbed") v v')
    (assoc plain_stats) (assoc polled_stats)

let stream_stats_cached_test () =
  let g, k = build poll_instance in
  let q = Q.single ~mode:Q.Approx (Q.Var "X") poll_instance.regex (Q.Var "Y") in
  let st = Engine.open_query ~graph:g ~ontology:k q in
  ignore (Engine.next st);
  Alcotest.(check bool) "stream_stats reuses one record (no per-poll allocation)" true
    (Engine.stream_stats st == Engine.stream_stats st)

(* --- explain ------------------------------------------------------------ *)

let explain_test () =
  let g, k = build poll_instance in
  let q = Q.single ~mode:Q.Approx (Q.Var "X") (R.star (R.lbl "p")) (Q.Var "Y") in
  let plan = Engine.explain ~graph:g ~ontology:k q in
  Alcotest.(check string) "single conjunct join" "single-conjunct" plan.Obs.Explain.join;
  Alcotest.(check int) "one conjunct plan" 1 (List.length plan.Obs.Explain.conjuncts);
  let c = List.hd plan.Obs.Explain.conjuncts in
  Alcotest.(check string) "APPROX compiles A_R" "A_R" c.Obs.Explain.automaton;
  Alcotest.(check bool) "automaton has states" true (c.Obs.Explain.states > 0);
  Alcotest.(check bool) "counters empty before annotate" true (c.Obs.Explain.counters = []);
  let rendered = Format.asprintf "%a" Obs.Explain.pp plan in
  Alcotest.(check bool) "text rendering non-empty" true (String.length rendered > 0);
  (match Json.parse (Json.to_string (Obs.Explain.to_json plan)) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "explain JSON does not re-parse: %s" msg);
  (* annotate after a drain fills live counters *)
  let st = Engine.open_query ~graph:g ~ontology:k q in
  let outcome = Engine.drain ~limit:50 st in
  Engine.annotate st plan;
  Alcotest.(check bool) "counters filled after annotate" true (c.Obs.Explain.counters <> []);
  Alcotest.(check bool) "analysis filled after annotate" true (plan.Obs.Explain.analysis <> []);
  Alcotest.(check int) "annotated answers match the outcome"
    (List.length outcome.Engine.answers)
    (List.assoc "answers" c.Obs.Explain.counters);
  match Json.parse (Json.to_string (Metrics.to_json outcome.Engine.metrics)) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "metrics JSON does not re-parse: %s" msg

let () =
  Alcotest.run "obs"
    [
      ( "exec_stats",
        [
          QCheck_alcotest.to_alcotest merge_assoc_prop;
          Alcotest.test_case "peak_queue merges as max" `Quick peak_queue_max_test;
          Alcotest.test_case "reset zeroes every field" `Quick reset_test;
          Alcotest.test_case "copy is independent" `Quick copy_independent_test;
          Alcotest.test_case "field_names/to_assoc agree" `Quick field_names_test;
          Alcotest.test_case "scan-ns n/a without a clock" `Quick scan_ns_na_test;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "log2 bucket boundaries" `Quick bucket_boundary_test;
          QCheck_alcotest.to_alcotest bucket_membership_prop;
          Alcotest.test_case "observe aggregates" `Quick histogram_observe_test;
          Alcotest.test_case "registry merge" `Quick registry_merge_test;
        ] );
      ( "json",
        [
          Alcotest.test_case "non-finite floats encode as null" `Quick float_nonfinite_test;
          Alcotest.test_case "awkward floats round-trip" `Quick float_roundtrip_cases_test;
          QCheck_alcotest.to_alcotest float_roundtrip_prop;
        ] );
      ( "profile",
        [
          Alcotest.test_case "of_metrics / JSON round-trip" `Quick profile_roundtrip_test;
          Alcotest.test_case "empty registry profile" `Quick profile_empty_test;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled tracer records nothing" `Quick trace_disabled_test;
          Alcotest.test_case "spans close on exceptions" `Quick trace_exception_test;
          Alcotest.test_case "export re-parses, ts rebased" `Quick trace_json_test;
          Alcotest.test_case "dropped count surfaced in export" `Quick trace_dropped_test;
          QCheck_alcotest.to_alcotest trace_nesting_prop;
        ] );
      ( "engine",
        [
          Alcotest.test_case "mid-stream polling does not perturb" `Quick polling_regression_test;
          Alcotest.test_case "stream_stats is cached" `Quick stream_stats_cached_test;
          Alcotest.test_case "explain + annotate" `Quick explain_test;
        ] );
    ]
