(* Unit and property tests for the graph store substrate: interner, oid
   bitsets and the Sparksee-like adjacency API. *)

module Interner = Graphstore.Interner
module Oid_set = Graphstore.Oid_set
module Graph = Graphstore.Graph

let check = Alcotest.check

(* --- Interner ------------------------------------------------------- *)

let test_intern_dense_ids () =
  let t = Interner.create () in
  check Alcotest.int "first" 0 (Interner.intern t "a");
  check Alcotest.int "second" 1 (Interner.intern t "b");
  check Alcotest.int "repeat" 0 (Interner.intern t "a");
  check Alcotest.int "cardinal" 2 (Interner.cardinal t)

let test_intern_name_roundtrip () =
  let t = Interner.create ~initial_capacity:1 () in
  let words = List.init 100 (fun i -> Printf.sprintf "label-%d" i) in
  let ids = List.map (Interner.intern t) words in
  List.iter2 (fun w id -> check Alcotest.string "name" w (Interner.name t id)) words ids;
  check Alcotest.(option int) "find known" (Some 42) (Interner.find t "label-42");
  check Alcotest.(option int) "find unknown" None (Interner.find t "nope")

let test_intern_bad_id () =
  let t = Interner.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Interner.name: unknown id -1") (fun () ->
      ignore (Interner.name t (-1)))

let test_intern_iter_order () =
  let t = Interner.create () in
  List.iter (fun w -> ignore (Interner.intern t w)) [ "x"; "y"; "z" ];
  let seen = ref [] in
  Interner.iter t (fun id name -> seen := (id, name) :: !seen);
  check
    Alcotest.(list (pair int string))
    "in id order"
    [ (0, "x"); (1, "y"); (2, "z") ]
    (List.rev !seen)

(* --- Oid_set -------------------------------------------------------- *)

let test_oid_set_basics () =
  let s = Oid_set.create ~capacity:4 () in
  check Alcotest.bool "empty" true (Oid_set.is_empty s);
  Oid_set.add s 3;
  Oid_set.add s 1000;
  (* beyond capacity: grows *)
  check Alcotest.bool "mem 3" true (Oid_set.mem s 3);
  check Alcotest.bool "mem 1000" true (Oid_set.mem s 1000);
  check Alcotest.bool "mem 4" false (Oid_set.mem s 4);
  check Alcotest.int "cardinal" 2 (Oid_set.cardinal s);
  check Alcotest.(list int) "sorted iteration" [ 3; 1000 ] (Oid_set.to_list s);
  Oid_set.remove s 3;
  check Alcotest.bool "removed" false (Oid_set.mem s 3);
  check Alcotest.int "cardinal after remove" 1 (Oid_set.cardinal s);
  Oid_set.clear s;
  check Alcotest.bool "cleared" true (Oid_set.is_empty s)

let test_oid_set_add_new () =
  let s = Oid_set.create () in
  check Alcotest.bool "fresh" true (Oid_set.add_new s 7);
  check Alcotest.bool "dup" false (Oid_set.add_new s 7);
  check Alcotest.int "cardinal" 1 (Oid_set.cardinal s)

let test_oid_set_union () =
  let a = Oid_set.create () and b = Oid_set.create () in
  List.iter (Oid_set.add a) [ 1; 5; 9 ];
  List.iter (Oid_set.add b) [ 5; 6 ];
  Oid_set.union_into a b;
  check Alcotest.(list int) "union" [ 1; 5; 6; 9 ] (Oid_set.to_list a)

(* Model-based property: a random sequence of add/remove agrees with a
   reference implementation over int sets. *)
let oid_set_model =
  QCheck2.Test.make ~name:"Oid_set agrees with a model set" ~count:200
    QCheck2.Gen.(list (pair bool (int_bound 500)))
    (fun ops ->
      let s = Oid_set.create ~capacity:1 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, x) ->
          if add then begin
            Oid_set.add s x;
            Hashtbl.replace model x ()
          end
          else begin
            Oid_set.remove s x;
            Hashtbl.remove model x
          end)
        ops;
      let expected = Hashtbl.fold (fun k () acc -> k :: acc) model [] |> List.sort compare in
      Oid_set.to_list s = expected && Oid_set.cardinal s = List.length expected)

(* --- Graph ---------------------------------------------------------- *)

let small_graph () =
  let g = Graph.create ~initial_nodes:2 () in
  let a = Graph.add_node g "a"
  and b = Graph.add_node g "b"
  and c = Graph.add_node g "c" in
  Graph.add_edge_s g a "p" b;
  Graph.add_edge_s g b "p" c;
  Graph.add_edge_s g a "q" c;
  Graph.add_edge_s g c "type" a;
  (g, a, b, c)

let test_graph_nodes () =
  let g, a, _, _ = small_graph () in
  check Alcotest.int "n_nodes" 3 (Graph.n_nodes g);
  check Alcotest.int "idempotent add" a (Graph.add_node g "a");
  check Alcotest.int "n_nodes unchanged" 3 (Graph.n_nodes g);
  check Alcotest.(option int) "find" (Some a) (Graph.find_node g "a");
  check Alcotest.(option int) "find missing" None (Graph.find_node g "zzz");
  check Alcotest.string "label" "a" (Graph.node_label g a)

let test_graph_neighbors () =
  let g, a, b, c = small_graph () in
  let p = Interner.intern (Graph.interner g) "p" in
  check Alcotest.(list int) "out" [ b ] (Graph.neighbors g a p Graph.Out);
  check Alcotest.(list int) "in" [ a ] (Graph.neighbors g b p Graph.In);
  check Alcotest.(list int) "both" [ c; a ] (Graph.neighbors g b p Graph.Both);
  check Alcotest.(list int) "none" [] (Graph.neighbors g c p Graph.Out)

let test_graph_neighbors_any () =
  let g, a, _, _ = small_graph () in
  let acc = ref [] in
  Graph.iter_neighbors_any g a (fun m -> acc := m :: !acc);
  (* a: out p->b, out q->c, in type<-c *)
  check Alcotest.int "three incident edges" 3 (List.length !acc)

let test_graph_heads_tails () =
  let g, a, b, c = small_graph () in
  let p = Interner.intern (Graph.interner g) "p" in
  check Alcotest.(list int) "tails p" [ a; b ] (Oid_set.to_list (Graph.tails_by_label g p));
  check Alcotest.(list int) "heads p" [ b; c ] (Oid_set.to_list (Graph.heads_by_label g p));
  check
    Alcotest.(list int)
    "tails-and-heads p" [ a; b; c ]
    (Oid_set.to_list (Graph.tails_and_heads g p))

let test_graph_mem_edge_degrees () =
  let g, a, b, c = small_graph () in
  let p = Interner.intern (Graph.interner g) "p" in
  check Alcotest.bool "mem" true (Graph.mem_edge g a p b);
  check Alcotest.bool "not mem (reverse)" false (Graph.mem_edge g b p a);
  check Alcotest.int "out degree" 1 (Graph.out_degree g a p);
  check Alcotest.int "in degree" 1 (Graph.in_degree g c p);
  check Alcotest.int "n_edges" 4 (Graph.n_edges g)

let test_graph_labels_and_type () =
  let g, _, _, _ = small_graph () in
  let names =
    List.map (Interner.name (Graph.interner g)) (Graph.labels g) |> List.sort compare
  in
  check Alcotest.(list string) "labels" [ "p"; "q"; "type" ] names;
  check Alcotest.string "type label interned" "type"
    (Interner.name (Graph.interner g) (Graph.type_label g))

let test_graph_iter_edges () =
  let g, _, _, _ = small_graph () in
  let n = ref 0 in
  Graph.iter_edges g (fun _ _ _ -> incr n);
  check Alcotest.int "edge count" 4 !n

let test_graph_stats () =
  let g, _, _, _ = small_graph () in
  let s = Graph.stats g in
  check Alcotest.int "nodes" 3 s.Graph.nodes;
  check Alcotest.int "edges" 4 s.Graph.edges;
  check Alcotest.int "labels" 3 s.Graph.distinct_labels;
  (* degrees are per label: a has one p-edge and one q-edge *)
  check Alcotest.int "max out" 1 s.Graph.max_out_degree

let test_graph_bad_oid () =
  let g, _, _, _ = small_graph () in
  Alcotest.check_raises "bad oid" (Invalid_argument "Graph.node_label: unknown oid 99") (fun () ->
      ignore (Graph.node_label g 99))

(* --- frozen (CSR) graphs -------------------------------------------- *)

let test_freeze_lifecycle () =
  let g, a, b, _ = small_graph () in
  check Alcotest.bool "starts unfrozen" false (Graph.frozen g);
  check Alcotest.int "no index, no bytes" 0 (Graph.csr_bytes g);
  Graph.freeze g;
  check Alcotest.bool "frozen" true (Graph.frozen g);
  check Alcotest.bool "index has bytes" true (Graph.csr_bytes g > 0);
  Graph.freeze g;
  check Alcotest.bool "freeze is idempotent" true (Graph.frozen g);
  ignore (Graph.add_node g "d");
  check Alcotest.bool "add_node invalidates" false (Graph.frozen g);
  Graph.freeze g;
  Graph.add_edge_s g b "q" a;
  check Alcotest.bool "add_edge invalidates" false (Graph.frozen g);
  Graph.freeze g;
  Graph.unfreeze g;
  check Alcotest.bool "unfreeze" false (Graph.frozen g)

(* The frozen twins of the hashtable-path adjacency tests: same answers,
   served from packed sorted ranges. *)
let test_frozen_adjacency () =
  let g, a, b, c = small_graph () in
  Graph.freeze g;
  let p = Interner.intern (Graph.interner g) "p" in
  check Alcotest.(list int) "out" [ b ] (Graph.neighbors g a p Graph.Out);
  check Alcotest.(list int) "in" [ a ] (Graph.neighbors g b p Graph.In);
  check Alcotest.(list int) "both" [ c; a ] (Graph.neighbors g b p Graph.Both);
  check Alcotest.(list int) "none" [] (Graph.neighbors g c p Graph.Out);
  check Alcotest.bool "mem" true (Graph.mem_edge g a p b);
  check Alcotest.bool "not mem (reverse)" false (Graph.mem_edge g b p a);
  check Alcotest.int "out degree" 1 (Graph.out_degree g a p);
  check Alcotest.int "in degree" 1 (Graph.in_degree g c p);
  check Alcotest.bool "has_adjacent out" true (Graph.has_adjacent g a p Graph.Out);
  check Alcotest.bool "has_adjacent none" false (Graph.has_adjacent g c p Graph.Out);
  check Alcotest.bool "has_adjacent in" true (Graph.has_adjacent g c p Graph.In);
  check Alcotest.(list int) "tails p" [ a; b ] (Oid_set.to_list (Graph.tails_by_label g p));
  check Alcotest.(list int) "heads p" [ b; c ] (Oid_set.to_list (Graph.heads_by_label g p));
  check
    Alcotest.(list int)
    "tails-and-heads p" [ a; b; c ]
    (Oid_set.to_list (Graph.tails_and_heads g p))

let test_frozen_label_sweeps () =
  let g, a, _, c = small_graph () in
  Graph.freeze g;
  let intern = Interner.intern (Graph.interner g) in
  let collect f =
    let acc = ref [] in
    f (fun m -> acc := m :: !acc);
    List.sort compare !acc
  in
  (* a: out p->b, out q->c, in type<-c *)
  check Alcotest.int "any: all incident edges" 3
    (List.length (collect (Graph.iter_neighbors_any g a)));
  check Alcotest.int "all labels, out only" 2
    (List.length (collect (Graph.iter_neighbors_all_labels g a Graph.Out)));
  check Alcotest.(list int) "label subset" [ c ]
    (collect (Graph.iter_neighbors_labels g a [| intern "q"; intern "type" |] Graph.Out));
  (* a label the index never saw is simply empty *)
  check Alcotest.(list int) "unused label" []
    (collect (fun f -> Graph.iter_neighbors g a (intern "ghost") Graph.Out f))

(* Property: freezing never changes any adjacency answer.  Every query the
   store offers is taken both before and after [freeze] on random graphs
   (list answers sorted: rows are packed in ascending order, hashtable
   cells in insertion order). *)
let frozen_matches_unfrozen =
  QCheck2.Test.make ~name:"frozen CSR = hashtable adjacency" ~count:100
    QCheck2.Gen.(list_size (int_range 0 80) (triple (int_bound 14) (int_bound 3) (int_bound 14)))
    (fun edges ->
      let g = Graph.create () in
      for i = 0 to 14 do
        ignore (Graph.add_node g (Printf.sprintf "v%d" i))
      done;
      List.iter (fun (s, l, d) -> Graph.add_edge_s g s (Printf.sprintf "l%d" l) d) edges;
      let labels =
        List.init 4 (fun l -> Interner.intern (Graph.interner g) (Printf.sprintf "l%d" l))
      in
      let collect f =
        let acc = ref [] in
        f (fun m -> acc := m :: !acc);
        List.sort compare !acc
      in
      let snapshot () =
        List.map
          (fun n ->
            ( List.map
                (fun l ->
                  ( List.map (fun dir -> List.sort compare (Graph.neighbors g n l dir))
                      [ Graph.Out; Graph.In; Graph.Both ],
                    Graph.mem_edge g n l ((n + 1) mod 15),
                    (Graph.out_degree g n l, Graph.in_degree g n l),
                    (Graph.has_adjacent g n l Graph.Out, Graph.has_adjacent g n l Graph.In),
                    (Oid_set.to_list (Graph.tails_by_label g l),
                     Oid_set.to_list (Graph.heads_by_label g l)) ))
                labels,
              collect (Graph.iter_neighbors_any g n),
              collect (Graph.iter_neighbors_all_labels g n Graph.Out),
              collect (Graph.iter_neighbors_all_labels g n Graph.In) ))
          (List.init 15 Fun.id)
      in
      let before = snapshot () in
      Graph.freeze g;
      before = snapshot ())

(* Property: adjacency is symmetric — m is an Out-neighbour of n under l
   iff n is an In-neighbour of m under l, for random graphs. *)
let graph_adjacency_symmetry =
  QCheck2.Test.make ~name:"out/in adjacency symmetry" ~count:50
    QCheck2.Gen.(list_size (int_range 1 60) (triple (int_bound 9) (int_bound 2) (int_bound 9)))
    (fun edges ->
      let g = Graph.create () in
      let node i = Graph.add_node g (string_of_int i) in
      List.iter (fun (s, l, d) -> Graph.add_edge_s g (node s) (Printf.sprintf "l%d" l) (node d)) edges;
      List.for_all
        (fun (s, l, d) ->
          let l = Interner.intern (Graph.interner g) (Printf.sprintf "l%d" l) in
          let s = node s and d = node d in
          List.mem d (Graph.neighbors g s l Graph.Out) && List.mem s (Graph.neighbors g d l Graph.In))
        edges)

let () =
  Alcotest.run "graphstore"
    [
      ( "interner",
        [
          Alcotest.test_case "dense ids" `Quick test_intern_dense_ids;
          Alcotest.test_case "name roundtrip" `Quick test_intern_name_roundtrip;
          Alcotest.test_case "bad id" `Quick test_intern_bad_id;
          Alcotest.test_case "iter order" `Quick test_intern_iter_order;
        ] );
      ( "oid_set",
        [
          Alcotest.test_case "basics" `Quick test_oid_set_basics;
          Alcotest.test_case "add_new" `Quick test_oid_set_add_new;
          Alcotest.test_case "union" `Quick test_oid_set_union;
          QCheck_alcotest.to_alcotest oid_set_model;
        ] );
      ( "graph",
        [
          Alcotest.test_case "nodes" `Quick test_graph_nodes;
          Alcotest.test_case "neighbors" `Quick test_graph_neighbors;
          Alcotest.test_case "neighbors any" `Quick test_graph_neighbors_any;
          Alcotest.test_case "heads/tails" `Quick test_graph_heads_tails;
          Alcotest.test_case "mem_edge and degrees" `Quick test_graph_mem_edge_degrees;
          Alcotest.test_case "labels and type" `Quick test_graph_labels_and_type;
          Alcotest.test_case "iter_edges" `Quick test_graph_iter_edges;
          Alcotest.test_case "stats" `Quick test_graph_stats;
          Alcotest.test_case "bad oid" `Quick test_graph_bad_oid;
          QCheck_alcotest.to_alcotest graph_adjacency_symmetry;
        ] );
      ( "frozen graph",
        [
          Alcotest.test_case "freeze lifecycle" `Quick test_freeze_lifecycle;
          Alcotest.test_case "frozen adjacency" `Quick test_frozen_adjacency;
          Alcotest.test_case "frozen label sweeps" `Quick test_frozen_label_sweeps;
          QCheck_alcotest.to_alcotest frozen_matches_unfrozen;
        ] );
    ]
