(* Random single-conjunct instances over small graphs with a fixed
   class/property hierarchy — the shared generator behind the differential
   oracle suite (test_oracle) and the chaos suite (test_chaos).

   Instances cover every conjunct shape the engine distinguishes: variable
   and constant subjects and objects (including unknown constants and
   repeated variables) and exact / APPROX / RELAX modes. *)

module Graph = Graphstore.Graph
module Q = Core.Query
module R = Rpq_regex.Regex

let labels = [ "p"; "q"; "r"; "type" ]
let n_classes = 3

type instance = {
  n_base : int; (* plain nodes n0 .. n{n_base-1}; class nodes C0..C2 follow *)
  edges : (int * string * int) list;
  types : (int * int) list; (* base node -> class index, as type edges *)
  regex : R.t;
  mode : Q.mode;
  subj : [ `Var | `Node of int | `Ghost ];
  obj : [ `Fresh | `Same | `Node of int | `Ghost ];
}

let gen_regex =
  QCheck2.Gen.(
    sized (fun size ->
        let rec gen n =
          if n <= 1 then
            oneof
              [
                return (R.lbl "p"); return (R.lbl "q"); return (R.lbl "r");
                return (R.inv "p"); return (R.inv "q"); return R.any;
                return (R.lbl "type"); return (R.inv "type");
              ]
          else
            oneof
              [
                map2 R.seq (gen (n / 2)) (gen (n / 2));
                map2 R.alt (gen (n / 2)) (gen (n / 2));
                map R.star (gen (n / 2));
                map R.plus (gen (n / 2));
              ]
        in
        gen (min size 8)))

let gen_instance ~mode =
  QCheck2.Gen.(
    let* n_base = int_range 12 27 in
    let n_total = n_base + n_classes in
    let* edges =
      list_size (int_range 10 60)
        (triple (int_bound (n_total - 1))
           (map (List.nth labels) (int_bound 3))
           (int_bound (n_total - 1)))
    in
    let* types = list_size (int_range 0 8) (pair (int_bound (n_base - 1)) (int_bound (n_classes - 1))) in
    let* regex = gen_regex in
    let* subj =
      frequency
        [
          (4, return `Var);
          (3, map (fun i -> `Node i) (int_bound (n_total - 1)));
          (1, return `Ghost);
        ]
    in
    let* obj =
      frequency
        [
          (4, return `Fresh);
          (1, return `Same);
          (2, map (fun i -> `Node i) (int_bound (n_total - 1)));
          (1, return `Ghost);
        ]
    in
    return { n_base; edges; types; regex; mode; subj; obj })

let name_of inst i =
  if i < inst.n_base then Printf.sprintf "n%d" i else Printf.sprintf "C%d" (i - inst.n_base)

let build inst =
  let g = Graph.create () in
  for i = 0 to inst.n_base + n_classes - 1 do
    ignore (Graph.add_node g (name_of inst i))
  done;
  List.iter (fun (s, l, d) -> Graph.add_edge_s g s l d) inst.edges;
  List.iter (fun (n, c) -> Graph.add_edge_s g n "type" (inst.n_base + c)) inst.types;
  let k = Ontology.create (Graph.interner g) in
  Ontology.add_subclass k "C0" "C1";
  Ontology.add_subclass k "C1" "C2";
  Ontology.add_subproperty k "q" "p";
  Ontology.add_subproperty k "p" "super";
  Ontology.add_domain k "p" "C0";
  Ontology.add_range k "p" "C1";
  (* the engine side always runs on the frozen CSR index *)
  Graph.freeze g;
  (g, k)

(* Domain counts the property suites sweep.  The determinism contract
   (DESIGN.md §Parallel evaluation) is that the answer *multiset* — and for
   any two parallel counts the exact stream — is independent of [domains],
   so the oracle/chaos/provenance generators re-run their properties at
   each count instead of maintaining copy-pasted parallel suites.  The
   sweep can be pinned from the environment (the CI multi-core job exports
   [OMEGA_DOMAINS=4] to re-run everything at one parallel width). *)
let domains_under_test () =
  match Sys.getenv_opt Core.Options.domains_env_var with
  | None | Some "" -> [ 1; 2; 4 ]
  | Some _ -> [ 1; Core.Options.domains_from_env () ]

let with_domains options domains = { options with Core.Options.domains }

let conjunct_of inst =
  let subj =
    match inst.subj with
    | `Var -> Q.Var "X"
    | `Node i -> Q.Const (name_of inst i)
    | `Ghost -> Q.Const "missing"
  in
  let obj =
    match inst.obj with
    | `Fresh -> Q.Var "Y"
    | `Same -> Q.Var "X"
    | `Node i -> Q.Const (name_of inst i)
    | `Ghost -> Q.Const "absent"
  in
  Q.conjunct ~mode:inst.mode subj inst.regex obj
