(* Tests for the engine's physical data structures: the distance-bucketed
   dictionary D_R, the batch seeder, options and counters. *)

module Dr = Core.Dr_queue
module Seeder = Core.Seeder
module Options = Core.Options
module Graph = Graphstore.Graph

let check = Alcotest.check

(* --- Dr_queue -------------------------------------------------------- *)

let test_dr_fifo_distance_order () =
  let q = Dr.create () in
  Dr.push q ~dist:3 ~final:false "d3";
  Dr.push q ~dist:1 ~final:false "d1";
  Dr.push q ~dist:2 ~final:false "d2";
  check Alcotest.(option (triple string int bool)) "min first" (Some ("d1", 1, false)) (Dr.pop q);
  check Alcotest.(option (triple string int bool)) "then 2" (Some ("d2", 2, false)) (Dr.pop q);
  check Alcotest.(option (triple string int bool)) "then 3" (Some ("d3", 3, false)) (Dr.pop q);
  check Alcotest.(option (triple string int bool)) "empty" None (Dr.pop q)

let test_dr_final_priority () =
  let q = Dr.create () in
  Dr.push q ~dist:1 ~final:false "nf";
  Dr.push q ~dist:1 ~final:true "f";
  (match Dr.pop q with
  | Some (v, 1, true) -> check Alcotest.string "final first" "f" v
  | _ -> Alcotest.fail "expected the final tuple");
  match Dr.pop q with
  | Some (v, 1, false) -> check Alcotest.string "then non-final" "nf" v
  | _ -> Alcotest.fail "expected the non-final tuple"

let test_dr_lifo_within_bucket () =
  let q = Dr.create () in
  Dr.push q ~dist:0 ~final:false "first";
  Dr.push q ~dist:0 ~final:false "second";
  match Dr.pop q with
  | Some ("second", _, _) -> ()
  | _ -> Alcotest.fail "stacks pop most-recently-pushed first"

let test_dr_push_below_current_min () =
  let q = Dr.create () in
  Dr.push q ~dist:5 ~final:false "far";
  ignore (Dr.pop q);
  (* the internal lower bound advanced to 5; a later cheaper push must
     still be served first (seed batches re-enter at distance 0) *)
  Dr.push q ~dist:7 ~final:false "far2";
  Dr.push q ~dist:0 ~final:false "near";
  check Alcotest.(option (triple string int bool)) "near first" (Some ("near", 0, false)) (Dr.pop q)

let test_dr_sizes () =
  let q = Dr.create () in
  check Alcotest.bool "empty" true (Dr.is_empty q);
  Dr.push q ~dist:0 ~final:false ();
  Dr.push q ~dist:64 ~final:true ();
  (* grows beyond initial bucket capacity *)
  check Alcotest.int "size" 2 (Dr.size q);
  check Alcotest.bool "has_at 0" true (Dr.has_at q 0);
  check Alcotest.bool "has_at 64" true (Dr.has_at q 64);
  check Alcotest.bool "has_at 3" false (Dr.has_at q 3);
  check Alcotest.(option int) "min" (Some 0) (Dr.min_distance q);
  Dr.clear q;
  check Alcotest.bool "cleared" true (Dr.is_empty q)

let test_dr_negative_rejected () =
  let q = Dr.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Dr_queue.push: negative distance") (fun () ->
      Dr.push q ~dist:(-1) ~final:false ())

(* Property: popping yields non-decreasing distances when pushes never go
   below the last popped distance (the engine's invariant: successors cost
   at least their parent). *)
let dr_monotone_pops =
  QCheck2.Test.make ~name:"pops are non-decreasing under monotone pushes" ~count:200
    QCheck2.Gen.(list_size (int_range 1 100) (pair (int_bound 10) bool))
    (fun pushes ->
      let q = Dr.create () in
      (* push everything up-front: a valid special case of the invariant *)
      List.iteri (fun i (d, f) -> Dr.push q ~dist:d ~final:f i) pushes;
      let rec drain last =
        match Dr.pop q with
        | None -> true
        | Some (_, d, _) -> d >= last && drain d
      in
      drain 0)

(* --- Seeder ----------------------------------------------------------- *)

let seeder_graph () =
  let g = Graph.create () in
  let a = Graph.add_node g "a"
  and b = Graph.add_node g "b"
  and c = Graph.add_node g "c"
  and d = Graph.add_node g "d" in
  Graph.add_edge_s g a "p" b;
  Graph.add_edge_s g b "p" c;
  Graph.add_edge_s g c "q" d;
  g

let drain seeder =
  let rec go acc =
    match Seeder.next_batch seeder with [] -> List.rev acc | batch -> go (List.rev_append batch acc)
  in
  go []

let test_seeder_fixed () =
  let s = Seeder.of_list [ (3, 0); (5, 2); (3, 1) ] in
  check Alcotest.bool "not exhausted" false (Seeder.exhausted s);
  check Alcotest.(list (pair int int)) "one batch, deduped" [ (3, 0); (5, 2) ] (Seeder.next_batch s);
  check Alcotest.bool "exhausted" true (Seeder.exhausted s);
  check Alcotest.(list (pair int int)) "empty after" [] (Seeder.next_batch s)

let make_start_nfa ~final_weight labels =
  let nfa = Automaton.Nfa.create () in
  let target = Automaton.Nfa.fresh_state nfa in
  List.iter (fun lbl -> Automaton.Nfa.add_transition nfa 0 lbl 0 target) labels;
  (match final_weight with Some w -> Automaton.Nfa.set_final nfa 0 w | None -> ());
  Automaton.Nfa.set_final nfa target 0;
  nfa

let test_seeder_start_nodes_by_label () =
  let g = seeder_graph () in
  let p = Graphstore.Interner.intern (Graph.interner g) "p" in
  let nfa = make_start_nfa ~final_weight:None [ Automaton.Nfa.Sym (Automaton.Nfa.Fwd, p) ] in
  let s = Seeder.of_initial_state ~graph:g ~nfa ~batch_size:10 () in
  check Alcotest.(list (pair int int)) "sources of p" [ (0, 0); (1, 0) ] (drain s)

let test_seeder_backward_label () =
  let g = seeder_graph () in
  let p = Graphstore.Interner.intern (Graph.interner g) "p" in
  let nfa = make_start_nfa ~final_weight:None [ Automaton.Nfa.Sym (Automaton.Nfa.Bwd, p) ] in
  let s = Seeder.of_initial_state ~graph:g ~nfa ~batch_size:10 () in
  check Alcotest.(list (pair int int)) "targets of p" [ (1, 0); (2, 0) ] (drain s)

let test_seeder_all_nodes_when_final_zero () =
  let g = seeder_graph () in
  let p = Graphstore.Interner.intern (Graph.interner g) "p" in
  let nfa = make_start_nfa ~final_weight:(Some 0) [ Automaton.Nfa.Sym (Automaton.Nfa.Fwd, p) ] in
  let s = Seeder.of_initial_state ~graph:g ~nfa ~batch_size:10 () in
  check Alcotest.int "all nodes" (Graph.n_nodes g) (List.length (drain s))

let test_seeder_start_then_rest_when_final_weighted () =
  let g = seeder_graph () in
  let p = Graphstore.Interner.intern (Graph.interner g) "p" in
  let nfa = make_start_nfa ~final_weight:(Some 2) [ Automaton.Nfa.Sym (Automaton.Nfa.Fwd, p) ] in
  let s = Seeder.of_initial_state ~graph:g ~nfa ~batch_size:10 () in
  let seeds = List.map fst (drain s) in
  check Alcotest.int "all nodes eventually" (Graph.n_nodes g) (List.length seeds);
  (* label-compatible nodes come first *)
  check Alcotest.(list int) "p-sources first" [ 0; 1 ] [ List.nth seeds 0; List.nth seeds 1 ]

let test_seeder_batching () =
  let g = Graph.create () in
  for i = 0 to 24 do
    let n = Graph.add_node g (string_of_int i) in
    let m = Graph.add_node g (string_of_int i ^ "'") in
    Graph.add_edge_s g n "p" m
  done;
  let p = Graphstore.Interner.intern (Graph.interner g) "p" in
  let nfa = make_start_nfa ~final_weight:None [ Automaton.Nfa.Sym (Automaton.Nfa.Fwd, p) ] in
  let s = Seeder.of_initial_state ~graph:g ~nfa ~batch_size:10 () in
  check Alcotest.int "first batch" 10 (List.length (Seeder.next_batch s));
  check Alcotest.int "second batch" 10 (List.length (Seeder.next_batch s));
  check Alcotest.int "last short batch" 5 (List.length (Seeder.next_batch s));
  check Alcotest.(list (pair int int)) "exhausted" [] (Seeder.next_batch s)

let test_seeder_dedup_across_labels () =
  let g = seeder_graph () in
  let interner = Graph.interner g in
  let p = Graphstore.Interner.intern interner "p"
  and q = Graphstore.Interner.intern interner "q" in
  (* node c(2) is a source of q and a target of p; with both transitions it
     must be delivered once *)
  let nfa =
    make_start_nfa ~final_weight:None
      [ Automaton.Nfa.Sym (Automaton.Nfa.Fwd, q); Automaton.Nfa.Sym (Automaton.Nfa.Bwd, p) ]
  in
  let s = Seeder.of_initial_state ~graph:g ~nfa ~batch_size:10 () in
  let seeds = List.map fst (drain s) in
  check Alcotest.(list int) "distinct" (List.sort_uniq compare seeds) (List.sort compare seeds)

(* --- Options ----------------------------------------------------------- *)

let test_phi () =
  check Alcotest.int "exact" 1 (Options.phi Options.default Core.Query.Exact);
  check Alcotest.int "approx uniform" 1 (Options.phi Options.default Core.Query.Approx);
  let costs = { Options.default_costs with Options.ins = 4; del = 6; sub = 5 } in
  check Alcotest.int "approx min" 4
    (Options.phi { Options.default with Options.costs } Core.Query.Approx);
  let costs = { Options.default_costs with Options.beta = 3; gamma = 7 } in
  check Alcotest.int "relax min" 3
    (Options.phi { Options.default with Options.costs } Core.Query.Relax)

(* --- Exec_stats --------------------------------------------------------- *)

let test_stats_merge () =
  let a = Core.Exec_stats.create () and b = Core.Exec_stats.create () in
  a.Core.Exec_stats.pushes <- 5;
  a.Core.Exec_stats.peak_queue <- 10;
  b.Core.Exec_stats.pushes <- 7;
  b.Core.Exec_stats.peak_queue <- 4;
  Core.Exec_stats.merge_into a b;
  check Alcotest.int "pushes add" 12 a.Core.Exec_stats.pushes;
  check Alcotest.int "peak is max" 10 a.Core.Exec_stats.peak_queue;
  Core.Exec_stats.reset a;
  check Alcotest.int "reset" 0 a.Core.Exec_stats.pushes

let () =
  Alcotest.run "structures"
    [
      ( "dr_queue",
        [
          Alcotest.test_case "distance order" `Quick test_dr_fifo_distance_order;
          Alcotest.test_case "final priority" `Quick test_dr_final_priority;
          Alcotest.test_case "lifo buckets" `Quick test_dr_lifo_within_bucket;
          Alcotest.test_case "push below min" `Quick test_dr_push_below_current_min;
          Alcotest.test_case "sizes" `Quick test_dr_sizes;
          Alcotest.test_case "negative distance" `Quick test_dr_negative_rejected;
          QCheck_alcotest.to_alcotest dr_monotone_pops;
        ] );
      ( "seeder",
        [
          Alcotest.test_case "fixed list" `Quick test_seeder_fixed;
          Alcotest.test_case "start nodes by label" `Quick test_seeder_start_nodes_by_label;
          Alcotest.test_case "backward label" `Quick test_seeder_backward_label;
          Alcotest.test_case "all nodes (final weight 0)" `Quick test_seeder_all_nodes_when_final_zero;
          Alcotest.test_case "start then rest (weighted final)" `Quick
            test_seeder_start_then_rest_when_final_weighted;
          Alcotest.test_case "batching" `Quick test_seeder_batching;
          Alcotest.test_case "dedup across labels" `Quick test_seeder_dedup_across_labels;
        ] );
      ("options", [ Alcotest.test_case "phi" `Quick test_phi ]);
      ("exec_stats", [ Alcotest.test_case "merge/reset" `Quick test_stats_merge ]);
    ]
