(* Tests for the RPQ regular-expression AST, parser and printer. *)

module R = Rpq_regex.Regex
module P = Rpq_regex.Parser

let check = Alcotest.check

let regex = Alcotest.testable R.pp R.equal

(* --- smart constructors --------------------------------------------- *)

let test_smart_constructors () =
  check regex "eps . r = r" (R.lbl "a") (R.seq R.eps (R.lbl "a"));
  check regex "r . eps = r" (R.lbl "a") (R.seq (R.lbl "a") R.eps);
  check regex "r | r = r" (R.lbl "a") (R.alt (R.lbl "a") (R.lbl "a"));
  check regex "eps* = eps" R.eps (R.star R.eps);
  check regex "(r*)* = r*" (R.star (R.lbl "a")) (R.star (R.star (R.lbl "a")));
  check regex "(r+)+ = r+" (R.plus (R.lbl "a")) (R.plus (R.plus (R.lbl "a")));
  check regex "(r+)* = r*" (R.star (R.lbl "a")) (R.star (R.plus (R.lbl "a")));
  check regex "seq_list" (R.seq (R.lbl "a") (R.seq (R.lbl "b") (R.lbl "c")))
    (R.seq_list [ R.lbl "a"; R.lbl "b"; R.lbl "c" ]);
  Alcotest.check_raises "alt_list empty" (Invalid_argument "Regex.alt_list: empty") (fun () ->
      ignore (R.alt_list []))

(* --- reverse -------------------------------------------------------- *)

let test_reverse () =
  check regex "label" (R.inv "a") (R.reverse (R.lbl "a"));
  check regex "double reverse" (R.lbl "a") (R.reverse (R.reverse (R.lbl "a")));
  check regex "seq flips order"
    (R.Seq (R.inv "b", R.inv "a"))
    (R.reverse (R.Seq (R.lbl "a", R.lbl "b")));
  check regex "wildcard flips" R.any_bwd (R.reverse R.any)

let reverse_involution =
  QCheck2.Test.make ~name:"reverse is an involution" ~count:200
    (QCheck2.Gen.sized (fun n ->
         let rec gen n =
           let open QCheck2.Gen in
           if n <= 1 then
             oneof
               [ return R.Eps; return (R.Any R.Fwd); return (R.Any R.Bwd);
                 map (fun c -> R.Lbl (R.Fwd, String.make 1 c)) (char_range 'a' 'e');
                 map (fun c -> R.Lbl (R.Bwd, String.make 1 c)) (char_range 'a' 'e');
               ]
           else
             let open QCheck2.Gen in
             oneof
               [ map2 (fun a b -> R.Seq (a, b)) (gen (n / 2)) (gen (n / 2));
                 map2 (fun a b -> R.Alt (a, b)) (gen (n / 2)) (gen (n / 2));
                 map (fun a -> R.Star a) (gen (n / 2));
                 map (fun a -> R.Plus a) (gen (n / 2));
               ]
         in
         gen (min n 20)))
    (fun r -> R.equal r (R.reverse (R.reverse r)))

(* A generator shared by the roundtrip properties below. *)
let gen_regex =
  QCheck2.Gen.sized (fun n ->
      let rec gen n =
        let open QCheck2.Gen in
        if n <= 1 then
          oneof
            [ return R.eps; return R.any; return R.any_bwd;
              map (fun c -> R.lbl (String.make 1 c)) (char_range 'a' 'e');
              map (fun c -> R.inv (String.make 1 c)) (char_range 'a' 'e');
            ]
        else
          oneof
            [ map2 R.seq (gen (n / 2)) (gen (n / 2));
              map2 R.alt (gen (n / 2)) (gen (n / 2));
              map R.star (gen (n / 2));
              map R.plus (gen (n / 2));
            ]
      in
      gen (min n 25))

(* Printing flattens the associativity of [.] and [|] (they print without
   parentheses and reparse right-associated), so the roundtrip invariant is
   the print → parse → print fixpoint, plus structural equality for
   right-associated trees. *)
let print_parse_roundtrip =
  QCheck2.Test.make ~name:"to_string/parse roundtrip" ~count:500
    ~print:(fun r -> R.to_string r)
    gen_regex
    (fun r ->
      let s = R.to_string r in
      let reparsed = P.parse s in
      R.to_string reparsed = s && R.equal reparsed (P.parse (R.to_string reparsed)))

(* --- parser --------------------------------------------------------- *)

let parse = P.parse

let test_parse_atoms () =
  check regex "label" (R.lbl "next") (parse "next");
  check regex "inverse" (R.inv "next") (parse "next-");
  check regex "wildcard" R.any (parse "_");
  check regex "backward wildcard" R.any_bwd (parse "_-");
  check regex "eps" R.eps (parse "<eps>");
  check regex "label with digits/underscore" (R.lbl "wordnet_city2") (parse "wordnet_city2")

let test_parse_precedence () =
  check regex "concat binds tighter than alt"
    (R.Alt (R.Seq (R.lbl "a", R.lbl "b"), R.lbl "c"))
    (parse "a.b|c");
  check regex "star binds tightest"
    (R.Seq (R.lbl "a", R.star (R.lbl "b")))
    (parse "a.b*");
  check regex "parens override"
    (R.star (R.Seq (R.lbl "a", R.lbl "b")))
    (parse "(a.b)*");
  check regex "alternation in parens"
    (R.plus (R.Alt (R.lbl "a", R.lbl "b")))
    (parse "(a|b)+")

let test_parse_inverse_of_group () =
  (* (R)- reverses the whole group *)
  check regex "group inverse" (R.Seq (R.inv "b", R.inv "a")) (parse "(a.b)-");
  check regex "inverse then star" (R.star (R.inv "a")) (parse "a-*")

let test_parse_paper_queries () =
  (* every regex from the paper's Fig. 4 and Fig. 9 parses *)
  List.iter
    (fun s -> ignore (parse s))
    [
      "type-"; "type-.qualif-"; "type-.job-"; "job.type"; "next+"; "prereq+";
      "next+|(prereq+.next)"; "type.prereq+"; "prereq*.next+.prereq"; "type-.job-.next";
      "level-.qualif-.prereq"; "bornIn-.marriedTo.hasChild";
      "hasChild.gradFrom.gradFrom-.hasWonPrize"; "type-.locatedIn-";
      "directed.married.married+.playsFor"; "isConnectedTo.wasBornIn"; "imports.exports-";
      "type-.happenedIn-.participatedIn-"; "type.type-.actedIn";
      "(livesIn-.hasCurrency)|(locatedIn-.gradFrom)";
    ]

let test_parse_whitespace () =
  check regex "spaces ignored" (R.Seq (R.lbl "a", R.lbl "b")) (parse " a . b ")

let test_parse_errors () =
  let fails s =
    match P.parse_result s with
    | Ok _ -> Alcotest.failf "expected %S to fail" s
    | Error _ -> ()
  in
  List.iter fails [ ""; "a."; "a|"; "(a"; "a)"; "a b"; "<eps"; "<x>"; "*"; "a.*b"; "|a" ]

(* Adversarial nesting: the recursive-descent parser builds a stack frame
   per '(' (and per '|' / '.' chain link), so without the depth limit a
   50k-paren input kills the process with Stack_overflow instead of
   returning [Error].  Regression for the resource-safety audit. *)
let test_depth_limit () =
  let deep n = String.concat "" [ String.make n '('; "a"; String.make n ')' ] in
  let fails_typed what s =
    match P.parse_result s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %s to fail with a typed error" what
  in
  fails_typed "50k nested parens" (deep 50_000);
  fails_typed "50k-long alternation chain" (String.concat "|" (List.init 50_000 (fun _ -> "a")));
  fails_typed "50k-long concatenation chain" (String.concat "." (List.init 50_000 (fun _ -> "a")));
  (* well under the limit still parses *)
  (match P.parse_result (deep 100) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "depth 100 should parse: %s" m);
  (* the limit is configurable *)
  match P.parse_result ~max_depth:16 (deep 100) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "max_depth 16 should reject depth 100"

(* --- misc operations ------------------------------------------------ *)

let test_nullable () =
  check Alcotest.bool "eps" true (R.nullable R.eps);
  check Alcotest.bool "label" false (R.nullable (R.lbl "a"));
  check Alcotest.bool "star" true (R.nullable (R.star (R.lbl "a")));
  check Alcotest.bool "plus of label" false (R.nullable (parse "a+"));
  check Alcotest.bool "plus of star" true (R.nullable (R.Plus (R.star (R.lbl "a"))));
  check Alcotest.bool "seq" false (R.nullable (parse "a*.b"));
  check Alcotest.bool "alt" true (R.nullable (parse "a|b*"))

let test_labels () =
  check Alcotest.(list string) "dedup + sort" [ "a"; "b" ] (R.labels (parse "a.b-.a*|b"))

let test_size () =
  check Alcotest.int "size" 5 (R.size (parse "a.b|c"))

let test_top_level_alternatives () =
  check Alcotest.int "three" 3 (List.length (R.top_level_alternatives (parse "a|b|c")));
  check Alcotest.int "one (nested)" 1 (List.length (R.top_level_alternatives (parse "(a|b).c")));
  check Alcotest.int "one (atom)" 1 (List.length (R.top_level_alternatives (parse "a")))

let () =
  Alcotest.run "regex"
    [
      ( "ast",
        [
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "reverse" `Quick test_reverse;
          Alcotest.test_case "nullable" `Quick test_nullable;
          Alcotest.test_case "labels" `Quick test_labels;
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "top-level alternatives" `Quick test_top_level_alternatives;
          QCheck_alcotest.to_alcotest reverse_involution;
        ] );
      ( "parser",
        [
          Alcotest.test_case "atoms" `Quick test_parse_atoms;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "group inverse" `Quick test_parse_inverse_of_group;
          Alcotest.test_case "paper query set" `Quick test_parse_paper_queries;
          Alcotest.test_case "whitespace" `Quick test_parse_whitespace;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "nesting depth limit (50k parens)" `Quick test_depth_limit;
          QCheck_alcotest.to_alcotest print_parse_roundtrip;
        ] );
    ]
