(* Tests for static admission control: the pre-flight cost estimate, the
   vetting rules, and the engine/CLI surface of a rejection. *)

module Graph = Graphstore.Graph
module Q = Core.Query
module R = Rpq_regex.Regex
module Admission = Core.Admission
module Options = Core.Options
module Engine = Core.Engine

let check = Alcotest.check

(* A small diamond graph: 6 nodes, edges labelled p/q. *)
let fixture () =
  let g = Graph.create () in
  let n = Array.init 6 (fun i -> Graph.add_node g (Printf.sprintf "n%d" i)) in
  Graph.add_edge_s g n.(0) "p" n.(1);
  Graph.add_edge_s g n.(0) "q" n.(2);
  Graph.add_edge_s g n.(1) "p" n.(3);
  Graph.add_edge_s g n.(2) "q" n.(3);
  Graph.add_edge_s g n.(3) "p" n.(4);
  Graph.add_edge_s g n.(4) "q" n.(5);
  let k = Ontology.create (Graph.interner g) in
  Ontology.add_subclass k "C0" "C1";
  Graph.freeze g;
  (g, k)

let estimate ?(options = Options.default) q =
  let g, k = fixture () in
  Admission.estimate ~graph:g ~ontology:k ~options q

let vet ~options q =
  let g, k = fixture () in
  Admission.vet ~graph:g ~ontology:k ~options q

(* --- the estimate ----------------------------------------------------- *)

let test_seed_estimates () =
  (* variable subject: every node is a potential seed *)
  let var = estimate (Q.single (Q.Var "X") (R.lbl "p") (Q.Var "Y")) in
  let c = List.hd var.Admission.per_conjunct in
  check Alcotest.int "variable subject seeds |V_G|" 6 c.Admission.seed_est;
  check Alcotest.int "product = states * seeds" (c.Admission.states * 6) c.Admission.product_est;
  (* known constant subject: exactly one seed *)
  let const = estimate (Q.single (Q.Const "n0") (R.lbl "p") (Q.Var "Y")) in
  check Alcotest.int "known constant seeds 1" 1
    (List.hd const.Admission.per_conjunct).Admission.seed_est;
  (* unknown constant: the seed set is empty, and so is the product *)
  let ghost = estimate (Q.single (Q.Const "no-such-node") (R.lbl "p") (Q.Var "Y")) in
  let gc = List.hd ghost.Admission.per_conjunct in
  check Alcotest.int "unknown constant seeds 0" 0 gc.Admission.seed_est;
  check Alcotest.int "empty seed set, empty product" 0 gc.Admission.product_est;
  (* case-2 reversal: a constant OBJECT seeds from the constant too *)
  let rev = estimate (Q.single (Q.Var "X") (R.lbl "p") (Q.Const "n5")) in
  check Alcotest.int "constant object seeds 1 (reversed)" 1
    (List.hd rev.Admission.per_conjunct).Admission.seed_est

let test_expansion_grows_states () =
  let exact = estimate (Q.single (Q.Var "X") (R.lbl "p") (Q.Var "Y")) in
  let approx = estimate (Q.single ~mode:Q.Approx (Q.Var "X") (R.lbl "p") (Q.Var "Y")) in
  let s_of e = (List.hd e.Admission.per_conjunct).Admission.states in
  let t_of e = (List.hd e.Admission.per_conjunct).Admission.transitions in
  check Alcotest.bool "APPROX expansion adds transitions" true (t_of approx > t_of exact);
  check Alcotest.bool "states estimated for both" true (s_of exact > 0 && s_of approx >= s_of exact)

let test_totals_and_arity () =
  let c1 = Q.conjunct (Q.Var "X") (R.lbl "p") (Q.Var "Y") in
  let c2 = Q.conjunct (Q.Var "Y") (R.lbl "q") (Q.Var "Z") in
  let e = estimate (Q.make ~head:[ "X"; "Z" ] [ c1; c2 ]) in
  check Alcotest.int "join arity" 2 e.Admission.join_arity;
  check Alcotest.int "total states sums conjuncts"
    (List.fold_left (fun acc c -> acc + c.Admission.states) 0 e.Admission.per_conjunct)
    e.Admission.total_states;
  check Alcotest.int "total product sums conjuncts"
    (List.fold_left (fun acc c -> acc + c.Admission.product_est) 0 e.Admission.per_conjunct)
    e.Admission.total_product_est

(* --- vetting ---------------------------------------------------------- *)

let test_vet_rules () =
  let q = Q.single ~mode:Q.Approx (Q.Var "X") (R.star (R.lbl "p")) (Q.Var "Y") in
  (* no limits: everything is admitted *)
  let _, r = vet ~options:Options.default q in
  check Alcotest.bool "no limits admit" true (r = None);
  (* per-conjunct state limit: first offender reported with its index *)
  let _, r = vet ~options:{ Options.default with Options.max_states = Some 1 } q in
  (match r with
  | Some { Admission.kind = Admission.Max_states; limit = 1; conjunct = Some 1; actual; _ } ->
    check Alcotest.bool "actual over limit" true (actual > 1)
  | _ -> Alcotest.fail "expected a max-states rejection for conjunct 1");
  (* total product limit *)
  let _, r = vet ~options:{ Options.default with Options.max_product_est = Some 2 } q in
  (match r with
  | Some { Admission.kind = Admission.Max_product_est; limit = 2; conjunct = None; _ } -> ()
  | _ -> Alcotest.fail "expected a max-product-est rejection");
  (* generous limits admit *)
  let _, r =
    vet
      ~options:
        {
          Options.default with
          Options.max_states = Some 1_000_000;
          max_product_est = Some 1_000_000_000;
        }
      q
  in
  check Alcotest.bool "generous limits admit" true (r = None)

(* --- the engine surface ----------------------------------------------- *)

let test_rejected_stream () =
  let g, k = fixture () in
  let q = Q.single ~mode:Q.Approx (Q.Var "X") (R.star (R.lbl "p")) (Q.Var "Y") in
  let options = { Options.default with Options.max_states = Some 1 } in
  let st = Engine.open_query ~graph:g ~ontology:k ~options q in
  check Alcotest.bool "no answers" true (Engine.next st = None);
  (match Engine.status st with
  | Engine.Rejected r ->
    check Alcotest.bool "rejection prints" true (String.length (Admission.rejection_string r) > 0)
  | t -> Alcotest.failf "expected Rejected, got %a" Engine.pp_termination t);
  (match Engine.admission st with
  | Some e -> check Alcotest.bool "estimate exposed" true (e.Admission.total_states > 0)
  | None -> Alcotest.fail "vetted stream must expose its estimate");
  let stats = Engine.stream_stats st in
  check Alcotest.int "no edges scanned" 0 stats.Core.Exec_stats.edges_scanned;
  check Alcotest.int "no pushes" 0 stats.Core.Exec_stats.pushes;
  check Alcotest.int "no seeds" 0 stats.Core.Exec_stats.seeds

let test_admitted_stream_counter () =
  let g, k = fixture () in
  let q = Q.single (Q.Var "X") (R.lbl "p") (Q.Var "Y") in
  let options = { Options.default with Options.max_states = Some 1_000 } in
  let outcome = Engine.run ~graph:g ~ontology:k ~options q in
  check Alcotest.bool "completed" true (outcome.Engine.termination = Engine.Completed);
  check Alcotest.bool "admission_est_states recorded" true
    (outcome.Engine.stats.Core.Exec_stats.admission_est_states > 0);
  (* the same query unvetted reports 0 (the estimate is never computed) *)
  let plain = Engine.run ~graph:g ~ontology:k q in
  check Alcotest.int "unvetted runs don't estimate" 0
    plain.Engine.stats.Core.Exec_stats.admission_est_states

let () =
  Alcotest.run "admission"
    [
      ( "estimate",
        [
          Alcotest.test_case "seed estimates" `Quick test_seed_estimates;
          Alcotest.test_case "APPROX expansion grows the automaton" `Quick
            test_expansion_grows_states;
          Alcotest.test_case "totals and join arity" `Quick test_totals_and_arity;
        ] );
      ("vet", [ Alcotest.test_case "rejection rules" `Quick test_vet_rules ]);
      ( "engine",
        [
          Alcotest.test_case "born-rejected stream" `Quick test_rejected_stream;
          Alcotest.test_case "admitted stream records the estimate" `Quick
            test_admitted_stream_counter;
        ] );
    ]
