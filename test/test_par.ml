(* Determinism of parallel evaluation (lib/core/par.ml): on random frozen
   graphs from [Instance_gen], the parallel answer stream must be
   *element-wise identical* at every domain count.

   The contract under test (DESIGN.md §Parallel evaluation): a parallel
   evaluator emits its answers in the canonical order — globally sorted by
   (distance, x, y) — regardless of how many domains raced to produce them,
   because the ranked merge only releases a distance bucket once every live
   shard has moved provably past it, and sealed buckets are sorted by the
   documented tie-break.  A sequential run emits the same multiset but in
   queue-accident order within a distance level, so the comparison is:

       stream(domains = N)  =  sort_{(dist, x, y)} (stream(domains = 1))

   for every N >= 2 — which transitively also proves any two parallel
   counts produce byte-identical streams, and that the parallel emission
   order is already canonical (no post-hoc sorting on the test side of the
   parallel stream).  Conjuncts the dispatcher cannot shard (constant-
   seeded, non-decomposed) run the literally unchanged sequential path at
   any [domains], so for those the expectation is the sequential stream
   itself, emission order included.

   Coverage: exact / APPROX / RELAX, the distance-aware (levelled, slack
   phi-1) strategy, decomposed alternations (part-sharding instead of
   seed-sharding, with merge-level dedup), case-2 reversal (constant
   object), and witness provenance (per-answer hop costs must sum to the
   distance on every domain count).

   A final non-property group is the reentrancy regression for the
   per-domain failpoint RNG and the mutex-guarded tracer: two engine runs
   in flight on separate domains in one process must each produce exactly
   the answers and scalar stats of a solo run. *)

module Q = Core.Query
module R = Rpq_regex.Regex
module O = Core.Options
open Instance_gen

(* One drained evaluator run: [(dist, x, y)] in emission order, checking
   each witness sums to its distance when provenance is on. *)
let stream ~domains ~provenance options g k conjunct =
  let options = { options with O.domains; provenance } in
  let ev = Core.Evaluator.create ~graph:g ~ontology:k ~options conjunct in
  let rec drain acc =
    match Core.Evaluator.next ev with
    | Some (a : Core.Conjunct.answer) ->
      (match a.witness with
      | Some w ->
        if Core.Witness.cost w <> a.dist then
          QCheck2.Test.fail_reportf "witness cost %d <> dist %d at domains=%d"
            (Core.Witness.cost w) a.dist domains
      | None -> if provenance then QCheck2.Test.fail_report "missing witness");
      drain ((a.dist, a.x, a.y) :: acc)
    | None -> List.rev acc
  in
  drain []

(* Mirrors [Evaluator.create]'s dispatch: only variable/variable conjuncts
   seed-shard, and only decomposed alternations part-shard — anything else
   runs the literally unchanged sequential path at any [domains], so its
   emission order is the sequential one, not the canonical sort. *)
let parallelisable options (c : Q.conjunct) =
  (match (c.Q.subj, c.Q.obj) with Q.Var _, Q.Var _ -> true | _ -> false)
  || (options.O.decompose && List.length (R.top_level_alternatives c.Q.regex) > 1)

let deterministic ?(provenance = false) ?(par_counts = [ 2; 4 ]) options inst =
  let g, k = build inst in
  let conjunct = conjunct_of inst in
  let seq = stream ~domains:1 ~provenance options g k conjunct in
  let expected = if parallelisable options conjunct then List.sort compare seq else seq in
  List.for_all
    (fun n ->
      let par = stream ~domains:n ~provenance options g k conjunct in
      if par <> expected then
        let show l =
          String.concat "; " (List.map (fun (d, x, y) -> Printf.sprintf "(%d,%d,%d)" d x y) l)
        in
        QCheck2.Test.fail_reportf "domains=%d:\n  par: [%s]\n  seq: [%s]" n (show par)
          (show expected)
      else true)
    par_counts

let det_prop ?provenance ?par_counts name ~count ~mode options =
  QCheck2.Test.make ~name ~count (gen_instance ~mode)
    (deterministic ?provenance ?par_counts options)

let exact_prop =
  det_prop "parallel = sequential (exact, domains 2/4/8)" ~count:50 ~mode:Q.Exact
    ~par_counts:[ 2; 4; 8 ] O.default

let approx_prop = det_prop "parallel = sequential (APPROX)" ~count:50 ~mode:Q.Approx O.default
let relax_prop = det_prop "parallel = sequential (RELAX)" ~count:40 ~mode:Q.Relax O.default

let hetero_costs = { O.ins = 2; del = 2; sub = 4; beta = 2; gamma = 3 }

let approx_da_prop =
  det_prop "parallel = sequential (distance-aware APPROX, hetero costs)" ~count:35 ~mode:Q.Approx
    { O.default with O.distance_aware = true; costs = hetero_costs }

let relax_da_prop =
  det_prop "parallel = sequential (distance-aware RELAX, hetero costs)" ~count:25 ~mode:Q.Relax
    { O.default with O.distance_aware = true; costs = hetero_costs }

(* Decomposed alternations exercise the other partition seam: a
   constant-subject conjunct splits its top-level alternatives across the
   pool, so the merge must also dedup (x, y) pairs across shards. *)
let decomposed_prop =
  QCheck2.Test.make ~name:"parallel = sequential (decomposed APPROX alternation)" ~count:40
    (QCheck2.Gen.pair (gen_instance ~mode:Q.Approx) gen_regex)
    (fun (inst, extra) ->
      let inst = { inst with regex = R.Alt (inst.regex, extra) } in
      deterministic { O.default with O.decompose = true; costs = hetero_costs } inst)

(* Case-2 reversal: a constant object flips the conjunct to const-seeded
   traversal over the reversed regex; the parallel path must shard the
   reversed exploration, not the written one. *)
let case2_prop =
  QCheck2.Test.make ~name:"parallel = sequential (case-2 reversal: constant object)" ~count:30
    (QCheck2.Gen.pair (gen_instance ~mode:Q.Approx) QCheck2.Gen.(int_bound 1000))
    (fun (inst, i) ->
      let inst = { inst with subj = `Var; obj = `Node (i mod (inst.n_base + n_classes)) } in
      deterministic O.default inst)

let provenance_prop =
  det_prop "parallel witnesses: hop costs sum to distance" ~provenance:true ~count:30
    ~mode:Q.Approx O.default

(* --- reentrancy regression --------------------------------------------- *)

(* Two engine runs in flight at once — one on the initial domain, one on a
   spawned domain, one of them itself parallel — with failpoints armed
   (probability 0: the armed path and its domain-local PRNG cells are
   exercised without perturbing results) and the tracer enabled.  Each run
   must produce exactly the answers and scalar counters of its solo run:
   before the per-domain failpoint state and the mutex-guarded trace ring,
   concurrent runs corrupted each other through the shared RNG closure and
   the unguarded ring buffer. *)
let solo options g k conjunct =
  let ev = Core.Evaluator.create ~graph:g ~ontology:k ~options conjunct in
  let rec drain acc =
    match Core.Evaluator.next ev with
    | Some (a : Core.Conjunct.answer) -> drain ((a.dist, a.x, a.y) :: acc)
    | None -> List.rev acc
  in
  let answers = drain [] in
  let st = Core.Exec_stats.copy (Core.Evaluator.stats ev) in
  (List.sort compare answers, st.pushes, st.pops, st.edges_scanned, st.answers)

let concurrent_runs () =
  let rand = Random.State.make [| 0x5eed |] in
  let inst_a = QCheck2.Gen.generate1 ~rand (gen_instance ~mode:Q.Approx) in
  let inst_b = QCheck2.Gen.generate1 ~rand (gen_instance ~mode:Q.Relax) in
  let inst_a = { inst_a with subj = `Var; obj = `Fresh } in
  let ga, ka = build inst_a and gb, kb = build inst_b in
  let ca = conjunct_of inst_a and cb = conjunct_of inst_b in
  let opts_a = { O.default with O.domains = 2 } and opts_b = O.default in
  let expect_a = solo opts_a ga ka ca and expect_b = solo opts_b gb kb cb in
  Core.Failpoints.arm ~seed:7 (List.map (fun p -> (p, 0.)) Core.Failpoints.all_points);
  Obs.Trace.enable ~capacity:4096 ();
  Fun.protect
    ~finally:(fun () ->
      Core.Failpoints.disarm ();
      Obs.Trace.disable ();
      Obs.Trace.clear ())
    (fun () ->
      for _round = 1 to 5 do
        let worker = Domain.spawn (fun () -> solo opts_b gb kb cb) in
        let got_a = solo opts_a ga ka ca in
        let got_b = Domain.join worker in
        Alcotest.(check bool) "run A unperturbed by concurrent run B" true (got_a = expect_a);
        Alcotest.(check bool) "run B unperturbed by concurrent run A" true (got_b = expect_b)
      done;
      (* the tracer survived concurrent emission: the ring is coherent *)
      ignore (Obs.Trace.to_json ()))

let () =
  Alcotest.run "par"
    [
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest exact_prop;
          QCheck_alcotest.to_alcotest approx_prop;
          QCheck_alcotest.to_alcotest relax_prop;
          QCheck_alcotest.to_alcotest approx_da_prop;
          QCheck_alcotest.to_alcotest relax_da_prop;
          QCheck_alcotest.to_alcotest decomposed_prop;
          QCheck_alcotest.to_alcotest case2_prop;
          QCheck_alcotest.to_alcotest provenance_prop;
        ] );
      ("reentrancy", [ Alcotest.test_case "two concurrent engine runs" `Quick concurrent_runs ]);
    ]
