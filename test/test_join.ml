(* Tests for the incremental ranked join: binding algebra, join product
   correctness against a brute-force reference, and total-distance ordering. *)

module RJ = Core.Ranked_join

let check = Alcotest.check

(* --- binding algebra -------------------------------------------------- *)

let test_binding_of () =
  check
    Alcotest.(list (pair string int))
    "sorted" [ ("a", 1); ("b", 2) ]
    (RJ.binding_of [ ("b", 2); ("a", 1) ]);
  check
    Alcotest.(list (pair string int))
    "consistent duplicate collapsed" [ ("a", 1) ]
    (RJ.binding_of [ ("a", 1); ("a", 1) ]);
  Alcotest.check_raises "inconsistent"
    (Invalid_argument "Ranked_join.binding_of: ?a bound twice") (fun () ->
      ignore (RJ.binding_of [ ("a", 1); ("a", 2) ]))

let test_compatible_merge () =
  let b1 = RJ.binding_of [ ("x", 1); ("y", 2) ] in
  let b2 = RJ.binding_of [ ("y", 2); ("z", 3) ] in
  let b3 = RJ.binding_of [ ("y", 9) ] in
  check Alcotest.bool "shared var equal" true (RJ.compatible b1 b2);
  check Alcotest.bool "shared var differs" false (RJ.compatible b1 b3);
  check Alcotest.bool "disjoint" true (RJ.compatible b2 (RJ.binding_of [ ("w", 0) ]));
  check
    Alcotest.(list (pair string int))
    "merge" [ ("x", 1); ("y", 2); ("z", 3) ]
    (RJ.merge b1 b2)

(* --- streams ----------------------------------------------------------- *)

(* Test streams carry no witnesses: these tests exercise the binding/distance
   algebra; witness passthrough is pinned by the provenance suite. *)
let stream_of_list l =
  let rest = ref l in
  fun () ->
    match !rest with
    | [] -> None
    | (bind, d) :: tl ->
      rest := tl;
      Some (bind, d, [])

let drain join =
  let rec go acc =
    match RJ.next join with None -> List.rev acc | Some (bind, d, _) -> go ((bind, d) :: acc)
  in
  go []

let b pairs = RJ.binding_of pairs

let test_two_way_join () =
  let left = [ (b [ ("x", 1) ], 0); (b [ ("x", 2) ], 1) ] in
  let right = [ (b [ ("x", 2); ("y", 5) ], 0); (b [ ("x", 1); ("y", 6) ], 2) ] in
  let results = drain (RJ.create [ stream_of_list left; stream_of_list right ]) in
  check Alcotest.int "two results" 2 (List.length results);
  let totals = List.map snd results in
  check Alcotest.(list int) "ordered totals" [ 1; 2 ] totals

let test_empty_stream_kills_join () =
  let left = [ (b [ ("x", 1) ], 0) ] in
  let results = drain (RJ.create [ stream_of_list left; stream_of_list [] ]) in
  check Alcotest.int "no results" 0 (List.length results)

let test_cross_product_when_disjoint () =
  let left = [ (b [ ("x", 1) ], 0); (b [ ("x", 2) ], 3) ] in
  let right = [ (b [ ("y", 1) ], 1); (b [ ("y", 2) ], 2) ] in
  let results = drain (RJ.create [ stream_of_list left; stream_of_list right ]) in
  check Alcotest.int "2x2" 4 (List.length results);
  check Alcotest.(list int) "totals sorted" [ 1; 2; 4; 5 ] (List.map snd results)

let test_three_way_join () =
  let s1 = [ (b [ ("x", 1) ], 0) ] in
  let s2 = [ (b [ ("x", 1); ("y", 2) ], 1); (b [ ("x", 1); ("y", 3) ], 2) ] in
  let s3 = [ (b [ ("y", 3); ("z", 9) ], 0); (b [ ("y", 2); ("z", 8) ], 4) ] in
  let results = drain (RJ.create [ stream_of_list s1; stream_of_list s2; stream_of_list s3 ]) in
  check Alcotest.int "two chains" 2 (List.length results);
  check Alcotest.(list int) "totals" [ 2; 5 ] (List.map snd results)

let test_duplicate_combination_emitted_once () =
  (* two left answers merge into the same binding; keep the cheapest *)
  let left = [ (b [ ("x", 1) ], 0); (b [ ("x", 1) ], 2) ] in
  let right = [ (b [ ("x", 1); ("y", 5) ], 0) ] in
  let results = drain (RJ.create [ stream_of_list left; stream_of_list right ]) in
  check Alcotest.int "once" 1 (List.length results);
  check Alcotest.int "at the cheapest total" 0 (snd (List.hd results))

(* Reference: brute-force n-way join, sorted by total. *)
let brute_force streams =
  let rec product = function
    | [] -> [ (RJ.binding_of [], 0) ]
    | s :: rest ->
      let tails = product rest in
      List.concat_map
        (fun (bind, dist) ->
          List.filter_map
            (fun (tb, td) ->
              if RJ.compatible bind tb then Some (RJ.merge bind tb, dist + td) else None)
            tails)
        s
  in
  (* keep the cheapest total per binding, like the incremental join *)
  let best = Hashtbl.create 16 in
  List.iter
    (fun (bind, total) ->
      match Hashtbl.find_opt best bind with
      | Some t when t <= total -> ()
      | _ -> Hashtbl.replace best bind total)
    (product streams);
  Hashtbl.fold (fun bind total acc -> (bind, total) :: acc) best []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let gen_stream =
  QCheck2.Gen.(
    map
      (fun l ->
        (* sort by distance: streams must be non-decreasing *)
        List.sort (fun (_, a) (_, b) -> compare a b)
          (List.map (fun (x, y, d) -> (RJ.binding_of [ ("x", x); ("y", y) ], d)) l))
      (list_size (int_bound 12) (triple (int_bound 3) (int_bound 3) (int_bound 6))))

let join_matches_brute_force =
  QCheck2.Test.make ~name:"incremental join = brute force (sets and totals)" ~count:200
    QCheck2.Gen.(pair gen_stream gen_stream)
    (fun (s1, s2) ->
      let incremental = drain (RJ.create [ stream_of_list s1; stream_of_list s2 ]) in
      let reference = brute_force [ s1; s2 ] in
      let norm l = List.sort compare l in
      norm incremental = norm reference
      && (* and the emission order is non-decreasing in total *)
      fst
        (List.fold_left
           (fun (ok, last) (_, t) -> (ok && t >= last, t))
           (true, 0) incremental))

let () =
  Alcotest.run "ranked_join"
    [
      ( "bindings",
        [
          Alcotest.test_case "binding_of" `Quick test_binding_of;
          Alcotest.test_case "compatible/merge" `Quick test_compatible_merge;
        ] );
      ( "join",
        [
          Alcotest.test_case "two-way" `Quick test_two_way_join;
          Alcotest.test_case "empty input" `Quick test_empty_stream_kills_join;
          Alcotest.test_case "cross product" `Quick test_cross_product_when_disjoint;
          Alcotest.test_case "three-way" `Quick test_three_way_join;
          Alcotest.test_case "duplicate combination" `Quick test_duplicate_combination_emitted_once;
          QCheck_alcotest.to_alcotest join_matches_brute_force;
        ] );
    ]
