(* Quickstart: build a tiny graph + ontology in code, then ask exact,
   APPROX and RELAX queries through the public API.

     dune exec examples/quickstart.exe
*)

module Graph = Graphstore.Graph

let () =
  (* A little academic world: people, universities, cities. *)
  let g = Graph.create () in
  let node = Graph.add_node g in
  let ada = node "Ada"
  and grace = node "Grace"
  and alan = node "Alan"
  and cambridge = node "Cambridge University"
  and harvard = node "Harvard University"
  and london = node "London"
  and boston = node "Boston"
  and uk = node "UK"
  and usa = node "USA"
  and university = node "University" in
  Graph.add_edge_s g ada "studiedAt" cambridge;
  Graph.add_edge_s g alan "studiedAt" cambridge;
  Graph.add_edge_s g grace "studiedAt" harvard;
  Graph.add_edge_s g ada "mentored" grace;
  Graph.add_edge_s g cambridge "locatedIn" london;
  Graph.add_edge_s g harvard "locatedIn" boston;
  Graph.add_edge_s g london "locatedIn" uk;
  Graph.add_edge_s g boston "locatedIn" usa;
  Graph.add_edge_s g cambridge "type" university;
  Graph.add_edge_s g harvard "type" university;

  (* The ontology: studiedAt and worksAt are kinds of affiliation. *)
  let k = Ontology.create (Graph.interner g) in
  Ontology.add_subproperty k "studiedAt" "affiliatedWith";
  Ontology.add_subproperty k "worksAt" "affiliatedWith";
  Graph.add_edge_s g alan "worksAt" harvard;

  (* Loading is done: freeze the store into its CSR index so the queries
     below traverse packed adjacency ranges. *)
  Graph.freeze g;

  let show title query =
    Format.printf "@.== %s@.   %s@." title query;
    match Core.Engine.run_string ~graph:g ~ontology:k ~limit:10 query with
    | Ok outcome ->
      List.iter (fun a -> Format.printf "   %a@." Core.Engine.pp_answer a) outcome.Core.Engine.answers;
      if outcome.Core.Engine.answers = [] then Format.printf "   (no answers)@."
    | Error msg -> Format.printf "   error: %s@." msg
  in

  (* 1. An exact regular path query: who studied in the UK?  The path
     climbs the locatedIn chain with a star. *)
  show "Exact: people who studied somewhere in the UK"
    "(?P) <- (?P, studiedAt.locatedIn*.locatedIn, UK)";

  (* 2. The same idea with a typo'd/misdirected label: no exact answers,
     but APPROX repairs it at edit distance 1. *)
  show "Exact, but with the wrong last label (returns nothing)"
    "(?P) <- (UK, locatedIn-.locatedIn-.studiedAt, ?P)";
  show "APPROX repairs the direction at distance 1"
    "(?P) <- APPROX (UK, locatedIn-.locatedIn-.studiedAt, ?P)";

  (* 3. RELAX climbs the property hierarchy: affiliatedWith matches both
     studiedAt and worksAt edges, at relaxation distance 1. *)
  show "Exact: who is affiliatedWith Harvard? (no such edges)"
    "(?P) <- (?P, affiliatedWith, Harvard University)";
  show "RELAX: sub-properties of affiliatedWith match"
    "(?P) <- RELAX (?P, studiedAt, Harvard University)";

  (* 4. A conjunctive query with a ranked join: mentors and where their
     students studied. *)
  show "Join: mentor and the university of their student"
    "(?M, ?U) <- (?M, mentored, ?S), (?S, studiedAt, ?U)"
