(* Driving the engine through its streaming API: incremental batches,
   execution statistics, the distance-aware and decomposition
   optimisations, and tuple budgets.

     dune exec examples/flexible_search.exe
*)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, 1000. *. (Unix.gettimeofday () -. t0))

let () =
  let graph, ontology = Datagen.Yago_sim.generate () in

  (* 1. Incremental retrieval: open a query stream and pull answers in
     batches of 10, as the paper's evaluation protocol does (batch 1 =
     answers 1-10, batch 2 = 11-20, ...). *)
  let query =
    Core.Query_parser.parse "(?X) <- APPROX (UK, (livesIn-.hasCurrency)|(locatedIn-.gradFrom), ?X)"
  in
  let stream = Core.Engine.open_query ~graph ~ontology query in
  Format.printf "== Incremental batches (10 answers each)@.";
  for batch = 1 to 3 do
    let answers =
      List.filter_map (fun _ -> Core.Engine.next stream) (List.init 10 (fun i -> i))
    in
    Format.printf "batch %d:" batch;
    List.iter
      (fun (a : Core.Engine.answer) ->
        Format.printf " %s@@%d" (snd (List.hd a.Core.Engine.bindings)) a.Core.Engine.distance)
      answers;
    Format.printf "@."
  done;
  Format.printf "counters after 3 batches: %a@.@." Core.Exec_stats.pp
    (Core.Engine.stream_stats stream);

  (* 2. The same query with and without the two §4.3 optimisations. *)
  let run options =
    time (fun () ->
        match
          Core.Engine.run ~graph ~ontology ~options ~limit:100 query
        with
        | outcome -> List.length outcome.Core.Engine.answers)
  in
  let n0, t0 = run Core.Options.default in
  let n1, t1 = run { Core.Options.default with Core.Options.distance_aware = true } in
  let n2, t2 = run { Core.Options.default with Core.Options.decompose = true } in
  Format.printf "== Optimisations on the top-100 retrieval@.";
  Format.printf "plain            : %3d answers in %6.2f ms@." n0 t0;
  Format.printf "distance-aware   : %3d answers in %6.2f ms (%.1fx)@." n1 t1 (t0 /. t1);
  Format.printf "decomposed       : %3d answers in %6.2f ms (%.1fx)@.@." n2 t2 (t0 /. t2);

  (* 3. Tuple budgets: the wide-open APPROX query the paper could not
     finish in 6 GB; we cap it deterministically instead. *)
  let wide = Core.Query_parser.parse "(?X, ?Y) <- APPROX (?X, isConnectedTo.wasBornIn, ?Y)" in
  let options = { Core.Options.default with Core.Options.max_tuples = Some 400_000 } in
  let outcome = Core.Engine.run ~graph ~ontology ~options ~limit:100 wide in
  Format.printf "== Budgeted wide-open APPROX query@.";
  Format.printf "%d answers before the cut: %a (the paper's '?')@."
    (List.length outcome.Core.Engine.answers)
    Core.Engine.pp_termination outcome.Core.Engine.termination;

  (* 3b. Deadlines work the same way: install a clock, set timeout_ns, and
     the stream stops with a [Deadline] termination instead of raising. *)
  Core.Governor.now_ns := (fun () -> int_of_float (1e9 *. Unix.gettimeofday ()));
  let options = { Core.Options.default with Core.Options.timeout_ns = Some 20_000_000 } in
  let outcome = Core.Engine.run ~graph ~ontology ~options ~limit:max_int wide in
  Format.printf "20 ms deadline: %d answers, %a@."
    (List.length outcome.Core.Engine.answers)
    Core.Engine.pp_termination outcome.Core.Engine.termination;

  (* 4. Costs are configurable: make substitutions cheap and deletions
     expensive, and the ranking changes. *)
  let costs = { Core.Options.default_costs with Core.Options.sub = 1; del = 5; ins = 5 } in
  let options = { Core.Options.default with Core.Options.costs } in
  let outcome =
    Core.Engine.run ~graph ~ontology ~options ~limit:5
      (Core.Query_parser.parse "(?X) <- APPROX (wordnet_ziggurat, type-.locatedIn-, ?X)")
  in
  Format.printf "@.== Custom edit costs (sub=1, del=ins=5)@.";
  List.iter (fun a -> Format.printf "   %a@." Core.Engine.pp_answer a) outcome.Core.Engine.answers
