(* The experiment harness: regenerates every table and figure of the paper's
   performance study (§4) on the synthetic L4All and YAGO-shaped workloads,
   plus Bechamel micro-benchmarks (one per table/figure).

     dune exec bench/main.exe                        # everything
     dune exec bench/main.exe -- --sections fig5,fig6 --scales L1,L2 --runs 3

   Timing protocol (as in §4.1): each query is run [runs]+1 times, the first
   run is discarded as cache warm-up, and the remainder are averaged.  Exact
   queries run to completion; APPROX/RELAX queries retrieve the top 100
   answers in ten batches of ten, and the reported time is the mean batch
   time.  YAGO APPROX queries run under a tuple budget standing in for the
   paper's 6 GB memory limit; exhausting it prints '?' as in Fig. 10. *)

module L4 = Datagen.L4all
module Yago = Datagen.Yago_sim
module Engine = Core.Engine
module Options = Core.Options
module Graph = Graphstore.Graph

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

let all_sections =
  [ "fig2"; "fig3"; "fig5"; "fig6"; "fig7"; "fig8"; "yago-stats"; "fig10"; "fig11"; "opt1"; "opt2"; "abl"; "abl-sat"; "par"; "flight"; "micro"; "smoke" ]

let sections = ref all_sections
let scales = ref L4.all_scales
let runs = ref 3
let yago_budget = ref 400_000
let yago_scale = ref 0.02
let json_mode = ref false

let parse_args () =
  let set_sections s = sections := String.split_on_char ',' s in
  let set_scales s =
    scales :=
      List.map
        (fun name ->
          match List.find_opt (fun sc -> L4.scale_name sc = name) L4.all_scales with
          | Some sc -> sc
          | None -> failwith (Printf.sprintf "unknown scale %s" name))
        (String.split_on_char ',' s)
  in
  let spec =
    [
      ("--sections", Arg.String set_sections, "  comma-separated sections (default: all)");
      ("--scales", Arg.String set_scales, "  comma-separated L4All scales (default: L1,L2,L3,L4)");
      ("--runs", Arg.Set_int runs, "  timed runs per query after warm-up (default: 3)");
      ("--yago-budget", Arg.Set_int yago_budget, "  tuple budget for YAGO APPROX queries");
      ("--yago-scale", Arg.Set_float yago_scale, "  YAGO generator scale factor (default: 0.02)");
      ( "--json",
        Arg.Set json_mode,
        "  additionally write one machine-readable BENCH_<section>.json per query-measuring \
         section" );
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "omega benchmark harness"

let enabled name = List.mem name !sections

(* ------------------------------------------------------------------ *)
(* Workload caches                                                     *)
(* ------------------------------------------------------------------ *)

let l4_cache : (L4.scale, Graph.t * Ontology.t) Hashtbl.t = Hashtbl.create 4

let l4_graph scale =
  match Hashtbl.find_opt l4_cache scale with
  | Some gk -> gk
  | None ->
    let t0 = Unix.gettimeofday () in
    let gk = L4.generate_scale scale in
    Printf.printf "[gen] L4All %s: %d nodes, %d edges (%.2fs)\n%!" (L4.scale_name scale)
      (Graph.n_nodes (fst gk)) (Graph.n_edges (fst gk))
      (Unix.gettimeofday () -. t0);
    Hashtbl.add l4_cache scale gk;
    gk

let yago_cache = ref None

let yago_graph () =
  match !yago_cache with
  | Some gk -> gk
  | None ->
    let t0 = Unix.gettimeofday () in
    let params = { Yago.default_params with Yago.scale = !yago_scale } in
    let gk = Yago.generate ~params () in
    Printf.printf "[gen] YAGO-sim (scale %.3f): %d nodes, %d edges (%.2fs)\n%!" !yago_scale
      (Graph.n_nodes (fst gk)) (Graph.n_edges (fst gk))
      (Unix.gettimeofday () -. t0);
    yago_cache := Some gk;
    gk

(* ------------------------------------------------------------------ *)
(* Measurement helpers                                                 *)
(* ------------------------------------------------------------------ *)

let ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, 1000. *. (Unix.gettimeofday () -. t0))

let mean = function [] -> 0. | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

type measured = {
  time_ms : float; (* protocol time, averaged over post-warm-up runs *)
  times_ms : float list; (* the individual post-warm-up protocol times *)
  count : int;
  tuples : int; (* D_R pushes of the counting run — the memory proxy *)
  mem_bytes_peak : int; (* Mem cost-model high-water mark of the counting run *)
  histogram : (int * int) list; (* distance -> #answers *)
  aborted : bool; (* tuple budget tripped: the paper's '?' (out-of-memory) cells *)
  termination : Engine.termination; (* full reason, per run (budget/deadline/fault/...) *)
  gc : (string * int) list; (* per-query GC deltas of the counting run (words, collections) *)
}

(* The GC-delta counters of [Exec_stats] as a labelled list, in manifest
   order; the same four keys the audit log's "gc" object carries. *)
let gc_of (st : Core.Exec_stats.t) =
  [
    ("minor_words", st.Core.Exec_stats.gc_minor_words);
    ("major_words", st.Core.Exec_stats.gc_major_words);
    ("minor_collections", st.Core.Exec_stats.gc_minor_collections);
    ("major_collections", st.Core.Exec_stats.gc_major_collections);
  ]

let aborted_of = function
  | Engine.Exhausted { reason = Core.Governor.Tuple_budget; _ } -> true
  | Engine.Completed | Engine.Exhausted _ | Engine.Rejected _ -> false

(* table cell marker: '?' = tuple budget (as in Fig. 10), 'T' = deadline,
   'M' = memory budget, 'F' = injected fault, 'R' = rejected by admission
   control; completion and answer-limit print normally *)
let marker_of = function
  | Engine.Completed | Engine.Exhausted { reason = Core.Governor.Answer_limit; _ } -> None
  | Engine.Exhausted { reason = Core.Governor.Tuple_budget; _ } -> Some "?"
  | Engine.Exhausted { reason = Core.Governor.Deadline; _ } -> Some "T"
  | Engine.Exhausted { reason = Core.Governor.Memory_budget; _ } -> Some "M"
  | Engine.Exhausted { reason = Core.Governor.Fault _; _ } -> Some "F"
  | Engine.Rejected _ -> Some "R"

let histogram_of answers =
  let h = Hashtbl.create 8 in
  List.iter
    (fun (a : Engine.answer) ->
      Hashtbl.replace h a.Engine.distance
        (1 + Option.value ~default:0 (Hashtbl.find_opt h a.Engine.distance)))
    answers;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) h [] |> List.sort compare

let pp_histogram h =
  String.concat " " (List.map (fun (d, c) -> Printf.sprintf "%d:(%d)" d c) h)

let mode_name = function
  | Core.Query.Exact -> "exact"
  | Core.Query.Approx -> "approx"
  | Core.Query.Relax -> "relax"

let termination_string = function
  | Engine.Completed -> "completed"
  | Engine.Exhausted { reason; _ } -> Core.Governor.reason_string reason
  | Engine.Rejected _ -> "rejected"

(* One row of the BENCH_<section>.json results array (see
   bench/bench_schema.json, schema_version 2). *)
let json_row ~dataset ~scale ~query ~mode (m : measured) =
  let ns_of t = int_of_float (t *. 1e6) in
  let times = match m.times_ms with [] -> [ m.time_ms ] | l -> l in
  Obs.Json.Obj
    [
      ("dataset", Obs.Json.String dataset);
      ("scale", Obs.Json.String scale);
      ("query", Obs.Json.String query);
      ("mode", Obs.Json.String (mode_name mode));
      ("mean_ns", Obs.Json.Int (ns_of m.time_ms));
      ("min_ns", Obs.Json.Int (ns_of (List.fold_left min infinity times)));
      ("max_ns", Obs.Json.Int (ns_of (List.fold_left max neg_infinity times)));
      ("answers", Obs.Json.Int m.count);
      ("tuples", Obs.Json.Int m.tuples);
      ("mem_bytes_peak", Obs.Json.Int m.mem_bytes_peak);
      ("gc", Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Int v)) m.gc));
      ("termination", Obs.Json.String (termination_string m.termination));
      ( "marker",
        match marker_of m.termination with
        | Some mark -> Obs.Json.String mark
        | None -> Obs.Json.Null );
    ]

let write_json ?(extra = []) ?path ~section rows =
  if !json_mode then begin
    let doc =
      Obs.Json.Obj
        ([
           ("schema_version", Obs.Json.Int 2);
           ("section", Obs.Json.String section);
           ("runs", Obs.Json.Int !runs);
         ]
        @ extra
        @ [ ("results", Obs.Json.List rows) ])
    in
    let path = match path with Some p -> p | None -> Printf.sprintf "BENCH_%s.json" section in
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Obs.Json.to_channel oc doc);
    Printf.printf "[json] wrote %s (%d result(s))\n%!" path (List.length rows)
  end

(* Exact protocol: run to completion, [!runs]+1 times, discard the first. *)
let measure_exact (g, k) qtext =
  let once () =
    match Engine.run_string ~graph:g ~ontology:k ~limit:max_int qtext with
    | Ok o -> o
    | Error msg -> failwith msg
  in
  let outcome, _ = ms once in
  let times = List.init !runs (fun _ -> snd (ms once)) in
  {
    time_ms = mean times;
    times_ms = times;
    count = List.length outcome.Engine.answers;
    tuples = outcome.Engine.stats.Core.Exec_stats.pushes;
    mem_bytes_peak = outcome.Engine.stats.Core.Exec_stats.mem_bytes_peak;
    histogram = histogram_of outcome.Engine.answers;
    aborted = outcome.Engine.aborted;
    termination = outcome.Engine.termination;
    gc = gc_of outcome.Engine.stats;
  }

(* APPROX/RELAX protocol: initialisation, then batches 1..10 of 10 answers;
   report the mean batch time (averaged across runs), the total answers and
   the distance histogram. *)
let measure_flex (g, k) ~options qtext =
  let query =
    match Core.Query_parser.parse_result qtext with Ok q -> q | Error m -> failwith m
  in
  let once () =
    let stream = Engine.open_query ~graph:g ~ontology:k ~options query in
    let answers = ref [] in
    let batch_times = ref [] in
    (* a tripped stream just yields [None]: the batch loop runs to its end
       and [Engine.status] reports why the answers stopped *)
    for _batch = 1 to 10 do
      let (), t =
        ms (fun () ->
            for _ = 1 to 10 do
              match Engine.next stream with
              | Some a -> answers := a :: !answers
              | None -> ()
            done)
      in
      batch_times := t :: !batch_times
    done;
    let st = Engine.stream_stats stream in
    let pushes = st.Core.Exec_stats.pushes in
    let mem_peak = st.Core.Exec_stats.mem_bytes_peak in
    let status = Engine.status stream in
    (* the stream is abandoned after 10 batches: join any parallel domain
       pool it still holds *)
    Engine.close stream;
    (List.rev !answers, mean !batch_times, status, pushes, mem_peak, gc_of st)
  in
  let answers, _, termination, tuples, mem_bytes_peak, gc = once () in
  let batch_means =
    List.init !runs (fun _ ->
        let _, t, _, _, _, _ = once () in
        t)
  in
  {
    time_ms = mean batch_means;
    times_ms = batch_means;
    count = List.length answers;
    tuples;
    mem_bytes_peak;
    histogram = histogram_of answers;
    aborted = aborted_of termination;
    termination;
    gc;
  }

let yago_options (mode : Core.Query.mode) =
  match mode with
  | Core.Query.Approx -> { Options.default with Options.max_tuples = Some !yago_budget }
  | Core.Query.Exact | Core.Query.Relax -> Options.default

let header title = Printf.printf "\n================ %s ================\n%!" title

(* ------------------------------------------------------------------ *)
(* FIG2: class hierarchy characteristics                               *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  header "[FIG2] L4All class hierarchies (paper Fig. 2)";
  let _, k = l4_graph (List.hd !scales) in
  let interner = Ontology.interner k in
  Printf.printf "(paper: Episode 2/2.67, Subject 2/8, Occupation 4/4.08, EQ Level 2/3.89, Sector 1/21)\n";
  Printf.printf "%-36s %6s %12s\n" "Class hierarchy" "Depth" "Avg fan-out";
  List.iter
    (fun root ->
      let s = Ontology.class_hierarchy_stats k root in
      Printf.printf "%-36s %6d %12.2f\n"
        (Graphstore.Interner.name interner root)
        s.Ontology.depth s.Ontology.avg_fanout)
    (Ontology.class_roots k)

(* ------------------------------------------------------------------ *)
(* FIG3: L4All graph sizes                                             *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header "[FIG3] L4All data graph sizes (paper Fig. 3)";
  Printf.printf
    "(paper: L1 2,691/19,856; L2 15,188/118,088; L3 68,544/558,972; L4 240,519/1,861,959)\n";
  Printf.printf "%-6s %12s %12s\n" "Scale" "Nodes" "Edges";
  List.iter
    (fun scale ->
      let g, _ = l4_graph scale in
      Printf.printf "%-6s %12d %12d\n" (L4.scale_name scale) (Graph.n_nodes g) (Graph.n_edges g))
    !scales

(* ------------------------------------------------------------------ *)
(* FIG5-8: L4All answer counts and execution times                     *)
(* ------------------------------------------------------------------ *)

(* One sweep computes everything FIG5-8 need; cache it. *)
let l4_results : (L4.scale * int * Core.Query.mode, measured) Hashtbl.t = Hashtbl.create 64

let l4_measure scale id mode =
  match Hashtbl.find_opt l4_results (scale, id, mode) with
  | Some m -> m
  | None ->
    let gk = l4_graph scale in
    let qtext = L4.query_text id mode in
    let m =
      match mode with
      | Core.Query.Exact -> measure_exact gk qtext
      | Core.Query.Approx | Core.Query.Relax -> measure_flex gk ~options:Options.default qtext
    in
    Hashtbl.add l4_results (scale, id, mode) m;
    m

let fig5 () =
  header "[FIG5] L4All answers per query / graph (paper Fig. 5)";
  Printf.printf "counts of answers; 'd:(n)' = n answers at distance d\n";
  List.iter
    (fun scale ->
      Printf.printf "--- %s ---\n%!" (L4.scale_name scale);
      Printf.printf "%-4s %10s   %8s %-28s %8s %-28s\n" "Q" "Exact" "APPROX" "(top 100)" "RELAX"
        "(top 100)";
      List.iter
        (fun id ->
          let e = l4_measure scale id Core.Query.Exact in
          let a = l4_measure scale id Core.Query.Approx in
          let r = l4_measure scale id Core.Query.Relax in
          Printf.printf "Q%-3d %10d   %8d %-28s %8d %-28s\n%!" id e.count a.count
            (pp_histogram a.histogram) r.count (pp_histogram r.histogram))
        L4.stress_queries)
    !scales;
  write_json ~section:"fig5"
    (List.concat_map
       (fun scale ->
         List.concat_map
           (fun id ->
             List.map
               (fun mode ->
                 json_row ~dataset:"l4all" ~scale:(L4.scale_name scale)
                   ~query:(Printf.sprintf "Q%d" id) ~mode (l4_measure scale id mode))
               [ Core.Query.Exact; Core.Query.Approx; Core.Query.Relax ])
           L4.stress_queries)
       !scales)

let time_table ~section title note mode =
  header title;
  Printf.printf "%s\n" note;
  Printf.printf "%-5s" "Q";
  List.iter (fun s -> Printf.printf " %10s" (L4.scale_name s)) !scales;
  Printf.printf "   (ms)\n";
  List.iter
    (fun id ->
      Printf.printf "Q%-4d" id;
      List.iter
        (fun scale ->
          let m = l4_measure scale id mode in
          match marker_of m.termination with
          | Some mark -> Printf.printf " %10s" mark
          | None -> Printf.printf " %10.2f" m.time_ms)
        !scales;
      Printf.printf "\n%!")
    L4.stress_queries;
  write_json ~section
    (List.concat_map
       (fun id ->
         List.map
           (fun scale ->
             json_row ~dataset:"l4all" ~scale:(L4.scale_name scale)
               ~query:(Printf.sprintf "Q%d" id) ~mode (l4_measure scale id mode))
           !scales)
       L4.stress_queries)

let fig6 () =
  time_table ~section:"fig6" "[FIG6] L4All exact execution times (paper Fig. 6)"
    "run to completion; average over post-warm-up runs" Core.Query.Exact

let fig7 () =
  time_table ~section:"fig7" "[FIG7] L4All APPROX execution times (paper Fig. 7)"
    "mean batch time over 10 batches of 10 answers" Core.Query.Approx

let fig8 () =
  time_table ~section:"fig8" "[FIG8] L4All RELAX execution times (paper Fig. 8)"
    "mean batch time over 10 batches of 10 answers" Core.Query.Relax

(* ------------------------------------------------------------------ *)
(* YAGO                                                                *)
(* ------------------------------------------------------------------ *)

let yago_stats () =
  header "[YAGO-STATS] YAGO-shaped graph characteristics (paper §4.2)";
  let g, k = yago_graph () in
  let interner = Ontology.interner k in
  Format.printf "graph: %a@." Graph.pp_stats (Graph.stats g);
  List.iter
    (fun root ->
      let s = Ontology.class_hierarchy_stats k root in
      Printf.printf
        "taxonomy %-18s depth=%d members=%d avg-fanout=%.2f (paper: depth 2, fan-out 933.43 at full scale)\n"
        (Graphstore.Interner.name interner root)
        s.Ontology.depth s.Ontology.members s.Ontology.avg_fanout)
    (Ontology.class_roots k);
  Printf.printf "%d edge labels incl. type (paper: 38 properties)\n" (List.length (Graph.labels g));
  List.iter
    (fun root ->
      let s = Ontology.property_hierarchy_stats k root in
      Printf.printf "property hierarchy %-26s sub-properties=%d (paper: 6 and 2)\n"
        (Graphstore.Interner.name interner root)
        (s.Ontology.members - 1))
    (Ontology.property_roots k)

let yago_results : (int * Core.Query.mode, measured) Hashtbl.t = Hashtbl.create 16

let yago_measure id mode =
  match Hashtbl.find_opt yago_results (id, mode) with
  | Some m -> m
  | None ->
    let gk = yago_graph () in
    let qtext = Yago.query_text id mode in
    let m =
      match mode with
      | Core.Query.Exact -> measure_exact gk qtext
      | Core.Query.Approx | Core.Query.Relax -> measure_flex gk ~options:(yago_options mode) qtext
    in
    Hashtbl.add yago_results (id, mode) m;
    m

let fig10 () =
  header "[FIG10] YAGO answer counts (paper Fig. 10)";
  Printf.printf
    "'?' = aborted on tuple budget (%d tuples), the paper's out-of-memory case ('T' deadline, 'F' fault)\n"
    !yago_budget;
  Printf.printf "%-4s %10s   %8s %-28s %8s %-28s\n" "Q" "Exact" "APPROX" "(top 100)" "RELAX"
    "(top 100)";
  List.iter
    (fun id ->
      let e = yago_measure id Core.Query.Exact in
      let a = yago_measure id Core.Query.Approx in
      let r = yago_measure id Core.Query.Relax in
      let cell (m : measured) =
        match marker_of m.termination with Some mark -> mark | None -> string_of_int m.count
      in
      Printf.printf "Q%-3d %10s   %8s %-28s %8s %-28s\n%!" id (cell e) (cell a)
        (pp_histogram a.histogram) (cell r) (pp_histogram r.histogram))
    Yago.stress_queries;
  write_json ~section:"fig10"
    (List.concat_map
       (fun id ->
         List.map
           (fun mode ->
             json_row ~dataset:"yago" ~scale:(string_of_float !yago_scale)
               ~query:(Printf.sprintf "Q%d" id) ~mode (yago_measure id mode))
           [ Core.Query.Exact; Core.Query.Approx; Core.Query.Relax ])
       Yago.stress_queries)

let fig11 () =
  header "[FIG11] YAGO execution times (paper Fig. 11)";
  Printf.printf "%-4s %12s %12s %12s  (ms; '?' = budget abort, 'T' deadline, 'F' fault)\n" "Q"
    "Exact" "APPROX" "RELAX";
  List.iter
    (fun id ->
      let cell (m : measured) =
        match marker_of m.termination with
        | Some mark -> Printf.sprintf "%12s" mark
        | None -> Printf.sprintf "%12.2f" m.time_ms
      in
      Printf.printf "Q%-3d %s %s %s\n%!" id
        (cell (yago_measure id Core.Query.Exact))
        (cell (yago_measure id Core.Query.Approx))
        (cell (yago_measure id Core.Query.Relax)))
    Yago.stress_queries;
  write_json ~section:"fig11"
    (List.concat_map
       (fun id ->
         List.map
           (fun mode ->
             json_row ~dataset:"yago" ~scale:(string_of_float !yago_scale)
               ~query:(Printf.sprintf "Q%d" id) ~mode (yago_measure id mode))
           [ Core.Query.Exact; Core.Query.Approx; Core.Query.Relax ])
       Yago.stress_queries)

(* ------------------------------------------------------------------ *)
(* OPT1 / OPT2: the §4.3 optimisations                                 *)
(* ------------------------------------------------------------------ *)

let median l =
  let sorted = List.sort compare l in
  List.nth sorted (List.length sorted / 2)

let top100_time gk ~options qtext =
  let once () =
    match Engine.run_string ~graph:(fst gk) ~ontology:(snd gk) ~options ~limit:100 qtext with
    | Ok o -> List.length o.Engine.answers
    | Error m -> failwith m
  in
  let n = once () in
  let times = List.init (max 3 !runs) (fun _ -> snd (ms once)) in
  (n, median times)

let opt1 () =
  header "[OPT1] Distance-aware retrieval (paper §4.3: L4All Q3,Q9 3-4x; YAGO Q3 2x, Q2 2560->0.6ms)";
  let l4_scale = List.nth !scales (min 2 (List.length !scales - 1)) in
  let l4 = l4_graph l4_scale in
  let cases =
    [
      ("L4All " ^ L4.scale_name l4_scale, l4, L4.query_text 3 Core.Query.Approx, "Q3");
      ("L4All " ^ L4.scale_name l4_scale, l4, L4.query_text 8 Core.Query.Approx, "Q8");
      ("L4All " ^ L4.scale_name l4_scale, l4, L4.query_text 9 Core.Query.Approx, "Q9");
      ("L4All " ^ L4.scale_name l4_scale, l4, L4.query_text 12 Core.Query.Approx, "Q12");
      ("YAGO", yago_graph (), Yago.query_text 2 Core.Query.Approx, "Q2");
      ("YAGO", yago_graph (), Yago.query_text 3 Core.Query.Approx, "Q3");
    ]
  in
  Printf.printf "%-12s %-4s %12s %15s %9s\n" "dataset" "Q" "plain (ms)" "dist-aware (ms)" "speedup";
  List.iter
    (fun (label, gk, qtext, qname) ->
      let n1, t1 = top100_time gk ~options:Options.default qtext in
      let n2, t2 =
        top100_time gk ~options:{ Options.default with Options.distance_aware = true } qtext
      in
      if n1 <> n2 then Printf.printf "(warning: %s %s answer counts differ: %d vs %d)\n" label qname n1 n2;
      Printf.printf "%-12s %-4s %12.2f %15.2f %8.1fx\n%!" label qname t1 t2 (t1 /. t2))
    cases

let opt2 () =
  header "[OPT2] Alternation by disjunction (paper §4.3: YAGO Q9 101.23 -> 12.65 ms)";
  let gk = yago_graph () in
  let qtext = Yago.query_text 9 Core.Query.Approx in
  let n1, t1 = top100_time gk ~options:Options.default qtext in
  let n2, t2 = top100_time gk ~options:{ Options.default with Options.decompose = true } qtext in
  Printf.printf
    "YAGO Q9 APPROX top-100: plain %.2f ms (%d answers) | decomposed %.2f ms (%d answers) | speedup %.1fx\n"
    t1 n1 t2 n2 (t1 /. t2)

(* ------------------------------------------------------------------ *)
(* ABL: ablations of the paper's §3.3 design choices                   *)
(* ------------------------------------------------------------------ *)

let ablations () =
  header "[ABL] Ablations of §3.3 design choices";
  let l4_scale = List.nth !scales (min 2 (List.length !scales - 1)) in
  let l4 = l4_graph l4_scale in
  let yago = yago_graph () in
  (* final/non-final priority: the paper credits it with faster answers and
     with some queries completing at all (we bound D_R's peak instead) *)
  Printf.printf "-- final-tuple priority (paper: 'improved the performance of most of our queries')\n";
  Printf.printf "%-34s %12s %14s %12s %14s\n" "query" "on (ms)" "peak queue" "off (ms)" "peak queue";
  let peak_of gk options qtext =
    let query = Core.Query_parser.parse qtext in
    let st = Engine.open_query ~graph:(fst gk) ~ontology:(snd gk) ~options query in
    let rec take k = if k > 0 then match Engine.next st with Some _ -> take (k - 1) | None -> () in
    let (), t = ms (fun () -> take 100) in
    let peak = (Engine.stream_stats st).Core.Exec_stats.peak_queue in
    Engine.close st;
    (peak, t)
  in
  List.iter
    (fun (label, gk, qtext) ->
      let on_peak, on_t = peak_of gk Options.default qtext in
      let off_peak, off_t =
        peak_of gk { Options.default with Options.final_priority = false } qtext
      in
      Printf.printf "%-34s %12.2f %14d %12.2f %14d\n%!" label on_t on_peak off_t off_peak)
    [
      ( "L4All " ^ L4.scale_name l4_scale ^ " Q9 APPROX",
        l4, L4.query_text 9 Core.Query.Approx );
      ("L4All " ^ L4.scale_name l4_scale ^ " Q10 APPROX", l4, L4.query_text 10 Core.Query.Approx);
      ("YAGO Q3 APPROX", yago, Yago.query_text 3 Core.Query.Approx);
      ("YAGO Q9 APPROX", yago, Yago.query_text 9 Core.Query.Approx);
    ];
  (* coroutine seed batching: the paper reports it halved some queries *)
  Printf.printf
    "-- batched seeding of (?X,R,?Y) conjuncts (paper: 'reduced the execution time of some queries by half')\n";
  Printf.printf "%-34s %14s %16s %14s %16s\n" "query" "batched (ms)" "seeds entered" "up-front (ms)"
    "seeds entered";
  List.iter
    (fun (label, gk, qtext) ->
      let seeded options =
        let query = Core.Query_parser.parse qtext in
        let st = Engine.open_query ~graph:(fst gk) ~ontology:(snd gk) ~options query in
        let rec take k = if k > 0 then match Engine.next st with Some _ -> take (k - 1) | None -> () in
        let (), t = ms (fun () -> take 100) in
        let seeds = (Engine.stream_stats st).Core.Exec_stats.seeds in
        Engine.close st;
        (seeds, t)
      in
      let on_seeds, on_t = seeded Options.default in
      let off_seeds, off_t = seeded { Options.default with Options.batched_seeding = false } in
      Printf.printf "%-34s %14.2f %16d %14.2f %16d\n%!" label on_t on_seeds off_t off_seeds)
    [
      ("L4All " ^ L4.scale_name l4_scale ^ " Q4 exact", l4, L4.query_text 4 Core.Query.Exact);
      ("L4All " ^ L4.scale_name l4_scale ^ " Q5 exact", l4, L4.query_text 5 Core.Query.Exact);
      ( "L4All " ^ L4.scale_name l4_scale ^ " Q7 exact",
        l4, L4.query_text 7 Core.Query.Exact );
      ("YAGO Q6 exact", yago, Yago.query_text 6 Core.Query.Exact);
    ]

(* RELAX vs. materialised RDFS inference: the space/time trade-off the
   query-time operator avoids.  We saturate a copy of the L4All graph with
   rdfs7 (sub-property) entailments and compare a RELAXed query against the
   equivalent exact query over the super-property. *)
let relax_vs_saturation () =
  header "[ABL-SAT] RELAX vs. RDFS materialisation";
  let scale = List.hd !scales in
  let g, k = l4_graph scale in
  let g', k' = L4.generate_scale scale in
  let (), sat_time = ms (fun () -> ignore (Rdfs.saturate ~subclass:false ~domain_range:false g' k')) in
  Graph.freeze g' (* saturation mutates the store, dropping the CSR index *);
  Printf.printf
    "L4All %s: saturation adds %d edges (%d -> %d, +%.0f%%) in %.1f ms — paid once, for every query\n"
    (L4.scale_name scale)
    (Graph.n_edges g' - Graph.n_edges g)
    (Graph.n_edges g) (Graph.n_edges g')
    (100. *. float_of_int (Graph.n_edges g' - Graph.n_edges g) /. float_of_int (Graph.n_edges g))
    sat_time;
  let q_relaxed = "(?X) <- RELAX (Alumni 4 Episode 1_1, prereq*.next+.prereq, ?X)" in
  let q_saturated = "(?X) <- (Alumni 4 Episode 1_1, isEpisodeLink*.isEpisodeLink+.isEpisodeLink, ?X)" in
  let run gk q =
    let once () =
      match Engine.run_string ~graph:(fst gk) ~ontology:(snd gk) ~limit:100 q with
      | Ok o -> List.length o.Engine.answers
      | Error m -> failwith m
    in
    let n = once () in
    let times = List.init (max 3 !runs) (fun _ -> snd (ms once)) in
    (n, median times)
  in
  let n1, t1 = run (g, k) q_relaxed in
  let n2, t2 = run (g', k') q_saturated in
  Printf.printf
    "Q9 relaxed-on-original: %d answers in %.2f ms | fully-relaxed exact on saturated: %d answers in %.2f ms\n"
    n1 t1 n2 t2;
  Printf.printf
    "(RELAX additionally ranks answers by relaxation distance and applies the rule-(ii)\n\
    \ domain/range rewrites, which the saturated rewrite does not express — hence the\n\
    \ small count difference.)\n"

(* ------------------------------------------------------------------ *)
(* PAR: parallel evaluation speedup vs domains                         *)
(* ------------------------------------------------------------------ *)

(* The speedup-vs-cores curve of the parallel evaluator (lib/core/par.ml):
   the (?X, R, ?Y) queries of the Fig. 4 set — the shapes that seed-shard —
   run to completion at 1/2/4/8 domains on the largest configured scale.
   Determinism is asserted as a side effect: the answer count at every
   domain count must equal the sequential one.  On a single-core host the
   curve measures the merge/pool overhead, not parallelism — [host_cores]
   is recorded in the JSON so a consumer can tell the two apart. *)
let par_domains = [ 1; 2; 4; 8 ]

let par () =
  header "[PAR] parallel evaluation: speedup vs OCaml domains";
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "exact (?X, R, ?Y) queries run to completion; speedup = mean(domains=1) / mean(domains=N)\n\
     host reports %d usable core(s) — speedups above 1.0 require real hardware parallelism\n"
    cores;
  let scale = List.nth !scales (List.length !scales - 1) in
  let gk = l4_graph scale in
  let measure qtext domains =
    let options = { Options.default with Options.domains } in
    let once () =
      match Engine.run_string ~graph:(fst gk) ~ontology:(snd gk) ~options ~limit:max_int qtext with
      | Ok o -> o
      | Error m -> failwith m
    in
    let outcome, _ = ms once in
    let times = List.init !runs (fun _ -> snd (ms once)) in
    {
      time_ms = mean times;
      times_ms = times;
      count = List.length outcome.Engine.answers;
      tuples = outcome.Engine.stats.Core.Exec_stats.pushes;
      mem_bytes_peak = outcome.Engine.stats.Core.Exec_stats.mem_bytes_peak;
      histogram = histogram_of outcome.Engine.answers;
      aborted = outcome.Engine.aborted;
      termination = outcome.Engine.termination;
      gc = gc_of outcome.Engine.stats;
    }
  in
  Printf.printf "%-5s %8s %12s %9s %10s %10s\n" "Q" "domains" "mean (ms)" "speedup" "answers"
    "tuples";
  let rows = ref [] in
  List.iter
    (fun id ->
      let qname = Printf.sprintf "Q%d" id in
      let qtext = L4.query_text id Core.Query.Exact in
      let base = measure qtext 1 in
      List.iter
        (fun domains ->
          let m = if domains = 1 then base else measure qtext domains in
          if m.count <> base.count then
            Printf.printf "(warning: %s answer count differs at domains=%d: %d vs %d)\n%!" qname
              domains m.count base.count;
          let speedup = if m.time_ms > 0. then base.time_ms /. m.time_ms else 1. in
          (match marker_of m.termination with
          | Some mark ->
            Printf.printf "%-5s %8d %12s %9s %10d %10d\n%!" qname domains mark "-" m.count
              m.tuples
          | None ->
            Printf.printf "%-5s %8d %12.2f %8.2fx %10d %10d\n%!" qname domains m.time_ms speedup
              m.count m.tuples);
          let row =
            match
              json_row ~dataset:"l4all" ~scale:(L4.scale_name scale) ~query:qname
                ~mode:Core.Query.Exact m
            with
            | Obs.Json.Obj fields ->
              Obs.Json.Obj
                (fields
                @ [ ("domains", Obs.Json.Int domains); ("speedup", Obs.Json.Float speedup) ])
            | j -> j
          in
          rows := row :: !rows)
        par_domains)
    [ 4; 5; 6; 7 ];
  write_json ~section:"par"
    ~extra:[ ("host_cores", Obs.Json.Int cores) ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* FLIGHT: flight recorder overhead                                    *)
(* ------------------------------------------------------------------ *)

(* Two measurements of lib/obs/flight.ml:

   1. the raw recorder in isolation — a tight loop of [record] calls with
      the recorder off (the single-load fast path every Par hot-path call
      site pays unconditionally) and on (sequence fetch, slot write,
      publication store);

   2. the answer path end to end — the same parallel exact queries run
      with the recorder off and on, emitted as two row-identical JSON
      documents so [validate --compare --threshold 2] gates the recorder
      at <2% answer-path overhead. *)
let flight () =
  header "[FLIGHT] flight recorder overhead";
  let reps = 1_000_000 in
  let tight label f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "%-28s %8.1f ns/event %12.2f M events/s\n%!" label (1e9 *. dt /. float_of_int reps)
      (float_of_int reps /. dt /. 1e6)
  in
  Obs.Flight.disable ();
  Obs.Flight.clear ();
  tight "record (recorder off)" (fun () ->
      Obs.Flight.record ~flow:0 ~shard:0 (Obs.Flight.Deliver { dist = 1 }));
  Obs.Flight.enable ();
  tight "record (recorder on)" (fun () ->
      Obs.Flight.record ~flow:0 ~shard:0 (Obs.Flight.Deliver { dist = 1 }));
  let recorded, dropped = Obs.Flight.stats () in
  Printf.printf "ring stats after the hot loop: recorded=%d dropped=%d (wraparound is the design)\n"
    recorded dropped;
  Obs.Flight.disable ();
  Obs.Flight.clear ();
  (* answer-path delta: parallel queries, the instrumented code path *)
  let scale = List.hd !scales in
  let gk = l4_graph scale in
  let options = { Options.default with Options.domains = 2 } in
  let measure qtext =
    let once () =
      match Engine.run_string ~graph:(fst gk) ~ontology:(snd gk) ~options ~limit:max_int qtext with
      | Ok o -> o
      | Error m -> failwith m
    in
    let outcome, _ = ms once in
    let times = List.init !runs (fun _ -> snd (ms once)) in
    {
      time_ms = mean times;
      times_ms = times;
      count = List.length outcome.Engine.answers;
      tuples = outcome.Engine.stats.Core.Exec_stats.pushes;
      mem_bytes_peak = outcome.Engine.stats.Core.Exec_stats.mem_bytes_peak;
      histogram = histogram_of outcome.Engine.answers;
      aborted = outcome.Engine.aborted;
      termination = outcome.Engine.termination;
      gc = gc_of outcome.Engine.stats;
    }
  in
  let queries = [ 4; 5; 6; 7 ] in
  let pass recorder_on =
    if recorder_on then Obs.Flight.enable () else Obs.Flight.disable ();
    let rows =
      List.map
        (fun id ->
          let qname = Printf.sprintf "Q%d" id in
          let m = measure (L4.query_text id Core.Query.Exact) in
          ( qname,
            m,
            json_row ~dataset:"l4all" ~scale:(L4.scale_name scale) ~query:qname
              ~mode:Core.Query.Exact m ))
        queries
    in
    if recorder_on then begin
      Obs.Flight.disable ();
      Obs.Flight.clear ()
    end;
    rows
  in
  let off = pass false in
  let on = pass true in
  Printf.printf "%-5s %12s %12s %9s  (exact, domains=2, scale %s)\n" "Q" "off (ms)" "on (ms)"
    "delta" (L4.scale_name scale);
  List.iter2
    (fun (q, o, _) (_, n, _) ->
      let delta =
        if o.time_ms > 0. then 100. *. (n.time_ms -. o.time_ms) /. o.time_ms else 0.
      in
      Printf.printf "%-5s %12.2f %12.2f %+8.1f%%\n%!" q o.time_ms n.time_ms delta)
    off on;
  write_json ~section:"flight" ~path:"BENCH_flight_off.json" (List.map (fun (_, _, r) -> r) off);
  write_json ~section:"flight" (List.map (fun (_, _, r) -> r) on)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)
(* ------------------------------------------------------------------ *)

(* Neighbour-scan throughput: sweep every (node, label, direction) lookup of
   the graph through [iter_neighbors], on the hashtable adjacency and on the
   frozen CSR index.  This is the [Succ] hot path in isolation; the CSR win
   here is what the figure-level benchmarks inherit. *)
let scan_throughput () =
  header "[MICRO] neighbour-scan throughput: CSR vs hashtable adjacency";
  let g, _ = l4_graph (List.hd !scales) in
  let labels = Graph.labels g in
  let sweep () =
    let count = ref 0 in
    Graph.iter_nodes g (fun n ->
        List.iter
          (fun l ->
            Graph.iter_neighbors g n l Graph.Out (fun _ -> incr count);
            Graph.iter_neighbors g n l Graph.In (fun _ -> incr count))
          labels);
    !count
  in
  let time_sweeps reps =
    let edges = ref 0 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      edges := sweep ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    (!edges, float_of_int (reps * !edges) /. dt /. 1e6)
  in
  let reps = max 3 !runs in
  Graph.unfreeze g;
  let _ = sweep () (* warm-up *) in
  let edges, hash_rate = time_sweeps reps in
  Graph.freeze g;
  let _ = sweep () in
  let _, csr_rate = time_sweeps reps in
  Printf.printf
    "%d edge slots swept x%d; hashtable %.2f M edges/s | CSR %.2f M edges/s | speedup %.1fx\n"
    edges reps hash_rate csr_rate (csr_rate /. hash_rate);
  Printf.printf "CSR index size: %d bytes (%.1f bytes/edge)\n" (Graph.csr_bytes g)
    (float_of_int (Graph.csr_bytes g) /. float_of_int (Graph.n_edges g));
  (* one instrumented query so the Exec_stats counters are visible (the
     harness clock is installed once at startup, so scan_ns is measured) *)
  match
    Engine.run_string ~graph:g ~ontology:(snd (l4_graph (List.hd !scales))) ~limit:100
      (L4.query_text 10 Core.Query.Approx)
  with
  | Ok o -> Format.printf "L4All Q10 APPROX top-100 stats: %a@." Core.Exec_stats.pp o.Engine.stats
  | Error m -> failwith m

let micro () =
  scan_throughput ();
  header "[MICRO] Bechamel micro-benchmarks (one per table/figure)";
  let open Bechamel in
  let l4_small = l4_graph (List.hd !scales) in
  let yago = yago_graph () in
  let top k options gk qtext () =
    match Engine.run_string ~graph:(fst gk) ~ontology:(snd gk) ~options ~limit:k qtext with
    | Ok o -> ignore o
    | Error m -> failwith m
  in
  let da = { Options.default with Options.distance_aware = true } in
  let dc = { Options.default with Options.decompose = true } in
  let budgeted = { Options.default with Options.max_tuples = Some !yago_budget } in
  let tests =
    Test.make_grouped ~name:"omega"
      [
        Test.make ~name:"fig2-hierarchy-stats"
          (Staged.stage (fun () ->
               List.iter
                 (fun r -> ignore (Ontology.class_hierarchy_stats (snd l4_small) r))
                 (Ontology.class_roots (snd l4_small))));
        Test.make ~name:"fig3-graph-stats" (Staged.stage (fun () -> ignore (Graph.stats (fst l4_small))));
        Test.make ~name:"fig5-counts-q10-exact"
          (Staged.stage (top max_int Options.default l4_small (L4.query_text 10 Core.Query.Exact)));
        Test.make ~name:"fig6-exact-q3"
          (Staged.stage (top max_int Options.default l4_small (L4.query_text 3 Core.Query.Exact)));
        Test.make ~name:"fig7-approx-q10"
          (Staged.stage (top 100 Options.default l4_small (L4.query_text 10 Core.Query.Approx)));
        Test.make ~name:"fig8-relax-q10"
          (Staged.stage (top 100 Options.default l4_small (L4.query_text 10 Core.Query.Relax)));
        Test.make ~name:"fig10-yago-q2-approx"
          (Staged.stage (top 100 budgeted yago (Yago.query_text 2 Core.Query.Approx)));
        Test.make ~name:"fig11-yago-q9-approx"
          (Staged.stage (top 100 budgeted yago (Yago.query_text 9 Core.Query.Approx)));
        Test.make ~name:"opt1-distance-aware-q3"
          (Staged.stage (top 100 da l4_small (L4.query_text 3 Core.Query.Approx)));
        Test.make ~name:"opt2-decomposed-yago-q9"
          (Staged.stage (top 100 dc yago (Yago.query_text 9 Core.Query.Approx)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  Printf.printf "%-40s %15s\n" "benchmark" "time/run";
  List.iter
    (fun (name, est) ->
      let value =
        match Analyze.OLS.estimates est with Some [ v ] -> v | Some _ | None -> nan
      in
      let pretty =
        if value > 1e9 then Printf.sprintf "%8.2f s " (value /. 1e9)
        else if value > 1e6 then Printf.sprintf "%8.2f ms" (value /. 1e6)
        else if value > 1e3 then Printf.sprintf "%8.2f us" (value /. 1e3)
        else Printf.sprintf "%8.0f ns" value
      in
      Printf.printf "%-40s %15s\n" name pretty)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* SMOKE: a fast, json-oriented subset (CI runs it with --json)        *)
(* ------------------------------------------------------------------ *)

let smoke () =
  header "[SMOKE] quick L4All subset (Q1, Q3, Q9 — exact and APPROX)";
  let scale = List.hd !scales in
  Printf.printf "%-5s %-8s %10s %10s %8s\n" "Q" "mode" "mean (ms)" "answers" "tuples";
  let rows =
    List.concat_map
      (fun id ->
        List.map
          (fun mode ->
            let m = l4_measure scale id mode in
            Printf.printf "Q%-4d %-8s %10.2f %10d %8d\n%!" id (mode_name mode) m.time_ms m.count
              m.tuples;
            json_row ~dataset:"l4all" ~scale:(L4.scale_name scale)
              ~query:(Printf.sprintf "Q%d" id) ~mode m)
          [ Core.Query.Exact; Core.Query.Approx ])
      [ 1; 3; 9 ]
  in
  write_json ~section:"smoke" rows

(* ------------------------------------------------------------------ *)

let () =
  parse_args ();
  (* The one shared clock init: scan-time attribution, governor deadlines
     and trace timestamps all read the same installed clock.  (Sections
     used to install Exec_stats.now_ns ad hoc, leaving scan_ns silently 0
     elsewhere.) *)
  Obs.Clock.install (fun () -> int_of_float (1e9 *. Unix.gettimeofday ()));
  Printf.printf "omega benchmark harness: sections=%s scales=%s runs=%d\n%!"
    (String.concat "," !sections)
    (String.concat "," (List.map L4.scale_name !scales))
    !runs;
  if enabled "fig2" then fig2 ();
  if enabled "fig3" then fig3 ();
  if enabled "fig5" then fig5 ();
  if enabled "fig6" then fig6 ();
  if enabled "fig7" then fig7 ();
  if enabled "fig8" then fig8 ();
  if enabled "yago-stats" then yago_stats ();
  if enabled "fig10" then fig10 ();
  if enabled "fig11" then fig11 ();
  if enabled "opt1" then opt1 ();
  if enabled "opt2" then opt2 ();
  if enabled "abl" then ablations ();
  if enabled "abl-sat" then relax_vs_saturation ();
  if enabled "par" then par ();
  if enabled "flight" then flight ();
  if enabled "micro" then micro ();
  if enabled "smoke" then smoke ();
  Printf.printf "\ndone.\n"
