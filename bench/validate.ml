(* Validator for the observability artefacts, run by CI:

     validate BENCH_smoke.json ...       # schema-check benchmark exports
     validate --manifest FILE            # engine metric names vs the pinned manifest
     validate --trace FILE               # Chrome trace structure + span nesting
     validate --audit FILE               # audit-log (JSONL) schema check
     validate --flight FILE              # flight-dump (JSONL) strict schema check
     validate --compare OLD NEW          # per-section perf regression gate
     validate --threshold PCT            # --compare slowdown tolerance (default 25)

   Exits non-zero with a message on the first violation, so a schema drift,
   a silently renamed metric, an unbalanced span pair or a benchmark
   section that got more than [threshold]% slower fails the build.  A trace
   whose ring buffer overflowed (top-level "dropped" > 0) is reported as a
   warning: the file is valid but truncated. *)

module Json = Obs.Json

let failf fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("validate: " ^ s);
      exit 1)
    fmt

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error msg -> failf "%s" msg

let parse_file path =
  match Json.parse (read_file path) with
  | Ok j -> j
  | Error msg -> failf "%s: not valid JSON: %s" path msg

let get path what j k = match Json.member k j with Some v -> v | None -> failf "%s: %s is missing %S" path what k
let want_int path what v k = match Json.to_int (get path what v k) with Some n -> n | None -> failf "%s: %s field %S is not an integer" path what k
let want_str path what v k = match Json.to_str (get path what v k) with Some s -> s | None -> failf "%s: %s field %S is not a string" path what k

(* --- BENCH_<section>.json (bench/bench_schema.json, schema_version 2) --- *)

let known_markers = [ "?"; "T"; "M"; "F"; "R" ]
let known_modes = [ "exact"; "approx"; "relax" ]

let check_result path i r =
  let what = Printf.sprintf "results[%d]" i in
  List.iter (fun k -> ignore (want_str path what r k)) [ "dataset"; "scale"; "query"; "termination" ];
  let mode = want_str path what r "mode" in
  if not (List.mem mode known_modes) then failf "%s: %s has unknown mode %S" path what mode;
  let mean = want_int path what r "mean_ns" in
  let min_ns = want_int path what r "min_ns" in
  let max_ns = want_int path what r "max_ns" in
  if not (min_ns <= mean && mean <= max_ns) then
    failf "%s: %s violates min_ns <= mean_ns <= max_ns (%d / %d / %d)" path what min_ns mean max_ns;
  if want_int path what r "answers" < 0 then failf "%s: %s has negative answers" path what;
  if want_int path what r "tuples" < 0 then failf "%s: %s has negative tuples" path what;
  if want_int path what r "mem_bytes_peak" < 0 then failf "%s: %s has negative mem_bytes_peak" path what;
  match get path what r "marker" with
  | Json.Null -> ()
  | Json.String m when List.mem m known_markers -> ()
  | Json.String m -> failf "%s: %s has unknown marker %S (expected ? T M F R or null)" path what m
  | _ -> failf "%s: %s field \"marker\" is neither a string nor null" path what

let check_bench path =
  let j = parse_file path in
  let version = want_int path "document" j "schema_version" in
  if version <> 2 then failf "%s: unsupported schema_version %d (expected 2)" path version;
  ignore (want_str path "document" j "section");
  if want_int path "document" j "runs" < 1 then failf "%s: runs < 1" path;
  match Json.to_list (get path "document" j "results") with
  | None -> failf "%s: \"results\" is not an array" path
  | Some results ->
    List.iteri (check_result path) results;
    Printf.printf "validate: %s ok (%d result(s))\n" path (List.length results)

(* --- BENCH_par.json (speedup-vs-domains curve) ----------------------- *)

(* Structural gate for the parallel-evaluation section: every row is a
   valid schema-2 result that additionally carries [domains] and
   [speedup]; each (query, mode) group has a domains=1 baseline, its
   stored speedups recompute from the stored means, and — the determinism
   contract — the answer count and termination of every row match the
   group's baseline exactly. *)
let check_par path =
  let j = parse_file path in
  let version = want_int path "document" j "schema_version" in
  if version <> 2 then failf "%s: unsupported schema_version %d (expected 2)" path version;
  let section = want_str path "document" j "section" in
  if section <> "par" then failf "%s: --par expects section \"par\", got %S" path section;
  if want_int path "document" j "runs" < 1 then failf "%s: runs < 1" path;
  let host_cores =
    match Json.member "host_cores" j with
    | Some v -> (
      match Json.to_int v with
      | Some c when c >= 1 -> c
      | Some c -> failf "%s: host_cores %d is not >= 1" path c
      | None -> failf "%s: \"host_cores\" is not an integer" path)
    | None -> failf "%s: missing \"host_cores\" (needed to interpret the curve)" path
  in
  match Json.to_list (get path "document" j "results") with
  | None -> failf "%s: \"results\" is not an array" path
  | Some results ->
    if results = [] then failf "%s: empty results" path;
    let rows =
      List.mapi
        (fun i r ->
          let what = Printf.sprintf "results[%d]" i in
          check_result path i r;
          let domains = want_int path what r "domains" in
          if domains < 1 then failf "%s: %s has domains %d < 1" path what domains;
          let speedup =
            match Json.to_float (get path what r "speedup") with
            | Some s when s > 0. -> s
            | Some s -> failf "%s: %s has non-positive speedup %g" path what s
            | None -> failf "%s: %s field \"speedup\" is not a number" path what
          in
          ( (want_str path what r "query", want_str path what r "mode"),
            (what, domains, want_int path what r "mean_ns", want_int path what r "answers",
             want_str path what r "termination", speedup) ))
        results
    in
    let keys = List.sort_uniq compare (List.map fst rows) in
    List.iter
      (fun key ->
        let group = List.filter_map (fun (k, v) -> if k = key then Some v else None) rows in
        let q, m = key in
        let base =
          match List.find_opt (fun (_, d, _, _, _, _) -> d = 1) group with
          | Some b -> b
          | None -> failf "%s: %s/%s has no domains=1 baseline row" path q m
        in
        let _, _, base_mean, base_answers, base_term, _ = base in
        List.iter
          (fun (what, _, mean_ns, answers, term, speedup) ->
            if answers <> base_answers then
              failf "%s: %s: answers %d differ from the domains=1 baseline's %d — the \
                     deterministic-merge contract is broken" path what answers base_answers;
            if term <> base_term then
              failf "%s: %s: termination %S differs from the baseline's %S" path what term
                base_term;
            if mean_ns > 0 && base_mean > 0 then begin
              let expect = float_of_int base_mean /. float_of_int mean_ns in
              if abs_float (speedup -. expect) > 0.02 *. expect then
                failf "%s: %s: stored speedup %.3f does not recompute from the means (%.3f)"
                  path what speedup expect
            end)
          group)
      keys;
    (* The speedup curve itself is only meaningful when the measuring host
       could actually run shards in parallel.  On a 1-core host the curve
       encodes pure pool/merge overhead — report it, don't gate on it. *)
    let multi = List.filter (fun (_, (_, d, _, _, _, _)) -> d > 1) rows in
    (if host_cores < 2 then
       Printf.eprintf
         "validate: warning: %s: measured on a %d-core host — the multi-domain rows encode \
          pool/merge overhead, not speedup; curve not gated\n"
         path host_cores
     else
       match multi with
       | [] -> ()
       | _ ->
         let best =
           List.fold_left (fun acc (_, (_, _, _, _, _, s)) -> max acc s) 0. multi
         in
         if best < 0.8 then
           failf
             "%s: best multi-domain speedup %.3f < 0.8 on a %d-core host — parallel evaluation \
              made everything slower"
             path best host_cores);
    Printf.printf "validate: %s ok (%d result(s), %d query group(s))\n" path (List.length rows)
      (List.length keys)

(* --- metric-name manifest ------------------------------------------- *)

let check_manifest path =
  let expected = Core.Exec_stats.field_names @ Core.Engine.histogram_names in
  let pinned =
    read_file path |> String.split_on_char '\n'
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" || l.[0] = '#' then None else Some l)
  in
  let missing = List.filter (fun n -> not (List.mem n expected)) pinned in
  let unpinned = List.filter (fun n -> not (List.mem n pinned)) expected in
  if missing <> [] then
    failf "%s pins metric(s) the engine no longer exposes: %s — a rename breaks dashboards; \
           deprecate explicitly by editing the manifest" path (String.concat ", " missing);
  if unpinned <> [] then
    failf "engine exposes metric(s) not pinned in %s: %s — add them to the manifest" path
      (String.concat ", " unpinned);
  Printf.printf "validate: %s ok (%d metric name(s))\n" path (List.length pinned)

(* --- Chrome trace files --------------------------------------------- *)

let check_trace path =
  let j = parse_file path in
  let events =
    match Json.to_list (get path "document" j "traceEvents") with
    | Some l -> l
    | None -> failf "%s: \"traceEvents\" is not an array" path
  in
  let depth = ref 0 in
  List.iteri
    (fun i e ->
      let what = Printf.sprintf "traceEvents[%d]" i in
      ignore (want_str path what e "name");
      ignore (want_str path what e "cat");
      (match Json.to_float (get path what e "ts") with
      | Some _ -> ()
      | None -> failf "%s: %s field \"ts\" is not a number" path what);
      match want_str path what e "ph" with
      | "B" -> incr depth
      | "E" ->
        decr depth;
        if !depth < 0 then failf "%s: %s closes a span that was never opened" path what
      | "i" | "M" -> ()
      | "X" -> (
        match Json.to_float (get path what e "dur") with
        | Some _ -> ()
        | None -> failf "%s: %s is a Complete event without a numeric \"dur\"" path what)
      | ph -> failf "%s: %s has unknown phase %S" path what ph)
    events;
  if !depth <> 0 then failf "%s: %d span(s) opened but never closed" path !depth;
  (* satellite: surfaced ring-buffer truncation — a clipped trace is valid
     but not complete, and a consumer should know *)
  (match Json.member "dropped" j with
  | Some v -> (
    match Json.to_int v with
    | Some d when d > 0 ->
      Printf.eprintf
        "validate: warning: %s: the trace ring buffer dropped %d event(s) — the export is a \
         truncated suffix\n"
        path d
    | Some _ -> ()
    | None -> failf "%s: \"dropped\" is not an integer" path)
  | None -> ());
  Printf.printf "validate: %s ok (%d event(s), spans balanced)\n" path (List.length events)

(* --- audit logs (JSONL, one query record per line) -------------------- *)

(* Strict, unlike [Obs.Audit.load]: in CI a malformed line means the writer
   regressed, not that a crash truncated the log, so every line must parse
   and validate against the record schema. *)
let check_audit path =
  let lines =
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then failf "%s: empty audit log" path;
  List.iteri
    (fun i line ->
      match Json.parse line with
      | Error msg -> failf "%s: line %d: not valid JSON: %s" path (i + 1) msg
      | Ok j -> (
        match Obs.Audit.validate j with
        | Ok () -> ()
        | Error msg -> failf "%s: line %d: invalid audit record: %s" path (i + 1) msg))
    lines;
  Printf.printf "validate: %s ok (%d audit record(s))\n" path (List.length lines)

(* --- flight dumps (JSONL scheduling event log) ------------------------ *)

(* Strict, unlike [Obs.Flight.load]: a committed fixture or CI-produced
   dump must be byte-perfect — a meta header first, every following line a
   valid event, and sequence numbers strictly increasing (the dump is the
   merged per-domain rings in merge order).  Tolerant truncated-tail
   recovery is for postmortems of crashed processes, not for the schema
   gate. *)
let check_flight path =
  let lines =
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  (match lines with
  | [] -> failf "%s: empty flight dump" path
  | first :: _ -> (
    match Json.parse first with
    | Error msg -> failf "%s: line 1: not valid JSON: %s" path msg
    | Ok j ->
      if not (Obs.Flight.is_meta j) then
        failf "%s: line 1 is not the meta header (crash-truncated dumps are not valid fixtures)"
          path;
      let recorded = want_int path "meta" j "recorded" in
      let dropped = want_int path "meta" j "dropped" in
      if recorded < 0 || dropped < 0 then
        failf "%s: meta header has negative recorded/dropped (%d/%d)" path recorded dropped;
      if recorded <> List.length lines - 1 then
        failf "%s: meta header claims %d event(s) but the dump carries %d" path recorded
          (List.length lines - 1)));
  let last_seq = ref (-1) in
  List.iteri
    (fun i line ->
      if i > 0 then
        match Json.parse line with
        | Error msg -> failf "%s: line %d: not valid JSON: %s" path (i + 1) msg
        | Ok j -> (
          if Obs.Flight.is_meta j then failf "%s: line %d: duplicate meta header" path (i + 1);
          match Obs.Flight.of_json j with
          | Error msg -> failf "%s: line %d: invalid flight event: %s" path (i + 1) msg
          | Ok ev ->
            if ev.Obs.Flight.seq <= !last_seq then
              failf "%s: line %d: seq %d is not strictly increasing (previous %d)" path (i + 1)
                ev.Obs.Flight.seq !last_seq;
            last_seq := ev.Obs.Flight.seq))
    lines;
  Printf.printf "validate: %s ok (%d flight event(s))\n" path (List.length lines - 1)

(* --- benchmark comparison (perf regression gate) --------------------- *)

(* Rows are matched by (dataset, scale, query, mode); the gate is on the
   per-section sum of mean_ns over the matched rows, so a single noisy
   query does not fail the build but a systematic slowdown does.  Rows
   present on only one side are reported (the section changed shape) but
   do not fail the comparison. *)
let check_compare ~threshold old_path new_path =
  let load path =
    let j = parse_file path in
    let section = want_str path "document" j "section" in
    match Json.to_list (get path "document" j "results") with
    | None -> failf "%s: \"results\" is not an array" path
    | Some results ->
      ( section,
        List.mapi
          (fun i r ->
            let what = Printf.sprintf "results[%d]" i in
            ( ( want_str path what r "dataset",
                want_str path what r "scale",
                want_str path what r "query",
                want_str path what r "mode" ),
              want_int path what r "mean_ns" ))
          results )
  in
  let old_section, old_rows = load old_path in
  let new_section, new_rows = load new_path in
  if old_section <> new_section then
    failf "--compare: section mismatch: %s is %S, %s is %S" old_path old_section new_path
      new_section;
  let key_str (d, s, q, m) = Printf.sprintf "%s/%s/%s/%s" d s q m in
  List.iter
    (fun (k, _) ->
      if not (List.mem_assoc k new_rows) then
        Printf.eprintf "validate: warning: --compare: %s disappeared from %s\n" (key_str k)
          new_path)
    old_rows;
  List.iter
    (fun (k, _) ->
      if not (List.mem_assoc k old_rows) then
        Printf.eprintf "validate: warning: --compare: %s is new in %s (not gated)\n" (key_str k)
          new_path)
    new_rows;
  let paired =
    List.filter_map
      (fun (k, o) -> Option.map (fun n -> (k, o, n)) (List.assoc_opt k new_rows))
      old_rows
  in
  if paired = [] then failf "--compare: no common rows between %s and %s" old_path new_path;
  let old_sum = List.fold_left (fun acc (_, o, _) -> acc + o) 0 paired in
  let new_sum = List.fold_left (fun acc (_, _, n) -> acc + n) 0 paired in
  let pct =
    if old_sum = 0 then 0. else 100. *. (float_of_int new_sum -. float_of_int old_sum) /. float_of_int old_sum
  in
  List.iter
    (fun (k, o, n) ->
      if o > 0 && float_of_int n > float_of_int o *. (1. +. (float_of_int threshold /. 100.)) then
        Printf.eprintf "validate: note: --compare: %s: %d ns -> %d ns (%+.1f%%)\n" (key_str k) o n
          (100. *. (float_of_int n -. float_of_int o) /. float_of_int o))
    paired;
  if float_of_int new_sum > float_of_int old_sum *. (1. +. (float_of_int threshold /. 100.)) then
    failf
      "--compare: section %S regressed: total mean_ns %d -> %d (%+.1f%%, threshold +%d%%) over %d \
       matched row(s)"
      old_section old_sum new_sum pct threshold (List.length paired);
  Printf.printf "validate: compare ok: section %S total mean_ns %d -> %d (%+.1f%%) over %d row(s)\n"
    old_section old_sum new_sum pct (List.length paired)

(* --------------------------------------------------------------------- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let threshold = ref 25 in
  let rec go = function
    | [] -> ()
    | "--manifest" :: path :: rest ->
      check_manifest path;
      go rest
    | "--trace" :: path :: rest ->
      check_trace path;
      go rest
    | "--par" :: path :: rest ->
      check_par path;
      go rest
    | "--audit" :: path :: rest ->
      check_audit path;
      go rest
    | "--flight" :: path :: rest ->
      check_flight path;
      go rest
    | "--threshold" :: pct :: rest ->
      (match int_of_string_opt pct with
      | Some n when n >= 0 -> threshold := n
      | _ -> failf "--threshold expects a non-negative integer percentage, got %S" pct);
      go rest
    | "--compare" :: old_path :: new_path :: rest ->
      check_compare ~threshold:!threshold old_path new_path;
      go rest
    | [ "--manifest" ] | [ "--trace" ] | [ "--par" ] | [ "--audit" ] | [ "--flight" ]
    | [ "--threshold" ] ->
      failf "missing file operand"
    | [ "--compare" ] | [ "--compare"; _ ] -> failf "--compare needs OLD.json and NEW.json"
    | path :: rest ->
      check_bench path;
      go rest
  in
  if args = [] then
    failf
      "usage: validate [BENCH_*.json ...] [--manifest FILE] [--trace FILE] [--par FILE] \
       [--audit FILE] [--flight FILE] [--threshold PCT] [--compare OLD.json NEW.json]";
  go args
