(** The ontology [K = (V_K, E_K)] accompanying a data graph.

    [E_K ⊆ V_K × {sc, sp, dom, range} × V_K] captures the RDFS fragment the
    paper supports: [rdfs:subClassOf] ([sc]), [rdfs:subPropertyOf] ([sp]),
    [rdfs:domain] ([dom]) and [rdfs:range] ([range]).

    Classes and properties are identified by the same interned label ids as
    the data graph (the interner is shared), so the RELAX automaton
    transformation can translate ontology entailments directly into
    automaton transitions.

    The RELAX operator uses three views of [K]:
    - {!ancestors_by_specificity}: super-classes of a class node in order of
      increasing generality, each with its relaxation depth — used when
      seeding a RELAXed conjunct whose subject is a class constant
      (procedure [Open], line 8);
    - {!property_ancestors}: super-properties with depths — relaxation rule
      (i) at cost [depth × β];
    - {!sub_properties_closure}: the RDFS down-closure of a property — a
      super-property label in a relaxed query matches any edge whose label is
      entailed to be a sub-property of it. *)

type t

val create : Graphstore.Interner.t -> t
(** An empty ontology sharing the graph's interner. *)

val interner : t -> Graphstore.Interner.t

(** {1 Construction} *)

val add_subclass : t -> string -> string -> unit
(** [add_subclass k sub super] records [sub sc super] (immediate). *)

val add_subproperty : t -> string -> string -> unit
(** [add_subproperty k sub super] records [sub sp super] (immediate). *)

val add_domain : t -> string -> string -> unit
(** [add_domain k property class_] records [property dom class_]. *)

val add_range : t -> string -> string -> unit

(** {1 Membership} *)

val is_class : t -> int -> bool
(** [is_class k id]: does [id] name a class node of [V_K]? *)

val is_property : t -> int -> bool

val classes : t -> int list
val properties : t -> int list

(** {1 Class hierarchy} *)

val super_classes : t -> int -> int list
(** Immediate super-classes. *)

val sub_classes : t -> int -> int list
(** Immediate sub-classes. *)

val ancestors_by_specificity : t -> int -> (int * int) list
(** [ancestors_by_specificity k c] returns [(class, depth)] pairs for [c] and
    every (transitive) super-class, ordered by increasing depth — i.e. most
    specific first, starting with [(c, 0)].  Ties are broken by id for
    determinism. *)

val class_descendants : t -> int -> int list
(** [c] plus all transitive sub-classes. *)

(** {1 Property hierarchy} *)

val super_properties : t -> int -> int list

val sub_properties : t -> int -> int list

val property_ancestors : t -> int -> (int * int) list
(** Like {!ancestors_by_specificity} but over [sp]; includes [(p, 0)]. *)

val sub_properties_closure : t -> int -> int list
(** [p] plus all transitive sub-properties (the labels a relaxed
    super-property transition must match). *)

val domain : t -> int -> int option
val range : t -> int -> int option

(** {1 Hierarchy statistics (paper Fig. 2 / §4.2)} *)

type hierarchy_stats = {
  root : int;
  members : int;
  depth : int; (** longest root-to-leaf path length *)
  avg_fanout : float; (** average number of children of non-leaf members *)
}

val class_roots : t -> int list
(** Classes with no super-class but at least one sub-class. *)

val property_roots : t -> int list

val class_hierarchy_stats : t -> int -> hierarchy_stats
(** Statistics of the class hierarchy rooted at the given class. *)

val property_hierarchy_stats : t -> int -> hierarchy_stats

val pp_hierarchy_stats : Graphstore.Interner.t -> Format.formatter -> hierarchy_stats -> unit
