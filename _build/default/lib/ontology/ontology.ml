module Interner = Graphstore.Interner

type t = {
  interner : Interner.t;
  sc_up : (int, int list ref) Hashtbl.t;
  sc_down : (int, int list ref) Hashtbl.t;
  sp_up : (int, int list ref) Hashtbl.t;
  sp_down : (int, int list ref) Hashtbl.t;
  dom : (int, int) Hashtbl.t;
  rng : (int, int) Hashtbl.t;
  class_set : (int, unit) Hashtbl.t;
  property_set : (int, unit) Hashtbl.t;
}

let create interner =
  {
    interner;
    sc_up = Hashtbl.create 64;
    sc_down = Hashtbl.create 64;
    sp_up = Hashtbl.create 16;
    sp_down = Hashtbl.create 16;
    dom = Hashtbl.create 16;
    rng = Hashtbl.create 16;
    class_set = Hashtbl.create 64;
    property_set = Hashtbl.create 16;
  }

let interner t = t.interner

let push tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some cell -> if not (List.mem v !cell) then cell := v :: !cell
  | None -> Hashtbl.add tbl key (ref [ v ])

let mark tbl id = if not (Hashtbl.mem tbl id) then Hashtbl.add tbl id ()

let add_subclass t sub super =
  let sub = Interner.intern t.interner sub and super = Interner.intern t.interner super in
  push t.sc_up sub super;
  push t.sc_down super sub;
  mark t.class_set sub;
  mark t.class_set super

let add_subproperty t sub super =
  let sub = Interner.intern t.interner sub and super = Interner.intern t.interner super in
  push t.sp_up sub super;
  push t.sp_down super sub;
  mark t.property_set sub;
  mark t.property_set super

let add_domain t property class_ =
  let p = Interner.intern t.interner property and c = Interner.intern t.interner class_ in
  Hashtbl.replace t.dom p c;
  mark t.property_set p;
  mark t.class_set c

let add_range t property class_ =
  let p = Interner.intern t.interner property and c = Interner.intern t.interner class_ in
  Hashtbl.replace t.rng p c;
  mark t.property_set p;
  mark t.class_set c

let is_class t id = Hashtbl.mem t.class_set id
let is_property t id = Hashtbl.mem t.property_set id

let sorted_keys tbl =
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare

let classes t = sorted_keys t.class_set
let properties t = sorted_keys t.property_set

let immediate tbl id =
  match Hashtbl.find_opt tbl id with
  | Some cell -> List.sort compare !cell
  | None -> []

let super_classes t id = immediate t.sc_up id
let sub_classes t id = immediate t.sc_down id
let super_properties t id = immediate t.sp_up id
let sub_properties t id = immediate t.sp_down id

(* Breadth-first walk up [up], recording the first (smallest) depth at which
   each ancestor is reached.  The result is ordered by increasing depth, i.e.
   increasing generality — exactly the order the paper's GetAncestors needs
   so that more specific classes are processed first. *)
let ancestors_with_depth up start =
  let seen = Hashtbl.create 16 in
  Hashtbl.add seen start 0;
  let out = ref [ (start, 0) ] in
  let frontier = ref [ start ] in
  let depth = ref 0 in
  while !frontier <> [] do
    incr depth;
    let next = ref [] in
    List.iter
      (fun id ->
        List.iter
          (fun parent ->
            if not (Hashtbl.mem seen parent) then begin
              Hashtbl.add seen parent !depth;
              out := (parent, !depth) :: !out;
              next := parent :: !next
            end)
          (immediate up id))
      !frontier;
    frontier := List.sort compare !next
  done;
  List.stable_sort (fun (a, da) (b, db) -> if da <> db then compare da db else compare a b) (List.rev !out)

let ancestors_by_specificity t c = ancestors_with_depth t.sc_up c
let property_ancestors t p = ancestors_with_depth t.sp_up p

let descendants down start =
  List.map fst (ancestors_with_depth down start)

let class_descendants t c = descendants t.sc_down c
let sub_properties_closure t p = descendants t.sp_down p

let domain t p = Hashtbl.find_opt t.dom p
let range t p = Hashtbl.find_opt t.rng p

type hierarchy_stats = { root : int; members : int; depth : int; avg_fanout : float }

let roots_of set up down =
  Hashtbl.fold
    (fun id () acc ->
      let has_parent = Hashtbl.mem up id in
      let has_child = Hashtbl.mem down id in
      if (not has_parent) && has_child then id :: acc else acc)
    set []
  |> List.sort compare

let class_roots t = roots_of t.class_set t.sc_up t.sc_down
let property_roots t = roots_of t.property_set t.sp_up t.sp_down

let hierarchy_stats down root =
  let members = ref 0 and depth = ref 0 and internal = ref 0 and children = ref 0 in
  let rec walk id d =
    incr members;
    if d > !depth then depth := d;
    let kids = immediate down id in
    if kids <> [] then begin
      incr internal;
      children := !children + List.length kids;
      List.iter (fun kid -> walk kid (d + 1)) kids
    end
  in
  walk root 0;
  let avg_fanout = if !internal = 0 then 0. else float_of_int !children /. float_of_int !internal in
  { root; members = !members; depth = !depth; avg_fanout }

let class_hierarchy_stats t root = hierarchy_stats t.sc_down root
let property_hierarchy_stats t root = hierarchy_stats t.sp_down root

let pp_hierarchy_stats interner ppf s =
  Format.fprintf ppf "%-34s depth=%d members=%d avg-fanout=%.2f" (Interner.name interner s.root)
    s.depth s.members s.avg_fanout
