module Graph = Graphstore.Graph
module Interner = Graphstore.Interner

type stats = { type_edges_added : int; property_edges_added : int }

let pp_stats ppf s =
  Format.fprintf ppf "type+=%d property+=%d" s.type_edges_added s.property_edges_added

(* The rule set is not recursive once closures are used: sub-class and
   sub-property reasoning is applied through the ontology's transitive
   closures, and dom/range conclusions only produce [type] edges, which no
   rule consumes except rdfs9 — so we run dom/range and sub-property first,
   then close the [type] edges.  One pass over the edge list per family,
   with a seen-set to keep the graph duplicate-free. *)
let saturate ?(subclass = true) ?(subproperty = true) ?(domain_range = true) g k =
  let interner = Graph.interner g in
  let type_l = Graph.type_label g in
  let seen = Hashtbl.create 1024 in
  Graph.iter_edges g (fun s l d -> Hashtbl.replace seen (s, l, d) ());
  let type_added = ref 0 and prop_added = ref 0 in
  let add counter src l dst =
    if not (Hashtbl.mem seen (src, l, dst)) then begin
      Hashtbl.add seen (src, l, dst) ();
      Graph.add_edge g src l dst;
      incr counter
    end
  in
  let class_node c = Graph.add_node g (Interner.name interner c) in
  (* snapshot the original edges: rules apply to the asserted graph, the
     closures supply the rest *)
  let original = ref [] in
  Graph.iter_edges g (fun s l d -> original := (s, l, d) :: !original);
  if subproperty || domain_range then
    List.iter
      (fun (src, l, dst) ->
        if l <> type_l && Ontology.is_property k l then begin
          if subproperty then
            List.iter
              (fun (super, depth) -> if depth > 0 then add prop_added src super dst)
              (Ontology.property_ancestors k l);
          if domain_range then begin
            (match Ontology.domain k l with
            | Some c -> add type_added src type_l (class_node c)
            | None -> ());
            match Ontology.range k l with
            | Some c -> add type_added dst type_l (class_node c)
            | None -> ()
          end
        end)
      !original;
  if subclass then begin
    (* include the type edges added by dom/range above *)
    let type_edges = ref [] in
    Graph.iter_edges g (fun s l d -> if l = type_l then type_edges := (s, d) :: !type_edges);
    List.iter
      (fun (x, c) ->
        let c_label = Interner.intern interner (Graph.node_label g c) in
        if Ontology.is_class k c_label then
          List.iter
            (fun (super, depth) -> if depth > 0 then add type_added x type_l (class_node super))
            (Ontology.ancestors_by_specificity k c_label))
      !type_edges
  end;
  { type_edges_added = !type_added; property_edges_added = !prop_added }
