(** RDFS forward-chaining saturation of a data graph.

    The alternative to query-time relaxation is to {e materialise} the RDFS
    entailments into the data graph and run exact queries — the classic
    space/time trade-off the RELAX operator is designed to avoid.  This
    module implements the materialisation so the trade-off can be measured
    (benchmark section [ABL]) and so generators can produce graphs with
    transitive [type] closure (the paper's L4All data has it: "the degree of
    the class nodes … increases … owing to transitive closure").

    Rules implemented (on the §2 data model):
    - {b rdfs9} — [(x, type, C)] and [C sc D] entail [(x, type, D)];
    - {b rdfs7} — [(x, p, y)] and [p sp q] entail [(x, q, y)];
    - {b rdfs2} — [(x, p, y)] and [p dom C] entail [(x, type, C)];
    - {b rdfs3} — [(x, p, y)] and [p range C] entail [(y, type, C)].

    Saturation is idempotent: running it twice adds nothing (tested). *)

type stats = {
  type_edges_added : int;  (** from rdfs9 + rdfs2 + rdfs3 *)
  property_edges_added : int;  (** from rdfs7 *)
}

val saturate :
  ?subclass:bool ->
  ?subproperty:bool ->
  ?domain_range:bool ->
  Graphstore.Graph.t ->
  Ontology.t ->
  stats
(** [saturate g k] adds every entailed edge to [g] in place (duplicates are
    not added).  The three rule families can be toggled; all default to
    [true].  Class nodes named in [k] but absent from [g] are created when a
    rule needs them. *)

val pp_stats : Format.formatter -> stats -> unit
