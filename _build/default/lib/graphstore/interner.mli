(** String interning: a bijection between strings and dense non-negative
    integer identifiers.

    Edge labels and other frequently-compared strings are interned once and
    manipulated as [int]s thereafter, which keeps the hot paths of the query
    engine allocation-free.  One interner is owned by each
    {!Graph.t}; the ontology shares it so that property identifiers agree
    across the data graph and the ontology. *)

type t

val create : ?initial_capacity:int -> unit -> t
(** A fresh, empty interner. *)

val intern : t -> string -> int
(** [intern t s] returns the identifier of [s], allocating a fresh one if [s]
    has not been seen before.  Identifiers are dense: the k-th distinct string
    receives id [k-1]. *)

val find : t -> string -> int option
(** [find t s] is the identifier of [s] if it has been interned. *)

val name : t -> int -> string
(** [name t id] is the string with identifier [id].
    @raise Invalid_argument if [id] has not been allocated. *)

val cardinal : t -> int
(** Number of distinct strings interned so far. *)

val iter : t -> (int -> string -> unit) -> unit
(** [iter t f] applies [f id name] to every interned string, in id order. *)
