type t = {
  mutable names : string array;
  mutable count : int;
  ids : (string, int) Hashtbl.t;
}

let create ?(initial_capacity = 64) () =
  { names = Array.make (max 1 initial_capacity) ""; count = 0; ids = Hashtbl.create initial_capacity }

let grow t =
  let cap = Array.length t.names in
  if t.count >= cap then begin
    let names = Array.make (2 * cap) "" in
    Array.blit t.names 0 names 0 t.count;
    t.names <- names
  end

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
    grow t;
    let id = t.count in
    t.names.(id) <- s;
    t.count <- t.count + 1;
    Hashtbl.add t.ids s id;
    id

let find t s = Hashtbl.find_opt t.ids s

let name t id =
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Interner.name: unknown id %d" id)
  else t.names.(id)

let cardinal t = t.count

let iter t f =
  for id = 0 to t.count - 1 do
    f id t.names.(id)
  done
