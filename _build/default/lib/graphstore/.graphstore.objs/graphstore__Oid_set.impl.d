lib/graphstore/oid_set.ml: Bytes Char List
