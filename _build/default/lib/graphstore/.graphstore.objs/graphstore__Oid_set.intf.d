lib/graphstore/oid_set.mli:
