lib/graphstore/graph.ml: Array Format Hashtbl Interner List Oid_set Printf
