lib/graphstore/interner.ml: Array Hashtbl Printf
