lib/graphstore/graph.mli: Format Interner Oid_set
