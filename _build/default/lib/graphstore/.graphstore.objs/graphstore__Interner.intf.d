lib/graphstore/interner.mli:
