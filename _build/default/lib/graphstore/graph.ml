type dir = Out | In | Both

(* Per-label adjacency: label id -> (node oid -> neighbour oids).  The two
   arrays are indexed by interned label id and grown on demand; an absent
   hashtable means no edge with that label exists yet. *)
type t = {
  interner : Interner.t;
  type_label : int;
  mutable node_labels : string array;
  mutable node_count : int;
  node_index : (string, int) Hashtbl.t;
  mutable adj_out : (int, int list ref) Hashtbl.t option array;
  mutable adj_in : (int, int list ref) Hashtbl.t option array;
  mutable edge_count : int;
  mutable label_counts : int array; (* label id -> number of edges *)
}

let create ?(initial_nodes = 1024) () =
  let interner = Interner.create () in
  let type_label = Interner.intern interner "type" in
  {
    interner;
    type_label;
    node_labels = Array.make (max 1 initial_nodes) "";
    node_count = 0;
    node_index = Hashtbl.create initial_nodes;
    adj_out = Array.make 16 None;
    adj_in = Array.make 16 None;
    edge_count = 0;
    label_counts = Array.make 16 0;
  }

let interner t = t.interner
let type_label t = t.type_label

let add_node t label =
  match Hashtbl.find_opt t.node_index label with
  | Some oid -> oid
  | None ->
    let cap = Array.length t.node_labels in
    if t.node_count >= cap then begin
      let labels = Array.make (2 * cap) "" in
      Array.blit t.node_labels 0 labels 0 t.node_count;
      t.node_labels <- labels
    end;
    let oid = t.node_count in
    t.node_labels.(oid) <- label;
    t.node_count <- t.node_count + 1;
    Hashtbl.add t.node_index label oid;
    oid

let grow_adj t label =
  let cap = Array.length t.adj_out in
  if label >= cap then begin
    let n = max (2 * cap) (label + 1) in
    let out = Array.make n None and inn = Array.make n None and counts = Array.make n 0 in
    Array.blit t.adj_out 0 out 0 cap;
    Array.blit t.adj_in 0 inn 0 cap;
    Array.blit t.label_counts 0 counts 0 cap;
    t.adj_out <- out;
    t.adj_in <- inn;
    t.label_counts <- counts
  end

let table_of arr label =
  match arr.(label) with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    arr.(label) <- Some tbl;
    tbl

let push tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some cell -> cell := v :: !cell
  | None -> Hashtbl.add tbl key (ref [ v ])

let check_oid t oid ctx =
  if oid < 0 || oid >= t.node_count then
    invalid_arg (Printf.sprintf "Graph.%s: unknown oid %d" ctx oid)

let add_edge t src label dst =
  check_oid t src "add_edge";
  check_oid t dst "add_edge";
  grow_adj t label;
  push (table_of t.adj_out label) src dst;
  push (table_of t.adj_in label) dst src;
  t.edge_count <- t.edge_count + 1;
  t.label_counts.(label) <- t.label_counts.(label) + 1

let add_edge_s t src label dst = add_edge t src (Interner.intern t.interner label) dst

let find_node t label = Hashtbl.find_opt t.node_index label

let node_label t oid =
  check_oid t oid "node_label";
  t.node_labels.(oid)

let n_nodes t = t.node_count
let n_edges t = t.edge_count

let labels t =
  let acc = ref [] in
  for label = Array.length t.label_counts - 1 downto 0 do
    if t.label_counts.(label) > 0 then acc := label :: !acc
  done;
  !acc

let adjacent arr label oid =
  if label < 0 || label >= Array.length arr then []
  else
    match arr.(label) with
    | None -> []
    | Some tbl -> ( match Hashtbl.find_opt tbl oid with Some cell -> !cell | None -> [])

let neighbors t n label dir =
  match dir with
  | Out -> adjacent t.adj_out label n
  | In -> adjacent t.adj_in label n
  | Both -> adjacent t.adj_out label n @ adjacent t.adj_in label n

let iter_neighbors t n label dir f =
  match dir with
  | Out -> List.iter f (adjacent t.adj_out label n)
  | In -> List.iter f (adjacent t.adj_in label n)
  | Both ->
    List.iter f (adjacent t.adj_out label n);
    List.iter f (adjacent t.adj_in label n)

let iter_neighbors_any t n f =
  let visit arr =
    Array.iteri
      (fun _label tbl ->
        match tbl with
        | None -> ()
        | Some tbl -> (
          match Hashtbl.find_opt tbl n with
          | Some cell -> List.iter f !cell
          | None -> ()))
      arr
  in
  visit t.adj_out;
  visit t.adj_in

let mem_edge t src label dst = List.exists (fun v -> v = dst) (adjacent t.adj_out label src)

let keys_of arr label =
  let set = Oid_set.create () in
  if label >= 0 && label < Array.length arr then begin
    match arr.(label) with
    | None -> ()
    | Some tbl -> Hashtbl.iter (fun oid _ -> Oid_set.add set oid) tbl
  end;
  set

let tails_by_label t label = keys_of t.adj_out label
let heads_by_label t label = keys_of t.adj_in label

let tails_and_heads t label =
  let set = tails_by_label t label in
  Oid_set.union_into set (heads_by_label t label);
  set

let out_degree t n label = List.length (adjacent t.adj_out label n)
let in_degree t n label = List.length (adjacent t.adj_in label n)

let iter_nodes t f =
  for oid = 0 to t.node_count - 1 do
    f oid
  done

let iter_edges t f =
  Array.iteri
    (fun label tbl ->
      match tbl with
      | None -> ()
      | Some tbl -> Hashtbl.iter (fun src cell -> List.iter (fun dst -> f src label dst) !cell) tbl)
    t.adj_out

type stats = {
  nodes : int;
  edges : int;
  distinct_labels : int;
  max_out_degree : int;
  max_in_degree : int;
}

let stats t =
  let max_deg arr =
    let best = ref 0 in
    Array.iter
      (fun tbl ->
        match tbl with
        | None -> ()
        | Some tbl -> Hashtbl.iter (fun _ cell -> best := max !best (List.length !cell)) tbl)
      arr;
    !best
  in
  {
    nodes = t.node_count;
    edges = t.edge_count;
    distinct_labels = List.length (labels t);
    max_out_degree = max_deg t.adj_out;
    max_in_degree = max_deg t.adj_in;
  }

let pp_stats ppf s =
  Format.fprintf ppf "nodes=%d edges=%d labels=%d max_out=%d max_in=%d" s.nodes s.edges
    s.distinct_labels s.max_out_degree s.max_in_degree
