module Graph = Graphstore.Graph
module Oid_set = Graphstore.Oid_set
module Nfa = Automaton.Nfa

type t = {
  mutable candidates : int Seq.t; (* lazily produced, possibly with duplicates *)
  delivered : Oid_set.t;
  batch_size : int;
  mutable fixed : (int * int) list option; (* Some: constant-subject seeds *)
  mutable finished : bool;
}

let of_list seeds =
  {
    candidates = Seq.empty;
    delivered = Oid_set.create ();
    batch_size = max_int;
    fixed = Some seeds;
    finished = false;
  }

(* Nodes carrying an edge compatible with [lbl], as a sequence.  The oid sets
   are materialised per label (the Sparksee Heads/Tails calls of §3.3), but
   consumed lazily so unneeded batches cost nothing downstream. *)
let nodes_with_edge graph (lbl : Nfa.tlabel) : int Seq.t =
  let set_seq set = List.to_seq (Oid_set.to_list set) in
  let all_labels f =
    List.to_seq (Graph.labels graph) |> Seq.concat_map (fun l -> set_seq (f l))
  in
  match lbl with
  | Nfa.Eps -> Seq.empty (* removed before evaluation *)
  | Nfa.Sym (Fwd, a) -> set_seq (Graph.tails_by_label graph a)
  | Nfa.Sym (Bwd, a) -> set_seq (Graph.heads_by_label graph a)
  | Nfa.Any -> all_labels (Graph.tails_and_heads graph)
  | Nfa.Any_dir Fwd -> all_labels (Graph.tails_by_label graph)
  | Nfa.Any_dir Bwd -> all_labels (Graph.heads_by_label graph)
  | Nfa.Sub_closure (d, ls) ->
    let per_label a =
      match (d : Nfa.dir) with
      | Fwd -> set_seq (Graph.tails_by_label graph a)
      | Bwd -> set_seq (Graph.heads_by_label graph a)
    in
    Seq.concat_map per_label (Array.to_seq ls)
  | Nfa.Type_to c -> List.to_seq (Graph.neighbors graph c (Graph.type_label graph) In)

let all_nodes graph : int Seq.t = Seq.init (Graph.n_nodes graph) (fun oid -> oid)

let of_initial_state ~graph ~nfa ~batch_size =
  let s0 = Nfa.initial nfa in
  let by_start_labels =
    Seq.concat_map
      (fun (tr : Nfa.transition) -> nodes_with_edge graph tr.lbl)
      (List.to_seq (Nfa.out nfa s0))
  in
  let candidates =
    match Nfa.final_weight nfa s0 with
    | Some 0 -> all_nodes graph
    | Some _ -> Seq.append by_start_labels (all_nodes graph)
    | None -> by_start_labels
  in
  {
    candidates;
    delivered = Oid_set.create ();
    batch_size = max 1 batch_size;
    fixed = None;
    finished = false;
  }

let next_batch t =
  match t.fixed with
  | Some seeds ->
    t.fixed <- None;
    t.finished <- true;
    List.filter (fun (oid, _) -> Oid_set.add_new t.delivered oid) seeds
  | None ->
    if t.finished then []
    else begin
      let batch = ref [] and count = ref 0 in
      let rec pull seq =
        if !count >= t.batch_size then t.candidates <- seq
        else
          match seq () with
          | Seq.Nil ->
            t.candidates <- Seq.empty;
            t.finished <- true
          | Seq.Cons (oid, rest) ->
            if Oid_set.add_new t.delivered oid then begin
              batch := (oid, 0) :: !batch;
              incr count
            end;
            pull rest
      in
      pull t.candidates;
      List.rev !batch
    end

let exhausted t = t.finished && t.fixed = None
