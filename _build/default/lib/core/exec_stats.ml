type t = {
  mutable pushes : int;
  mutable pops : int;
  mutable succ_calls : int;
  mutable edges_scanned : int;
  mutable batches : int;
  mutable seeds : int;
  mutable answers : int;
  mutable peak_queue : int;
  mutable restarts : int;
  mutable pruned : int;
}

let create () =
  {
    pushes = 0;
    pops = 0;
    succ_calls = 0;
    edges_scanned = 0;
    batches = 0;
    seeds = 0;
    answers = 0;
    peak_queue = 0;
    restarts = 0;
    pruned = 0;
  }

let reset t =
  t.pushes <- 0;
  t.pops <- 0;
  t.succ_calls <- 0;
  t.edges_scanned <- 0;
  t.batches <- 0;
  t.seeds <- 0;
  t.answers <- 0;
  t.peak_queue <- 0;
  t.restarts <- 0;
  t.pruned <- 0

let merge_into acc x =
  acc.pushes <- acc.pushes + x.pushes;
  acc.pops <- acc.pops + x.pops;
  acc.succ_calls <- acc.succ_calls + x.succ_calls;
  acc.edges_scanned <- acc.edges_scanned + x.edges_scanned;
  acc.batches <- acc.batches + x.batches;
  acc.seeds <- acc.seeds + x.seeds;
  acc.answers <- acc.answers + x.answers;
  acc.peak_queue <- max acc.peak_queue x.peak_queue;
  acc.restarts <- acc.restarts + x.restarts;
  acc.pruned <- acc.pruned + x.pruned

let pp ppf t =
  Format.fprintf ppf
    "pushes=%d pops=%d succ=%d edges=%d batches=%d seeds=%d answers=%d peak=%d restarts=%d pruned=%d"
    t.pushes t.pops t.succ_calls t.edges_scanned t.batches t.seeds t.answers t.peak_queue t.restarts
    t.pruned
