type 'a bucket = { mutable final : 'a list; mutable nonfinal : 'a list }

type 'a t = {
  mutable buckets : 'a bucket array;
  mutable lower : int; (* no tuple sits at a distance below [lower] *)
  mutable count : int;
}

let new_bucket () = { final = []; nonfinal = [] }

let create () = { buckets = Array.init 8 (fun _ -> new_bucket ()); lower = 0; count = 0 }

let ensure t dist =
  let cap = Array.length t.buckets in
  if dist >= cap then begin
    let buckets = Array.init (max (2 * cap) (dist + 1)) (fun _ -> new_bucket ()) in
    Array.blit t.buckets 0 buckets 0 cap;
    t.buckets <- buckets
  end

let push t ~dist ~final v =
  if dist < 0 then invalid_arg "Dr_queue.push: negative distance";
  ensure t dist;
  let bucket = t.buckets.(dist) in
  if final then bucket.final <- v :: bucket.final else bucket.nonfinal <- v :: bucket.nonfinal;
  t.count <- t.count + 1;
  if dist < t.lower then t.lower <- dist

let is_empty t = t.count = 0

let size t = t.count

let rec advance t =
  if t.lower < Array.length t.buckets then begin
    let bucket = t.buckets.(t.lower) in
    if bucket.final = [] && bucket.nonfinal = [] then begin
      t.lower <- t.lower + 1;
      advance t
    end
  end

let pop t =
  if t.count = 0 then None
  else begin
    advance t;
    let dist = t.lower in
    let bucket = t.buckets.(dist) in
    match bucket.final with
    | v :: rest ->
      bucket.final <- rest;
      t.count <- t.count - 1;
      Some (v, dist, true)
    | [] -> (
      match bucket.nonfinal with
      | v :: rest ->
        bucket.nonfinal <- rest;
        t.count <- t.count - 1;
        Some (v, dist, false)
      | [] -> assert false (* advance found a non-empty bucket since count > 0 *))
  end

let has_at t d =
  d >= 0
  && d < Array.length t.buckets
  && (t.buckets.(d).final <> [] || t.buckets.(d).nonfinal <> [])

let min_distance t =
  if t.count = 0 then None
  else begin
    advance t;
    Some t.lower
  end

let clear t =
  Array.iter
    (fun b ->
      b.final <- [];
      b.nonfinal <- [])
    t.buckets;
  t.lower <- 0;
  t.count <- 0
