(** The dictionary [D_R] of §3.3: tuples pending exploration, keyed by an
    (integer distance, final/non-final) pair.

    Physically a bucket queue: a growable array indexed by distance, each
    bucket holding two LIFO stacks (final and non-final tuples).  Push and
    pop are O(1) amortised — the linked-list-with-head-insertion layout the
    paper implements with C5 collections.

    Pop order implements the paper's refinement: smallest distance first,
    and {e final} tuples before non-final ones at equal distance, so answers
    are surfaced as early as possible (§3.3 — this also bounds memory for
    queries that would otherwise exhaust it). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> dist:int -> final:bool -> 'a -> unit
(** @raise Invalid_argument if [dist < 0]. *)

val pop : 'a t -> ('a * int * bool) option
(** Remove and return [(tuple, dist, final)] — minimum distance, final
    first — or [None] when empty. *)

val is_empty : 'a t -> bool

val size : 'a t -> int
(** Number of tuples currently queued. *)

val has_at : 'a t -> int -> bool
(** [has_at q d]: does any tuple (final or not) sit at distance [d]?  Used by
    the seeding coroutine's "no distance-0 tuples left" check. *)

val min_distance : 'a t -> int option

val clear : 'a t -> unit
