(** Conjunctive regular path (CRP) queries with flexible operators.

    A query has the form (§2)
    {v
      (Z1, …, Zm) <- (X1, R1, Y1), …, (Xn, Rn, Yn)
    v}
    where each [Xi]/[Yi] is a variable or a node constant, each [Ri] a
    regular expression over edge labels, each [Zi] a variable of the body,
    and each conjunct may be prefixed with [APPROX] or [RELAX]. *)

type term =
  | Const of string  (** a node label in the data graph *)
  | Var of string  (** written [?name] in the concrete syntax *)

type mode = Exact | Approx | Relax

type conjunct = {
  cmode : mode;
  subj : term;
  regex : Rpq_regex.Regex.t;
  obj : term;
}

type t = {
  head : string list;  (** projected variables [Z1 … Zm] *)
  conjuncts : conjunct list;
}

val conjunct : ?mode:mode -> term -> Rpq_regex.Regex.t -> term -> conjunct
(** Build a conjunct; [mode] defaults to [Exact]. *)

val single : ?mode:mode -> term -> Rpq_regex.Regex.t -> term -> t
(** A one-conjunct query projecting all its variables. *)

val make : head:string list -> conjunct list -> t
(** @raise Invalid_argument if the query is ill-formed (see {!validate}). *)

val conjunct_vars : conjunct -> string list
(** Variables of a conjunct, subject first, deduplicated. *)

val vars : t -> string list
(** All body variables, in first-occurrence order. *)

val validate : t -> (unit, string) result
(** Checks the paper's well-formedness conditions: at least one conjunct, a
    non-empty head, and every head variable appearing in the body. *)

val pp_term : Format.formatter -> term -> unit
val pp_mode : Format.formatter -> mode -> unit
val pp_conjunct : Format.formatter -> conjunct -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
