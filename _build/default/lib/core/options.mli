(** Evaluation options: edit/relaxation costs and the physical optimisations
    of §3.3–§4.3. *)

type costs = {
  ins : int;  (** APPROX insertion cost (paper: 1) *)
  del : int;  (** APPROX deletion cost (paper: 1) *)
  sub : int;  (** APPROX substitution cost (paper: 1) *)
  beta : int;  (** RELAX rule (i) cost per step (paper: 1) *)
  gamma : int;  (** RELAX rule (ii) cost (paper: 1) *)
}

type t = {
  costs : costs;
  batch_size : int;
      (** how many initial nodes the seeding coroutine delivers per batch for
          [(?X, R, ?Y)] conjuncts (paper default: 100) *)
  distance_aware : bool;
      (** §4.3 "retrieving answers by distance": evaluate with a cost ceiling
          ψ = 0, φ, 2φ, … restarting from scratch at each increment *)
  decompose : bool;
      (** §4.3 "replacing alternation by disjunction": split a top-level
          alternation into sub-automata, adaptively ordered *)
  max_tuples : int option;
      (** abort (raising {!Out_of_budget}) once this many tuples have been
          added to [D_R] — a deterministic stand-in for the paper's 6 GB
          memory exhaustion ('?' entries of Fig. 10) *)
  final_priority : bool;
      (** ablation switch (default true): pop final tuples before non-final
          ones at equal distance.  The paper reports that this refinement
          "improved the performance of most of our queries, and also ensured
          that some queries, which had previously failed by running out of
          memory, completed" (§3.3) — disabling it lets the benchmark
          harness quantify that claim. *)
  batched_seeding : bool;
      (** ablation switch (default true): deliver [(?X, R, ?Y)] seeds in
          coroutine batches of [batch_size].  When false, all seeds enter
          [D_R] up-front (the paper reports batching "reduced the execution
          time of some queries by half", §3.3). *)
}

exception Out_of_budget
(** Raised by conjunct evaluation when [max_tuples] is exceeded. *)

val default_costs : costs
(** All five costs are 1, as in the performance study (§4.1). *)

val default : t
(** [default_costs], batch size 100, no optimisations, no budget. *)

val phi : t -> Query.mode -> int
(** [phi t mode] is the smallest positive cost of the operations enabled by
    [mode] — the ψ increment of distance-aware retrieval.  1 for [Exact]
    (arbitrary; exact answers all have distance 0). *)

val compile_mode : t -> Query.mode -> Automaton.Compile.mode
(** The automaton transformation corresponding to a conjunct's operator under
    these costs. *)
