module Regex = Rpq_regex.Regex

type term = Const of string | Var of string

type mode = Exact | Approx | Relax

type conjunct = { cmode : mode; subj : term; regex : Regex.t; obj : term }

type t = { head : string list; conjuncts : conjunct list }

let conjunct ?(mode = Exact) subj regex obj = { cmode = mode; subj; regex; obj }

let conjunct_vars c =
  let of_term = function Var v -> [ v ] | Const _ -> [] in
  let vs = of_term c.subj @ of_term c.obj in
  List.fold_left (fun acc v -> if List.mem v acc then acc else acc @ [ v ]) [] vs

let vars t =
  List.fold_left
    (fun acc c ->
      List.fold_left (fun acc v -> if List.mem v acc then acc else acc @ [ v ]) acc (conjunct_vars c))
    [] t.conjuncts

let validate t =
  if t.conjuncts = [] then Error "a CRP query needs at least one conjunct"
  else if t.head = [] then Error "a CRP query needs at least one head variable"
  else
    let body_vars = vars t in
    match List.find_opt (fun z -> not (List.mem z body_vars)) t.head with
    | Some z -> Error (Printf.sprintf "head variable ?%s does not appear in the body" z)
    | None -> Ok ()

let make ~head conjuncts =
  let t = { head; conjuncts } in
  match validate t with Ok () -> t | Error msg -> invalid_arg ("Query.make: " ^ msg)

let single ?(mode = Exact) subj regex obj =
  let c = conjunct ~mode subj regex obj in
  let head = conjunct_vars c in
  let head = if head = [] then invalid_arg "Query.single: no variables" else head in
  { head; conjuncts = [ c ] }

let pp_term ppf = function
  | Const c -> Format.pp_print_string ppf c
  | Var v -> Format.fprintf ppf "?%s" v

let pp_mode ppf = function
  | Exact -> ()
  | Approx -> Format.pp_print_string ppf "APPROX "
  | Relax -> Format.pp_print_string ppf "RELAX "

let pp_conjunct ppf c =
  Format.fprintf ppf "%a(%a, %a, %a)" pp_mode c.cmode pp_term c.subj Regex.pp c.regex pp_term c.obj

let pp ppf t =
  Format.fprintf ppf "(%s) <- %a"
    (String.concat ", " (List.map (fun v -> "?" ^ v) t.head))
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_conjunct)
    t.conjuncts

let to_string t = Format.asprintf "%a" pp t
