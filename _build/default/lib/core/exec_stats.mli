(** Execution counters, collected per conjunct evaluation.

    These are the quantities the paper reasons with when explaining the
    performance study ("a large number of intermediate results being
    generated … converted into tuples in GetNext and added to D_R"), so the
    benchmark harness reports them alongside wall-clock times. *)

type t = {
  mutable pushes : int;  (** tuples added to [D_R] *)
  mutable pops : int;  (** tuples removed from [D_R] *)
  mutable succ_calls : int;  (** invocations of [Succ] *)
  mutable edges_scanned : int;  (** neighbours returned across all [Succ] calls *)
  mutable batches : int;  (** seed batches delivered by the coroutine *)
  mutable seeds : int;  (** initial nodes added *)
  mutable answers : int;  (** answers emitted *)
  mutable peak_queue : int;  (** high-water mark of [D_R] *)
  mutable restarts : int;  (** distance-aware re-evaluations *)
  mutable pruned : int;  (** pushes suppressed by the ψ ceiling *)
}

val create : unit -> t

val reset : t -> unit

val merge_into : t -> t -> unit
(** [merge_into acc x] adds [x]'s counters into [acc] ([peak_queue] takes the
    max). *)

val pp : Format.formatter -> t -> unit
