lib/core/query.mli: Format Rpq_regex
