lib/core/conjunct.ml: Array Automaton Dr_queue Exec_stats Graphstore Hashtbl List Ontology Options Query Rpq_regex Seeder
