lib/core/options.ml: Automaton List Query
