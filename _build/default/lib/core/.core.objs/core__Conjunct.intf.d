lib/core/conjunct.mli: Automaton Exec_stats Graphstore Hashtbl Ontology Options Query
