lib/core/exec_stats.mli: Format
