lib/core/options.mli: Automaton Query
