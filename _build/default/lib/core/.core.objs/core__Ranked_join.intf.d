lib/core/ranked_join.mli:
