lib/core/query_parser.mli: Query
