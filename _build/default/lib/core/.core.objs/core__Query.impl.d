lib/core/query.ml: Format List Printf Rpq_regex String
