lib/core/dr_queue.mli:
