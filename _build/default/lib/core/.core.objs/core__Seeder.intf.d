lib/core/seeder.mli: Automaton Graphstore
