lib/core/evaluator.mli: Conjunct Exec_stats Graphstore Ontology Options Query
