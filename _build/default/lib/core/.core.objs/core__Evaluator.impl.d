lib/core/evaluator.ml: Conjunct Exec_stats Graphstore Hashtbl List Ontology Options Query Rpq_regex
