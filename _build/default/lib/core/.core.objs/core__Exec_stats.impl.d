lib/core/exec_stats.ml: Format
