lib/core/engine.ml: Conjunct Evaluator Exec_stats Format Graphstore Hashtbl List Options Printf Query Query_parser Ranked_join String
