lib/core/dr_queue.ml: Array
