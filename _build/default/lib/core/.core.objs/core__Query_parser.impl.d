lib/core/query_parser.ml: Buffer List Printf Query Rpq_regex String
