lib/core/engine.mli: Exec_stats Format Graphstore Ontology Options Query
