lib/core/seeder.ml: Array Automaton Graphstore List Seq
