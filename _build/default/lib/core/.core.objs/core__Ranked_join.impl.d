lib/core/ranked_join.ml: Array Dr_queue Hashtbl List Printf
