(** Whole-query evaluation: the public entry point of the Omega engine.

    Evaluates a CRP query against a data graph and its ontology: each
    conjunct is evaluated by {!Evaluator} (per its APPROX/RELAX operator and
    the configured optimisations), multi-conjunct bodies are combined by
    {!Ranked_join}, and the head projection is applied, deduplicating
    projected bindings at their smallest total distance.

    Answers stream in non-decreasing distance; {!run} materialises a prefix,
    which is how the performance study retrieves "the top 100 answers" in
    batches of 10. *)

type answer = {
  bindings : (string * string) list;
      (** head variable → node label, in head order *)
  distance : int;  (** total edit/relaxation distance of the combination *)
}

type outcome = {
  answers : answer list;  (** in non-decreasing distance *)
  aborted : bool;
      (** true when evaluation hit [options.max_tuples] (the stand-in for the
          paper's memory exhaustion); [answers] holds what was produced *)
  stats : Exec_stats.t;  (** aggregated over all conjuncts *)
}

val pp_answer : Format.formatter -> answer -> unit

type stream
(** An open query evaluation producing answers on demand. *)

val open_query :
  graph:Graphstore.Graph.t ->
  ontology:Ontology.t ->
  ?options:Options.t ->
  Query.t ->
  stream
(** @raise Invalid_argument if the query fails {!Query.validate}. *)

val next : stream -> answer option
(** @raise Options.Out_of_budget when the tuple budget is exceeded. *)

val stream_stats : stream -> Exec_stats.t

val run :
  graph:Graphstore.Graph.t ->
  ontology:Ontology.t ->
  ?options:Options.t ->
  ?limit:int ->
  Query.t ->
  outcome
(** Evaluate, returning at most [limit] answers (default: all — beware of
    APPROX queries, whose answer sets can be the full node-pair space).
    Budget exhaustion is reported through [aborted] rather than raised. *)

val run_string :
  graph:Graphstore.Graph.t ->
  ontology:Ontology.t ->
  ?options:Options.t ->
  ?limit:int ->
  string ->
  (outcome, string) result
(** Parse with {!Query_parser} and {!run}. *)
