module Graph = Graphstore.Graph

type answer = { bindings : (string * string) list; distance : int }

type outcome = { answers : answer list; aborted : bool; stats : Exec_stats.t }

let pp_answer ppf a =
  Format.fprintf ppf "dist=%d %s" a.distance
    (String.concat ", " (List.map (fun (v, x) -> Printf.sprintf "?%s=%s" v x) a.bindings))

type stream = {
  graph : Graph.t;
  head : string list;
  evaluators : Evaluator.t list;
  pull : unit -> (Ranked_join.binding * int) option;
  projected : (string list, unit) Hashtbl.t; (* dedup of projected bindings *)
}

(* A conjunct answer as a variable binding.  A conjunct with two constants
   contributes an empty binding (its satisfaction is checked by the conjunct
   evaluator itself). *)
let binding_of_answer (c : Query.conjunct) (a : Conjunct.answer) =
  let of_term term value =
    match (term : Query.term) with Query.Var v -> [ (v, value) ] | Query.Const _ -> []
  in
  Ranked_join.binding_of (of_term c.subj a.x @ of_term c.obj a.y)

let open_query ~graph ~ontology ?(options = Options.default) (q : Query.t) =
  (match Query.validate q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.open_query: " ^ msg));
  let evaluators =
    List.map (fun c -> (c, Evaluator.create ~graph ~ontology ~options c)) q.conjuncts
  in
  let stream_of (c, ev) () =
    match Evaluator.next ev with
    | Some a -> Some (binding_of_answer c a, a.Conjunct.dist)
    | None -> None
  in
  let pull =
    match evaluators with
    | [ single ] -> stream_of single
    | several ->
      let join = Ranked_join.create (List.map stream_of several) in
      fun () -> Ranked_join.next join
  in
  {
    graph;
    head = q.head;
    evaluators = List.map snd evaluators;
    pull;
    projected = Hashtbl.create 64;
  }

let rec next st =
  match st.pull () with
  | None -> None
  | Some (binding, distance) ->
    let values =
      List.map
        (fun v ->
          match List.assoc_opt v binding with
          | Some oid -> Graph.node_label st.graph oid
          | None -> assert false (* validate: head vars appear in the body *))
        st.head
    in
    if Hashtbl.mem st.projected values then next st
    else begin
      Hashtbl.add st.projected values ();
      Some { bindings = List.combine st.head values; distance }
    end

let stream_stats st =
  let acc = Exec_stats.create () in
  List.iter (fun ev -> Exec_stats.merge_into acc (Evaluator.stats ev)) st.evaluators;
  acc

let run ~graph ~ontology ?options ?(limit = max_int) q =
  let st = open_query ~graph ~ontology ?options q in
  let rec collect acc k =
    if k <= 0 then (List.rev acc, false)
    else
      match next st with
      | Some a -> collect (a :: acc) (k - 1)
      | None -> (List.rev acc, false)
      | exception Options.Out_of_budget -> (List.rev acc, true)
  in
  let answers, aborted = collect [] limit in
  { answers; aborted; stats = stream_stats st }

let run_string ~graph ~ontology ?options ?limit s =
  match Query_parser.parse_result s with
  | Error msg -> Error msg
  | Ok q -> Ok (run ~graph ~ontology ?options ?limit q)
