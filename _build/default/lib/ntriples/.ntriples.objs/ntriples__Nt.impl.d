lib/ntriples/nt.ml: Buffer Fun Graphstore List Ontology String
