lib/ntriples/nt.mli: Graphstore Ontology
