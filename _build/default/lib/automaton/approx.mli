(** The APPROX transformation: [M_R → A_R].

    Approximate matching applies label edit operations to words of [L(R)]
    (Hurtado–Poulovassilis–Wood, ESWC 2009), each at a user-configurable
    cost:

    - {b insertion} (cost [ins]): at any state, consume one arbitrary edge —
      a wildcard [*] self-loop, the paper's compact encoding of one
      transition per label in [Sigma ∪ {type}] and their reversals;
    - {b deletion} (cost [del]): skip a required label — an ε-transition
      parallel to each symbol transition (removed later by {!Eps.remove});
    - {b substitution} (cost [sub]): consume one arbitrary edge instead of
      the required label — a wildcard transition parallel to each symbol
      transition.

    Repeated edits compound: a word at edit distance [k] from [L(R)] is
    accepted at cost equal to the cheapest edit script. *)

val transform : ins:int -> del:int -> sub:int -> Nfa.t -> Nfa.t
(** [transform ~ins ~del ~sub m] returns [A_R].  The input is not modified;
    the output still contains ε-transitions and must be passed through
    {!Eps.remove}. *)
