(** The RELAX transformation: [M_R → M^K_R].

    Ontology-driven relaxation (Poulovassilis–Wood, ISWC 2010) rewrites query
    labels using RDFS entailment over the ontology [K]:

    - {b rule (i), properties} (cost [beta] per step): a property [p] may be
      replaced by any (transitive) super-property [q] at cost
      [depth(p,q) × beta].  Because a query label [q] then matches every edge
      whose label is RDFS-entailed to be a [q]-edge, the added transition
      carries the {e down-closure} of [q] ({!Nfa.Sub_closure}).
    - {b rule (ii), domain/range} (cost [gamma]): a forward [p]-edge may be
      replaced by a [type] edge into [dom(p)]; a backward [p]-edge by a
      [type] edge into [range(p)] (from [(x,p,y)] RDFS infers
      [(x,type,dom p)] and [(y,type,range p)]).  The transition matches only
      the specific class node ({!Nfa.Type_to}).

    Rule (i) for {e classes} — replacing a class constant by a super-class —
    does not touch the automaton: it is applied when seeding the conjunct
    (procedure [Open] line 8, [GetAncestors]); see [Core.Conjunct]. *)

val transform :
  beta:int ->
  gamma:int ->
  ontology:Ontology.t ->
  class_node:(int -> int option) ->
  Nfa.t ->
  Nfa.t
(** [transform ~beta ~gamma ~ontology ~class_node m] returns [M^K_R].
    [class_node] maps an interned class label to the oid of the class node in
    the data graph (rule (ii) transitions are skipped for classes with no
    node).  The input is not modified; the output may contain ε-transitions
    if the input did. *)
