(** Reference word-level runner for weighted NFAs.

    Evaluates the automaton over an explicit word of (direction, label)
    symbols — i.e. over one concrete path of the data graph — returning the
    minimum accepting cost.  The query engine never uses this (it explores
    the product with the graph lazily); it exists as an executable
    specification against which the engine and the APPROX/RELAX
    transformations are property-tested. *)

type symbol = Nfa.dir * int

val matches : Nfa.tlabel -> symbol -> bool
(** Word-level transition-label matching.  [Type_to _] never matches a bare
    symbol (it constrains the target {e node}, which a word does not carry);
    graph-dependent behaviour is tested through the engine instead. *)

val min_cost : Nfa.t -> symbol list -> int option
(** [min_cost a w] is the least total cost (transition costs plus final-state
    weight) over all accepting runs of [a] on [w], or [None] if [w] is not
    accepted.  Handles automata that still contain weighted ε-transitions. *)

val accepts : Nfa.t -> symbol list -> bool
(** [accepts a w = (min_cost a w = Some 0)] for unweighted automata;
    in general, acceptance at any cost. *)
