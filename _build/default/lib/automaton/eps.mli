(** Weighted ε-transition removal.

    APPROX deletion operations are encoded as positively-weighted
    ε-transitions, so removal must take costs into account: the ε-closure of
    a state is computed with Dijkstra's algorithm over the ε-subgraph, and a
    state acquires (a) a copy of every non-ε transition reachable through the
    closure, with the closure distance added to its cost, and (b) a final
    weight when the closure reaches a final state — the paper's observation
    (§3.3, citing the Handbook of Weighted Automata) that "the removal of
    ε-transitions may result in final states having an additional, positive
    weight". *)

val remove : Nfa.t -> Nfa.t
(** [remove a] returns an equivalent automaton without ε-transitions.  The
    state numbering is preserved; unreachable states keep their (now unused)
    numbering.  The result is {!Nfa.normalize}d. *)
