(** Thompson construction: regular expression → weighted NFA [M_R].

    All transitions produced here have cost 0; APPROX/RELAX transformations
    add the positively-weighted ones afterwards, and {!Eps.remove} eliminates
    the ε-transitions before evaluation. *)

val of_regex : intern:(string -> int) -> Rpq_regex.Regex.t -> Nfa.t
(** [of_regex ~intern r] compiles [r], interning each label with [intern]
    (normally [Graphstore.Interner.intern (Graph.interner g)]).  The result
    has a single initial state and a single final state of weight 0, and
    contains ε-transitions. *)
