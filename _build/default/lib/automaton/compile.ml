module Graph = Graphstore.Graph

type mode =
  | Exact
  | Approx of { ins : int; del : int; sub : int }
  | Relax of { beta : int; gamma : int }

let pp_mode ppf = function
  | Exact -> Format.pp_print_string ppf "exact"
  | Approx { ins; del; sub } -> Format.fprintf ppf "APPROX(ins=%d,del=%d,sub=%d)" ins del sub
  | Relax { beta; gamma } -> Format.fprintf ppf "RELAX(beta=%d,gamma=%d)" beta gamma

let conjunct_automaton ~graph ~ontology ~mode r =
  let intern = Graphstore.Interner.intern (Graph.interner graph) in
  let m = Build.of_regex ~intern r in
  let transformed =
    match mode with
    | Exact -> m
    | Approx { ins; del; sub } -> Approx.transform ~ins ~del ~sub m
    | Relax { beta; gamma } ->
      let class_node c = Graph.find_node graph (Graphstore.Interner.name (Graph.interner graph) c) in
      Relax.transform ~beta ~gamma ~ontology ~class_node m
  in
  Eps.remove transformed
