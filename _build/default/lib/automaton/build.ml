(* Standard Thompson construction.  Each [compile] call returns the fragment's
   (entry, exit) states; ε-transitions glue fragments together. *)

let of_regex ~intern r =
  let a = Nfa.create () in
  let eps src dst = Nfa.add_transition a src Nfa.Eps 0 dst in
  let rec compile r =
    match (r : Rpq_regex.Regex.t) with
    | Eps ->
      let s = Nfa.fresh_state a in
      let f = Nfa.fresh_state a in
      eps s f;
      (s, f)
    | Lbl (d, name) ->
      let s = Nfa.fresh_state a in
      let f = Nfa.fresh_state a in
      Nfa.add_transition a s (Nfa.Sym (d, intern name)) 0 f;
      (s, f)
    | Any d ->
      let s = Nfa.fresh_state a in
      let f = Nfa.fresh_state a in
      Nfa.add_transition a s (Nfa.Any_dir d) 0 f;
      (s, f)
    | Seq (r1, r2) ->
      let s1, f1 = compile r1 in
      let s2, f2 = compile r2 in
      eps f1 s2;
      (s1, f2)
    | Alt (r1, r2) ->
      let s1, f1 = compile r1 in
      let s2, f2 = compile r2 in
      let s = Nfa.fresh_state a in
      let f = Nfa.fresh_state a in
      eps s s1;
      eps s s2;
      eps f1 f;
      eps f2 f;
      (s, f)
    | Star r ->
      let s1, f1 = compile r in
      let s = Nfa.fresh_state a in
      let f = Nfa.fresh_state a in
      eps s s1;
      eps s f;
      eps f1 s1;
      eps f1 f;
      (s, f)
    | Plus r ->
      let s1, f1 = compile r in
      let s = Nfa.fresh_state a in
      let f = Nfa.fresh_state a in
      eps s s1;
      eps f1 s1;
      eps f1 f;
      (s, f)
  in
  let entry, exit = compile r in
  (* State 0 pre-exists; route it into the fragment so the initial state is
     always 0. *)
  Nfa.add_transition a 0 Nfa.Eps 0 entry;
  Nfa.set_initial a 0;
  Nfa.set_final a exit 0;
  a
