type symbol = Nfa.dir * int

let matches (lbl : Nfa.tlabel) ((d, a) : symbol) =
  match lbl with
  | Nfa.Eps -> false
  | Nfa.Sym (d', a') -> d = d' && a = a'
  | Nfa.Any -> true
  | Nfa.Any_dir d' -> d = d'
  | Nfa.Sub_closure (d', ls) -> d = d' && Array.exists (fun l -> l = a) ls
  | Nfa.Type_to _ -> false

(* Dijkstra over configurations (state, position-in-word).  ε-transitions
   stay at the same position; symbol transitions advance by one.  The
   configuration space is tiny (|states| × (|w|+1)), so a sorted-list
   frontier is plenty. *)
let min_cost a w =
  let word = Array.of_list w in
  let len = Array.length word in
  let n = Nfa.n_states a in
  let dist = Array.make (n * (len + 1)) max_int in
  let idx s pos = (s * (len + 1)) + pos in
  let start = idx (Nfa.initial a) 0 in
  dist.(start) <- 0;
  let rec loop frontier =
    match frontier with
    | [] -> ()
    | (d, s, pos) :: rest ->
      if d > dist.(idx s pos) then loop rest
      else begin
        let push acc cost s' pos' =
          if cost < dist.(idx s' pos') then begin
            dist.(idx s' pos') <- cost;
            List.merge compare [ (cost, s', pos') ] acc
          end
          else acc
        in
        let rest =
          List.fold_left
            (fun acc (tr : Nfa.transition) ->
              match tr.lbl with
              | Nfa.Eps -> push acc (d + tr.cost) tr.dst pos
              | lbl ->
                if pos < len && matches lbl word.(pos) then push acc (d + tr.cost) tr.dst (pos + 1)
                else acc)
            rest (Nfa.out a s)
        in
        loop rest
      end
  in
  loop [ (0, Nfa.initial a, 0) ];
  let best = ref None in
  List.iter
    (fun (s, weight) ->
      let d = dist.(idx s len) in
      if d < max_int then
        let total = d + weight in
        match !best with
        | Some b when b <= total -> ()
        | _ -> best := Some total)
    (Nfa.finals a);
  !best

let accepts a w = min_cost a w <> None
