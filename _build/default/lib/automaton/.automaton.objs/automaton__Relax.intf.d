lib/automaton/relax.mli: Nfa Ontology
