lib/automaton/run.ml: Array List Nfa
