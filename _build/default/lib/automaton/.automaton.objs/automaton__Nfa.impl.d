lib/automaton/nfa.ml: Array Format Hashtbl List Printf Rpq_regex String
