lib/automaton/nfa.mli: Format Rpq_regex
