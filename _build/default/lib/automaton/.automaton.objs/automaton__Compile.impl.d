lib/automaton/compile.ml: Approx Build Eps Format Graphstore Relax
