lib/automaton/build.mli: Nfa Rpq_regex
