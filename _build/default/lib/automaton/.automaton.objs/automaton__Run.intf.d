lib/automaton/run.mli: Nfa
