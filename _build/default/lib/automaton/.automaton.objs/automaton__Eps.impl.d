lib/automaton/eps.ml: Hashtbl List Nfa
