lib/automaton/approx.ml: List Nfa
