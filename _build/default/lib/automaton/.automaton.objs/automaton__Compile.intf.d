lib/automaton/compile.mli: Format Graphstore Nfa Ontology Rpq_regex
