lib/automaton/eps.mli: Nfa
