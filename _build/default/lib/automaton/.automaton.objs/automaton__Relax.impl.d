lib/automaton/relax.ml: Array List Nfa Ontology
