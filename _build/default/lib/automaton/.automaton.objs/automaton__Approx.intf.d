lib/automaton/approx.mli: Nfa
