lib/automaton/build.ml: Nfa Rpq_regex
