(** End-to-end conjunct-automaton compilation (§3.3, step 1–2 of [Open]).

    Produces the evaluation-ready automaton for a conjunct's regular
    expression: Thompson construction, then the optional APPROX/RELAX
    transformation, then weighted ε-removal and normalisation. *)

type mode =
  | Exact
  | Approx of { ins : int; del : int; sub : int }
  | Relax of { beta : int; gamma : int }

val pp_mode : Format.formatter -> mode -> unit

val conjunct_automaton :
  graph:Graphstore.Graph.t -> ontology:Ontology.t -> mode:mode -> Rpq_regex.Regex.t -> Nfa.t
(** [conjunct_automaton ~graph ~ontology ~mode r] is [M_R], [A_R] or [M^K_R]
    (per [mode]), ε-free and normalised, with labels interned in [graph]'s
    interner. *)
