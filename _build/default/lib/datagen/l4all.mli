(** The L4All workload (§4.1): lifelong-learner timelines.

    The generator reproduces the paper's data-construction procedure:

    - an ontology with the five class hierarchies of Fig. 2 (Episode,
      Subject, Occupation, Education Qualification Level, Industry Sector)
      and the property hierarchy [next, prereq sp isEpisodeLink];
    - 21 base timelines (5 "detailed", 16 "realistic"), each a chronological
      chain of work/study episodes: every episode is [type]d by an Episode
      leaf class, linked to its successor by [next] or [prereq], and linked
      by [job]/[qualif] to an occupational/educational event node, itself
      classified ([type] into Occupation/Subject, [industry] into a sector,
      [level] into a qualification level);
    - scaling by the paper's own synthetic procedure: timeline [t ≥ 21]
      duplicates base [t mod 21] with every leaf classification rotated to
      the [(t / 21)]-th sibling class ("altering the classification of each
      episode to be a sibling class of its original class, for as many
      sibling classes as are present").

    Class membership edges ([type], [level], [industry]) are materialised
    transitively up their hierarchies — the paper attributes the growing
    degree of general class nodes to this transitive closure.

    Pinned features make the Fig. 4 query set meaningful at every scale:
    timeline 4's link structure gives query Q9 exactly one exact answer;
    timeline 7 carries the rare "Librarians" episodes (Q10/Q11); "BTEC
    Introductory Diploma" episodes never precede a [prereq] link, so Q12 has
    no exact answers while its RELAX version has some.  Exact answer counts
    differ from Fig. 5 (the real 21 timelines are not available) but their
    growth patterns — which drive the Fig. 6–8 execution-time shapes — are
    preserved; see EXPERIMENTS.md. *)

type scale = L1 | L2 | L3 | L4

val all_scales : scale list

val timelines : scale -> int
(** 143 / 1,201 / 5,221 / 11,416 — the paper's Fig. 3 row. *)

val scale_name : scale -> string

val generate : ?seed:int -> timelines:int -> unit -> Graphstore.Graph.t * Ontology.t
(** Deterministic for a given [seed] (default 1404). *)

val generate_scale : ?seed:int -> scale -> Graphstore.Graph.t * Ontology.t

(** {1 The Fig. 4 query set} *)

val queries : (int * string) list
(** [(1, "(Work Episode, type-, ?X)"); …] — the twelve conjuncts of Fig. 4,
    without operator prefix. *)

val query_text : int -> Core.Query.mode -> string
(** [query_text 3 Approx] is ["(?X) <- APPROX (Software Professionals,
    type-.job-, ?X)"].  Queries 4–7 have two variables and project both.
    @raise Invalid_argument for ids outside 1–12. *)

val stress_queries : int list
(** [[3; 8; 9; 10; 11; 12]] — the queries reported in Figs. 5–8. *)
