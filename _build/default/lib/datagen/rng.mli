(** Deterministic pseudo-random numbers (SplitMix64).

    The workload generators must produce identical graphs for identical
    seeds on every run and platform, so they use this self-contained
    generator instead of [Stdlib.Random] (whose default algorithm changed
    across OCaml releases). *)

type t

val create : int -> t
(** [create seed]. *)

val int : t -> int -> int
(** [int t bound]: uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound]: uniform in [\[0, bound)]. *)

val bool : t -> float -> bool
(** [bool t p]: true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element. @raise Invalid_argument on an empty array. *)

val pick_list : t -> 'a list -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val split : t -> t
(** A new generator seeded from this one's stream — lets sub-generators
    evolve independently of call order elsewhere. *)
