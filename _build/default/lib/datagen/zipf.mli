(** Zipf-distributed rank sampling.

    Real knowledge graphs such as YAGO have heavily skewed degree
    distributions; the YAGO-shaped generator draws hub entities (big cities,
    famous universities, well-connected airports) with this sampler. *)

type t

val create : n:int -> alpha:float -> t
(** Distribution over ranks [0 … n-1] with P(rank k) ∝ (k+1)^-alpha.
    @raise Invalid_argument if [n <= 0] or [alpha < 0]. *)

val sample : t -> Rng.t -> int
(** Draw a rank (0 is the most popular). *)

val n : t -> int
