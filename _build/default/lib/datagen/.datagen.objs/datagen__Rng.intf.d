lib/datagen/rng.mli:
