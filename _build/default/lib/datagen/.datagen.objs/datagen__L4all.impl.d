lib/datagen/l4all.ml: Array Core Graphstore List Ontology Printf Rng
