lib/datagen/yago_sim.ml: Array Core Graphstore List Ontology Printf Rng Zipf
