lib/datagen/yago_sim.mli: Core Graphstore Ontology
