lib/datagen/l4all.mli: Core Graphstore Ontology
