lib/datagen/zipf.ml: Array Float Rng
