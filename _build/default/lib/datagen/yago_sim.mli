(** A YAGO-shaped synthetic knowledge graph (§4.2).

    The original study imported YAGO's SIMPLETAX + CORE dumps (3.11M nodes,
    17.04M edges); those dumps are not redistributable here, so this
    generator produces a graph with the same structural signature, which is
    what drives the paper's Fig. 10/11 behaviour:

    - one class taxonomy of depth 2 with very large fan-out (the paper
      reports average fan-out 933.43 at full size; it scales with the graph);
    - 38 properties including [type], two property hierarchies with 6 and 2
      sub-properties ([relationLocatedByObject] over the location-flavoured
      properties, as in the paper's Example 3, and a small second one);
    - entity populations (people, cities, countries, institutions, events,
      buildings, movies, clubs, prizes, …) wired by the 20 properties the
      Fig. 9 query set touches, with Zipf-skewed hub degrees, plus filler
      properties to reach 38;
    - pinned landmarks so the constants of Fig. 9 exist and behave as in the
      paper: [Li_Peng]'s two-hop neighbourhood gives query Q2 exactly two
      exact answers; [UK] is the highest-ranked country;
      [Halle_Saxony-Anhalt] a high-rank city; [wordnet_ziggurat] a class of
      buildings that nothing is located in (Q3's exact answer set is empty);
      no [married] chains exist (Q4 returns nothing exactly).

    Everything is deterministic in [seed] and scales linearly in [scale]
    (1.0 ≈ the full YAGO size; the default 0.02 keeps the benchmark harness
    under a minute per query). *)

type params = {
  scale : float;
  seed : int;
}

val default_params : params
(** [{ scale = 0.02; seed = 2015 }]. *)

val generate : ?params:params -> unit -> Graphstore.Graph.t * Ontology.t

(** {1 The Fig. 9 query set} *)

val queries : (int * string) list
(** The nine conjuncts of Fig. 9, without operator prefix. *)

val query_text : int -> Core.Query.mode -> string
(** @raise Invalid_argument for ids outside 1–9. *)

val stress_queries : int list
(** [[2; 3; 4; 5; 9]] — the queries reported in Figs. 10–11. *)
