type t = { cumulative : float array }

let create ~n ~alpha =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if alpha < 0. then invalid_arg "Zipf.create: alpha must be non-negative";
  let cumulative = Array.make n 0. in
  let total = ref 0. in
  for k = 0 to n - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (k + 1)) alpha);
    cumulative.(k) <- !total
  done;
  Array.iteri (fun k v -> cumulative.(k) <- v /. !total) cumulative;
  { cumulative }

(* Binary search for the first rank whose cumulative mass covers u. *)
let sample t rng =
  let u = Rng.float rng 1.0 in
  let lo = ref 0 and hi = ref (Array.length t.cumulative - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let n t = Array.length t.cumulative
