(** Regular expressions over edge labels — the [R] in a query conjunct
    [(X, R, Y)].

    The grammar is the paper's (§2):
    {v
      R := ε | a | a- | _ | (R1 . R2) | (R1 | R2) | R* | R+
    v}
    where [a] ranges over [Sigma ∪ {type}], [a-] traverses an [a]-edge
    backwards, and [_] is the disjunction of all labels. *)

type dir = Fwd | Bwd

type t =
  | Eps  (** the empty word ε *)
  | Lbl of dir * string  (** a single edge traversal, forwards or backwards *)
  | Any of dir
      (** the wildcard [_]: any label.  The paper's [_] is the forward
          disjunction of all constants; the backward form [_-] arises from
          {!reverse} and is accepted by the parser for closure. *)
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t

(** {1 Smart constructors}
    These perform the cheap simplifications ([ε . r = r], [ε* = ε], …) that
    keep generated automata small without changing the denoted language. *)

val eps : t
val lbl : string -> t
val inv : string -> t
(** [inv a] is [a-]. *)

val any : t
(** Forward wildcard [_]. *)

(** [any_bwd] is the backward wildcard [_-]. *)
val any_bwd : t
val seq : t -> t -> t
val alt : t -> t -> t
val star : t -> t
val plus : t -> t
val seq_list : t list -> t
val alt_list : t list -> t
(** @raise Invalid_argument on the empty list. *)

(** {1 Operations} *)

val reverse : t -> t
(** [reverse r] denotes the reversed language with each step's direction
    flipped: a path matches [reverse r] from [y] to [x] iff it matches [r]
    from [x] to [y].  Used to transform a conjunct [(?X, R, C)] into
    [(C, R-, ?X)] (Open, case 2) — linear time, as in the paper. *)

val nullable : t -> bool
(** Does the language contain ε? *)

val labels : t -> string list
(** Distinct labels mentioned, sorted. *)

val size : t -> int
(** Number of AST nodes (a proxy for automaton size). *)

val top_level_alternatives : t -> t list
(** [top_level_alternatives r] flattens the outermost alternation:
    [R1|R2|R3] gives [[R1; R2; R3]], anything else gives [[r]].  This is the
    decomposition used by the "replacing alternation by disjunction"
    optimisation (§4.3). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints in the paper's concrete syntax; [to_string] of the result reparses
    to an equal AST (tested). *)

val to_string : t -> string
