lib/regex/regex.mli: Format
