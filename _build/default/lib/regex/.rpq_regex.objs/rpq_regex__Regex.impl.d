lib/regex/regex.ml: Format List Stdlib
