lib/regex/parser.mli: Regex
