lib/regex/parser.ml: Printf Regex String
