type dir = Fwd | Bwd

type t =
  | Eps
  | Lbl of dir * string
  | Any of dir
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t

let eps = Eps
let lbl a = Lbl (Fwd, a)
let inv a = Lbl (Bwd, a)
let any = Any Fwd
let any_bwd = Any Bwd

let seq r1 r2 =
  match (r1, r2) with
  | Eps, r | r, Eps -> r
  | _ -> Seq (r1, r2)

let alt r1 r2 = if r1 = r2 then r1 else Alt (r1, r2)

let star = function
  | Eps -> Eps
  | Star _ as r -> r
  | Plus r -> Star r
  | r -> Star r

let plus = function
  | Eps -> Eps
  | (Star _ | Plus _) as r -> r
  | r -> Plus r

(* Right-associated, matching the parser's associativity. *)
let seq_list rs = List.fold_right seq rs Eps

let alt_list = function
  | [] -> invalid_arg "Regex.alt_list: empty"
  | rs -> List.fold_right alt (List.filteri (fun i _ -> i < List.length rs - 1) rs)
            (List.nth rs (List.length rs - 1))

let flip = function Fwd -> Bwd | Bwd -> Fwd

let rec reverse = function
  | Eps -> Eps
  | Lbl (d, a) -> Lbl (flip d, a)
  | Any d -> Any (flip d)
  | Seq (r1, r2) -> Seq (reverse r2, reverse r1)
  | Alt (r1, r2) -> Alt (reverse r1, reverse r2)
  | Star r -> Star (reverse r)
  | Plus r -> Plus (reverse r)

let rec nullable = function
  | Eps | Star _ -> true
  | Lbl _ | Any _ -> false
  | Seq (r1, r2) -> nullable r1 && nullable r2
  | Alt (r1, r2) -> nullable r1 || nullable r2
  | Plus r -> nullable r

let labels r =
  let rec collect acc = function
    | Eps | Any _ -> acc
    | Lbl (_, a) -> a :: acc
    | Seq (r1, r2) | Alt (r1, r2) -> collect (collect acc r1) r2
    | Star r | Plus r -> collect acc r
  in
  List.sort_uniq compare (collect [] r)

let rec size = function
  | Eps | Lbl _ | Any _ -> 1
  | Seq (r1, r2) | Alt (r1, r2) -> 1 + size r1 + size r2
  | Star r | Plus r -> 1 + size r

let rec top_level_alternatives = function
  | Alt (r1, r2) -> top_level_alternatives r1 @ top_level_alternatives r2
  | r -> [ r ]

let equal (a : t) (b : t) = a = b
let compare = Stdlib.compare

(* Printing uses the paper's concrete syntax with minimal parenthesisation:
   alternation < concatenation < closure. *)
let rec pp_alt ppf = function
  | Alt (r1, r2) -> Format.fprintf ppf "%a|%a" pp_alt r1 pp_alt r2
  | r -> pp_seq ppf r

and pp_seq ppf = function
  | Seq (r1, r2) -> Format.fprintf ppf "%a.%a" pp_seq r1 pp_seq r2
  | Alt _ as r -> Format.fprintf ppf "(%a)" pp_alt r
  | r -> pp_post ppf r

and pp_post ppf = function
  | Star r -> Format.fprintf ppf "%a*" pp_atom r
  | Plus r -> Format.fprintf ppf "%a+" pp_atom r
  | r -> pp_atom ppf r

and pp_atom ppf = function
  | Eps -> Format.pp_print_string ppf "<eps>"
  | Lbl (Fwd, a) -> Format.pp_print_string ppf a
  | Lbl (Bwd, a) -> Format.fprintf ppf "%s-" a
  | Any Fwd -> Format.pp_print_char ppf '_'
  | Any Bwd -> Format.pp_print_string ppf "_-"
  | (Seq _ | Alt _ | Star _ | Plus _) as r -> Format.fprintf ppf "(%a)" pp_alt r

let pp = pp_alt
let to_string r = Format.asprintf "%a" pp r
