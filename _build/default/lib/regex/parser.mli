(** Parser for the paper's concrete regular-expression syntax.

    Grammar (whitespace between tokens is ignored):
    {v
      alt    ::= seq ('|' seq)*
      seq    ::= post ('.' post)*
      post   ::= atom ('-' | '*' | '+')*
      atom   ::= label | '_' | '<eps>' | '(' alt ')'
      label  ::= [A-Za-z0-9_'][A-Za-z0-9_']*   (not just '_')
    v}
    A postfix ['-'] on a label is the inverse traversal [a-]; on a compound
    atom it reverses the whole sub-expression (so [(R)-] is [Regex.reverse R],
    which coincides with [a-] for single labels). *)

exception Error of string * int
(** [Error (message, position)]: syntax error at byte offset [position]. *)

val parse : string -> Regex.t
(** @raise Error on malformed input. *)

val parse_result : string -> (Regex.t, string) result
(** Like {!parse} but returns a human-readable error instead of raising. *)
