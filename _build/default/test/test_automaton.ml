(* Tests for the weighted-automaton substrate: Thompson construction,
   weighted ε-removal, the APPROX/RELAX transformations, and the reference
   word runner — including property tests for the edit-distance semantics. *)

module R = Rpq_regex.Regex
module P = Rpq_regex.Parser
module Nfa = Automaton.Nfa
module Build = Automaton.Build
module Eps = Automaton.Eps
module Approx = Automaton.Approx
module Relax = Automaton.Relax
module Run = Automaton.Run

let check = Alcotest.check

(* A fixed little alphabet for word tests. *)
let interner = Graphstore.Interner.create ()
let intern = Graphstore.Interner.intern interner
let ids = List.map intern [ "a"; "b"; "c"; "d"; "e" ]
let id name = intern name

let nfa_of s = Build.of_regex ~intern (P.parse s)
let exact s = Eps.remove (nfa_of s)
let approx ?(ins = 1) ?(del = 1) ?(sub = 1) s = Eps.remove (Approx.transform ~ins ~del ~sub (nfa_of s))

let fwd n : Run.symbol = (Nfa.Fwd, id n)
let bwd n : Run.symbol = (Nfa.Bwd, id n)

(* --- construction + ε-removal: language tests ------------------------ *)

let accepts_cases =
  [
    ("a", [ fwd "a" ], true);
    ("a", [ fwd "b" ], false);
    ("a", [ bwd "a" ], false);
    ("a-", [ bwd "a" ], true);
    ("a-", [ fwd "a" ], false);
    ("<eps>", [], true);
    ("<eps>", [ fwd "a" ], false);
    ("a.b", [ fwd "a"; fwd "b" ], true);
    ("a.b", [ fwd "b"; fwd "a" ], false);
    ("a|b", [ fwd "b" ], true);
    ("a|b", [ fwd "c" ], false);
    ("a*", [], true);
    ("a*", [ fwd "a"; fwd "a"; fwd "a" ], true);
    ("a+", [], false);
    ("a+", [ fwd "a" ], true);
    ("_", [ fwd "e" ], true);
    ("_", [ bwd "e" ], false);
    ("_-", [ bwd "e" ], true);
    ("(a|b)*.c", [ fwd "a"; fwd "b"; fwd "c" ], true);
    ("(a|b)*.c", [ fwd "c" ], true);
    ("(a|b)*.c", [ fwd "a" ], false);
    ("(a.b)+", [ fwd "a"; fwd "b"; fwd "a"; fwd "b" ], true);
    ("(a.b)+", [ fwd "a"; fwd "b"; fwd "a" ], false);
  ]

let test_acceptance () =
  List.iter
    (fun (re, w, expected) ->
      check Alcotest.bool
        (Printf.sprintf "%s on %d-symbol word" re (List.length w))
        expected
        (Run.accepts (exact re) w))
    accepts_cases

let test_eps_removal_equivalence () =
  (* ε-removal preserves the language (cost 0 everywhere for exact). *)
  List.iter
    (fun (re, w, expected) ->
      check Alcotest.bool (re ^ " pre-removal") expected (Run.accepts (nfa_of re) w);
      check Alcotest.(option int) (re ^ " cost")
        (if expected then Some 0 else None)
        (Run.min_cost (exact re) w))
    accepts_cases

let test_eps_removal_no_eps () =
  List.iter
    (fun (re, _, _) -> check Alcotest.bool (re ^ " eps-free") false (Nfa.has_eps (exact re)))
    accepts_cases

(* random word generator over the 5-letter alphabet, both directions *)
let gen_word =
  QCheck2.Gen.(
    list_size (int_bound 8)
      (map2
         (fun dir l -> ((if dir then Nfa.Fwd else Nfa.Bwd), List.nth ids l))
         bool (int_bound 4)))

let gen_regex_string =
  (* regexes assembled from a fixed set of combinators, as strings *)
  QCheck2.Gen.(
    sized (fun n ->
        let rec gen n =
          if n <= 1 then
            oneof [ return "a"; return "b"; return "c"; return "a-"; return "b-"; return "_" ]
          else
            oneof
              [
                map2 (fun x y -> Printf.sprintf "(%s.%s)" x y) (gen (n / 2)) (gen (n / 2));
                map2 (fun x y -> Printf.sprintf "(%s|%s)" x y) (gen (n / 2)) (gen (n / 2));
                map (Printf.sprintf "(%s)*") (gen (n / 2));
                map (Printf.sprintf "(%s)+") (gen (n / 2));
              ]
        in
        gen (min n 12)))

let eps_removal_equiv_prop =
  QCheck2.Test.make ~name:"ε-removal preserves min-cost on random regex/word" ~count:300
    QCheck2.Gen.(pair gen_regex_string gen_word)
    (fun (re, w) ->
      let with_eps = nfa_of re in
      Run.min_cost with_eps w = Run.min_cost (Eps.remove with_eps) w)

(* --- APPROX: edit-distance semantics --------------------------------- *)

let test_approx_exact_zero () =
  check Alcotest.(option int) "exact word costs 0" (Some 0)
    (Run.min_cost (approx "a.b") [ fwd "a"; fwd "b" ])

let test_approx_substitution () =
  check Alcotest.(option int) "one substitution" (Some 1)
    (Run.min_cost (approx "a.b") [ fwd "a"; fwd "c" ]);
  check Alcotest.(option int) "direction flip is a substitution" (Some 1)
    (Run.min_cost (approx "a.b") [ fwd "a"; bwd "b" ])

let test_approx_deletion () =
  check Alcotest.(option int) "drop one label" (Some 1) (Run.min_cost (approx "a.b") [ fwd "a" ]);
  check Alcotest.(option int) "drop both" (Some 2) (Run.min_cost (approx "a.b") [])

let test_approx_insertion () =
  check Alcotest.(option int) "one extra symbol" (Some 1)
    (Run.min_cost (approx "a.b") [ fwd "a"; fwd "c"; fwd "b" ]);
  check Alcotest.(option int) "extra at the start" (Some 1)
    (Run.min_cost (approx "a") [ fwd "d"; fwd "a" ])

let test_approx_costs_respected () =
  let a = approx ~ins:5 ~del:3 ~sub:2 "a.b" in
  check Alcotest.(option int) "substitution cost" (Some 2) (Run.min_cost a [ fwd "a"; fwd "c" ]);
  check Alcotest.(option int) "deletion cost" (Some 3) (Run.min_cost a [ fwd "a" ]);
  check Alcotest.(option int) "insertion cost" (Some 5)
    (Run.min_cost a [ fwd "a"; fwd "c"; fwd "b" ]);
  (* a mismatch may choose the cheapest repair: sub (2) vs del+ins (8) *)
  check Alcotest.(option int) "cheapest script" (Some 4) (Run.min_cost a [ fwd "c"; fwd "d" ])

(* Reference Levenshtein between two symbol words (unit costs). *)
let levenshtein u v =
  let u = Array.of_list u and v = Array.of_list v in
  let n = Array.length u and m = Array.length v in
  let d = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = 0 to n do
    d.(i).(0) <- i
  done;
  for j = 0 to m do
    d.(0).(j) <- j
  done;
  for i = 1 to n do
    for j = 1 to m do
      let cost = if u.(i - 1) = v.(j - 1) then 0 else 1 in
      d.(i).(j) <- min (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1)) (d.(i - 1).(j - 1) + cost)
    done
  done;
  d.(n).(m)

(* For a regex that denotes a single word (concatenation of symbols), the
   APPROX automaton's min cost must equal the Levenshtein distance. *)
let approx_equals_levenshtein =
  QCheck2.Test.make ~name:"APPROX cost = Levenshtein on single-word regexes" ~count:300
    QCheck2.Gen.(pair (list_size (int_bound 6) (int_bound 4)) gen_word)
    (fun (pattern, w) ->
      let symbols = List.map (fun i -> List.nth [ "a"; "b"; "c"; "d"; "e" ] i) pattern in
      let re = if symbols = [] then "<eps>" else String.concat "." symbols in
      let a = approx re in
      let target = List.map (fun s -> (Nfa.Fwd, id s)) symbols in
      Run.min_cost a w = Some (levenshtein target w))

(* Mutating an accepted word k times costs at most k. *)
let approx_bounded_by_edits =
  QCheck2.Test.make ~name:"k edits cost at most k" ~count:300
    QCheck2.Gen.(triple gen_regex_string gen_word (int_bound 3))
    (fun (re, w, k) ->
      let exact_nfa = exact re in
      match Run.min_cost exact_nfa w with
      | None -> QCheck2.assume_fail ()
      | Some 0 ->
        (* apply k substitutions at random positions (deterministic here:
           rotate each symbol's label) *)
        let arr = Array.of_list w in
        let edits = min k (Array.length arr) in
        for i = 0 to edits - 1 do
          let d, l = arr.(i) in
          arr.(i) <- (d, List.nth ids ((l + 1) mod 5))
        done;
        let mutated = Array.to_list arr in
        let cost = Run.min_cost (approx re) mutated in
        (match cost with Some c -> c <= edits | None -> false)
      | Some _ -> QCheck2.assume_fail ())

(* --- RELAX ------------------------------------------------------------ *)

let relax_fixture () =
  let k = Ontology.create interner in
  Ontology.add_subproperty k "a" "p";
  Ontology.add_subproperty k "b" "p";
  Ontology.add_subproperty k "p" "top";
  Ontology.add_domain k "a" "A";
  Ontology.add_range k "a" "B";
  k

let relax ?(beta = 1) ?(gamma = 1) ?(class_node = fun _ -> None) k s =
  Eps.remove (Relax.transform ~beta ~gamma ~ontology:k ~class_node (nfa_of s))

let test_relax_superproperty_closure () =
  let k = relax_fixture () in
  let a = relax k "a" in
  (* relaxing a -> p matches b (p's down-closure) at cost 1 *)
  check Alcotest.(option int) "own label still 0" (Some 0) (Run.min_cost a [ fwd "a" ]);
  check Alcotest.(option int) "sibling via parent" (Some 1) (Run.min_cost a [ fwd "b" ]);
  check Alcotest.(option int) "unrelated" None (Run.min_cost a [ fwd "c" ])

let test_relax_transitive_cost () =
  let k = relax_fixture () in
  let a = relax ~beta:2 k "a" in
  (* two steps up (a -> p -> top) cost 2*beta; top's closure includes a,b,p *)
  check Alcotest.(option int) "one step" (Some 2) (Run.min_cost a [ fwd "b" ]);
  (* the label p itself is matched by relaxing one step (p's closure has p) *)
  check Alcotest.(option int) "parent label" (Some 2) (Run.min_cost a [ fwd "p" ])

let test_relax_direction_preserved () =
  let k = relax_fixture () in
  let a = relax k "a-" in
  check Alcotest.(option int) "backward sibling" (Some 1) (Run.min_cost a [ bwd "b" ]);
  check Alcotest.(option int) "forward sibling rejected" None (Run.min_cost a [ fwd "b" ])

let test_relax_rule2_transitions () =
  let k = relax_fixture () in
  let a = Relax.transform ~beta:1 ~gamma:3 ~ontology:k ~class_node:(fun c ->
              if Graphstore.Interner.name interner c = "A" then Some 77 else Some 88)
            (nfa_of "a")
  in
  (* forward a: a Type_to(dom A = node 77) transition at cost 3 must exist *)
  let found = ref false in
  Nfa.iter_transitions a (fun _ tr ->
      match tr.Nfa.lbl with
      | Nfa.Type_to 77 when tr.Nfa.cost = 3 -> found := true
      | _ -> ());
  check Alcotest.bool "rule (ii) transition present" true !found

let test_relax_ignores_non_properties () =
  let k = relax_fixture () in
  let plain = exact "c" in
  let relaxed = relax k "c" in
  check Alcotest.int "same transition count" (Nfa.n_transitions plain) (Nfa.n_transitions relaxed)

(* --- Nfa odds and ends ------------------------------------------------ *)

let test_nfa_normalize_dedup () =
  let a = Nfa.create () in
  let s1 = Nfa.fresh_state a in
  Nfa.add_transition a 0 (Nfa.Sym (Nfa.Fwd, 1)) 5 s1;
  Nfa.add_transition a 0 (Nfa.Sym (Nfa.Fwd, 1)) 2 s1;
  Nfa.add_transition a 0 (Nfa.Sym (Nfa.Fwd, 1)) 7 s1;
  Nfa.normalize a;
  match Nfa.out a 0 with
  | [ tr ] -> check Alcotest.int "kept the cheapest" 2 tr.Nfa.cost
  | l -> Alcotest.failf "expected 1 transition, got %d" (List.length l)

let test_nfa_final_weights () =
  let a = Nfa.create () in
  Nfa.set_final a 0 5;
  Nfa.set_final a 0 3;
  check Alcotest.(option int) "min weight kept" (Some 3) (Nfa.final_weight a 0);
  Nfa.set_final a 0 9;
  check Alcotest.(option int) "higher weight ignored" (Some 3) (Nfa.final_weight a 0);
  Nfa.clear_final a 0;
  check Alcotest.bool "cleared" false (Nfa.is_final a 0)

let test_nfa_negative_cost_rejected () =
  let a = Nfa.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Nfa.add_transition: negative cost") (fun () ->
      Nfa.add_transition a 0 Nfa.Any (-1) 0)

let test_approx_final_weight_from_deletion () =
  (* deleting every label of "a.b" makes the initial state final with
     weight 2 after ε-removal (Droste-Kuich-Vogler weighted finals) *)
  let a = approx "a.b" in
  check Alcotest.(option int) "initial final weight" (Some 2) (Nfa.final_weight a (Nfa.initial a))

let () =
  Alcotest.run "automaton"
    [
      ( "thompson+eps",
        [
          Alcotest.test_case "acceptance" `Quick test_acceptance;
          Alcotest.test_case "eps-removal equivalence" `Quick test_eps_removal_equivalence;
          Alcotest.test_case "eps-free output" `Quick test_eps_removal_no_eps;
          QCheck_alcotest.to_alcotest eps_removal_equiv_prop;
        ] );
      ( "approx",
        [
          Alcotest.test_case "exact costs zero" `Quick test_approx_exact_zero;
          Alcotest.test_case "substitution" `Quick test_approx_substitution;
          Alcotest.test_case "deletion" `Quick test_approx_deletion;
          Alcotest.test_case "insertion" `Quick test_approx_insertion;
          Alcotest.test_case "configurable costs" `Quick test_approx_costs_respected;
          Alcotest.test_case "deletion final weight" `Quick test_approx_final_weight_from_deletion;
          QCheck_alcotest.to_alcotest approx_equals_levenshtein;
          QCheck_alcotest.to_alcotest approx_bounded_by_edits;
        ] );
      ( "relax",
        [
          Alcotest.test_case "super-property closure" `Quick test_relax_superproperty_closure;
          Alcotest.test_case "transitive cost" `Quick test_relax_transitive_cost;
          Alcotest.test_case "direction preserved" `Quick test_relax_direction_preserved;
          Alcotest.test_case "rule (ii) transitions" `Quick test_relax_rule2_transitions;
          Alcotest.test_case "non-properties untouched" `Quick test_relax_ignores_non_properties;
        ] );
      ( "nfa",
        [
          Alcotest.test_case "normalize dedups" `Quick test_nfa_normalize_dedup;
          Alcotest.test_case "final weights" `Quick test_nfa_final_weights;
          Alcotest.test_case "negative cost rejected" `Quick test_nfa_negative_cost_rejected;
        ] );
    ]
