(* Tests for RDFS forward-chaining saturation (rdfs2/3/7/9) and its
   interplay with the RELAX operator. *)

module Graph = Graphstore.Graph

let check = Alcotest.check

let fixture () =
  let g = Graph.create () in
  let x = Graph.add_node g "x"
  and y = Graph.add_node g "y"
  and student = Graph.add_node g "Student" in
  Graph.add_edge_s g x "type" student;
  Graph.add_edge_s g x "supervises" y;
  let k = Ontology.create (Graph.interner g) in
  Ontology.add_subclass k "Student" "Person";
  Ontology.add_subclass k "Person" "Agent";
  Ontology.add_subproperty k "supervises" "knows";
  Ontology.add_subproperty k "knows" "relatesTo";
  Ontology.add_domain k "supervises" "Academic";
  Ontology.add_range k "supervises" "Student";
  (g, k)

let has_edge g src label dst =
  match (Graph.find_node g src, Graph.find_node g dst) with
  | Some s, Some d ->
    let l = Graphstore.Interner.intern (Graph.interner g) label in
    Graph.mem_edge g s l d
  | _ -> false

let test_rdfs9_type_closure () =
  let g, k = fixture () in
  let stats = Rdfs.saturate ~subproperty:false ~domain_range:false g k in
  check Alcotest.bool "x type Person" true (has_edge g "x" "type" "Person");
  check Alcotest.bool "x type Agent" true (has_edge g "x" "type" "Agent");
  check Alcotest.int "two type edges added" 2 stats.Rdfs.type_edges_added;
  check Alcotest.int "no property edges" 0 stats.Rdfs.property_edges_added

let test_rdfs7_subproperty () =
  let g, k = fixture () in
  let stats = Rdfs.saturate ~subclass:false ~domain_range:false g k in
  check Alcotest.bool "x knows y" true (has_edge g "x" "knows" "y");
  check Alcotest.bool "x relatesTo y" true (has_edge g "x" "relatesTo" "y");
  check Alcotest.int "two property edges" 2 stats.Rdfs.property_edges_added

let test_rdfs2_3_domain_range () =
  let g, k = fixture () in
  let stats = Rdfs.saturate ~subclass:false ~subproperty:false g k in
  check Alcotest.bool "x type Academic (domain)" true (has_edge g "x" "type" "Academic");
  check Alcotest.bool "y type Student (range)" true (has_edge g "y" "type" "Student");
  check Alcotest.int "two type edges" 2 stats.Rdfs.type_edges_added

let test_domain_range_feeds_subclass () =
  let g, k = fixture () in
  ignore (Rdfs.saturate g k);
  (* y type Student from rdfs3, then rdfs9 lifts it up the hierarchy *)
  check Alcotest.bool "y type Person" true (has_edge g "y" "type" "Person");
  check Alcotest.bool "y type Agent" true (has_edge g "y" "type" "Agent")

let test_idempotent () =
  let g, k = fixture () in
  ignore (Rdfs.saturate g k);
  let before = Graph.n_edges g in
  let stats = Rdfs.saturate g k in
  check Alcotest.int "no new type edges" 0 stats.Rdfs.type_edges_added;
  check Alcotest.int "no new property edges" 0 stats.Rdfs.property_edges_added;
  check Alcotest.int "edge count stable" before (Graph.n_edges g)

let test_no_duplicates () =
  let g, k = fixture () in
  (* pre-assert an entailed edge: saturation must not duplicate it *)
  let x = Option.get (Graph.find_node g "x") and y = Option.get (Graph.find_node g "y") in
  Graph.add_edge_s g x "knows" y;
  ignore (Rdfs.saturate g k);
  let knows = Graphstore.Interner.intern (Graph.interner g) "knows" in
  check Alcotest.int "single knows edge" 1 (List.length (Graph.neighbors g x knows Graph.Out))

(* Saturation + exact sub-property query ⊆ RELAX on the unsaturated graph:
   every rdfs7 answer is a RELAX answer at distance ≤ depth × beta. *)
let test_saturation_vs_relax () =
  let g, k = fixture () in
  let saturated_g, saturated_k = fixture () in
  ignore (Rdfs.saturate ~subclass:false ~domain_range:false saturated_g saturated_k);
  let answers graph ontology q =
    match Core.Engine.run_string ~graph ~ontology ~limit:100 q with
    | Ok o ->
      List.map (fun (a : Core.Engine.answer) -> List.assoc "Y" a.Core.Engine.bindings)
        o.Core.Engine.answers
      |> List.sort compare
    | Error m -> Alcotest.fail m
  in
  let exact_saturated = answers saturated_g saturated_k "(?Y) <- (x, knows, ?Y)" in
  let relaxed = answers g k "(?Y) <- RELAX (x, supervises, ?Y)" in
  List.iter
    (fun v -> check Alcotest.bool ("relax finds " ^ v) true (List.mem v relaxed))
    exact_saturated

let () =
  Alcotest.run "rdfs"
    [
      ( "rules",
        [
          Alcotest.test_case "rdfs9 subclass" `Quick test_rdfs9_type_closure;
          Alcotest.test_case "rdfs7 subproperty" `Quick test_rdfs7_subproperty;
          Alcotest.test_case "rdfs2/3 domain+range" `Quick test_rdfs2_3_domain_range;
          Alcotest.test_case "dom/range feeds subclass" `Quick test_domain_range_feeds_subclass;
        ] );
      ( "properties",
        [
          Alcotest.test_case "idempotent" `Quick test_idempotent;
          Alcotest.test_case "no duplicates" `Quick test_no_duplicates;
          Alcotest.test_case "saturation vs RELAX" `Quick test_saturation_vs_relax;
        ] );
    ]
