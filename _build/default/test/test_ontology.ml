(* Tests for the RDFS-fragment ontology: hierarchies, closures, GetAncestors
   ordering, domain/range, and the Fig. 2-style statistics. *)

module Interner = Graphstore.Interner

let check = Alcotest.check

(*            Thing
             /     \
          Agent   Place
          /   \       \
      Person  Org    City
        |
     Student                                                       *)
let fixture () =
  let interner = Interner.create () in
  let k = Ontology.create interner in
  Ontology.add_subclass k "Agent" "Thing";
  Ontology.add_subclass k "Place" "Thing";
  Ontology.add_subclass k "Person" "Agent";
  Ontology.add_subclass k "Org" "Agent";
  Ontology.add_subclass k "City" "Place";
  Ontology.add_subclass k "Student" "Person";
  Ontology.add_subproperty k "knows" "relatesTo";
  Ontology.add_subproperty k "likes" "relatesTo";
  Ontology.add_subproperty k "relatesTo" "any";
  Ontology.add_domain k "knows" "Person";
  Ontology.add_range k "knows" "Agent";
  (interner, k)

let names interner ids = List.map (Interner.name interner) ids

let test_membership () =
  let interner, k = fixture () in
  let id = Interner.intern interner in
  check Alcotest.bool "Person is class" true (Ontology.is_class k (id "Person"));
  check Alcotest.bool "knows is property" true (Ontology.is_property k (id "knows"));
  check Alcotest.bool "Person is not property" false (Ontology.is_property k (id "Person"));
  check Alcotest.bool "unknown" false (Ontology.is_class k (id "Banana"));
  check Alcotest.int "seven classes + dom/range add none new" 7 (List.length (Ontology.classes k));
  check Alcotest.int "four properties" 4 (List.length (Ontology.properties k))

let test_immediate_relations () =
  let interner, k = fixture () in
  let id = Interner.intern interner in
  check Alcotest.(list string) "supers of Person" [ "Agent" ]
    (names interner (Ontology.super_classes k (id "Person")));
  check Alcotest.(list string) "subs of Agent (sorted by id)" [ "Person"; "Org" ]
    (names interner (Ontology.sub_classes k (id "Agent")));
  check Alcotest.(list string) "supers of knows" [ "relatesTo" ]
    (names interner (Ontology.super_properties k (id "knows")))

let test_ancestors_by_specificity () =
  let interner, k = fixture () in
  let id = Interner.intern interner in
  let result = Ontology.ancestors_by_specificity k (id "Student") in
  check
    Alcotest.(list (pair string int))
    "self first, then by increasing depth"
    [ ("Student", 0); ("Person", 1); ("Agent", 2); ("Thing", 3) ]
    (List.map (fun (c, d) -> (Interner.name interner c, d)) result)

let test_ancestors_of_root () =
  let interner, k = fixture () in
  let id = Interner.intern interner in
  check Alcotest.int "root has only itself" 1
    (List.length (Ontology.ancestors_by_specificity k (id "Thing")))

let test_descendants () =
  let interner, k = fixture () in
  let id = Interner.intern interner in
  let ds = names interner (Ontology.class_descendants k (id "Agent")) in
  check Alcotest.(list string) "agent closure" [ "Agent"; "Person"; "Org"; "Student" ] ds

let test_sub_properties_closure () =
  let interner, k = fixture () in
  let id = Interner.intern interner in
  let closure = names interner (Ontology.sub_properties_closure k (id "relatesTo")) in
  check Alcotest.(list string) "closure" [ "relatesTo"; "knows"; "likes" ] closure;
  check Alcotest.(list string) "leaf closure is itself" [ "likes" ]
    (names interner (Ontology.sub_properties_closure k (id "likes")))

let test_property_ancestors () =
  let interner, k = fixture () in
  let id = Interner.intern interner in
  check
    Alcotest.(list (pair string int))
    "two steps up"
    [ ("knows", 0); ("relatesTo", 1); ("any", 2) ]
    (List.map
       (fun (p, d) -> (Interner.name interner p, d))
       (Ontology.property_ancestors k (id "knows")))

let test_domain_range () =
  let interner, k = fixture () in
  let id = Interner.intern interner in
  check Alcotest.(option string) "domain" (Some "Person")
    (Option.map (Interner.name interner) (Ontology.domain k (id "knows")));
  check Alcotest.(option string) "range" (Some "Agent")
    (Option.map (Interner.name interner) (Ontology.range k (id "knows")));
  check Alcotest.(option string) "no domain" None
    (Option.map (Interner.name interner) (Ontology.domain k (id "likes")))

let test_roots () =
  let interner, k = fixture () in
  check Alcotest.(list string) "class roots" [ "Thing" ] (names interner (Ontology.class_roots k));
  check Alcotest.(list string) "property roots" [ "any" ]
    (names interner (Ontology.property_roots k))

let test_hierarchy_stats () =
  let interner, k = fixture () in
  let id = Interner.intern interner in
  let s = Ontology.class_hierarchy_stats k (id "Thing") in
  check Alcotest.int "depth" 3 s.Ontology.depth;
  check Alcotest.int "members" 7 s.Ontology.members;
  (* internal nodes: Thing(2), Agent(2), Place(1), Person(1) -> 6/4 *)
  check (Alcotest.float 0.001) "avg fanout" 1.5 s.Ontology.avg_fanout

let test_diamond_hierarchy () =
  (* multiple inheritance: the BFS depth is the shortest path *)
  let interner = Interner.create () in
  let k = Ontology.create interner in
  Ontology.add_subclass k "D" "B";
  Ontology.add_subclass k "D" "C";
  Ontology.add_subclass k "B" "A";
  Ontology.add_subclass k "C" "A";
  Ontology.add_subclass k "C" "X";
  Ontology.add_subclass k "X" "A";
  let id = Interner.intern interner in
  let result =
    List.map
      (fun (c, d) -> (Interner.name interner c, d))
      (Ontology.ancestors_by_specificity k (id "D"))
  in
  check Alcotest.(list (pair string int)) "shortest depths"
    [ ("D", 0); ("B", 1); ("C", 1); ("A", 2); ("X", 2) ]
    result

let test_duplicate_edges_ignored () =
  let interner = Interner.create () in
  let k = Ontology.create interner in
  Ontology.add_subclass k "B" "A";
  Ontology.add_subclass k "B" "A";
  let id = Interner.intern interner in
  check Alcotest.int "one super" 1 (List.length (Ontology.super_classes k (id "B")))

let () =
  Alcotest.run "ontology"
    [
      ( "structure",
        [
          Alcotest.test_case "membership" `Quick test_membership;
          Alcotest.test_case "immediate relations" `Quick test_immediate_relations;
          Alcotest.test_case "duplicate edges" `Quick test_duplicate_edges_ignored;
          Alcotest.test_case "domain/range" `Quick test_domain_range;
          Alcotest.test_case "roots" `Quick test_roots;
        ] );
      ( "closures",
        [
          Alcotest.test_case "ancestors by specificity" `Quick test_ancestors_by_specificity;
          Alcotest.test_case "root ancestors" `Quick test_ancestors_of_root;
          Alcotest.test_case "descendants" `Quick test_descendants;
          Alcotest.test_case "sub-property closure" `Quick test_sub_properties_closure;
          Alcotest.test_case "property ancestors" `Quick test_property_ancestors;
          Alcotest.test_case "diamond shortest depth" `Quick test_diamond_hierarchy;
        ] );
      ("stats", [ Alcotest.test_case "hierarchy stats" `Quick test_hierarchy_stats ]);
    ]
