(* Property tests pitting the full engine (Open/GetNext/Succ, D_R, seeder,
   visited set, evaluation strategies) against an independent reference
   evaluator: a plain Dijkstra over the explicit product of the compiled
   automaton and the data graph.  The two share only the automaton
   compilation, so these properties exercise all of the engine's physical
   machinery on random graphs and queries. *)

module Graph = Graphstore.Graph
module Nfa = Automaton.Nfa
module Q = Core.Query
module R = Rpq_regex.Regex

let labels = [ "p"; "q"; "r"; "type" ]

(* --- random instances ------------------------------------------------- *)

type instance = {
  n_nodes : int;
  edges : (int * string * int) list;
  regex : R.t;
  mode : Q.mode;
  subj_const : int option; (* Some i: subject is node i; None: variable *)
}

let gen_regex =
  QCheck2.Gen.(
    sized (fun size ->
        let rec gen n =
          if n <= 1 then
            oneof
              [
                return (R.lbl "p"); return (R.lbl "q"); return (R.lbl "r");
                return (R.inv "p"); return (R.inv "q"); return R.any;
                return (R.lbl "type"); return (R.inv "type");
              ]
          else
            oneof
              [
                map2 R.seq (gen (n / 2)) (gen (n / 2));
                map2 R.alt (gen (n / 2)) (gen (n / 2));
                map R.star (gen (n / 2));
                map R.plus (gen (n / 2));
              ]
        in
        gen (min size 8)))

let gen_instance ~mode =
  QCheck2.Gen.(
    let* n_nodes = int_range 2 8 in
    let* edges =
      list_size (int_range 1 16)
        (triple (int_bound (n_nodes - 1))
           (map (List.nth labels) (int_bound 3))
           (int_bound (n_nodes - 1)))
    in
    let* regex = gen_regex in
    let* subj_const = option (int_bound (n_nodes - 1)) in
    return { n_nodes; edges; regex; mode; subj_const })

let node_name i = Printf.sprintf "n%d" i

let build instance =
  let g = Graph.create () in
  for i = 0 to instance.n_nodes - 1 do
    ignore (Graph.add_node g (node_name i))
  done;
  List.iter (fun (s, l, d) -> Graph.add_edge_s g s l d) instance.edges;
  let k = Ontology.create (Graph.interner g) in
  (* a small property hierarchy so RELAX has something to do *)
  Ontology.add_subproperty k "p" "super";
  Ontology.add_subproperty k "q" "super";
  Ontology.add_domain k "p" "n0";
  Ontology.add_range k "p" "n1";
  (g, k)

(* --- the reference evaluator ------------------------------------------ *)

(* Independent label matching: scans the whole edge list instead of using
   the store's indexes. *)
let ref_neighbours g n (lbl : Nfa.tlabel) =
  let type_l = Graph.type_label g in
  let acc = ref [] in
  Graph.iter_edges g (fun src l dst ->
      let matches =
        match lbl with
        | Nfa.Eps -> false
        | Nfa.Sym (Fwd, a) -> l = a && src = n
        | Nfa.Sym (Bwd, a) -> l = a && dst = n
        | Nfa.Any -> src = n || dst = n
        | Nfa.Any_dir Fwd -> src = n
        | Nfa.Any_dir Bwd -> dst = n
        | Nfa.Sub_closure (Fwd, ls) -> src = n && Array.exists (fun x -> x = l) ls
        | Nfa.Sub_closure (Bwd, ls) -> dst = n && Array.exists (fun x -> x = l) ls
        | Nfa.Type_to c -> l = type_l && src = n && dst = c
      in
      if matches then begin
        match lbl with
        | Nfa.Any ->
          if src = n then acc := dst :: !acc;
          if dst = n then acc := src :: !acc
        | Nfa.Sym (Bwd, _) | Nfa.Any_dir Bwd | Nfa.Sub_closure (Bwd, _) -> acc := src :: !acc
        | _ -> acc := dst :: !acc
      end);
  !acc

(* Dijkstra over (node, state) from one start node. *)
let ref_distances g nfa start =
  let n_states = Nfa.n_states nfa in
  let dist = Hashtbl.create 64 in
  let key n s = (n * n_states) + s in
  Hashtbl.add dist (key start (Nfa.initial nfa)) 0;
  let rec loop frontier =
    match frontier with
    | [] -> ()
    | (d, n, s) :: rest ->
      if d > Hashtbl.find dist (key n s) then loop rest
      else begin
        let rest =
          List.fold_left
            (fun acc (tr : Nfa.transition) ->
              List.fold_left
                (fun acc m ->
                  let nd = d + tr.Nfa.cost in
                  let better =
                    match Hashtbl.find_opt dist (key m tr.Nfa.dst) with
                    | None -> true
                    | Some old -> nd < old
                  in
                  if better then begin
                    Hashtbl.replace dist (key m tr.Nfa.dst) nd;
                    List.merge compare [ (nd, m, tr.Nfa.dst) ] acc
                  end
                  else acc)
                acc
                (ref_neighbours g n tr.Nfa.lbl))
            rest (Nfa.out nfa s)
        in
        loop rest
      end
  in
  loop [ (0, start, Nfa.initial nfa) ];
  dist

(* All (x, y, distance) answers of a conjunct, by reference evaluation. *)
let ref_answers g k options (conjunct : Q.conjunct) =
  let mode = Core.Options.compile_mode options conjunct.Q.cmode in
  let nfa = Automaton.Compile.conjunct_automaton ~graph:g ~ontology:k ~mode conjunct.Q.regex in
  let n_states = Nfa.n_states nfa in
  let starts =
    match conjunct.Q.subj with
    | Q.Const c -> (
      match Graph.find_node g c with
      | Some oid ->
        (* RELAX class-ancestor seeding: the only class-named nodes in these
           instances (n0, n1, via dom/range) have no super-classes, so the
           ancestor seed set is always just the node itself at cost 0 *)
        [ (oid, 0) ]
      | None -> [])
    | Q.Var _ -> List.init (Graph.n_nodes g) (fun i -> (i, 0))
  in
  let best = Hashtbl.create 64 in
  List.iter
    (fun (v, seed_cost) ->
      let dist = ref_distances g nfa v in
      Graph.iter_nodes g (fun n ->
          List.iter
            (fun (s, weight) ->
              match Hashtbl.find_opt dist ((n * n_states) + s) with
              | Some d ->
                let total = seed_cost + d + weight in
                let keep =
                  match Hashtbl.find_opt best (v, n) with None -> true | Some t -> total < t
                in
                if keep then Hashtbl.replace best (v, n) total
              | None -> ())
            (Nfa.finals nfa)))
    starts;
  Hashtbl.fold (fun (v, n) d acc -> (v, n, d) :: acc) best [] |> List.sort compare

(* The engine's answers, drained to exhaustion. *)
let engine_answers g k options (conjunct : Q.conjunct) =
  let ev = Core.Evaluator.create ~graph:g ~ontology:k ~options conjunct in
  let rec drain acc =
    match Core.Evaluator.next ev with
    | Some (a : Core.Conjunct.answer) -> drain ((a.x, a.y, a.dist) :: acc)
    | None -> List.rev acc
  in
  drain []

let conjunct_of instance =
  let subj =
    match instance.subj_const with Some i -> Q.Const (node_name i) | None -> Q.Var "X"
  in
  Q.conjunct ~mode:instance.mode subj instance.regex (Q.Var "Y")

let agree ?(options = Core.Options.default) instance =
  let g, k = build instance in
  let conjunct = conjunct_of instance in
  let expected = ref_answers g k options conjunct in
  let actual = engine_answers g k options conjunct in
  let sorted = List.sort compare actual in
  let rec non_decreasing last = function
    | [] -> true
    | (_, _, d) :: rest -> d >= last && non_decreasing d rest
  in
  sorted = expected && non_decreasing 0 actual

let prop name mode options =
  QCheck2.Test.make ~name ~count:150 (gen_instance ~mode) (fun instance ->
      agree ?options instance)

let exact_prop = prop "engine = product Dijkstra (exact)" Q.Exact None

let approx_prop = prop "engine = product Dijkstra (APPROX)" Q.Approx None

let relax_prop = prop "engine = product Dijkstra (RELAX)" Q.Relax None

let distance_aware_prop =
  prop "distance-aware engine = product Dijkstra (APPROX)" Q.Approx
    (Some { Core.Options.default with Core.Options.distance_aware = true })

let decomposed_prop =
  QCheck2.Test.make ~name:"decomposed engine = plain engine (APPROX alternation)" ~count:100
    (QCheck2.Gen.pair (gen_instance ~mode:Q.Approx) gen_regex)
    (fun (instance, extra) ->
      (* force a top-level alternation so decomposition actually kicks in *)
      let instance = { instance with regex = R.Alt (instance.regex, extra) } in
      let g, k = build instance in
      let conjunct = conjunct_of instance in
      let plain = engine_answers g k Core.Options.default conjunct in
      let decomposed =
        engine_answers g k
          { Core.Options.default with Core.Options.decompose = true }
          conjunct
      in
      List.sort compare plain = List.sort compare decomposed)

(* The §3.3 ablation switches change performance, never answers. *)
let ablation_prop name options =
  QCheck2.Test.make ~name ~count:100 (gen_instance ~mode:Q.Approx) (fun instance ->
      let g, k = build instance in
      let conjunct = conjunct_of instance in
      let default = engine_answers g k Core.Options.default conjunct in
      let ablated = engine_answers g k options conjunct in
      List.sort compare default = List.sort compare ablated)

let no_final_priority_prop =
  ablation_prop "disabling final priority changes nothing (answers)"
    { Core.Options.default with Core.Options.final_priority = false }

let unbatched_seeding_prop =
  ablation_prop "disabling batched seeding changes nothing (answers)"
    { Core.Options.default with Core.Options.batched_seeding = false }

let small_batch_prop =
  QCheck2.Test.make ~name:"batch size 1 changes nothing" ~count:100
    (gen_instance ~mode:Q.Exact)
    (fun instance ->
      let g, k = build instance in
      let conjunct = conjunct_of instance in
      let default = engine_answers g k Core.Options.default conjunct in
      let tiny =
        engine_answers g k { Core.Options.default with Core.Options.batch_size = 1 } conjunct
      in
      List.sort compare default = List.sort compare tiny)

let () =
  Alcotest.run "engine_properties"
    [
      ( "vs reference",
        [
          QCheck_alcotest.to_alcotest exact_prop;
          QCheck_alcotest.to_alcotest approx_prop;
          QCheck_alcotest.to_alcotest relax_prop;
          QCheck_alcotest.to_alcotest distance_aware_prop;
        ] );
      ( "strategies",
        [
          QCheck_alcotest.to_alcotest decomposed_prop;
          QCheck_alcotest.to_alcotest small_batch_prop;
          QCheck_alcotest.to_alcotest no_final_priority_prop;
          QCheck_alcotest.to_alcotest unbatched_seeding_prop;
        ] );
    ]
