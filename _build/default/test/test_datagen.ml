(* Tests for the workload generators: determinism, structural invariants that
   the paper's query set relies on, and the RNG/Zipf substrates. *)

module Graph = Graphstore.Graph
module L4 = Datagen.L4all
module Yago = Datagen.Yago_sim
module Rng = Datagen.Rng
module Zipf = Datagen.Zipf

let check = Alcotest.check

let run ?(limit = max_int) (g, k) q =
  match Core.Engine.run_string ~graph:g ~ontology:k ~limit q with
  | Ok o -> o
  | Error m -> Alcotest.failf "query error: %s" m

let count ?limit gk q = List.length (run ?limit gk q).Core.Engine.answers

(* --- Rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let seq r = List.init 50 (fun _ -> Rng.int r 1000) in
  check Alcotest.(list int) "same seed, same stream" (seq a) (seq b);
  let c = Rng.create 43 in
  check Alcotest.bool "different seed differs" true (seq (Rng.create 42) <> seq c)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done;
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    if v < 0. || v >= 2.5 then Alcotest.failf "float out of range: %f" v
  done

let test_rng_pick_shuffle () =
  let r = Rng.create 5 in
  let arr = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 100 do
    if not (Array.mem (Rng.pick r arr) arr) then Alcotest.fail "pick outside array"
  done;
  let copy = Array.copy arr in
  Rng.shuffle r copy;
  check Alcotest.(list int) "permutation" (Array.to_list arr)
    (List.sort compare (Array.to_list copy));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick r [||]))

let test_rng_bool_probability () =
  let r = Rng.create 11 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10_000. in
  check Alcotest.bool "roughly 0.3" true (rate > 0.27 && rate < 0.33)

(* --- Zipf ------------------------------------------------------------- *)

let test_zipf_bounds_and_skew () =
  let z = Zipf.create ~n:100 ~alpha:1.0 in
  let r = Rng.create 3 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let k = Zipf.sample z r in
    if k < 0 || k >= 100 then Alcotest.fail "rank out of range";
    counts.(k) <- counts.(k) + 1
  done;
  check Alcotest.bool "rank 0 dominates rank 50" true (counts.(0) > 5 * counts.(50));
  check Alcotest.int "n" 100 (Zipf.n z)

let test_zipf_uniform_when_alpha_zero () =
  let z = Zipf.create ~n:10 ~alpha:0.0 in
  let r = Rng.create 9 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    counts.(Zipf.sample z r) <- counts.(Zipf.sample z r) + 1
  done;
  Array.iter (fun c -> if c < 700 || c > 1300 then Alcotest.failf "not uniform: %d" c) counts

let test_zipf_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Zipf.create ~n:0 ~alpha:1.0))

(* --- L4All ------------------------------------------------------------ *)

let l1 = lazy (L4.generate ~timelines:143 ())

let test_l4_deterministic () =
  let g1, _ = L4.generate ~timelines:50 () in
  let g2, _ = L4.generate ~timelines:50 () in
  check Alcotest.int "same nodes" (Graph.n_nodes g1) (Graph.n_nodes g2);
  check Alcotest.int "same edges" (Graph.n_edges g1) (Graph.n_edges g2)

let test_l4_scaling_monotone () =
  let g1, _ = L4.generate ~timelines:21 () in
  let g2, _ = L4.generate ~timelines:42 () in
  check Alcotest.bool "bigger graph" true (Graph.n_nodes g2 > Graph.n_nodes g1);
  check Alcotest.bool "roughly doubles" true
    (float_of_int (Graph.n_edges g2) /. float_of_int (Graph.n_edges g1) > 1.6)

let test_l4_hierarchy_shapes () =
  let _, k = Lazy.force l1 in
  let interner = Ontology.interner k in
  let stats name =
    let id = Graphstore.Interner.intern interner name in
    Ontology.class_hierarchy_stats k id
  in
  check Alcotest.int "Episode depth" 2 (stats "Episode").Ontology.depth;
  check Alcotest.int "Subject depth" 2 (stats "Subject").Ontology.depth;
  check Alcotest.int "Occupation depth" 4 (stats "Occupation").Ontology.depth;
  check Alcotest.int "EQ Level depth" 2 (stats "Education Qualification Level").Ontology.depth;
  check Alcotest.int "Sector depth" 1 (stats "Industry Sector").Ontology.depth;
  check (Alcotest.float 0.5) "Subject fanout" 8.0 (stats "Subject").Ontology.avg_fanout;
  check (Alcotest.float 1.0) "Sector fanout" 21.0 (stats "Industry Sector").Ontology.avg_fanout

let test_l4_query_invariants () =
  let gk = Lazy.force l1 in
  (* Q8: class nodes have no outgoing type edges -> 0 exact answers *)
  check Alcotest.int "Q8 exact empty" 0 (count gk (L4.query_text 8 Core.Query.Exact));
  (* Q9: the pinned timeline-4 pattern has exactly one answer *)
  check Alcotest.int "Q9 exact singleton" 1 (count gk (L4.query_text 9 Core.Query.Exact));
  (* Q12: BTEC Introductory Diploma episodes never precede a prereq *)
  check Alcotest.int "Q12 exact empty" 0 (count gk (L4.query_text 12 Core.Query.Exact));
  (* Q12 RELAX: sibling levels do have prereq successors *)
  check Alcotest.bool "Q12 RELAX non-empty" true
    (count ~limit:100 gk (L4.query_text 12 Core.Query.Relax) > 0);
  (* Q10 rare at L1 *)
  check Alcotest.bool "Q10 small" true (count gk (L4.query_text 10 Core.Query.Exact) < 100)

let test_l4_query_invariants_scale () =
  (* the Q9/Q12 invariants survive the sibling-rotation scaling *)
  let gk = L4.generate ~timelines:500 () in
  check Alcotest.int "Q9 exact singleton at 500" 1 (count gk (L4.query_text 9 Core.Query.Exact));
  check Alcotest.int "Q12 exact empty at 500" 0 (count gk (L4.query_text 12 Core.Query.Exact))

let test_l4_type_closure_materialised () =
  let g, _ = Lazy.force l1 in
  (* 'Episode' (the root) must have a large type fan-in: every episode's
     type edges are materialised up the hierarchy *)
  let root = Option.get (Graph.find_node g "Episode") in
  let type_l = Graph.type_label g in
  check Alcotest.bool "root class degree" true (Graph.in_degree g root type_l > 1000)

let test_l4_query_text () =
  check Alcotest.string "exact" "(?X) <- (Librarians, type-, ?X)" (L4.query_text 10 Core.Query.Exact);
  check Alcotest.string "approx prefix" "(?X) <- APPROX (Librarians, type-, ?X)"
    (L4.query_text 10 Core.Query.Approx);
  check Alcotest.string "two-var head" "(?X, ?Y) <- (?X, job.type, ?Y)"
    (L4.query_text 4 Core.Query.Exact);
  Alcotest.check_raises "unknown id" (Invalid_argument "L4all.query_text: unknown query 13")
    (fun () -> ignore (L4.query_text 13 Core.Query.Exact))

let test_l4_all_queries_parse_and_run () =
  let gk = L4.generate ~timelines:21 () in
  List.iter
    (fun (id, _) ->
      List.iter
        (fun mode -> ignore (run ~limit:5 gk (L4.query_text id mode)))
        [ Core.Query.Exact; Core.Query.Approx; Core.Query.Relax ])
    L4.queries

(* --- YAGO-sim ----------------------------------------------------------- *)

let yago = lazy (Yago.generate ())

let test_yago_deterministic () =
  let g1, _ = Yago.generate () in
  let g2, _ = Yago.generate () in
  check Alcotest.int "same nodes" (Graph.n_nodes g1) (Graph.n_nodes g2);
  check Alcotest.int "same edges" (Graph.n_edges g1) (Graph.n_edges g2)

let test_yago_signature () =
  let g, k = Lazy.force yago in
  check Alcotest.int "38 edge labels" 38 (List.length (Graph.labels g));
  let roots = Ontology.property_roots k in
  check Alcotest.int "two property hierarchies" 2 (List.length roots);
  let sizes =
    List.map (fun r -> (Ontology.property_hierarchy_stats k r).Ontology.members - 1) roots
    |> List.sort compare
  in
  check Alcotest.(list int) "6 and 2 sub-properties" [ 2; 6 ] sizes;
  let class_roots = Ontology.class_roots k in
  check Alcotest.int "single taxonomy" 1 (List.length class_roots);
  check Alcotest.int "taxonomy depth 2" 2
    (Ontology.class_hierarchy_stats k (List.hd class_roots)).Ontology.depth

let test_yago_landmarks () =
  let g, _ = Lazy.force yago in
  List.iter
    (fun name ->
      if Graph.find_node g name = None then Alcotest.failf "missing landmark %s" name)
    [ "UK"; "Li_Peng"; "Halle_Saxony-Anhalt"; "Annie Haslam"; "wordnet_ziggurat"; "wordnet_city" ]

let test_yago_query_invariants () =
  let gk = Lazy.force yago in
  check Alcotest.int "Q2 exact = 2" 2 (count gk (Yago.query_text 2 Core.Query.Exact));
  check Alcotest.int "Q3 exact empty" 0 (count gk (Yago.query_text 3 Core.Query.Exact));
  check Alcotest.int "Q4 exact empty" 0 (count gk (Yago.query_text 4 Core.Query.Exact));
  check Alcotest.int "Q5 exact empty" 0 (count gk (Yago.query_text 5 Core.Query.Exact));
  check Alcotest.int "Q9 exact empty" 0 (count gk (Yago.query_text 9 Core.Query.Exact));
  check Alcotest.bool "Q7 well over 100" true
    (count gk (Yago.query_text 7 Core.Query.Exact) > 100);
  check Alcotest.bool "Q8 well over 100" true (count gk (Yago.query_text 8 Core.Query.Exact) > 100)

let test_yago_relax_rescues () =
  let gk = Lazy.force yago in
  let relax id = (run ~limit:100 gk (Yago.query_text id Core.Query.Relax)).Core.Engine.answers in
  check Alcotest.int "Q5 RELAX finds 100" 100 (List.length (relax 5));
  check Alcotest.int "Q9 RELAX finds 100" 100 (List.length (relax 9));
  List.iter
    (fun (a : Core.Engine.answer) ->
      if a.Core.Engine.distance <> 1 then Alcotest.fail "expected distance 1")
    (relax 5)

let test_yago_budget_aborts_q4_q5 () =
  let g, k = Lazy.force yago in
  let options = { Core.Options.default with Core.Options.max_tuples = Some 400_000 } in
  List.iter
    (fun id ->
      match
        Core.Engine.run_string ~graph:g ~ontology:k ~options ~limit:100
          (Yago.query_text id Core.Query.Approx)
      with
      | Ok o -> check Alcotest.bool (Printf.sprintf "Q%d aborted" id) true o.Core.Engine.aborted
      | Error m -> Alcotest.fail m)
    [ 4; 5 ]

let test_yago_scale_parameter () =
  let small = Yago.generate ~params:{ Yago.scale = 0.002; seed = 1 } () in
  let bigger = Yago.generate ~params:{ Yago.scale = 0.01; seed = 1 } () in
  check Alcotest.bool "scale grows the graph" true
    (Graph.n_nodes (fst bigger) > Graph.n_nodes (fst small))

let () =
  Alcotest.run "datagen"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "pick/shuffle" `Quick test_rng_pick_shuffle;
          Alcotest.test_case "bool probability" `Quick test_rng_bool_probability;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "bounds and skew" `Quick test_zipf_bounds_and_skew;
          Alcotest.test_case "uniform at alpha 0" `Quick test_zipf_uniform_when_alpha_zero;
          Alcotest.test_case "invalid" `Quick test_zipf_invalid;
        ] );
      ( "l4all",
        [
          Alcotest.test_case "deterministic" `Quick test_l4_deterministic;
          Alcotest.test_case "scaling monotone" `Quick test_l4_scaling_monotone;
          Alcotest.test_case "hierarchy shapes (Fig 2)" `Quick test_l4_hierarchy_shapes;
          Alcotest.test_case "query invariants" `Quick test_l4_query_invariants;
          Alcotest.test_case "invariants survive scaling" `Quick test_l4_query_invariants_scale;
          Alcotest.test_case "type closure materialised" `Quick test_l4_type_closure_materialised;
          Alcotest.test_case "query text" `Quick test_l4_query_text;
          Alcotest.test_case "all 36 queries run" `Slow test_l4_all_queries_parse_and_run;
        ] );
      ( "yago",
        [
          Alcotest.test_case "deterministic" `Quick test_yago_deterministic;
          Alcotest.test_case "structural signature" `Quick test_yago_signature;
          Alcotest.test_case "landmarks" `Quick test_yago_landmarks;
          Alcotest.test_case "query invariants (Fig 10)" `Quick test_yago_query_invariants;
          Alcotest.test_case "RELAX rescues Q5/Q9" `Quick test_yago_relax_rescues;
          Alcotest.test_case "budget aborts Q4/Q5" `Quick test_yago_budget_aborts_q4_q5;
          Alcotest.test_case "scale parameter" `Quick test_yago_scale_parameter;
        ] );
    ]
