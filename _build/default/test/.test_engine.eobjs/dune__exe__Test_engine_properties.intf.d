test/test_engine_properties.mli:
