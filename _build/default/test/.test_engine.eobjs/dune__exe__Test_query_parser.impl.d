test/test_query_parser.ml: Alcotest Core List Rpq_regex
