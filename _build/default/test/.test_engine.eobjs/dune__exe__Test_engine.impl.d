test/test_engine.ml: Alcotest Core Graphstore List Ontology
