test/test_ontology.mli:
