test/test_automaton.ml: Alcotest Array Automaton Graphstore List Ontology Printf QCheck2 QCheck_alcotest Rpq_regex String
