test/test_rdfs.ml: Alcotest Core Graphstore List Ontology Option Rdfs
