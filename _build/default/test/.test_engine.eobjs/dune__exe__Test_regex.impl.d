test/test_regex.ml: Alcotest List QCheck2 QCheck_alcotest Rpq_regex String
