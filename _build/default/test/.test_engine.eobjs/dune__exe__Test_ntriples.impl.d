test/test_ntriples.ml: Alcotest Core Datagen Filename Fun Graphstore List Ntriples Ontology Option Sys
