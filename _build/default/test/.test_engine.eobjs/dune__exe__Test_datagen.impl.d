test/test_datagen.ml: Alcotest Array Core Datagen Graphstore Lazy List Ontology Option Printf
