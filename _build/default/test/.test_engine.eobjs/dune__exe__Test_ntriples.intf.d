test/test_ntriples.mli:
