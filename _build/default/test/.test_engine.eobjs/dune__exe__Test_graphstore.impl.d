test/test_graphstore.ml: Alcotest Graphstore Hashtbl List Printf QCheck2 QCheck_alcotest
