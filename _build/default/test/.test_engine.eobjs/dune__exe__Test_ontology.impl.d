test/test_ontology.ml: Alcotest Graphstore List Ontology Option
