test/test_engine_properties.ml: Alcotest Array Automaton Core Graphstore Hashtbl List Ontology Printf QCheck2 QCheck_alcotest Rpq_regex
