test/test_structures.ml: Alcotest Automaton Core Graphstore List QCheck2 QCheck_alcotest
