test/test_join.ml: Alcotest Core Hashtbl List QCheck2 QCheck_alcotest
