(* Exploring a heterogeneous knowledge graph (the YAGO-shaped workload):
   the paper's Examples 1-3, live.

   A user who does not know the schema writes a plausible query, gets
   nothing back, and lets APPROX/RELAX find what they meant.

     dune exec examples/knowledge_explorer.exe
*)

let () =
  let graph, ontology = Datagen.Yago_sim.generate () in
  let s = Graphstore.Graph.stats graph in
  Format.printf "YAGO-shaped graph: %d nodes, %d edges, %d edge labels@." s.Graphstore.Graph.nodes
    s.Graphstore.Graph.edges s.Graphstore.Graph.distinct_labels;

  let show ?(limit = 8) ?(options = Core.Options.default) title query =
    Format.printf "@.== %s@.   %s@." title query;
    match Core.Engine.run_string ~graph ~ontology ~options ~limit query with
    | Ok outcome ->
      List.iter (fun a -> Format.printf "   %a@." Core.Engine.pp_answer a) outcome.Core.Engine.answers;
      if outcome.Core.Engine.aborted then Format.printf "   -- aborted on tuple budget@.";
      if outcome.Core.Engine.answers = [] then Format.printf "   (no answers)@."
    | Error msg -> Format.printf "   error: %s@." msg
  in

  (* Example 1 (paper §2): people who graduated from an institution
     located in the UK.  The user's query direction is wrong — only
     people graduate, and only places/events are located — so the exact
     answer is empty. *)
  show "Example 1 — exact query, wrong shape, no answers"
    "(?X) <- (UK, locatedIn-.gradFrom, ?X)";

  (* Example 2: APPROX repairs the query by substituting the last label
     (effectively gradFrom -> gradFrom-), at edit distance 1-2. *)
  show "Example 2 — APPROX corrects the error"
    "(?X) <- APPROX (UK, locatedIn-.gradFrom, ?X)";

  (* Example 3: RELAX instead climbs the property hierarchy: gradFrom's
     super-property relationLocatedByObject also matches happenedIn,
     participatedIn, locatedIn... *)
  show "Example 3 — RELAX generalises gradFrom via the ontology"
    "(?X) <- RELAX (UK, locatedIn-.gradFrom, ?X)";

  (* Flexible operators are per-conjunct: mix an exact anchor with an
     approximated tail in one conjunctive query. *)
  show "Mixed conjuncts: exact anchor + approximated hop"
    "(?C, ?P) <- (UK, locatedIn-, ?C), APPROX (?C, gradFrom, ?P)";

  (* Li Peng's family tree, the paper's YAGO query Q2. *)
  show "Prize-winning fellow alumni of Li Peng's children (exact)"
    "(?X) <- (Li_Peng, hasChild.gradFrom.gradFrom-.hasWonPrize, ?X)";
  show "... and at edit distance 1 (APPROX)"
    "(?X) <- APPROX (Li_Peng, hasChild.gradFrom.gradFrom-.hasWonPrize, ?X)"
