(* The paper's motivating domain: the L4All lifelong-learner timelines.

   A careers advisor wants to find learners who reached a particular
   occupation, and the learning pathways (chains of episodes) that led
   there — exactly the kind of exploratory querying where exact queries
   are too brittle and APPROX/RELAX pay off.

     dune exec examples/lifelong_learning.exe
*)

let () =
  (* A small instance of the L4All workload: 143 timelines (the paper's L1
     graph), deterministic. *)
  let graph, ontology = Datagen.L4all.generate ~timelines:143 () in
  let s = Graphstore.Graph.stats graph in
  Format.printf "L4All graph: %d nodes, %d edges@." s.Graphstore.Graph.nodes s.Graphstore.Graph.edges;

  let show ?(limit = 8) ?(options = Core.Options.default) title query =
    Format.printf "@.== %s@.   %s@." title query;
    match Core.Engine.run_string ~graph ~ontology ~options ~limit query with
    | Ok outcome ->
      List.iter (fun a -> Format.printf "   %a@." Core.Engine.pp_answer a) outcome.Core.Engine.answers;
      if outcome.Core.Engine.answers = [] then Format.printf "   (no answers)@."
    | Error msg -> Format.printf "   error: %s@." msg
  in

  (* Which work episodes were classified as software professionals?
     (type- goes from the class to its instances, job- from the
     occupational event back to the episode.) *)
  show "Episodes of people who worked as software professionals"
    "(?E) <- (Software Professionals, type-.job-, ?E)";

  (* What did people study before moving into software?  A two-conjunct
     query joining a study episode chained (via next/prereq) to the work
     episode. *)
  show "Subjects studied on pathways into software work"
    "(?S) <- (Software Professionals, type-.job-, ?E), (?E, (next-|prereq-)+.qualif.type, ?S)";

  (* Librarianship is rare in this graph; an advisor asking for pathways
     via an exact query sees very few answers... *)
  show "Exact: episodes leading to library work (rare!)"
    "(?E) <- (Librarians, type-.job-.next, ?E)";

  (* ... RELAX climbs the Occupation hierarchy (Librarians -> their
     occupation group -> ...) and finds episodes for related occupations,
     ranked by how far the classification was relaxed. *)
  show ~limit:12 "RELAX: related occupations appear at increasing distance"
    "(?E) <- RELAX (Librarians, type-.job-.next, ?E)";

  (* APPROX instead edits the path itself: e.g. dropping the trailing
     'next' (the episode had no successor) costs one edit. *)
  show ~limit:12 "APPROX: path edits recover near-miss pathways"
    "(?E) <- APPROX (Librarians, type-.job-.next, ?E)";

  (* Qualification levels never precede a prereq link in this data, so the
     exact query is empty; RELAX finds siblings of the BTEC level. *)
  show "Exact: prereq successors of BTEC Introductory Diploma episodes"
    "(?E) <- (BTEC Introductory Diploma, level-.qualif-.prereq, ?E)";
  show "RELAX: sibling qualification levels fill the gap"
    "(?E) <- RELAX (BTEC Introductory Diploma, level-.qualif-.prereq, ?E)"
