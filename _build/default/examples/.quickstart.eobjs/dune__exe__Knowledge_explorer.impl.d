examples/knowledge_explorer.ml: Core Datagen Format Graphstore List
