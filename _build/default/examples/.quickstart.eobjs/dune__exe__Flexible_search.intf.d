examples/flexible_search.mli:
