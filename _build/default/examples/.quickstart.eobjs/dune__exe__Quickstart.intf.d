examples/quickstart.mli:
