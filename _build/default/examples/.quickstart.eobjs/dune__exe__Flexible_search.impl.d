examples/flexible_search.ml: Core Datagen Format List Unix
