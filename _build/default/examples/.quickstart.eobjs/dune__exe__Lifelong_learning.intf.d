examples/lifelong_learning.mli:
