examples/quickstart.ml: Core Format Graphstore List Ontology
