examples/lifelong_learning.ml: Core Datagen Format Graphstore List
