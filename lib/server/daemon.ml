module Json = Obs.Json

type config = {
  max_line_bytes : int;
  max_inflight : int;
  tenant_inflight : int;
  retry_after_ms : int;
  hard_timeout_ms : int option;
  drain_grace_ms : int;
  max_limit : int;
  default_limit : int;
  options : Core.Options.t;
  flex_timeout_ms : int option;
  flex_max_tuples : int option;
  debug_ops : bool;
}

let default_config =
  {
    max_line_bytes = 1024 * 1024;
    max_inflight = 8;
    tenant_inflight = 2;
    retry_after_ms = 50;
    hard_timeout_ms = None;
    drain_grace_ms = 500;
    max_limit = 1000;
    default_limit = 100;
    options = Core.Options.default;
    flex_timeout_ms = None;
    flex_max_tuples = None;
    debug_ops = false;
  }

type t = {
  graph : Graphstore.Graph.t;
  ontology : Ontology.t;
  config : config;
  admit : Admit.t;
  served : int Atomic.t;
  shed : int Atomic.t;
  errors : int Atomic.t;
  drain_req : bool Atomic.t;
  reopen_req : bool Atomic.t;
  drained : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

let create ~graph ~ontology config =
  (* crash-only writes: a response to a vanished client must surface as
     EPIPE (one aborted connection), never as a process-killing SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  {
    graph;
    ontology;
    config;
    admit =
      Admit.create ~max_inflight:config.max_inflight ~tenant_inflight:config.tenant_inflight
        ~retry_after_ms:config.retry_after_ms ();
    served = Atomic.make 0;
    shed = Atomic.make 0;
    errors = Atomic.make 0;
    drain_req = Atomic.make false;
    reopen_req = Atomic.make false;
    drained = Atomic.make false;
    wake_r;
    wake_w;
  }

let counts t = (Atomic.get t.served, Atomic.get t.shed, Atomic.get t.errors)
let inflight t = Admit.inflight t.admit

(* --- the server side of the audit contract ----------------------------- *)

(* Stream-bearing requests audit through Engine.close; everything the
   engine never sees — sheds, protocol errors, crashes, sleeps, the drain
   marker — audits through these minimal records (class "server"). *)

let truncate_query s = if String.length s <= 256 then s else String.sub s 0 256 ^ "..."

let server_record ?(stats = []) ?(answers = 0) ~tenant ~termination ~reason ~query () =
  {
    Obs.Audit.ts_ns = !Obs.Clock.now_ns ();
    query_hash = Obs.Audit.hash query;
    query = truncate_query query;
    query_class = "server";
    plan = "server";
    termination;
    reason;
    answers;
    wall_ns = 0;
    cpu_ns = 0;
    est_states = 0;
    est_product = 0;
    actual_tuples = 0;
    domains = 0;
    shards = [];
    merge_wait_ns = 0;
    imbalance_pct = 0;
    flight = None;
    tenant = Some tenant;
    stats;
    gc = [];
  }

let audit_error t ~tenant ~tag ~query =
  Atomic.incr t.errors;
  Obs.Audit.emit (server_record ~tenant ~termination:"error" ~reason:(Some tag) ~query ())

let audit_shed t ~tenant ~draining ~query =
  Atomic.incr t.shed;
  Obs.Audit.emit
    (server_record ~tenant ~termination:"shed"
       ~reason:(Some (if draining then "draining" else "overload"))
       ~query ())

(* --- per-request budgets ----------------------------------------------- *)

let min_opt a b = match (a, b) with None, x | x, None -> x | Some x, Some y -> Some (min x y)
let ms_to_ns = Option.map (fun ms -> ms * 1_000_000)

let is_flex (q : Core.Query.t) =
  List.exists (fun (c : Core.Query.conjunct) -> c.Core.Query.cmode <> Core.Query.Exact) q.conjuncts

(* The request can only tighten the server's budgets; a flexible-operator
   query (any APPROX/RELAX conjunct) additionally starts from the tighter
   flex defaults; the reaper's hard timeout caps every deadline. *)
let effective_options t (req : Protocol.request) q =
  let base = t.config.options in
  let flex = is_flex q in
  let timeout_ns =
    min_opt
      (min_opt
         (min_opt base.Core.Options.timeout_ns
            (if flex then ms_to_ns t.config.flex_timeout_ms else None))
         (ms_to_ns req.timeout_ms))
      (ms_to_ns t.config.hard_timeout_ms)
  in
  let max_tuples =
    min_opt
      (min_opt base.Core.Options.max_tuples (if flex then t.config.flex_max_tuples else None))
      req.max_tuples
  in
  let max_states = min_opt base.Core.Options.max_states req.max_states in
  { base with Core.Options.timeout_ns; max_tuples; max_states }

let effective_limit t (req : Protocol.request) =
  min (Option.value req.limit ~default:t.config.default_limit) t.config.max_limit

(* --- request handling (the isolation seam) ----------------------------- *)

let do_query t (req : Protocol.request) tk =
  match Core.Query_parser.parse_result req.query with
  | Error msg ->
    audit_error t ~tenant:req.tenant ~tag:"bad-query" ~query:req.query;
    Protocol.resp_error ~id:req.id (Protocol.Bad_query msg)
  | Ok q -> (
    let options = effective_options t req q in
    let limit = effective_limit t req in
    let governor = Core.Options.governor ~limit options in
    Admit.attach t.admit tk governor;
    match
      Core.Engine.open_query ~graph:t.graph ~ontology:t.ontology ~options ~governor
        ~tenant:req.tenant q
    with
    | exception Invalid_argument msg ->
      audit_error t ~tenant:req.tenant ~tag:"bad-query" ~query:req.query;
      Protocol.resp_error ~id:req.id (Protocol.Bad_query msg)
    | st ->
      (* drain closes the stream, which audits it (tenant-stamped) exactly
         once through the engine seam — trips and rejections included *)
      let outcome = Core.Engine.drain ~limit st in
      Atomic.incr t.served;
      Protocol.resp_outcome ~id:req.id ~tenant:req.tenant
        ~query_class:(Core.Engine.query_class st) outcome)

(* The drain/shed drill: occupy an admission slot in cancellable 10 ms
   naps, so tests and CI provoke overload and drain cuts without racing a
   real query's runtime. *)
let do_sleep t (req : Protocol.request) tk =
  let governor = Core.Governor.unlimited () in
  Admit.attach t.admit tk governor;
  let slept = ref 0 in
  while !slept < req.sleep_ms && Core.Governor.tripped governor = None do
    Thread.delay 0.01;
    slept := !slept + 10
  done;
  let cut = Option.map Core.Governor.reason_string (Core.Governor.tripped governor) in
  Atomic.incr t.served;
  Obs.Audit.emit
    (server_record ~tenant:req.tenant
       ~termination:(match cut with None -> "completed" | Some _ -> "exhausted")
       ~reason:cut ~query:"<sleep>" ());
  Protocol.resp_slept ~id:req.id ~tenant:req.tenant ~slept_ms:!slept ~cut

let handle_parsed t line =
  match Protocol.parse_request line with
  | Error (id, err) ->
    audit_error t ~tenant:"anon" ~tag:(Protocol.error_tag err) ~query:line;
    Protocol.resp_error ~id err
  | Ok req -> (
    match req.op with
    | Protocol.Ping -> Protocol.resp_pong ~id:req.id (* liveness probe: not audited *)
    | Protocol.Sleep when not t.config.debug_ops ->
      audit_error t ~tenant:req.tenant ~tag:"bad-request" ~query:"<sleep>";
      Protocol.resp_error ~id:req.id
        (Protocol.Bad_request "op \"sleep\" requires --enable-debug-ops")
    | Protocol.Query | Protocol.Sleep -> (
      match Admit.try_admit t.admit ~tenant:req.tenant with
      | Admit.Shed { retry_after_ms; draining } ->
        audit_shed t ~tenant:req.tenant ~draining
          ~query:(match req.op with Protocol.Sleep -> "<sleep>" | _ -> req.query);
        Protocol.resp_shed ~id:req.id ~tenant:req.tenant ~retry_after_ms ~draining
      | Admit.Admitted tk ->
        Fun.protect
          ~finally:(fun () -> Admit.release t.admit tk)
          (fun () ->
            match req.op with
            | Protocol.Sleep -> do_sleep t req tk
            | Protocol.Query | Protocol.Ping -> do_query t req tk)))

let handle_request t line =
  if String.trim line = "" then None
  else
    Some
      (Protocol.render
         (try handle_parsed t line
          with exn ->
            (* THE crash-only seam: whatever escaped above becomes a typed
               code-1 response and the daemon keeps serving *)
            let msg = Printexc.to_string exn in
            audit_error t ~tenant:"anon" ~tag:"crash" ~query:line;
            let id =
              match Json.parse line with
              | Ok j -> Option.value ~default:Json.Null (Json.member "id" j)
              | Error _ -> Json.Null
            in
            Protocol.resp_crash ~id msg))

let handle_oversized t =
  let err = Protocol.Request_too_large t.config.max_line_bytes in
  audit_error t ~tenant:"anon" ~tag:(Protocol.error_tag err) ~query:"<oversized>";
  Protocol.render (Protocol.resp_error ~id:Json.Null err)

(* --- transports -------------------------------------------------------- *)

(* One in_channel per connection; responses are written straight to the
   descriptor (full-write loop) so there is exactly one owner to close.
   Read/write failures — injected faults, torn frames, EPIPE from a client
   that left — abort this connection only. *)

let write_all fd s =
  let b = Bytes.of_string (s ^ "\n") in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let serve_channel t ic ~send =
  let continue = ref true in
  while !continue do
    match Ntriples.Nt.input_line_bounded ic t.config.max_line_bytes with
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> continue := false
    | `Eof -> continue := false
    | `Oversized -> if not (send (handle_oversized t)) then continue := false
    | `Line line -> (
      Core.Failpoints.check Core.Failpoints.Srv_read;
      match handle_request t line with
      | None -> ()
      | Some resp -> if not (send resp) then continue := false)
  done

let serve_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let send resp =
    match
      Core.Failpoints.check Core.Failpoints.Srv_write;
      write_all fd resp
    with
    | () -> true
    | exception (Unix.Unix_error _ | Sys_error _ | Core.Failpoints.Injected _) -> false
  in
  (try serve_channel t ic ~send with Core.Failpoints.Injected _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- drain, reaper, signals -------------------------------------------- *)

let reap_stuck t =
  match t.config.hard_timeout_ms with
  | None -> 0
  | Some ms ->
    Admit.cancel_overdue t.admit ~now_ns:(!Obs.Clock.now_ns ()) ~max_age_ns:(ms * 1_000_000)
      ~reason:"stuck"

let drain t =
  if not (Atomic.exchange t.drained true) then begin
    Admit.begin_drain t.admit;
    let cut = Admit.cancel_all t.admit ~reason:"drain" in
    let deadline = Unix.gettimeofday () +. (float_of_int t.config.drain_grace_ms /. 1000.) in
    while Admit.inflight t.admit > 0 && Unix.gettimeofday () < deadline do
      Thread.delay 0.005
    done;
    let served, shed, errors = counts t in
    Obs.Audit.emit
      (server_record ~tenant:"server" ~termination:"drain" ~reason:None ~query:"<drain>"
         ~answers:served
         ~stats:
           [ ("served", served); ("shed", shed); ("errors", errors); ("cut", cut);
             ("stranded", Admit.inflight t.admit) ]
         ());
    Obs.Audit.disable ()
  end

let serve_stdio t =
  let send resp =
    print_string resp;
    print_newline ();
    flush stdout;
    true
  in
  (try serve_channel t stdin ~send with Core.Failpoints.Injected _ -> ());
  drain t

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()

let request_drain t =
  Atomic.set t.drain_req true;
  wake t

let request_audit_reopen t =
  Atomic.set t.reopen_req true;
  wake t

let drain_wake_pipe t =
  let buf = Bytes.create 16 in
  try ignore (Unix.read t.wake_r buf 0 16) with Unix.Unix_error _ -> ()

let run_unix t ~socket =
  (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
  let srv = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX socket);
  Unix.listen srv 64;
  while not (Atomic.get t.drain_req) do
    (match Unix.select [ srv; t.wake_r ] [] [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      if List.mem t.wake_r readable then drain_wake_pipe t;
      if Atomic.get t.reopen_req then begin
        Atomic.set t.reopen_req false;
        Obs.Audit.reopen ()
      end;
      if List.mem srv readable && not (Atomic.get t.drain_req) then (
        match
          Core.Failpoints.check Core.Failpoints.Srv_accept;
          Unix.accept ~cloexec:true srv
        with
        | exception Core.Failpoints.Injected _ ->
          (* abort one accept: take the pending connection and drop it *)
          (try
             let fd, _ = Unix.accept ~cloexec:true srv in
             Unix.close fd
           with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error _ -> ()
        | fd, _ -> ignore (Thread.create (fun fd -> serve_connection t fd) fd)));
    ignore (reap_stuck t)
  done;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
  drain t
