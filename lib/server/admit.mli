(** The server's overload gate: a bounded in-flight set with per-tenant
    fair admission, layered {e in front of} the engine's own static
    admission control ([Core.Admission], which vets a query's cost) — this
    module rations {e concurrency}, per tenant and globally.

    Capacity is two nested caps: at most [max_inflight] requests evaluating
    at once process-wide, and at most [tenant_inflight] of them for any one
    tenant — a single flooding tenant exhausts its own share and starts
    shedding while every other tenant's slots stay available (the fairness
    property pinned by the chaos suite).  Beyond either cap the server does
    {e not} queue: the request is shed immediately with a
    [retry_after_ms] hint, so the daemon's memory stays bounded no matter
    the offered load (crash-only: shedding is a normal answer, not a
    failure).

    Each admitted request holds a {!ticket} for its lifetime; attaching the
    request's governor to the ticket is what lets the stuck-query reaper
    ({!cancel_overdue}) and the drain path ({!cancel_all}) cut it
    cooperatively — cancellation rides [Core.Governor.cancel], so whatever
    the request already emitted remains an exact ranked prefix. *)

type t

type ticket

type decision =
  | Admitted of ticket
  | Shed of { retry_after_ms : int; draining : bool }

val create : max_inflight:int -> tenant_inflight:int -> retry_after_ms:int -> unit -> t
(** Caps are clamped to >= 1; [retry_after_ms] is the base backpressure
    hint returned on shed. *)

val try_admit : t -> tenant:string -> decision
(** Admit or shed, never blocks.  Draining servers shed everything (with
    [draining = true]). *)

val attach : t -> ticket -> Core.Governor.t -> unit
(** Register the request's governor so the reaper and drain can cancel it.
    The ticket's age starts at {!try_admit} (per [Obs.Clock.now_ns]). *)

val release : t -> ticket -> unit
(** Give the slots back (idempotent). *)

val inflight : t -> int

val tenant_inflight : t -> string -> int

val begin_drain : t -> unit
(** Every subsequent {!try_admit} sheds with [draining = true]. *)

val draining : t -> bool

val cancel_all : t -> reason:string -> int
(** [Core.Governor.cancel ~reason] every attached in-flight governor;
    returns how many were cancelled. *)

val cancel_overdue : t -> now_ns:int -> max_age_ns:int -> reason:string -> int
(** The stuck-query reaper: cancel every in-flight request older than
    [max_age_ns] (ticket ages are per [Obs.Clock.now_ns], sampled at
    admission).  Idempotent per request — a governor already tripped keeps
    its first cause. *)
