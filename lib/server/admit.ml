type ticket = {
  tk_tenant : string;
  tk_start_ns : int;
  mutable tk_governor : Core.Governor.t option;
  mutable tk_live : bool;
}

type decision =
  | Admitted of ticket
  | Shed of { retry_after_ms : int; draining : bool }

type t = {
  max_inflight : int;
  tenant_cap : int;
  retry_after_ms : int;
  m : Mutex.t;
  tenants : (string, int) Hashtbl.t; (* in-flight count per tenant (absent = 0) *)
  mutable live : ticket list; (* the in-flight set; short (<= max_inflight) *)
  mutable n_inflight : int;
  mutable drain : bool;
}

let create ~max_inflight ~tenant_inflight ~retry_after_ms () =
  {
    max_inflight = max 1 max_inflight;
    tenant_cap = max 1 tenant_inflight;
    retry_after_ms = max 1 retry_after_ms;
    m = Mutex.create ();
    tenants = Hashtbl.create 16;
    live = [];
    n_inflight = 0;
    drain = false;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let tenant_count t tenant = Option.value ~default:0 (Hashtbl.find_opt t.tenants tenant)

let try_admit t ~tenant =
  locked t (fun () ->
      if t.drain then Shed { retry_after_ms = t.retry_after_ms; draining = true }
      else if t.n_inflight >= t.max_inflight || tenant_count t tenant >= t.tenant_cap then
        Shed { retry_after_ms = t.retry_after_ms; draining = false }
      else begin
        let tk =
          { tk_tenant = tenant; tk_start_ns = !Obs.Clock.now_ns (); tk_governor = None; tk_live = true }
        in
        Hashtbl.replace t.tenants tenant (tenant_count t tenant + 1);
        t.live <- tk :: t.live;
        t.n_inflight <- t.n_inflight + 1;
        Admitted tk
      end)

let attach t tk gov = locked t (fun () -> if tk.tk_live then tk.tk_governor <- Some gov)

let release t tk =
  locked t (fun () ->
      if tk.tk_live then begin
        tk.tk_live <- false;
        tk.tk_governor <- None;
        t.n_inflight <- t.n_inflight - 1;
        (match tenant_count t tk.tk_tenant - 1 with
        | 0 -> Hashtbl.remove t.tenants tk.tk_tenant
        | n -> Hashtbl.replace t.tenants tk.tk_tenant n);
        t.live <- List.filter (fun o -> o != tk) t.live
      end)

let inflight t = locked t (fun () -> t.n_inflight)

let tenant_inflight t tenant = locked t (fun () -> tenant_count t tenant)

let begin_drain t = locked t (fun () -> t.drain <- true)

let draining t = locked t (fun () -> t.drain)

(* Collect the targets under the lock, cancel outside it: Governor.cancel
   runs trip hooks (parallel merge wake-ups) that must not nest inside the
   admission mutex. *)
let cancel_where t ~reason pred =
  let targets =
    locked t (fun () ->
        List.filter_map (fun tk -> if tk.tk_live && pred tk then tk.tk_governor else None) t.live)
  in
  List.iter (fun g -> Core.Governor.cancel ~reason g) targets;
  List.length targets

let cancel_all t ~reason = cancel_where t ~reason (fun _ -> true)

let cancel_overdue t ~now_ns ~max_age_ns ~reason =
  cancel_where t ~reason (fun tk -> now_ns - tk.tk_start_ns > max_age_ns)
