(** The always-on query server: a crash-only daemon serving the
    {!Protocol} over a Unix-domain socket (or stdio, for tests and
    pipelines), one line-delimited JSON request in, exactly one response
    line out.

    {b Crash-only request isolation.}  Every request — transport framing,
    JSON decode, query parse, admission, evaluation — funnels through the
    single seam {!handle_request}, whose catch-all turns any unexpected
    exception into a typed code-1 response plus an audit record; the daemon
    answers and keeps serving.  A fault injected at a server failpoint
    ([accept]/[read]/[write], see {!Core.Failpoints}) aborts at most one
    connection, never the process.

    {b Overload shedding.}  Concurrency is rationed by {!Admit}: a global
    in-flight cap plus a per-tenant cap, both shed-not-queue with a
    structured [retry_after_ms] — one flooding tenant cannot starve the
    others, and the daemon's memory stays bounded under any offered load.
    Per-request budgets can only {e tighten} the server's configured
    limits, and flexible-operator queries (any APPROX/RELAX conjunct) get
    their own, tighter default budgets ([flex_timeout_ms] /
    [flex_max_tuples]) — the expensive class pays for itself.  A stuck
    query is cut by the reaper ({!reap_stuck}, driven by the accept loop)
    through [Core.Governor.cancel], so whatever it already emitted remains
    an exact ranked prefix.

    {b Graceful drain.}  {!request_drain} (the SIGTERM/SIGINT path) stops
    admissions (subsequent requests shed with [reason "draining"]), cancels
    in-flight governors, waits up to [drain_grace_ms], emits one final
    [termination "drain"] audit record and closes the audit sink.  Every
    request is audited exactly once: stream-bearing queries through the
    [Core.Engine.close] seam (stamped with their tenant), sheds, protocol
    errors, crashes and sleeps through server-built records with
    [query_class "server"]; [ping] is the one deliberate exception (a
    liveness probe, not work). *)

type config = {
  max_line_bytes : int;
      (** transport frame cap: a longer request line is rejected with
          [Request_too_large] {e without materialising it}
          ({!Ntriples.Nt.input_line_bounded}); default 1 MiB *)
  max_inflight : int;  (** global concurrent-evaluation cap (default 8) *)
  tenant_inflight : int;  (** per-tenant share of the above (default 2) *)
  retry_after_ms : int;  (** backpressure hint on shed (default 50) *)
  hard_timeout_ms : int option;
      (** the reaper's bound: no admitted request may run longer than this,
          whatever budgets it asked for (also clamps every query's
          deadline); [None] disables the reaper *)
  drain_grace_ms : int;  (** how long {!drain} waits for cancelled requests *)
  max_limit : int;  (** ceiling on any request's answer [limit] *)
  default_limit : int;  (** answer limit when the request names none *)
  options : Core.Options.t;  (** base evaluation options (budgets = ceilings) *)
  flex_timeout_ms : int option;
      (** tighter deadline default for queries with an APPROX/RELAX conjunct *)
  flex_max_tuples : int option;  (** tighter tuple budget for the same class *)
  debug_ops : bool;
      (** accept the [sleep] drill op (occupies an admission slot in
          cancellable 10 ms naps — how CI provokes deterministic sheds and
          drain cuts); off by default: a production daemon refuses it *)
}

val default_config : config

type t

val create : graph:Graphstore.Graph.t -> ontology:Ontology.t -> config -> t
(** The graph must already be frozen (queries run on the CSR index).
    Ignores [SIGPIPE] process-wide: a response written to a vanished
    client must surface as [EPIPE] (one aborted connection), never as a
    process-killing signal. *)

val handle_request : t -> string -> string option
(** THE isolation seam: one raw request line in, the response line out
    ([None] for blank lines — keep-alive noise is not an error).  Total:
    parse errors, admission sheds, evaluation trips and unexpected
    exceptions all come back as protocol responses, never exceptions.
    Audits per the contract above.  Thread-safe. *)

val handle_oversized : t -> string
(** The transport's answer to a frame over [max_line_bytes]: audited
    code-2 [Request_too_large] response.  The connection stays usable —
    the bounded reader already discarded the rest of the line. *)

val serve_connection : t -> Unix.file_descr -> unit
(** Serve one connection to exhaustion: read frames (bounded), answer
    each, close the descriptor.  Crash-only: read/write faults (injected
    or real — torn frames, mid-stream disconnects, [EPIPE]) terminate
    {e this connection} silently; the request being evaluated still audits
    through its engine seam.  Never raises. *)

val serve_stdio : t -> unit
(** One connection over stdin/stdout, then {!drain} — the [--stdio] mode
    (tests, shell pipelines). *)

val run_unix : t -> socket:string -> unit
(** Bind the Unix-domain socket (unlinking any stale file), accept in a
    [select] loop (1 s tick: reap overdue requests, honour
    {!request_drain}/{!request_audit_reopen}), one thread per connection.
    Returns after a drain request completes {!drain}. *)

val request_drain : t -> unit
(** Async-signal-safe drain trigger (the SIGTERM/SIGINT handler): sets a
    flag and wakes the accept loop through a self-pipe.  Idempotent. *)

val request_audit_reopen : t -> unit
(** Async-signal-safe [Obs.Audit.reopen] trigger (the SIGHUP handler —
    log rotation without a restart). *)

val drain : t -> unit
(** The drain sequence described above.  Idempotent; called by {!run_unix}
    and {!serve_stdio} on their way out, and directly by tests. *)

val reap_stuck : t -> int
(** Cancel (reason ["stuck"]) every in-flight request older than
    [hard_timeout_ms]; returns how many were cut.  0 when disabled. *)

val counts : t -> int * int * int
(** [(served, shed, errors)] since creation — the drain record's stats. *)

val inflight : t -> int
