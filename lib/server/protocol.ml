module Json = Obs.Json

type op = Query | Ping | Sleep

type request = {
  id : Json.t;
  op : op;
  tenant : string;
  query : string;
  limit : int option;
  timeout_ms : int option;
  max_tuples : int option;
  max_states : int option;
  sleep_ms : int;
}

type error =
  | Request_too_large of int
  | Bad_json of string
  | Bad_request of string
  | Bad_query of string

let error_string = function
  | Request_too_large cap -> Printf.sprintf "request line longer than %d bytes" cap
  | Bad_json msg -> Printf.sprintf "request is not a JSON object: %s" msg
  | Bad_request msg -> msg
  | Bad_query msg -> Printf.sprintf "query error: %s" msg

let error_tag = function
  | Request_too_large _ -> "request-too-large"
  | Bad_json _ -> "bad-json"
  | Bad_request _ -> "bad-request"
  | Bad_query _ -> "bad-query"

(* --- request parsing --------------------------------------------------- *)

let ( let* ) = Result.bind

let opt_int ~id k j =
  match Json.member k j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match Json.to_int v with
    | Some n when n >= 1 -> Ok (Some n)
    | Some _ -> Error (id, Bad_request (Printf.sprintf "field %S must be >= 1" k))
    | None -> Error (id, Bad_request (Printf.sprintf "field %S: expected a positive int" k)))

let max_tenant_bytes = 64

let parse_request line =
  match Json.parse line with
  | Error msg -> Error (Json.Null, Bad_json msg)
  | Ok (Json.Obj _ as j) ->
    let id = Option.value ~default:Json.Null (Json.member "id" j) in
    let* op =
      match Json.member "op" j with
      | None | Some Json.Null -> Ok Query
      | Some (Json.String "query") -> Ok Query
      | Some (Json.String "ping") -> Ok Ping
      | Some (Json.String "sleep") -> Ok Sleep
      | Some (Json.String s) -> Error (id, Bad_request (Printf.sprintf "unknown op %S" s))
      | Some _ -> Error (id, Bad_request "field \"op\": expected a string")
    in
    let* tenant =
      match Json.member "tenant" j with
      | None | Some Json.Null -> Ok "anon"
      | Some (Json.String t) when t <> "" && String.length t <= max_tenant_bytes -> Ok t
      | Some (Json.String _) ->
        Error (id, Bad_request (Printf.sprintf "field \"tenant\": expected 1..%d bytes" max_tenant_bytes))
      | Some _ -> Error (id, Bad_request "field \"tenant\": expected a string")
    in
    let* query =
      match (op, Json.member "query" j) with
      | Query, Some (Json.String q) -> Ok q
      | Query, Some _ -> Error (id, Bad_request "field \"query\": expected a string")
      | Query, None -> Error (id, Bad_request "missing field \"query\"")
      | (Ping | Sleep), _ -> Ok ""
    in
    let* limit = opt_int ~id "limit" j in
    let* timeout_ms = opt_int ~id "timeout_ms" j in
    let* max_tuples = opt_int ~id "max_tuples" j in
    let* max_states = opt_int ~id "max_states" j in
    let* sleep_ms =
      match op with
      | Sleep -> (
        match opt_int ~id "ms" j with
        | Ok (Some n) when n <= 60_000 -> Ok n
        | Ok (Some _) -> Error (id, Bad_request "field \"ms\": at most 60000")
        | Ok None -> Ok 10
        | Error _ as e -> e)
      | Query | Ping -> Ok 0
    in
    Ok { id; op; tenant; query; limit; timeout_ms; max_tuples; max_states; sleep_ms }
  | Ok _ -> Error (Json.Null, Bad_json "top-level value is not an object")

(* --- responses --------------------------------------------------------- *)

let render = Json.to_string

let base ~id ~status ~code rest = Json.Obj (("id", id) :: ("status", Json.String status) :: ("code", Json.Int code) :: rest)

let resp_error ~id err =
  base ~id ~status:"error" ~code:2
    [ ("error", Json.String (error_string err)); ("error_kind", Json.String (error_tag err)) ]

let resp_crash ~id msg =
  base ~id ~status:"error" ~code:1 [ ("error", Json.String msg); ("error_kind", Json.String "crash") ]

let resp_shed ~id ~tenant ~retry_after_ms ~draining =
  base ~id ~status:"shed" ~code:7
    [
      ("tenant", Json.String tenant);
      ("reason", Json.String (if draining then "draining" else "overload"));
      ("retry_after_ms", Json.Int retry_after_ms);
    ]

let resp_pong ~id = base ~id ~status:"ok" ~code:0 [ ("pong", Json.Bool true) ]

let resp_slept ~id ~tenant ~slept_ms ~cut =
  match cut with
  | None ->
    base ~id ~status:"ok" ~code:0 [ ("tenant", Json.String tenant); ("slept_ms", Json.Int slept_ms) ]
  | Some reason ->
    base ~id ~status:"partial" ~code:5
      [
        ("tenant", Json.String tenant);
        ("slept_ms", Json.Int slept_ms);
        ("reason", Json.String reason);
      ]

let answers_json (answers : Core.Engine.answer list) =
  Json.List
    (List.map
       (fun (a : Core.Engine.answer) ->
         Json.Obj
           [
             ("bindings", Json.Obj (List.map (fun (v, x) -> (v, Json.String x)) a.bindings));
             ("distance", Json.Int a.distance);
           ])
       answers)

let resp_outcome ~id ~tenant ~query_class (outcome : Core.Engine.outcome) =
  let status, code, reason =
    match outcome.Core.Engine.termination with
    | Core.Engine.Completed -> ("ok", 0, None)
    | Core.Engine.Exhausted { reason; _ } -> (
      let rs = Core.Governor.reason_string reason in
      match reason with
      | Core.Governor.Answer_limit -> ("ok", 0, Some rs)
      | Core.Governor.Deadline -> ("partial", 3, Some rs)
      | Core.Governor.Tuple_budget | Core.Governor.Memory_budget -> ("partial", 4, Some rs)
      | Core.Governor.Fault _ -> ("partial", 5, Some rs))
    | Core.Engine.Rejected r -> ("rejected", 6, Some (Core.Admission.rejection_string r))
  in
  base ~id ~status ~code
    [
      ("tenant", Json.String tenant);
      ("class", Json.String query_class);
      ("count", Json.Int (List.length outcome.Core.Engine.answers));
      ("answers", answers_json outcome.Core.Engine.answers);
      ("reason", (match reason with None -> Json.Null | Some r -> Json.String r));
    ]

let response_code j = Option.bind (Json.member "code" j) Json.to_int
