(** The query server's wire protocol: line-delimited JSON, one request per
    line in, exactly one response line out.

    A request is a JSON object:

    {v
      {"id": any, "op": "query"|"ping"|"sleep", "tenant": "acme",
       "query": "(?X) <- APPROX (C, p, ?X)",
       "limit": 10, "timeout_ms": 500, "max_tuples": 100000,
       "max_states": 64, "ms": 100}
    v}

    Every field except ["query"] (required for [op = "query"]) is optional:
    [id] is echoed verbatim into the response (default [null]), [op]
    defaults to ["query"], [tenant] to ["anon"].  The budget fields can only
    {e tighten} the server's own per-request limits, never widen them.

    A response is a JSON object with at least [id], [status] and [code];
    [code] reuses the CLI exit-code taxonomy so one table covers both
    surfaces:

    - [ok] (0) — completed, or the requested answer limit was reached;
    - [error] (2) — protocol or query parse/validation error ([error] field);
    - [partial] (3/4/5) — deadline / tuple-or-memory budget / fault: the
      [answers] emitted are a valid ranked prefix ([reason] names the trip —
      a drain cut surfaces as [fault:drain]);
    - [rejected] (6) — turned away by admission control before evaluation;
    - [shed] (7) — overload: not evaluated, retry after [retry_after_ms];
    - [error] (1) — an unexpected internal exception (crash-only isolation:
      the daemon answers and keeps serving).

    This module is pure (no I/O): the server, the fuzzer and the chaos
    suite all go through the same codec. *)

type op = Query | Ping | Sleep

type request = {
  id : Obs.Json.t;  (** echoed verbatim; [Null] when absent *)
  op : op;
  tenant : string;  (** ["anon"] when absent; 1..64 bytes *)
  query : string;  (** [""] unless [op = Query] *)
  limit : int option;  (** answer cap for this request (clamped by the server) *)
  timeout_ms : int option;
  max_tuples : int option;
  max_states : int option;
  sleep_ms : int;  (** [op = Sleep] only (a drill op; see [config.debug_ops]) *)
}

type error =
  | Request_too_large of int
      (** the frame overran the transport's line cap (the bound is enforced
          by the reader — {!Ntriples.Nt.input_line_bounded} — before the
          bytes are ever materialised) *)
  | Bad_json of string  (** the line is not a JSON object *)
  | Bad_request of string  (** well-formed JSON, ill-formed request *)
  | Bad_query of string  (** the query text failed parsing/validation *)

val error_string : error -> string

val error_tag : error -> string
(** Short audit tag: ["request-too-large"] | ["bad-json"] | ["bad-request"]
    | ["bad-query"]. *)

val parse_request : string -> (request, Obs.Json.t * error) result
(** Parse one frame.  Errors carry the request's [id] when one could be
    recovered ([Null] otherwise), so even a malformed request gets a
    correlatable response. *)

(** {2 Response builders} — each returns the response as a JSON tree;
    {!render} flattens it to the single wire line. *)

val render : Obs.Json.t -> string

val resp_error : id:Obs.Json.t -> error -> Obs.Json.t
(** [status "error"], code 2. *)

val resp_crash : id:Obs.Json.t -> string -> Obs.Json.t
(** [status "error"], code 1 — the catch-all seam's answer to an unexpected
    exception. *)

val resp_shed : id:Obs.Json.t -> tenant:string -> retry_after_ms:int -> draining:bool -> Obs.Json.t
(** [status "shed"], code 7, with the backpressure hint; [reason] is
    ["overload"], or ["draining"] when the server is shutting down. *)

val resp_pong : id:Obs.Json.t -> Obs.Json.t

val resp_slept : id:Obs.Json.t -> tenant:string -> slept_ms:int -> cut:string option -> Obs.Json.t
(** The sleep drill's response: [ok]/0 when it ran to term, [partial]/5
    when cut ([cut] names the governor fault). *)

val resp_outcome :
  id:Obs.Json.t -> tenant:string -> query_class:string -> Core.Engine.outcome -> Obs.Json.t
(** A query response from an engine outcome: termination mapped to
    status/code per the table above, answers as
    [{"bindings": {...}, "distance": d}] in rank order. *)

val response_code : Obs.Json.t -> int option
(** The [code] field of a parsed response — the client's exit code. *)
