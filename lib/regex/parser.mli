(** Parser for the paper's concrete regular-expression syntax.

    Grammar (whitespace between tokens is ignored):
    {v
      alt    ::= seq ('|' seq)*
      seq    ::= post ('.' post)*
      post   ::= atom ('-' | '*' | '+')*
      atom   ::= label | '_' | '<eps>' | '(' alt ')'
      label  ::= [A-Za-z0-9_'][A-Za-z0-9_']*   (not just '_')
    v}
    A postfix ['-'] on a label is the inverse traversal [a-]; on a compound
    atom it reverses the whole sub-expression (so [(R)-] is [Regex.reverse R],
    which coincides with [a-] for single labels). *)

exception Error of string * int
(** [Error (message, position)]: syntax error at byte offset [position]. *)

val default_max_depth : int
(** The default recursion-depth limit (10000): deep nesting
    [((((...a...))))] and long [|]/[.] chains both build non-tail recursion
    frames, so an adversarial expression would otherwise crash the parser
    with an untyped [Stack_overflow].  The limit fails with a typed
    {!Error} well before actual stack exhaustion. *)

val parse : ?max_depth:int -> string -> Regex.t
(** @raise Error on malformed input, including expressions nested or
    chained deeper than [max_depth] (default {!default_max_depth}). *)

val parse_result : ?max_depth:int -> string -> (Regex.t, string) result
(** Like {!parse} but returns a human-readable error instead of raising. *)
