exception Error of string * int

type state = { input : string; mutable pos : int; mutable depth : int; max_depth : int }

let fail st msg = raise (Error (msg, st.pos))

(* The recursive descent recurses once per grammar level: nesting
   ['((((...'] and chains ['a|a|a|...'] / ['a.a.a...'] all build non-tail
   frames, so an adversarial input can otherwise run the OCaml stack out
   (Stack_overflow is not a typed parse error).  [enter]/[leave] bound the
   live recursion depth; the default limit fails at ~10k, far below actual
   stack exhaustion, with a typed [Error].  The exception path leaves
   [depth] inflated, which is fine: the state dies with the parse. *)
let default_max_depth = 10_000

let enter st =
  st.depth <- st.depth + 1;
  if st.depth > st.max_depth then
    fail st (Printf.sprintf "expression nested or chained deeper than %d" st.max_depth)

let leave st = st.depth <- st.depth - 1

let is_label_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let skip_ws st =
  let n = String.length st.input in
  while st.pos < n && (st.input.[st.pos] = ' ' || st.input.[st.pos] = '\t') do
    st.pos <- st.pos + 1
  done

let peek st =
  skip_ws st;
  if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let label st =
  let start = st.pos in
  let n = String.length st.input in
  while st.pos < n && is_label_char st.input.[st.pos] do
    advance st
  done;
  String.sub st.input start (st.pos - start)

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let rec alt st =
  enter st;
  let left = seq st in
  let r =
    match peek st with
    | Some '|' ->
      advance st;
      Regex.Alt (left, alt st)
    | _ -> left
  in
  leave st;
  r

and seq st =
  enter st;
  let left = post st in
  let r =
    match peek st with
    | Some '.' ->
      advance st;
      Regex.Seq (left, seq st)
    | _ -> left
  in
  leave st;
  r

and post st =
  let rec apply r =
    match peek st with
    | Some '-' ->
      advance st;
      apply (Regex.reverse r)
    | Some '*' ->
      advance st;
      apply (Regex.star r)
    | Some '+' ->
      advance st;
      apply (Regex.plus r)
    | _ -> r
  in
  apply (atom st)

and atom st =
  match peek st with
  | Some '(' ->
    advance st;
    let r = alt st in
    expect st ')';
    r
  | Some '<' ->
    advance st;
    let word = label st in
    if word <> "eps" then fail st "expected <eps>";
    expect st '>';
    Regex.Eps
  | Some c when is_label_char c ->
    let word = label st in
    if word = "_" then Regex.any else Regex.Lbl (Regex.Fwd, word)
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)
  | None -> fail st "unexpected end of expression"

let parse ?(max_depth = default_max_depth) input =
  let st = { input; pos = 0; depth = 0; max_depth } in
  let r = alt st in
  skip_ws st;
  if st.pos <> String.length input then fail st "trailing input";
  r

let parse_result ?max_depth input =
  match parse ?max_depth input with
  | r -> Ok r
  | exception Error (msg, pos) -> Error (Printf.sprintf "parse error at %d: %s" pos msg)
