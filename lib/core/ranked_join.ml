type binding = (string * int) list

let binding_of pairs =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
  let rec check = function
    | (a, va) :: ((b, vb) :: _ as rest) ->
      if a = b then
        if va = vb then check rest
        else invalid_arg (Printf.sprintf "Ranked_join.binding_of: ?%s bound twice" a)
      else check rest
    | _ -> ()
  in
  check sorted;
  List.sort_uniq compare sorted

let compatible b1 b2 =
  List.for_all
    (fun (v, x) -> match List.assoc_opt v b2 with Some y -> x = y | None -> true)
    b1

let merge b1 b2 = List.sort_uniq compare (b1 @ b2)

type input = {
  pull : unit -> (binding * int * Witness.t list) option;
  mutable seen : (binding * int * Witness.t list) list;
  mutable top : int option; (* smallest distance seen *)
  mutable last : int; (* largest distance seen *)
  mutable exhausted : bool;
}

type t = {
  inputs : input array;
  buffer : (binding * int * Witness.t list) Dr_queue.t; (* keyed by total distance *)
  emitted : (binding, unit) Hashtbl.t;
  governor : Governor.t;
  h_combos : Obs.Metrics.histogram; (* combinations produced per input pull *)
}

let create ?(governor = Governor.unlimited ()) ?metrics streams =
  if streams = [] then invalid_arg "Ranked_join.create: no streams";
  let metrics = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  {
    inputs =
      Array.of_list
        (List.map
           (fun pull -> { pull; seen = []; top = None; last = 0; exhausted = false })
           streams);
    buffer = Dr_queue.create ();
    emitted = Hashtbl.create 64;
    governor;
    h_combos = Obs.Metrics.histogram metrics "join_combos";
  }

(* Lower bound on the total distance of any joined combination that uses at
   least one answer not yet pulled. *)
let threshold t =
  let bound = ref max_int in
  Array.iteri
    (fun i input ->
      if not input.exhausted then begin
        let others_ok = ref true and others_sum = ref 0 in
        Array.iteri
          (fun j other ->
            if i <> j then
              match other.top with
              | Some d -> others_sum := !others_sum + d
              | None -> others_ok := false (* nothing pulled yet: no bound via i *))
          t.inputs;
        if !others_ok && input.last + !others_sum < !bound then bound := input.last + !others_sum
      end)
    t.inputs;
  !bound

(* All join combinations of [fresh] (from input [idx]) with the seen answers
   of every other input.  Witness lists concatenate: a combined binding's
   provenance is one witness per participating conjunct answer. *)
let combinations t idx fresh fresh_dist fresh_wits =
  let n = Array.length t.inputs in
  let rec extend j acc_binding acc_dist acc_wits combos =
    if j = n then (acc_binding, acc_dist, acc_wits) :: combos
    else if j = idx then extend (j + 1) acc_binding acc_dist acc_wits combos
    else
      List.fold_left
        (fun combos (b, d, ws) ->
          if compatible acc_binding b then
            extend (j + 1) (merge acc_binding b) (acc_dist + d) (acc_wits @ ws) combos
          else combos)
        combos t.inputs.(j).seen
  in
  extend 0 fresh fresh_dist fresh_wits []

let pull_one t idx =
  Failpoints.check Failpoints.Join_pull;
  let input = t.inputs.(idx) in
  let start_ns = if Obs.Trace.enabled () then !Obs.Clock.now_ns () else 0 in
  match input.pull () with
  | None ->
    input.exhausted <- true;
    if Obs.Trace.enabled () then
      Obs.Trace.complete ~cat:"join" ~start_ns
        ~args:[ ("input", Obs.Trace.Num idx); ("combos", Obs.Trace.Num 0) ]
        "join.pull"
  | Some (b, d, ws) ->
    input.seen <- (b, d, ws) :: input.seen;
    (* [seen] lists are retained for the life of the join — the quadratic
       half of its footprint, charged but never released *)
    Governor.charge_mem t.governor Mem.join_seen_bytes;
    input.last <- max input.last d;
    (match input.top with Some top when top <= d -> () | _ -> input.top <- Some d);
    let combos = combinations t idx b d ws in
    List.iter
      (fun (binding, total, wits) ->
        Dr_queue.push t.buffer ~dist:total ~final:false (binding, total, wits);
        (* buffered join combinations are held in memory just like D_R
           tuples, so they draw on the same governor budgets (tuple and
           memory; the bytes are released when the combination is popped) *)
        Governor.charge_mem t.governor Mem.join_combo_bytes;
        Governor.tick_tuple t.governor)
      combos;
    Obs.Metrics.observe t.h_combos (List.length combos);
    if Obs.Trace.enabled () then
      Obs.Trace.complete ~cat:"join" ~start_ns
        ~args:[ ("input", Obs.Trace.Num idx); ("combos", Obs.Trace.Num (List.length combos)) ]
        "join.pull"

let next_source t =
  (* The non-exhausted input with the smallest last-seen distance; inputs
     that have produced nothing yet are served first so every stream gets a
     first pull. *)
  let best = ref (-1) in
  Array.iteri
    (fun i input ->
      if not input.exhausted then
        match !best with
        | -1 -> best := i
        | b ->
          let weight j = if t.inputs.(j).top = None then min_int else t.inputs.(j).last in
          if weight i < weight b then best := i)
    t.inputs;
  !best

let rec next t =
  if not (Governor.poll t.governor) then None
  else
  let releasable =
    match Dr_queue.min_distance t.buffer with
    | Some d -> d <= threshold t
    | None -> false
  in
  if releasable then begin
    match Dr_queue.pop t.buffer with
    | Some ((binding, total, wits), _, _) ->
      Governor.release_mem t.governor Mem.join_combo_bytes;
      if Hashtbl.mem t.emitted binding then next t
      else begin
        Hashtbl.add t.emitted binding ();
        Governor.charge_mem t.governor Mem.answer_entry_bytes;
        Some (binding, total, wits)
      end
    | None ->
      Invariant.fail
        "Ranked_join.next: buffer reported min distance %d <= threshold %d but popped empty \
         (%d input stream(s), %d binding(s) emitted)"
        (Option.value (Dr_queue.min_distance t.buffer) ~default:(-1))
        (threshold t) (Array.length t.inputs) (Hashtbl.length t.emitted)
  end
  else
    match next_source t with
    | -1 -> (
      (* every input exhausted: flush the buffer *)
      match Dr_queue.pop t.buffer with
      | Some ((binding, total, wits), _, _) ->
        Governor.release_mem t.governor Mem.join_combo_bytes;
        if Hashtbl.mem t.emitted binding then next t
        else begin
          Hashtbl.add t.emitted binding ();
          Governor.charge_mem t.governor Mem.answer_entry_bytes;
          Some (binding, total, wits)
        end
      | None -> None)
    | idx ->
      pull_one t idx;
      next t
