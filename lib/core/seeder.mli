(** Incremental production of a conjunct's initial nodes (§3.3).

    For a conjunct [(?X, R, ?Y)] the traversal may need to start from a large
    set of nodes.  The paper implements the seeding functions as coroutines
    delivering batches of 100 nodes; nodes never needed to answer the query
    are then never added to [D_R] (reported to halve some execution times).

    The three seeding regimes of procedure [Open], lines 14–23:
    - initial state final with weight 0 — every node of [G] matches [R] with
      the empty path, so all nodes are seeded ([All_nodes]);
    - initial state final with positive weight — nodes carrying an edge
      compatible with some initial transition first, then the remaining nodes
      of [G] ([GetAllNodesByLabel]);
    - initial state non-final — only nodes carrying a compatible edge
      ([GetAllStartNodesByLabel]).

    Seeds are [(node, distance)] pairs: the distance is 0 except for the
    RELAX class-ancestor seeds of line 8, which carry
    [depth × beta].  A {!Graphstore.Oid_set} keeps delivered seeds distinct
    (the paper's Sparksee set operations), so a node reachable through
    several seed stages is delivered once, at its first (cheapest) stage. *)

type t

val of_list : ?filter:(int -> bool) -> (int * int) list -> t
(** Fixed seeds — conjuncts whose subject is a constant (cases 1–2 of
    [Open]).  Delivered as a single batch, in the given order.  [filter]
    restricts the seeds to those whose oid it accepts (the shard partition
    of parallel evaluation; default: keep all). *)

val of_initial_state :
  ?governor:Governor.t ->
  ?filter:(int -> bool) ->
  graph:Graphstore.Graph.t ->
  nfa:Automaton.Nfa.t ->
  batch_size:int ->
  unit ->
  t
(** Seeding for [(?X, R, ?Y)] conjuncts, per the regimes above.  The
    candidate scan polls [governor] (default: unlimited) so a deadline or
    cancellation cuts an up-front ([batch_size = max_int]) sweep of a large
    graph short instead of pinning the process.  [filter] restricts
    delivery to candidates whose oid it accepts — the seed partition of
    parallel evaluation: because seeds are filtered before the
    delivered-set dedup, a filtered seeder behaves exactly like a
    sequential seeder over its own subset of the seed universe. *)

val next_batch : t -> (int * int) list
(** The next batch of fresh seeds; [[]] once exhausted.  Batches respect
    [batch_size] (the last may be shorter, including when the governor
    trips mid-scan).
    @raise Failpoints.Injected when the [Seed_batch] failpoint fires. *)

val exhausted : t -> bool
(** True once no further seeds will be produced ([next_batch] would return
    [[]]). *)
