(** Evaluation of a single query conjunct — the paper's [Open], [GetNext]
    and [Succ] procedures (§3.3–§3.4).

    A conjunct [(X, R, Y)] is evaluated by exploring the weighted product
    automaton [H_R] of the conjunct's NFA and the data graph lazily, tuple by
    tuple, returning answers [(v, n, d)] in non-decreasing distance [d].

    The three initialisation cases of [Open]:
    + [(C, R, ?Y)] — start from the node labelled [C]; under RELAX, if [C]
      is a class, also start from every super-class node, most specific
      first, at distance [depth × beta] ([GetAncestors]);
    + [(?X, R, C)] — rewritten to [(C, R⁻, ?X)] (regex reversal, linear
      time); answers are swapped back;
    + [(?X, R, ?Y)] — seeds are delivered in batches by {!Seeder}.

    Implementation notes mirroring §3.4:
    - [D_R] pops minimum distance with final-tuple priority;
    - a hashed [visited] set guarantees no [(v, n, s)] triple is processed
      twice (tuples re-surfacing at higher distance are skipped);
    - [Succ] groups the automaton's out-transitions by label and caches the
      neighbour list between consecutive identical labels;
    - seeds are pushed {e non-final} even when the initial state is final
      with weight 0; the final-state re-queue of [GetNext] (line 13)
      immediately surfaces the answer at the same distance while keeping the
      tuple expandable.  (The paper's line 17 pushes such seeds as final
      tuples only, which as written would prevent any further expansion —
      we keep the behaviour and fix the bookkeeping.) *)

type answer = {
  x : int;  (** instantiation of the conjunct's subject position (node oid) *)
  y : int;  (** instantiation of the object position *)
  dist : int;
  witness : Witness.t option;
      (** the answer's provenance — [Some] iff [options.provenance]; its hop
          costs sum to [dist].  Under case-2 reversal the witness runs in
          traversal order (from the object constant), so its
          [source]/[target] are [y]/[x]. *)
}

type t

val open_ :
  graph:Graphstore.Graph.t ->
  ontology:Ontology.t ->
  options:Options.t ->
  ?governor:Governor.t ->
  ?metrics:Obs.Metrics.t ->
  ?ceiling:int ->
  ?suppress:(int * int, int) Hashtbl.t ->
  ?seed_filter:(int -> bool) ->
  Query.conjunct ->
  t
(** Build the conjunct's automaton and initialise its data structures.

    [governor] is the query's budget (default: a fresh one implementing the
    options' limits): every [D_R] push ticks its tuple budget, and the
    GetNext/seeding loops poll it — a shared governor makes the budget
    cumulative across conjuncts and distance-aware restarts.

    [metrics] is the stream's registry (default: a fresh private one); the
    conjunct records its [queue_depth], [succ_edges] and [seed_batch_ns]
    histograms there.

    [ceiling] is the ψ bound of distance-aware retrieval: tuples with
    distance above it are pruned (and recorded, see {!pruned}).

    [suppress] is a set of already-emitted [(x, y) → dist] answers shared
    across distance-aware restarts: matching pairs are neither re-emitted nor
    re-counted. It is updated in place as answers are emitted.

    [seed_filter] restricts seeding to oids it accepts — the seed-partition
    seam of parallel evaluation ({!Par}): because the per-seed explorations
    of a conjunct are independent (the [visited] and answer keys both carry
    the seed), a filtered conjunct emits exactly the answers of the full
    conjunct whose [x] (the traversal seed; [y] under case-2 reversal) it
    accepts, in the same non-decreasing distance order. *)

val describe :
  graph:Graphstore.Graph.t ->
  ontology:Ontology.t ->
  options:Options.t ->
  Query.conjunct ->
  Automaton.Nfa.t * string * bool
(** The EXPLAIN view of {!open_}: performs the same case analysis (case-2
    reversal, compile mode, seeding regime) without building the evaluation
    structures.  Returns [(automaton, seeding description, reversed)]. *)

val get_next : t -> answer option
(** The next answer in non-decreasing distance order, or [None] when the
    conjunct is exhausted {e or its governor has tripped} (budget, deadline
    or cancellation) — read [Governor.termination] to tell the cases apart;
    the answers already returned are a valid ranked prefix either way.
    Never raises [Options.Out_of_budget].
    @raise Failpoints.Injected when an armed failpoint fires mid-pull
    (converted to a [Fault] termination by [Engine.next]). *)

val close : t -> unit
(** Release the evaluation structures' memory-budget charges (D_R tuples
    still queued, visited/answers tables, provenance arena) — called when a
    levelled part is discarded at the end of a psi level.  The [suppress]
    table is owned by the caller and keeps its own charges.  Idempotent
    enough for its use: the arena is dropped on first call, the table
    charges are released against a clamped-at-zero accountant. *)

val stats : t -> Exec_stats.t

val pruned : t -> bool
(** Whether the ψ ceiling suppressed at least one tuple; if false after
    exhaustion, the evaluation was complete and no restart can find more. *)

val automaton : t -> Automaton.Nfa.t
(** The compiled (ε-free) automaton, for inspection and tests. *)
