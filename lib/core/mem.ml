(* The approximate live-bytes accountant behind [Governor]'s memory budget.

   Omega never asks the GC how big it is: walking the heap is expensive and
   non-deterministic, and `Gc.stat` words include garbage awaiting
   collection.  Instead the evaluation layers charge the accountant at the
   allocation sites of the structures that dominate a query's footprint —
   D_R distance buckets, visited tables, the provenance arena, seed
   delivery sets, join buffers and the trace ring — and release on the
   matching pops/drops.  The model is deliberately coarse (a handful of
   words per entry, below) but it is *monotone in the real footprint* and
   fully deterministic, which is what a budget needs: the same query at the
   same budget degrades at the same point on every run, so the chaos suite
   can pin exact-ranked-prefix behaviour under memory pressure. *)

type t = { mutable live : int; mutable peak : int }

let create () = { live = 0; peak = 0 }

let charge t bytes =
  t.live <- t.live + bytes;
  if t.live > t.peak then t.peak <- t.live

let release t bytes =
  t.live <- t.live - bytes;
  if t.live < 0 then t.live <- 0

let live t = t.live
let peak t = t.peak

(* --- the cost model --------------------------------------------------

   Sizes are in bytes on a 64-bit runtime (word = 8).  Each constant is
   the approximate retained size of ONE entry of the named structure,
   including container overhead (list cons cells, hashtable buckets, boxed
   keys) — not just the payload.  The numbers are documented in DESIGN.md
   ("Resource safety"); they only need to be stable and roughly
   proportional, not exact. *)

let word = 8

(* A D_R tuple: (node, state, dist, prov) block + its bucket cons cell. *)
let tuple_bytes = 9 * word

(* One visited/answers hashtable binding: bucket cons + boxed key pair. *)
let visited_entry_bytes = 8 * word

(* One provenance arena entry: a slot in each of the three parallel int
   arrays (parent/node/edge). *)
let prov_entry_bytes = 3 * word

(* One oid recorded in a seeder's delivered set. *)
let seed_entry_bytes = 4 * word

(* One tuple remembered in a join input's [seen] list. *)
let join_seen_bytes = 8 * word

(* One buffered join combination (bindings array + queue cell). *)
let join_combo_bytes = 12 * word

(* One projected-answer dedup binding in the engine. *)
let answer_entry_bytes = 8 * word

let of_mb mb = mb * 1024 * 1024
