(** Compact parent pointers for answer provenance.

    When {!Options.t.provenance} is on, every tuple pushed to [D_R] records
    how it was derived — its parent's arena index, the data node reached and
    the automaton transition (or seed) that produced it — in an append-only
    arena owned by the conjunct.  Walking the parent chain from an answer's
    entry reconstructs its {!Witness.t}.  Entries are never freed before the
    conjunct is dropped: answers may be requested at any point of the
    stream, and tuples still in [D_R] hold arena indices. *)

type edge =
  | Seed of { cost : int; ops : (Automaton.Nfa.op * int) list }
      (** an [Open] seed at the given starting distance — positive only for
          RELAX class-ancestor seeds, whose cost is [depth × beta] *)
  | Step of Automaton.Nfa.transition
      (** one [Succ] expansion: the product-automaton transition taken *)

type t

val no_parent : int
(** The parent index of a seed entry (-1); also the [prov] field of every
    tuple when provenance is off. *)

val create : unit -> t

val length : t -> int

val add : t -> parent:int -> node:int -> edge -> int
(** Append an entry and return its index. [node] is the data-graph node the
    tuple sits on ([Seed]: the seed node itself). *)

val get : t -> int -> int * int * edge
(** [(parent, node, edge)] of an entry.
    @raise Invalid_argument on an out-of-range index. *)
