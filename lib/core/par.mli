(** Domain-pool evaluation with a deterministic ranked merge — the parallel
    seam behind [Options.domains] (see DESIGN.md "Parallel evaluation").

    A [Par.t] runs [domains] copies of a sequential shard evaluator, each on
    its own OCaml domain with its own {!Governor.shard_of} governor and its
    own private metrics registry, and recombines their answer streams on the
    consuming domain.  Buckets of the staging queue are released only when
    no live shard can still contribute to them (per-shard streams are
    non-decreasing in distance up to [slack]), and each released bucket is
    sorted by the documented tie-break — ascending [(x, y)] within a
    distance — so the merged stream is {e deterministic}: the same answers
    in the same order at any domain count [>= 2], independent of
    scheduling.

    Budgets stay query-wide: shard governors share the tuple and memory
    atomics of the query governor's {!Governor.Shared} block, the first trip
    anywhere wins, and after a trip the consumer's emitted prefix is exact
    (sealed buckets are complete by construction).  Joined shards roll their
    [Exec_stats], metrics registries and degradation tallies back into the
    stream's accounting. *)

type t

val create :
  domains:int ->
  slack:int ->
  governor:Governor.t ->
  metrics:Obs.Metrics.t ->
  ?label:string ->
  ?dedup:bool ->
  ?queue_cap:int ->
  build:
    (shard:int ->
    governor:Governor.t ->
    metrics:Obs.Metrics.t ->
    (unit -> Conjunct.answer option) * (unit -> Exec_stats.t)) ->
  unit ->
  t
(** Spawn the pool.  [build ~shard ~governor ~metrics] runs {e on the
    worker's domain} and returns the shard's pull function and a stats
    thunk (sampled once, after the shard's last pull); it must construct
    evaluation state from scratch — sharing mutable structures across
    shards is the caller's bug.  [slack] is the shard streams' emission
    slack (0 for plain conjuncts, [phi - 1] for psi-levelled evaluation).
    [dedup] enables cross-shard [(x, y)] deduplication — required for
    part-sharding, where shards keep independent emitted-tables; the first
    (cheapest) occurrence wins.  [governor] gains a {!Governor.Shared}
    block; its [Governor.Shared.set_on_trip] hook is pointed at the pool's
    wake-up broadcast.

    [label] (default ["shard"]) prefixes the trace-lane names workers give
    their domains ({!Obs.Trace.set_thread_name}: ["<label> <i>"]).
    [queue_cap] (default 8192, min 1) bounds each shard's undrained pending
    list; workers park at the cap until the consumer drains
    ([Options.par_queue_cap] threads it from the CLI).

    When the flight recorder is on ({!Obs.Flight}), the pool logs its
    scheduling events — shard start/done, deliveries, park/unpark, seals
    with their per-shard bound inputs, emits, stop — under a fresh flow id,
    and a consumer-side watchdog flags shards silent beyond
    [Obs.Flight.stall_threshold_ns] on clocked runs.  With the recorder off
    the only cost is a per-event flag load.

    Records the [par_merge_wait_ns], [par_shard_answers] and
    [par_shard_busy_ns] histograms in [metrics].  Each worker also measures
    its own wall time (when a clock is installed) into the
    [par_busy_total_ns] / [par_busy_max_ns] stats, the raw material of the
    shard load-imbalance metric. *)

val next : t -> Conjunct.answer option
(** The next merged answer, or [None] on exhaustion or when the query
    governor has tripped (the answers already returned are then an exact
    ranked prefix).  Blocks while every sealed bucket is empty and some
    shard is still running.  Returning [None] implies the pool has been
    joined — no domains outlive the stream. *)

val close : t -> unit
(** Stop the pool cooperatively without tripping the governor (an abandoned
    stream still reports [Completed]), join every domain and roll up their
    accounting.  Idempotent; called by [Evaluator.close] /
    [Engine.close]. *)

val merge_stats : t -> into:Exec_stats.t -> unit
(** Merge the stats of every {e completed} shard into [into] (still-running
    shards are excluded — their records are being mutated on other
    domains; after [next] returns [None] or {!close}, all shards are
    included). *)

val shards : t -> int
(** The pool size (the [par_shards] stat). *)

val shard_report : t -> (int * int * int) list
(** Per-shard [(index, busy_ns, answers)] for every {e completed} shard —
    the audit record's shard breakdown.  [busy_ns] is 0 without a clock.
    Complete after [next] has returned [None] or {!close}. *)
