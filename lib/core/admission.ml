(* Admission control: static pre-flight cost analysis of a CRP query,
   run after parsing and before any evaluation state is built.

   The APPROX/RELAX transformations can blow an innocuous regex up into an
   automaton whose lazy product with the graph is infeasible to explore;
   the governor only notices once the work is already being done.  This
   module estimates the blow-up from quantities that are cheap and exact —
   the compiled automaton itself (compilation interns labels but never
   scans an edge) and the graph's node count — and lets [Engine.open_query]
   reject the query outright, before the first Succ call.  A rejected
   query reports [Engine.Rejected] and provably never touches the graph:
   the chaos suite pins [edges_scanned = 0].

   Estimation formulae (documented in DESIGN.md, "Resource safety"):

     states(c)       = |Q| of the conjunct's compiled automaton
     fanout(c)       = max out-degree over its states
     seed_est(c)     = 1 for a known constant subject (after the case-2
                       reversal), 0 for an unknown constant (the conjunct
                       is empty), |V_G| for a variable subject
     product_est(c)  = states(c) * seed_est(c)   — the |Q|*|V_seed|
                       frontier bound of the lazy product H_R
     total_product   = sum over conjuncts (a ranked join explores each
                       input's product independently)

   The estimate deliberately ignores the ontology closure of RELAX seeds
   (a handful of ancestors) and never calls [Conjunct.relax_ancestor_seeds]
   — that path consults failpoints, and admission must stay side-effect
   free. *)

module Graph = Graphstore.Graph
module Regex = Rpq_regex.Regex
module Nfa = Automaton.Nfa

type conjunct_estimate = {
  index : int; (* 1-based, body order *)
  states : int;
  transitions : int;
  fanout : int;
  seed_est : int;
  product_est : int;
}

type estimate = {
  per_conjunct : conjunct_estimate list;
  total_states : int;
  total_product_est : int;
  join_arity : int;
}

type kind = Max_states | Max_product_est

type rejection = { kind : kind; limit : int; actual : int; conjunct : int option }

let fanout nfa =
  let m = ref 0 in
  for s = 0 to Nfa.n_states nfa - 1 do
    let d = List.length (Nfa.out nfa s) in
    if d > !m then m := d
  done;
  !m

let estimate_conjunct ~graph ~ontology ~options ~index (c : Query.conjunct) =
  (* Case 2 of [Conjunct.open_]: (?X, R, C) is evaluated as (C, R-, ?X). *)
  let subj, regex, obj =
    match (c.Query.subj, c.Query.obj) with
    | Query.Var _, Query.Const _ -> (c.Query.obj, Regex.reverse c.Query.regex, c.Query.subj)
    | _ -> (c.Query.subj, c.Query.regex, c.Query.obj)
  in
  let mode = Options.compile_mode options c.Query.cmode in
  let nfa = Automaton.Compile.conjunct_automaton ~graph ~ontology ~mode regex in
  let seed_est =
    match subj with
    | Query.Const name -> ( match Graph.find_node graph name with Some _ -> 1 | None -> 0)
    | Query.Var _ -> Graph.n_nodes graph
  in
  (* An unknown object constant empties the conjunct before any expansion. *)
  let seed_est =
    match obj with
    | Query.Const name when Graph.find_node graph name = None -> 0
    | _ -> seed_est
  in
  let states = Nfa.n_states nfa in
  {
    index;
    states;
    transitions = Nfa.n_transitions nfa;
    fanout = fanout nfa;
    seed_est;
    product_est = states * seed_est;
  }

let estimate ~graph ~ontology ~options (q : Query.t) =
  let per_conjunct =
    List.mapi (fun i c -> estimate_conjunct ~graph ~ontology ~options ~index:(i + 1) c) q.Query.conjuncts
  in
  {
    per_conjunct;
    total_states = List.fold_left (fun acc c -> acc + c.states) 0 per_conjunct;
    total_product_est = List.fold_left (fun acc c -> acc + c.product_est) 0 per_conjunct;
    join_arity = List.length per_conjunct;
  }

let vet ~graph ~ontology ~options (q : Query.t) =
  let est = estimate ~graph ~ontology ~options q in
  let states_rejection =
    match options.Options.max_states with
    | None -> None
    | Some limit -> (
      match List.find_opt (fun c -> c.states > limit) est.per_conjunct with
      | Some c ->
        Some { kind = Max_states; limit; actual = c.states; conjunct = Some c.index }
      | None -> None)
  in
  let rejection =
    match states_rejection with
    | Some _ as r -> r
    | None -> (
      match options.Options.max_product_est with
      | Some limit when est.total_product_est > limit ->
        Some { kind = Max_product_est; limit; actual = est.total_product_est; conjunct = None }
      | _ -> None)
  in
  (est, rejection)

let kind_string = function Max_states -> "max-states" | Max_product_est -> "max-product-est"

let rejection_string r =
  match r.kind with
  | Max_states ->
    Printf.sprintf "conjunct %d compiles to %d automaton state(s), over the --max-states limit %d"
      (Option.value r.conjunct ~default:0)
      r.actual r.limit
  | Max_product_est ->
    Printf.sprintf
      "estimated product frontier |Q|x|V_seed| = %d, over the --max-product-est limit %d" r.actual
      r.limit

let pp_rejection ppf r = Format.pp_print_string ppf (rejection_string r)

let pp_estimate ppf e =
  Format.fprintf ppf "states=%d product-est=%d arity=%d" e.total_states e.total_product_est
    e.join_arity;
  List.iter
    (fun c ->
      Format.fprintf ppf "; c%d: states=%d transitions=%d fanout=%d seeds~%d product~%d" c.index
        c.states c.transitions c.fanout c.seed_est c.product_est)
    e.per_conjunct
