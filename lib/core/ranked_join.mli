(** Incremental ranked join of conjunct answer streams.

    Multi-conjunct CRP queries are answered by joining the per-conjunct
    streams on their shared variables and returning combined bindings in
    non-decreasing {e total} distance (the sum of the conjuncts' distances) —
    the "ranked join" of the system layer (§3).

    The algorithm is a hash-rank join in the HRJN style (Ilyas et al.): pull
    one answer at a time from the stream with the smallest last-seen
    distance, join it against everything already pulled from the other
    streams, buffer the combinations, and release a buffered combination
    once its total is at most the threshold
    [min_i (last_i + Σ_{j≠i} top_j)] — a lower bound on the total of any
    combination not yet formed. *)

type binding = (string * int) list
(** Variable assignments, node oids as values, sorted by variable name. *)

val binding_of : (string * int) list -> binding
(** Canonicalise (sort by variable, check duplicates).
    @raise Invalid_argument if a variable is bound twice inconsistently. *)

val compatible : binding -> binding -> bool
(** Do the bindings agree on every shared variable? *)

val merge : binding -> binding -> binding
(** Union of two {!compatible} bindings. *)

type t

val create :
  ?governor:Governor.t ->
  ?metrics:Obs.Metrics.t ->
  (unit -> (binding * int * Witness.t list) option) list ->
  t
(** [create streams] — each stream must yield answers in non-decreasing
    distance.  The pull loop polls [governor] (default: unlimited) and
    every buffered combination ticks its tuple budget, so the join's own
    memory draws on the same per-query ceiling as the conjuncts' [D_R].
    [metrics] (default: a fresh private registry) receives the
    [join_combos] histogram — combinations produced per input pull.
    @raise Invalid_argument on the empty list. *)

val next : t -> (binding * int * Witness.t list) option
(** Next joined binding with its total distance and the witnesses of the
    participating conjunct answers (empty unless provenance is on), in
    non-decreasing total order.  Identical bindings arising from different
    answer combinations are emitted once, at their smallest total.  Returns
    [None] when the
    inputs are exhausted {e or the governor tripped} (the emitted prefix
    stays valid).
    @raise Failpoints.Injected when the [Join_pull] failpoint fires. *)
