(** Answer witnesses: the data path an answer traversed plus the
    edit/relaxation script that admitted it (§3.2/§2.3 made inspectable).

    A witness is the parent chain of the answer tuple, re-walked from the
    seed: one [Seed] hop (with a positive cost only for RELAX class-ancestor
    seeds), one [Edge] hop per [Succ] expansion, and a trailing [Final] hop
    when the accepting state carried a positive final weight (an ε-removed
    trailing deletion).  The invariant pinned by the provenance property
    suite: hop costs sum to the answer's distance, each hop's op costs sum
    to the flexible part of its cost, and every [Edge] hop is a real edge of
    the data graph under its label. *)

type hop =
  | Seed of { node : int; cost : int; ops : (Automaton.Nfa.op * int) list }
  | Edge of {
      src : int;
      dst : int;
      lbl : Automaton.Nfa.tlabel;
      cost : int;
      ops : (Automaton.Nfa.op * int) list;
    }
  | Final of { cost : int; ops : (Automaton.Nfa.op * int) list }

type t = {
  source : int;  (** the seed node the exploration started from *)
  target : int;  (** the node the answer binds (before case-2 swap-back) *)
  dist : int;  (** the answer's reported distance *)
  hops : hop list;  (** seed first, in traversal order *)
}

val hop_cost : hop -> int
val hop_ops : hop -> (Automaton.Nfa.op * int) list

val cost : t -> int
(** Sum of hop costs — equals [dist] for every witness the engine emits. *)

val ops : t -> (Automaton.Nfa.op * int) list
(** The edit/relaxation script: all hop ops, in traversal order. *)

val ops_cost : t -> int
(** Sum of the script's op costs — the flexible part of [dist] (all of it
    under unit costs, where exact transitions are free). *)

val edges : t -> (int * Automaton.Nfa.tlabel * int) list
(** The data edges traversed, as [(src, label, dst)] — the replayable path. *)

val pp_path :
  node:(int -> string) -> label:(int -> string) -> Format.formatter -> t -> unit
(** [source --lbl--> n1 --lbl--> target], with seed/final surcharges shown
    inline; [node] renders node oids, [label] interned label ids. *)

val pp_script : Format.formatter -> t -> unit
(** The operation list alone, e.g. [sub(+1), relax-sp^2(+2)] — or
    ["exact (no edits)"]. *)

val pp : node:(int -> string) -> label:(int -> string) -> Format.formatter -> t -> unit
(** Two-line rendering: path, then script with the distance. *)

val to_json : node:(int -> string) -> label:(int -> string) -> t -> Obs.Json.t
