(** Named, deterministic-seedable fault-injection points.

    The engine's hot paths call {!check} at four places; the chaos suite (and
    operators debugging production incidents) arm a subset of them with a
    firing probability and a PRNG seed, making every run reproducible.  When
    a point fires it raises {!Injected}, which the engine converts into a
    governor [Fault] termination — never a crash, and the answers emitted
    before the fault remain a valid ranked prefix (see DESIGN.md).

    Disabled (the default), {!check} is a single indirect call to a constant
    no-op closure: no branches, no lookups, no allocation.

    The catalogue:
    - [Graph_scan] (["scan"]) — a CSR neighbour scan in [Succ];
    - [Seed_batch] (["seed"]) — a seed-batch delivery by the coroutine;
    - [Join_pull] (["join"]) — a pull from an input of the ranked join;
    - [Ontology_lookup] (["onto"]) — a class-ancestor lookup of RELAX seeding;
    - [Srv_accept] (["accept"]) — a connection accept in the query server;
    - [Srv_read] (["read"]) — a request-frame read in the query server;
    - [Srv_write] (["write"]) — a response write in the query server.

    The three server points are checked by [Server]'s connection loop, not
    the engine: an injected server fault aborts one connection (typed,
    audited) and must never take the daemon down — the protocol chaos suite
    pins that.

    Arming is process-global, but the PRNG state is {e per-domain}
    (domain-local storage, re-synced on every re-arm): concurrent engine
    runs — parallel shard workers, or two independent streams in one
    process — draw from independent deterministic streams instead of racing
    on one.  The initial domain's stream is derived from the seed exactly
    as before parallel evaluation existed (single-domain runs reproduce
    byte-for-byte); a worker domain folds its domain id into the seed.
    Arming can come from {!arm} directly, an {!arm_spec} string (CLI
    [--failpoints]), or the [OMEGA_FAILPOINTS] environment variable (CI
    chaos job). *)

type point =
  | Graph_scan
  | Seed_batch
  | Join_pull
  | Ontology_lookup
  | Srv_accept
  | Srv_read
  | Srv_write

exception Injected of string
(** Carries the {!point_name} of the point that fired. *)

val all_points : point list

val point_name : point -> string

val point_of_name : string -> point option

val check : point -> unit
(** Called by the engine at each site.
    @raise Injected when the point is armed and its coin flip fires. *)

val arm : ?seed:int -> (point * float) list -> unit
(** [arm ~seed [(p, prob); ...]] activates the listed points, each firing
    with probability [prob] on every {!check}, driven by a splitmix64 PRNG
    seeded with [seed] (default 0) — same seed, same faults. *)

val disarm : unit -> unit
(** Restore the no-op hook. *)

val parse : string -> ((point * float) list * int option, string) result
(** Parse a spec like ["scan=0.01,join=0.05#42"] ([#seed] optional; a bare
    point name means probability 1). *)

val arm_spec : string -> (unit, string) result
(** {!parse} then {!arm}. *)

val env_var : string
(** ["OMEGA_FAILPOINTS"]. *)

val arm_from_env : unit -> (bool, string) result
(** Arm from [OMEGA_FAILPOINTS] if set; [Ok true] when armed, [Ok false]
    when the variable is absent or empty. *)
