(* Domain-pool evaluation with a deterministic ranked merge (DESIGN.md
   "Parallel evaluation").

   Each shard runs an ordinary sequential evaluator over its own partition
   of the work (seed vertices, or alternation parts) on its own OCaml
   domain, with its own governor ([Governor.shard_of]) and its own private
   metrics registry — nothing on a worker's hot path is shared except the
   query-wide atomics of [Governor.Shared].  Workers deliver answers into
   per-shard pending lists under one mutex; the consuming domain drains
   them into a distance-bucketed staging queue and releases ("seals") a
   bucket only once no shard can still produce an answer for it.

   The sealing rule.  A shard's stream is non-decreasing in distance up to
   [slack] (0 for plain conjuncts; [phi - 1] for psi-levelled evaluators,
   whose emission order is only non-decreasing across levels): after a
   shard has delivered an answer at distance [last], everything it delivers
   later is >= [last - slack].  So bucket [d] is complete once every shard
   that might still owe answers satisfies [last - slack > d].  A shard that
   finished by exhausting its work ([complete]) owes nothing and drops out
   of the bound; a shard that finished for any other reason — its governor
   tripped, or it observed the query-wide stop — may have died holding
   undelivered answers at any distance >= [last - slack], so its term stays
   in the min forever and the bound freezes at its frontier.  (The
   recorder's postmortems for ROADMAP open item 5 caught the previous rule
   — dropping *every* finished shard — emitting a bucket that was missing
   a tripped shard's undelivered answers when the consumer lost the wake
   race after a trip.)  Sealed buckets are sorted ascending [(x, y)] before
   release — the documented tie-break that makes the merged stream
   identical at any domain count >= 2.

   The bound [min over owing shards of (last - slack)] is monotone
   (per-shard [last] never decreases; a shard completing only removes a
   term from the min; an incomplete shard's term freezes), so buckets are
   sealed exactly once and the output is globally non-decreasing in
   distance.  After an incomplete finish the query-wide stop is already
   set, so the consumer never waits on a frozen bound — it unwinds through
   its next governor poll with the sealed prefix, which is exact. *)

type outcome = {
  o_stats : Exec_stats.t; (* copied by the worker at its end — never shared live *)
  o_registry : Obs.Metrics.t;
  o_gov : Governor.t;
}

type shard = {
  gov : Governor.t;
  mutable pending : Conjunct.answer list; (* newest first; drained by the consumer *)
  mutable qlen : int;
  mutable last : int; (* max distance delivered; -1 before the first answer *)
  mutable done_ : bool;
  mutable complete : bool;
      (* [done_] with all work delivered: only such shards leave the seal
         bound.  A tripped or stopped shard stays [done_ && not complete]. *)
  mutable delivered : int; (* answers pushed; heartbeat cadence + flight totals *)
  mutable seen_ns : int; (* last delivery timestamp (clocked runs); stall watchdog *)
  mutable stalled : bool; (* one Stall event per silence episode *)
  mutable outcome : outcome option;
  mutable failure : exn option; (* non-failpoint worker crash, re-raised at join *)
}

type t = {
  n : int;
  label : string; (* trace-lane prefix: workers name themselves "<label> <i>" *)
  slack : int;
  flow : int; (* flight-recorder flow id for this merge instance *)
  queue_cap : int;
  governor : Governor.t; (* the query's governor (consumer side) *)
  shared : Governor.Shared.t;
  metrics : Obs.Metrics.t; (* the stream's registry; shard registries merge in at join *)
  m : Mutex.t;
  progress : Condition.t; (* consumer waits here for pushes / completions *)
  space : Condition.t; (* workers wait here when their pending list is full *)
  shards : shard array;
  mutable handles : unit Domain.t array;
  buffer : Conjunct.answer Dr_queue.t; (* staging: drained but not yet sealed *)
  mutable ready : Conjunct.answer list; (* sealed, canonically ordered, ready to emit *)
  seen : (int * int, unit) Hashtbl.t option;
      (* part-sharding only: shards have independent emitted-tables, so the
         same (x, y) can arrive from several shards; the first sealed
         occurrence is the cheapest (buckets seal in ascending distance) and
         later ones are dropped here.  [None] for seed-sharding, where the
         partition key is x itself and cross-shard duplicates cannot occur. *)
  mutable joined : bool;
  h_merge_wait : Obs.Metrics.histogram;
  h_shard_answers : Obs.Metrics.histogram;
  h_shard_busy : Obs.Metrics.histogram;
}

(* Per-shard pending-list cap default: bounds the unmerged backlog a fast
   shard can accumulate while a slow one holds the seal bound back.
   Workers park on [space] at the cap and the consumer's drain wakes them,
   so the cap trades merge latency against memory without ever
   deadlocking.  [Options.par_queue_cap] overrides it per query. *)
let default_queue_cap = 8192

let worker t i build =
  let sh = t.shards.(i) in
  let registry = Obs.Metrics.create () in
  let stats_fn = ref Exec_stats.create in
  (* name this domain's trace lane before any span lands on it *)
  Obs.Trace.set_thread_name (Printf.sprintf "%s %d" t.label i);
  let clocked = Obs.Clock.installed () in
  let t0 = if clocked then !Obs.Clock.now_ns () else 0 in
  (* benign unlocked int store: the watchdog only compares it to the clock *)
  sh.seen_ns <- t0;
  if Obs.Flight.enabled () then Obs.Flight.record ~flow:t.flow ~shard:i Obs.Flight.Shard_start;
  (try
     let pull, stats = build ~shard:i ~governor:sh.gov ~metrics:registry in
     stats_fn := stats;
     let rec loop () =
       match pull () with
       | None -> ()
       | Some (a : Conjunct.answer) ->
         let fl = Obs.Flight.enabled () in
         Mutex.lock t.m;
         if sh.qlen >= t.queue_cap && not (Governor.Shared.stopped t.shared) then begin
           if fl then Obs.Flight.record ~flow:t.flow ~shard:i (Obs.Flight.Park { qlen = sh.qlen });
           while sh.qlen >= t.queue_cap && not (Governor.Shared.stopped t.shared) do
             Condition.wait t.space t.m
           done;
           if fl then Obs.Flight.record ~flow:t.flow ~shard:i Obs.Flight.Unpark
         end;
         let stopped = Governor.Shared.stopped t.shared in
         if not stopped then begin
           sh.pending <- a :: sh.pending;
           sh.qlen <- sh.qlen + 1;
           sh.delivered <- sh.delivered + 1;
           if a.Conjunct.dist > sh.last then sh.last <- a.Conjunct.dist;
           if clocked then sh.seen_ns <- !Obs.Clock.now_ns ();
           sh.stalled <- false;
           if fl then begin
             if Obs.Flight.detail () then
               Obs.Flight.record ~flow:t.flow ~shard:i
                 (Obs.Flight.Deliver { dist = a.Conjunct.dist });
             if sh.delivered land 63 = 0 then
               Obs.Flight.record ~flow:t.flow ~shard:i
                 (Obs.Flight.Heartbeat { qlen = sh.qlen; last = sh.last })
           end;
           Condition.signal t.progress
         end;
         Mutex.unlock t.m;
         if not stopped then loop ()
     in
     loop ()
   with
   | Failpoints.Injected name ->
     (* the same conversion [Engine.next] applies on the sequential path, so
        the termination taxonomy does not depend on the domain count *)
     Governor.fault sh.gov name
   | e ->
     sh.failure <- Some e;
     Governor.fault sh.gov "worker-exception");
  let stats = Exec_stats.copy (!stats_fn ()) in
  (* the shard's wall time, birth to last delivery: merged additively into
     [par_busy_total_ns] and by max into [par_busy_max_ns], so the stream
     aggregate reads total shard work and the critical path directly *)
  if clocked then begin
    let busy = !Obs.Clock.now_ns () - t0 in
    stats.Exec_stats.par_busy_total_ns <- busy;
    stats.Exec_stats.par_busy_max_ns <- busy
  end;
  let out = { o_stats = stats; o_registry = registry; o_gov = sh.gov } in
  (* the shard completed iff its pull stream ran dry on its own: neither
     this shard's governor nor the query-wide stop cut it short *)
  let complete =
    Governor.tripped sh.gov = None && not (Governor.Shared.stopped t.shared)
  in
  Mutex.lock t.m;
  sh.outcome <- Some out;
  sh.done_ <- true;
  sh.complete <- complete;
  if Obs.Flight.enabled () then
    Obs.Flight.record ~flow:t.flow ~shard:i
      (Obs.Flight.Shard_done { complete; answers = sh.delivered });
  Condition.broadcast t.progress;
  Mutex.unlock t.m

let create ~domains ~slack ~governor ~metrics ?(label = "shard") ?(dedup = false)
    ?(queue_cap = default_queue_cap) ~build () =
  let n = max 1 domains in
  let shared = Governor.share governor in
  let shards =
    Array.init n (fun _ ->
        {
          gov = Governor.shard_of governor;
          pending = [];
          qlen = 0;
          last = -1;
          done_ = false;
          complete = false;
          delivered = 0;
          seen_ns = 0;
          stalled = false;
          outcome = None;
          failure = None;
        })
  in
  let t =
    {
      n;
      label;
      slack = max 0 slack;
      flow = Obs.Flight.new_flow ();
      queue_cap = max 1 queue_cap;
      governor;
      shared;
      metrics;
      m = Mutex.create ();
      progress = Condition.create ();
      space = Condition.create ();
      shards;
      handles = [||];
      buffer = Dr_queue.create ();
      ready = [];
      seen = (if dedup then Some (Hashtbl.create 256) else None);
      joined = false;
      h_merge_wait = Obs.Metrics.histogram metrics "par_merge_wait_ns";
      h_shard_answers = Obs.Metrics.histogram metrics "par_shard_answers";
      h_shard_busy = Obs.Metrics.histogram metrics "par_shard_busy_ns";
    }
  in
  if Obs.Flight.enabled () then
    Obs.Flight.record ~flow:t.flow (Obs.Flight.Flow_open { shards = n; slack = t.slack; label });
  (* A trip (or close) raised anywhere must wake workers parked on [space]
     and a consumer parked on [progress]; the hook takes [t.m], so no
     caller of trip/close may hold it — [Par] itself only trips through
     governor polls made outside the mutex. *)
  Governor.Shared.set_on_trip shared (fun () ->
      Mutex.lock t.m;
      if Obs.Flight.enabled () then Obs.Flight.record ~flow:t.flow Obs.Flight.Stop;
      Condition.broadcast t.space;
      Condition.broadcast t.progress;
      Mutex.unlock t.m);
  t.handles <- Array.init n (fun i -> Domain.spawn (fun () -> worker t i build));
  t

let shards t = t.n

(* --- consumer side (all under t.m unless noted) ----------------------- *)

let drain_locked t =
  let drained = ref false in
  Array.iter
    (fun sh ->
      if sh.pending <> [] then begin
        drained := true;
        List.iter
          (fun (a : Conjunct.answer) -> Dr_queue.push t.buffer ~dist:a.dist ~final:false a)
          (List.rev sh.pending);
        sh.pending <- [];
        sh.qlen <- 0
      end)
    t.shards;
  if !drained then Condition.broadcast t.space

(* The seal bound.  A shard leaves the min only by *completing*; a shard
   that finished without completing (trip / stop) freezes its term, because
   its undelivered answers could land anywhere at or above it. *)
let bound_locked t =
  let b = ref max_int in
  Array.iter
    (fun sh -> if not (sh.done_ && sh.complete) then b := min !b (sh.last - t.slack))
    t.shards;
  !b

let seal_locked t ~bound =
  let batch = ref [] in
  let rec pop () =
    match Dr_queue.min_distance t.buffer with
    | Some d when d < bound -> (
      match Dr_queue.pop t.buffer with
      | Some (a, _, _) ->
        batch := a :: !batch;
        pop ()
      | None -> ())
    | _ -> ()
  in
  pop ();
  !batch

(* The consumer-side stall watchdog: a shard silent past the threshold
   (clocked runs with the recorder on) gets one Stall event per episode;
   the next delivery re-arms it. *)
let watchdog_locked t =
  let now = !Obs.Clock.now_ns () in
  Array.iteri
    (fun i sh ->
      if
        (not sh.done_)
        && (not sh.stalled)
        && sh.seen_ns > 0
        && now - sh.seen_ns > !Obs.Flight.stall_threshold_ns
      then begin
        sh.stalled <- true;
        Obs.Flight.record ~flow:t.flow ~shard:i
          (Obs.Flight.Stall { silent_ns = now - sh.seen_ns })
      end)
    t.shards

(* The deterministic tie-break: ascending (dist, x, y).  Shard pops arrive
   min-distance-first but LIFO within a bucket, so the sort both fixes the
   in-bucket order and interleaves the (already ascending) buckets of a
   multi-bucket batch correctly. *)
let canonicalize t batch =
  let sorted =
    List.sort
      (fun (a : Conjunct.answer) (b : Conjunct.answer) ->
        let c = compare a.dist b.dist in
        if c <> 0 then c
        else
          let c = compare a.x b.x in
          if c <> 0 then c else compare a.y b.y)
      batch
  in
  match t.seen with
  | None -> sorted
  | Some tbl ->
    List.filter
      (fun (a : Conjunct.answer) ->
        if Hashtbl.mem tbl (a.x, a.y) then false
        else begin
          Hashtbl.add tbl (a.x, a.y) ();
          true
        end)
      sorted

let join_and_rollup t =
  if not t.joined then begin
    t.joined <- true;
    Array.iter Domain.join t.handles;
    Array.iter
      (fun sh ->
        match sh.outcome with
        | None -> ()
        | Some o ->
          Obs.Metrics.merge_into t.metrics o.o_registry;
          Governor.absorb t.governor ~from:o.o_gov;
          Obs.Metrics.observe t.h_shard_answers o.o_stats.Exec_stats.answers;
          (* gated like h_merge_wait: a clockless 0 is "unmeasured", not a
             distribution point *)
          if o.o_stats.Exec_stats.par_busy_total_ns > 0 then
            Obs.Metrics.observe t.h_shard_busy o.o_stats.Exec_stats.par_busy_total_ns)
      t.shards;
    (* surface genuine worker crashes (anything but an injected failpoint)
       on the consuming domain rather than silently reporting a Fault *)
    Array.iter
      (fun sh -> match sh.failure with Some e -> raise e | None -> ())
      t.shards
  end

let close t =
  if not t.joined then begin
    Governor.Shared.close t.shared;
    join_and_rollup t
  end

let emit t a rest =
  t.ready <- rest;
  if Obs.Flight.detail () then
    Obs.Flight.record ~flow:t.flow
      (Obs.Flight.Emit { dist = a.Conjunct.dist; x = a.Conjunct.x; y = a.Conjunct.y });
  Some a

let next t =
  match t.ready with
  | a :: rest -> emit t a rest
  | [] ->
    if t.joined then None
    else if not (Governor.poll t.governor) then begin
      (* tripped: the emitted sealed prefix is exact; discard the rest *)
      join_and_rollup t;
      None
    end
    else begin
      let clocked = Obs.Clock.installed () in
      let fl = Obs.Flight.enabled () in
      let exhausted = ref false in
      Mutex.lock t.m;
      let rec attempt () =
        drain_locked t;
        let bound = bound_locked t in
        (match seal_locked t ~bound with
        | [] ->
          if bound = max_int then exhausted := true (* every shard done, buffer flushed *)
          else if not (Governor.Shared.stopped t.shared) then begin
            let t0 = if clocked then !Obs.Clock.now_ns () else 0 in
            Condition.wait t.progress t.m;
            if clocked then begin
              Obs.Metrics.observe t.h_merge_wait (!Obs.Clock.now_ns () - t0);
              if fl then watchdog_locked t
            end;
            attempt ()
          end
          (* else: stopped — unwind with nothing ready; handled below *)
        | batch -> (
          if fl then
            Obs.Flight.record ~flow:t.flow
              (Obs.Flight.Seal
                 {
                   bound;
                   batch = List.length batch;
                   inputs =
                     Array.to_list
                       (Array.mapi
                          (fun j sh ->
                            {
                              Obs.Flight.i_shard = j;
                              i_last = sh.last;
                              i_state = (if not sh.done_ then 0 else if sh.complete then 1 else 2);
                            })
                          t.shards);
                 });
          (* a part-sharded batch can dedup away entirely: keep merging
             rather than falling through to the stopped/exhausted exit *)
          match canonicalize t batch with [] -> attempt () | ready -> t.ready <- ready))
      in
      attempt ();
      Mutex.unlock t.m;
      if !exhausted then begin
        join_and_rollup t;
        None
      end
      else
        match t.ready with
        | a :: rest -> emit t a rest
        | [] ->
          (* a trip or close stopped the merge between polls *)
          join_and_rollup t;
          None
    end

let merge_stats t ~into =
  Mutex.lock t.m;
  Array.iter
    (fun sh ->
      match sh.outcome with Some o -> Exec_stats.merge_into into o.o_stats | None -> ())
    t.shards;
  Mutex.unlock t.m

let shard_report t =
  Mutex.lock t.m;
  let report = ref [] in
  Array.iteri
    (fun i sh ->
      match sh.outcome with
      | Some o ->
        report :=
          (i, o.o_stats.Exec_stats.par_busy_total_ns, o.o_stats.Exec_stats.answers) :: !report
      | None -> ())
    t.shards;
  Mutex.unlock t.m;
  List.rev !report
