(* Domain-pool evaluation with a deterministic ranked merge (DESIGN.md
   "Parallel evaluation").

   Each shard runs an ordinary sequential evaluator over its own partition
   of the work (seed vertices, or alternation parts) on its own OCaml
   domain, with its own governor ([Governor.shard_of]) and its own private
   metrics registry — nothing on a worker's hot path is shared except the
   query-wide atomics of [Governor.Shared].  Workers deliver answers into
   per-shard pending lists under one mutex; the consuming domain drains
   them into a distance-bucketed staging queue and releases ("seals") a
   bucket only once no live shard can still produce an answer for it.

   The sealing rule.  A shard's stream is non-decreasing in distance up to
   [slack] (0 for plain conjuncts; [phi - 1] for psi-levelled evaluators,
   whose emission order is only non-decreasing across levels): after a
   shard has delivered an answer at distance [last], everything it delivers
   later is >= [last - slack].  So bucket [d] is complete once every
   not-yet-finished shard satisfies [last - slack > d]; finished shards
   contribute nothing further whatever their reason for finishing, because
   on a trip the consumer stops emitting at its next governor poll and the
   already-emitted prefix is exact.  Sealed buckets are sorted ascending
   [(x, y)] before release — the documented tie-break that makes the merged
   stream identical at any domain count >= 2.

   The bound [min over live shards of (last - slack)] is monotone
   (per-shard [last] never decreases; a shard finishing only removes a term
   from the min), so buckets are sealed exactly once and the output is
   globally non-decreasing in distance. *)

type outcome = {
  o_stats : Exec_stats.t; (* copied by the worker at its end — never shared live *)
  o_registry : Obs.Metrics.t;
  o_gov : Governor.t;
}

type shard = {
  gov : Governor.t;
  mutable pending : Conjunct.answer list; (* newest first; drained by the consumer *)
  mutable qlen : int;
  mutable last : int; (* max distance delivered; -1 before the first answer *)
  mutable done_ : bool;
  mutable outcome : outcome option;
  mutable failure : exn option; (* non-failpoint worker crash, re-raised at join *)
}

type t = {
  n : int;
  label : string; (* trace-lane prefix: workers name themselves "<label> <i>" *)
  slack : int;
  governor : Governor.t; (* the query's governor (consumer side) *)
  shared : Governor.Shared.t;
  metrics : Obs.Metrics.t; (* the stream's registry; shard registries merge in at join *)
  m : Mutex.t;
  progress : Condition.t; (* consumer waits here for pushes / completions *)
  space : Condition.t; (* workers wait here when their pending list is full *)
  shards : shard array;
  mutable handles : unit Domain.t array;
  buffer : Conjunct.answer Dr_queue.t; (* staging: drained but not yet sealed *)
  mutable ready : Conjunct.answer list; (* sealed, canonically ordered, ready to emit *)
  seen : (int * int, unit) Hashtbl.t option;
      (* part-sharding only: shards have independent emitted-tables, so the
         same (x, y) can arrive from several shards; the first sealed
         occurrence is the cheapest (buckets seal in ascending distance) and
         later ones are dropped here.  [None] for seed-sharding, where the
         partition key is x itself and cross-shard duplicates cannot occur. *)
  mutable joined : bool;
  h_merge_wait : Obs.Metrics.histogram;
  h_shard_answers : Obs.Metrics.histogram;
  h_shard_busy : Obs.Metrics.histogram;
}

(* Per-shard pending-list cap: bounds the unmerged backlog a fast shard can
   accumulate while a slow one holds the seal bound back.  Workers park on
   [space] at the cap and the consumer's drain wakes them, so the cap
   trades merge latency against memory without ever deadlocking. *)
let queue_cap = 8192

let worker t i build =
  let sh = t.shards.(i) in
  let registry = Obs.Metrics.create () in
  let stats_fn = ref Exec_stats.create in
  (* name this domain's trace lane before any span lands on it *)
  Obs.Trace.set_thread_name (Printf.sprintf "%s %d" t.label i);
  let clocked = Obs.Clock.installed () in
  let t0 = if clocked then !Obs.Clock.now_ns () else 0 in
  (try
     let pull, stats = build ~shard:i ~governor:sh.gov ~metrics:registry in
     stats_fn := stats;
     let rec loop () =
       match pull () with
       | None -> ()
       | Some (a : Conjunct.answer) ->
         Mutex.lock t.m;
         while sh.qlen >= queue_cap && not (Governor.Shared.stopped t.shared) do
           Condition.wait t.space t.m
         done;
         let stopped = Governor.Shared.stopped t.shared in
         if not stopped then begin
           sh.pending <- a :: sh.pending;
           sh.qlen <- sh.qlen + 1;
           if a.Conjunct.dist > sh.last then sh.last <- a.Conjunct.dist;
           Condition.signal t.progress
         end;
         Mutex.unlock t.m;
         if not stopped then loop ()
     in
     loop ()
   with
   | Failpoints.Injected name ->
     (* the same conversion [Engine.next] applies on the sequential path, so
        the termination taxonomy does not depend on the domain count *)
     Governor.fault sh.gov name
   | e ->
     sh.failure <- Some e;
     Governor.fault sh.gov "worker-exception");
  let stats = Exec_stats.copy (!stats_fn ()) in
  (* the shard's wall time, birth to last delivery: merged additively into
     [par_busy_total_ns] and by max into [par_busy_max_ns], so the stream
     aggregate reads total shard work and the critical path directly *)
  if clocked then begin
    let busy = !Obs.Clock.now_ns () - t0 in
    stats.Exec_stats.par_busy_total_ns <- busy;
    stats.Exec_stats.par_busy_max_ns <- busy
  end;
  let out = { o_stats = stats; o_registry = registry; o_gov = sh.gov } in
  Mutex.lock t.m;
  sh.outcome <- Some out;
  sh.done_ <- true;
  Condition.broadcast t.progress;
  Mutex.unlock t.m

let create ~domains ~slack ~governor ~metrics ?(label = "shard") ?(dedup = false) ~build () =
  let n = max 1 domains in
  let shared = Governor.share governor in
  let shards =
    Array.init n (fun _ ->
        {
          gov = Governor.shard_of governor;
          pending = [];
          qlen = 0;
          last = -1;
          done_ = false;
          outcome = None;
          failure = None;
        })
  in
  let t =
    {
      n;
      label;
      slack = max 0 slack;
      governor;
      shared;
      metrics;
      m = Mutex.create ();
      progress = Condition.create ();
      space = Condition.create ();
      shards;
      handles = [||];
      buffer = Dr_queue.create ();
      ready = [];
      seen = (if dedup then Some (Hashtbl.create 256) else None);
      joined = false;
      h_merge_wait = Obs.Metrics.histogram metrics "par_merge_wait_ns";
      h_shard_answers = Obs.Metrics.histogram metrics "par_shard_answers";
      h_shard_busy = Obs.Metrics.histogram metrics "par_shard_busy_ns";
    }
  in
  (* A trip (or close) raised anywhere must wake workers parked on [space]
     and a consumer parked on [progress]; the hook takes [t.m], so no
     caller of trip/close may hold it — [Par] itself only trips through
     governor polls made outside the mutex. *)
  Governor.Shared.set_on_trip shared (fun () ->
      Mutex.lock t.m;
      Condition.broadcast t.space;
      Condition.broadcast t.progress;
      Mutex.unlock t.m);
  t.handles <- Array.init n (fun i -> Domain.spawn (fun () -> worker t i build));
  t

let shards t = t.n

(* --- consumer side (all under t.m unless noted) ----------------------- *)

let drain_locked t =
  let drained = ref false in
  Array.iter
    (fun sh ->
      if sh.pending <> [] then begin
        drained := true;
        List.iter
          (fun (a : Conjunct.answer) -> Dr_queue.push t.buffer ~dist:a.dist ~final:false a)
          (List.rev sh.pending);
        sh.pending <- [];
        sh.qlen <- 0
      end)
    t.shards;
  if !drained then Condition.broadcast t.space

let bound_locked t =
  let b = ref max_int in
  Array.iter (fun sh -> if not sh.done_ then b := min !b (sh.last - t.slack)) t.shards;
  !b

let seal_locked t ~bound =
  let batch = ref [] in
  let rec pop () =
    match Dr_queue.min_distance t.buffer with
    | Some d when d < bound -> (
      match Dr_queue.pop t.buffer with
      | Some (a, _, _) ->
        batch := a :: !batch;
        pop ()
      | None -> ())
    | _ -> ()
  in
  pop ();
  !batch

(* The deterministic tie-break: ascending (dist, x, y).  Shard pops arrive
   min-distance-first but LIFO within a bucket, so the sort both fixes the
   in-bucket order and interleaves the (already ascending) buckets of a
   multi-bucket batch correctly. *)
let canonicalize t batch =
  let sorted =
    List.sort
      (fun (a : Conjunct.answer) (b : Conjunct.answer) ->
        let c = compare a.dist b.dist in
        if c <> 0 then c
        else
          let c = compare a.x b.x in
          if c <> 0 then c else compare a.y b.y)
      batch
  in
  match t.seen with
  | None -> sorted
  | Some tbl ->
    List.filter
      (fun (a : Conjunct.answer) ->
        if Hashtbl.mem tbl (a.x, a.y) then false
        else begin
          Hashtbl.add tbl (a.x, a.y) ();
          true
        end)
      sorted

let join_and_rollup t =
  if not t.joined then begin
    t.joined <- true;
    Array.iter Domain.join t.handles;
    Array.iter
      (fun sh ->
        match sh.outcome with
        | None -> ()
        | Some o ->
          Obs.Metrics.merge_into t.metrics o.o_registry;
          Governor.absorb t.governor ~from:o.o_gov;
          Obs.Metrics.observe t.h_shard_answers o.o_stats.Exec_stats.answers;
          (* gated like h_merge_wait: a clockless 0 is "unmeasured", not a
             distribution point *)
          if o.o_stats.Exec_stats.par_busy_total_ns > 0 then
            Obs.Metrics.observe t.h_shard_busy o.o_stats.Exec_stats.par_busy_total_ns)
      t.shards;
    (* surface genuine worker crashes (anything but an injected failpoint)
       on the consuming domain rather than silently reporting a Fault *)
    Array.iter
      (fun sh -> match sh.failure with Some e -> raise e | None -> ())
      t.shards
  end

let close t =
  if not t.joined then begin
    Governor.Shared.close t.shared;
    join_and_rollup t
  end

let next t =
  match t.ready with
  | a :: rest ->
    t.ready <- rest;
    Some a
  | [] ->
    if t.joined then None
    else if not (Governor.poll t.governor) then begin
      (* tripped: the emitted sealed prefix is exact; discard the rest *)
      join_and_rollup t;
      None
    end
    else begin
      let clocked = Obs.Clock.installed () in
      let exhausted = ref false in
      Mutex.lock t.m;
      let rec attempt () =
        drain_locked t;
        let bound = bound_locked t in
        (match seal_locked t ~bound with
        | [] ->
          if bound = max_int then exhausted := true (* every shard done, buffer flushed *)
          else if not (Governor.Shared.stopped t.shared) then begin
            let t0 = if clocked then !Obs.Clock.now_ns () else 0 in
            Condition.wait t.progress t.m;
            if clocked then Obs.Metrics.observe t.h_merge_wait (!Obs.Clock.now_ns () - t0);
            attempt ()
          end
          (* else: stopped — unwind with nothing ready; handled below *)
        | batch -> (
          (* a part-sharded batch can dedup away entirely: keep merging
             rather than falling through to the stopped/exhausted exit *)
          match canonicalize t batch with [] -> attempt () | ready -> t.ready <- ready))
      in
      attempt ();
      Mutex.unlock t.m;
      if !exhausted then begin
        join_and_rollup t;
        None
      end
      else
        match t.ready with
        | a :: rest ->
          t.ready <- rest;
          Some a
        | [] ->
          (* a trip or close stopped the merge between polls *)
          join_and_rollup t;
          None
    end

let merge_stats t ~into =
  Mutex.lock t.m;
  Array.iter
    (fun sh ->
      match sh.outcome with Some o -> Exec_stats.merge_into into o.o_stats | None -> ())
    t.shards;
  Mutex.unlock t.m

let shard_report t =
  Mutex.lock t.m;
  let report = ref [] in
  Array.iteri
    (fun i sh ->
      match sh.outcome with
      | Some o ->
        report :=
          (i, o.o_stats.Exec_stats.par_busy_total_ns, o.o_stats.Exec_stats.answers) :: !report
      | None -> ())
    t.shards;
  Mutex.unlock t.m;
  List.rev !report
