exception Broken of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Broken msg)) fmt
