module Regex = Rpq_regex.Regex

(* Level-wise evaluation shared by distance-aware retrieval and alternation
   decomposition: run each part (one sub-automaton; a single part for plain
   distance-aware mode) with ceiling ψ, stream its answers lazily, then move
   to the next part; when the level is done, bump ψ by φ and reorder the
   parts by increasing answer count of the previous level (§4.3).  Answers
   already emitted at earlier levels are suppressed via the shared [emitted]
   table, so each (x, y) pair surfaces once, at its smallest distance.

   With uniform operation costs (the paper's setting) every new answer at
   level ψ has distance exactly ψ, so the global emission order is exact;
   with heterogeneous costs answers within one level may interleave across
   parts by at most φ - 1. *)
type levelled = {
  graph : Graphstore.Graph.t;
  ontology : Ontology.t;
  options : Options.t;
  governor : Governor.t;
  metrics : Obs.Metrics.t; (* shared with every part this evaluator opens *)
  seed_filter : (int -> bool) option; (* shard partition, threaded to every part open *)
  emitted : (int * int, int) Hashtbl.t;
  phi : int;
  mutable psi : int;
  mutable remaining : Query.conjunct list; (* parts not yet run at this level *)
  mutable current : (Conjunct.t * Query.conjunct) option;
  mutable current_count : int;
  mutable part_start_ns : int; (* clock sample at the current part's open *)
  mutable counts : (Query.conjunct * int) list; (* finished parts, this level *)
  mutable level_complete : bool; (* no part pruned anything so far this level *)
  mutable exhausted : bool;
  stats : Exec_stats.t;
  agg : Exec_stats.t; (* reused aggregate returned by [stats] *)
}

(* A parallel conjunct: a [Par] domain pool whose shards each run an
   ordinary sequential evaluator ([create_seq]) over a partition of the
   work — of the seed vertices for [(?X, R, ?Y)] conjuncts, of the
   top-level alternation parts for constant-seeded decomposed ones. *)
type parallel = {
  par : Par.t;
  p_agg : Exec_stats.t; (* reused aggregate returned by [stats] *)
}

type t = Plain of Conjunct.t | Levelled of levelled | Parallel of parallel

(* The sequential strategies (Plain/Levelled) — the whole story when
   [options.domains = 1], and the per-shard evaluator when it is not.
   [seed_filter] partitions the seed universe; [parts] overrides the
   decomposition part list (a shard runs only its own parts). *)
let create_seq ~graph ~ontology ~options ~governor ~metrics ?seed_filter ?parts
    (conjunct : Query.conjunct) =
  let alternatives = Regex.top_level_alternatives conjunct.regex in
  let decomposed = options.Options.decompose && List.length alternatives > 1 in
  if decomposed || options.Options.distance_aware then begin
    let parts =
      match parts with
      | Some ps -> ps
      | None ->
        if decomposed then List.map (fun regex -> { conjunct with Query.regex }) alternatives
        else [ conjunct ]
    in
    Levelled
      {
        graph;
        ontology;
        options;
        governor;
        metrics;
        seed_filter;
        emitted = Hashtbl.create 64;
        phi = Options.phi options conjunct.cmode;
        psi = 0;
        remaining = parts;
        current = None;
        current_count = 0;
        part_start_ns = 0;
        counts = [];
        level_complete = true;
        exhausted = false;
        stats = Exec_stats.create ();
        agg = Exec_stats.create ();
      }
  end
  else Plain (Conjunct.open_ ~graph ~ontology ~options ~governor ~metrics ?seed_filter conjunct)

let finish_part lev eval part =
  Exec_stats.merge_into lev.stats (Conjunct.stats eval);
  lev.stats.restarts <- lev.stats.restarts + 1;
  if Conjunct.pruned eval then lev.level_complete <- false;
  (* the discarded part's structures are garbage from here on — release
     their memory-budget charges so the estimate tracks the live footprint *)
  Conjunct.close eval;
  if Obs.Trace.enabled () then
    Obs.Trace.complete ~cat:"psi" ~start_ns:lev.part_start_ns
      ~args:[ ("psi", Obs.Trace.Num lev.psi); ("answers", Obs.Trace.Num lev.current_count) ]
      "psi.part";
  lev.counts <- (part, lev.current_count) :: lev.counts;
  lev.current <- None;
  lev.current_count <- 0

let rec next_levelled lev =
  (* The restart loop's own governor poll: a tripped budget/deadline stops
     the ψ escalation before the next part opens or the next level starts —
     [exhausted] stays false, so the distinction between "complete" and
     "cut off" is readable from the governor's termination. *)
  if lev.exhausted || not (Governor.poll lev.governor) then None
  else
    match lev.current with
    | Some (eval, part) -> (
      match Conjunct.get_next eval with
      | Some a ->
        lev.current_count <- lev.current_count + 1;
        Some a
      | None when Governor.tripped lev.governor <> None ->
        (* cut mid-part: do not treat the part as finished (its counts
           would skew the reorder) — the top-of-function poll returns None *)
        next_levelled lev
      | None ->
        finish_part lev eval part;
        next_levelled lev)
    | None -> (
      match lev.remaining with
      | part :: rest ->
        lev.remaining <- rest;
        lev.part_start_ns <- !Exec_stats.now_ns ();
        lev.current <-
          Some
            ( Conjunct.open_ ~graph:lev.graph ~ontology:lev.ontology ~options:lev.options
                ~governor:lev.governor ~metrics:lev.metrics ~ceiling:lev.psi
                ~suppress:lev.emitted ?seed_filter:lev.seed_filter part,
              part );
        next_levelled lev
      | [] ->
        (* level finished *)
        if lev.level_complete then begin
          lev.exhausted <- true;
          None
        end
        else if Governor.shrink_psi lev.governor then begin
          (* stage-2 memory degradation: decline the psi escalation.  Every
             answer of distance <= psi is already out, so stopping here ends
             the query with an exact ranked prefix; [note_shrink_psi] counts
             the declined escalation and trips [Memory_budget]. *)
          Governor.note_shrink_psi lev.governor;
          None
        end
        else begin
          lev.remaining <-
            List.map fst (List.stable_sort (fun (_, n1) (_, n2) -> compare n1 n2) (List.rev lev.counts));
          lev.counts <- [];
          lev.level_complete <- true;
          lev.psi <- lev.psi + lev.phi;
          if Obs.Trace.enabled () then
            Obs.Trace.instant ~cat:"psi" ~args:[ ("psi", Obs.Trace.Num lev.psi) ] "psi.level";
          next_levelled lev
        end)

let next = function
  | Plain c -> Conjunct.get_next c
  | Levelled lev -> next_levelled lev
  | Parallel p -> Par.next p.par

let take t k =
  let rec loop acc k =
    if k <= 0 then List.rev acc
    else match next t with Some a -> loop (a :: acc) (k - 1) | None -> List.rev acc
  in
  loop [] k

(* The levelled aggregate is computed into a record owned and reused by the
   evaluator — polling stats mid-stream therefore allocates nothing and
   perturbs nothing.  Callers wanting a snapshot use [Exec_stats.copy]. *)
let stats = function
  | Plain c -> Conjunct.stats c
  | Levelled lev ->
    Exec_stats.reset lev.agg;
    Exec_stats.merge_into lev.agg lev.stats;
    (match lev.current with
    | Some (eval, _) -> Exec_stats.merge_into lev.agg (Conjunct.stats eval)
    | None -> ());
    lev.agg
  | Parallel p ->
    (* still-running shards are excluded (their records live on other
       domains); once the stream has ended every shard is in *)
    Exec_stats.reset p.p_agg;
    Par.merge_stats p.par ~into:p.p_agg;
    p.p_agg.Exec_stats.par_shards <- Par.shards p.par;
    p.p_agg

let close = function
  | Plain _ | Levelled _ -> ()
  | Parallel p -> Par.close p.par

let shard_report = function
  | Plain _ | Levelled _ -> []
  | Parallel p -> Par.shard_report p.par

(* The parallel dispatch.  Two partition seams exist:
   - seed-sharding, for [(?X, R, ?Y)] conjuncts: seeds split [oid mod n]
     across shards.  Per-seed explorations are independent (the visited and
     answer keys both carry the seed vertex), so a shard emits exactly the
     full conjunct's answers whose [x] it owns and no cross-shard
     deduplication is needed;
   - part-sharding, for constant-seeded conjuncts whose query decomposes
     ([options.decompose] with a top-level alternation): alternation parts
     split [index mod n] across shards, each shard levelling its own parts
     with its own emitted-table — so the merge deduplicates [(x, y)] across
     shards, keeping the first (cheapest) sealed occurrence.
   Everything else — constant-seeded, undecomposed — stays sequential
   whatever [options.domains] says: a single-source Dijkstra offers no
   partition with these guarantees. *)
let create ~graph ~ontology ~options ?governor ?metrics (conjunct : Query.conjunct) =
  let governor = match governor with Some g -> g | None -> Options.governor options in
  let metrics = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  let alternatives = Regex.top_level_alternatives conjunct.regex in
  let decomposed = options.Options.decompose && List.length alternatives > 1 in
  let seed_parallel =
    match (conjunct.Query.subj, conjunct.Query.obj) with
    | Query.Var _, Query.Var _ -> true
    | _ -> false
  in
  let part_parallel = (not seed_parallel) && decomposed in
  let domains =
    if seed_parallel then options.Options.domains
    else if part_parallel then min options.Options.domains (List.length alternatives)
    else 1
  in
  if domains <= 1 then create_seq ~graph ~ontology ~options ~governor ~metrics conjunct
  else begin
    let slack =
      (* a psi-levelled shard's emission order is only non-decreasing up to
         phi - 1 across level boundaries; a plain shard's is exact *)
      if decomposed || options.Options.distance_aware then
        Options.phi options conjunct.Query.cmode - 1
      else 0
    in
    let all_parts =
      if decomposed then List.map (fun regex -> { conjunct with Query.regex }) alternatives
      else [ conjunct ]
    in
    let build ~shard ~governor ~metrics =
      let ev =
        if seed_parallel then
          create_seq ~graph ~ontology ~options ~governor ~metrics
            ~seed_filter:(fun oid -> oid mod domains = shard)
            conjunct
        else
          create_seq ~graph ~ontology ~options ~governor ~metrics
            ~parts:(List.filteri (fun i _ -> i mod domains = shard) all_parts)
            conjunct
      in
      ((fun () -> next ev), fun () -> stats ev)
    in
    Parallel
      {
        par =
          Par.create ~domains ~slack ~governor ~metrics
            ~label:(if seed_parallel then "seed-shard" else "part-shard")
            ~dedup:part_parallel ~queue_cap:options.Options.par_queue_cap ~build ();
        p_agg = Exec_stats.create ();
      }
  end

let automaton_name : Automaton.Compile.mode -> string = function
  | Automaton.Compile.Exact -> "M_R"
  | Automaton.Compile.Approx _ -> "A_R"
  | Automaton.Compile.Relax _ -> "M^K_R"

let mode_string : Query.mode -> string = function
  | Query.Exact -> "exact"
  | Query.Approx -> "approx"
  | Query.Relax -> "relax"

(* The EXPLAIN view of [create]: reproduce the strategy choice and compile
   the automata, without opening any evaluation state. *)
let describe ~graph ~ontology ~options ~index (conjunct : Query.conjunct) =
  let nfa, seeding, reversed = Conjunct.describe ~graph ~ontology ~options conjunct in
  let mode = Options.compile_mode options conjunct.Query.cmode in
  let alternatives = Regex.top_level_alternatives conjunct.Query.regex in
  let decomposed = options.Options.decompose && List.length alternatives > 1 in
  let phi = Options.phi options conjunct.Query.cmode in
  let strategy =
    if decomposed then Printf.sprintf "decomposed(%d, phi=%d)" (List.length alternatives) phi
    else if options.Options.distance_aware then Printf.sprintf "distance-aware(phi=%d)" phi
    else "plain"
  in
  let parts =
    if not decomposed then []
    else
      List.map
        (fun regex ->
          let pnfa, _, _ =
            Conjunct.describe ~graph ~ontology ~options { conjunct with Query.regex }
          in
          {
            Obs.Explain.p_regex = Format.asprintf "%a" Regex.pp regex;
            p_states = Automaton.Nfa.n_states pnfa;
            p_transitions = Automaton.Nfa.n_transitions pnfa;
          })
        alternatives
  in
  {
    Obs.Explain.index;
    (* [pp] prefixes the mode itself, so the source is the bare triple *)
    source = Format.asprintf "%a" Query.pp_conjunct { conjunct with Query.cmode = Query.Exact };
    mode = mode_string conjunct.Query.cmode;
    automaton = automaton_name mode;
    states = Automaton.Nfa.n_states nfa;
    transitions = Automaton.Nfa.n_transitions nfa;
    reversed;
    strategy;
    seeding;
    parts;
    counters = [];
  }
