(** Internal-invariant failures with diagnosable context.

    Replaces bare [assert false] in places the code can prove unreachable
    from its own invariants (e.g. "validated head variables appear in the
    body", "a non-empty queue pops"): if a refactor or an injected fault
    ever breaks one, the exception names the exact site and the values
    involved, so a chaos-suite failure is a bug report rather than
    [Assert_failure]. *)

exception Broken of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Broken} with the formatted message. *)
