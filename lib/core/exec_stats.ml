type t = {
  mutable pushes : int;
  mutable pops : int;
  mutable succ_calls : int;
  mutable edges_scanned : int;
  mutable adjacency_bytes : int;
  mutable scan_ns : int;
  mutable batches : int;
  mutable seeds : int;
  mutable answers : int;
  mutable peak_queue : int;
  mutable restarts : int;
  mutable pruned : int;
  mutable drop_visited : int;
  mutable drop_dup : int;
  mutable mem_bytes_peak : int;
  mutable admission_est_states : int;
  mutable degrade_drop_provenance : int;
  mutable degrade_shrink_psi : int;
  mutable par_shards : int;
  mutable par_busy_total_ns : int;
  mutable par_busy_max_ns : int;
  mutable gc_minor_words : int;
  mutable gc_major_words : int;
  mutable gc_minor_collections : int;
  mutable gc_major_collections : int;
}

(* The monotonic clock used to attribute time to neighbour scans ([scan_ns])
   is the shared process clock: one [Obs.Clock.install] in a binary's init
   turns on every time attribution at once (scan_ns, governor deadlines,
   trace timestamps).  The default reads nothing, so the engine stays
   dependency-free and pays no syscall on the hot path. *)
let now_ns = Obs.Clock.now_ns

let create () =
  {
    pushes = 0;
    pops = 0;
    succ_calls = 0;
    edges_scanned = 0;
    adjacency_bytes = 0;
    scan_ns = 0;
    batches = 0;
    seeds = 0;
    answers = 0;
    peak_queue = 0;
    restarts = 0;
    pruned = 0;
    drop_visited = 0;
    drop_dup = 0;
    mem_bytes_peak = 0;
    admission_est_states = 0;
    degrade_drop_provenance = 0;
    degrade_shrink_psi = 0;
    par_shards = 0;
    par_busy_total_ns = 0;
    par_busy_max_ns = 0;
    gc_minor_words = 0;
    gc_major_words = 0;
    gc_minor_collections = 0;
    gc_major_collections = 0;
  }

let copy t = { t with pushes = t.pushes }

let reset t =
  t.pushes <- 0;
  t.pops <- 0;
  t.succ_calls <- 0;
  t.edges_scanned <- 0;
  t.adjacency_bytes <- 0;
  t.scan_ns <- 0;
  t.batches <- 0;
  t.seeds <- 0;
  t.answers <- 0;
  t.peak_queue <- 0;
  t.restarts <- 0;
  t.pruned <- 0;
  t.drop_visited <- 0;
  t.drop_dup <- 0;
  t.mem_bytes_peak <- 0;
  t.admission_est_states <- 0;
  t.degrade_drop_provenance <- 0;
  t.degrade_shrink_psi <- 0;
  t.par_shards <- 0;
  t.par_busy_total_ns <- 0;
  t.par_busy_max_ns <- 0;
  t.gc_minor_words <- 0;
  t.gc_major_words <- 0;
  t.gc_minor_collections <- 0;
  t.gc_major_collections <- 0

let merge_into acc x =
  acc.pushes <- acc.pushes + x.pushes;
  acc.pops <- acc.pops + x.pops;
  acc.succ_calls <- acc.succ_calls + x.succ_calls;
  acc.edges_scanned <- acc.edges_scanned + x.edges_scanned;
  acc.adjacency_bytes <- acc.adjacency_bytes + x.adjacency_bytes;
  acc.scan_ns <- acc.scan_ns + x.scan_ns;
  acc.batches <- acc.batches + x.batches;
  acc.seeds <- acc.seeds + x.seeds;
  acc.answers <- acc.answers + x.answers;
  acc.peak_queue <- max acc.peak_queue x.peak_queue;
  acc.restarts <- acc.restarts + x.restarts;
  acc.pruned <- acc.pruned + x.pruned;
  acc.drop_visited <- acc.drop_visited + x.drop_visited;
  acc.drop_dup <- acc.drop_dup + x.drop_dup;
  (* high-water marks merge by max, like peak_queue *)
  acc.mem_bytes_peak <- max acc.mem_bytes_peak x.mem_bytes_peak;
  acc.admission_est_states <- max acc.admission_est_states x.admission_est_states;
  acc.degrade_drop_provenance <- acc.degrade_drop_provenance + x.degrade_drop_provenance;
  acc.degrade_shrink_psi <- acc.degrade_shrink_psi + x.degrade_shrink_psi;
  acc.par_shards <- acc.par_shards + x.par_shards;
  acc.par_busy_total_ns <- acc.par_busy_total_ns + x.par_busy_total_ns;
  (* the slowest shard anywhere in the query, not a sum — like peak_queue *)
  acc.par_busy_max_ns <- max acc.par_busy_max_ns x.par_busy_max_ns;
  acc.gc_minor_words <- acc.gc_minor_words + x.gc_minor_words;
  acc.gc_major_words <- acc.gc_major_words + x.gc_major_words;
  acc.gc_minor_collections <- acc.gc_minor_collections + x.gc_minor_collections;
  acc.gc_major_collections <- acc.gc_major_collections + x.gc_major_collections

let field_names =
  [
    "pushes";
    "pops";
    "succ_calls";
    "edges_scanned";
    "adjacency_bytes";
    "scan_ns";
    "batches";
    "seeds";
    "answers";
    "peak_queue";
    "restarts";
    "pruned";
    "drop_visited";
    "drop_dup";
    "mem_bytes_peak";
    "admission_est_states";
    "degrade_drop_provenance";
    "degrade_shrink_psi";
    "par_shards";
    "par_busy_total_ns";
    "par_busy_max_ns";
    "gc_minor_words";
    "gc_major_words";
    "gc_minor_collections";
    "gc_major_collections";
  ]

let to_assoc t =
  [
    ("pushes", t.pushes);
    ("pops", t.pops);
    ("succ_calls", t.succ_calls);
    ("edges_scanned", t.edges_scanned);
    ("adjacency_bytes", t.adjacency_bytes);
    ("scan_ns", t.scan_ns);
    ("batches", t.batches);
    ("seeds", t.seeds);
    ("answers", t.answers);
    ("peak_queue", t.peak_queue);
    ("restarts", t.restarts);
    ("pruned", t.pruned);
    ("drop_visited", t.drop_visited);
    ("drop_dup", t.drop_dup);
    ("mem_bytes_peak", t.mem_bytes_peak);
    ("admission_est_states", t.admission_est_states);
    ("degrade_drop_provenance", t.degrade_drop_provenance);
    ("degrade_shrink_psi", t.degrade_shrink_psi);
    ("par_shards", t.par_shards);
    ("par_busy_total_ns", t.par_busy_total_ns);
    ("par_busy_max_ns", t.par_busy_max_ns);
    ("gc_minor_words", t.gc_minor_words);
    ("gc_major_words", t.gc_major_words);
    ("gc_minor_collections", t.gc_minor_collections);
    ("gc_major_collections", t.gc_major_collections);
  ]

let record_into registry t =
  List.iter (fun (name, v) -> Obs.Metrics.set (Obs.Metrics.counter registry name) v) (to_assoc t)

let pp ppf t =
  Format.fprintf ppf "pushes=%d pops=%d succ=%d edges=%d adj-bytes=%d " t.pushes t.pops t.succ_calls
    t.edges_scanned t.adjacency_bytes;
  (* A silent 0 used to be indistinguishable from "no clock installed"; flag
     the uninstalled case instead of reporting a fake measurement. *)
  if t.scan_ns = 0 && not (Obs.Clock.installed ()) then Format.fprintf ppf "scan-ns=n/a"
  else Format.fprintf ppf "scan-ns=%d" t.scan_ns;
  Format.fprintf ppf " batches=%d seeds=%d answers=%d peak=%d restarts=%d pruned=%d" t.batches
    t.seeds t.answers t.peak_queue t.restarts t.pruned;
  Format.fprintf ppf " drop-visited=%d drop-dup=%d" t.drop_visited t.drop_dup;
  if t.mem_bytes_peak > 0 then Format.fprintf ppf " mem-peak=%d" t.mem_bytes_peak;
  if t.admission_est_states > 0 then Format.fprintf ppf " adm-states=%d" t.admission_est_states;
  if t.degrade_drop_provenance > 0 || t.degrade_shrink_psi > 0 then
    Format.fprintf ppf " degrade=prov:%d,psi:%d" t.degrade_drop_provenance t.degrade_shrink_psi;
  if t.par_shards > 0 then Format.fprintf ppf " par-shards=%d" t.par_shards;
  if t.par_busy_total_ns > 0 then
    Format.fprintf ppf " par-busy=%d/max:%d" t.par_busy_total_ns t.par_busy_max_ns;
  if t.gc_minor_words > 0 || t.gc_major_words > 0 then
    Format.fprintf ppf " gc=minor:%d,major:%d,collections:%d/%d" t.gc_minor_words t.gc_major_words
      t.gc_minor_collections t.gc_major_collections
