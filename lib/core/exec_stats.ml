type t = {
  mutable pushes : int;
  mutable pops : int;
  mutable succ_calls : int;
  mutable edges_scanned : int;
  mutable adjacency_bytes : int;
  mutable scan_ns : int;
  mutable batches : int;
  mutable seeds : int;
  mutable answers : int;
  mutable peak_queue : int;
  mutable restarts : int;
  mutable pruned : int;
}

(* Monotonic clock used to attribute time to neighbour scans ([scan_ns]).
   The default reads nothing so the engine stays dependency-free and pays no
   syscall on the hot path; binaries that want the breakdown (the CLI's
   --stats, the bench harness) install a real nanosecond clock. *)
let now_ns : (unit -> int) ref = ref (fun () -> 0)

let create () =
  {
    pushes = 0;
    pops = 0;
    succ_calls = 0;
    edges_scanned = 0;
    adjacency_bytes = 0;
    scan_ns = 0;
    batches = 0;
    seeds = 0;
    answers = 0;
    peak_queue = 0;
    restarts = 0;
    pruned = 0;
  }

let reset t =
  t.pushes <- 0;
  t.pops <- 0;
  t.succ_calls <- 0;
  t.edges_scanned <- 0;
  t.adjacency_bytes <- 0;
  t.scan_ns <- 0;
  t.batches <- 0;
  t.seeds <- 0;
  t.answers <- 0;
  t.peak_queue <- 0;
  t.restarts <- 0;
  t.pruned <- 0

let merge_into acc x =
  acc.pushes <- acc.pushes + x.pushes;
  acc.pops <- acc.pops + x.pops;
  acc.succ_calls <- acc.succ_calls + x.succ_calls;
  acc.edges_scanned <- acc.edges_scanned + x.edges_scanned;
  acc.adjacency_bytes <- acc.adjacency_bytes + x.adjacency_bytes;
  acc.scan_ns <- acc.scan_ns + x.scan_ns;
  acc.batches <- acc.batches + x.batches;
  acc.seeds <- acc.seeds + x.seeds;
  acc.answers <- acc.answers + x.answers;
  acc.peak_queue <- max acc.peak_queue x.peak_queue;
  acc.restarts <- acc.restarts + x.restarts;
  acc.pruned <- acc.pruned + x.pruned

let pp ppf t =
  Format.fprintf ppf
    "pushes=%d pops=%d succ=%d edges=%d adj-bytes=%d scan-ns=%d batches=%d seeds=%d answers=%d \
     peak=%d restarts=%d pruned=%d"
    t.pushes t.pops t.succ_calls t.edges_scanned t.adjacency_bytes t.scan_ns t.batches t.seeds
    t.answers t.peak_queue t.restarts t.pruned
