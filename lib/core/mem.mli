(** Approximate live-bytes accounting for the governor's memory budget.

    A deterministic model of the query's dominant allocations, charged and
    released at the allocation sites themselves (D_R buckets, visited
    tables, provenance arena, seed sets, join buffers, trace ring) — never
    sampled from the GC, so the same query under the same budget degrades
    at the same point on every run.  See DESIGN.md, "Resource safety". *)

type t

val create : unit -> t

val charge : t -> int -> unit
(** Add [bytes] to the live estimate, updating the peak. *)

val release : t -> int -> unit
(** Subtract [bytes] (clamped at 0 — a release can never go negative even
    if a structure is dropped twice). *)

val live : t -> int
(** The current live-bytes estimate. *)

val peak : t -> int
(** The high-water mark of {!live} since {!create}. *)

(** {2 The cost model}

    Approximate retained bytes of one entry of each dominant structure,
    including container overhead.  Stable constants, documented in
    DESIGN.md — roughly proportional to the real footprint, not exact. *)

val word : int

val tuple_bytes : int
(** One D_R tuple (node, state, dist, prov) plus its bucket cons cell. *)

val visited_entry_bytes : int
(** One visited/answers hashtable binding. *)

val prov_entry_bytes : int
(** One provenance-arena entry (three parallel int array slots). *)

val seed_entry_bytes : int
(** One oid in a seeder's delivered set. *)

val join_seen_bytes : int
(** One tuple in a join input's [seen] list. *)

val join_combo_bytes : int
(** One buffered join combination. *)

val answer_entry_bytes : int
(** One projected-answer dedup binding. *)

val of_mb : int -> int
(** Megabytes to bytes. *)
