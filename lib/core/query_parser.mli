(** Parser for the paper's concrete query syntax, e.g.
    {v
      (?X) <- APPROX (UK, isLocatedIn-.gradFrom, ?X)
      (?X, ?Y) <- (?X, job.type, ?Y), RELAX (?Y, sc*, ?Z)
    v}

    - the head is a parenthesised, comma-separated list of [?variables];
    - each conjunct is [(term, regex, term)], optionally prefixed by
      [APPROX] or [RELAX];
    - a term is a [?variable] or a constant — any text up to the next
      top-level comma, so node labels may contain spaces
      ([Work Episode, type-, ?X]); surrounding whitespace is trimmed;
    - the regex component uses {!Rpq_regex.Parser}'s grammar. *)

exception Error of string

val max_conjuncts : int
(** Cap on the number of conjuncts (and head variables) a parsed query may
    have (10000) — over it, {!parse} fails with a typed {!Error}.  The
    parser itself is stack-safe (iterative splitting, tail-recursive
    scanning, and the regex component inherits
    [Rpq_regex.Parser.default_max_depth]); the cap keeps a pathological
    body from being admitted into per-conjunct automaton compilation. *)

val parse : string -> Query.t
(** @raise Error on malformed input. *)

val parse_result : string -> (Query.t, string) result

val parse_conjunct : string -> Query.conjunct
(** Parse a single conjunct such as [APPROX (UK, locatedIn-, ?X)].
    @raise Error on malformed input. *)
