(** Evaluation options: edit/relaxation costs and the physical optimisations
    of §3.3–§4.3. *)

type costs = {
  ins : int;  (** APPROX insertion cost (paper: 1) *)
  del : int;  (** APPROX deletion cost (paper: 1) *)
  sub : int;  (** APPROX substitution cost (paper: 1) *)
  beta : int;  (** RELAX rule (i) cost per step (paper: 1) *)
  gamma : int;  (** RELAX rule (ii) cost (paper: 1) *)
}

type t = {
  costs : costs;
  batch_size : int;
      (** how many initial nodes the seeding coroutine delivers per batch for
          [(?X, R, ?Y)] conjuncts (paper default: 100) *)
  distance_aware : bool;
      (** §4.3 "retrieving answers by distance": evaluate with a cost ceiling
          ψ = 0, φ, 2φ, … restarting from scratch at each increment *)
  decompose : bool;
      (** §4.3 "replacing alternation by disjunction": split a top-level
          alternation into sub-automata, adaptively ordered *)
  max_tuples : int option;
      (** the governor's tuple ceiling: stop (reporting
          [Governor.Tuple_budget]) once this many tuples have been queued —
          a deterministic stand-in for the paper's 6 GB memory exhaustion
          ('?' entries of Fig. 10).  The count is {e cumulative} over the
          whole query: every [D_R] push of every conjunct, every join-buffer
          combination, and {e every distance-aware restart} draw from the
          same budget (a ψ-levelled evaluation does not get a fresh budget
          per level — re-expansion work across restarts is real memory/time
          and is billed as such; pinned by the "budget is cumulative across
          distance-aware restarts" regression test) *)
  timeout_ns : int option;
      (** the governor's wall-clock deadline, relative to query open.
          Requires a clock installed in [Governor.now_ns]; without one the
          deadline never fires (documented no-op).  Answers emitted before
          the deadline are a valid ranked prefix. *)
  max_answers : int option;
      (** the governor's answer cap: stop (reporting [Governor.Answer_limit])
          once this many answers have been emitted.  [Engine.run]'s [limit]
          argument lowers this further for the duration of the call. *)
  max_memory_bytes : int option;
      (** the governor's memory budget over the {!Mem} live-bytes estimate
          of the dominant structures (D_R buckets, visited sets, provenance
          arena, seed sets, join buffers, trace ring).  Under pressure the
          engine degrades in stages — drop provenance arenas at 50%, stop
          escalating the psi window at 75% — and past the budget reports
          [Governor.Memory_budget]; the answers emitted remain an exact
          ranked prefix of the full answer set. *)
  max_states : int option;
      (** admission control: reject (before touching the graph, with
          [Engine.Rejected]) any query one of whose conjuncts compiles to
          an automaton with more than this many states after APPROX/RELAX
          expansion.  [None] admits everything. *)
  max_product_est : int option;
      (** admission control: reject when the estimated product frontier
          summed over conjuncts — automaton states x estimated seed
          population |Q| x |V_seed| — exceeds this.  [None] admits
          everything. *)
  failpoints : string option;
      (** a [Failpoints.arm_spec] string armed (process-globally) when the
          query opens, e.g. ["scan=0.01,join=0.05#42"] — the CLI/chaos-suite
          hook; [None] leaves the current arming untouched *)
  final_priority : bool;
      (** ablation switch (default true): pop final tuples before non-final
          ones at equal distance.  The paper reports that this refinement
          "improved the performance of most of our queries, and also ensured
          that some queries, which had previously failed by running out of
          memory, completed" (§3.3) — disabling it lets the benchmark
          harness quantify that claim. *)
  batched_seeding : bool;
      (** ablation switch (default true): deliver [(?X, R, ?Y)] seeds in
          coroutine batches of [batch_size].  When false, all seeds enter
          [D_R] up-front (the paper reports batching "reduced the execution
          time of some queries by half", §3.3). *)
  provenance : bool;
      (** record parent pointers on enqueued tuples (default false) so each
          answer carries a {!Witness.t} — the data path plus the
          edit/relaxation script behind its distance.  Off, the evaluator
          pays exactly one branch per Succ expansion and allocates
          nothing. *)
  domains : int;
      (** evaluate parallelisable conjuncts on this many OCaml domains
          (default 1 — the sequential code path, literally unchanged).
          [(?X, R, ?Y)] conjuncts partition their seed vertices across the
          pool; constant-seeded decomposed conjuncts partition their
          alternation sub-automata.  Shard streams are recombined by the
          deterministic ranked merge of {!Par}, so with [domains > 1] the
          answer stream is the sequential answer set in non-decreasing
          distance with the documented [(x, y)] tie-break, identical at any
          domain count.  See DESIGN.md "Parallel evaluation". *)
  par_queue_cap : int;
      (** per-shard pending-list cap of the parallel merge (default 8192,
          min 1): a worker parks once this many answers await draining, so
          the cap bounds the unmerged backlog a fast shard can pile up
          behind a slow seal bound.  Tiny values make the park/unpark path
          deterministically exercisable in tests. *)
}

exception
  Out_of_budget
  [@deprecated "no longer raised: budget exhaustion is reported through Governor.termination"]
(** @deprecated The pre-governor surface: conjunct evaluation used to raise
    this when [max_tuples] was exceeded, which leaked through [Engine.next]
    while [Engine.run] folded it into a flag.  Nothing raises it any more —
    every budget now trips the {!Governor} and the streams return [None];
    read [Engine.status] / [outcome.termination] instead.  The declaration
    is kept so that downstream [try ... with Options.Out_of_budget] compat
    shims still compile. *)

val governor : ?limit:int -> t -> Governor.t
(** A fresh governor implementing these options' budgets ([max_tuples],
    [timeout_ns], [max_answers]); [limit] caps answers further (the
    smaller of the two wins). *)

val default_costs : costs
(** All five costs are 1, as in the performance study (§4.1). *)

val default : t
(** [default_costs], batch size 100, no optimisations, no budget, 1 domain. *)

val domains_env_var : string
(** ["OMEGA_DOMAINS"]. *)

val domains_from_env : unit -> int
(** The domain count requested through [OMEGA_DOMAINS]: an integer in
    [1 .. 64]; absent, empty or out-of-range values read as 1 (the knob must
    never turn a query into a usage failure).  Callers building options from
    the environment use this as the [domains] default. *)

val phi : t -> Query.mode -> int
(** [phi t mode] is the smallest positive cost of the operations enabled by
    [mode] — the ψ increment of distance-aware retrieval.  1 for [Exact]
    (arbitrary; exact answers all have distance 0). *)

val compile_mode : t -> Query.mode -> Automaton.Compile.mode
(** The automaton transformation corresponding to a conjunct's operator under
    these costs. *)
