type reason = Tuple_budget | Deadline | Answer_limit | Memory_budget | Fault of string

type termination =
  | Completed
  | Exhausted of { reason : reason; elapsed_ns : int; tuples : int; answers : int }

(* Monotonic clock behind deadlines — the shared process clock, the same
   ref [Exec_stats.now_ns] aliases.  One [Obs.Clock.install] in a binary's
   init arms every deadline; the default reads nothing, so a governor
   without a deadline pays no syscall anywhere on the hot path. *)
let now_ns = Obs.Clock.now_ns

(* The cross-domain control block behind parallel evaluation: one per query,
   attached to the main governor and to every shard governor [Par] creates.
   Everything multiple domains touch is an [Atomic]; per-domain quantities
   (polls, answer counts, degradation tallies) stay on the individual
   governors and are rolled up by [absorb] when a shard joins.  [closing] is
   the shutdown token of [Par.close]: it stops shard workers cooperatively
   {e without} tripping the query — a stream abandoned by its consumer must
   still report [Completed]. *)
module Shared = struct
  type t = {
    stop : reason option Atomic.t; (* first trip anywhere wins *)
    closing : bool Atomic.t;
    tuples : int Atomic.t; (* the cumulative tuple count of the whole query *)
    live : int Atomic.t; (* Mem live-bytes estimate, summed over domains *)
    peak : int Atomic.t;
    degrade_prov : bool Atomic.t;
    degrade_psi : bool Atomic.t;
    mutable on_trip : unit -> unit;
        (* installed by [Par]: wakes workers parked on a full shard queue so
           a trip (or close) never leaves one blocked forever *)
  }

  let create () =
    {
      stop = Atomic.make None;
      closing = Atomic.make false;
      tuples = Atomic.make 0;
      live = Atomic.make 0;
      peak = Atomic.make 0;
      degrade_prov = Atomic.make false;
      degrade_psi = Atomic.make false;
      on_trip = (fun () -> ());
    }

  let rec bump_peak t candidate =
    let seen = Atomic.get t.peak in
    if candidate > seen && not (Atomic.compare_and_set t.peak seen candidate) then
      bump_peak t candidate

  let close t =
    Atomic.set t.closing true;
    t.on_trip ()

  let stopped t = Atomic.get t.stop <> None || Atomic.get t.closing

  (* additive: a query with several parallel conjuncts shares one block, and
     each [Par] instance needs its own broadcast run on a trip *)
  let set_on_trip t f =
    let prev = t.on_trip in
    t.on_trip <- (fun () -> prev (); f ())
end

type t = {
  mutable stop : reason option;
  mutable shared : Shared.t option; (* None on the sequential path *)
  is_shard : bool;
      (* only worker-domain governors obey the [closing] token: the query's
         own governor must survive one parallel conjunct shutting down and
         keep governing the rest of the stream *)
  mutable tuples : int;
  tuple_budget : int; (* max_int = unlimited *)
  mutable answers : int;
  answer_cap : int; (* max_int = uncapped *)
  deadline : int; (* absolute ns; max_int = no deadline *)
  start_ns : int;
  mutable polls : int; (* amortises the clock read of deadline polling *)
  mem : Mem.t;
  mem_budget : int; (* bytes; max_int = unlimited *)
  (* The degradation ladder (monotone: a stage, once reached, stays on).
     Stage 1 at 50% of the budget: drop provenance arenas.  Stage 2 at
     75%: stop escalating the psi window.  100%: trip [Memory_budget]. *)
  mutable degrade_prov : bool;
  mutable degrade_psi : bool;
  mutable drops_prov : int; (* times a conjunct actually dropped its arena *)
  mutable shrinks_psi : int; (* times an evaluator declined a psi escalation *)
}

let create ?timeout_ns ?max_tuples ?max_answers ?max_memory_bytes () =
  let start_ns = !now_ns () in
  {
    stop = None;
    shared = None;
    is_shard = false;
    tuples = 0;
    tuple_budget = Option.value max_tuples ~default:max_int;
    answers = 0;
    answer_cap = Option.value max_answers ~default:max_int;
    deadline = (match timeout_ns with None -> max_int | Some ns -> start_ns + ns);
    start_ns;
    polls = 0;
    mem = Mem.create ();
    mem_budget = Option.value max_memory_bytes ~default:max_int;
    degrade_prov = false;
    degrade_psi = false;
    drops_prov = 0;
    shrinks_psi = 0;
  }

let unlimited () = create ()

let reason_string = function
  | Tuple_budget -> "tuple-budget"
  | Deadline -> "deadline"
  | Answer_limit -> "answer-limit"
  | Memory_budget -> "memory-budget"
  | Fault name -> "fault:" ^ name

let trip t reason =
  if t.stop = None then begin
    t.stop <- Some reason;
    if Obs.Flight.enabled () then
      Obs.Flight.record (Obs.Flight.Trip { reason = reason_string reason });
    (match t.shared with
    | None -> ()
    | Some s ->
      (* first trip across all domains wins; losers keep their local stop
         (they unwind either way) but never override the shared reason *)
      if Atomic.compare_and_set s.Shared.stop None (Some reason) then ();
      s.Shared.on_trip ());
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~cat:"governor"
        ~args:
          [
            ("reason", Obs.Trace.Str (reason_string reason));
            ("tuples", Obs.Trace.Num t.tuples);
            ("answers", Obs.Trace.Num t.answers);
          ]
        "governor.trip"
  end

let fault t name = trip t (Fault name)
let cancel ?(reason = "cancelled") t = trip t (Fault reason)

(* Adopt a trip raised on another domain: the local stop takes the shared
   reason, so [termination] on any of the query's governors reports the
   same cause.  The adoption is idempotent and main-thread-visible work
   only (the shared slot is written once, by the winner's CAS). *)
let sync t =
  if t.stop = None then
    match t.shared with
    | None -> ()
    | Some s -> ( match Atomic.get s.Shared.stop with Some r -> t.stop <- Some r | None -> ())

let tripped t =
  sync t;
  t.stop

(* The cooperative check of the hot loops: false means unwind now.  With no
   deadline this is two compares; with one, the clock is read every 16th
   poll so a tight loop pays at most 1/16th of a clock read per iteration.
   Under a shared control block the poll also observes trips raised on
   other domains and the [closing] token of [Par.close]. *)
let poll t =
  match t.stop with
  | Some _ -> false
  | None ->
    (match t.shared with
    | None -> true
    | Some s ->
      sync t;
      t.stop = None && not (t.is_shard && Atomic.get s.Shared.closing))
    && (t.deadline = max_int
       ||
       begin
         t.polls <- t.polls + 1;
         t.polls land 15 <> 0
         || !now_ns () <= t.deadline
         ||
         (trip t Deadline;
          false)
       end)

let tick_tuple t =
  t.tuples <- t.tuples + 1;
  match t.shared with
  | None -> if t.tuples > t.tuple_budget && t.stop = None then trip t Tuple_budget
  | Some s ->
    (* the budget is cumulative over the whole query, so the ceiling is
       checked against the query-wide atomic, not the per-domain share *)
    let total = Atomic.fetch_and_add s.Shared.tuples 1 + 1 in
    if total > t.tuple_budget && t.stop = None then trip t Tuple_budget

(* --- memory accounting ------------------------------------------------

   Charging is always on (two adds on an int record — the accountant is
   free when no budget is set); the ladder is evaluated only under a
   budget.  Thresholds are checked on charge, never on release: once a
   stage is reached it stays on, so degradation is monotone and a query
   cannot flap between keeping and dropping provenance. *)

let charge_mem t bytes =
  Mem.charge t.mem bytes;
  match t.shared with
  | None ->
    if t.mem_budget <> max_int then begin
      let live = Mem.live t.mem in
      if live > t.mem_budget then begin
        if t.stop = None then trip t Memory_budget
      end
      else if live > t.mem_budget / 4 * 3 then begin
        t.degrade_prov <- true;
        t.degrade_psi <- true
      end
      else if live > t.mem_budget / 2 then t.degrade_prov <- true
    end
  | Some s ->
    (* the budget and the ladder govern the query-wide footprint: stages
       reached on one domain apply to every domain (the flags are shared
       atomics and, like the sequential ladder, never turn back off) *)
    let live = Atomic.fetch_and_add s.Shared.live bytes + bytes in
    Shared.bump_peak s live;
    if t.mem_budget <> max_int then
      if live > t.mem_budget then begin
        if t.stop = None then trip t Memory_budget
      end
      else if live > t.mem_budget / 4 * 3 then begin
        Atomic.set s.Shared.degrade_prov true;
        Atomic.set s.Shared.degrade_psi true
      end
      else if live > t.mem_budget / 2 then Atomic.set s.Shared.degrade_prov true

let release_mem t bytes =
  Mem.release t.mem bytes;
  match t.shared with
  | None -> ()
  | Some s -> ignore (Atomic.fetch_and_add s.Shared.live (-bytes))

let mem_live t =
  match t.shared with None -> Mem.live t.mem | Some s -> Atomic.get s.Shared.live

let mem_peak t =
  match t.shared with None -> Mem.peak t.mem | Some s -> Atomic.get s.Shared.peak

let drop_provenance t =
  match t.shared with None -> t.degrade_prov | Some s -> Atomic.get s.Shared.degrade_prov

let shrink_psi t =
  match t.shared with None -> t.degrade_psi | Some s -> Atomic.get s.Shared.degrade_psi
let note_dropped_provenance t = t.drops_prov <- t.drops_prov + 1

(* An evaluator that declines a psi escalation cannot make further
   progress — everything at or below the current ceiling is already out —
   so recording the shrink also terminates the query.  The emitted answers
   are exactly the answers of distance <= psi: an exact ranked prefix. *)
let note_shrink_psi t =
  t.shrinks_psi <- t.shrinks_psi + 1;
  if t.stop = None then trip t Memory_budget

let degrade_counts t = (t.drops_prov, t.shrinks_psi)

let note_answer t =
  t.answers <- t.answers + 1;
  if t.answers >= t.answer_cap && t.stop = None then trip t Answer_limit

let tuples t =
  match t.shared with None -> t.tuples | Some s -> Atomic.get s.Shared.tuples

let answers t = t.answers
let elapsed_ns t = !now_ns () - t.start_ns

let termination t =
  match tripped t with
  | None -> Completed
  | Some reason ->
    Exhausted { reason; elapsed_ns = elapsed_ns t; tuples = tuples t; answers = t.answers }

(* --- parallel attachment ---------------------------------------------- *)

let share t =
  match t.shared with
  | Some s -> s
  | None ->
    let s = Shared.create () in
    (* fold whatever the governor accounted before going parallel into the
       shared totals, so the cumulative budgets keep their meaning *)
    Atomic.set s.Shared.tuples t.tuples;
    Atomic.set s.Shared.live (Mem.live t.mem);
    Atomic.set s.Shared.peak (Mem.peak t.mem);
    if t.degrade_prov then Atomic.set s.Shared.degrade_prov true;
    if t.degrade_psi then Atomic.set s.Shared.degrade_psi true;
    (match t.stop with Some r -> Atomic.set s.Shared.stop (Some r) | None -> ());
    t.shared <- Some s;
    s

let shard_of t =
  let s = share t in
  {
    stop = None;
    shared = Some s;
    is_shard = true;
    tuples = 0;
    tuple_budget = t.tuple_budget;
    answers = 0;
    answer_cap = max_int; (* answers are only counted on the merge side *)
    deadline = t.deadline; (* the same absolute instant on every domain *)
    start_ns = t.start_ns;
    polls = 0;
    mem = Mem.create ();
    mem_budget = t.mem_budget;
    degrade_prov = false;
    degrade_psi = false;
    drops_prov = 0;
    shrinks_psi = 0;
  }

(* Roll a joined shard's per-domain tallies into the query's governor.
   Only the counters that are {e not} already shared flow here; tuple and
   memory totals lived in the shared atomics all along. *)
let absorb t ~from =
  t.drops_prov <- t.drops_prov + from.drops_prov;
  t.shrinks_psi <- t.shrinks_psi + from.shrinks_psi

let closing t =
  match t.shared with None -> false | Some s -> Atomic.get s.Shared.closing

let pp_termination ppf = function
  | Completed -> Format.fprintf ppf "completed"
  | Exhausted { reason; elapsed_ns; tuples; answers } ->
    Format.fprintf ppf "exhausted (%s) after %d answer(s), %d tuple(s), %.2f ms"
      (reason_string reason) answers tuples
      (float_of_int elapsed_ns /. 1e6)
