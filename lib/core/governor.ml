type reason = Tuple_budget | Deadline | Answer_limit | Memory_budget | Fault of string

type termination =
  | Completed
  | Exhausted of { reason : reason; elapsed_ns : int; tuples : int; answers : int }

(* Monotonic clock behind deadlines — the shared process clock, the same
   ref [Exec_stats.now_ns] aliases.  One [Obs.Clock.install] in a binary's
   init arms every deadline; the default reads nothing, so a governor
   without a deadline pays no syscall anywhere on the hot path. *)
let now_ns = Obs.Clock.now_ns

type t = {
  mutable stop : reason option;
  mutable tuples : int;
  tuple_budget : int; (* max_int = unlimited *)
  mutable answers : int;
  answer_cap : int; (* max_int = uncapped *)
  deadline : int; (* absolute ns; max_int = no deadline *)
  start_ns : int;
  mutable polls : int; (* amortises the clock read of deadline polling *)
  mem : Mem.t;
  mem_budget : int; (* bytes; max_int = unlimited *)
  (* The degradation ladder (monotone: a stage, once reached, stays on).
     Stage 1 at 50% of the budget: drop provenance arenas.  Stage 2 at
     75%: stop escalating the psi window.  100%: trip [Memory_budget]. *)
  mutable degrade_prov : bool;
  mutable degrade_psi : bool;
  mutable drops_prov : int; (* times a conjunct actually dropped its arena *)
  mutable shrinks_psi : int; (* times an evaluator declined a psi escalation *)
}

let create ?timeout_ns ?max_tuples ?max_answers ?max_memory_bytes () =
  let start_ns = !now_ns () in
  {
    stop = None;
    tuples = 0;
    tuple_budget = Option.value max_tuples ~default:max_int;
    answers = 0;
    answer_cap = Option.value max_answers ~default:max_int;
    deadline = (match timeout_ns with None -> max_int | Some ns -> start_ns + ns);
    start_ns;
    polls = 0;
    mem = Mem.create ();
    mem_budget = Option.value max_memory_bytes ~default:max_int;
    degrade_prov = false;
    degrade_psi = false;
    drops_prov = 0;
    shrinks_psi = 0;
  }

let unlimited () = create ()

let reason_string = function
  | Tuple_budget -> "tuple-budget"
  | Deadline -> "deadline"
  | Answer_limit -> "answer-limit"
  | Memory_budget -> "memory-budget"
  | Fault name -> "fault:" ^ name

let trip t reason =
  if t.stop = None then begin
    t.stop <- Some reason;
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~cat:"governor"
        ~args:
          [
            ("reason", Obs.Trace.Str (reason_string reason));
            ("tuples", Obs.Trace.Num t.tuples);
            ("answers", Obs.Trace.Num t.answers);
          ]
        "governor.trip"
  end

let fault t name = trip t (Fault name)
let cancel ?(reason = "cancelled") t = trip t (Fault reason)
let tripped t = t.stop

(* The cooperative check of the hot loops: false means unwind now.  With no
   deadline this is two compares; with one, the clock is read every 16th
   poll so a tight loop pays at most 1/16th of a clock read per iteration. *)
let poll t =
  match t.stop with
  | Some _ -> false
  | None ->
    t.deadline = max_int
    ||
    begin
      t.polls <- t.polls + 1;
      t.polls land 15 <> 0
      || !now_ns () <= t.deadline
      ||
      (trip t Deadline;
       false)
    end

let tick_tuple t =
  t.tuples <- t.tuples + 1;
  if t.tuples > t.tuple_budget && t.stop = None then trip t Tuple_budget

(* --- memory accounting ------------------------------------------------

   Charging is always on (two adds on an int record — the accountant is
   free when no budget is set); the ladder is evaluated only under a
   budget.  Thresholds are checked on charge, never on release: once a
   stage is reached it stays on, so degradation is monotone and a query
   cannot flap between keeping and dropping provenance. *)

let charge_mem t bytes =
  Mem.charge t.mem bytes;
  if t.mem_budget <> max_int then begin
    let live = Mem.live t.mem in
    if live > t.mem_budget then begin
      if t.stop = None then trip t Memory_budget
    end
    else if live > t.mem_budget / 4 * 3 then begin
      t.degrade_prov <- true;
      t.degrade_psi <- true
    end
    else if live > t.mem_budget / 2 then t.degrade_prov <- true
  end

let release_mem t bytes = Mem.release t.mem bytes
let mem_live t = Mem.live t.mem
let mem_peak t = Mem.peak t.mem
let drop_provenance t = t.degrade_prov
let shrink_psi t = t.degrade_psi
let note_dropped_provenance t = t.drops_prov <- t.drops_prov + 1

(* An evaluator that declines a psi escalation cannot make further
   progress — everything at or below the current ceiling is already out —
   so recording the shrink also terminates the query.  The emitted answers
   are exactly the answers of distance <= psi: an exact ranked prefix. *)
let note_shrink_psi t =
  t.shrinks_psi <- t.shrinks_psi + 1;
  if t.stop = None then trip t Memory_budget

let degrade_counts t = (t.drops_prov, t.shrinks_psi)

let note_answer t =
  t.answers <- t.answers + 1;
  if t.answers >= t.answer_cap && t.stop = None then trip t Answer_limit

let tuples t = t.tuples
let answers t = t.answers
let elapsed_ns t = !now_ns () - t.start_ns

let termination t =
  match t.stop with
  | None -> Completed
  | Some reason ->
    Exhausted { reason; elapsed_ns = elapsed_ns t; tuples = t.tuples; answers = t.answers }

let pp_termination ppf = function
  | Completed -> Format.fprintf ppf "completed"
  | Exhausted { reason; elapsed_ns; tuples; answers } ->
    Format.fprintf ppf "exhausted (%s) after %d answer(s), %d tuple(s), %.2f ms"
      (reason_string reason) answers tuples
      (float_of_int elapsed_ns /. 1e6)
