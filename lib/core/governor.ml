type reason = Tuple_budget | Deadline | Answer_limit | Fault of string

type termination =
  | Completed
  | Exhausted of { reason : reason; elapsed_ns : int; tuples : int; answers : int }

(* Monotonic clock behind deadlines — the shared process clock, the same
   ref [Exec_stats.now_ns] aliases.  One [Obs.Clock.install] in a binary's
   init arms every deadline; the default reads nothing, so a governor
   without a deadline pays no syscall anywhere on the hot path. *)
let now_ns = Obs.Clock.now_ns

type t = {
  mutable stop : reason option;
  mutable tuples : int;
  tuple_budget : int; (* max_int = unlimited *)
  mutable answers : int;
  answer_cap : int; (* max_int = uncapped *)
  deadline : int; (* absolute ns; max_int = no deadline *)
  start_ns : int;
  mutable polls : int; (* amortises the clock read of deadline polling *)
}

let create ?timeout_ns ?max_tuples ?max_answers () =
  let start_ns = !now_ns () in
  {
    stop = None;
    tuples = 0;
    tuple_budget = Option.value max_tuples ~default:max_int;
    answers = 0;
    answer_cap = Option.value max_answers ~default:max_int;
    deadline = (match timeout_ns with None -> max_int | Some ns -> start_ns + ns);
    start_ns;
    polls = 0;
  }

let unlimited () = create ()

let reason_string = function
  | Tuple_budget -> "tuple-budget"
  | Deadline -> "deadline"
  | Answer_limit -> "answer-limit"
  | Fault name -> "fault:" ^ name

let trip t reason =
  if t.stop = None then begin
    t.stop <- Some reason;
    if Obs.Trace.enabled () then
      Obs.Trace.instant ~cat:"governor"
        ~args:
          [
            ("reason", Obs.Trace.Str (reason_string reason));
            ("tuples", Obs.Trace.Num t.tuples);
            ("answers", Obs.Trace.Num t.answers);
          ]
        "governor.trip"
  end

let fault t name = trip t (Fault name)
let cancel ?(reason = "cancelled") t = trip t (Fault reason)
let tripped t = t.stop

(* The cooperative check of the hot loops: false means unwind now.  With no
   deadline this is two compares; with one, the clock is read every 16th
   poll so a tight loop pays at most 1/16th of a clock read per iteration. *)
let poll t =
  match t.stop with
  | Some _ -> false
  | None ->
    t.deadline = max_int
    ||
    begin
      t.polls <- t.polls + 1;
      t.polls land 15 <> 0
      || !now_ns () <= t.deadline
      ||
      (trip t Deadline;
       false)
    end

let tick_tuple t =
  t.tuples <- t.tuples + 1;
  if t.tuples > t.tuple_budget && t.stop = None then trip t Tuple_budget

let note_answer t =
  t.answers <- t.answers + 1;
  if t.answers >= t.answer_cap && t.stop = None then trip t Answer_limit

let tuples t = t.tuples
let answers t = t.answers
let elapsed_ns t = !now_ns () - t.start_ns

let termination t =
  match t.stop with
  | None -> Completed
  | Some reason ->
    Exhausted { reason; elapsed_ns = elapsed_ns t; tuples = t.tuples; answers = t.answers }

let pp_termination ppf = function
  | Completed -> Format.fprintf ppf "completed"
  | Exhausted { reason; elapsed_ns; tuples; answers } ->
    Format.fprintf ppf "exhausted (%s) after %d answer(s), %d tuple(s), %.2f ms"
      (reason_string reason) answers tuples
      (float_of_int elapsed_ns /. 1e6)
