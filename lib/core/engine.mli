(** Whole-query evaluation: the public entry point of the Omega engine.

    Evaluates a CRP query against a data graph and its ontology: each
    conjunct is evaluated by {!Evaluator} (per its APPROX/RELAX operator and
    the configured optimisations), multi-conjunct bodies are combined by
    {!Ranked_join}, and the head projection is applied, deduplicating
    projected bindings at their smallest total distance.

    Answers stream in non-decreasing distance; {!run} materialises a prefix,
    which is how the performance study retrieves "the top 100 answers" in
    batches of 10.

    Every evaluation runs under a {!Governor}: wall-clock deadline, tuple
    ceiling, answer cap and cancellation all terminate the stream
    cooperatively — {!next} simply returns [None] and {!status} reports the
    structured reason.  Because emission order is non-decreasing in
    distance, the answers produced before any trip are always a valid
    ranked prefix of the full answer set. *)

type answer = {
  bindings : (string * string) list;
      (** head variable → node label, in head order *)
  distance : int;  (** total edit/relaxation distance of the combination *)
  witnesses : Witness.t list;
      (** one witness per participating conjunct answer, in body order —
          empty unless [options.provenance]; the witnesses' distances sum to
          [distance] *)
}

type termination =
  | Completed
      (** the stream ran to natural exhaustion: the answer set is complete *)
  | Exhausted of { reason : Governor.reason; elapsed_ns : int; tuples : int; answers : int }
      (** the governor tripped ([Tuple_budget] | [Deadline] | [Answer_limit]
          | [Memory_budget] | [Fault _]); the answers emitted before the
          trip are a valid ranked prefix *)
  | Rejected of Admission.rejection
      (** admission control turned the query away before evaluation: no
          evaluation state was built and the graph was never touched
          ([edges_scanned = 0]).  CLI exit code 6. *)

val pp_termination : Format.formatter -> termination -> unit

type outcome = {
  answers : answer list;  (** in non-decreasing distance *)
  termination : termination;
  aborted : bool;
      (** compatibility view of [termination]: true iff the tuple budget
          ([options.max_tuples], the paper's memory stand-in) tripped;
          prefer matching on [termination] *)
  stats : Exec_stats.t;  (** aggregated over all conjuncts (a stable snapshot) *)
  metrics : Obs.Metrics.t;
      (** the stream's metrics registry: the {!histogram_names} distributions
          plus the absorbed [stats] counters *)
}

val pp_answer : Format.formatter -> answer -> unit

type stream
(** An open query evaluation producing answers on demand. *)

val open_query :
  graph:Graphstore.Graph.t ->
  ontology:Ontology.t ->
  ?options:Options.t ->
  ?governor:Governor.t ->
  ?tenant:string ->
  Query.t ->
  stream
(** [governor] defaults to a fresh [Options.governor options]; pass one
    explicitly to share a budget across queries or to {!Governor.cancel}
    from outside.  If [options.failpoints] is set, the spec is armed
    (process-globally) before evaluation starts.  [tenant] (the query
    server's attribution) is stamped into the stream's audit record and
    nothing else — omit it for standalone runs.

    If [options.max_states] or [options.max_product_est] is set, the query
    is vetted by {!Admission} first; a rejected stream is born with no
    evaluation state ({!next} returns [None] immediately, {!status} is
    [Rejected _], and the graph is never touched).
    @raise Invalid_argument if the query fails {!Query.validate} or the
    failpoint spec does not parse. *)

val next : stream -> answer option
(** The next answer, or [None] when the stream is exhausted {e or} its
    governor tripped — call {!status} to tell the cases apart.  Never
    raises [Options.Out_of_budget] (the pre-governor surface); injected
    faults are converted to a [Fault] termination, not re-raised. *)

val close : stream -> unit
(** Release resources that outlive the stream — parallel evaluators' domain
    pools ([options.domains > 1]), which are joined without tripping the
    governor (the stream still reports [Completed]).  Called automatically
    on every terminal path of {!next} and by {!drain}; consumers abandoning
    a stream mid-way must call it themselves, or the pool's OCaml domains
    leak.  Idempotent.

    Also the audit seam: when the process-global {!Obs.Audit} sink is
    enabled, the first close emits the stream's {!audit_record} — one
    record per query, covering drained, abandoned and rejected streams
    alike.  When the sink is disabled this is a single flag check.

    Also the flight-dump seam: when the {!Obs.Flight} recorder is on and a
    dump target is set ([--flight] / [OMEGA_FLIGHT]), the first close
    writes the dump, and an enabled audit sink cross-links it in the
    record's [flight] field. *)

val query_class : stream -> string
(** The query's observatory class — ["exact"] | ["approx"] | ["relax"] |
    ["mixed"] (per the conjuncts' operator modes), with ["+decomposed"]
    appended when decomposition applies to some conjunct and ["+case2"]
    when some conjunct is [(?X, R, C)].  The latency/SLO accounting key. *)

val audit_record : ?flight:Obs.Audit.flight_info -> stream -> Obs.Audit.record
(** The stream's audit record, built from its current state: canonicalised
    query text and hash, {!query_class}, a per-conjunct plan summary (the
    automata are recompiled — never call this on a hot path), termination
    taxonomy, admission estimate vs actual tuples, the full
    {!stream_stats} counters with GC deltas, wall/CPU time, and the
    per-shard breakdown of parallel conjuncts.  Also the [--stats-json]
    payload. *)

val status : stream -> termination
(** The stream's structured termination status so far: [Completed] while
    nothing has tripped (including mid-stream — it only becomes meaningfully
    "complete" once {!next} has returned [None]). *)

val governor : stream -> Governor.t
(** The stream's governor — poll it for live counters, or
    {!Governor.cancel} it to stop the evaluation cooperatively. *)

val admission : stream -> Admission.estimate option
(** The admission estimate computed at {!open_query} — [Some] iff
    [options.max_states] or [options.max_product_est] was set (admitted or
    rejected alike); [None] means the query was never vetted. *)

val stream_stats : stream -> Exec_stats.t
(** Counters aggregated over all conjuncts so far.  The returned record is
    {e owned and reused} by the stream — polling it mid-stream does not
    perturb the evaluation counters (pinned by a regression test); take an
    [Exec_stats.copy] for a stable snapshot.  The [gc_*] fields are
    [Gc.quick_stat] deltas against the stream's open-time baseline,
    sampled afresh at each call. *)

val metrics : stream -> Obs.Metrics.t
(** The stream's metrics registry: the engine's distribution histograms
    ({!histogram_names}) with the current {!stream_stats} counters absorbed
    (re-absorbed at each call, so the scalar values are fresh). *)

val histogram_names : string list
(** The distribution metrics the engine layers register
    ([answer_distance], [queue_depth], [succ_edges], [seed_batch_ns],
    [join_combos], [pop_distance], the per-operation cost histograms
    [ops_insert], [ops_delete], [ops_subst], [ops_relax_beta],
    [ops_relax_gamma], and the parallel-merge distributions
    [par_merge_wait_ns], [par_shard_answers], [par_shard_busy_ns]); together with
    [Exec_stats.field_names] this is the pinned metrics manifest checked in
    CI. *)

val drain : ?limit:int -> stream -> outcome
(** Pull up to [limit] answers (default: all) from an open stream and
    package the result — {!run} is [open_query] followed by [drain].
    Exposed so callers holding a stream (e.g. [--explain-analyze]) can
    finish it and still interrogate the stream afterwards. *)

val explain :
  graph:Graphstore.Graph.t ->
  ontology:Ontology.t ->
  ?options:Options.t ->
  Query.t ->
  Obs.Explain.plan
(** The physical plan the engine would choose for [q] under [options]:
    per-conjunct automata (compiled for real, so sizes are exact),
    strategies, seeding regimes, join method and governor limits — without
    evaluating anything.
    @raise Invalid_argument if the query fails {!Query.validate}. *)

val annotate : stream -> Obs.Explain.plan -> unit
(** Fill a plan's per-conjunct [counters], the plan [analysis] and the
    wasted-work [profile] section from a stream's live state
    ([--explain-analyze]): call after draining (or at any point
    mid-stream).  The plan must come from {!explain} on the same query —
    conjuncts are matched positionally. *)

val run :
  graph:Graphstore.Graph.t ->
  ontology:Ontology.t ->
  ?options:Options.t ->
  ?limit:int ->
  Query.t ->
  outcome
(** Evaluate, returning at most [limit] answers (default: all — beware of
    APPROX queries, whose answer sets can be the full node-pair space).
    [limit] is enforced through the governor's answer cap, so reaching it
    reports [Exhausted {reason = Answer_limit; _}] while [aborted] stays
    false.  Budget exhaustion is reported through [termination]/[aborted],
    never raised. *)

val run_string :
  graph:Graphstore.Graph.t ->
  ontology:Ontology.t ->
  ?options:Options.t ->
  ?limit:int ->
  string ->
  (outcome, string) result
(** Parse with {!Query_parser} and {!run}. *)
