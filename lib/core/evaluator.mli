(** Conjunct evaluation strategies: plain, distance-aware, and
    alternation-decomposed (§4.3).

    - {b Plain} — one {!Conjunct} evaluation run to exhaustion (or budget).
    - {b Distance-aware} ([options.distance_aware]) — evaluate with a cost
      ceiling ψ = 0, then restart from scratch with ψ += φ (the smallest
      positive operation cost) as long as more answers are required and the
      previous run pruned something.  Answers already emitted are suppressed
      across restarts.  This avoids processing tuples costlier than the
      answers the user asked for, at the price of re-evaluation per level —
      the paper notes it is "not suitable in cases where answers at high
      cost are required".
    - {b Decomposed} ([options.decompose], applicable when the regular
      expression is a top-level alternation [R1 | R2 | …]) — each
      alternative becomes a sub-automaton evaluated level-by-level as in
      distance-aware mode; within each level the sub-automata are processed
      in order of increasing answer count at the previous level (default
      order at level 0), so cheap branches are drained first.  Falls back to
      the other strategies when there is no top-level alternation.

    All strategies yield answers in non-decreasing distance and dedupe
    [(x, y)] pairs, keeping the smallest distance.

    {b Parallel} ([options.domains > 1]) — where the conjunct offers a
    sound partition, the strategies above run sharded on a {!Par} domain
    pool: [(?X, R, ?Y)] conjuncts partition their seed vertices
    ([oid mod domains]); constant-seeded decomposed conjuncts partition
    their alternation parts.  The merged stream is the sequential answer
    set in non-decreasing distance with the canonical ascending [(x, y)]
    order within each distance — deterministic at any domain count [>= 2].
    Conjuncts with no such seam (constant-seeded, undecomposed) stay
    sequential regardless of [options.domains]. *)

type t

val create :
  graph:Graphstore.Graph.t ->
  ontology:Ontology.t ->
  options:Options.t ->
  ?governor:Governor.t ->
  ?metrics:Obs.Metrics.t ->
  Query.conjunct ->
  t
(** [governor] (default: a fresh one implementing the options' limits) is
    shared by every conjunct run this evaluator opens, including
    distance-aware/decomposed restarts — so the tuple budget is cumulative
    across ψ levels, and a deadline or cancellation also stops the restart
    loop itself.  [metrics] (default: a fresh private registry) is likewise
    shared by every conjunct run, so histograms accumulate across restarts. *)

val next : t -> Conjunct.answer option
(** Next answer, or [None] when exhausted or when the governor tripped
    (read [Governor.termination] to tell which).  Never raises
    [Options.Out_of_budget]; the answers already returned are a valid
    ranked prefix either way.
    @raise Failpoints.Injected when an armed failpoint fires mid-pull. *)

val take : t -> int -> Conjunct.answer list
(** [take t k]: up to [k] further answers. *)

val stats : t -> Exec_stats.t
(** Counters aggregated over all runs/sub-automata so far.  The returned
    record is {e owned and reused} by the evaluator (polling mid-stream
    allocates nothing); take an [Exec_stats.copy] for a stable snapshot.
    On a parallel evaluator the aggregate covers {e completed} shards
    (running shards' records live on other domains); after {!next} returns
    [None] or {!close}, every shard is included and [par_shards] is set. *)

val close : t -> unit
(** Release resources that outlive an abandoned stream: joins a parallel
    evaluator's domain pool (without tripping the governor — the stream
    still reports [Completed]).  A no-op on sequential evaluators, and
    after the evaluator has already returned [None].  Idempotent; called by
    [Engine.close]. *)

val shard_report : t -> (int * int * int) list
(** Per-shard [(index, busy_ns, answers)] of a parallel evaluator's
    completed shards ({!Par.shard_report}); [[]] on sequential
    evaluators. *)

val describe :
  graph:Graphstore.Graph.t ->
  ontology:Ontology.t ->
  options:Options.t ->
  index:int ->
  Query.conjunct ->
  Obs.Explain.conjunct_plan
(** The EXPLAIN view of {!create}: reproduces the strategy choice (plain /
    distance-aware / decomposed), compiles the automaton (and each
    decomposition part's), and renders the seeding regime — without opening
    any evaluation state.  [index] is the conjunct's 1-based position. *)
