module Nfa = Automaton.Nfa

type edge =
  | Seed of { cost : int; ops : (Nfa.op * int) list }
  | Step of Nfa.transition

(* Growable parallel arrays rather than a record array: an entry costs three
   words plus the shared [edge] pointer (transitions are shared with the
   automaton, seed records with the seed list), and appending is two stores
   and an increment — cheap enough to sit on the Succ path when provenance
   is on. *)
type t = {
  mutable parent : int array;
  mutable node : int array;
  mutable edge : edge array;
  mutable len : int;
}

let no_parent = -1
let dummy_edge = Seed { cost = 0; ops = [] }

let create () =
  { parent = Array.make 1024 0; node = Array.make 1024 0; edge = Array.make 1024 dummy_edge; len = 0 }

let length t = t.len

let grow t =
  let cap = Array.length t.parent in
  let parent = Array.make (2 * cap) 0 in
  let node = Array.make (2 * cap) 0 in
  let edge = Array.make (2 * cap) dummy_edge in
  Array.blit t.parent 0 parent 0 t.len;
  Array.blit t.node 0 node 0 t.len;
  Array.blit t.edge 0 edge 0 t.len;
  t.parent <- parent;
  t.node <- node;
  t.edge <- edge

let add t ~parent ~node edge =
  if t.len = Array.length t.parent then grow t;
  let i = t.len in
  t.parent.(i) <- parent;
  t.node.(i) <- node;
  t.edge.(i) <- edge;
  t.len <- i + 1;
  i

let get t i =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Provenance.get: index %d" i);
  (t.parent.(i), t.node.(i), t.edge.(i))
