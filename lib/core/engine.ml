module Graph = Graphstore.Graph

type answer = {
  bindings : (string * string) list;
  distance : int;
  witnesses : Witness.t list; (* one per conjunct answer; [] unless options.provenance *)
}

(* No longer an alias of [Governor.termination]: admission control rejects a
   query before any governor-observed work happens, so rejection is an
   engine-level outcome with its own arm. *)
type termination =
  | Completed
  | Exhausted of { reason : Governor.reason; elapsed_ns : int; tuples : int; answers : int }
  | Rejected of Admission.rejection

let pp_termination ppf = function
  | Completed -> Format.fprintf ppf "completed"
  | Exhausted { reason; elapsed_ns; tuples; answers } ->
    Format.fprintf ppf "exhausted (%s) after %d answer(s), %d tuple(s), %.2f ms"
      (Governor.reason_string reason) answers tuples
      (float_of_int elapsed_ns /. 1e6)
  | Rejected r -> Format.fprintf ppf "rejected: %a" Admission.pp_rejection r

type outcome = {
  answers : answer list;
  termination : termination;
  aborted : bool;
  stats : Exec_stats.t;
  metrics : Obs.Metrics.t;
}

let pp_answer ppf a =
  Format.fprintf ppf "dist=%d %s" a.distance
    (String.concat ", " (List.map (fun (v, x) -> Printf.sprintf "?%s=%s" v x) a.bindings))

(* The distribution metrics the engine layers register, next to the scalar
   [Exec_stats.field_names] — together the pinned metrics manifest. *)
let histogram_names =
  [
    "answer_distance";
    "queue_depth";
    "succ_edges";
    "seed_batch_ns";
    "join_combos";
    "pop_distance";
    "ops_insert";
    "ops_delete";
    "ops_subst";
    "ops_relax_beta";
    "ops_relax_gamma";
    "par_merge_wait_ns";
    "par_shard_answers";
  ]

type stream = {
  graph : Graph.t;
  head : string list;
  evaluators : Evaluator.t list;
  pull : unit -> (Ranked_join.binding * int * Witness.t list) option;
  projected : (string list, unit) Hashtbl.t; (* dedup of projected bindings *)
  governor : Governor.t;
  registry : Obs.Metrics.t; (* shared by every layer of this stream *)
  h_answer_dist : Obs.Metrics.histogram;
  agg : Exec_stats.t; (* reused aggregate returned by [stream_stats] *)
  admission : Admission.estimate option; (* computed iff an admission limit is set *)
  rejection : Admission.rejection option; (* Some: born rejected, no evaluators *)
}

(* A conjunct answer as a variable binding.  A conjunct with two constants
   contributes an empty binding (its satisfaction is checked by the conjunct
   evaluator itself). *)
let binding_of_answer (c : Query.conjunct) (a : Conjunct.answer) =
  let of_term term value =
    match (term : Query.term) with Query.Var v -> [ (v, value) ] | Query.Const _ -> []
  in
  Ranked_join.binding_of (of_term c.subj a.x @ of_term c.obj a.y)

let open_query ~graph ~ontology ?(options = Options.default) ?governor (q : Query.t) =
  (match Query.validate q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.open_query: " ^ msg));
  (match options.Options.failpoints with
  | None -> ()
  | Some spec -> (
    match Failpoints.arm_spec spec with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Engine.open_query: " ^ msg)));
  let governor = match governor with Some g -> g | None -> Options.governor options in
  let registry = Obs.Metrics.create () in
  (* Admission control: when a limit is configured, vet the query before
     building any evaluation state.  The estimate is side-effect free
     (automaton compilation only — no edge scans, no failpoints); a
     rejected stream is born with no evaluators, so [edges_scanned] stays
     exactly 0. *)
  let admission, rejection =
    match (options.Options.max_states, options.Options.max_product_est) with
    | None, None -> (None, None)
    | _ ->
      let est, rejection = Admission.vet ~graph ~ontology ~options q in
      (Some est, rejection)
  in
  let closed =
    {
      graph;
      head = q.head;
      evaluators = [];
      pull = (fun () -> None);
      projected = Hashtbl.create 1;
      governor;
      registry;
      h_answer_dist = Obs.Metrics.histogram registry "answer_distance";
      agg = Exec_stats.create ();
      admission;
      rejection;
    }
  in
  if rejection <> None then begin
    (match rejection with
    | Some r when Obs.Trace.enabled () ->
      Obs.Trace.instant ~cat:"admission"
        ~args:
          [
            ("kind", Obs.Trace.Str (Admission.kind_string r.Admission.kind));
            ("limit", Obs.Trace.Num r.Admission.limit);
            ("actual", Obs.Trace.Num r.Admission.actual);
          ]
        "admission.reject"
    | _ -> ());
    closed
  end
  else begin
    (* The trace ring is per-process but retained for the query's duration:
       charge its (fixed) footprint once so a tight memory budget accounts
       for tracing overhead too. *)
    if Obs.Trace.enabled () then Governor.charge_mem governor (Obs.Trace.approx_bytes ());
    (* Opening can itself hit a failpoint (e.g. the ontology lookups of RELAX
       seeding): the stream is then born already tripped rather than raising
       through the public surface. *)
    match
      let evaluators =
        List.map
          (fun c -> (c, Evaluator.create ~graph ~ontology ~options ~governor ~metrics:registry c))
          q.conjuncts
      in
      let stream_of (c, ev) () =
        match Evaluator.next ev with
        | Some a ->
          let wits = match a.Conjunct.witness with Some w -> [ w ] | None -> [] in
          Some (binding_of_answer c a, a.Conjunct.dist, wits)
        | None -> None
      in
      let pull =
        match evaluators with
        | [ single ] -> stream_of single
        | several ->
          let join = Ranked_join.create ~governor ~metrics:registry (List.map stream_of several) in
          fun () -> Ranked_join.next join
      in
      (List.map snd evaluators, pull)
    with
    | evaluators, pull -> { closed with evaluators; pull; projected = Hashtbl.create 64 }
    | exception Failpoints.Injected name ->
      Governor.fault governor name;
      closed
  end

(* Release whatever outlives the stream — today, parallel evaluators' domain
   pools.  Idempotent; called on every terminal path of [next], and
   available to consumers abandoning a stream mid-way (a pool left
   unjoined would leak OCaml domains, which are a bounded resource). *)
let close st = List.iter Evaluator.close st.evaluators

let rec next st =
  if st.rejection <> None then None
  else if not (Governor.poll st.governor) then begin
    close st;
    None
  end
  else
    match st.pull () with
    | exception Failpoints.Injected name ->
      Governor.fault st.governor name;
      close st;
      None
    | None ->
      close st;
      None
    | Some (binding, distance, witnesses) ->
      let values =
        List.map
          (fun v ->
            match List.assoc_opt v binding with
            | Some oid -> Graph.node_label st.graph oid
            | None ->
              Invariant.fail
                "Engine.next: head variable ?%s is unbound in the joined binding (Query.validate \
                 guarantees every head variable appears in the body)"
                v)
          st.head
      in
      if Hashtbl.mem st.projected values then next st
      else begin
        Hashtbl.add st.projected values ();
        Governor.charge_mem st.governor Mem.answer_entry_bytes;
        Governor.note_answer st.governor;
        Obs.Metrics.observe st.h_answer_dist distance;
        Some { bindings = List.combine st.head values; distance; witnesses }
      end

let status st =
  match st.rejection with
  | Some r -> Rejected r
  | None -> (
    match Governor.termination st.governor with
    | Governor.Completed -> Completed
    | Governor.Exhausted { reason; elapsed_ns; tuples; answers } ->
      Exhausted { reason; elapsed_ns; tuples; answers })

let governor st = st.governor
let admission st = st.admission

(* Aggregated once per stream into a record the stream owns and reuses:
   polling mid-stream allocates nothing and cannot perturb the per-conjunct
   accumulators (the evaluators' own [stats] are read-only merges too).
   Callers wanting a stable snapshot take an [Exec_stats.copy]. *)
let stream_stats st =
  Exec_stats.reset st.agg;
  List.iter (fun ev -> Exec_stats.merge_into st.agg (Evaluator.stats ev)) st.evaluators;
  (* The resource-safety counters live on the stream aggregate only: the
     governor owns the memory high-water mark and degradation counts, the
     admission estimate was computed once at open (0 when unvetted). *)
  st.agg.Exec_stats.mem_bytes_peak <- Governor.mem_peak st.governor;
  st.agg.Exec_stats.admission_est_states <-
    (match st.admission with Some e -> e.Admission.total_states | None -> 0);
  let drops_prov, shrinks_psi = Governor.degrade_counts st.governor in
  st.agg.Exec_stats.degrade_drop_provenance <- drops_prov;
  st.agg.Exec_stats.degrade_shrink_psi <- shrinks_psi;
  st.agg

let metrics st =
  Exec_stats.record_into st.registry (stream_stats st);
  st.registry

let drain ?limit st =
  let rec collect acc k =
    if k <= 0 then List.rev acc
    else match next st with Some a -> collect (a :: acc) (k - 1) | None -> List.rev acc
  in
  let answers = collect [] (Option.value limit ~default:max_int) in
  let termination = status st in
  let aborted =
    match termination with Exhausted { reason = Governor.Tuple_budget; _ } -> true | _ -> false
  in
  { answers; termination; aborted; stats = Exec_stats.copy (stream_stats st); metrics = metrics st }

let run ~graph ~ontology ?options ?limit q =
  let options = match options with Some o -> o | None -> Options.default in
  let governor = Options.governor ?limit options in
  let st = open_query ~graph ~ontology ~options ~governor q in
  drain ?limit st

let run_string ~graph ~ontology ?options ?limit s =
  match Query_parser.parse_result s with
  | Error msg -> Error msg
  | Ok q -> Ok (run ~graph ~ontology ?options ?limit q)

let explain ~graph ~ontology ?(options = Options.default) (q : Query.t) =
  (match Query.validate q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.explain: " ^ msg));
  let conjuncts =
    List.mapi (fun i c -> Evaluator.describe ~graph ~ontology ~options ~index:(i + 1) c) q.conjuncts
  in
  let join =
    match q.conjuncts with
    | [ _ ] -> "single-conjunct"
    | cs -> Printf.sprintf "ranked-join(%d)" (List.length cs)
  in
  let governor =
    [
      ( "timeout",
        match options.Options.timeout_ns with
        | None -> "none"
        | Some ns -> Printf.sprintf "%dms" (ns / 1_000_000) );
      ( "tuples",
        match options.Options.max_tuples with None -> "none" | Some n -> string_of_int n );
      ( "answers",
        match options.Options.max_answers with None -> "none" | Some n -> string_of_int n );
      ( "memory",
        match options.Options.max_memory_bytes with
        | None -> "none"
        | Some b -> Printf.sprintf "%d bytes" b );
      ( "admission",
        match (options.Options.max_states, options.Options.max_product_est) with
        | None, None -> "none"
        | ms, mp ->
          let part name = function None -> [] | Some n -> [ Printf.sprintf "%s=%d" name n ] in
          String.concat ", " (part "max-states" ms @ part "max-product-est" mp) );
    ]
  in
  {
    Obs.Explain.query = Format.asprintf "%a" Query.pp q;
    head = q.head;
    join;
    governor;
    conjuncts;
    analysis = [];
    profile = None;
  }

let annotate st (plan : Obs.Explain.plan) =
  (* A born-tripped stream has no evaluators; leave its counters empty. *)
  (try
     List.iter2
       (fun (cp : Obs.Explain.conjunct_plan) ev ->
         cp.Obs.Explain.counters <- Exec_stats.to_assoc (Exec_stats.copy (Evaluator.stats ev)))
       plan.Obs.Explain.conjuncts st.evaluators
   with Invalid_argument _ -> ());
  plan.Obs.Explain.analysis <-
    [
      ("termination", Format.asprintf "%a" pp_termination (status st));
      ("answers", string_of_int (Governor.answers st.governor));
      ("tuples", string_of_int (Governor.tuples st.governor));
      ("mem_bytes_peak", string_of_int (Governor.mem_peak st.governor));
    ]
    @ (match st.admission with
      | None -> []
      | Some e -> [ ("admission", Format.asprintf "%a" Admission.pp_estimate e) ])
    @
    (let drops_prov, shrinks_psi = Governor.degrade_counts st.governor in
     if drops_prov > 0 || shrinks_psi > 0 then
       [ ("degraded", Printf.sprintf "drop-provenance:%d, shrink-psi:%d" drops_prov shrinks_psi) ]
     else []);
  plan.Obs.Explain.profile <- Some (Obs.Profile.of_metrics (metrics st))
