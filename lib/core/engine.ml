module Graph = Graphstore.Graph

type answer = {
  bindings : (string * string) list;
  distance : int;
  witnesses : Witness.t list; (* one per conjunct answer; [] unless options.provenance *)
}

type termination = Governor.termination =
  | Completed
  | Exhausted of { reason : Governor.reason; elapsed_ns : int; tuples : int; answers : int }

type outcome = {
  answers : answer list;
  termination : termination;
  aborted : bool;
  stats : Exec_stats.t;
  metrics : Obs.Metrics.t;
}

let pp_answer ppf a =
  Format.fprintf ppf "dist=%d %s" a.distance
    (String.concat ", " (List.map (fun (v, x) -> Printf.sprintf "?%s=%s" v x) a.bindings))

(* The distribution metrics the engine layers register, next to the scalar
   [Exec_stats.field_names] — together the pinned metrics manifest. *)
let histogram_names =
  [
    "answer_distance";
    "queue_depth";
    "succ_edges";
    "seed_batch_ns";
    "join_combos";
    "pop_distance";
    "ops_insert";
    "ops_delete";
    "ops_subst";
    "ops_relax_beta";
    "ops_relax_gamma";
  ]

type stream = {
  graph : Graph.t;
  head : string list;
  evaluators : Evaluator.t list;
  pull : unit -> (Ranked_join.binding * int * Witness.t list) option;
  projected : (string list, unit) Hashtbl.t; (* dedup of projected bindings *)
  governor : Governor.t;
  registry : Obs.Metrics.t; (* shared by every layer of this stream *)
  h_answer_dist : Obs.Metrics.histogram;
  agg : Exec_stats.t; (* reused aggregate returned by [stream_stats] *)
}

(* A conjunct answer as a variable binding.  A conjunct with two constants
   contributes an empty binding (its satisfaction is checked by the conjunct
   evaluator itself). *)
let binding_of_answer (c : Query.conjunct) (a : Conjunct.answer) =
  let of_term term value =
    match (term : Query.term) with Query.Var v -> [ (v, value) ] | Query.Const _ -> []
  in
  Ranked_join.binding_of (of_term c.subj a.x @ of_term c.obj a.y)

let open_query ~graph ~ontology ?(options = Options.default) ?governor (q : Query.t) =
  (match Query.validate q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.open_query: " ^ msg));
  (match options.Options.failpoints with
  | None -> ()
  | Some spec -> (
    match Failpoints.arm_spec spec with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Engine.open_query: " ^ msg)));
  let governor = match governor with Some g -> g | None -> Options.governor options in
  let registry = Obs.Metrics.create () in
  let closed =
    {
      graph;
      head = q.head;
      evaluators = [];
      pull = (fun () -> None);
      projected = Hashtbl.create 1;
      governor;
      registry;
      h_answer_dist = Obs.Metrics.histogram registry "answer_distance";
      agg = Exec_stats.create ();
    }
  in
  (* Opening can itself hit a failpoint (e.g. the ontology lookups of RELAX
     seeding): the stream is then born already tripped rather than raising
     through the public surface. *)
  match
    let evaluators =
      List.map
        (fun c -> (c, Evaluator.create ~graph ~ontology ~options ~governor ~metrics:registry c))
        q.conjuncts
    in
    let stream_of (c, ev) () =
      match Evaluator.next ev with
      | Some a ->
        let wits = match a.Conjunct.witness with Some w -> [ w ] | None -> [] in
        Some (binding_of_answer c a, a.Conjunct.dist, wits)
      | None -> None
    in
    let pull =
      match evaluators with
      | [ single ] -> stream_of single
      | several ->
        let join = Ranked_join.create ~governor ~metrics:registry (List.map stream_of several) in
        fun () -> Ranked_join.next join
    in
    (List.map snd evaluators, pull)
  with
  | evaluators, pull -> { closed with evaluators; pull; projected = Hashtbl.create 64 }
  | exception Failpoints.Injected name ->
    Governor.fault governor name;
    closed

let rec next st =
  if not (Governor.poll st.governor) then None
  else
    match st.pull () with
    | exception Failpoints.Injected name ->
      Governor.fault st.governor name;
      None
    | None -> None
    | Some (binding, distance, witnesses) ->
      let values =
        List.map
          (fun v ->
            match List.assoc_opt v binding with
            | Some oid -> Graph.node_label st.graph oid
            | None ->
              Invariant.fail
                "Engine.next: head variable ?%s is unbound in the joined binding (Query.validate \
                 guarantees every head variable appears in the body)"
                v)
          st.head
      in
      if Hashtbl.mem st.projected values then next st
      else begin
        Hashtbl.add st.projected values ();
        Governor.note_answer st.governor;
        Obs.Metrics.observe st.h_answer_dist distance;
        Some { bindings = List.combine st.head values; distance; witnesses }
      end

let status st = Governor.termination st.governor
let governor st = st.governor

(* Aggregated once per stream into a record the stream owns and reuses:
   polling mid-stream allocates nothing and cannot perturb the per-conjunct
   accumulators (the evaluators' own [stats] are read-only merges too).
   Callers wanting a stable snapshot take an [Exec_stats.copy]. *)
let stream_stats st =
  Exec_stats.reset st.agg;
  List.iter (fun ev -> Exec_stats.merge_into st.agg (Evaluator.stats ev)) st.evaluators;
  st.agg

let metrics st =
  Exec_stats.record_into st.registry (stream_stats st);
  st.registry

let drain ?limit st =
  let rec collect acc k =
    if k <= 0 then List.rev acc
    else match next st with Some a -> collect (a :: acc) (k - 1) | None -> List.rev acc
  in
  let answers = collect [] (Option.value limit ~default:max_int) in
  let termination = status st in
  let aborted =
    match termination with
    | Exhausted { reason = Governor.Tuple_budget; _ } -> true
    | _ -> false
  in
  { answers; termination; aborted; stats = Exec_stats.copy (stream_stats st); metrics = metrics st }

let run ~graph ~ontology ?options ?limit q =
  let options = match options with Some o -> o | None -> Options.default in
  let governor = Options.governor ?limit options in
  let st = open_query ~graph ~ontology ~options ~governor q in
  drain ?limit st

let run_string ~graph ~ontology ?options ?limit s =
  match Query_parser.parse_result s with
  | Error msg -> Error msg
  | Ok q -> Ok (run ~graph ~ontology ?options ?limit q)

let explain ~graph ~ontology ?(options = Options.default) (q : Query.t) =
  (match Query.validate q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.explain: " ^ msg));
  let conjuncts =
    List.mapi (fun i c -> Evaluator.describe ~graph ~ontology ~options ~index:(i + 1) c) q.conjuncts
  in
  let join =
    match q.conjuncts with
    | [ _ ] -> "single-conjunct"
    | cs -> Printf.sprintf "ranked-join(%d)" (List.length cs)
  in
  let governor =
    [
      ( "timeout",
        match options.Options.timeout_ns with
        | None -> "none"
        | Some ns -> Printf.sprintf "%dms" (ns / 1_000_000) );
      ( "tuples",
        match options.Options.max_tuples with None -> "none" | Some n -> string_of_int n );
      ( "answers",
        match options.Options.max_answers with None -> "none" | Some n -> string_of_int n );
    ]
  in
  {
    Obs.Explain.query = Format.asprintf "%a" Query.pp q;
    head = q.head;
    join;
    governor;
    conjuncts;
    analysis = [];
    profile = None;
  }

let annotate st (plan : Obs.Explain.plan) =
  (* A born-tripped stream has no evaluators; leave its counters empty. *)
  (try
     List.iter2
       (fun (cp : Obs.Explain.conjunct_plan) ev ->
         cp.Obs.Explain.counters <- Exec_stats.to_assoc (Exec_stats.copy (Evaluator.stats ev)))
       plan.Obs.Explain.conjuncts st.evaluators
   with Invalid_argument _ -> ());
  plan.Obs.Explain.analysis <-
    [
      ("termination", Format.asprintf "%a" Governor.pp_termination (status st));
      ("answers", string_of_int (Governor.answers st.governor));
      ("tuples", string_of_int (Governor.tuples st.governor));
    ];
  plan.Obs.Explain.profile <- Some (Obs.Profile.of_metrics (metrics st))
