module Graph = Graphstore.Graph

type answer = {
  bindings : (string * string) list;
  distance : int;
  witnesses : Witness.t list; (* one per conjunct answer; [] unless options.provenance *)
}

(* No longer an alias of [Governor.termination]: admission control rejects a
   query before any governor-observed work happens, so rejection is an
   engine-level outcome with its own arm. *)
type termination =
  | Completed
  | Exhausted of { reason : Governor.reason; elapsed_ns : int; tuples : int; answers : int }
  | Rejected of Admission.rejection

let pp_termination ppf = function
  | Completed -> Format.fprintf ppf "completed"
  | Exhausted { reason; elapsed_ns; tuples; answers } ->
    Format.fprintf ppf "exhausted (%s) after %d answer(s), %d tuple(s), %.2f ms"
      (Governor.reason_string reason) answers tuples
      (float_of_int elapsed_ns /. 1e6)
  | Rejected r -> Format.fprintf ppf "rejected: %a" Admission.pp_rejection r

type outcome = {
  answers : answer list;
  termination : termination;
  aborted : bool;
  stats : Exec_stats.t;
  metrics : Obs.Metrics.t;
}

let pp_answer ppf a =
  Format.fprintf ppf "dist=%d %s" a.distance
    (String.concat ", " (List.map (fun (v, x) -> Printf.sprintf "?%s=%s" v x) a.bindings))

(* The distribution metrics the engine layers register, next to the scalar
   [Exec_stats.field_names] — together the pinned metrics manifest. *)
let histogram_names =
  [
    "answer_distance";
    "queue_depth";
    "succ_edges";
    "seed_batch_ns";
    "join_combos";
    "pop_distance";
    "ops_insert";
    "ops_delete";
    "ops_subst";
    "ops_relax_beta";
    "ops_relax_gamma";
    "par_merge_wait_ns";
    "par_shard_answers";
    "par_shard_busy_ns";
  ]

type stream = {
  graph : Graph.t;
  query : Query.t;
  ontology : Ontology.t;
  options : Options.t;
  head : string list;
  evaluators : Evaluator.t list;
  pull : unit -> (Ranked_join.binding * int * Witness.t list) option;
  projected : (string list, unit) Hashtbl.t; (* dedup of projected bindings *)
  governor : Governor.t;
  registry : Obs.Metrics.t; (* shared by every layer of this stream *)
  h_answer_dist : Obs.Metrics.histogram;
  agg : Exec_stats.t; (* reused aggregate returned by [stream_stats] *)
  admission : Admission.estimate option; (* computed iff an admission limit is set *)
  rejection : Admission.rejection option; (* Some: born rejected, no evaluators *)
  gc0 : Gc.stat; (* [Gc.quick_stat] at open — baseline of the collection-count deltas *)
  gcw0 : float * float; (* [Gc.counters] (minor, major) at open — word counts accurate
                           between collections, unlike [quick_stat]'s *)
  cpu0 : float; (* [Sys.time] at open — process CPU seconds *)
  tenant : string option; (* audit attribution of a served query (omega_serve) *)
  mutable audited : bool; (* audit record emitted (close is idempotent) *)
}

(* A conjunct answer as a variable binding.  A conjunct with two constants
   contributes an empty binding (its satisfaction is checked by the conjunct
   evaluator itself). *)
let binding_of_answer (c : Query.conjunct) (a : Conjunct.answer) =
  let of_term term value =
    match (term : Query.term) with Query.Var v -> [ (v, value) ] | Query.Const _ -> []
  in
  Ranked_join.binding_of (of_term c.subj a.x @ of_term c.obj a.y)

let open_query ~graph ~ontology ?(options = Options.default) ?governor ?tenant (q : Query.t) =
  (match Query.validate q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.open_query: " ^ msg));
  (match options.Options.failpoints with
  | None -> ()
  | Some spec -> (
    match Failpoints.arm_spec spec with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Engine.open_query: " ^ msg)));
  let governor = match governor with Some g -> g | None -> Options.governor options in
  let registry = Obs.Metrics.create () in
  (* Admission control: when a limit is configured, vet the query before
     building any evaluation state.  The estimate is side-effect free
     (automaton compilation only — no edge scans, no failpoints); a
     rejected stream is born with no evaluators, so [edges_scanned] stays
     exactly 0. *)
  let admission, rejection =
    match (options.Options.max_states, options.Options.max_product_est) with
    | None, None -> (None, None)
    | _ ->
      let est, rejection = Admission.vet ~graph ~ontology ~options q in
      (Some est, rejection)
  in
  let closed =
    {
      graph;
      query = q;
      ontology;
      options;
      head = q.head;
      evaluators = [];
      pull = (fun () -> None);
      projected = Hashtbl.create 1;
      governor;
      registry;
      h_answer_dist = Obs.Metrics.histogram registry "answer_distance";
      agg = Exec_stats.create ();
      admission;
      rejection;
      gc0 = Gc.quick_stat ();
      gcw0 = (let mi, _, ma = Gc.counters () in (mi, ma));
      cpu0 = Sys.time ();
      tenant;
      audited = false;
    }
  in
  if rejection <> None then begin
    (match rejection with
    | Some r when Obs.Trace.enabled () ->
      Obs.Trace.instant ~cat:"admission"
        ~args:
          [
            ("kind", Obs.Trace.Str (Admission.kind_string r.Admission.kind));
            ("limit", Obs.Trace.Num r.Admission.limit);
            ("actual", Obs.Trace.Num r.Admission.actual);
          ]
        "admission.reject"
    | _ -> ());
    closed
  end
  else begin
    (* The trace ring is per-process but retained for the query's duration:
       charge its (fixed) footprint once so a tight memory budget accounts
       for tracing overhead too. *)
    if Obs.Trace.enabled () then Governor.charge_mem governor (Obs.Trace.approx_bytes ());
    (* Opening can itself hit a failpoint (e.g. the ontology lookups of RELAX
       seeding): the stream is then born already tripped rather than raising
       through the public surface. *)
    match
      let evaluators =
        List.map
          (fun c -> (c, Evaluator.create ~graph ~ontology ~options ~governor ~metrics:registry c))
          q.conjuncts
      in
      let stream_of (c, ev) () =
        match Evaluator.next ev with
        | Some a ->
          let wits = match a.Conjunct.witness with Some w -> [ w ] | None -> [] in
          Some (binding_of_answer c a, a.Conjunct.dist, wits)
        | None -> None
      in
      let pull =
        match evaluators with
        | [ single ] -> stream_of single
        | several ->
          let join = Ranked_join.create ~governor ~metrics:registry (List.map stream_of several) in
          fun () -> Ranked_join.next join
      in
      (List.map snd evaluators, pull)
    with
    | evaluators, pull -> { closed with evaluators; pull; projected = Hashtbl.create 64 }
    | exception Failpoints.Injected name ->
      Governor.fault governor name;
      closed
  end

let status st =
  match st.rejection with
  | Some r -> Rejected r
  | None -> (
    match Governor.termination st.governor with
    | Governor.Completed -> Completed
    | Governor.Exhausted { reason; elapsed_ns; tuples; answers } ->
      Exhausted { reason; elapsed_ns; tuples; answers })

(* Aggregated once per stream into a record the stream owns and reuses:
   polling mid-stream cannot perturb the per-conjunct accumulators (the
   evaluators' own [stats] are read-only merges).  Callers wanting a stable
   snapshot take an [Exec_stats.copy]. *)
let stream_stats st =
  Exec_stats.reset st.agg;
  List.iter (fun ev -> Exec_stats.merge_into st.agg (Evaluator.stats ev)) st.evaluators;
  (* The resource-safety counters live on the stream aggregate only: the
     governor owns the memory high-water mark and degradation counts, the
     admission estimate was computed once at open (0 when unvetted). *)
  st.agg.Exec_stats.mem_bytes_peak <- Governor.mem_peak st.governor;
  st.agg.Exec_stats.admission_est_states <-
    (match st.admission with Some e -> e.Admission.total_states | None -> 0);
  let drops_prov, shrinks_psi = Governor.degrade_counts st.governor in
  st.agg.Exec_stats.degrade_drop_provenance <- drops_prov;
  st.agg.Exec_stats.degrade_shrink_psi <- shrinks_psi;
  (* GC telemetry, likewise stream-level: deltas against the open-time
     baseline, so a query's allocation pressure reads directly off its
     stats (the conjunct evaluators never touch these fields) *)
  let gc = Gc.quick_stat () in
  let minor0, major0 = st.gcw0 in
  let minor, _, major = Gc.counters () in
  st.agg.Exec_stats.gc_minor_words <- int_of_float (minor -. minor0);
  st.agg.Exec_stats.gc_major_words <- int_of_float (major -. major0);
  st.agg.Exec_stats.gc_minor_collections <- gc.Gc.minor_collections - st.gc0.Gc.minor_collections;
  st.agg.Exec_stats.gc_major_collections <- gc.Gc.major_collections - st.gc0.Gc.major_collections;
  st.agg

(* The SLO accounting key: which operator family (and which expensive
   structural features) this query exercises. *)
let query_class st =
  let conjuncts = st.query.Query.conjuncts in
  let modes = List.sort_uniq compare (List.map (fun c -> c.Query.cmode) conjuncts) in
  let base =
    match modes with
    | [ Query.Exact ] -> "exact"
    | [ Query.Approx ] -> "approx"
    | [ Query.Relax ] -> "relax"
    | _ -> "mixed"
  in
  let decomposed =
    st.options.Options.decompose
    && List.exists
         (fun c -> List.length (Rpq_regex.Regex.top_level_alternatives c.Query.regex) > 1)
         conjuncts
  in
  let case2 =
    List.exists
      (fun c ->
        match (c.Query.subj, c.Query.obj) with Query.Var _, Query.Const _ -> true | _ -> false)
      conjuncts
  in
  base ^ (if decomposed then "+decomposed" else "") ^ if case2 then "+case2" else ""

(* One line of physical plan per conjunct, from the EXPLAIN machinery.
   Compiles the automata afresh — never called on the evaluation path, only
   when an audit record is actually being built. *)
let plan_summary st =
  if st.rejection <> None then "rejected"
  else
    String.concat "; "
      (List.mapi
         (fun i c ->
           let p =
             Evaluator.describe ~graph:st.graph ~ontology:st.ontology ~options:st.options
               ~index:(i + 1) c
           in
           Printf.sprintf "%d:%s/%s(%ds,%dt)/%s/%s%s" p.Obs.Explain.index p.Obs.Explain.mode
             p.Obs.Explain.automaton p.Obs.Explain.states p.Obs.Explain.transitions
             p.Obs.Explain.strategy p.Obs.Explain.seeding
             (if p.Obs.Explain.reversed then "/rev" else ""))
         st.query.Query.conjuncts)

let audit_record ?flight st =
  let stats = stream_stats st in
  let qtext = Format.asprintf "%a" Query.pp st.query in
  let termination, reason =
    match status st with
    | Completed -> ("completed", None)
    | Exhausted { reason; _ } -> ("exhausted", Some (Governor.reason_string reason))
    | Rejected r -> ("rejected", Some (Admission.kind_string r.Admission.kind))
  in
  let shards =
    let idx = ref 0 in
    List.concat_map
      (fun ev ->
        List.map
          (fun (_, busy, answers) ->
            let s = { Obs.Audit.s_index = !idx; s_busy_ns = busy; s_answers = answers } in
            incr idx;
            s)
          (Evaluator.shard_report ev))
      st.evaluators
  in
  (* probe, don't get-or-create: a sequential stream must not grow parallel
     histograms just because it was audited *)
  let merge_wait_ns =
    if List.mem "par_merge_wait_ns" (Obs.Metrics.names st.registry) then
      Obs.Metrics.h_sum (Obs.Metrics.histogram st.registry "par_merge_wait_ns")
    else 0
  in
  let imbalance_pct =
    (* 100 * max/mean over shard busy times: 100 = perfectly balanced *)
    if stats.Exec_stats.par_shards > 0 && stats.Exec_stats.par_busy_total_ns > 0 then
      stats.Exec_stats.par_busy_max_ns * 100 * stats.Exec_stats.par_shards
      / stats.Exec_stats.par_busy_total_ns
    else 0
  in
  {
    Obs.Audit.ts_ns = !Obs.Clock.now_ns ();
    query_hash = Obs.Audit.hash qtext;
    query = qtext;
    query_class = query_class st;
    plan = plan_summary st;
    termination;
    reason;
    answers = Governor.answers st.governor;
    wall_ns = Governor.elapsed_ns st.governor;
    cpu_ns = int_of_float ((Sys.time () -. st.cpu0) *. 1e9);
    est_states = (match st.admission with Some e -> e.Admission.total_states | None -> 0);
    est_product = (match st.admission with Some e -> e.Admission.total_product_est | None -> 0);
    actual_tuples = Governor.tuples st.governor;
    domains = st.options.Options.domains;
    shards;
    merge_wait_ns;
    imbalance_pct;
    flight;
    tenant = st.tenant;
    stats = Exec_stats.to_assoc stats;
    gc =
      [
        ("minor_words", stats.Exec_stats.gc_minor_words);
        ("major_words", stats.Exec_stats.gc_major_words);
        ("minor_collections", stats.Exec_stats.gc_minor_collections);
        ("major_collections", stats.Exec_stats.gc_major_collections);
      ];
  }

(* Release whatever outlives the stream — today, parallel evaluators' domain
   pools.  Idempotent; called on every terminal path of [next], and
   available to consumers abandoning a stream mid-way (a pool left
   unjoined would leak OCaml domains, which are a bounded resource).

   Also the audit log's emission point: one record per stream, once, when
   the global sink is enabled — a single flag check per query otherwise. *)
let close st =
  List.iter Evaluator.close st.evaluators;
  if (Obs.Audit.enabled () || Obs.Flight.enabled ()) && not st.audited then begin
    st.audited <- true;
    (* the flight dump rides the same once-per-stream seam; when both sinks
       are live the audit record cross-links to the dump *)
    let flight =
      if Obs.Flight.enabled () then
        match Obs.Flight.dump_target () with
        | None -> None
        | Some path -> (
          try
            let events = Obs.Flight.dump path in
            let _, dropped = Obs.Flight.stats () in
            Some { Obs.Audit.f_path = path; f_events = events; f_dropped = dropped }
          with Sys_error _ -> None)
      else None
    in
    if Obs.Audit.enabled () then Obs.Audit.emit (audit_record ?flight st)
  end

let rec next st =
  if st.rejection <> None then begin
    (* a rejected stream has nothing to release, but closing it here means
       rejections reach the audit log through the same single seam *)
    close st;
    None
  end
  else if not (Governor.poll st.governor) then begin
    close st;
    None
  end
  else
    match st.pull () with
    | exception Failpoints.Injected name ->
      Governor.fault st.governor name;
      close st;
      None
    | None ->
      close st;
      None
    | Some (binding, distance, witnesses) ->
      let values =
        List.map
          (fun v ->
            match List.assoc_opt v binding with
            | Some oid -> Graph.node_label st.graph oid
            | None ->
              Invariant.fail
                "Engine.next: head variable ?%s is unbound in the joined binding (Query.validate \
                 guarantees every head variable appears in the body)"
                v)
          st.head
      in
      if Hashtbl.mem st.projected values then next st
      else begin
        Hashtbl.add st.projected values ();
        Governor.charge_mem st.governor Mem.answer_entry_bytes;
        Governor.note_answer st.governor;
        Obs.Metrics.observe st.h_answer_dist distance;
        Some { bindings = List.combine st.head values; distance; witnesses }
      end

let governor st = st.governor
let admission st = st.admission

let metrics st =
  Exec_stats.record_into st.registry (stream_stats st);
  st.registry

let drain ?limit st =
  let rec collect acc k =
    if k <= 0 then List.rev acc
    else match next st with Some a -> collect (a :: acc) (k - 1) | None -> List.rev acc
  in
  let answers = collect [] (Option.value limit ~default:max_int) in
  (* a limit can stop collection before [next] reaches a terminal path:
     close here so abandoned pools are joined and the audit record is
     emitted exactly once per drained stream *)
  close st;
  let termination = status st in
  let aborted =
    match termination with Exhausted { reason = Governor.Tuple_budget; _ } -> true | _ -> false
  in
  { answers; termination; aborted; stats = Exec_stats.copy (stream_stats st); metrics = metrics st }

let run ~graph ~ontology ?options ?limit q =
  let options = match options with Some o -> o | None -> Options.default in
  let governor = Options.governor ?limit options in
  let st = open_query ~graph ~ontology ~options ~governor q in
  drain ?limit st

let run_string ~graph ~ontology ?options ?limit s =
  match Query_parser.parse_result s with
  | Error msg -> Error msg
  | Ok q -> Ok (run ~graph ~ontology ?options ?limit q)

let explain ~graph ~ontology ?(options = Options.default) (q : Query.t) =
  (match Query.validate q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.explain: " ^ msg));
  let conjuncts =
    List.mapi (fun i c -> Evaluator.describe ~graph ~ontology ~options ~index:(i + 1) c) q.conjuncts
  in
  let join =
    match q.conjuncts with
    | [ _ ] -> "single-conjunct"
    | cs -> Printf.sprintf "ranked-join(%d)" (List.length cs)
  in
  let governor =
    [
      ( "timeout",
        match options.Options.timeout_ns with
        | None -> "none"
        | Some ns -> Printf.sprintf "%dms" (ns / 1_000_000) );
      ( "tuples",
        match options.Options.max_tuples with None -> "none" | Some n -> string_of_int n );
      ( "answers",
        match options.Options.max_answers with None -> "none" | Some n -> string_of_int n );
      ( "memory",
        match options.Options.max_memory_bytes with
        | None -> "none"
        | Some b -> Printf.sprintf "%d bytes" b );
      ( "admission",
        match (options.Options.max_states, options.Options.max_product_est) with
        | None, None -> "none"
        | ms, mp ->
          let part name = function None -> [] | Some n -> [ Printf.sprintf "%s=%d" name n ] in
          String.concat ", " (part "max-states" ms @ part "max-product-est" mp) );
    ]
  in
  {
    Obs.Explain.query = Format.asprintf "%a" Query.pp q;
    head = q.head;
    join;
    governor;
    conjuncts;
    analysis = [];
    profile = None;
  }

let annotate st (plan : Obs.Explain.plan) =
  (* A born-tripped stream has no evaluators; leave its counters empty. *)
  (try
     List.iter2
       (fun (cp : Obs.Explain.conjunct_plan) ev ->
         cp.Obs.Explain.counters <- Exec_stats.to_assoc (Exec_stats.copy (Evaluator.stats ev)))
       plan.Obs.Explain.conjuncts st.evaluators
   with Invalid_argument _ -> ());
  plan.Obs.Explain.analysis <-
    [
      ("termination", Format.asprintf "%a" pp_termination (status st));
      ("answers", string_of_int (Governor.answers st.governor));
      ("tuples", string_of_int (Governor.tuples st.governor));
      ("mem_bytes_peak", string_of_int (Governor.mem_peak st.governor));
    ]
    @ (match st.admission with
      | None -> []
      | Some e -> [ ("admission", Format.asprintf "%a" Admission.pp_estimate e) ])
    @
    (let drops_prov, shrinks_psi = Governor.degrade_counts st.governor in
     if drops_prov > 0 || shrinks_psi > 0 then
       [ ("degraded", Printf.sprintf "drop-provenance:%d, shrink-psi:%d" drops_prov shrinks_psi) ]
     else []);
  plan.Obs.Explain.profile <- Some (Obs.Profile.of_metrics (metrics st))
