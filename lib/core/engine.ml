module Graph = Graphstore.Graph

type answer = { bindings : (string * string) list; distance : int }

type termination = Governor.termination =
  | Completed
  | Exhausted of { reason : Governor.reason; elapsed_ns : int; tuples : int; answers : int }

type outcome = {
  answers : answer list;
  termination : termination;
  aborted : bool;
  stats : Exec_stats.t;
}

let pp_answer ppf a =
  Format.fprintf ppf "dist=%d %s" a.distance
    (String.concat ", " (List.map (fun (v, x) -> Printf.sprintf "?%s=%s" v x) a.bindings))

type stream = {
  graph : Graph.t;
  head : string list;
  evaluators : Evaluator.t list;
  pull : unit -> (Ranked_join.binding * int) option;
  projected : (string list, unit) Hashtbl.t; (* dedup of projected bindings *)
  governor : Governor.t;
}

(* A conjunct answer as a variable binding.  A conjunct with two constants
   contributes an empty binding (its satisfaction is checked by the conjunct
   evaluator itself). *)
let binding_of_answer (c : Query.conjunct) (a : Conjunct.answer) =
  let of_term term value =
    match (term : Query.term) with Query.Var v -> [ (v, value) ] | Query.Const _ -> []
  in
  Ranked_join.binding_of (of_term c.subj a.x @ of_term c.obj a.y)

let open_query ~graph ~ontology ?(options = Options.default) ?governor (q : Query.t) =
  (match Query.validate q with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.open_query: " ^ msg));
  (match options.Options.failpoints with
  | None -> ()
  | Some spec -> (
    match Failpoints.arm_spec spec with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Engine.open_query: " ^ msg)));
  let governor = match governor with Some g -> g | None -> Options.governor options in
  let closed = { graph; head = q.head; evaluators = []; pull = (fun () -> None);
                 projected = Hashtbl.create 1; governor } in
  (* Opening can itself hit a failpoint (e.g. the ontology lookups of RELAX
     seeding): the stream is then born already tripped rather than raising
     through the public surface. *)
  match
    let evaluators =
      List.map (fun c -> (c, Evaluator.create ~graph ~ontology ~options ~governor c)) q.conjuncts
    in
    let stream_of (c, ev) () =
      match Evaluator.next ev with
      | Some a -> Some (binding_of_answer c a, a.Conjunct.dist)
      | None -> None
    in
    let pull =
      match evaluators with
      | [ single ] -> stream_of single
      | several ->
        let join = Ranked_join.create ~governor (List.map stream_of several) in
        fun () -> Ranked_join.next join
    in
    (List.map snd evaluators, pull)
  with
  | evaluators, pull ->
    { closed with evaluators; pull; projected = Hashtbl.create 64 }
  | exception Failpoints.Injected name ->
    Governor.fault governor name;
    closed

let rec next st =
  if not (Governor.poll st.governor) then None
  else
    match st.pull () with
    | exception Failpoints.Injected name ->
      Governor.fault st.governor name;
      None
    | None -> None
    | Some (binding, distance) ->
      let values =
        List.map
          (fun v ->
            match List.assoc_opt v binding with
            | Some oid -> Graph.node_label st.graph oid
            | None ->
              Invariant.fail
                "Engine.next: head variable ?%s is unbound in the joined binding (Query.validate \
                 guarantees every head variable appears in the body)"
                v)
          st.head
      in
      if Hashtbl.mem st.projected values then next st
      else begin
        Hashtbl.add st.projected values ();
        Governor.note_answer st.governor;
        Some { bindings = List.combine st.head values; distance }
      end

let status st = Governor.termination st.governor
let governor st = st.governor

let stream_stats st =
  let acc = Exec_stats.create () in
  List.iter (fun ev -> Exec_stats.merge_into acc (Evaluator.stats ev)) st.evaluators;
  acc

let run ~graph ~ontology ?options ?limit q =
  let options = match options with Some o -> o | None -> Options.default in
  let governor = Options.governor ?limit options in
  let st = open_query ~graph ~ontology ~options ~governor q in
  let rec collect acc k =
    if k <= 0 then List.rev acc
    else
      match next st with Some a -> collect (a :: acc) (k - 1) | None -> List.rev acc
  in
  let answers = collect [] (Option.value limit ~default:max_int) in
  let termination = status st in
  let aborted =
    match termination with
    | Exhausted { reason = Governor.Tuple_budget; _ } -> true
    | _ -> false
  in
  { answers; termination; aborted; stats = stream_stats st }

let run_string ~graph ~ontology ?options ?limit s =
  match Query_parser.parse_result s with
  | Error msg -> Error msg
  | Ok q -> Ok (run ~graph ~ontology ?options ?limit q)
