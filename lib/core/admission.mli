(** Admission control: static pre-flight cost estimation of a CRP query.

    Run by [Engine.open_query] after parsing, before any evaluation state
    exists, when [Options.max_states] or [Options.max_product_est] is set.
    The estimate is computed from the conjuncts' compiled automata (exact
    state/transition counts after APPROX/RELAX expansion — compilation
    interns labels but scans no edges) and the graph's node count; a
    rejected query never touches the graph ([edges_scanned = 0], pinned by
    the chaos suite) and surfaces as [Engine.Rejected] / CLI exit code 6.

    The formulae are documented in DESIGN.md ("Resource safety"). *)

type conjunct_estimate = {
  index : int;  (** 1-based position in the query body *)
  states : int;  (** [|Q|] of the compiled (post-expansion) automaton *)
  transitions : int;
  fanout : int;  (** max out-degree over automaton states — alternation fan-out *)
  seed_est : int;
      (** estimated [|V_seed|]: 1 for a known constant subject (after the
          case-2 reversal), 0 for an unknown constant, [|V_G|] for a
          variable subject *)
  product_est : int;  (** [states * seed_est] — the lazy-product frontier bound *)
}

type estimate = {
  per_conjunct : conjunct_estimate list;
  total_states : int;  (** summed over conjuncts — the [admission_est_states] counter *)
  total_product_est : int;
  join_arity : int;
}

type kind = Max_states | Max_product_est

type rejection = {
  kind : kind;
  limit : int;
  actual : int;
  conjunct : int option;  (** the offending conjunct's [index], when per-conjunct *)
}

val estimate : graph:Graphstore.Graph.t -> ontology:Ontology.t -> options:Options.t -> Query.t -> estimate
(** Side-effect free: never consults failpoints, never scans an edge. *)

val vet :
  graph:Graphstore.Graph.t ->
  ontology:Ontology.t ->
  options:Options.t ->
  Query.t ->
  estimate * rejection option
(** {!estimate}, then check it against the options' limits: any conjunct
    with [states > max_states] rejects (first offender reported), then
    [total_product_est > max_product_est].  [None] limits admit
    everything. *)

val kind_string : kind -> string
(** ["max-states"] | ["max-product-est"]. *)

val rejection_string : rejection -> string

val pp_rejection : Format.formatter -> rejection -> unit

val pp_estimate : Format.formatter -> estimate -> unit
