exception Error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

let trim = String.trim

(* Split [s] on commas that are not nested inside parentheses. *)
let split_top_level s =
  let parts = ref [] and buf = Buffer.create 32 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
        incr depth;
        Buffer.add_char buf c
      | ')' ->
        decr depth;
        Buffer.add_char buf c
      | ',' when !depth = 0 ->
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map trim !parts

let parse_term s =
  let s = trim s in
  if s = "" then fail "empty term"
  else if s.[0] = '?' then begin
    let name = String.sub s 1 (String.length s - 1) in
    if name = "" then fail "empty variable name";
    Query.Var name
  end
  else Query.Const s

let parse_regex s =
  match Rpq_regex.Parser.parse_result s with
  | Ok r -> r
  | Error msg -> fail "bad regular expression %S: %s" s msg

(* A conjunct is [MODE? ( term , regex , term )]. *)
let parse_conjunct s =
  let s = trim s in
  let cmode, rest =
    if String.length s >= 6 && String.uppercase_ascii (String.sub s 0 6) = "APPROX" then
      (Query.Approx, trim (String.sub s 6 (String.length s - 6)))
    else if String.length s >= 5 && String.uppercase_ascii (String.sub s 0 5) = "RELAX" then
      (Query.Relax, trim (String.sub s 5 (String.length s - 5)))
    else (Query.Exact, s)
  in
  let n = String.length rest in
  if n < 2 || rest.[0] <> '(' || rest.[n - 1] <> ')' then
    fail "conjunct must be parenthesised: %S" s;
  let inner = String.sub rest 1 (n - 2) in
  match split_top_level inner with
  | [ subj; regex; obj ] ->
    Query.conjunct
      ~mode:cmode (parse_term subj) (parse_regex regex) (parse_term obj)
  | parts -> fail "conjunct needs exactly 3 components, got %d: %S" (List.length parts) s

let parse_head s =
  let s = trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '(' || s.[n - 1] <> ')' then fail "head must be parenthesised: %S" s;
  let inner = String.sub s 1 (n - 2) in
  List.map
    (fun part ->
      match parse_term part with
      | Query.Var v -> v
      | Query.Const c -> fail "head must contain variables only, got %S" c)
    (split_top_level inner)

(* Conjuncts in the body are themselves separated by top-level commas only
   when each conjunct's parentheses are balanced, which [split_top_level]
   guarantees. *)
let find_arrow s =
  let n = String.length s in
  let rec scan i =
    if i + 1 >= n then fail "missing '<-' between head and body"
    else if s.[i] = '<' && s.[i + 1] = '-' then i
    else scan (i + 1)
  in
  scan 0

(* Stack-safety audit (the regex parser's depth limit has a counterpart
   here): [split_top_level] and [find_arrow] are iterative/tail-recursive,
   and the regex component inherits [Rpq_regex.Parser]'s nesting-depth
   limit — the remaining unbounded dimension is the conjunct/head-variable
   count, which only costs linear work but is capped anyway so a
   pathological body fails with a typed error instead of being admitted
   into per-conjunct automaton compilation. *)
let max_conjuncts = 10_000

let parse s =
  let idx = find_arrow s in
  let head = parse_head (String.sub s 0 idx) in
  if List.length head > max_conjuncts then
    fail "head lists %d variables, over the limit %d" (List.length head) max_conjuncts;
  let body = String.sub s (idx + 2) (String.length s - idx - 2) in
  let parts = split_top_level body in
  if List.length parts > max_conjuncts then
    fail "query body has %d conjuncts, over the limit %d" (List.length parts) max_conjuncts;
  let conjuncts = List.map parse_conjunct parts in
  let q = Query.{ head; conjuncts } in
  (match Query.validate q with Ok () -> () | Error msg -> fail "%s" msg);
  q

let parse_result s =
  match parse s with q -> Ok q | exception Error msg -> Error msg

let parse_conjunct s = parse_conjunct s
