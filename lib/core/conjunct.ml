module Graph = Graphstore.Graph
module Interner = Graphstore.Interner
module Nfa = Automaton.Nfa
module Regex = Rpq_regex.Regex

type answer = { x : int; y : int; dist : int; witness : Witness.t option }

type tup = { v : int; n : int; s : int; fin : bool; prov : int }
(* [fin] is carried in the tuple (not only as the D_R key) so that the
   final-priority ablation can disable priority popping without losing the
   final/non-final distinction.  [prov] is the tuple's provenance-arena
   index, [Provenance.no_parent] whenever provenance is off. *)

type t = {
  graph : Graph.t;
  nfa : Nfa.t;
  dr : tup Dr_queue.t;
  visited : (int * int * int, unit) Hashtbl.t;
  answers : (int * int, int) Hashtbl.t; (* (v, n) -> first emission distance *)
  suppress : (int * int, int) Hashtbl.t option;
  seeder : Seeder.t;
  target : int option; (* final-state annotation: object constant's oid *)
  same_var : bool; (* subject and object are the same variable *)
  swap : bool; (* case 2: the conjunct was reversed *)
  stats : Exec_stats.t;
  ceiling : int option;
  governor : Governor.t;
  mutable was_pruned : bool;
  opts : Options.t;
  (* The U-cache of §3.4 as a reusable buffer: consecutive transitions with
     the same label share one neighbour scan, and no per-lookup list is
     allocated. *)
  mutable ubuf : int array;
  mutable ulen : int;
  (* Distribution metrics, handles resolved once at open time so recording
     is an array increment (kept unconditional — cheaper than a branch that
     would misrepresent the run when observability is on). *)
  h_queue_depth : Obs.Metrics.histogram;
  h_succ_edges : Obs.Metrics.histogram;
  h_seed_batch_ns : Obs.Metrics.histogram;
  h_pop_distance : Obs.Metrics.histogram;
  h_ops_insert : Obs.Metrics.histogram;
  h_ops_delete : Obs.Metrics.histogram;
  h_ops_subst : Obs.Metrics.histogram;
  h_ops_relax_beta : Obs.Metrics.histogram;
  h_ops_relax_gamma : Obs.Metrics.histogram;
  (* Provenance arena ([Some] iff [options.provenance]): parent pointers for
     every pushed tuple, from which [record_answer] rebuilds witnesses.
     Mutable so stage-1 memory degradation can drop it mid-query. *)
  mutable prov : Provenance.t option;
  seed_beta : int; (* RELAX ancestor-seed ops: cost = depth × beta *)
}

let stats t = t.stats
let pruned t = t.was_pruned
let automaton t = t.nfa

(* RELAX class-ancestor seeds (Open, line 8): the node of every super-class
   of [c], ordered most specific first, each at distance depth*beta.  The
   paper's pseudocode seeds them at distance 0; the answer distances it then
   reports (Fig. 5: RELAX answers at distances 1, 2, 3) show the relaxation
   cost is in fact accounted for, so we seed at the true cost. *)
let relax_ancestor_seeds ~graph ~ontology ~beta oid =
  Failpoints.check Failpoints.Ontology_lookup;
  let interner = Graph.interner graph in
  let label_id = Interner.intern interner (Graph.node_label graph oid) in
  if not (Ontology.is_class ontology label_id) then [ (oid, 0) ]
  else
    List.filter_map
      (fun (cls, depth) ->
        match Graph.find_node graph (Interner.name interner cls) with
        | Some node -> Some (node, depth * beta)
        | None -> None)
      (Ontology.ancestors_by_specificity ontology label_id)

let open_ ~graph ~ontology ~options ?governor ?metrics ?ceiling ?suppress ?seed_filter
    (conjunct : Query.conjunct) =
  let governor =
    match governor with Some g -> g | None -> Options.governor options
  in
  let metrics = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  (* Case 2: (?X, R, C) becomes (C, R-, ?X). *)
  let subj, regex, obj, swap =
    match (conjunct.subj, conjunct.obj) with
    | Query.Var _, Query.Const _ ->
      (conjunct.obj, Regex.reverse conjunct.regex, conjunct.subj, true)
    | _ -> (conjunct.subj, conjunct.regex, conjunct.obj, false)
  in
  let mode = Options.compile_mode options conjunct.cmode in
  let nfa = Automaton.Compile.conjunct_automaton ~graph ~ontology ~mode regex in
  let seeder =
    match subj with
    | Query.Const c -> (
      match Graph.find_node graph c with
      | None -> Seeder.of_list [] (* unknown constant: no answers *)
      | Some oid ->
        if conjunct.cmode = Query.Relax then
          Seeder.of_list ?filter:seed_filter
            (relax_ancestor_seeds ~graph ~ontology ~beta:options.Options.costs.beta oid)
        else Seeder.of_list ?filter:seed_filter [ (oid, 0) ])
    | Query.Var _ ->
      let batch_size =
        if options.Options.batched_seeding then options.Options.batch_size else max_int
      in
      Seeder.of_initial_state ~governor ?filter:seed_filter ~graph ~nfa ~batch_size ()
  in
  (* An unknown object constant can never be matched: oids are dense
     non-negative ints, so no tuple's node ever equals the [-1] sentinel.
     Rather than explore the whole reachable product for nothing, drop the
     seeds — the conjunct terminates immediately with zero answers. *)
  let target, seeder =
    match obj with
    | Query.Const c -> (
      match Graph.find_node graph c with
      | Some oid -> (Some oid, seeder)
      | None -> (Some (-1), Seeder.of_list []))
    | Query.Var _ -> (None, seeder)
  in
  let same_var =
    match (subj, obj) with Query.Var a, Query.Var b -> a = b | _ -> false
  in
  {
    graph;
    nfa;
    dr = Dr_queue.create ();
    visited = Hashtbl.create 1024;
    answers = Hashtbl.create 64;
    suppress;
    seeder;
    target;
    same_var;
    swap;
    stats = Exec_stats.create ();
    ceiling;
    governor;
    was_pruned = false;
    opts = options;
    ubuf = Array.make 64 0;
    ulen = 0;
    h_queue_depth = Obs.Metrics.histogram metrics "queue_depth";
    h_succ_edges = Obs.Metrics.histogram metrics "succ_edges";
    h_seed_batch_ns = Obs.Metrics.histogram metrics "seed_batch_ns";
    h_pop_distance = Obs.Metrics.histogram metrics "pop_distance";
    h_ops_insert = Obs.Metrics.histogram metrics "ops_insert";
    h_ops_delete = Obs.Metrics.histogram metrics "ops_delete";
    h_ops_subst = Obs.Metrics.histogram metrics "ops_subst";
    h_ops_relax_beta = Obs.Metrics.histogram metrics "ops_relax_beta";
    h_ops_relax_gamma = Obs.Metrics.histogram metrics "ops_relax_gamma";
    prov = (if options.Options.provenance then Some (Provenance.create ()) else None);
    seed_beta = options.Options.costs.beta;
  }

(* The EXPLAIN view of [open_]: the same case analysis (reversal, compile
   mode, seeding regime), carried out without building the evaluation
   structures.  Returns the compiled automaton, a rendered seeding
   description and whether case 2 reversed the conjunct. *)
let describe ~graph ~ontology ~options (conjunct : Query.conjunct) =
  let subj, regex, obj, swap =
    match (conjunct.Query.subj, conjunct.Query.obj) with
    | Query.Var _, Query.Const _ ->
      (conjunct.Query.obj, Regex.reverse conjunct.Query.regex, conjunct.Query.subj, true)
    | _ -> (conjunct.Query.subj, conjunct.Query.regex, conjunct.Query.obj, false)
  in
  let mode = Options.compile_mode options conjunct.Query.cmode in
  let nfa = Automaton.Compile.conjunct_automaton ~graph ~ontology ~mode regex in
  let seeding =
    match subj with
    | Query.Const c -> (
      match Graph.find_node graph c with
      | None -> Printf.sprintf "empty (unknown constant %S)" c
      | Some oid ->
        if conjunct.Query.cmode = Query.Relax then
          let seeds =
            relax_ancestor_seeds ~graph ~ontology ~beta:options.Options.costs.beta oid
          in
          Printf.sprintf "constant+ancestors %S (%d seeds)" c (List.length seeds)
        else Printf.sprintf "constant %S" c)
    | Query.Var _ ->
      if options.Options.batched_seeding then
        Printf.sprintf "batched(%d)" options.Options.batch_size
      else "up-front"
  in
  let seeding =
    match obj with
    | Query.Const c when Graph.find_node graph c = None ->
      Printf.sprintf "empty (unknown object constant %S)" c
    | _ -> seeding
  in
  (nfa, seeding, swap)

(* [NeighboursByEdge] (§3.4): nodes adjacent to [n] under a transition
   label, observing directionality.  The wildcard [*] retrieves every edge
   of [n] in both directions (the paper issues Neighbors over the generic
   'edge' type plus 'type', both ways).  On a frozen graph every arm is a
   range scan over the CSR index; nothing is allocated. *)
let iter_neighbours_by_edge t n (lbl : Nfa.tlabel) f =
  let dir_of : Nfa.dir -> Graph.dir = function Fwd -> Graph.Out | Bwd -> Graph.In in
  match lbl with
  | Nfa.Eps -> assert false (* the compiled automaton is ε-free *)
  | Nfa.Sym (d, a) -> Graph.iter_neighbors t.graph n a (dir_of d) f
  | Nfa.Any -> Graph.iter_neighbors_any t.graph n f
  | Nfa.Any_dir d -> Graph.iter_neighbors_all_labels t.graph n (dir_of d) f
  | Nfa.Sub_closure (d, ls) -> Graph.iter_neighbors_labels t.graph n ls (dir_of d) f
  | Nfa.Type_to c -> if Graph.mem_edge t.graph n (Graph.type_label t.graph) c then f c

let ubuf_push t m =
  if t.ulen = Array.length t.ubuf then begin
    let bigger = Array.make (2 * t.ulen) 0 in
    Array.blit t.ubuf 0 bigger 0 t.ulen;
    t.ubuf <- bigger
  end;
  t.ubuf.(t.ulen) <- m;
  t.ulen <- t.ulen + 1

let fill_ucache t n lbl =
  Failpoints.check Failpoints.Graph_scan;
  t.ulen <- 0;
  let t0 = !Exec_stats.now_ns () in
  iter_neighbours_by_edge t n lbl (fun m -> ubuf_push t m);
  t.stats.scan_ns <- t.stats.scan_ns + (!Exec_stats.now_ns () - t0);
  t.stats.edges_scanned <- t.stats.edges_scanned + t.ulen;
  t.stats.adjacency_bytes <- t.stats.adjacency_bytes + (t.ulen * (Sys.word_size / 8));
  Obs.Metrics.observe t.h_succ_edges t.ulen

(* [Succ (s, n)]: transitions leaving (s, n) in the product automaton H_R,
   delivered to [f tr m] (the automaton transition taken and the neighbour
   reached — provenance needs the whole transition, its ops included).
   Out-transitions are sorted by label
   (Nfa.normalize), so consecutive identical labels reuse the U-cache buffer
   filled by the previous scan (§3.4).

   Distance-aware retrieval prunes here, before the neighbour lookup: a
   transition that would exceed the ψ ceiling never touches the graph store —
   this is where the §4.3 optimisation saves its work. *)
let iter_succ t s n ~dist f =
  t.stats.succ_calls <- t.stats.succ_calls + 1;
  let cached : Nfa.tlabel option ref = ref None in
  List.iter
    (fun (tr : Nfa.transition) ->
      match t.ceiling with
      | Some psi when dist + tr.cost > psi ->
        t.was_pruned <- true;
        t.stats.pruned <- t.stats.pruned + 1
      | _ ->
        if !cached <> Some tr.lbl then begin
          fill_ucache t n tr.lbl;
          cached := Some tr.lbl
        end;
        for i = 0 to t.ulen - 1 do
          f tr t.ubuf.(i)
        done)
    (Nfa.out t.nfa s)

let push t ~dist ~final tup =
  match t.ceiling with
  | Some psi when dist > psi ->
    t.was_pruned <- true;
    t.stats.pruned <- t.stats.pruned + 1
  | _ ->
    Dr_queue.push t.dr ~dist ~final:(final && t.opts.Options.final_priority) tup;
    t.stats.pushes <- t.stats.pushes + 1;
    if Dr_queue.size t.dr > t.stats.peak_queue then t.stats.peak_queue <- Dr_queue.size t.dr;
    (* The governor owns the tuple budget (cumulative across conjuncts and
       restarts); past the ceiling it trips and the GetNext loop unwinds at
       its next poll — no exception crosses the streaming surface.  The
       queued tuple is also charged against the memory budget, released at
       its pop. *)
    Governor.charge_mem t.governor Mem.tuple_bytes;
    Governor.tick_tuple t.governor

(* Stage-1 memory degradation, consulted at every arena append: under
   pressure the arena is dropped once and recording stops for the rest of
   the query — answers keep their bindings and distances, they lose their
   witnesses.  Tuples still queued keep their (now dangling) arena indices;
   [witness_of] only dereferences through [t.prov], so a dropped arena
   degrades every later answer to [witness = None] rather than faulting. *)
let prov_arena t =
  match t.prov with
  | None -> None
  | Some arena when Governor.drop_provenance t.governor ->
    Governor.release_mem t.governor (Provenance.length arena * Mem.prov_entry_bytes);
    Governor.note_dropped_provenance t.governor;
    t.prov <- None;
    None
  | some -> some

(* Release a discarded evaluation's charges (levelled parts are opened and
   dropped once per psi level).  The [suppress] table is owned by the
   caller and keeps its own charges. *)
let close t =
  Governor.release_mem t.governor (Dr_queue.size t.dr * Mem.tuple_bytes);
  Governor.release_mem t.governor (Hashtbl.length t.visited * Mem.visited_entry_bytes);
  Governor.release_mem t.governor (Hashtbl.length t.answers * Mem.visited_entry_bytes);
  match t.prov with
  | None -> ()
  | Some arena ->
    Governor.release_mem t.governor (Provenance.length arena * Mem.prov_entry_bytes);
    t.prov <- None

let refill_if_needed t =
  (* Coroutine seeding (GetNext lines 14–17), performed before popping so
     that distance-0 seeds always enter D_R ahead of higher-distance pops,
     preserving the non-decreasing answer order.  The poll also breaks the
     loop when the governor trips mid-seeding (the seeder then keeps
     returning short batches without finishing). *)
  let clocked = Obs.Clock.installed () in
  while
    Governor.poll t.governor
    && (not (Seeder.exhausted t.seeder))
    && not (Dr_queue.has_at t.dr 0)
  do
    let t0 = !Exec_stats.now_ns () in
    let batch = Seeder.next_batch t.seeder in
    if batch <> [] then begin
      t.stats.batches <- t.stats.batches + 1;
      t.stats.seeds <- t.stats.seeds + List.length batch;
      List.iter
        (fun (oid, dist) ->
          let prov =
            match prov_arena t with
            | None -> Provenance.no_parent
            | Some arena ->
              (* the only positive-cost seeds are RELAX class ancestors,
                 admitted by rule (i) at depth × beta *)
              let ops =
                if dist = 0 then []
                else
                  [ (Nfa.Super_prop (if t.seed_beta > 0 then dist / t.seed_beta else dist), dist) ]
              in
              Governor.charge_mem t.governor Mem.prov_entry_bytes;
              Provenance.add arena ~parent:Provenance.no_parent ~node:oid
                (Provenance.Seed { cost = dist; ops })
          in
          push t ~dist ~final:false { v = oid; n = oid; s = Nfa.initial t.nfa; fin = false; prov })
        batch
    end;
    if clocked then Obs.Metrics.observe t.h_seed_batch_ns (!Exec_stats.now_ns () - t0);
    if Obs.Trace.enabled () then
      Obs.Trace.complete ~cat:"seed" ~start_ns:t0
        ~args:[ ("seeds", Obs.Trace.Num (List.length batch)) ]
        "seed.batch"
  done

let already_answered t v n =
  Hashtbl.mem t.answers (v, n)
  || match t.suppress with Some tbl -> Hashtbl.mem tbl (v, n) | None -> false

let annotation_matches t tup =
  (match t.target with Some oid -> tup.n = oid | None -> true)
  && ((not t.same_var) || tup.v = tup.n)

(* Rebuild the answer's witness by walking the parent chain from the
   tuple's arena entry back to its seed: one [Edge] hop per Succ expansion
   (its [src] read off the parent entry), the [Seed] hop at the root, and a
   trailing [Final] hop when the accepting state carries a positive final
   weight (an ε-removed trailing deletion) — so hop costs sum to [dist]. *)
let witness_of t (tup : tup) dist =
  match t.prov with
  | None -> None
  | Some arena ->
    let rec walk i acc =
      let parent, node, edge = Provenance.get arena i in
      match edge with
      | Provenance.Seed { cost; ops } -> (node, Witness.Seed { node; cost; ops } :: acc)
      | Provenance.Step tr ->
        let _, src, _ = Provenance.get arena parent in
        walk parent
          (Witness.Edge { src; dst = node; lbl = tr.Nfa.lbl; cost = tr.Nfa.cost; ops = tr.Nfa.ops }
          :: acc)
    in
    let source, hops = walk tup.prov [] in
    let fw = match Nfa.final_weight t.nfa tup.s with Some w -> w | None -> 0 in
    let fops = Nfa.final_ops t.nfa tup.s in
    let hops =
      if fw > 0 || fops <> [] then hops @ [ Witness.Final { cost = fw; ops = fops } ] else hops
    in
    Some { Witness.source; target = tup.n; dist; hops }

let h_op t : Nfa.op -> Obs.Metrics.histogram = function
  | Nfa.Insert -> t.h_ops_insert
  | Nfa.Delete -> t.h_ops_delete
  | Nfa.Subst -> t.h_ops_subst
  | Nfa.Super_prop _ -> t.h_ops_relax_beta
  | Nfa.Type_edge -> t.h_ops_relax_gamma

let record_answer t tup dist =
  (* [already_answered] held, so the keys are new in both tables. *)
  Hashtbl.replace t.answers (tup.v, tup.n) dist;
  Governor.charge_mem t.governor Mem.visited_entry_bytes;
  (match t.suppress with
  | Some tbl ->
    Hashtbl.replace tbl (tup.v, tup.n) dist;
    Governor.charge_mem t.governor Mem.visited_entry_bytes
  | None -> ());
  t.stats.answers <- t.stats.answers + 1;
  let witness = witness_of t tup dist in
  (match witness with
  | Some w -> List.iter (fun (op, c) -> Obs.Metrics.observe (h_op t op) c) (Witness.ops w)
  | None -> ());
  if t.swap then { x = tup.n; y = tup.v; dist; witness } else { x = tup.v; y = tup.n; dist; witness }

let rec get_next t =
  if not (Governor.poll t.governor) then None
  else begin
  refill_if_needed t;
  Obs.Metrics.observe t.h_queue_depth (Dr_queue.size t.dr);
  match Dr_queue.pop t.dr with
  | None -> None (* seeder exhausted too, or everything pruned *)
  | Some (tup, dist, _) when tup.fin ->
    t.stats.pops <- t.stats.pops + 1;
    Governor.release_mem t.governor Mem.tuple_bytes;
    Obs.Metrics.observe t.h_pop_distance dist;
    if already_answered t tup.v tup.n then begin
      t.stats.drop_dup <- t.stats.drop_dup + 1;
      get_next t
    end
    else Some (record_answer t tup dist)
  | Some (tup, dist, _) ->
    t.stats.pops <- t.stats.pops + 1;
    Governor.release_mem t.governor Mem.tuple_bytes;
    Obs.Metrics.observe t.h_pop_distance dist;
    let key = (tup.v, tup.n, tup.s) in
    if not (Hashtbl.mem t.visited key) then begin
      Hashtbl.add t.visited key ();
      Governor.charge_mem t.governor Mem.visited_entry_bytes;
      iter_succ t tup.s tup.n ~dist (fun tr m ->
          let s' = tr.Nfa.dst in
          if not (Hashtbl.mem t.visited (tup.v, m, s')) then begin
            (* the one provenance branch on the hot path: off, [prov] is the
               shared [no_parent] sentinel and nothing is allocated *)
            let prov =
              match prov_arena t with
              | None -> Provenance.no_parent
              | Some arena ->
                Governor.charge_mem t.governor Mem.prov_entry_bytes;
                Provenance.add arena ~parent:tup.prov ~node:m (Provenance.Step tr)
            in
            push t ~dist:(dist + tr.Nfa.cost) ~final:false
              { v = tup.v; n = m; s = s'; fin = false; prov }
          end);
      match Nfa.final_weight t.nfa tup.s with
      | Some weight
        when annotation_matches t tup && not (already_answered t tup.v tup.n) ->
        push t ~dist:(dist + weight) ~final:true { tup with fin = true }
      | _ -> ()
    end
    else t.stats.drop_visited <- t.stats.drop_visited + 1;
    get_next t
  end
