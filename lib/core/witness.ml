module Nfa = Automaton.Nfa

type hop =
  | Seed of { node : int; cost : int; ops : (Nfa.op * int) list }
  | Edge of { src : int; dst : int; lbl : Nfa.tlabel; cost : int; ops : (Nfa.op * int) list }
  | Final of { cost : int; ops : (Nfa.op * int) list }

type t = { source : int; target : int; dist : int; hops : hop list }

let hop_cost = function Seed h -> h.cost | Edge h -> h.cost | Final h -> h.cost
let hop_ops = function Seed h -> h.ops | Edge h -> h.ops | Final h -> h.ops
let cost t = List.fold_left (fun acc h -> acc + hop_cost h) 0 t.hops
let ops t = List.concat_map hop_ops t.hops
let ops_cost t = List.fold_left (fun acc (_, c) -> acc + c) 0 (ops t)

(* An Edge hop whose cost exceeds its op costs traversed a real graph edge
   (the exact part, cost charged by the base automaton); [Delete] ops and
   the [Seed]/[Final] hops consume no edge.  [edges w] is therefore the data
   path the witness claims to have walked. *)
let edges t =
  List.filter_map (function Edge e -> Some (e.src, e.lbl, e.dst) | _ -> None) t.hops

(* A hop already names its destination node, so a [Type_to] label renders as
   plain [type] instead of repeating the class oid (which the generic tlabel
   printer can only show as [#oid]). *)
let pp_hop_label label ppf = function
  | Nfa.Type_to _ -> Format.pp_print_string ppf "type"
  | lbl -> Nfa.pp_tlabel label ppf lbl

let pp_path ~node ~label ppf t =
  Format.fprintf ppf "@[<hov 2>%s" (node t.source);
  List.iter
    (fun h ->
      match h with
      | Seed s -> if s.cost > 0 then Format.fprintf ppf "@ ~seed(+%d)~ %s" s.cost (node s.node)
      | Edge e -> Format.fprintf ppf "@ --%a--> %s" (pp_hop_label label) e.lbl (node e.dst)
      | Final f -> if f.cost > 0 then Format.fprintf ppf "@ =final(+%d)=" f.cost)
    t.hops;
  Format.fprintf ppf "@]"

let pp_script ppf t =
  match ops t with
  | [] -> Format.pp_print_string ppf "exact (no edits)"
  | ops ->
    List.iteri
      (fun i op -> Format.fprintf ppf (if i = 0 then "%a" else ",@ %a") Nfa.pp_op op)
      ops

let pp ~node ~label ppf t =
  Format.fprintf ppf "@[<v 2>path: %a@,script: @[<hov>%a@]  (distance %d)@]" (pp_path ~node ~label)
    t (fun ppf -> pp_script ppf) t t.dist

let ops_to_json ops =
  Obs.Json.List
    (List.map
       (fun (op, c) ->
         Obs.Json.Obj
           (("op", Obs.Json.String (Nfa.op_name op))
           :: (match op with
              | Nfa.Super_prop depth -> [ ("depth", Obs.Json.Int depth) ]
              | _ -> [])
           @ [ ("cost", Obs.Json.Int c) ]))
       ops)

let hop_to_json ~node ~label = function
  | Seed s ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.String "seed");
        ("node", Obs.Json.String (node s.node));
        ("cost", Obs.Json.Int s.cost);
        ("ops", ops_to_json s.ops);
      ]
  | Edge e ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.String "edge");
        ("src", Obs.Json.String (node e.src));
        ("label", Obs.Json.String (Format.asprintf "%a" (pp_hop_label label) e.lbl));
        ("dst", Obs.Json.String (node e.dst));
        ("cost", Obs.Json.Int e.cost);
        ("ops", ops_to_json e.ops);
      ]
  | Final f ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.String "final");
        ("cost", Obs.Json.Int f.cost);
        ("ops", ops_to_json f.ops);
      ]

let to_json ~node ~label t =
  Obs.Json.Obj
    [
      ("source", Obs.Json.String (node t.source));
      ("target", Obs.Json.String (node t.target));
      ("dist", Obs.Json.Int t.dist);
      ("hops", Obs.Json.List (List.map (hop_to_json ~node ~label) t.hops));
    ]
