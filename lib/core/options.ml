type costs = { ins : int; del : int; sub : int; beta : int; gamma : int }

type t = {
  costs : costs;
  batch_size : int;
  distance_aware : bool;
  decompose : bool;
  max_tuples : int option;
  timeout_ns : int option;
  max_answers : int option;
  max_memory_bytes : int option;
  max_states : int option;
  max_product_est : int option;
  failpoints : string option;
  final_priority : bool;
  batched_seeding : bool;
  provenance : bool;
  domains : int;
  par_queue_cap : int;
}

exception Out_of_budget

let default_costs = { ins = 1; del = 1; sub = 1; beta = 1; gamma = 1 }

let default =
  {
    costs = default_costs;
    batch_size = 100;
    distance_aware = false;
    decompose = false;
    max_tuples = None;
    timeout_ns = None;
    max_answers = None;
    max_memory_bytes = None;
    max_states = None;
    max_product_est = None;
    failpoints = None;
    final_priority = true;
    batched_seeding = true;
    provenance = false;
    domains = 1;
    par_queue_cap = 8192;
  }

let domains_env_var = "OMEGA_DOMAINS"

(* Out-of-range values fall back to 1 rather than erroring: the variable is
   a deployment knob read by binaries at startup, and a bad value must not
   turn every query into a usage failure. *)
let domains_from_env () =
  match Sys.getenv_opt domains_env_var with
  | None | Some "" -> 1
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 && n <= 64 -> n | _ -> 1)

let governor ?limit t =
  let max_answers =
    match (limit, t.max_answers) with
    | None, cap -> cap
    | Some l, None -> Some l
    | Some l, Some cap -> Some (min l cap)
  in
  Governor.create ?timeout_ns:t.timeout_ns ?max_tuples:t.max_tuples ?max_answers
    ?max_memory_bytes:t.max_memory_bytes ()

let phi t (mode : Query.mode) =
  let pos x = if x > 0 then [ x ] else [] in
  let candidates =
    match mode with
    | Query.Exact -> []
    | Query.Approx -> pos t.costs.ins @ pos t.costs.del @ pos t.costs.sub
    | Query.Relax -> pos t.costs.beta @ pos t.costs.gamma
  in
  match candidates with [] -> 1 | c :: cs -> List.fold_left min c cs

let compile_mode t (mode : Query.mode) =
  match mode with
  | Query.Exact -> Automaton.Compile.Exact
  | Query.Approx ->
    Automaton.Compile.Approx { ins = t.costs.ins; del = t.costs.del; sub = t.costs.sub }
  | Query.Relax -> Automaton.Compile.Relax { beta = t.costs.beta; gamma = t.costs.gamma }
