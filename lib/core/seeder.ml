module Graph = Graphstore.Graph
module Oid_set = Graphstore.Oid_set
module Nfa = Automaton.Nfa

type t = {
  mutable candidates : int Seq.t; (* lazily produced, possibly with duplicates *)
  delivered : Oid_set.t;
  batch_size : int;
  mutable fixed : (int * int) list option; (* Some: constant-subject seeds *)
  mutable finished : bool;
  governor : Governor.t;
}

let of_list ?filter seeds =
  let seeds =
    match filter with None -> seeds | Some f -> List.filter (fun (oid, _) -> f oid) seeds
  in
  {
    candidates = Seq.empty;
    delivered = Oid_set.create ();
    batch_size = max_int;
    fixed = Some seeds;
    finished = false;
    governor = Governor.unlimited ();
  }

let all_nodes graph : int Seq.t = Seq.init (Graph.n_nodes graph) (fun oid -> oid)

(* Nodes carrying an edge compatible with [lbl], as a sequence (the Sparksee
   Heads/Tails calls of §3.3).  Instead of materialising per-label oid sets,
   each label contributes a lazy ascending scan filtered by
   {!Graph.has_adjacent} — an O(1) offset-range check on a frozen graph — so
   unneeded batches cost nothing downstream. *)
let nodes_with_edge graph (lbl : Nfa.tlabel) : int Seq.t =
  let with_label dir a = Seq.filter (fun n -> Graph.has_adjacent graph n a dir) (all_nodes graph) in
  let all_labels dir =
    List.to_seq (Graph.labels graph) |> Seq.concat_map (fun l -> with_label dir l)
  in
  let dir_of : Nfa.dir -> Graph.dir = function Fwd -> Graph.Out | Bwd -> Graph.In in
  match lbl with
  | Nfa.Eps -> Seq.empty (* removed before evaluation *)
  | Nfa.Sym (d, a) -> with_label (dir_of d) a
  | Nfa.Any -> all_labels Graph.Both
  | Nfa.Any_dir d -> all_labels (dir_of d)
  | Nfa.Sub_closure (d, ls) -> Seq.concat_map (with_label (dir_of d)) (Array.to_seq ls)
  | Nfa.Type_to c -> List.to_seq (Graph.neighbors graph c (Graph.type_label graph) In)

let of_initial_state ?(governor = Governor.unlimited ()) ?filter ~graph ~nfa ~batch_size () =
  let s0 = Nfa.initial nfa in
  let by_start_labels =
    Seq.concat_map
      (fun (tr : Nfa.transition) -> nodes_with_edge graph tr.lbl)
      (List.to_seq (Nfa.out nfa s0))
  in
  let candidates =
    match Nfa.final_weight nfa s0 with
    | Some 0 -> all_nodes graph
    | Some _ -> Seq.append by_start_labels (all_nodes graph)
    | None -> by_start_labels
  in
  (* Shard partitioning (parallel evaluation): candidates outside the
     filter are skipped before the delivered-set dedup, so a shard's seeder
     behaves exactly like a sequential seeder over its own seed subset. *)
  let candidates =
    match filter with None -> candidates | Some f -> Seq.filter f candidates
  in
  {
    candidates;
    delivered = Oid_set.create ();
    batch_size = max 1 batch_size;
    fixed = None;
    finished = false;
    governor;
  }

let next_batch t =
  Failpoints.check Failpoints.Seed_batch;
  match t.fixed with
  | Some seeds ->
    t.fixed <- None;
    t.finished <- true;
    List.filter
      (fun (oid, _) ->
        let fresh = Oid_set.add_new t.delivered oid in
        if fresh then Governor.charge_mem t.governor Mem.seed_entry_bytes;
        fresh)
      seeds
  | None ->
    if t.finished then []
    else begin
      let batch = ref [] and count = ref 0 in
      let rec pull seq =
        (* Deliver a short batch when the governor trips mid-scan: the
           remaining candidates stay queued, and the caller's own poll stops
           it from asking again. *)
        if !count >= t.batch_size || not (Governor.poll t.governor) then t.candidates <- seq
        else
          match seq () with
          | Seq.Nil ->
            t.candidates <- Seq.empty;
            t.finished <- true
          | Seq.Cons (oid, rest) ->
            if Oid_set.add_new t.delivered oid then begin
              (* the delivered set grows for the life of the conjunct —
                 charged against the memory budget like the visited sets *)
              Governor.charge_mem t.governor Mem.seed_entry_bytes;
              batch := (oid, 0) :: !batch;
              incr count
            end;
            pull rest
      in
      pull t.candidates;
      List.rev !batch
    end

let exhausted t = t.finished && t.fixed = None
