(** Execution counters, collected per conjunct evaluation.

    These are the quantities the paper reasons with when explaining the
    performance study ("a large number of intermediate results being
    generated … converted into tuples in GetNext and added to D_R"), so the
    benchmark harness reports them alongside wall-clock times.

    The scalar counters here are the raw collection point; the query-level
    view is the per-stream {!Obs.Metrics} registry, which absorbs them
    (via {!record_into}) next to the distribution metrics the engine
    records directly (answer-distance, queue-depth, … histograms). *)

type t = {
  mutable pushes : int;  (** tuples added to [D_R] *)
  mutable pops : int;  (** tuples removed from [D_R] *)
  mutable succ_calls : int;  (** invocations of [Succ] *)
  mutable edges_scanned : int;  (** neighbours returned across all [Succ] calls *)
  mutable adjacency_bytes : int;
      (** adjacency words touched by those scans, in bytes — the memory
          traffic the CSR layout (see {!Graphstore.Graph.freeze}) compacts *)
  mutable scan_ns : int;
      (** time spent inside neighbour scans, in nanoseconds; 0 unless a
          clock is installed in {!Obs.Clock} *)
  mutable batches : int;  (** seed batches delivered by the coroutine *)
  mutable seeds : int;  (** initial nodes added *)
  mutable answers : int;  (** answers emitted *)
  mutable peak_queue : int;  (** high-water mark of [D_R] *)
  mutable restarts : int;  (** distance-aware re-evaluations *)
  mutable pruned : int;  (** pushes suppressed by the ψ ceiling *)
  mutable drop_visited : int;
      (** non-final pops discarded because their [(v, n, s)] triple had
          already been processed — re-surfacings at a higher distance *)
  mutable drop_dup : int;
      (** final pops discarded because the [(v, n)] pair was already emitted
          (here or in the restart-suppress table) — the wasted half of the
          final-state re-queue *)
  mutable mem_bytes_peak : int;
      (** high-water mark of the governor's {!Mem} live-bytes estimate —
          set on the engine's stream aggregate (0 on per-conjunct records);
          merges by max, like [peak_queue] *)
  mutable admission_est_states : int;
      (** total post-expansion automaton states the {!Admission} estimate
          computed for the query; 0 when no admission limit was configured
          (the estimate is then never computed); merges by max *)
  mutable degrade_drop_provenance : int;
      (** stage-1 degradations: provenance arenas actually dropped under
          memory pressure *)
  mutable degrade_shrink_psi : int;
      (** stage-2 degradations: psi escalations declined under memory
          pressure (each also trips [Governor.Memory_budget]) *)
  mutable par_shards : int;
      (** shard evaluations run by parallel ({!Par}) conjuncts — 0 on every
          sequential record; summed over a query's conjuncts by
          {!merge_into}, so a two-conjunct query with one 4-domain conjunct
          reports 4 *)
  mutable par_busy_total_ns : int;
      (** wall time shard workers spent running, summed across shards
          (0 without a clock); with [par_busy_max_ns] this yields the shard
          load-imbalance metric max/mean of the query observatory *)
  mutable par_busy_max_ns : int;
      (** the busiest single shard's wall time — the critical path of a
          parallel conjunct; merges by max *)
  mutable gc_minor_words : int;
      (** [Gc.quick_stat] delta over the query: words allocated in the minor
          heap — set on the engine's stream aggregate (0 on per-conjunct
          records) *)
  mutable gc_major_words : int;  (** words allocated in/promoted to the major heap *)
  mutable gc_minor_collections : int;  (** minor GC cycles during the query *)
  mutable gc_major_collections : int;  (** major GC cycles during the query *)
}

val now_ns : (unit -> int) ref
(** The clock behind [scan_ns] — an alias of {!Obs.Clock.now_ns}, the one
    shared process clock.  Prefer [Obs.Clock.install] (it also marks the
    clock installed, so printers stop flagging [scan-ns=n/a]); direct
    assignment still works for deterministic test clocks. *)

val create : unit -> t

val copy : t -> t
(** A snapshot — needed because aggregation entry points
    ([Engine.stream_stats], [Evaluator.stats]) return records they own and
    reuse. *)

val reset : t -> unit

val merge_into : t -> t -> unit
(** [merge_into acc x] adds [x]'s counters into [acc] ([peak_queue] takes the
    max).  Associative and commutative over disjoint accumulators (pinned by
    the observability test suite). *)

val field_names : string list
(** The canonical counter names, in declaration order — the scalar half of
    the metrics manifest ([bench/metrics_manifest.txt]). *)

val to_assoc : t -> (string * int) list
(** Field name → value, in [field_names] order. *)

val record_into : Obs.Metrics.t -> t -> unit
(** Absorb the counters into a metrics registry (as counters named by
    [field_names], values {e set}, not added — call it with the final
    aggregate). *)

val pp : Format.formatter -> t -> unit
(** Renders [scan-ns=n/a] instead of a silent [0] when no clock has been
    installed in {!Obs.Clock}. *)
