(** Execution counters, collected per conjunct evaluation.

    These are the quantities the paper reasons with when explaining the
    performance study ("a large number of intermediate results being
    generated … converted into tuples in GetNext and added to D_R"), so the
    benchmark harness reports them alongside wall-clock times. *)

type t = {
  mutable pushes : int;  (** tuples added to [D_R] *)
  mutable pops : int;  (** tuples removed from [D_R] *)
  mutable succ_calls : int;  (** invocations of [Succ] *)
  mutable edges_scanned : int;  (** neighbours returned across all [Succ] calls *)
  mutable adjacency_bytes : int;
      (** adjacency words touched by those scans, in bytes — the memory
          traffic the CSR layout (see {!Graphstore.Graph.freeze}) compacts *)
  mutable scan_ns : int;
      (** time spent inside neighbour scans, in nanoseconds; 0 unless a
          clock is installed in {!now_ns} *)
  mutable batches : int;  (** seed batches delivered by the coroutine *)
  mutable seeds : int;  (** initial nodes added *)
  mutable answers : int;  (** answers emitted *)
  mutable peak_queue : int;  (** high-water mark of [D_R] *)
  mutable restarts : int;  (** distance-aware re-evaluations *)
  mutable pruned : int;  (** pushes suppressed by the ψ ceiling *)
}

val now_ns : (unit -> int) ref
(** The clock behind [scan_ns].  Defaults to [fun () -> 0] (no syscalls on
    the hot path); install a monotonic nanosecond clock to get real
    attributions, e.g. [Exec_stats.now_ns := fun () -> int_of_float (1e9 *. Unix.gettimeofday ())]. *)

val create : unit -> t

val reset : t -> unit

val merge_into : t -> t -> unit
(** [merge_into acc x] adds [x]'s counters into [acc] ([peak_queue] takes the
    max). *)

val pp : Format.formatter -> t -> unit
