type point = Graph_scan | Seed_batch | Join_pull | Ontology_lookup

exception Injected of string

let all_points = [ Graph_scan; Seed_batch; Join_pull; Ontology_lookup ]

let point_name = function
  | Graph_scan -> "scan"
  | Seed_batch -> "seed"
  | Join_pull -> "join"
  | Ontology_lookup -> "onto"

let point_of_name = function
  | "scan" -> Some Graph_scan
  | "seed" -> Some Seed_batch
  | "join" -> Some Join_pull
  | "onto" -> Some Ontology_lookup
  | _ -> None

let index = function Graph_scan -> 0 | Seed_batch -> 1 | Join_pull -> 2 | Ontology_lookup -> 3
let n_points = 4

(* The whole mechanism funnels through one closure: disabled, it is the
   constant no-op below, so an inactive failpoint costs one indirect call
   with no branches, allocations or lookups behind it. *)
let noop : point -> unit = fun _ -> ()
let hook = ref noop

(* splitmix64: a tiny deterministic PRNG so a chaos run is reproducible from
   its seed alone, independently of any global Random state. *)
let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform state =
  (* 53 high bits -> float in [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (splitmix state) 11) *. (1. /. 9007199254740992.)

let arm ?(seed = 0) specs =
  let prob = Array.make n_points 0. in
  List.iter (fun (p, pr) -> prob.(index p) <- pr) specs;
  let state = ref (Int64.of_int ((seed * 0x9E3779B1) lxor 0x5DEECE66D)) in
  hook :=
    fun p ->
      let pr = Array.unsafe_get prob (index p) in
      if pr > 0. && uniform state < pr then raise (Injected (point_name p))

let disarm () = hook := noop

let check p = !hook p

(* Spec syntax: "point=prob,point=prob[#seed]", e.g. "scan=0.01,join=0.05#42".
   A bare point name means probability 1 (fail on first hit). *)
let parse spec =
  let body, seed =
    match String.index_opt spec '#' with
    | None -> (spec, None)
    | Some i -> (
      let s = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt s with
      | Some n -> (String.sub spec 0 i, Some n)
      | None -> (spec, None))
  in
  match seed with
  | None when String.contains spec '#' -> Error (Printf.sprintf "bad failpoint seed in %S" spec)
  | _ ->
    let parts = String.split_on_char ',' body |> List.map String.trim |> List.filter (( <> ) "") in
    let rec build acc = function
      | [] -> Ok (List.rev acc, seed)
      | part :: rest -> (
        let name, prob =
          match String.index_opt part '=' with
          | None -> (part, Some 1.)
          | Some i ->
            ( String.sub part 0 i,
              float_of_string_opt (String.sub part (i + 1) (String.length part - i - 1)) )
        in
        match (point_of_name name, prob) with
        | Some p, Some pr when pr >= 0. && pr <= 1. -> build ((p, pr) :: acc) rest
        | None, _ ->
          Error
            (Printf.sprintf "unknown failpoint %S (expected one of %s)" name
               (String.concat ", " (List.map point_name all_points)))
        | _, _ -> Error (Printf.sprintf "bad failpoint probability in %S" part))
    in
    build [] parts

let arm_spec spec =
  match parse spec with
  | Ok (points, seed) ->
    arm ?seed points;
    Ok ()
  | Error _ as e -> e

let env_var = "OMEGA_FAILPOINTS"

let arm_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok false
  | Some spec -> ( match arm_spec spec with Ok () -> Ok true | Error _ as e -> e)
