type point =
  | Graph_scan
  | Seed_batch
  | Join_pull
  | Ontology_lookup
  | Srv_accept
  | Srv_read
  | Srv_write

exception Injected of string

let all_points = [ Graph_scan; Seed_batch; Join_pull; Ontology_lookup; Srv_accept; Srv_read; Srv_write ]

let point_name = function
  | Graph_scan -> "scan"
  | Seed_batch -> "seed"
  | Join_pull -> "join"
  | Ontology_lookup -> "onto"
  | Srv_accept -> "accept"
  | Srv_read -> "read"
  | Srv_write -> "write"

let point_of_name = function
  | "scan" -> Some Graph_scan
  | "seed" -> Some Seed_batch
  | "join" -> Some Join_pull
  | "onto" -> Some Ontology_lookup
  | "accept" -> Some Srv_accept
  | "read" -> Some Srv_read
  | "write" -> Some Srv_write
  | _ -> None

let index = function
  | Graph_scan -> 0
  | Seed_batch -> 1
  | Join_pull -> 2
  | Ontology_lookup -> 3
  | Srv_accept -> 4
  | Srv_read -> 5
  | Srv_write -> 6

let n_points = 7

(* Arming is process-global, but the PRNG state is {e per-domain}: a shared
   mutable stream would race under parallel evaluation (and make two
   concurrent engine runs in one process corrupt each other's fault
   schedules).  The configuration lives in an [Atomic] paired with an epoch
   counter; every domain keeps its own {state; probabilities} cell in
   domain-local storage and re-syncs it when the epoch moves.  The initial
   domain derives its state from the seed exactly as the pre-parallel code
   did, so single-domain runs are byte-for-byte reproducible across
   versions; worker domains fold their domain id into the seed, giving each
   shard an independent deterministic stream. *)
type armed = { seed : int; prob : float array }

let armed_cfg : armed option Atomic.t = Atomic.make None
let epoch : int Atomic.t = Atomic.make 0

type cell = { mutable ep : int; mutable state : int64; mutable prob : float array }

let no_prob : float array = [||]
let cell_key = Domain.DLS.new_key (fun () -> { ep = -1; state = 0L; prob = no_prob })

(* splitmix64: a tiny deterministic PRNG so a chaos run is reproducible from
   its seed alone, independently of any global Random state. *)
let remix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let base_state seed = Int64.of_int ((seed * 0x9E3779B1) lxor 0x5DEECE66D)

let uniform c =
  c.state <- Int64.add c.state 0x9E3779B97F4A7C15L;
  (* 53 high bits -> float in [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (remix c.state) 11) *. (1. /. 9007199254740992.)

let sync c =
  let e = Atomic.get epoch in
  if c.ep <> e then begin
    c.ep <- e;
    match Atomic.get armed_cfg with
    | None -> c.prob <- no_prob
    | Some a ->
      let did = (Domain.self () :> int) in
      c.state <-
        (if Domain.is_main_domain () then base_state a.seed
         else Int64.logxor (base_state a.seed) (remix (Int64.of_int did)));
      c.prob <- a.prob
  end

let arm ?(seed = 0) specs =
  let prob = Array.make n_points 0. in
  List.iter (fun (p, pr) -> prob.(index p) <- pr) specs;
  Atomic.set armed_cfg (Some { seed; prob });
  Atomic.incr epoch

let disarm () =
  Atomic.set armed_cfg None;
  Atomic.incr epoch

let check p =
  let c = Domain.DLS.get cell_key in
  sync c;
  if c.prob != no_prob then begin
    let pr = Array.unsafe_get c.prob (index p) in
    if pr > 0. && uniform c < pr then raise (Injected (point_name p))
  end

(* Spec syntax: "point=prob,point=prob[#seed]", e.g. "scan=0.01,join=0.05#42".
   A bare point name means probability 1 (fail on first hit). *)
let parse spec =
  let body, seed =
    match String.index_opt spec '#' with
    | None -> (spec, None)
    | Some i -> (
      let s = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt s with
      | Some n -> (String.sub spec 0 i, Some n)
      | None -> (spec, None))
  in
  match seed with
  | None when String.contains spec '#' -> Error (Printf.sprintf "bad failpoint seed in %S" spec)
  | _ ->
    let parts = String.split_on_char ',' body |> List.map String.trim |> List.filter (( <> ) "") in
    let rec build acc = function
      | [] -> Ok (List.rev acc, seed)
      | part :: rest -> (
        let name, prob =
          match String.index_opt part '=' with
          | None -> (part, Some 1.)
          | Some i ->
            ( String.sub part 0 i,
              float_of_string_opt (String.sub part (i + 1) (String.length part - i - 1)) )
        in
        match (point_of_name name, prob) with
        | Some p, Some pr when pr >= 0. && pr <= 1. -> build ((p, pr) :: acc) rest
        | None, _ ->
          Error
            (Printf.sprintf "unknown failpoint %S (expected one of %s)" name
               (String.concat ", " (List.map point_name all_points)))
        | _, _ -> Error (Printf.sprintf "bad failpoint probability in %S" part))
    in
    build [] parts

let arm_spec spec =
  match parse spec with
  | Ok (points, seed) ->
    arm ?seed points;
    Ok ()
  | Error _ as e -> e

let env_var = "OMEGA_FAILPOINTS"

let arm_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok false
  | Some spec -> ( match arm_spec spec with Ok () -> Ok true | Error _ as e -> e)
