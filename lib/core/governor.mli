(** The query governor: one per-query budget unifying the wall-clock
    deadline, the tuple ceiling (the paper's 6 GB stand-in), the answer cap
    and a cooperative cancellation token.

    Every evaluation layer — [Conjunct] (Succ/GetNext), [Seeder] (batch
    delivery), [Ranked_join] (pulls) and the restart loops of [Evaluator] —
    polls the same governor cheaply and unwinds by returning [None] when it
    has tripped; nothing raises across the public surface.  Because answers
    stream in non-decreasing distance, whatever was emitted before the trip
    is always a valid ranked prefix of the full answer set (the
    prefix-correctness argument of DESIGN.md).

    A governor trips at most once; the first cause wins and is reported
    through {!termination}. *)

type reason =
  | Tuple_budget  (** [max_tuples] pushes exceeded — the memory stand-in *)
  | Deadline  (** the wall-clock deadline passed *)
  | Answer_limit  (** the answer cap was reached (the prefix is complete) *)
  | Memory_budget
      (** the {!Mem} live-bytes estimate crossed [max_memory_bytes] (or an
          evaluator declined a psi escalation under stage-2 degradation);
          the answers emitted so far are an exact ranked prefix *)
  | Fault of string
      (** an injected failpoint fired ({!Failpoints}), or {!cancel} was
          called; the string names the cause *)

type termination =
  | Completed  (** the stream ran to natural exhaustion — the answer set is complete *)
  | Exhausted of { reason : reason; elapsed_ns : int; tuples : int; answers : int }
      (** the governor tripped; the answers emitted before the trip are a
          valid ranked prefix.  [elapsed_ns] is 0 unless a clock is
          installed in {!now_ns}. *)

val now_ns : (unit -> int) ref
(** The monotonic clock behind deadlines — an alias of {!Obs.Clock.now_ns},
    the same ref as [Exec_stats.now_ns]: defaults to [fun () -> 0] (no
    syscall on the hot path, deadlines never fire).  Binaries wanting
    wall-clock control call [Obs.Clock.install] once; direct assignment
    still works for deterministic test clocks. *)

type t

(** The cross-domain control block of parallel evaluation (one per query,
    created by {!share}): the first-trip-wins stop slot, the query-wide
    tuple and live-bytes atomics, the shared degradation-ladder flags and
    the {!Shared.close} shutdown token.  Everything multiple domains touch
    lives here as an [Atomic]; per-domain tallies stay on the individual
    governors and are rolled up with {!absorb}. *)
module Shared : sig
  type t

  val close : t -> unit
  (** Stop shard workers cooperatively {e without} tripping the query: only
      {!shard_of} governors obey the token (the query's own governor keeps
      governing any remaining conjuncts), and no reason is recorded, so a
      stream abandoned by its consumer still reports [Completed].  Also runs
      the registered wake-up hooks so no worker stays parked on a full
      queue. *)

  val stopped : t -> bool
  (** True once a trip was raised anywhere or {!close} was called — the
      park-loop predicate of [Par]'s shard workers. *)

  val set_on_trip : t -> (unit -> unit) -> unit
  (** Register a wake-up hook run after any trip or {!close} ([Par] points
      it at a broadcast over its shard-queue conditions).  Additive: hooks
      accumulate, so several parallel conjuncts sharing the block each get
      woken. *)
end

val create :
  ?timeout_ns:int -> ?max_tuples:int -> ?max_answers:int -> ?max_memory_bytes:int -> unit -> t
(** A fresh governor; omitted limits are unlimited.  [timeout_ns] is
    relative to creation time (sampled from {!now_ns}).  [max_memory_bytes]
    bounds the {!Mem} live-bytes estimate and arms the degradation
    ladder. *)

val unlimited : unit -> t

val poll : t -> bool
(** The cooperative check of the hot loops: [true] means keep going.  With
    no deadline this is two compares; the deadline clock read is amortised
    over 16 polls. *)

val tick_tuple : t -> unit
(** Count one tuple against the budget (a [D_R] push or a join-buffer
    combination); trips [Tuple_budget] past the ceiling.  The count is
    {e cumulative} across all conjuncts, join buffering and distance-aware
    restarts of the query (see [Options.max_tuples]). *)

val note_answer : t -> unit
(** Count one emitted answer; trips [Answer_limit] at the cap. *)

(** {2 Memory accounting and graceful degradation}

    Allocation sites charge the governor's {!Mem} accountant; releases
    mirror pops and drops.  Charging is always on (two integer adds);
    without [max_memory_bytes] the ladder is never evaluated.  Under a
    budget the ladder is monotone — crossing 50% of the budget turns on
    {!drop_provenance}, 75% additionally turns on {!shrink_psi}, and 100%
    trips [Memory_budget].  Stages never turn back off on release, so a
    query cannot flap between keeping and dropping a structure. *)

val charge_mem : t -> int -> unit
(** Charge [bytes] against the memory budget, evaluating the ladder. *)

val release_mem : t -> int -> unit
(** Release [bytes] (pops, drops); never re-arms a reached stage. *)

val mem_live : t -> int
(** The current live-bytes estimate. *)

val mem_peak : t -> int
(** The high-water mark of the estimate. *)

val drop_provenance : t -> bool
(** Stage 1 reached: conjuncts should drop their provenance arenas and stop
    recording parents (answers keep their bindings and distances; they lose
    their witnesses). *)

val shrink_psi : t -> bool
(** Stage 2 reached: a distance-aware evaluator should decline its next psi
    escalation (see {!note_shrink_psi}). *)

val note_dropped_provenance : t -> unit
(** Record that a conjunct actually dropped its arena (the [degrade_drop_provenance]
    counter). *)

val note_shrink_psi : t -> unit
(** Record a declined psi escalation and trip [Memory_budget]: everything
    at or below the current ceiling has already been emitted, so the
    answers so far are an exact ranked prefix and no further progress is
    possible. *)

val degrade_counts : t -> int * int
(** [(arena drops, declined psi escalations)] so far. *)

(** {2 Parallel attachment}

    A sequential governor carries no shared block and pays nothing for this
    machinery (one [None] branch on the accounting paths).  [Par] attaches a
    block to the query's governor, derives one shard governor per domain,
    and rolls the per-domain tallies back in as shards join. *)

val share : t -> Shared.t
(** Get-or-create the governor's shared control block, folding whatever it
    accounted so far into the shared totals (the cumulative budgets keep
    their meaning).  Idempotent. *)

val shard_of : t -> t
(** A worker-domain governor: same limits and the {e same absolute
    deadline} as [t], zeroed per-domain counters, attached to [share t].
    Its tuple ticks and memory charges flow into the query-wide atomics;
    its answer cap is unlimited (answers are only counted on the merge
    side). *)

val absorb : t -> from:t -> unit
(** Roll a joined shard governor's per-domain degradation tallies into the
    query's governor (tuple and memory totals were shared all along). *)

val closing : t -> bool
(** True when the attached shared block (if any) was {!Shared.close}d. *)

val cancel : ?reason:string -> t -> unit
(** The cancellation token: trips [Fault reason] (default ["cancelled"]).
    Safe to call from anywhere holding the governor; the evaluation unwinds
    at its next poll. *)

val fault : t -> string -> unit
(** Trip [Fault name] — how injected failpoints terminate a query. *)

val tripped : t -> reason option

val termination : t -> termination
(** The structured outcome so far: [Completed] while nothing has tripped. *)

val tuples : t -> int

val answers : t -> int

val elapsed_ns : t -> int
(** Nanoseconds since creation per {!now_ns} (0 without a clock). *)

val reason_string : reason -> string
(** ["tuple-budget"], ["deadline"], ["answer-limit"], ["fault:<name>"]. *)

val pp_termination : Format.formatter -> termination -> unit
