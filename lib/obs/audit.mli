(** The query audit log: one schema-versioned JSON record per query,
    appended to a JSONL file.

    This is the durable half of the query observatory (DESIGN.md "Query
    observatory"): where {!Metrics} and {!Trace} describe one process's
    current query, the audit log accumulates per-query records across
    processes and runs — canonicalised query hash, query class, plan
    summary, termination taxonomy, admission estimate vs actual work, the
    full execution counters, GC deltas, latency, and the per-shard
    breakdown of parallel runs — the substrate [bin/omega_report]
    aggregates into per-class latency percentiles and regression views.

    {b Crash safety.}  Every record is written as one complete line
    followed by a flush, into a file opened in append mode: a crash can
    lose or truncate at most the record being written, never corrupt
    earlier ones.  {!load} tolerates a truncated or malformed trailing
    line (it is counted, not fatal), so a log that survived a crash is
    still fully readable.

    {b Zero overhead when disabled.}  The process-global sink is consulted
    exactly once per query, at stream close, behind one flag check; nothing
    on the evaluation hot path knows the audit log exists. *)

val schema_version : int
(** The record schema version, stamped as field ["v"]; currently 3 (v2
    added the [flight] cross-link, v3 the serving [tenant]).  {!of_json}
    also accepts v1/v2 records, reading the absent fields as [None]. *)

val env_var : string
(** ["OMEGA_AUDIT"] — binaries treat it as a default for [--audit]. *)

type shard = {
  s_index : int;  (** shard index within its pool, 0-based *)
  s_busy_ns : int;  (** wall time the shard's worker ran (0 without a clock) *)
  s_answers : int;  (** answers the shard delivered to the merge *)
}

type flight_info = {
  f_path : string;  (** where the flight dump landed *)
  f_events : int;  (** events recorded over the query (recorder total) *)
  f_dropped : int;  (** events lost to ring wraparound *)
}

type record = {
  ts_ns : int;  (** {!Clock.now_ns} at emission; 0 without an installed clock *)
  query_hash : string;  (** {!hash} of the canonicalised query text *)
  query : string;  (** the canonicalised (re-pretty-printed) query text *)
  query_class : string;
      (** ["exact"] | ["approx"] | ["relax"] | ["mixed"], with
          ["+decomposed"] / ["+case2"] modifiers — the SLO accounting key *)
  plan : string;  (** one-line physical plan summary *)
  termination : string;  (** ["completed"] | ["exhausted"] | ["rejected"] *)
  reason : string option;
      (** governor reason / admission kind when not completed *)
  answers : int;
  wall_ns : int;  (** whole-query wall time (0 without a clock) *)
  cpu_ns : int;  (** whole-process CPU time consumed by the query *)
  est_states : int;  (** admission estimate: total automaton states; 0 unvetted *)
  est_product : int;  (** admission estimate: product frontier bound; 0 unvetted *)
  actual_tuples : int;  (** tuples actually queued ([pushes]) — the estimate's foil *)
  domains : int;  (** configured domain count *)
  shards : shard list;  (** per-shard breakdown; [] for sequential runs *)
  merge_wait_ns : int;  (** consumer time parked waiting for shard progress *)
  imbalance_pct : int;
      (** 100 × max shard busy / mean shard busy; 100 = perfectly balanced,
          0 when unmeasured (sequential, or no clock) *)
  flight : flight_info option;
      (** cross-link to the flight-recorder dump covering this query, when
          both sinks were active; [None] otherwise (and for v1 records) *)
  tenant : string option;
      (** the tenant the query was served for ([omega_serve]); [None] for
          standalone CLI runs (and for v1/v2 records).  Server-level
          records — shed requests, protocol errors, the drain marker —
          carry it too, with [termination] ["shed"] / ["error"] /
          ["drain"]: the key of [omega_report]'s per-tenant rollup. *)
  stats : (string * int) list;  (** the full [Exec_stats.to_assoc] counters *)
  gc : (string * int) list;
      (** [Gc.quick_stat] deltas over the query: [minor_words],
          [major_words], [minor_collections], [major_collections] *)
}

val hash : string -> string
(** 64-bit FNV-1a of a string, as 16 lowercase hex digits — the canonical
    query hash (deterministic across processes and runs). *)

val to_json : record -> Json.t

val of_json : Json.t -> (record, string) result
(** Inverse of {!to_json}, validating field presence, types and the schema
    version — the schema validator ([validate --audit], the round-trip
    tests) is this function. *)

val validate : Json.t -> (unit, string) result
(** {!of_json} with the record discarded. *)

(** {2 Sinks} *)

type sink

val open_sink : string -> sink
(** Open (append, create at 0644) an audit log for writing.
    @raise Sys_error if the file cannot be opened. *)

val write : sink -> record -> unit
(** Append one record as a single JSON line and flush. *)

val close_sink : sink -> unit

(** {2 The process-global sink}

    Installed once at startup (CLI [--audit] / [OMEGA_AUDIT]); the engine
    emits through {!emit} at stream close. *)

val enable : string -> unit
(** Point the global sink at a path (closing any previous one).
    @raise Sys_error if the file cannot be opened. *)

val enabled : unit -> bool

val disable : unit -> unit
(** Close and remove the global sink. *)

val reopen : unit -> unit
(** Close and reopen the global sink at its current path (append, creating
    the file if a rotation renamed it away) — the SIGHUP handler of
    [omega_serve], so the daemon supports log rotation without a restart.
    Serialised against concurrent {!emit}s; a no-op when disabled.  If the
    path can no longer be opened the sink is left cleanly disabled. *)

val emit : record -> unit
(** Append to the global sink; a no-op when disabled.  Serialised by an
    internal mutex (safe to call from any domain). *)

(** {2 Reading} *)

val load : string -> (record list * int, string) result
(** Parse a JSONL audit log: [(records, skipped)] where [skipped] counts
    malformed or truncated lines (a crash-truncated tail is data loss, not
    corruption).  [Error] only if the file itself cannot be read. *)
