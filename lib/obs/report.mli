(** Aggregation of audit logs into the observatory report rendered by
    [bin/omega_report]: per-class latency percentiles ({!Slo}), termination
    breakdown, admission estimate-vs-actual accuracy, the top-N slowest
    queries with their plans, parallel shard-imbalance statistics, and —
    when the log carries tenants (v3 server logs) — a per-tenant rollup
    (queries, sheds, per-class p50/p99) — plus an old-vs-new regression
    comparison.

    Pure over {!Audit.record} lists; the binary and the golden-output test
    share this code. *)

type t

val build : ?top:int -> Audit.record list -> t
(** Aggregate records ([top] bounds the slowest-queries table, default 5). *)

val total : t -> int

val pp : Format.formatter -> t -> unit
(** The text report.  Deterministic for a given record list (pinned by the
    golden test).  The per-tenant section renders only when at least one
    record carries a tenant, so tenant-less (pre-v3) logs keep their exact
    historical output. *)

val to_json : t -> Json.t
(** [{queries, classes, terminations, admission, slowest, parallel,
    tenants}] — the machine-readable form of {!pp} (admission includes the
    full est-vs-actual scatter, which the text report only summarises;
    [tenants] is [{}] for tenant-less logs). *)

val pp_compare : Format.formatter -> t * t -> unit
(** [pp_compare ppf (old_, new_)] — the regression view: per-class p50/p99
    wall-latency deltas and termination-count shifts, new vs old. *)

val compare_json : t -> t -> Json.t
