let schema_version = 3
let env_var = "OMEGA_AUDIT"

type shard = { s_index : int; s_busy_ns : int; s_answers : int }

type flight_info = { f_path : string; f_events : int; f_dropped : int }

type record = {
  ts_ns : int;
  query_hash : string;
  query : string;
  query_class : string;
  plan : string;
  termination : string;
  reason : string option;
  answers : int;
  wall_ns : int;
  cpu_ns : int;
  est_states : int;
  est_product : int;
  actual_tuples : int;
  domains : int;
  shards : shard list;
  merge_wait_ns : int;
  imbalance_pct : int;
  flight : flight_info option; (* set when the flight recorder dumped alongside *)
  tenant : string option; (* v3: the serving tenant (omega_serve); None standalone *)
  stats : (string * int) list;
  gc : (string * int) list;
}

(* FNV-1a, 64-bit.  Int64 arithmetic keeps the hash identical on 32- and
   63-bit native ints, so logs from different builds aggregate together. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  Printf.sprintf "%016Lx" !h

let assoc_json l = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) l)

let shard_json s =
  Json.Obj
    [ ("i", Json.Int s.s_index); ("busy_ns", Json.Int s.s_busy_ns); ("answers", Json.Int s.s_answers) ]

let to_json r =
  Json.Obj
    [
      ("v", Json.Int schema_version);
      ("ts_ns", Json.Int r.ts_ns);
      ("query_hash", Json.String r.query_hash);
      ("query", Json.String r.query);
      ("class", Json.String r.query_class);
      ("plan", Json.String r.plan);
      ("termination", Json.String r.termination);
      ("reason", (match r.reason with None -> Json.Null | Some s -> Json.String s));
      ("answers", Json.Int r.answers);
      ("wall_ns", Json.Int r.wall_ns);
      ("cpu_ns", Json.Int r.cpu_ns);
      ("est_states", Json.Int r.est_states);
      ("est_product", Json.Int r.est_product);
      ("actual_tuples", Json.Int r.actual_tuples);
      ("domains", Json.Int r.domains);
      ("shards", Json.List (List.map shard_json r.shards));
      ("merge_wait_ns", Json.Int r.merge_wait_ns);
      ("imbalance_pct", Json.Int r.imbalance_pct);
      ( "flight",
        match r.flight with
        | None -> Json.Null
        | Some f ->
          Json.Obj
            [
              ("path", Json.String f.f_path);
              ("events", Json.Int f.f_events);
              ("dropped", Json.Int f.f_dropped);
            ] );
      ("tenant", (match r.tenant with None -> Json.Null | Some t -> Json.String t));
      ("stats", assoc_json r.stats);
      ("gc", assoc_json r.gc);
    ]

(* --- decoding / validation ------------------------------------------- *)

let ( let* ) = Result.bind

let field k j =
  match Json.member k j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" k)

let int_field k j =
  let* v = field k j in
  match Json.to_int v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "field %S: expected int" k)

let str_field k j =
  let* v = field k j in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected string" k)

let opt_str_field k j =
  let* v = field k j in
  match v with
  | Json.Null -> Ok None
  | Json.String s -> Ok (Some s)
  | _ -> Error (Printf.sprintf "field %S: expected string or null" k)

let assoc_field k j =
  let* v = field k j in
  match v with
  | Json.Obj kvs ->
    let rec conv acc = function
      | [] -> Ok (List.rev acc)
      | (key, v) :: rest -> (
        match Json.to_int v with
        | Some n -> conv ((key, n) :: acc) rest
        | None -> Error (Printf.sprintf "field %S.%S: expected int" k key))
    in
    conv [] kvs
  | _ -> Error (Printf.sprintf "field %S: expected object" k)

let shard_of_json j =
  let* s_index = int_field "i" j in
  let* s_busy_ns = int_field "busy_ns" j in
  let* s_answers = int_field "answers" j in
  Ok { s_index; s_busy_ns; s_answers }

let shards_field k j =
  let* v = field k j in
  match Json.to_list v with
  | None -> Error (Printf.sprintf "field %S: expected list" k)
  | Some l ->
    let rec conv acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest ->
        let* s = shard_of_json s in
        conv (s :: acc) rest
    in
    conv [] l

let flight_field k j =
  let* v = field k j in
  match v with
  | Json.Null -> Ok None
  | Json.Obj _ ->
    let* f_path = str_field "path" v in
    let* f_events = int_field "events" v in
    let* f_dropped = int_field "dropped" v in
    Ok (Some { f_path; f_events; f_dropped })
  | _ -> Error (Printf.sprintf "field %S: expected object or null" k)

let of_json j =
  let* v = int_field "v" j in
  (* older records stay loadable: v1 (pre-flight) reads [flight] as None,
     v2 (pre-server) reads [tenant] as None *)
  if v < 1 || v > schema_version then
    Error (Printf.sprintf "schema version %d (expected 1..%d)" v schema_version)
  else
    let* ts_ns = int_field "ts_ns" j in
    let* query_hash = str_field "query_hash" j in
    let* query = str_field "query" j in
    let* query_class = str_field "class" j in
    let* plan = str_field "plan" j in
    let* termination = str_field "termination" j in
    let* reason = opt_str_field "reason" j in
    let* answers = int_field "answers" j in
    let* wall_ns = int_field "wall_ns" j in
    let* cpu_ns = int_field "cpu_ns" j in
    let* est_states = int_field "est_states" j in
    let* est_product = int_field "est_product" j in
    let* actual_tuples = int_field "actual_tuples" j in
    let* domains = int_field "domains" j in
    let* shards = shards_field "shards" j in
    let* merge_wait_ns = int_field "merge_wait_ns" j in
    let* imbalance_pct = int_field "imbalance_pct" j in
    let* flight = if v = 1 then Ok None else flight_field "flight" j in
    let* tenant = if v < 3 then Ok None else opt_str_field "tenant" j in
    let* stats = assoc_field "stats" j in
    let* gc = assoc_field "gc" j in
    Ok
      {
        ts_ns;
        query_hash;
        query;
        query_class;
        plan;
        termination;
        reason;
        answers;
        wall_ns;
        cpu_ns;
        est_states;
        est_product;
        actual_tuples;
        domains;
        shards;
        merge_wait_ns;
        imbalance_pct;
        flight;
        tenant;
        stats;
        gc;
      }

let validate j = Result.map (fun (_ : record) -> ()) (of_json j)

(* --- sinks ------------------------------------------------------------ *)

type sink = { oc : out_channel; sm : Mutex.t }

let open_sink path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  { oc; sm = Mutex.create () }

let write sink r =
  (* One complete line + flush per record: a crash mid-write truncates at
     most this record, never an earlier one. *)
  Mutex.lock sink.sm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink.sm)
    (fun () ->
      output_string sink.oc (Json.to_string (to_json r));
      output_char sink.oc '\n';
      flush sink.oc)

let close_sink sink = close_out sink.oc

(* --- the process-global sink ----------------------------------------- *)

(* Mirrors Trace's discipline: [on] is a plain ref read without the lock so
   the per-query check in Engine.close stays one load.  All sink swaps
   (enable / disable / SIGHUP reopen) and every emit serialise on [gm], so
   a rotation can never close the channel out from under a concurrent
   writer — the daemon emits from many connection threads at once. *)
let global : (sink * string) option ref = ref None
let on = ref false
let gm = Mutex.create ()
let enabled () = !on

let with_gm f =
  Mutex.lock gm;
  Fun.protect ~finally:(fun () -> Mutex.unlock gm) f

let disable () =
  on := false;
  with_gm (fun () ->
      match !global with
      | None -> ()
      | Some (s, _) ->
        global := None;
        close_sink s)

let enable path =
  disable ();
  with_gm (fun () -> global := Some (open_sink path, path));
  on := true

let reopen () =
  with_gm (fun () ->
      match !global with
      | None -> ()
      | Some (s, path) ->
        (* close first: the rotated file's last record is already flushed, and
           reopening in append mode recreates the path if it was renamed away.
           Dropping [global] before the reopen means a failing reopen leaves
           the sink cleanly disabled, never pointing at a closed channel. *)
        close_sink s;
        global := None;
        global := Some (open_sink path, path))

let emit r = with_gm (fun () -> match !global with None -> () | Some (s, _) -> write s r)

(* --- reading ---------------------------------------------------------- *)

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc skipped =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc, skipped)
          | line when String.trim line = "" -> go acc skipped
          | line -> (
            match Json.parse line with
            | Error _ -> go acc (skipped + 1)
            | Ok j -> (
              match of_json j with
              | Error _ -> go acc (skipped + 1)
              | Ok r -> go (r :: acc) skipped))
        in
        go [] 0)
