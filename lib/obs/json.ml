type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* JSON has no NaN/Infinity tokens: emit null for non-finite values
       (matching what e.g. JavaScript's JSON.stringify does).  Integral
       floats below 2^53-ish print without a trailing dot; everything else
       prints with the fewest digits that parse back to the same double. *)
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (string_of_int (int_of_float f))
    else begin
      let s15 = Printf.sprintf "%.15g" f in
      let s16 = Printf.sprintf "%.16g" f in
      let s =
        if float_of_string s15 = f then s15
        else if float_of_string s16 = f then s16
        else Printf.sprintf "%.17g" f
      in
      Buffer.add_string buf s
    end
  | String s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let pp ppf j = Format.pp_print_string ppf (to_string j)

let to_channel oc j = output_string oc (to_string j)

(* ---- parsing ------------------------------------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8 buf cp =
    (* encode a BMP code point; surrogate pairs are rare in our files and
       decoded as two separate 3-byte sequences, which round-trips. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let string_body () =
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'u' ->
          advance ();
          utf8 buf (hex4 ());
          (* hex4 advanced past the digits; counteract the advance below *)
          pos := !pos - 1
        | _ -> fail "bad escape");
        advance ();
        go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          expect '"';
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' ->
      advance ();
      String (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "json parse error at byte %d: %s" at msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_str = function String s -> Some s | _ -> None
