(** Latency/SLO accounting: wall and CPU time distributions per query
    class, with p50/p90/p99 estimated by {!Quantile} from the log₂
    histograms of {!Metrics}.

    The class key is {!Audit.record}[.query_class] (exact/approx/relax/…),
    so tail latency is visible {e per operator family} — an APPROX p99 blow-up
    does not hide inside an exact-query median.  Used live by the engine's
    metrics surface and offline by {!Report} over audit logs. *)

type t

val create : unit -> t

val observe : t -> cls:string -> wall_ns:int -> cpu_ns:int -> unit
(** Record one query of class [cls]. *)

val classes : t -> string list
(** Classes observed so far, sorted. *)

type summary = {
  queries : int;
  wall_p50 : float;  (** estimated percentiles, in ns *)
  wall_p90 : float;
  wall_p99 : float;
  wall_max : int;  (** exact *)
  cpu_p50 : float;
  cpu_p90 : float;
  cpu_p99 : float;
  cpu_max : int;
}

val summary : t -> string -> summary option
(** The latency summary for a class; [None] if never observed. *)

val to_json : t -> Json.t
(** [{class: {queries, wall_ns: {p50, p90, p99, max}, cpu_ns: {…}}}],
    classes in sorted order. *)
