(** The EXPLAIN layer's plan representation: a plain-data description of the
    physical plan the engine chose for a query, rendered as text
    ([omega query --explain]) or JSON.

    The datatypes live here, below the engine, so the renderer stays
    dependency-free; [Engine.explain] builds the plan and
    [Engine.annotate] fills in the live counters after execution
    ([--explain-analyze]).

    Concrete grammar of the text rendering (one plan):
    {v
    EXPLAIN <query>
      join: <single-conjunct | ranked-join(n)>
      governor: timeout=<ms|none> tuples=<n|none> answers=<n|none>
      [<i>] <mode> <conjunct>
          automaton <M_R | A_R | M^K_R>: <s> states, <t> transitions
          strategy: <plain | distance-aware(phi=k) | decomposed(n, phi=k)>
          seeding: <constant "C" | constant+ancestors "C" (k seeds) |
                    batched(k) | up-front | empty (unknown constant)>
          [reversed: subject/object swapped (case 2)]
          [part <j>: <regex> — <s> states, <t> transitions]
          [counters: k=v ...]            (analyze only)
      [analysis: k=v ...]                (analyze only)
    v} *)

type part = { p_regex : string; p_states : int; p_transitions : int }
(** One decomposition part (a top-level alternative compiled alone). *)

type conjunct_plan = {
  index : int;  (** 1-based position in the query body *)
  source : string;  (** the conjunct, pretty-printed *)
  mode : string;  (** ["exact"] | ["approx"] | ["relax"] *)
  automaton : string;  (** ["M_R"] | ["A_R"] | ["M^K_R"] (paper §3.3) *)
  states : int;
  transitions : int;
  reversed : bool;  (** case 2: [(?X, R, C)] evaluated as [(C, R-, ?X)] *)
  strategy : string;
  seeding : string;
  parts : part list;  (** non-empty only under decomposition *)
  mutable counters : (string * int) list;  (** filled by annotate *)
}

type plan = {
  query : string;
  head : string list;
  join : string;  (** ["single-conjunct"] | ["ranked-join(n)"] *)
  governor : (string * string) list;  (** limit name → rendered value *)
  conjuncts : conjunct_plan list;
  mutable analysis : (string * string) list;  (** filled by annotate *)
  mutable profile : Profile.t option;
      (** the wasted-work profile, filled by annotate (analyze only);
          rendered as a trailing section / [null] in JSON when absent *)
}

val pp : Format.formatter -> plan -> unit

val to_json : plan -> Json.t
