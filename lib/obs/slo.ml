type entry = { queries : Metrics.counter; wall : Metrics.histogram; cpu : Metrics.histogram }
type t = { tbl : (string, entry) Hashtbl.t }

let create () = { tbl = Hashtbl.create 8 }

let entry t cls =
  match Hashtbl.find_opt t.tbl cls with
  | Some e -> e
  | None ->
    (* one private registry per class keeps the histogram names trivial *)
    let reg = Metrics.create () in
    let e =
      {
        queries = Metrics.counter reg "queries";
        wall = Metrics.histogram reg "wall_ns";
        cpu = Metrics.histogram reg "cpu_ns";
      }
    in
    Hashtbl.add t.tbl cls e;
    e

let observe t ~cls ~wall_ns ~cpu_ns =
  let e = entry t cls in
  Metrics.incr e.queries;
  Metrics.observe e.wall wall_ns;
  Metrics.observe e.cpu cpu_ns

let classes t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [])

type summary = {
  queries : int;
  wall_p50 : float;
  wall_p90 : float;
  wall_p99 : float;
  wall_max : int;
  cpu_p50 : float;
  cpu_p90 : float;
  cpu_p99 : float;
  cpu_max : int;
}

let summary t cls =
  match Hashtbl.find_opt t.tbl cls with
  | None -> None
  | Some e ->
    let q h p = Quantile.of_histogram h p in
    Some
      {
        queries = Metrics.value e.queries;
        wall_p50 = q e.wall 0.5;
        wall_p90 = q e.wall 0.9;
        wall_p99 = q e.wall 0.99;
        wall_max = Metrics.h_max e.wall;
        cpu_p50 = q e.cpu 0.5;
        cpu_p90 = q e.cpu 0.9;
        cpu_p99 = q e.cpu 0.99;
        cpu_max = Metrics.h_max e.cpu;
      }

let dist_json ~p50 ~p90 ~p99 ~mx =
  Json.Obj
    [
      ("p50", Json.Float p50);
      ("p90", Json.Float p90);
      ("p99", Json.Float p99);
      ("max", Json.Int mx);
    ]

let to_json t =
  Json.Obj
    (List.map
       (fun cls ->
         match summary t cls with
         | None -> (cls, Json.Null) (* unreachable: cls comes from the table *)
         | Some s ->
           ( cls,
             Json.Obj
               [
                 ("queries", Json.Int s.queries);
                 ("wall_ns", dist_json ~p50:s.wall_p50 ~p90:s.wall_p90 ~p99:s.wall_p99 ~mx:s.wall_max);
                 ("cpu_ns", dist_json ~p50:s.cpu_p50 ~p90:s.cpu_p90 ~p99:s.cpu_p99 ~mx:s.cpu_max);
               ] ))
       (classes t))
