type counter = { mutable v : int }

let n_buckets = 63

type histogram = {
  hb : int array; (* n_buckets *)
  mutable count : int;
  mutable sum : int;
  mutable max_v : int;
}

type metric = Counter of counter | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list; (* reverse insertion order, for stable JSON *)
}

let create () = { tbl = Hashtbl.create 16; order = [] }

let register t name make =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.add t.tbl name m;
    t.order <- name :: t.order;
    m

let counter t name =
  match register t name (fun () -> Counter { v = 0 }) with
  | Counter c -> c
  | Histogram _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S is a histogram" name)

let incr ?(by = 1) c = c.v <- c.v + by
let set c v = c.v <- v
let value c = c.v

let histogram t name =
  match
    register t name (fun () -> Histogram { hb = Array.make n_buckets 0; count = 0; sum = 0; max_v = 0 })
  with
  | Histogram h -> h
  | Counter _ -> invalid_arg (Printf.sprintf "Metrics.histogram: %S is a counter" name)

let bucket_index v =
  if v <= 0 then 0
  else begin
    (* floor log2 + 1, capped into the bucket array *)
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v lsr 1) in
    min (n_buckets - 1) (log2 0 v + 1)
  end

let bucket_bounds i =
  if i <= 0 then (min_int, 0)
  else if i >= n_buckets - 1 then (1 lsl (n_buckets - 2), max_int)
  else (1 lsl (i - 1), (1 lsl i) - 1)

let observe h v =
  h.hb.(bucket_index v) <- h.hb.(bucket_index v) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v > h.max_v then h.max_v <- v

let h_count h = h.count
let h_sum h = h.sum
let h_max h = h.max_v

let buckets h =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.hb.(i) > 0 then begin
      let lo, hi = bucket_bounds i in
      acc := (lo, hi, h.hb.(i)) :: !acc
    end
  done;
  !acc

let names t = List.sort compare (List.rev t.order)

let merge_into acc x =
  List.iter
    (fun name ->
      match Hashtbl.find_opt x.tbl name with
      | None -> ()
      | Some (Counter c) -> incr ~by:c.v (counter acc name)
      | Some (Histogram h) ->
        let dst = histogram acc name in
        Array.iteri (fun i n -> dst.hb.(i) <- dst.hb.(i) + n) h.hb;
        dst.count <- dst.count + h.count;
        dst.sum <- dst.sum + h.sum;
        if h.max_v > dst.max_v then dst.max_v <- h.max_v)
    (List.rev x.order)

let pp_bound ppf b =
  if b = min_int then Format.pp_print_string ppf "-inf"
  else if b = max_int then Format.pp_print_string ppf "inf"
  else Format.pp_print_int ppf b

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  let first = ref true in
  List.iter
    (fun name ->
      if not !first then Format.pp_print_cut ppf ();
      first := false;
      match Hashtbl.find t.tbl name with
      | Counter c -> Format.fprintf ppf "%s = %d" name c.v
      | Histogram h ->
        Format.fprintf ppf "%s: count=%d sum=%d max=%d" name h.count h.sum h.max_v;
        List.iter
          (fun (lo, hi, n) -> Format.fprintf ppf " [%a..%a]:%d" pp_bound lo pp_bound hi n)
          (buckets h))
    (names t);
  Format.pp_close_box ppf ()

let to_json t =
  Json.Obj
    (List.map
       (fun name ->
         ( name,
           match Hashtbl.find t.tbl name with
           | Counter c -> Json.Int c.v
           | Histogram h ->
             Json.Obj
               [
                 ("count", Json.Int h.count);
                 ("sum", Json.Int h.sum);
                 ("max", Json.Int h.max_v);
                 ( "buckets",
                   Json.List
                     (List.map
                        (fun (lo, hi, n) ->
                          Json.List
                            [
                              (if lo = min_int then Json.Null else Json.Int lo);
                              (if hi = max_int then Json.Null else Json.Int hi);
                              Json.Int n;
                            ])
                        (buckets h)) );
               ] ))
       (names t))
