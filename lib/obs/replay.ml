(* Offline postmortem for a flight dump: reload the events, reconstruct
   the interleaving (the dump is already merged by sequence number, but a
   hand-edited or concatenated file may not be), re-run the full invariant
   set through Flight.Check, and localise the first violating event. *)

type stall = { st_flow : int; st_shard : int; st_silent_ns : int }

type t = {
  path : string;
  meta : Flight.meta option;
  events : Flight.event list; (* merged by (seq, ts) *)
  skipped : int;
  domains : int list;
  flows : int list;
  kinds : (string * int) list; (* tag -> count, in all_tags order, zeroes elided *)
  seq_gaps : int; (* missing sequence numbers: ring-wraparound losses *)
  stalls : stall list; (* offline watchdog: largest inter-event silence per shard *)
  violation : Flight.violation option;
}

let sort_events evs =
  List.sort (fun (a : Flight.event) b -> compare (a.seq, a.ts_ns) (b.seq, b.ts_ns)) evs

let recheck evs =
  let st = Flight.Check.init () in
  let rec go = function
    | [] -> None
    | (ev : Flight.event) :: rest -> (
      match Flight.Check.step st ev with
      | None -> go rest
      | Some (rule, detail) ->
        Some
          {
            Flight.v_seq = ev.seq;
            v_flow = ev.flow;
            v_rule = rule;
            v_detail = detail;
            v_window = Flight.window_around ~seq:ev.seq evs;
          })
  in
  go evs

let seq_gaps evs =
  let rec go acc = function
    | (a : Flight.event) :: (b : Flight.event) :: rest ->
      go (acc + max 0 (b.seq - a.seq - 1)) (b :: rest)
    | _ -> acc
  in
  go 0 evs

(* The offline stall watchdog: for each (flow, shard) worker, the largest
   gap between consecutive timestamped events.  Only meaningful when the
   dump was recorded with a clock installed; a clockless dump has ts 0
   everywhere and reports nothing. *)
let find_stalls ~threshold_ns evs =
  let last : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let worst : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (ev : Flight.event) ->
      if ev.flow >= 0 && ev.shard >= 0 && ev.ts_ns > 0 then begin
        let k = (ev.flow, ev.shard) in
        (match Hashtbl.find_opt last k with
        | Some prev when ev.ts_ns - prev > Option.value ~default:0 (Hashtbl.find_opt worst k) ->
          Hashtbl.replace worst k (ev.ts_ns - prev)
        | _ -> ());
        Hashtbl.replace last k ev.ts_ns
      end)
    evs;
  Hashtbl.fold
    (fun (st_flow, st_shard) st_silent_ns acc ->
      if st_silent_ns > threshold_ns then { st_flow; st_shard; st_silent_ns } :: acc else acc)
    worst []
  |> List.sort compare

let kind_counts evs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (ev : Flight.event) ->
      let t = Flight.kind_tag ev.kind in
      Hashtbl.replace tbl t (1 + Option.value ~default:0 (Hashtbl.find_opt tbl t)))
    evs;
  List.filter_map
    (fun t -> Option.map (fun n -> (t, n)) (Hashtbl.find_opt tbl t))
    Flight.all_tags

let of_events ?(stall_ns = !Flight.stall_threshold_ns) ~path ~meta ~skipped evs =
  let evs = sort_events evs in
  {
    path;
    meta;
    events = evs;
    skipped;
    domains = List.sort_uniq compare (List.map (fun (e : Flight.event) -> e.domain) evs);
    flows =
      List.sort_uniq compare
        (List.filter_map (fun (e : Flight.event) -> if e.flow >= 0 then Some e.flow else None) evs);
    kinds = kind_counts evs;
    seq_gaps = seq_gaps evs;
    stalls = find_stalls ~threshold_ns:stall_ns evs;
    violation = recheck evs;
  }

let load ?stall_ns path =
  match Flight.load path with
  | Error e -> Error e
  | Ok (meta, evs, skipped) -> Ok (of_events ?stall_ns ~path ~meta ~skipped evs)

let ok t = t.violation = None

(* --- text ---------------------------------------------------------------- *)

let pp ppf t =
  Format.fprintf ppf "flight: %s@." t.path;
  let recorded, dropped =
    match t.meta with Some m -> (m.Flight.m_recorded, m.Flight.m_dropped) | None -> (-1, -1)
  in
  if recorded >= 0 then
    Format.fprintf ppf "  events=%d recorded=%d dropped=%d skipped_lines=%d@."
      (List.length t.events) recorded dropped t.skipped
  else
    Format.fprintf ppf "  events=%d (no meta line) skipped_lines=%d@." (List.length t.events)
      t.skipped;
  Format.fprintf ppf "  domains=%d flows=%d seq_gaps=%d@." (List.length t.domains)
    (List.length t.flows) t.seq_gaps;
  Format.fprintf ppf "  events by kind:";
  List.iter (fun (k, n) -> Format.fprintf ppf " %s=%d" k n) t.kinds;
  Format.fprintf ppf "@.";
  (match t.stalls with
  | [] -> Format.fprintf ppf "  stalls: none@."
  | ss ->
    Format.fprintf ppf "  stalls:@.";
    List.iter
      (fun s ->
        Format.fprintf ppf "    flow %d shard %d silent for %dns@." s.st_flow s.st_shard
          s.st_silent_ns)
      ss);
  match t.violation with
  | None -> Format.fprintf ppf "  invariants: OK@."
  | Some v ->
    Format.fprintf ppf "  invariants: VIOLATION %s at seq %d (flow %d)@.    %s@." v.Flight.v_rule
      v.Flight.v_seq v.Flight.v_flow v.Flight.v_detail;
    Format.fprintf ppf "  window:@.";
    List.iter (fun ev -> Format.fprintf ppf "    %a@." Flight.pp_event ev) v.Flight.v_window

(* --- json ----------------------------------------------------------------- *)

let to_json t =
  Json.Obj
    [
      ("path", Json.String t.path);
      ("events", Json.Int (List.length t.events));
      ( "recorded",
        match t.meta with Some m -> Json.Int m.Flight.m_recorded | None -> Json.Null );
      ("dropped", match t.meta with Some m -> Json.Int m.Flight.m_dropped | None -> Json.Null);
      ("skipped_lines", Json.Int t.skipped);
      ("domains", Json.Int (List.length t.domains));
      ("flows", Json.Int (List.length t.flows));
      ("seq_gaps", Json.Int t.seq_gaps);
      ("kinds", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) t.kinds));
      ( "stalls",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("flow", Json.Int s.st_flow);
                   ("shard", Json.Int s.st_shard);
                   ("silent_ns", Json.Int s.st_silent_ns);
                 ])
             t.stalls) );
      ( "violation",
        match t.violation with
        | None -> Json.Null
        | Some v ->
          Json.Obj
            [
              ("rule", Json.String v.Flight.v_rule);
              ("seq", Json.Int v.Flight.v_seq);
              ("flow", Json.Int v.Flight.v_flow);
              ("detail", Json.String v.Flight.v_detail);
              ("window", Json.List (List.map Flight.to_json v.Flight.v_window));
            ] );
    ]
