(** The wasted-work query profile: where tuples went versus where answers
    came from.

    Built from a stream's {!Metrics} registry after (or during) execution,
    it aligns the [pop_distance] histogram (tuples taken off [D_R] per
    distance bucket) with [answer_distance] (answers emitted per bucket),
    attributes the discarded pops (visited-set dedup, duplicate finals, the
    ψ ceiling, tuples left in the queue when the governor cut the run) and
    totals the per-operation cost histograms ([ops_insert] … ) that answer
    witnesses feed.  Rendered by the CLI's [--profile], embedded in
    [--trace] exports and in [Engine.explain_analyze] plans. *)

type bucket_row = {
  lo : int;  (** bucket lower bound, inclusive; [min_int] for the ≤0 bucket *)
  hi : int;  (** upper bound, inclusive; [max_int] for the overflow bucket *)
  popped : int;
  answers : int;
}

type op_stat = {
  op : string;  (** "ins" | "del" | "sub" | "relax-sp" | "relax-dr" *)
  op_count : int;  (** operations applied across all emitted answers *)
  op_cost : int;  (** their total distance contribution *)
}

type t = {
  buckets : bucket_row list;  (** ascending; union of pop/answer buckets *)
  drop_visited : int;
  drop_dup : int;
  pruned : int;
  queue_left : int;  (** pushes - pops: never-popped tuples *)
  pops : int;
  answers : int;
  ops : op_stat list;  (** all five operations, zero rows included *)
}

val op_histograms : (string * string) list
(** Report op name → registry histogram name — the five [ops_*] entries of
    the metrics manifest. *)

val of_metrics : Metrics.t -> t
(** Reads the [pop_distance]/[answer_distance]/[ops_*] histograms and the
    [pushes]/[pops]/[answers]/[drop_visited]/[drop_dup]/[pruned] counters
    (get-or-create: absent metrics read as zero). *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t

val of_json : Json.t -> t option
(** Inverse of {!to_json} (used by the round-trip tests and external
    consumers of trace exports). *)
