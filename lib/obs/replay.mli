(** Offline replay checker for flight-recorder dumps: reconstructs the
    interleaving from a JSONL dump, re-validates the full {!Flight.Check}
    invariant set, and localises the first violating event. *)

type stall = { st_flow : int; st_shard : int; st_silent_ns : int }

type t = {
  path : string;
  meta : Flight.meta option;
  events : Flight.event list;
  skipped : int;
  domains : int list;
  flows : int list;
  kinds : (string * int) list;
  seq_gaps : int;
  stalls : stall list;
  violation : Flight.violation option;
}

val load : ?stall_ns:int -> string -> (t, string) result
(** Loads a dump tolerantly (truncated/corrupt lines are skipped and
    counted) and re-checks it. [stall_ns] overrides the offline stall
    threshold (default {!Flight.stall_threshold_ns}). *)

val of_events :
  ?stall_ns:int ->
  path:string ->
  meta:Flight.meta option ->
  skipped:int ->
  Flight.event list ->
  t

val ok : t -> bool
(** True iff the dump violates no invariant. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
