let now_ns : (unit -> int) ref = ref (fun () -> 0)
let flag = ref false

let install f =
  now_ns := f;
  flag := true

let installed () = !flag

let uninstall () =
  now_ns := (fun () -> 0);
  flag := false
