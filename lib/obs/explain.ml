type part = { p_regex : string; p_states : int; p_transitions : int }

type conjunct_plan = {
  index : int;
  source : string;
  mode : string;
  automaton : string;
  states : int;
  transitions : int;
  reversed : bool;
  strategy : string;
  seeding : string;
  parts : part list;
  mutable counters : (string * int) list;
}

type plan = {
  query : string;
  head : string list;
  join : string;
  governor : (string * string) list;
  conjuncts : conjunct_plan list;
  mutable analysis : (string * string) list;
  mutable profile : Profile.t option;
}

let pp_kvs pp_v ppf kvs =
  List.iteri
    (fun i (k, v) -> Format.fprintf ppf (if i = 0 then "%s=%a" else " %s=%a") k pp_v v)
    kvs

let pp_conjunct ppf (c : conjunct_plan) =
  Format.fprintf ppf "[%d] %s %s@," c.index (String.uppercase_ascii c.mode) c.source;
  Format.fprintf ppf "    automaton %s: %d states, %d transitions@," c.automaton c.states
    c.transitions;
  Format.fprintf ppf "    strategy: %s@," c.strategy;
  Format.fprintf ppf "    seeding: %s@," c.seeding;
  if c.reversed then Format.fprintf ppf "    reversed: subject/object swapped (case 2)@,";
  List.iteri
    (fun i (p : part) ->
      Format.fprintf ppf "    part %d: %s — %d states, %d transitions@," (i + 1) p.p_regex
        p.p_states p.p_transitions)
    c.parts;
  if c.counters <> [] then
    Format.fprintf ppf "    counters: %a@," (pp_kvs Format.pp_print_int) c.counters

let pp ppf (p : plan) =
  Format.fprintf ppf "@[<v>EXPLAIN %s@," p.query;
  Format.fprintf ppf "  join: %s@," p.join;
  Format.fprintf ppf "  governor: %a@," (pp_kvs Format.pp_print_string) p.governor;
  List.iter (fun c -> Format.fprintf ppf "  @[<v>%a@]" pp_conjunct c) p.conjuncts;
  if p.analysis <> [] then
    Format.fprintf ppf "  analysis: %a@," (pp_kvs Format.pp_print_string) p.analysis;
  (match p.profile with
  | Some prof -> Format.fprintf ppf "  @[<v>%a@]@," Profile.pp prof
  | None -> ());
  Format.fprintf ppf "@]"

let to_json (p : plan) =
  Json.Obj
    [
      ("query", Json.String p.query);
      ("head", Json.List (List.map (fun v -> Json.String v) p.head));
      ("join", Json.String p.join);
      ("governor", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) p.governor));
      ( "conjuncts",
        Json.List
          (List.map
             (fun (c : conjunct_plan) ->
               Json.Obj
                 [
                   ("index", Json.Int c.index);
                   ("source", Json.String c.source);
                   ("mode", Json.String c.mode);
                   ("automaton", Json.String c.automaton);
                   ("states", Json.Int c.states);
                   ("transitions", Json.Int c.transitions);
                   ("reversed", Json.Bool c.reversed);
                   ("strategy", Json.String c.strategy);
                   ("seeding", Json.String c.seeding);
                   ( "parts",
                     Json.List
                       (List.map
                          (fun (pt : part) ->
                            Json.Obj
                              [
                                ("regex", Json.String pt.p_regex);
                                ("states", Json.Int pt.p_states);
                                ("transitions", Json.Int pt.p_transitions);
                              ])
                          c.parts) );
                   ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) c.counters));
                 ])
             p.conjuncts) );
      ("analysis", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) p.analysis));
      ("profile", match p.profile with Some prof -> Profile.to_json prof | None -> Json.Null);
    ]
