(** Span/event tracer for the query engine: a process-wide ring buffer of
    timestamped events, exportable as Chrome [trace_event] JSON (loadable in
    [chrome://tracing] and Perfetto).

    Disabled by default and {e zero-cost} when disabled: {!with_span} is a
    single flag check before calling the thunk, and the instrumented call
    sites guard their argument construction on {!enabled} — nothing on the
    [Succ] hot path touches the tracer at all (the span taxonomy stops at
    batch/window granularity; see DESIGN.md §Observability).

    Timestamps come from {!Clock.now_ns}; without an installed clock every
    event sits at t=0 (the export is still structurally valid).

    Domain-safe: the ring is mutex-guarded, and every event records the
    emitting domain as its [tid] (the initial domain is tid 1, so purely
    sequential runs export exactly as before parallel evaluation existed;
    shard workers of [Core.Par] appear as their own timeline rows in
    Perfetto).  All events carry pid=1. *)

type arg = Str of string | Num of int
(** Argument values attached to events (the [args] object of the trace
    format). *)

type phase =
  | Begin  (** span open — ["B"] *)
  | End  (** span close — ["E"] *)
  | Instant  (** point event — ["i"] *)
  | Complete of int  (** retro-recorded span with duration in ns — ["X"] *)
  | Meta  (** viewer metadata (e.g. [thread_name]) — ["M"] *)

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_ns : int;
  tid : int;  (** 1 + the emitting domain's id; the initial domain is 1 *)
  args : (string * arg) list;
}

val enabled : unit -> bool
(** The flag every instrumentation point checks first. *)

val enable : ?capacity:int -> unit -> unit
(** Turn tracing on with a fresh ring buffer (default capacity 65536
    events; the oldest events are overwritten past that, counted by
    {!dropped}). *)

val disable : unit -> unit
(** Turn tracing off; the buffered events stay readable. *)

val clear : unit -> unit

val with_span : ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] brackets [f] with matching [Begin]/[End] events; the
    [End] is recorded even if [f] raises, so span nesting is always
    well-formed.  When disabled this is exactly [f ()]. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit
(** A point event (e.g. a governor trip, a ψ-level bump). *)

val complete : ?cat:string -> ?args:(string * arg) list -> start_ns:int -> string -> unit
(** A retro-recorded span: [start_ns] was sampled from {!Clock.now_ns}
    before the work, the duration is measured at the call.  Used where a
    window is not lexically scoped (a ψ-restart part streaming across many
    [next] calls).  [Complete] events do not participate in [Begin]/[End]
    nesting. *)

val set_thread_name : string -> unit
(** Name the calling domain's timeline row: emits a [thread_name] metadata
    event ([ph = "M"]) for this domain's [tid], which Perfetto and
    [chrome://tracing] render as the row label.  [Core.Par] workers call it
    once at startup so shard lanes read ["shard 0 (exact)"] instead of a
    bare tid.  No-op when disabled. *)

val events : unit -> event list
(** Buffered events, oldest first. *)

val dropped : unit -> int
(** Events overwritten by the ring since {!enable}/{!clear}. *)

val approx_bytes : unit -> int
(** Approximate retained footprint of the ring buffer (0 when never
    enabled) — charged once against a query's memory budget at open when
    tracing is on, since the ring is fixed-capacity. *)

val to_json : ?extra:(string * Json.t) list -> unit -> Json.t
(** The buffer as a Chrome [trace_event] document:
    [{"traceEvents": [...], "displayTimeUnit": "ms", "dropped": n}] with
    microsecond [ts]/[dur] fields.  [dropped] is {!dropped} — non-zero means
    the ring truncated the trace.  [extra] fields are appended to the
    top-level object (the CLI embeds the query profile there). *)

val export : ?extra:(string * Json.t) list -> string -> unit
(** Write {!to_json} to a file. *)
