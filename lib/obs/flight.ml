let schema_version = 1
let env_var = "OMEGA_FLIGHT"

(* --- events ------------------------------------------------------------ *)

type input = { i_shard : int; i_last : int; i_state : int }

type kind =
  | Flow_open of { shards : int; slack : int; label : string }
  | Shard_start
  | Deliver of { dist : int }
  | Park of { qlen : int }
  | Unpark
  | Heartbeat of { qlen : int; last : int }
  | Shard_done of { complete : bool; answers : int }
  | Seal of { bound : int; batch : int; inputs : input list }
  | Emit of { dist : int; x : int; y : int }
  | Stall of { silent_ns : int }
  | Stop
  | Trip of { reason : string }

type event = { seq : int; ts_ns : int; domain : int; flow : int; shard : int; kind : kind }

let kind_tag = function
  | Flow_open _ -> "flow_open"
  | Shard_start -> "shard_start"
  | Deliver _ -> "deliver"
  | Park _ -> "park"
  | Unpark -> "unpark"
  | Heartbeat _ -> "heartbeat"
  | Shard_done _ -> "shard_done"
  | Seal _ -> "seal"
  | Emit _ -> "emit"
  | Stall _ -> "stall"
  | Stop -> "stop"
  | Trip _ -> "trip"

let all_tags =
  [
    "flow_open";
    "shard_start";
    "deliver";
    "park";
    "unpark";
    "heartbeat";
    "shard_done";
    "seal";
    "emit";
    "stall";
    "stop";
    "trip";
  ]

let pp_kind ppf = function
  | Flow_open { shards; slack; label } ->
    Format.fprintf ppf "flow_open shards=%d slack=%d label=%s" shards slack label
  | Shard_start -> Format.pp_print_string ppf "shard_start"
  | Deliver { dist } -> Format.fprintf ppf "deliver dist=%d" dist
  | Park { qlen } -> Format.fprintf ppf "park qlen=%d" qlen
  | Unpark -> Format.pp_print_string ppf "unpark"
  | Heartbeat { qlen; last } -> Format.fprintf ppf "heartbeat qlen=%d last=%d" qlen last
  | Shard_done { complete; answers } ->
    Format.fprintf ppf "shard_done %s answers=%d" (if complete then "complete" else "incomplete") answers
  | Seal { bound; batch; inputs } ->
    let pp_bound ppf b =
      if b = max_int then Format.pp_print_string ppf "inf" else Format.pp_print_int ppf b
    in
    Format.fprintf ppf "seal bound=%a batch=%d inputs=[%s]" pp_bound bound batch
      (String.concat ";"
         (List.map
            (fun i ->
              Printf.sprintf "%d:%d%s" i.i_shard i.i_last
                (match i.i_state with 0 -> "" | 1 -> "/done" | _ -> "/tripped"))
            inputs))
  | Emit { dist; x; y } -> Format.fprintf ppf "emit dist=%d x=%d y=%d" dist x y
  | Stall { silent_ns } -> Format.fprintf ppf "stall silent_ns=%d" silent_ns
  | Stop -> Format.pp_print_string ppf "stop"
  | Trip { reason } -> Format.fprintf ppf "trip reason=%s" reason

let pp_event ppf ev =
  Format.fprintf ppf "seq=%-4d dom=%d flow=%d shard=%s %a" ev.seq ev.domain ev.flow
    (if ev.shard < 0 then "-" else string_of_int ev.shard)
    pp_kind ev.kind

(* --- the per-domain rings ---------------------------------------------- *)

(* One fixed-capacity wraparound ring per domain, single-writer: only the
   owning domain ever writes [buf] and [written], so recording takes no
   lock.  [written] is an Atomic purely for publication order — the slot is
   written before the count, so a concurrent reader that trusts [written]
   never observes an unpublished slot (it can still race a wrapping
   overwrite; snapshots are ordinarily taken after the flow quiesced, and
   the crash dump is explicitly best-effort). *)
type ring = { r_domain : int; buf : event option array; written : int Atomic.t }

let default_capacity = 4096
let on = ref false
let enabled () = !on

(* The detail level adds the per-answer events (Deliver, Emit) the default
   always-on level deliberately skips: at ~70ns a record they would put
   tens of percent on a cheap answer path, while Seal carries enough (its
   per-shard inputs) to validate every bound without them.  Tests and
   explicit forensic runs turn detail on; the invariant rules that need
   per-answer events simply never fire without it. *)
let detail_on = ref false
let detail () = !on && !detail_on
let capacity = ref default_capacity
let seq_counter = Atomic.make 0
let flow_counter = Atomic.make 0
let epoch = Atomic.make 0
let reg_m = Mutex.create ()
let rings : ring list ref = ref []
let dump_path : string option ref = ref None
let stall_threshold_ns = ref 250_000_000

let set_dump_target p = dump_path := p
let dump_target () = !dump_path
let new_flow () = Atomic.fetch_and_add flow_counter 1

(* The ring is found through domain-local storage, validated against the
   recorder epoch: [clear] bumps the epoch, so a long-lived domain (the
   main one) re-registers a fresh ring instead of resurrecting a discarded
   one. *)
let ring_key : (int * ring) option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let my_ring () =
  let cell = Domain.DLS.get ring_key in
  let ep = Atomic.get epoch in
  match !cell with
  | Some (e, r) when e = ep -> r
  | _ ->
    let r =
      {
        r_domain = (Domain.self () :> int);
        buf = Array.make (max 8 !capacity) None;
        written = Atomic.make 0;
      }
    in
    Mutex.lock reg_m;
    rings := r :: !rings;
    Mutex.unlock reg_m;
    cell := Some (ep, r);
    r

let ring_events r =
  let w = Atomic.get r.written in
  let cap = Array.length r.buf in
  let n = min w cap in
  let lo = w - n in
  List.filter_map (fun i -> r.buf.((lo + i) mod cap)) (List.init n Fun.id)

let events () =
  Mutex.lock reg_m;
  let rs = !rings in
  Mutex.unlock reg_m;
  List.sort
    (fun a b -> compare (a.seq, a.ts_ns) (b.seq, b.ts_ns))
    (List.concat_map ring_events rs)

let stats () =
  Mutex.lock reg_m;
  let rs = !rings in
  Mutex.unlock reg_m;
  let dropped =
    List.fold_left (fun acc r -> acc + max 0 (Atomic.get r.written - Array.length r.buf)) 0 rs
  in
  (Atomic.get seq_counter, dropped)

(* --- codec (mirrors audit.ml: versioned, strict decode) ----------------- *)

let input_json i = Json.List [ Json.Int i.i_shard; Json.Int i.i_last; Json.Int i.i_state ]

let to_json ev =
  let base =
    [
      ("v", Json.Int schema_version);
      ("seq", Json.Int ev.seq);
      ("ts_ns", Json.Int ev.ts_ns);
      ("dom", Json.Int ev.domain);
      ("flow", Json.Int ev.flow);
      ("shard", Json.Int ev.shard);
      ("ev", Json.String (kind_tag ev.kind));
    ]
  in
  let extra =
    match ev.kind with
    | Flow_open { shards; slack; label } ->
      [ ("shards", Json.Int shards); ("slack", Json.Int slack); ("label", Json.String label) ]
    | Shard_start | Unpark | Stop -> []
    | Deliver { dist } -> [ ("dist", Json.Int dist) ]
    | Park { qlen } -> [ ("qlen", Json.Int qlen) ]
    | Heartbeat { qlen; last } -> [ ("qlen", Json.Int qlen); ("last", Json.Int last) ]
    | Shard_done { complete; answers } ->
      [ ("complete", Json.Bool complete); ("answers", Json.Int answers) ]
    | Seal { bound; batch; inputs } ->
      [
        ("bound", Json.Int bound);
        ("batch", Json.Int batch);
        ("inputs", Json.List (List.map input_json inputs));
      ]
    | Emit { dist; x; y } -> [ ("dist", Json.Int dist); ("x", Json.Int x); ("y", Json.Int y) ]
    | Stall { silent_ns } -> [ ("silent_ns", Json.Int silent_ns) ]
    | Trip { reason } -> [ ("reason", Json.String reason) ]
  in
  Json.Obj (base @ extra)

let ( let* ) = Result.bind

let field k j =
  match Json.member k j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" k)

let int_field k j =
  let* v = field k j in
  match Json.to_int v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "field %S: expected int" k)

let str_field k j =
  let* v = field k j in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected string" k)

let bool_field k j =
  let* v = field k j in
  match v with
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S: expected bool" k)

let inputs_field k j =
  let* v = field k j in
  match Json.to_list v with
  | None -> Error (Printf.sprintf "field %S: expected list" k)
  | Some l ->
    let rec conv acc = function
      | [] -> Ok (List.rev acc)
      | Json.List [ Json.Int i_shard; Json.Int i_last; Json.Int i_state ] :: rest ->
        conv ({ i_shard; i_last; i_state } :: acc) rest
      | _ -> Error (Printf.sprintf "field %S: expected [shard, last, state] triples" k)
    in
    conv [] l

let kind_of_json tag j =
  match tag with
  | "flow_open" ->
    let* shards = int_field "shards" j in
    let* slack = int_field "slack" j in
    let* label = str_field "label" j in
    Ok (Flow_open { shards; slack; label })
  | "shard_start" -> Ok Shard_start
  | "deliver" ->
    let* dist = int_field "dist" j in
    Ok (Deliver { dist })
  | "park" ->
    let* qlen = int_field "qlen" j in
    Ok (Park { qlen })
  | "unpark" -> Ok Unpark
  | "heartbeat" ->
    let* qlen = int_field "qlen" j in
    let* last = int_field "last" j in
    Ok (Heartbeat { qlen; last })
  | "shard_done" ->
    let* complete = bool_field "complete" j in
    let* answers = int_field "answers" j in
    Ok (Shard_done { complete; answers })
  | "seal" ->
    let* bound = int_field "bound" j in
    let* batch = int_field "batch" j in
    let* inputs = inputs_field "inputs" j in
    Ok (Seal { bound; batch; inputs })
  | "emit" ->
    let* dist = int_field "dist" j in
    let* x = int_field "x" j in
    let* y = int_field "y" j in
    Ok (Emit { dist; x; y })
  | "stall" ->
    let* silent_ns = int_field "silent_ns" j in
    Ok (Stall { silent_ns })
  | "stop" -> Ok Stop
  | "trip" ->
    let* reason = str_field "reason" j in
    Ok (Trip { reason })
  | t -> Error (Printf.sprintf "unknown event tag %S" t)

let of_json j =
  let* v = int_field "v" j in
  if v <> schema_version then
    Error (Printf.sprintf "schema version %d (expected %d)" v schema_version)
  else
    let* seq = int_field "seq" j in
    let* ts_ns = int_field "ts_ns" j in
    let* domain = int_field "dom" j in
    let* flow = int_field "flow" j in
    let* shard = int_field "shard" j in
    let* tag = str_field "ev" j in
    let* kind = kind_of_json tag j in
    Ok { seq; ts_ns; domain; flow; shard; kind }

let validate j = Result.map (fun (_ : event) -> ()) (of_json j)

(* --- the shared invariant checker --------------------------------------

   One state machine, stepped event by event, used both by the online
   monitor (as events are recorded) and by Replay (over a loaded dump).
   The invariants are the sealed-merge correctness argument of
   lib/core/par.ml made executable:

   - shard-regression: a shard's deliveries are non-decreasing up to slack
     (dist >= last - slack);
   - seal-regression: the seal bound never decreases;
   - seal-overrun: a seal bound never exceeds the safe bound
     min over live-or-tripped shards of (last - slack) — a shard that
     finished *without* completing its work (trip, stop, crash) keeps its
     term in the min forever, because its undelivered answers could land
     anywhere at or above it;
   - late-delivery: no delivery lands below an already-sealed bound
     (a sealed bucket is complete);
   - emit-unsealed: every emitted answer's bucket is below the sealed
     bound (together with seal monotonicity this is "every bucket is
     sealed exactly once, and emitted only from sealed buckets");
   - emit-order: emits are non-decreasing in the canonical (dist, x, y)
     order. *)

module Check = struct
  type shard_state = { mutable c_last : int; mutable c_phase : int }
  (* c_phase: 0 live, 1 done-complete, 2 done-incomplete *)

  type flow_state = {
    mutable f_slack : int;
    f_shards : (int, shard_state) Hashtbl.t;
    mutable f_sealed : int; (* highest sealed bound; min_int before any seal *)
    mutable f_stopped : bool;
    mutable f_emit : (int * int * int) option;
  }

  type state = (int, flow_state) Hashtbl.t

  let init () : state = Hashtbl.create 4

  let flow st f =
    match Hashtbl.find_opt st f with
    | Some fs -> fs
    | None ->
      let fs =
        { f_slack = 0; f_shards = Hashtbl.create 8; f_sealed = min_int; f_stopped = false; f_emit = None }
      in
      Hashtbl.add st f fs;
      fs

  let shard fs i =
    match Hashtbl.find_opt fs.f_shards i with
    | Some ss -> ss
    | None ->
      let ss = { c_last = -1; c_phase = 0 } in
      Hashtbl.add fs.f_shards i ss;
      ss

  let safe_bound fs =
    Hashtbl.fold
      (fun _ ss acc -> if ss.c_phase = 1 then acc else min acc (ss.c_last - fs.f_slack))
      fs.f_shards max_int

  (* step returns [Some (rule, detail)] on the first violated invariant. *)
  let step (st : state) (ev : event) : (string * string) option =
    if ev.flow < 0 then None
    else
      let fs = flow st ev.flow in
      match ev.kind with
      | Flow_open { shards; slack; _ } ->
        fs.f_slack <- max 0 slack;
        for i = 0 to shards - 1 do
          ignore (shard fs i)
        done;
        None
      | Deliver { dist } ->
        let ss = shard fs ev.shard in
        if dist < fs.f_sealed then
          Some
            ( "late-delivery",
              Printf.sprintf "shard %d delivered dist=%d below the sealed bound %d" ev.shard dist
                fs.f_sealed )
        else if dist < ss.c_last - fs.f_slack then
          Some
            ( "shard-regression",
              Printf.sprintf "shard %d delivered dist=%d < last(%d) - slack(%d)" ev.shard dist
                ss.c_last fs.f_slack )
        else begin
          if dist > ss.c_last then ss.c_last <- dist;
          None
        end
      | Shard_done { complete; _ } ->
        (shard fs ev.shard).c_phase <- (if complete then 1 else 2);
        None
      | Seal { bound; inputs; _ } ->
        (* The recorded inputs are authoritative for shard frontiers: at
           the default recording level per-answer delivers are not logged,
           so the bound can only be validated against what the sealer
           claims it saw — and the claims themselves are raw shard fields,
           recorded before the bound rule touches them.  A buggy rule
           (e.g. dropping tripped shards from the min) therefore still
           contradicts its own inputs. *)
        List.iter
          (fun { i_shard; i_last; i_state } ->
            let ss = shard fs i_shard in
            if i_last > ss.c_last then ss.c_last <- i_last;
            if i_state <> 0 then ss.c_phase <- i_state)
          inputs;
        if bound < fs.f_sealed then
          Some
            ( "seal-regression",
              Printf.sprintf "seal bound %d regressed below the previous bound %d" bound fs.f_sealed
            )
        else
          let safe = safe_bound fs in
          if bound > safe then
            Some
              ( "seal-overrun",
                Printf.sprintf
                  "seal bound %s exceeds the safe bound %s: a live or tripped shard could still \
                   deliver below it"
                  (if bound = max_int then "inf" else string_of_int bound)
                  (if safe = max_int then "inf" else string_of_int safe) )
          else begin
            fs.f_sealed <- bound;
            None
          end
      | Emit { dist; x; y } ->
        if dist >= fs.f_sealed then
          Some
            ( "emit-unsealed",
              Printf.sprintf "emitted dist=%d at or above the sealed bound %s" dist
                (if fs.f_sealed = min_int then "-inf" else string_of_int fs.f_sealed) )
        else (
          match fs.f_emit with
          | Some prev when compare (dist, x, y) prev < 0 ->
            let pd, px, py = prev in
            Some
              ( "emit-order",
                Printf.sprintf "emit (%d,%d,%d) after (%d,%d,%d) breaks the canonical order" dist x
                  y pd px py )
          | _ ->
            fs.f_emit <- Some (dist, x, y);
            None)
      | Stop ->
        fs.f_stopped <- true;
        None
      | Shard_start | Park _ | Unpark | Heartbeat _ | Stall _ | Trip _ -> None
end

(* --- violations --------------------------------------------------------- *)

type violation = {
  v_seq : int;
  v_flow : int;
  v_rule : string;
  v_detail : string;
  v_window : event list; (* the trailing events up to and including the offender *)
}

exception Violation of violation

let pp_violation ppf v =
  Format.fprintf ppf "@[<v>%s at seq %d (flow %d): %s@,window:@,%a@]" v.v_rule v.v_seq v.v_flow
    v.v_detail
    (Format.pp_print_list pp_event)
    v.v_window

let window_size = 16

let window_around ~seq evs =
  List.filter (fun e -> e.seq <= seq && e.seq > seq - window_size) evs

(* --- dumps -------------------------------------------------------------- *)

(* One line per event, oldest first, preceded by a meta line carrying the
   recorder totals.  Like the audit sink, each line is complete before the
   next begins and the channel is flushed before closing, so a crash while
   dumping truncates at most the trailing line. *)
let meta_json ~recorded ~dropped =
  Json.Obj
    [
      ("v", Json.Int schema_version);
      ("meta", Json.Bool true);
      ("recorded", Json.Int recorded);
      ("dropped", Json.Int dropped);
    ]

let is_meta j = match Json.member "meta" j with Some (Json.Bool true) -> true | _ -> false

let meta_counts j =
  match (Json.member "recorded" j, Json.member "dropped" j) with
  | Some r, Some d -> (
    match (Json.to_int r, Json.to_int d) with Some r, Some d -> Some (r, d) | _ -> None)
  | _ -> None

let dump path =
  let evs = events () in
  let recorded, dropped = stats () in
  let oc = open_out_gen [ Open_creat; Open_trunc; Open_wronly ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (meta_json ~recorded ~dropped));
      output_char oc '\n';
      List.iter
        (fun ev ->
          output_string oc (Json.to_string (to_json ev));
          output_char oc '\n')
        evs;
      flush oc);
  List.length evs

(* --- the online monitor ------------------------------------------------- *)

module Monitor = struct
  let mon_on = ref false
  let mon_m = Mutex.create ()
  let state = ref (Check.init ())
  let first : violation option ref = ref None
  let last_dump : string option ref = ref None

  let enabled () = !mon_on

  let reset () =
    Mutex.lock mon_m;
    state := Check.init ();
    first := None;
    last_dump := None;
    Mutex.unlock mon_m

  let enable () =
    reset ();
    mon_on := true

  let disable () = mon_on := false

  (* Called from [record] with the event already published to its ring, so
     the violation window can include the offender.  The first violation
     wins and triggers an automatic dump (to the configured target, or a
     fresh temp file) — the postmortem survives even if the process dies
     before anyone calls [assert_ok]. *)
  let step ev =
    Mutex.lock mon_m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mon_m)
      (fun () ->
        match Check.step !state ev with
        | None -> ()
        | Some (rule, detail) ->
          if !first = None then begin
            let v =
              {
                v_seq = ev.seq;
                v_flow = ev.flow;
                v_rule = rule;
                v_detail = detail;
                v_window = window_around ~seq:ev.seq (events ());
              }
            in
            first := Some v;
            let path =
              match !dump_path with
              | Some p -> p
              | None -> Filename.temp_file "omega-flight-violation" ".jsonl"
            in
            (try
               ignore (dump path);
               last_dump := Some path
             with Sys_error _ -> ())
          end)

  let first_violation () = !first
  let last_dump_path () = !last_dump

  let assert_ok () =
    match !first with None -> () | Some v -> raise (Violation v)
end

(* --- recording ---------------------------------------------------------- *)

(* The hot-path contract: when the recorder is off this is one load and a
   branch; call sites guard with [enabled ()] so even the event payload is
   never allocated.  When on, recording is lock-free for the writer: a
   global sequence fetch-and-add, a clock read, two plain stores into the
   domain's own ring and one atomic publish. *)
let record ?(flow = -1) ?(shard = -1) kind =
  if !on then begin
    let r = my_ring () in
    let seq = Atomic.fetch_and_add seq_counter 1 in
    let ev = { seq; ts_ns = !Clock.now_ns (); domain = r.r_domain; flow; shard; kind } in
    let w = Atomic.get r.written in
    r.buf.(w mod Array.length r.buf) <- Some ev;
    Atomic.set r.written (w + 1);
    if !Monitor.mon_on then Monitor.step ev
  end

(* [clear] discards every ring and resets the sequence and flow counters;
   only call it while no flow is in flight (rings of joined domains are
   dropped, live writers re-register fresh ones via the epoch bump). *)
let clear () =
  Atomic.incr epoch;
  Mutex.lock reg_m;
  rings := [];
  Mutex.unlock reg_m;
  Atomic.set seq_counter 0;
  Atomic.set flow_counter 0;
  if !Monitor.mon_on then Monitor.reset ()

let enable ?capacity:(cap = default_capacity) ?(detail = false) () =
  capacity := max 8 cap;
  clear ();
  detail_on := detail;
  on := true

let disable () = on := false

(* --- reading (tolerant, for replay) ------------------------------------- *)

type meta = { m_recorded : int; m_dropped : int }

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go meta acc skipped =
          match input_line ic with
          | exception End_of_file -> Ok (meta, List.rev acc, skipped)
          | line when String.trim line = "" -> go meta acc skipped
          | line -> (
            match Json.parse line with
            | Error _ -> go meta acc (skipped + 1)
            | Ok j when is_meta j -> (
              match meta_counts j with
              | Some (m_recorded, m_dropped) -> go (Some { m_recorded; m_dropped }) acc skipped
              | None -> go meta acc (skipped + 1))
            | Ok j -> (
              match of_json j with
              | Error _ -> go meta acc (skipped + 1)
              | Ok ev -> go meta (ev :: acc) skipped))
        in
        go None [] 0)
