let of_buckets ?max_v ~count buckets p =
  if count <= 0 then 0.
  else begin
    let p = if p < 0. then 0. else if p > 1. then 1. else p in
    (* the 1-based rank of the quantile observation (nearest-rank, so p = 0
       is the minimum and p = 1 the maximum) *)
    let target = max 1 (int_of_float (ceil (p *. float_of_int count))) in
    let rec find before = function
      | [] -> 0. (* count > 0 guarantees the walk ends inside a bucket *)
      | (lo, hi, n) :: rest ->
        if before + n < target then find (before + n) rest
        else begin
          (* clamp the open-ended bucket bounds to representable values:
             the ≤0 bucket reads as [0, 0] (all our metrics are
             non-negative), the overflow bucket as [lo, max observed] *)
          let lo = if lo = min_int then 0 else lo in
          let hi =
            match max_v with
            | Some m when hi = max_int || m < hi -> max lo m
            | Some _ | None -> if hi = max_int then lo else hi
          in
          if n <= 1 then float_of_int lo
          else
            (* linear interpolation by rank within the bucket: rank lo at
               the bucket's first observation, rank hi at its last *)
            let frac = float_of_int (target - before - 1) /. float_of_int (n - 1) in
            float_of_int lo +. (frac *. float_of_int (hi - lo))
        end
    in
    find 0 buckets
  end

let of_histogram h p =
  of_buckets ~max_v:(Metrics.h_max h) ~count:(Metrics.h_count h) (Metrics.buckets h) p
