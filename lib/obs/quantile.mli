(** Quantile estimation over the log₂-bucketed histograms of {!Metrics}.

    The registry stores distributions as power-of-two buckets, so exact
    percentiles are gone by construction; what the buckets still determine
    is the bucket the p-quantile falls in, and its position inside that
    bucket by cumulative rank.  The estimator interpolates linearly within
    the bucket, which pins the estimate inside the bucket's [lo, hi] range
    — the same range the exact quantile lies in — so the error is bounded
    by the bucket width: a factor of 2 relative, much less in practice
    (the bound is pinned by the observatory test suite against exact
    percentiles of synthetic distributions).

    This is the p50/p90/p99 machinery behind the latency/SLO accounting of
    the query observatory ({!Slo}, {!Report}, [bin/omega_report]). *)

val of_buckets : ?max_v:int -> count:int -> (int * int * int) list -> float -> float
(** [of_buckets ~count buckets p] estimates the [p]-quantile (p in [0, 1],
    clamped) of a distribution given as {!Metrics.buckets} output —
    ascending [(lo, hi, n)] triples, [lo = min_int] meaning "≤ 0" and
    [hi = max_int] the overflow bucket.  [count] is the total observation
    count; [max_v], when given, clamps the top bucket's upper bound to the
    maximum value actually observed ({!Metrics.h_max}).  Returns [0.] on an
    empty distribution. *)

val of_histogram : Metrics.histogram -> float -> float
(** [of_buckets] over a live histogram, clamped by its [h_max]. *)
