(** The one process-wide monotonic clock behind every time attribution:
    [Exec_stats.scan_ns], governor deadlines, trace timestamps and metric
    latency histograms all read this reference.

    The default reads nothing and returns 0, so a library user who never
    installs a clock pays no syscall anywhere on the hot paths — and the
    printers can tell "no clock" apart from "measured 0" via {!installed}.
    Binaries (the CLI, the bench harness) install a real nanosecond clock
    once, in one shared init, instead of poking the per-module references
    that used to exist. *)

val now_ns : (unit -> int) ref
(** Current time in nanoseconds.  Defaults to [fun () -> 0]. *)

val install : (unit -> int) -> unit
(** Install a monotonic nanosecond clock and mark it {!installed}.  E.g.
    [Clock.install (fun () -> int_of_float (1e9 *. Unix.gettimeofday ()))]. *)

val installed : unit -> bool
(** Whether {!install} has been called.  Assigning {!now_ns} directly (the
    pre-obs compatibility surface, and what the deterministic-clock tests
    do) deliberately does {e not} set this flag. *)

val uninstall : unit -> unit
(** Restore the zero clock and clear the flag — for tests. *)
