type arg = Str of string | Num of int
type phase = Begin | End | Instant | Complete of int | Meta

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_ns : int;
  tid : int; (* 1 + domain id: the initial domain renders as tid 1, shard
                workers as their own timeline rows *)
  args : (string * arg) list;
}

let dummy = { name = ""; cat = ""; ph = Instant; ts_ns = 0; tid = 1; args = [] }

type state = {
  mutable buf : event array;
  mutable len : int; (* events currently stored *)
  mutable head : int; (* next write slot *)
  mutable dropped : int;
}

let st = { buf = [||]; len = 0; head = 0; dropped = 0 }

(* The ring is process-global and parallel shard workers emit into it, so
   every ring access is mutex-guarded.  [on] stays a plain ref read without
   the lock: the hot-path check must stay one load, and a worker racing an
   enable/disable merely misses (or spuriously takes) the slow path, where
   the lock makes the ring access itself safe either way. *)
let m = Mutex.create ()
let on = ref false
let enabled () = !on

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let enable ?(capacity = 65536) () =
  locked (fun () ->
      st.buf <- Array.make (max 16 capacity) dummy;
      st.len <- 0;
      st.head <- 0;
      st.dropped <- 0;
      on := true)

let disable () = on := false

let clear () =
  locked (fun () ->
      if Array.length st.buf > 0 then Array.fill st.buf 0 (Array.length st.buf) dummy;
      st.len <- 0;
      st.head <- 0;
      st.dropped <- 0)

let record ev =
  locked (fun () ->
      let cap = Array.length st.buf in
      if cap > 0 then begin
        st.buf.(st.head) <- ev;
        st.head <- (st.head + 1) mod cap;
        if st.len < cap then st.len <- st.len + 1 else st.dropped <- st.dropped + 1
      end)

let now () = !Clock.now_ns ()
let self_tid () = (Domain.self () :> int) + 1

let with_span ?(cat = "") ?(args = []) name f =
  if not !on then f ()
  else begin
    let tid = self_tid () in
    record { name; cat; ph = Begin; ts_ns = now (); tid; args };
    Fun.protect
      ~finally:(fun () -> record { name; cat; ph = End; ts_ns = now (); tid; args = [] })
      f
  end

let instant ?(cat = "") ?(args = []) name =
  if !on then record { name; cat; ph = Instant; ts_ns = now (); tid = self_tid (); args }

let complete ?(cat = "") ?(args = []) ~start_ns name =
  if !on then
    record
      { name; cat; ph = Complete (now () - start_ns); ts_ns = start_ns; tid = self_tid (); args }

let set_thread_name nm =
  if !on then
    record
      {
        name = "thread_name";
        cat = "__metadata";
        ph = Meta;
        (* a real timestamp keeps [to_json]'s t0 rebase honest (viewers
           ignore ts on metadata events anyway) *)
        ts_ns = now ();
        tid = self_tid ();
        args = [ ("name", Str nm) ];
      }

let events () =
  locked (fun () ->
      let cap = Array.length st.buf in
      List.init st.len (fun i -> st.buf.(((st.head - st.len + i) mod cap + cap) mod cap)))

let dropped () = locked (fun () -> st.dropped)

(* The ring's retained footprint for memory accounting: the event array's
   slots plus a flat per-event payload estimate (name/cat pointers are
   shared literals; args lists are short).  Deliberately coarse — the ring
   is a fixed-capacity structure, so one charge at enable/query-open
   covers it. *)
let approx_bytes () =
  let per_event_words = 8 in
  Array.length st.buf * per_event_words * (Sys.word_size / 8)

let us ns = Json.Float (float_of_int ns /. 1e3)

let json_of_event ~t0 e =
  let ph, extra =
    match e.ph with
    | Begin -> ("B", [])
    | End -> ("E", [])
    | Instant -> ("i", [ ("s", Json.String "t") ])
    | Complete dur -> ("X", [ ("dur", us dur) ])
    | Meta -> ("M", [])
  in
  let args =
    match e.args with
    | [] -> []
    | l ->
      [
        ( "args",
          Json.Obj (List.map (fun (k, v) -> (k, match v with Str s -> Json.String s | Num n -> Json.Int n)) l)
        );
      ]
  in
  Json.Obj
    ([
       ("name", Json.String e.name);
       ("cat", Json.String (if e.cat = "" then "omega" else e.cat));
       ("ph", Json.String ph);
       ("ts", us (e.ts_ns - t0));
       ("pid", Json.Int 1);
       ("tid", Json.Int e.tid);
     ]
    @ extra @ args)

let to_json ?(extra = []) () =
  let evs = events () and dropped = dropped () in
  (* Timestamps are rebased to the earliest buffered event: an epoch-based
     wall clock would otherwise put every event ~10^15 µs from the origin,
     which viewers render poorly and floats print imprecisely. *)
  let t0 = List.fold_left (fun acc e -> min acc e.ts_ns) max_int evs in
  let t0 = if t0 = max_int then 0 else t0 in
  Json.Obj
    ([
       ("traceEvents", Json.List (List.map (json_of_event ~t0) evs));
       ("displayTimeUnit", Json.String "ms");
       (* ring-buffer truncation is part of the export: a consumer (or
          bench/validate) can tell a complete trace from a clipped one *)
       ("dropped", Json.Int dropped);
     ]
    @ extra)

let export ?extra path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Json.to_channel oc (to_json ?extra ()))
