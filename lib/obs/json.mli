(** A minimal JSON tree, encoder and parser — just enough for the
    observability exports (trace files, metric registries, EXPLAIN plans,
    [BENCH_*.json]) and their validation, without pulling an external
    dependency into the engine. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
(** Compact (single-line) rendering with proper string escaping.  Floats are
    written round-trip safe: the shortest decimal text that parses back to
    the same double; non-finite values ([nan], [infinity]) become [null]
    (JSON has no tokens for them); integral floats up to 1e15 print as
    integers. *)

val to_string : t -> string

val to_channel : out_channel -> t -> unit

val parse : string -> (t, string) result
(** Strict-enough parser for everything {!pp} emits (and ordinary JSON
    files): objects, arrays, strings with escapes, ints, floats, booleans,
    null.  Errors carry a byte offset. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the first binding of [k]; [None] otherwise. *)

val to_int : t -> int option
(** [Int n] (or an integral [Float]) as an int. *)

val to_float : t -> float option
val to_list : t -> t list option
val to_str : t -> string option
