type slow = {
  sl_hash : string;
  sl_class : string;
  sl_wall_ns : int;
  sl_answers : int;
  sl_termination : string;
  sl_plan : string;
}

type scatter = { sc_hash : string; sc_est : int; sc_actual : int }

type par_stats = {
  par_queries : int;  (* records that ran with shards *)
  par_measured : int;
      (* sharded records whose busy times were actually measured (clocked
         hosts: imbalance_pct > 0).  0 means every figure below is
         unmeasured, not zero — render as '-'/null, never as a number. *)
  imb_mean : float;  (* mean imbalance_pct over measured records *)
  imb_max : int;
  merge_wait_total_ns : int;
}

type tenant_stats = {
  tn_queries : int;  (* engine query records carrying this tenant *)
  tn_shed : int;  (* admission sheds charged to this tenant *)
  tn_slo : Slo.t;  (* per-class latency over those query records *)
}

type t = {
  total : int;
  slo : Slo.t;
  terminations : (string * int) list;  (* sorted by name *)
  vetted : scatter list;  (* records with an admission estimate *)
  slowest : slow list;  (* wall_ns descending, bounded *)
  par : par_stats;
  tenants : (string * tenant_stats) list;  (* sorted by tenant; [] pre-v3 *)
}

let total t = t.total

let build ?(top = 5) records =
  let slo = Slo.create () in
  let terms = Hashtbl.create 8 in
  let tenants = Hashtbl.create 8 in
  let tenant_slot tn =
    match Hashtbl.find_opt tenants tn with
    | Some slot -> slot
    | None ->
      let slot = (ref 0, ref 0, Slo.create ()) in
      Hashtbl.add tenants tn slot;
      slot
  in
  let vetted = ref [] in
  let par_queries = ref 0 in
  let imb_sum = ref 0 and imb_n = ref 0 and imb_max = ref 0 in
  let merge_wait = ref 0 in
  List.iter
    (fun (r : Audit.record) ->
      Slo.observe slo ~cls:r.query_class ~wall_ns:r.wall_ns ~cpu_ns:r.cpu_ns;
      Hashtbl.replace terms r.termination
        (1 + Option.value ~default:0 (Hashtbl.find_opt terms r.termination));
      (match r.tenant with
      | None -> ()
      | Some tn ->
        let queries, shed, tslo = tenant_slot tn in
        if r.termination = "shed" then incr shed
        else if r.query_class <> "server" then begin
          (* only real query work feeds the tenant latency table: server
             bookkeeping records (errors, drills, the drain marker) would
             poison the percentiles with zero-cost rows *)
          incr queries;
          Slo.observe tslo ~cls:r.query_class ~wall_ns:r.wall_ns ~cpu_ns:r.cpu_ns
        end);
      if r.est_product > 0 then
        vetted := { sc_hash = r.query_hash; sc_est = r.est_product; sc_actual = r.actual_tuples } :: !vetted;
      if r.shards <> [] then begin
        incr par_queries;
        merge_wait := !merge_wait + r.merge_wait_ns;
        if r.imbalance_pct > 0 then begin
          imb_sum := !imb_sum + r.imbalance_pct;
          incr imb_n;
          if r.imbalance_pct > !imb_max then imb_max := r.imbalance_pct
        end
      end)
    records;
  let slowest =
    List.map
      (fun (r : Audit.record) ->
        {
          sl_hash = r.query_hash;
          sl_class = r.query_class;
          sl_wall_ns = r.wall_ns;
          sl_answers = r.answers;
          sl_termination = r.termination;
          sl_plan = r.plan;
        })
      records
    (* sort wall descending, hash ascending as the deterministic tiebreak *)
    |> List.stable_sort (fun a b ->
           match compare b.sl_wall_ns a.sl_wall_ns with 0 -> compare a.sl_hash b.sl_hash | c -> c)
    |> List.filteri (fun i _ -> i < top)
  in
  {
    total = List.length records;
    slo;
    terminations =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) terms []);
    vetted = List.rev !vetted;
    slowest;
    par =
      {
        par_queries = !par_queries;
        par_measured = !imb_n;
        imb_mean = (if !imb_n = 0 then 0. else float_of_int !imb_sum /. float_of_int !imb_n);
        imb_max = !imb_max;
        merge_wait_total_ns = !merge_wait;
      };
    tenants =
      Hashtbl.fold
        (fun tn (queries, shed, tslo) acc ->
          (tn, { tn_queries = !queries; tn_shed = !shed; tn_slo = tslo }) :: acc)
        tenants []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

(* --- admission accuracy ----------------------------------------------- *)

(* actual/est per vetted query: > 1 means the admission layer under-estimated
   the work it let in, the dangerous direction for a multi-tenant server. *)
let admission_summary vetted =
  let n = List.length vetted in
  let under = List.length (List.filter (fun s -> s.sc_actual > s.sc_est) vetted) in
  let worst =
    List.fold_left
      (fun acc s ->
        let r = float_of_int s.sc_actual /. float_of_int (max 1 s.sc_est) in
        if r > acc then r else acc)
      0. vetted
  in
  (n, under, worst)

(* --- text -------------------------------------------------------------- *)

let pp_ns ppf f = Format.fprintf ppf "%.0fns" f

let pp ppf t =
  Format.fprintf ppf "omega_report: %d queries@." t.total;
  Format.fprintf ppf "@.latency by class (wall):@.";
  List.iter
    (fun cls ->
      match Slo.summary t.slo cls with
      | None -> ()
      | Some s ->
        Format.fprintf ppf "  %-18s n=%-4d p50=%a p90=%a p99=%a max=%dns@." cls s.queries pp_ns
          s.wall_p50 pp_ns s.wall_p90 pp_ns s.wall_p99 s.wall_max)
    (Slo.classes t.slo);
  Format.fprintf ppf "@.latency by class (cpu):@.";
  List.iter
    (fun cls ->
      match Slo.summary t.slo cls with
      | None -> ()
      | Some s ->
        Format.fprintf ppf "  %-18s n=%-4d p50=%a p90=%a p99=%a max=%dns@." cls s.queries pp_ns
          s.cpu_p50 pp_ns s.cpu_p90 pp_ns s.cpu_p99 s.cpu_max)
    (Slo.classes t.slo);
  Format.fprintf ppf "@.termination:@.";
  List.iter (fun (k, n) -> Format.fprintf ppf "  %-18s %d@." k n) t.terminations;
  let vetted, under, worst = admission_summary t.vetted in
  Format.fprintf ppf "@.admission accuracy:@.";
  Format.fprintf ppf "  vetted=%d underestimated=%d worst actual/est=%.2f@." vetted under worst;
  Format.fprintf ppf "@.parallel:@.";
  (* clockless hosts measure no busy/wait times: print '-', not a bogus 0 *)
  if t.par.par_measured = 0 then
    Format.fprintf ppf "  sharded=%d imbalance mean=- max=- merge_wait=-@." t.par.par_queries
  else
    Format.fprintf ppf "  sharded=%d imbalance mean=%.0f%% max=%d%% merge_wait=%dns@."
      t.par.par_queries t.par.imb_mean t.par.imb_max t.par.merge_wait_total_ns;
  (* only when some record carries a tenant (v3 server logs): pre-v3
     fixtures render byte-identically *)
  if t.tenants <> [] then begin
    Format.fprintf ppf "@.per-tenant:@.";
    List.iter
      (fun (tn, ts) ->
        Format.fprintf ppf "  %-18s queries=%-4d shed=%d@." tn ts.tn_queries ts.tn_shed;
        List.iter
          (fun cls ->
            match Slo.summary ts.tn_slo cls with
            | None -> ()
            | Some s ->
              Format.fprintf ppf "    %-18s n=%-4d p50=%a p99=%a@." cls s.Slo.queries pp_ns
                s.Slo.wall_p50 pp_ns s.Slo.wall_p99)
          (Slo.classes ts.tn_slo))
      t.tenants
  end;
  Format.fprintf ppf "@.slowest queries:@.";
  List.iter
    (fun s ->
      Format.fprintf ppf "  %s %-18s wall=%dns answers=%d %s@.    plan: %s@." s.sl_hash s.sl_class
        s.sl_wall_ns s.sl_answers s.sl_termination s.sl_plan)
    t.slowest

(* --- json --------------------------------------------------------------- *)

let to_json t =
  let vetted, under, worst = admission_summary t.vetted in
  Json.Obj
    [
      ("queries", Json.Int t.total);
      ("classes", Slo.to_json t.slo);
      ("terminations", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) t.terminations));
      ( "admission",
        Json.Obj
          [
            ("vetted", Json.Int vetted);
            ("underestimated", Json.Int under);
            ("worst_ratio", Json.Float worst);
            ( "scatter",
              Json.List
                (List.map
                   (fun s ->
                     Json.Obj
                       [
                         ("query_hash", Json.String s.sc_hash);
                         ("est", Json.Int s.sc_est);
                         ("actual", Json.Int s.sc_actual);
                       ])
                   t.vetted) );
          ] );
      ( "slowest",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("query_hash", Json.String s.sl_hash);
                   ("class", Json.String s.sl_class);
                   ("wall_ns", Json.Int s.sl_wall_ns);
                   ("answers", Json.Int s.sl_answers);
                   ("termination", Json.String s.sl_termination);
                   ("plan", Json.String s.sl_plan);
                 ])
             t.slowest) );
      ( "parallel",
        Json.Obj
          [
            ("sharded", Json.Int t.par.par_queries);
            ("measured", Json.Int t.par.par_measured);
            ( "imbalance_mean_pct",
              if t.par.par_measured = 0 then Json.Null else Json.Float t.par.imb_mean );
            ( "imbalance_max_pct",
              if t.par.par_measured = 0 then Json.Null else Json.Int t.par.imb_max );
            ( "merge_wait_total_ns",
              if t.par.par_measured = 0 then Json.Null else Json.Int t.par.merge_wait_total_ns );
          ] );
      ( "tenants",
        Json.Obj
          (List.map
             (fun (tn, ts) ->
               ( tn,
                 Json.Obj
                   [
                     ("queries", Json.Int ts.tn_queries);
                     ("shed", Json.Int ts.tn_shed);
                     ("classes", Slo.to_json ts.tn_slo);
                   ] ))
             t.tenants) );
    ]

(* --- regression view ---------------------------------------------------- *)

let delta_pct oldv newv =
  if oldv <= 0. then None else Some (100. *. (newv -. oldv) /. oldv)

let union_classes a b =
  List.sort_uniq compare (Slo.classes a.slo @ Slo.classes b.slo)

let pp_delta ppf = function
  | None -> Format.pp_print_string ppf "n/a"
  | Some d -> Format.fprintf ppf "%+.1f%%" d

let pp_compare ppf (old_, new_) =
  Format.fprintf ppf "omega_report compare: %d -> %d queries@." old_.total new_.total;
  Format.fprintf ppf "@.wall latency by class (new vs old):@.";
  List.iter
    (fun cls ->
      match (Slo.summary old_.slo cls, Slo.summary new_.slo cls) with
      | None, None -> ()
      | Some _, None -> Format.fprintf ppf "  %-18s gone@." cls
      | None, Some _ -> Format.fprintf ppf "  %-18s new class@." cls
      | Some o, Some n ->
        Format.fprintf ppf "  %-18s p50 %a (%a -> %a)  p99 %a (%a -> %a)@." cls pp_delta
          (delta_pct o.wall_p50 n.wall_p50) pp_ns o.wall_p50 pp_ns n.wall_p50 pp_delta
          (delta_pct o.wall_p99 n.wall_p99) pp_ns o.wall_p99 pp_ns n.wall_p99)
    (union_classes old_ new_);
  Format.fprintf ppf "@.termination shifts:@.";
  let keys = List.sort_uniq compare (List.map fst old_.terminations @ List.map fst new_.terminations) in
  List.iter
    (fun k ->
      let g t = Option.value ~default:0 (List.assoc_opt k t.terminations) in
      let o = g old_ and n = g new_ in
      if o <> n then Format.fprintf ppf "  %-18s %d -> %d@." k o n)
    keys

let compare_json old_ new_ =
  let cls_json cls =
    match (Slo.summary old_.slo cls, Slo.summary new_.slo cls) with
    | Some o, Some n ->
      ( cls,
        Json.Obj
          [
            ("wall_p50_old", Json.Float o.wall_p50);
            ("wall_p50_new", Json.Float n.wall_p50);
            ("wall_p99_old", Json.Float o.wall_p99);
            ("wall_p99_new", Json.Float n.wall_p99);
            ( "wall_p50_delta_pct",
              match delta_pct o.wall_p50 n.wall_p50 with None -> Json.Null | Some d -> Json.Float d );
            ( "wall_p99_delta_pct",
              match delta_pct o.wall_p99 n.wall_p99 with None -> Json.Null | Some d -> Json.Float d );
          ] )
    | Some _, None -> (cls, Json.String "gone")
    | None, Some _ -> (cls, Json.String "new")
    | None, None -> (cls, Json.Null)
  in
  Json.Obj
    [
      ("queries_old", Json.Int old_.total);
      ("queries_new", Json.Int new_.total);
      ("classes", Json.Obj (List.map cls_json (union_classes old_ new_)));
      ( "terminations_old",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) old_.terminations) );
      ( "terminations_new",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) new_.terminations) );
    ]
