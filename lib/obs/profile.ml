type bucket_row = { lo : int; hi : int; popped : int; answers : int }
type op_stat = { op : string; op_count : int; op_cost : int }

type t = {
  buckets : bucket_row list;
  drop_visited : int;
  drop_dup : int;
  pruned : int;
  queue_left : int;
  pops : int;
  answers : int;
  ops : op_stat list;
}

(* op name in the report → histogram name in the registry/manifest *)
let op_histograms =
  [
    ("ins", "ops_insert");
    ("del", "ops_delete");
    ("sub", "ops_subst");
    ("relax-sp", "ops_relax_beta");
    ("relax-dr", "ops_relax_gamma");
  ]

let of_metrics m =
  let hist name = Metrics.buckets (Metrics.histogram m name) in
  let cnt name = Metrics.value (Metrics.counter m name) in
  let popped = hist "pop_distance" in
  let answered = hist "answer_distance" in
  (* Align the two histograms on the union of their (lo, hi) bucket keys —
     both use the shared log₂ boundaries, so equal lows mean equal
     buckets. *)
  let keys =
    List.sort_uniq compare (List.map (fun (lo, hi, _) -> (lo, hi)) (popped @ answered))
  in
  let count_in rows (lo, hi) =
    match List.find_opt (fun (l, h, _) -> l = lo && h = hi) rows with
    | Some (_, _, n) -> n
    | None -> 0
  in
  let buckets =
    List.map
      (fun (lo, hi) ->
        { lo; hi; popped = count_in popped (lo, hi); answers = count_in answered (lo, hi) })
      keys
  in
  let pushes = cnt "pushes" in
  let pops = cnt "pops" in
  {
    buckets;
    drop_visited = cnt "drop_visited";
    drop_dup = cnt "drop_dup";
    pruned = cnt "pruned";
    queue_left = max 0 (pushes - pops);
    pops;
    answers = cnt "answers";
    ops =
      List.map
        (fun (op, h) ->
          let hh = Metrics.histogram m h in
          { op; op_count = Metrics.h_count hh; op_cost = Metrics.h_sum hh })
        op_histograms;
  }

let pp_bound ppf b =
  if b = min_int then Format.pp_print_string ppf "-inf"
  else if b = max_int then Format.pp_print_string ppf "inf"
  else Format.pp_print_int ppf b

let pp ppf t =
  Format.fprintf ppf "@[<v>profile:@,";
  Format.fprintf ppf "  distance buckets (tuples popped -> answers emitted):@,";
  if t.buckets = [] then Format.fprintf ppf "    (none)@,";
  List.iter
    (fun b ->
      Format.fprintf ppf "    [%a..%a]: %d popped -> %d answers@," pp_bound b.lo pp_bound b.hi
        b.popped b.answers)
    t.buckets;
  Format.fprintf ppf "  discards: visited-dedup=%d duplicate-final=%d pruned-by-psi=%d \
                      left-in-queue=%d@,"
    t.drop_visited t.drop_dup t.pruned t.queue_left;
  let live_ops = List.filter (fun o -> o.op_count > 0) t.ops in
  if live_ops = [] then Format.fprintf ppf "  operations: none (exact answers only)@,"
  else begin
    Format.fprintf ppf "  operations:@,";
    List.iter
      (fun o -> Format.fprintf ppf "    %s: %d ops, total cost %d@," o.op o.op_count o.op_cost)
      live_ops
  end;
  Format.fprintf ppf "  totals: pops=%d answers=%d@]" t.pops t.answers

let to_json t =
  Json.Obj
    [
      ( "buckets",
        Json.List
          (List.map
             (fun b ->
               Json.Obj
                 [
                   ("lo", if b.lo = min_int then Json.Null else Json.Int b.lo);
                   ("hi", if b.hi = max_int then Json.Null else Json.Int b.hi);
                   ("popped", Json.Int b.popped);
                   ("answers", Json.Int b.answers);
                 ])
             t.buckets) );
      ( "discards",
        Json.Obj
          [
            ("visited_dedup", Json.Int t.drop_visited);
            ("duplicate_final", Json.Int t.drop_dup);
            ("pruned_by_psi", Json.Int t.pruned);
            ("left_in_queue", Json.Int t.queue_left);
          ] );
      ( "ops",
        Json.Obj
          (List.map
             (fun o ->
               (o.op, Json.Obj [ ("count", Json.Int o.op_count); ("cost", Json.Int o.op_cost) ]))
             t.ops) );
      ("pops", Json.Int t.pops);
      ("answers", Json.Int t.answers);
    ]

let of_json j =
  let ( let* ) = Option.bind in
  let int_or k dflt o = match Json.member k o with Some v -> Json.to_int v | None -> Some dflt in
  let bound k o =
    match Json.member k o with
    | Some Json.Null -> Some None
    | Some v -> Option.map Option.some (Json.to_int v)
    | None -> None
  in
  let* bs = Json.member "buckets" j in
  let* bs = Json.to_list bs in
  let* buckets =
    List.fold_right
      (fun b acc ->
        let* acc = acc in
        let* lo = bound "lo" b in
        let* hi = bound "hi" b in
        let* popped = Json.member "popped" b in
        let* popped = Json.to_int popped in
        let* answers = Json.member "answers" b in
        let* answers = Json.to_int answers in
        Some
          ({
             lo = Option.value lo ~default:min_int;
             hi = Option.value hi ~default:max_int;
             popped;
             answers;
           }
          :: acc))
      bs (Some [])
  in
  let* discards = Json.member "discards" j in
  let* drop_visited = int_or "visited_dedup" 0 discards in
  let* drop_dup = int_or "duplicate_final" 0 discards in
  let* pruned = int_or "pruned_by_psi" 0 discards in
  let* queue_left = int_or "left_in_queue" 0 discards in
  let* pops = int_or "pops" 0 j in
  let* answers = int_or "answers" 0 j in
  let ops =
    match Json.member "ops" j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (op, v) ->
          let* op_count = int_or "count" 0 v in
          let* op_cost = int_or "cost" 0 v in
          Some { op; op_count; op_cost })
        fields
    | _ -> []
  in
  Some { buckets; drop_visited; drop_dup; pruned; queue_left; pops; answers; ops }
