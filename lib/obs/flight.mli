(** Parallel flight recorder: an always-on-capable, per-domain scheduling
    event log for the sealed-bucket parallel merge, with an online
    invariant monitor and a crash-safe JSONL dump.

    Each domain records into its own fixed-capacity wraparound ring
    (lock-free for the single writer); events carry a global sequence
    number and a {!Clock} timestamp so the full interleaving can be
    reconstructed by merging rings.  When the recorder is off, [record]
    is a single load — call sites should additionally guard payload
    construction with {!enabled}. *)

val schema_version : int
val env_var : string
(** [OMEGA_FLIGHT] — dump target path, mirroring [Audit.env_var]. *)

(** {1 Events} *)

type input = { i_shard : int; i_last : int; i_state : int }
(** One shard's contribution to a seal bound: its frontier distance and
    state (0 live, 1 done-complete, 2 done-incomplete). *)

type kind =
  | Flow_open of { shards : int; slack : int; label : string }
  | Shard_start
  | Deliver of { dist : int }
  | Park of { qlen : int }
  | Unpark
  | Heartbeat of { qlen : int; last : int }
  | Shard_done of { complete : bool; answers : int }
  | Seal of { bound : int; batch : int; inputs : input list }
  | Emit of { dist : int; x : int; y : int }
  | Stall of { silent_ns : int }
  | Stop
  | Trip of { reason : string }

type event = { seq : int; ts_ns : int; domain : int; flow : int; shard : int; kind : kind }
(** [flow] identifies one parallel merge instance ([-1] for process-level
    events such as governor trips); [shard] is [-1] for consumer-side
    events. *)

val kind_tag : kind -> string
val all_tags : string list
val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit

(** {1 Recorder lifecycle} *)

val enable : ?capacity:int -> ?detail:bool -> unit -> unit
(** Clears all rings and starts recording; [capacity] is per-domain
    (default 4096, clamped to at least 8).  [detail] (default [false])
    additionally records the per-answer events ([Deliver], [Emit]) that
    the always-on level skips to stay off the answer path's critical
    nanoseconds — seal bounds remain fully checkable without them because
    every [Seal] carries its per-shard inputs.  Tests and forensic runs
    enable it; the invariant rules that need per-answer events
    (shard-regression, late-delivery, emit order) only fire with it. *)

val disable : unit -> unit
(** Stops recording but keeps the rings, so a postmortem dump after
    [disable] still sees the run. *)

val enabled : unit -> bool

(** [detail ()] is true when the recorder is on at the detail level: call
    sites guard per-answer event construction with this, everything else
    with {!enabled}. *)
val detail : unit -> bool
val clear : unit -> unit
(** Discards all rings and resets counters. Only call between flows. *)

val new_flow : unit -> int
val record : ?flow:int -> ?shard:int -> kind -> unit
val stall_threshold_ns : int ref
(** A shard silent for longer than this (with a clock installed) gets a
    [Stall] event from the consumer-side watchdog. Default 250ms. *)

(** {1 Reading} *)

val events : unit -> event list
(** Snapshot of all rings merged by sequence number, oldest first. *)

val stats : unit -> int * int
(** [(recorded, dropped)] — total events ever recorded, and how many were
    overwritten by ring wraparound. *)

(** {1 Dump and load} *)

val set_dump_target : string option -> unit
val dump_target : unit -> string option

val dump : string -> int
(** Writes a meta line then one JSONL line per event; returns the number
    of events written. Raises [Sys_error] on an unwritable path. *)

type meta = { m_recorded : int; m_dropped : int }

val load : string -> (meta option * event list * int, string) result
(** Tolerant read back: [(meta, events, skipped_lines)]. Malformed or
    truncated lines are skipped and counted, mirroring [Audit.load]. *)

(** {1 Codec} *)

val to_json : event -> Json.t
val of_json : Json.t -> (event, string) result
val validate : Json.t -> (unit, string) result
val is_meta : Json.t -> bool
val meta_json : recorded:int -> dropped:int -> Json.t

(** {1 Invariant checking} *)

module Check : sig
  type state

  val init : unit -> state

  val step : state -> event -> (string * string) option
  (** Feed one event in interleaving order; returns [Some (rule, detail)]
      on the first violated invariant. Rules: [shard-regression],
      [seal-regression], [seal-overrun], [late-delivery],
      [emit-unsealed], [emit-order]. *)
end

type violation = {
  v_seq : int;
  v_flow : int;
  v_rule : string;
  v_detail : string;
  v_window : event list;
}

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit
val window_around : seq:int -> event list -> event list

(** The online monitor: steps {!Check} on every recorded event. Enabled
    in tests; zero-cost when off (one extra load on the record path). *)
module Monitor : sig
  val enable : unit -> unit
  val disable : unit -> unit
  val enabled : unit -> bool
  val reset : unit -> unit

  val first_violation : unit -> violation option

  val last_dump_path : unit -> string option
  (** Where the automatic dump of the first violation landed, if any. *)

  val assert_ok : unit -> unit
  (** Raises {!Violation} with the first recorded violation, if any. *)
end
