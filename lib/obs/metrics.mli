(** A metrics registry: named monotone counters and log₂-bucketed
    histograms, with text and JSON encoders.

    The engine creates one registry per query stream and registers its
    distribution metrics there (answer-distance, queue depth, edges per
    [Succ] scan, seed-batch latency, join combinations); the scalar
    [Exec_stats] counters are absorbed into the same registry by
    [Exec_stats.record_into], so one [pp]/[to_json] call reports the whole
    execution.  Handles ({!counter}, {!histogram}) are resolved once at open
    time; recording is allocation-free (an array increment), cheap enough to
    stay on unconditionally.

    Names are unique across kinds: registering ["x"] as both a counter and
    a histogram raises [Invalid_argument]. *)

type t

val create : unit -> t

type counter

val counter : t -> string -> counter
(** Get-or-create. *)

val incr : ?by:int -> counter -> unit
val set : counter -> int -> unit
val value : counter -> int

type histogram

val histogram : t -> string -> histogram
(** Get-or-create.  Buckets are powers of two: bucket 0 holds values ≤ 0,
    bucket [i ≥ 1] holds [2{^i-1} … 2{^i}-1]. *)

val observe : histogram -> int -> unit

val bucket_index : int -> int
(** The bucket a value lands in — exposed so tests can pin the boundaries. *)

val bucket_bounds : int -> int * int
(** [(lo, hi)] of a bucket, inclusive.  Bucket 0 is [(min_int, 0)]. *)

val h_count : histogram -> int
val h_sum : histogram -> int
val h_max : histogram -> int

val buckets : histogram -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], ascending. *)

val names : t -> string list
(** All registered metric names, sorted. *)

val merge_into : t -> t -> unit
(** [merge_into acc x]: add [x]'s metrics into [acc] by name — counters
    add, histograms add bucket-wise ([h_max] takes the max).  Metrics
    missing from [acc] are created.
    @raise Invalid_argument on a name registered with different kinds. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
(** [{"name": n, ...}] for counters;
    [{"name": {"count": …, "sum": …, "max": …, "buckets": [[lo, hi, n], …]}}]
    for histograms. *)
