module Graph = Graphstore.Graph

type scale = L1 | L2 | L3 | L4

let all_scales = [ L1; L2; L3; L4 ]

let timelines = function L1 -> 143 | L2 -> 1_201 | L3 -> 5_221 | L4 -> 11_416

let scale_name = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3" | L4 -> "L4"

(* ------------------------------------------------------------------ *)
(* Ontology vocabulary                                                 *)
(* ------------------------------------------------------------------ *)

let episode_tree =
  [
    ("Work Episode", [ "Full-time Work Episode"; "Part-time Work Episode"; "Self-employment Episode" ]);
    ("Study Episode", [ "College Episode"; "University Episode"; "Training Episode" ]);
    ("Other Episode", [ "Gap Episode"; "Voluntary Episode" ]);
  ]

let subject_mids =
  [
    "Mathematical and Computer Sciences";
    "Engineering";
    "Business and Administrative Studies";
    "Languages";
    "Creative Arts and Design";
    "Social Studies";
    "Biological Sciences";
    "Education Studies";
  ]

let subject_leaves mid =
  if mid = "Mathematical and Computer Sciences" then
    [
      "Information Systems"; "Computer Science"; "Software Engineering"; "Artificial Intelligence";
      "Mathematics"; "Statistics"; "Operational Research"; "Informatics";
    ]
  else List.init 8 (fun k -> Printf.sprintf "%s: Area %d" mid (k + 1))

(* Occupation: depth 4, four children per internal node.  Two pinned leaf
   groups carry the query-set occupations. *)
let occupation_group i j k =
  if (i, j, k) = (0, 0, 0) then
    [ "Software Professionals"; "Web Designers"; "Database Administrators"; "IT Technicians" ]
  else if (i, j, k) = (1, 0, 0) then
    [ "Librarians"; "Archivists"; "Curators"; "Records Managers" ]
  else List.init 4 (fun l -> Printf.sprintf "Occupation %d.%d.%d.%d" i j k (l + 1))

let level_tree =
  [
    ("Entry Level Qualifications",
     [ "Entry Certificate"; "Skills for Life"; "Functional Skills Entry"; "Award Entry" ]);
    ("Intermediate Qualifications",
     [ "BTEC Introductory Diploma"; "GCSE Grades A-C"; "NVQ Level 2"; "BTEC First Diploma" ]);
    ("Advanced Qualifications",
     [ "A Level"; "BTEC National Diploma"; "NVQ Level 3"; "Access to HE Diploma" ]);
    ("Higher Education Qualifications",
     [ "Foundation Degree"; "Bachelors Degree"; "Masters Degree"; "Doctorate" ]);
  ]

let sector_leaves =
  [
    "Agriculture"; "Mining"; "Manufacturing"; "Energy"; "Water Supply"; "Construction"; "Retail";
    "Transport"; "Hospitality"; "Information and Communication"; "Finance"; "Real Estate";
    "Professional Services"; "Administrative Services"; "Public Administration"; "Education Sector";
    "Health and Social Work"; "Arts and Entertainment"; "Other Services"; "Domestic Work";
    "Extraterritorial Organisations";
  ]

let build_ontology interner =
  let k = Ontology.create interner in
  List.iter
    (fun (mid, leaves) ->
      Ontology.add_subclass k mid "Episode";
      List.iter (fun leaf -> Ontology.add_subclass k leaf mid) leaves)
    episode_tree;
  List.iter
    (fun mid ->
      Ontology.add_subclass k mid "Subject";
      List.iter (fun leaf -> Ontology.add_subclass k leaf mid) (subject_leaves mid))
    subject_mids;
  for i = 0 to 3 do
    let level1 = Printf.sprintf "Occupation Group %d" (i + 1) in
    Ontology.add_subclass k level1 "Occupation";
    for j = 0 to 3 do
      let level2 = Printf.sprintf "Occupation Group %d.%d" (i + 1) (j + 1) in
      Ontology.add_subclass k level2 level1;
      for kk = 0 to 3 do
        let level3 = Printf.sprintf "Occupation Group %d.%d.%d" (i + 1) (j + 1) (kk + 1) in
        Ontology.add_subclass k level3 level2;
        List.iter (fun leaf -> Ontology.add_subclass k leaf level3) (occupation_group i j kk)
      done
    done
  done;
  List.iter
    (fun (mid, leaves) ->
      Ontology.add_subclass k mid "Education Qualification Level";
      List.iter (fun leaf -> Ontology.add_subclass k leaf mid) leaves)
    level_tree;
  List.iter (fun leaf -> Ontology.add_subclass k leaf "Industry Sector") sector_leaves;
  Ontology.add_subproperty k "next" "isEpisodeLink";
  Ontology.add_subproperty k "prereq" "isEpisodeLink";
  Ontology.add_domain k "next" "Episode";
  Ontology.add_range k "next" "Episode";
  Ontology.add_domain k "prereq" "Episode";
  Ontology.add_range k "prereq" "Episode";
  Ontology.add_domain k "job" "Episode";
  Ontology.add_range k "job" "Occupation";
  Ontology.add_domain k "qualif" "Episode";
  Ontology.add_range k "qualif" "Subject";
  Ontology.add_range k "level" "Education Qualification Level";
  Ontology.add_range k "industry" "Industry Sector";
  k

(* ------------------------------------------------------------------ *)
(* Base timeline specifications                                        *)
(* ------------------------------------------------------------------ *)

type link = Next | Prereq

type episode_spec = {
  kind : [ `Work | `Study ];
  episode_leaf : string;
  event_leaf : string; (* occupation (work) or subject (study) *)
  extra_leaf : string; (* industry sector (work) or qualification level (study) *)
  link : link option; (* link from this episode to its successor *)
}

let work_episode_leaves = List.assoc "Work Episode" episode_tree
let study_episode_leaves = List.assoc "Study Episode" episode_tree

let all_occupation_leaves =
  List.concat
    (List.concat
       (List.init 4 (fun i -> List.concat (List.init 4 (fun j -> List.init 4 (occupation_group i j)))))
    |> List.map (fun x -> x))

let all_subject_leaves = List.concat_map subject_leaves subject_mids

let intermediate_levels = List.assoc "Intermediate Qualifications" level_tree

let non_intermediate_levels =
  List.concat_map (fun (mid, leaves) -> if mid = "Intermediate Qualifications" then [] else leaves) level_tree

(* Study-episode qualification levels: the "Intermediate" sibling group —
   which contains BTEC Introductory Diploma — is only ever used on episodes
   with no outgoing prereq link, so that query Q12 has no exact answers at
   any scale while its RELAX version (which climbs to the sibling levels'
   common parent) finds some. *)
let pick_level rng ~has_prereq_out =
  if has_prereq_out then Rng.pick_list rng non_intermediate_levels
  else if Rng.bool rng 0.4 then Rng.pick_list rng intermediate_levels
  else Rng.pick_list rng non_intermediate_levels

let pick_occupation rng =
  (* "Software Professionals" is deliberately common (the paper's Q3 returns
     58 answers already at L1); the long tail is uniform. *)
  if Rng.bool rng 0.4 then "Software Professionals" else Rng.pick_list rng all_occupation_leaves

let pick_subject rng =
  if Rng.bool rng 0.35 then "Information Systems" else Rng.pick_list rng all_subject_leaves

(* The 21 base timelines.  Timelines 0–4 are the "detailed" ones (12
   episodes); 5–20 the "realistic" ones (6–10).  Two are pinned:
   - timeline 4 carries the unique Q9 pattern: episode 1 -next-> 2 -next->
     3 -prereq-> 4, everything after linked by next, so
     (Alumni 4 Episode 1_1, prereq*.next+.prereq, ?X) has exactly one
     answer;
   - timeline 7 is the only base carrying "Librarians" work episodes, which
     keeps Q10/Q11 answer counts low on small graphs. *)
let base_timelines seed : episode_spec array array =
  let rng = Rng.create seed in
  Array.init 21 (fun t ->
      let len = if t < 5 then 12 else 6 + (t mod 5) in
      let study_prefix = if t = 7 then 0 else len / 2 in
      Array.init len (fun j ->
          let kind = if j < study_prefix then `Study else `Work in
          let is_last = j = len - 1 in
          let link =
            if is_last then None
            else if t = 4 then Some (if j = 2 then Prereq else Next)
            else if t = 7 then Some Next
            else if kind = `Study && j + 1 < study_prefix && Rng.bool rng 0.5 then Some Prereq
            else Some Next
          in
          let episode_leaf =
            match kind with
            | `Work -> Rng.pick_list rng work_episode_leaves
            | `Study -> Rng.pick_list rng study_episode_leaves
          in
          let event_leaf =
            match kind with
            | `Work -> if t = 7 && j mod 2 = 0 then "Librarians" else pick_occupation rng
            | `Study -> pick_subject rng
          in
          let extra_leaf =
            match kind with
            | `Work -> Rng.pick_list rng sector_leaves
            | `Study -> pick_level rng ~has_prereq_out:(link = Some Prereq)
          in
          { kind; episode_leaf; event_leaf; extra_leaf; link }))

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)
(* ------------------------------------------------------------------ *)

(* Rotate [leaf] to its [v]-th sibling (cyclically) — the paper's synthetic
   duplication.  Qualification levels are exempt so the Q12 invariant above
   survives scaling. *)
let rotate_sibling ontology interner leaf v =
  if v = 0 then leaf
  else
    let id = Graphstore.Interner.intern interner leaf in
    match Ontology.super_classes ontology id with
    | [] -> leaf
    | parent :: _ -> (
      let siblings = Ontology.sub_classes ontology parent in
      match List.length siblings with
      | 0 | 1 -> leaf
      | n -> (
        let rec index i = function
          | [] -> 0
          | x :: rest -> if x = id then i else index (i + 1) rest
        in
        let i = index 0 siblings in
        let rotated = List.nth siblings ((i + v) mod n) in
        Graphstore.Interner.name interner rotated))

(* Materialised classification: an edge to the leaf class and to each of its
   ancestors (the transitive closure the paper attributes the growing class
   degrees to). *)
let classify g ontology ~edge_label node leaf =
  let interner = Graph.interner g in
  let id = Graphstore.Interner.intern interner leaf in
  List.iter
    (fun (cls, _) ->
      let class_node = Graph.add_node g (Graphstore.Interner.name interner cls) in
      Graph.add_edge_s g node edge_label class_node)
    (Ontology.ancestors_by_specificity ontology id)

let add_class_nodes g ontology =
  let interner = Graph.interner g in
  List.iter
    (fun cls -> ignore (Graph.add_node g (Graphstore.Interner.name interner cls)))
    (Ontology.classes ontology)

let generate ?(seed = 1404) ~timelines () =
  let g = Graph.create ~initial_nodes:(timelines * 24) () in
  let ontology = build_ontology (Graph.interner g) in
  add_class_nodes g ontology;
  let bases = base_timelines seed in
  let interner = Graph.interner g in
  for t = 0 to timelines - 1 do
    let base = bases.(t mod 21) in
    let v = t / 21 in
    let episode_name j = Printf.sprintf "Alumni %d Episode %d_1" t (j + 1) in
    let episodes = Array.mapi (fun j _ -> Graph.add_node g (episode_name j)) base in
    Array.iteri
      (fun j spec ->
        let episode = episodes.(j) in
        let episode_leaf = rotate_sibling ontology interner spec.episode_leaf v in
        classify g ontology ~edge_label:"type" episode episode_leaf;
        (match spec.link with
        | Some Next -> Graph.add_edge_s g episode "next" episodes.(j + 1)
        | Some Prereq -> Graph.add_edge_s g episode "prereq" episodes.(j + 1)
        | None -> ());
        match spec.kind with
        | `Work ->
          let event = Graph.add_node g (Printf.sprintf "Alumni %d Job %d" t (j + 1)) in
          Graph.add_edge_s g episode "job" event;
          classify g ontology ~edge_label:"type" event (rotate_sibling ontology interner spec.event_leaf v);
          classify g ontology ~edge_label:"industry" event
            (rotate_sibling ontology interner spec.extra_leaf v)
        | `Study ->
          let event = Graph.add_node g (Printf.sprintf "Alumni %d Qualif %d" t (j + 1)) in
          Graph.add_edge_s g episode "qualif" event;
          classify g ontology ~edge_label:"type" event (rotate_sibling ontology interner spec.event_leaf v);
          (* levels are not rotated: see pick_level *)
          classify g ontology ~edge_label:"level" event spec.extra_leaf)
      base
  done;
  Graph.freeze g;
  (g, ontology)

let generate_scale ?seed s = generate ?seed ~timelines:(timelines s) ()

(* ------------------------------------------------------------------ *)
(* The Fig. 4 query set                                                *)
(* ------------------------------------------------------------------ *)

let queries =
  [
    (1, "(Work Episode, type-, ?X)");
    (2, "(Information Systems, type-.qualif-, ?X)");
    (3, "(Software Professionals, type-.job-, ?X)");
    (4, "(?X, job.type, ?Y)");
    (5, "(?X, next+, ?Y)");
    (6, "(?X, prereq+, ?Y)");
    (7, "(?X, next+|(prereq+.next), ?Y)");
    (8, "(Mathematical and Computer Sciences, type.prereq+, ?X)");
    (9, "(Alumni 4 Episode 1_1, prereq*.next+.prereq, ?X)");
    (10, "(Librarians, type-, ?X)");
    (11, "(Librarians, type-.job-.next, ?X)");
    (12, "(BTEC Introductory Diploma, level-.qualif-.prereq, ?X)");
  ]

let stress_queries = [ 3; 8; 9; 10; 11; 12 ]

let query_text id (mode : Core.Query.mode) =
  match List.assoc_opt id queries with
  | None -> invalid_arg (Printf.sprintf "L4all.query_text: unknown query %d" id)
  | Some conjunct ->
    let prefix =
      match mode with Core.Query.Exact -> "" | Core.Query.Approx -> "APPROX " | Core.Query.Relax -> "RELAX "
    in
    let head = if id >= 4 && id <= 7 then "(?X, ?Y)" else "(?X)" in
    Printf.sprintf "%s <- %s%s" head prefix conjunct
