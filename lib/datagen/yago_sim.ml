module Graph = Graphstore.Graph

type params = { scale : float; seed : int }

let default_params = { scale = 0.02; seed = 2015 }

(* Entity populations at scale 1.0 (approximating YAGO CORE). *)
let scaled s full floor = max floor (int_of_float (float_of_int full *. s))

(* ------------------------------------------------------------------ *)
(* Taxonomy                                                            *)
(* ------------------------------------------------------------------ *)

let taxonomy_mids =
  [
    "wordnet_person"; "wordnet_location"; "wordnet_organization"; "wordnet_event";
    "wordnet_artifact"; "wordnet_abstraction";
  ]
  @ List.init 24 (fun k -> Printf.sprintf "wordnet_branch_%d" (k + 1))

(* Pinned leaves needed by the query set and the entity wiring. *)
let pinned_leaves =
  [
    ("wordnet_city", "wordnet_location");
    ("wordnet_country", "wordnet_location");
    ("wordnet_village", "wordnet_location");
    ("wordnet_ziggurat", "wordnet_artifact");
    ("wordnet_castle", "wordnet_artifact");
    ("wordnet_room", "wordnet_artifact");
    ("wordnet_movie", "wordnet_artifact");
    ("wordnet_university", "wordnet_organization");
    ("wordnet_club", "wordnet_organization");
    ("wordnet_battle", "wordnet_event");
    ("wordnet_conference", "wordnet_event");
    ("wordnet_prize", "wordnet_abstraction");
    ("wordnet_currency", "wordnet_abstraction");
    ("wordnet_commodity", "wordnet_abstraction");
    ("wordnet_language", "wordnet_abstraction");
  ]

let person_leaves =
  [ "wordnet_scientist"; "wordnet_politician"; "wordnet_actor"; "wordnet_musician" ]
  @ List.init 16 (fun k -> Printf.sprintf "wordnet_person_kind_%d" (k + 1))

let build_taxonomy k ~leaves_per_mid =
  List.iter (fun mid -> Ontology.add_subclass k mid "wordnet_entity") taxonomy_mids;
  List.iter (fun (leaf, mid) -> Ontology.add_subclass k leaf mid) pinned_leaves;
  List.iter (fun leaf -> Ontology.add_subclass k leaf "wordnet_person") person_leaves;
  (* Generic leaves pad every mid towards the YAGO-like fan-out. *)
  List.iter
    (fun mid ->
      for j = 1 to leaves_per_mid do
        Ontology.add_subclass k (Printf.sprintf "%s_kind_g%d" mid j) mid
      done)
    taxonomy_mids

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* The two property hierarchies: 6 and 2 sub-properties (§4.2).  The larger
   one is the paper's Example 3 hierarchy: location-flavoured properties
   under relationLocatedByObject. *)
let build_property_hierarchies k =
  List.iter
    (fun p -> Ontology.add_subproperty k p "relationLocatedByObject")
    [ "gradFrom"; "happenedIn"; "participatedIn"; "locatedIn"; "isLocatedIn"; "wasBornIn" ];
  List.iter (fun p -> Ontology.add_subproperty k p "personalRelation") [ "influences"; "interestedIn" ];
  Ontology.add_domain k "gradFrom" "wordnet_person";
  Ontology.add_range k "gradFrom" "wordnet_university";
  Ontology.add_domain k "wasBornIn" "wordnet_person";
  Ontology.add_range k "wasBornIn" "wordnet_city";
  Ontology.add_domain k "hasCurrency" "wordnet_country";
  Ontology.add_range k "hasCurrency" "wordnet_currency";
  Ontology.add_domain k "actedIn" "wordnet_actor";
  Ontology.add_range k "actedIn" "wordnet_movie";
  Ontology.add_domain k "playsFor" "wordnet_person";
  Ontology.add_range k "playsFor" "wordnet_club"

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let generate ?(params = default_params) () =
  let { scale; seed } = params in
  let rng = Rng.create seed in
  let g = Graph.create ~initial_nodes:(scaled scale 3_110_056 4096) () in
  let k = Ontology.create (Graph.interner g) in
  let leaves_per_mid = scaled scale 900 10 in
  build_taxonomy k ~leaves_per_mid;
  build_property_hierarchies k;
  (* Class nodes must exist in the data graph for typed instances and for
     RELAX's GetAncestors seeding. *)
  List.iter
    (fun cls -> ignore (Graph.add_node g (Graphstore.Interner.name (Graph.interner g) cls)))
    (Ontology.classes k);
  let classify node leaf =
    let interner = Graph.interner g in
    let id = Graphstore.Interner.intern interner leaf in
    List.iter
      (fun (cls, _) ->
        Graph.add_edge_s g node "type" (Graph.add_node g (Graphstore.Interner.name interner cls)))
      (Ontology.ancestors_by_specificity k id)
  in

  (* --- populations ------------------------------------------------- *)
  let n_persons = scaled scale 1_200_000 600
  and n_cities = scaled scale 50_000 120
  and n_countries = 200
  and n_institutions = scaled scale 15_000 60
  and n_events = scaled scale 60_000 200
  and n_buildings = scaled scale 600 12
  and n_movies = scaled scale 60_000 120
  and n_clubs = scaled scale 10_000 40
  and n_prizes = scaled scale 2_000 25
  and n_currencies = 150
  and n_commodities = 300
  and n_languages = 100 in

  let make prefix pick_leaf n =
    Array.init n (fun i ->
        let node = Graph.add_node g (Printf.sprintf "%s_%d" prefix i) in
        classify node (pick_leaf i);
        node)
  in
  let persons = make "Person" (fun _ -> Rng.pick_list rng person_leaves) n_persons in
  let cities = make "City" (fun _ -> "wordnet_city") n_cities in
  let countries = make "Country" (fun _ -> "wordnet_country") n_countries in
  let institutions = make "University" (fun _ -> "wordnet_university") n_institutions in
  let events =
    make "Event" (fun i -> if i mod 2 = 0 then "wordnet_battle" else "wordnet_conference") n_events
  in
  let buildings =
    make "Building" (fun i -> if i mod 2 = 0 then "wordnet_ziggurat" else "wordnet_castle") n_buildings
  in
  let movies = make "Movie" (fun _ -> "wordnet_movie") n_movies in
  let clubs = make "Club" (fun _ -> "wordnet_club") n_clubs in
  let prizes = make "Prize" (fun _ -> "wordnet_prize") n_prizes in
  let currencies = make "Currency" (fun _ -> "wordnet_currency") n_currencies in
  let commodities = make "Commodity" (fun _ -> "wordnet_commodity") n_commodities in
  let languages = make "Language" (fun _ -> "wordnet_language") n_languages in

  (* Zipf-skewed hubs: the first-ranked city/country/institution are the
     biggest, which is where the pinned landmarks live. *)
  let city_z = Zipf.create ~n:n_cities ~alpha:0.9 in
  let country_z = Zipf.create ~n:n_countries ~alpha:1.0 in
  let inst_z = Zipf.create ~n:n_institutions ~alpha:0.9 in
  let club_z = Zipf.create ~n:n_clubs ~alpha:0.9 in
  let pick_city () = cities.(Zipf.sample city_z rng) in
  let pick_country () = countries.(Zipf.sample country_z rng) in
  let pick_institution () = institutions.(Zipf.sample inst_z rng) in
  let edge src lbl dst = Graph.add_edge_s g src lbl dst in

  (* --- geography ---------------------------------------------------- *)
  Array.iter (fun city -> edge city "locatedIn" (pick_country ())) cities;
  Array.iteri
    (fun i city ->
      (* flight-style mesh with hubs, for Q5's large fan-out *)
      let connections = 2 + Rng.int rng 6 in
      for _ = 1 to connections do
        let other = cities.(Zipf.sample city_z rng) in
        if other <> city then edge city "isConnectedTo" other
      done;
      ignore i)
    cities;
  Array.iter
    (fun inst ->
      let city = pick_city () in
      edge inst "locatedIn" city;
      if Rng.bool rng 0.5 then edge inst "locatedIn" (pick_country ()))
    institutions;
  Array.iteri
    (fun i b ->
      (* Ziggurats (even indices) sit at dedicated ancient sites with no
         other connections, matching their sparse neighbourhoods in YAGO —
         this keeps Q3's distance-1 APPROX answers rare.  Castles (odd
         indices) are in well-connected cities and contain rooms: nothing is
         located inside a ziggurat, so Q3 is empty exactly, but its RELAX
         version (which climbs to the buildings' common super-class) finds
         the rooms at distance one, as in the paper. *)
      if i mod 2 = 0 then begin
        let site = Graph.add_node g (Printf.sprintf "Ancient_Site_%d" i) in
        classify site "wordnet_village";
        edge b "isLocatedIn" site
      end
      else begin
        edge b "isLocatedIn" (if Rng.bool rng 0.7 then pick_city () else pick_country ());
        ignore i
      end;
      if i mod 2 = 1 then
        for r = 1 to 15 + Rng.int rng 10 do
          let room = Graph.add_node g (Printf.sprintf "Room_%d_of_Building_%d" r i) in
          classify room "wordnet_room";
          edge room "locatedIn" b
        done)
    buildings;
  Array.iter
    (fun ev ->
      edge ev "isLocatedIn" (pick_country ());
      edge ev "happenedIn" (if Rng.bool rng 0.98 then pick_city () else Rng.pick rng buildings))
    events;

  (* --- people -------------------------------------------------------- *)
  Array.iter
    (fun p ->
      if Rng.bool rng 0.6 then edge p "wasBornIn" (pick_city ());
      if Rng.bool rng 0.15 then edge p "bornIn" (pick_city ());
      if Rng.bool rng 0.3 then edge p "livesIn" (pick_city ());
      (* some people live "in a country" directly, as in YAGO *)
      if Rng.bool rng 0.02 then edge p "livesIn" (pick_country ());
      if Rng.bool rng 0.2 then edge p "isCitizenOf" (pick_country ());
      if Rng.bool rng 0.2 then edge p "diedIn" (pick_city ());
      if Rng.bool rng 0.25 then edge p "marriedTo" (Rng.pick rng persons);
      if Rng.bool rng 0.3 then
        for _ = 1 to 1 + Rng.int rng 2 do
          edge p "hasChild" (Rng.pick rng persons)
        done;
      if Rng.bool rng 0.25 then edge p "gradFrom" (pick_institution ());
      if Rng.bool rng 0.02 then edge p "hasWonPrize" (Rng.pick rng prizes);
      if Rng.bool rng 0.03 then edge p "playsFor" (clubs.(Zipf.sample club_z rng));
      if Rng.bool rng 0.05 then edge p "participatedIn" (Rng.pick rng events);
      if Rng.bool rng 0.1 then edge p "worksAt" (pick_institution ());
      if Rng.bool rng 0.02 then edge p "hasAcademicAdvisor" (Rng.pick rng persons);
      if Rng.bool rng 0.02 then edge p "interestedIn" (Rng.pick rng movies);
      if Rng.bool rng 0.01 then edge p "influences" (Rng.pick rng persons))
    persons;

  (* [married] forms disjoint pairs only — no chains — so query Q4's
     [married.married+] sub-path has no exact matches at any scale. *)
  let half = Array.length persons / 2 in
  for i = 0 to (n_persons / 100) - 1 do
    let a = persons.(i * 2) and b = persons.((i * 2) + 1) in
    if i * 2 + 1 < half then edge a "married" b
  done;

  (* --- movies, trade, countries -------------------------------------- *)
  Array.iter
    (fun m ->
      edge (Rng.pick rng persons) "directed" m;
      for _ = 1 to 3 + Rng.int rng 8 do
        edge (Rng.pick rng persons) "actedIn" m
      done;
      if Rng.bool rng 0.3 then edge (Rng.pick rng persons) "created" m;
      if Rng.bool rng 0.3 then edge (Rng.pick rng persons) "wrote" m;
      if Rng.bool rng 0.3 then edge (Rng.pick rng persons) "produced" m)
    movies;
  Array.iteri
    (fun i c ->
      edge c "hasCurrency" currencies.(i mod n_currencies);
      edge c "hasCapital" (pick_city ());
      edge c "hasOfficialLanguage" languages.(i mod n_languages);
      for _ = 1 to 2 + Rng.int rng 6 do
        edge c "imports" (Rng.pick rng commodities)
      done;
      for _ = 1 to 2 + Rng.int rng 6 do
        edge c "exports" (Rng.pick rng commodities)
      done;
      if Rng.bool rng 0.4 then edge c "dealsWith" (pick_country ());
      (* countries own castles (odd indices), never ziggurats: a country's
         huge locatedIn fan-in would otherwise flood Q3's distance-1 answers *)
      (if Rng.bool rng 0.1 then
         let b = Rng.int rng (Array.length buildings / 2) in
         edge c "owns" buildings.((2 * b) + 1));
      (* literal-valued YAGO properties, represented as value nodes *)
      let value suffix = Graph.add_node g (Printf.sprintf "Value_%s_%d" suffix i) in
      edge c "hasWebsite" (value "website");
      edge c "hasMotto" (value "motto");
      edge c "hasArea" (value "area");
      edge c "hasPopulation" (value "population");
      if i + 1 < n_countries then edge c "hasNeighbor" countries.(i + 1))
    countries;

  (* --- pinned landmarks ---------------------------------------------- *)
  (* UK: the top-ranked country, renamed.  Note: nodes already exist, so we
     pin by dedicated nodes instead where renaming would be needed. *)
  let uk = Graph.add_node g "UK" in
  classify uk "wordnet_country";
  edge uk "hasCurrency" currencies.(0);
  (* a share of cities, institutions, events is UK-based *)
  Array.iteri (fun i c -> if i mod 7 = 3 then edge c "locatedIn" uk) cities;
  Array.iteri (fun i inst -> if i mod 5 = 2 then edge inst "locatedIn" uk) institutions;
  Array.iteri (fun i ev -> if i mod 6 = 1 then edge ev "isLocatedIn" uk) events;
  Array.iteri (fun i b -> if i mod 6 = 3 then edge b "isLocatedIn" uk) buildings;
  Array.iteri (fun i p -> if i mod 83 = 7 then edge p "livesIn" uk) persons;

  (* Halle (Q1): a city with plenty of born-in links. *)
  let halle = Graph.add_node g "Halle_Saxony-Anhalt" in
  classify halle "wordnet_city";
  edge halle "locatedIn" countries.(1);
  Array.iteri
    (fun i p ->
      if i mod 997 = 11 then begin
        edge p "bornIn" halle;
        if Rng.bool rng 0.5 then edge p "marriedTo" (Rng.pick rng persons)
      end)
    persons;

  (* Li Peng (Q2): two children, both graduates of a dedicated university
     with a large alumni body of which exactly two won a prize. *)
  let li_peng = Graph.add_node g "Li_Peng" in
  classify li_peng "wordnet_politician";
  let li_university = Graph.add_node g "Li_University" in
  classify li_university "wordnet_university";
  edge li_university "locatedIn" (pick_city ());
  let child name =
    let c = Graph.add_node g name in
    classify c "wordnet_politician";
    edge li_peng "hasChild" c;
    edge c "gradFrom" li_university;
    c
  in
  ignore (child "Li_Child_1");
  ignore (child "Li_Child_2");
  let alumni_count = max 150 (scaled scale 4_000 150) in
  for i = 0 to alumni_count - 1 do
    let a = Graph.add_node g (Printf.sprintf "Li_Alumnus_%d" i) in
    classify a "wordnet_scientist";
    edge a "gradFrom" li_university;
    edge a "wasBornIn" (pick_city ());
    if i < 2 then edge a "hasWonPrize" prizes.(i mod n_prizes)
  done;

  (* Annie Haslam (Q8): a musician among many, with movies to reach. *)
  let annie = Graph.add_node g "Annie Haslam" in
  classify annie "wordnet_musician";
  edge annie "actedIn" (Rng.pick rng movies);
  Graph.freeze g;
  (g, k)

(* ------------------------------------------------------------------ *)
(* The Fig. 9 query set                                                *)
(* ------------------------------------------------------------------ *)

let queries =
  [
    (1, "(Halle_Saxony-Anhalt, bornIn-.marriedTo.hasChild, ?X)");
    (2, "(Li_Peng, hasChild.gradFrom.gradFrom-.hasWonPrize, ?X)");
    (3, "(wordnet_ziggurat, type-.locatedIn-, ?X)");
    (4, "(?X, directed.married.married+.playsFor, ?Y)");
    (5, "(?X, isConnectedTo.wasBornIn, ?Y)");
    (6, "(?X, imports.exports-, ?Y)");
    (7, "(wordnet_city, type-.happenedIn-.participatedIn-, ?X)");
    (8, "(Annie Haslam, type.type-.actedIn, ?X)");
    (9, "(UK, (livesIn-.hasCurrency)|(locatedIn-.gradFrom), ?X)");
  ]

let stress_queries = [ 2; 3; 4; 5; 9 ]

let query_text id (mode : Core.Query.mode) =
  match List.assoc_opt id queries with
  | None -> invalid_arg (Printf.sprintf "Yago_sim.query_text: unknown query %d" id)
  | Some conjunct ->
    let prefix =
      match mode with Core.Query.Exact -> "" | Core.Query.Approx -> "APPROX " | Core.Query.Relax -> "RELAX "
    in
    let head = if id = 4 || id = 5 || id = 6 then "(?X, ?Y)" else "(?X)" in
    Printf.sprintf "%s <- %s%s" head prefix conjunct
