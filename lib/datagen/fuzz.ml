(* Structure-aware fuzz input generation for the three Omega parsers.

   Everything here produces STRINGS only — the module deliberately does
   not depend on the parsers it targets, so the corpus generator cannot
   drift towards "whatever the parser accepts today".  Three tiers per
   grammar, mirroring what hostile inputs look like in practice:

   - [valid]: well-formed by construction (the parser must accept);
   - [near-valid]: a valid input with a few byte-level mutations (the
     parser must reject with a typed error, never an escaping exception);
   - [mangled]: raw bytes (ditto);

   plus adversarial shapes targeting known resource hazards: deeply nested
   parentheses, long alternation/concatenation chains, oversized N-Triples
   lines and conjunct floods.  The driver ([bin/omega_fuzz.ml]) and the
   regression replay ([test/test_fuzz.ml]) assert the contract; this
   module only manufactures trouble.  All randomness flows from [Rng], so
   a seed reproduces a failing input exactly. *)

type case =
  | Regex_case of string
  | Query_case of string
  | Nt_case of string
  | Server_case of string

let case_label = function
  | Regex_case _ -> "regex"
  | Query_case _ -> "query"
  | Nt_case _ -> "nt"
  | Server_case _ -> "server"

let case_input = function Regex_case s | Query_case s | Nt_case s | Server_case s -> s

(* --- valid inputs ----------------------------------------------------- *)

let labels = [| "a"; "b"; "c"; "knows"; "worksAt"; "livesIn"; "type"; "p'"; "q0"; "_" |]

let regex_atom rng =
  if Rng.bool rng 0.08 then "<eps>" else Rng.pick rng labels

let rec regex_string_depth rng depth buf =
  if depth <= 0 then Buffer.add_string buf (regex_atom rng)
  else
    match Rng.int rng 7 with
    | 0 ->
      regex_string_depth rng (depth - 1) buf;
      Buffer.add_char buf '|';
      regex_string_depth rng (depth - 1) buf
    | 1 ->
      regex_string_depth rng (depth - 1) buf;
      Buffer.add_char buf '.';
      regex_string_depth rng (depth - 1) buf
    | 2 | 3 ->
      Buffer.add_char buf '(';
      regex_string_depth rng (depth - 1) buf;
      Buffer.add_char buf ')';
      Buffer.add_string buf (Rng.pick rng [| "*"; "+"; "-"; "" |])
    | _ -> Buffer.add_string buf (regex_atom rng)

let regex_string rng =
  let buf = Buffer.create 64 in
  regex_string_depth rng (1 + Rng.int rng 5) buf;
  Buffer.contents buf

let term_string rng =
  match Rng.int rng 4 with
  | 0 -> "?X"
  | 1 -> "?Y"
  | 2 -> "?Z"
  | _ -> Rng.pick rng [| "N0"; "N1"; "C0"; "UK"; "Work Episode" |]

let conjunct_string rng =
  let mode = Rng.pick rng [| ""; ""; "APPROX "; "RELAX " |] in
  Printf.sprintf "%s(%s, %s, %s)" mode (term_string rng) (regex_string rng) (term_string rng)

let query_string rng =
  let n_conj = 1 + Rng.int rng 3 in
  let conjuncts = List.init n_conj (fun _ -> conjunct_string rng) in
  let head =
    match Rng.int rng 3 with 0 -> "(?X)" | 1 -> "(?X, ?Y)" | _ -> "(?Y)"
  in
  head ^ " <- " ^ String.concat ", " conjuncts

let nt_term rng buf =
  Buffer.add_char buf '<';
  let name = Rng.pick rng [| "n1"; "n2"; "city"; "p"; "sc"; "sp"; "dom"; "range"; "a>b"; "x\\y" |] in
  String.iter
    (fun c ->
      match c with
      | '>' | '\\' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | c -> Buffer.add_char buf c)
    name;
  Buffer.add_char buf '>'

let ntriples_doc rng =
  let buf = Buffer.create 256 in
  let n_lines = 1 + Rng.int rng 12 in
  for _ = 1 to n_lines do
    (match Rng.int rng 10 with
    | 0 -> Buffer.add_string buf "# a comment"
    | 1 -> () (* blank line *)
    | _ ->
      nt_term rng buf;
      Buffer.add_char buf ' ';
      nt_term rng buf;
      Buffer.add_char buf ' ';
      nt_term rng buf;
      Buffer.add_string buf " .");
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* --- mutation --------------------------------------------------------- *)

(* A handful of byte-level edits: flip, insert, delete, truncate,
   duplicate a slice.  Applied to valid inputs this yields the
   "near-valid" tier — syntactically plausible garbage. *)
let mangle rng s =
  let s = ref (Bytes.of_string s) in
  let edits = 1 + Rng.int rng 4 in
  for _ = 1 to edits do
    let b = !s in
    let n = Bytes.length b in
    if n > 0 then
      match Rng.int rng 5 with
      | 0 ->
        (* flip one byte to a printable or control character *)
        Bytes.set b (Rng.int rng n) (Char.chr (Rng.int rng 256))
      | 1 ->
        (* insert a structural character where it hurts *)
        let c = Rng.pick rng [| '('; ')'; '|'; '.'; ','; '<'; '>'; '?'; '\\'; '\000' |] in
        let i = Rng.int rng (n + 1) in
        s := Bytes.concat Bytes.empty [ Bytes.sub b 0 i; Bytes.make 1 c; Bytes.sub b i (n - i) ]
      | 2 ->
        (* delete a byte *)
        let i = Rng.int rng n in
        s := Bytes.concat Bytes.empty [ Bytes.sub b 0 i; Bytes.sub b (i + 1) (n - i - 1) ]
      | 3 ->
        (* truncate *)
        s := Bytes.sub b 0 (Rng.int rng n)
      | _ ->
        (* duplicate a slice *)
        let i = Rng.int rng n in
        let len = Rng.int rng (n - i) in
        s := Bytes.concat Bytes.empty [ b; Bytes.sub b i len ]
  done;
  Bytes.to_string !s

let random_bytes rng =
  let n = Rng.int rng 64 in
  String.init n (fun _ -> Char.chr (Rng.int rng 256))

(* --- server protocol frames ------------------------------------------- *)

let json_string s =
  let buf = Buffer.create (String.length s + 8) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* A request frame for the query server's line protocol: mostly plausible
   objects (sometimes with wrong-typed fields, unknown ops, out-of-range
   budgets, empty or oversized tenants) around a generated query.  The
   server's contract — one typed JSON response per frame, never an
   escaping exception — is asserted by the driver. *)
let server_frame rng =
  let q = if Rng.bool rng 0.1 then mangle rng (query_string rng) else query_string rng in
  let fields = ref [] in
  let add f = fields := f :: !fields in
  if Rng.bool rng 0.7 then
    add
      (match Rng.int rng 3 with
      | 0 -> Printf.sprintf "\"id\":%d" (Rng.int rng 1_000)
      | 1 -> Printf.sprintf "\"id\":%s" (json_string "req-x")
      | _ -> "\"id\":null");
  (match Rng.int rng 8 with
  | 0 -> ()
  | 1 -> add "\"op\":\"ping\""
  | 2 -> add "\"op\":\"sleep\""
  | 3 -> add "\"op\":\"nope\""
  | 4 -> add "\"op\":7"
  | _ -> add "\"op\":\"query\"");
  (match Rng.int rng 6 with
  | 0 -> ()
  | 1 -> add "\"tenant\":\"\""
  | 2 -> add (Printf.sprintf "\"tenant\":%s" (json_string (String.make (60 + Rng.int rng 10) 't')))
  | 3 -> add "\"tenant\":false"
  | _ -> add (Printf.sprintf "\"tenant\":\"t%d\"" (Rng.int rng 4)));
  if Rng.bool rng 0.9 then add (Printf.sprintf "\"query\":%s" (json_string q));
  (match Rng.int rng 5 with
  | 0 -> add (Printf.sprintf "\"limit\":%d" (Rng.int rng 40 - 5))
  | 1 -> add "\"limit\":\"ten\""
  | _ -> ());
  if Rng.bool rng 0.3 then add (Printf.sprintf "\"timeout_ms\":%d" (Rng.int rng 100));
  if Rng.bool rng 0.2 then add (Printf.sprintf "\"max_tuples\":%d" (1 + Rng.int rng 5_000));
  if Rng.bool rng 0.2 then add (Printf.sprintf "\"ms\":%d" (Rng.int rng 30));
  if Rng.bool rng 0.15 then add "\"junk\":[1,2,{\"k\":false}]";
  "{" ^ String.concat "," !fields ^ "}"

(* --- adversarial shapes ----------------------------------------------- *)

let deep_parens rng =
  let depth = 15_000 + Rng.int rng 40_000 in
  String.concat "" [ String.make depth '('; "a"; String.make depth ')' ]

let long_chain rng =
  let sep = if Rng.bool rng 0.5 then "|" else "." in
  let n = 15_000 + Rng.int rng 40_000 in
  String.concat sep (List.init n (fun _ -> "a"))

let conjunct_flood rng =
  let n = 11_000 + Rng.int rng 5_000 in
  "(?X) <- " ^ String.concat ", " (List.init n (fun _ -> "(?X, a, ?Y)"))

let oversized_line rng =
  let extra = Rng.int rng 4096 in
  let big = String.make ((1 lsl 20) + 1 + extra) 'x' in
  Printf.sprintf "<n1> <p> <n2> .\n<%s> <p> <n3> .\n<n3> <p> <n4> .\n" big

(* --- the mixed stream ------------------------------------------------- *)

let case rng =
  match Rng.int rng 100 with
  (* valid tier: the parser must accept *)
  | x when x < 13 -> Regex_case (regex_string rng)
  | x when x < 26 -> Query_case (query_string rng)
  | x when x < 39 -> Nt_case (ntriples_doc rng)
  | x when x < 46 -> Server_case (server_frame rng)
  (* near-valid tier: typed rejection required *)
  | x when x < 57 -> Regex_case (mangle rng (regex_string rng))
  | x when x < 68 -> Query_case (mangle rng (query_string rng))
  | x when x < 79 -> Nt_case (mangle rng (ntriples_doc rng))
  | x when x < 83 -> Server_case (mangle rng (server_frame rng))
  (* mangled tier: raw bytes at every parser *)
  | x when x < 87 -> Regex_case (random_bytes rng)
  | x when x < 90 -> Query_case (random_bytes rng)
  | x when x < 93 -> Nt_case (random_bytes rng)
  | x when x < 95 -> Server_case (random_bytes rng)
  (* adversarial tier: resource hazards *)
  | 95 | 96 -> Regex_case (deep_parens rng)
  | 97 -> Regex_case (long_chain rng)
  | 98 -> Query_case (conjunct_flood rng)
  | _ -> Nt_case (oversized_line rng)
