(** Structure-aware fuzz input generation for the regex, query and
    N-Triples parsers.

    Produces strings only (no dependency on the parsers under test): a
    weighted mix of valid-by-construction inputs, byte-mutated near-valid
    inputs, raw bytes, and adversarial resource-hazard shapes (deep paren
    nesting, long [|]/[.] chains, conjunct floods, oversized N-Triples
    lines).  Deterministic per {!Rng} seed, so any failing input is
    reproducible from its seed.  The contract — every parser returns a
    typed error or a value, never an escaping exception or
    [Stack_overflow] — is asserted by [bin/omega_fuzz.ml] and replayed
    over the crash corpus by [test/test_fuzz.ml]. *)

type case =
  | Regex_case of string  (** feed to [Rpq_regex.Parser.parse_result] *)
  | Query_case of string  (** feed to [Core.Query_parser.parse_result] *)
  | Nt_case of string  (** feed to [Ntriples.Nt.read_string_report] *)
  | Server_case of string
      (** feed to [Server.Daemon.handle_request] — a request frame for the
          query server's line protocol *)

val case_label : case -> string
(** ["regex"] | ["query"] | ["nt"] | ["server"] — the corpus file-name
    prefix. *)

val case_input : case -> string

val case : Rng.t -> case
(** One input from the weighted mixed stream (~46% valid, ~37% mutated,
    ~12% raw bytes, ~5% adversarial). *)

val regex_string : Rng.t -> string
(** A valid regular expression (the parser must accept it). *)

val query_string : Rng.t -> string
(** A syntactically valid CRP query string (semantic validation — e.g.
    head variables appearing in the body — may still reject it, with a
    typed error). *)

val ntriples_doc : Rng.t -> string
(** A well-formed N-Triples document (possibly with comments/blank
    lines). *)

val server_frame : Rng.t -> string
(** A query-server request frame: a mostly-plausible JSON object around a
    generated query — sometimes with wrong-typed fields, unknown ops,
    out-of-range budgets, or an empty/oversized tenant, so the typed-error
    surface of the protocol decoder gets exercised alongside the happy
    path. *)

val mangle : Rng.t -> string -> string
(** A few random byte-level edits (flip, structural-char insert, delete,
    truncate, slice duplication). *)
