(** Weighted non-deterministic finite automata over edge-label alphabets.

    This is the paper's automaton representation (§3.3): a set of weighted
    transitions [(s, a, c, t)] where [s]/[t] are states, [a] a transition
    label and [c] a non-negative cost, plus weighted final states (the extra
    final weight appears when ε-transitions of positive cost are removed, cf.
    Droste–Kuich–Vogler).

    Transition labels generalise plain symbols to the forms the APPROX and
    RELAX transformations need. *)

type dir = Rpq_regex.Regex.dir = Fwd | Bwd

type tlabel =
  | Eps  (** ε — consumed by {!Eps.remove} before evaluation *)
  | Sym of dir * int  (** one edge with the given interned label *)
  | Any
      (** the wildcard [*]: any label in [Sigma ∪ {type}], either direction —
          the compact encoding of APPROX insertion/substitution transitions *)
  | Any_dir of dir
      (** any label, fixed direction — the regex wildcard [_] / [_-] *)
  | Sub_closure of dir * int array
      (** any label among the given set: a relaxed super-property matches the
          RDFS down-closure of its sub-properties *)
  | Type_to of int
      (** a [type] edge whose target is the given class-node oid — RELAX
          rule (ii), replacing a property by [type] into its domain/range *)

type op =
  | Insert  (** APPROX insertion — traverse one extra edge (§3.2) *)
  | Delete  (** APPROX deletion — skip one regex symbol *)
  | Subst  (** APPROX substitution — traverse a different edge *)
  | Super_prop of int
      (** RELAX rule (iii): replace a property by a super-property [depth]
          levels up the ontology (§2.3); cost is [depth × beta] *)
  | Type_edge
      (** RELAX rule (ii): replace a property edge by a [type] edge into its
          domain/range class *)

type transition = { lbl : tlabel; cost : int; dst : int; ops : (op * int) list }
(** [ops] records which flexible operations created this transition, each
    paired with its own cost contribution.  The Thompson construction emits
    [ops = []]; the APPROX/RELAX transforms tag the transitions they add, and
    ε-removal composes the tags of the ε-prefix into the surviving
    transition.  Invariant: the op costs of a transition sum to its flexible
    surcharge (exact transitions contribute cost 0 and carry no ops), which
    is what lets a witness's edit script sum exactly to the answer
    distance. *)

type t

val create : unit -> t
(** An automaton with a single (initial, non-final) state 0. *)

val fresh_state : t -> int

val n_states : t -> int

val initial : t -> int

val set_initial : t -> int -> unit

val add_transition : ?ops:(op * int) list -> t -> int -> tlabel -> int -> int -> unit
(** [add_transition ?ops a src lbl cost dst].  [ops] defaults to [[]] (an
    exact transition).
    @raise Invalid_argument if [cost < 0]. *)

val set_final : ?ops:(op * int) list -> t -> int -> int -> unit
(** [set_final ?ops a s weight] marks [s] final; if already final the minimum
    weight is kept (together with its ops). *)

val clear_final : t -> int -> unit

val is_final : t -> int -> bool

val final_weight : t -> int -> int option

val final_ops : t -> int -> (op * int) list
(** The operations behind a final weight ([[]] when the state is not final or
    the weight is exact); composed by ε-removal like transition ops. *)

val finals : t -> (int * int) list
(** All [(state, weight)] pairs, sorted by state. *)

val out : t -> int -> transition list
(** Transitions leaving a state — the paper's [NextStates]. *)

val iter_transitions : t -> (int -> transition -> unit) -> unit

val n_transitions : t -> int

val normalize : t -> unit
(** Normalises the internal transition lists: sorts each state's transitions
    by label (so that identical labels are adjacent, enabling the [Succ]
    neighbour-cache of §3.4) and drops dominated duplicates (same label and
    destination at higher cost). *)

val has_eps : t -> bool

val copy : t -> t

val pp_tlabel : (int -> string) -> Format.formatter -> tlabel -> unit
(** Renders one transition label; the argument renders interned label ids. *)

val op_name : op -> string
(** Short stable name ("ins", "del", "sub", "relax-sp", "relax-dr") — used by
    the profile's per-operation histograms and the witness renderer. *)

val pp_op : Format.formatter -> op * int -> unit
(** Renders one tagged operation with its cost, e.g. [sub(+1)] or
    [relax-sp^2(+4)]. *)

val pp : ?name:(int -> string) -> Format.formatter -> t -> unit
(** Debug printer; [name] renders interned label ids. *)
