let transform ~ins ~del ~sub m =
  let a = Nfa.copy m in
  (* Edits apply to the original transitions only: collect them first so the
     added wildcard/ε transitions are not themselves edited (which would
     allow paying twice for one position). *)
  let originals = ref [] in
  Nfa.iter_transitions m (fun s tr -> originals := (s, tr) :: !originals);
  for s = 0 to Nfa.n_states m - 1 do
    Nfa.add_transition ~ops:[ (Nfa.Insert, ins) ] a s Nfa.Any ins s
  done;
  List.iter
    (fun (s, (tr : Nfa.transition)) ->
      match tr.lbl with
      | Nfa.Eps -> ()
      | Nfa.Sym _ | Nfa.Any_dir _ | Nfa.Any | Nfa.Sub_closure _ | Nfa.Type_to _ ->
        Nfa.add_transition ~ops:(tr.ops @ [ (Nfa.Delete, del) ]) a s Nfa.Eps (tr.cost + del) tr.dst;
        Nfa.add_transition ~ops:(tr.ops @ [ (Nfa.Subst, sub) ]) a s Nfa.Any (tr.cost + sub) tr.dst)
    !originals;
  a
