module Graph = Graphstore.Graph

type mode =
  | Exact
  | Approx of { ins : int; del : int; sub : int }
  | Relax of { beta : int; gamma : int }

let pp_mode ppf = function
  | Exact -> Format.pp_print_string ppf "exact"
  | Approx { ins; del; sub } -> Format.fprintf ppf "APPROX(ins=%d,del=%d,sub=%d)" ins del sub
  | Relax { beta; gamma } -> Format.fprintf ppf "RELAX(beta=%d,gamma=%d)" beta gamma

let conjunct_automaton ~graph ~ontology ~mode r =
  let intern = Graphstore.Interner.intern (Graph.interner graph) in
  let span name f = Obs.Trace.with_span ~cat:"build" name f in
  let m = span "build.thompson" (fun () -> Build.of_regex ~intern r) in
  let transformed =
    match mode with
    | Exact -> m
    | Approx { ins; del; sub } -> span "build.approx" (fun () -> Approx.transform ~ins ~del ~sub m)
    | Relax { beta; gamma } ->
      let class_node c = Graph.find_node graph (Graphstore.Interner.name (Graph.interner graph) c) in
      span "build.relax" (fun () -> Relax.transform ~beta ~gamma ~ontology ~class_node m)
  in
  span "build.eps_removal" (fun () -> Eps.remove transformed)
