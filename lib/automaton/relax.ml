let transform ~beta ~gamma ~ontology ~class_node m =
  let a = Nfa.copy m in
  let originals = ref [] in
  Nfa.iter_transitions m (fun s tr -> originals := (s, tr) :: !originals);
  let relax_property s (tr : Nfa.transition) d p =
    (* Rule (i): super-properties, transitively, at beta per step. *)
    List.iter
      (fun (q, depth) ->
        if depth > 0 then begin
          let closure = Array.of_list (Ontology.sub_properties_closure ontology q) in
          Nfa.add_transition
            ~ops:(tr.ops @ [ (Nfa.Super_prop depth, depth * beta) ])
            a s
            (Nfa.Sub_closure (d, closure))
            (tr.cost + (depth * beta))
            tr.dst
        end)
      (Ontology.property_ancestors ontology p);
    (* Rule (ii): type edge into the domain (forward) / range (backward). *)
    let target_class =
      match (d : Nfa.dir) with
      | Fwd -> Ontology.domain ontology p
      | Bwd -> Ontology.range ontology p
    in
    match target_class with
    | Some c -> (
      match class_node c with
      | Some oid ->
        Nfa.add_transition
          ~ops:(tr.ops @ [ (Nfa.Type_edge, gamma) ])
          a s (Nfa.Type_to oid) (tr.cost + gamma) tr.dst
      | None -> ())
    | None -> ()
  in
  List.iter
    (fun (s, (tr : Nfa.transition)) ->
      match tr.lbl with
      | Nfa.Sym (d, p) when Ontology.is_property ontology p -> relax_property s tr d p
      | Nfa.Sym _ | Nfa.Eps | Nfa.Any | Nfa.Any_dir _ | Nfa.Sub_closure _ | Nfa.Type_to _ -> ())
    !originals;
  a
