(* Dijkstra over the ε-subgraph from [start].  Costs are small non-negative
   ints, so a simple bucket/array priority scheme suffices; we use a sorted
   association list as the frontier (closures are tiny: a handful of states
   per Thompson fragment).

   Each settled state carries, besides its ε-distance, the operation tags
   accumulated along the (first-found) shortest ε-path — positive-cost ε
   transitions are exactly the APPROX deletions, so a closure step may stand
   for a whole run of deletes that the surviving transition must account
   for. *)
let eps_closure a start =
  let dist = Hashtbl.create 8 in
  Hashtbl.add dist start (0, []);
  let rec loop frontier =
    match frontier with
    | [] -> ()
    | (d, s) :: rest ->
      if d > fst (Hashtbl.find dist s) then loop rest
      else begin
        let s_ops = snd (Hashtbl.find dist s) in
        let rest =
          List.fold_left
            (fun acc (tr : Nfa.transition) ->
              match tr.lbl with
              | Nfa.Eps ->
                let nd = d + tr.cost in
                let better =
                  match Hashtbl.find_opt dist tr.dst with
                  | None -> true
                  | Some (old, _) -> nd < old
                in
                if better then begin
                  Hashtbl.replace dist tr.dst (nd, s_ops @ tr.ops);
                  List.merge compare [ (nd, tr.dst) ] acc
                end
                else acc
              | _ -> acc)
            rest (Nfa.out a s)
        in
        loop rest
      end
  in
  loop [ (0, start) ];
  dist

let remove a =
  let b = Nfa.create () in
  (* Mirror the state space. *)
  for _ = 1 to Nfa.n_states a - 1 do
    ignore (Nfa.fresh_state b)
  done;
  Nfa.set_initial b (Nfa.initial a);
  for s = 0 to Nfa.n_states a - 1 do
    let closure = eps_closure a s in
    Hashtbl.iter
      (fun u (d, ops) ->
        List.iter
          (fun (tr : Nfa.transition) ->
            match tr.lbl with
            | Nfa.Eps -> ()
            | lbl -> Nfa.add_transition ~ops:(ops @ tr.ops) b s lbl (tr.cost + d) tr.dst)
          (Nfa.out a u);
        match Nfa.final_weight a u with
        | Some w -> Nfa.set_final ~ops:(ops @ Nfa.final_ops a u) b s (d + w)
        | None -> ())
      closure
  done;
  Nfa.normalize b;
  b
