type dir = Rpq_regex.Regex.dir = Fwd | Bwd

type tlabel =
  | Eps
  | Sym of dir * int
  | Any
  | Any_dir of dir
  | Sub_closure of dir * int array
  | Type_to of int

type op =
  | Insert
  | Delete
  | Subst
  | Super_prop of int
  | Type_edge

type transition = { lbl : tlabel; cost : int; dst : int; ops : (op * int) list }

type t = {
  mutable out : transition list array;
  mutable state_count : int;
  mutable initial : int;
  finals : (int, int * (op * int) list) Hashtbl.t;
}

let create () =
  { out = Array.make 8 []; state_count = 1; initial = 0; finals = Hashtbl.create 8 }

let fresh_state t =
  let cap = Array.length t.out in
  if t.state_count >= cap then begin
    let out = Array.make (2 * cap) [] in
    Array.blit t.out 0 out 0 t.state_count;
    t.out <- out
  end;
  let s = t.state_count in
  t.state_count <- t.state_count + 1;
  s

let n_states t = t.state_count
let initial t = t.initial

let check_state t s ctx =
  if s < 0 || s >= t.state_count then invalid_arg (Printf.sprintf "Nfa.%s: unknown state %d" ctx s)

let set_initial t s =
  check_state t s "set_initial";
  t.initial <- s

let add_transition ?(ops = []) t src lbl cost dst =
  check_state t src "add_transition";
  check_state t dst "add_transition";
  if cost < 0 then invalid_arg "Nfa.add_transition: negative cost";
  t.out.(src) <- { lbl; cost; dst; ops } :: t.out.(src)

let set_final ?(ops = []) t s weight =
  check_state t s "set_final";
  if weight < 0 then invalid_arg "Nfa.set_final: negative weight";
  match Hashtbl.find_opt t.finals s with
  | Some (w, _) when w <= weight -> ()
  | _ -> Hashtbl.replace t.finals s (weight, ops)

let clear_final t s = Hashtbl.remove t.finals s
let is_final t s = Hashtbl.mem t.finals s
let final_weight t s = Option.map fst (Hashtbl.find_opt t.finals s)

let final_ops t s =
  match Hashtbl.find_opt t.finals s with Some (_, ops) -> ops | None -> []

let finals t =
  Hashtbl.fold (fun s (w, _) acc -> (s, w) :: acc) t.finals [] |> List.sort compare

let out t s =
  check_state t s "out";
  t.out.(s)

let iter_transitions t f =
  for s = 0 to t.state_count - 1 do
    List.iter (fun tr -> f s tr) t.out.(s)
  done

let n_transitions t =
  let n = ref 0 in
  iter_transitions t (fun _ _ -> incr n);
  !n

(* Sort each state's transitions so identical labels are adjacent, and keep
   only the cheapest transition for a given (label, destination) pair: the
   others can never contribute a smaller distance in the product automaton. *)
let normalize t =
  let key tr = (tr.lbl, tr.dst) in
  for s = 0 to t.state_count - 1 do
    let sorted =
      List.stable_sort
        (fun a b ->
          let c = compare (key a) (key b) in
          if c <> 0 then c else compare a.cost b.cost)
        t.out.(s)
    in
    let rec dedup = function
      | a :: (b :: _ as rest) when key a = key b -> dedup (a :: List.tl rest)
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    t.out.(s) <- dedup sorted
  done

let has_eps t =
  let found = ref false in
  iter_transitions t (fun _ tr -> match tr.lbl with Eps -> found := true | _ -> ());
  !found

let copy t =
  {
    out = Array.map (fun l -> l) (Array.sub t.out 0 (Array.length t.out));
    state_count = t.state_count;
    initial = t.initial;
    finals = Hashtbl.copy t.finals;
  }

let pp_tlabel name ppf = function
  | Eps -> Format.pp_print_string ppf "eps"
  | Sym (Fwd, a) -> Format.pp_print_string ppf (name a)
  | Sym (Bwd, a) -> Format.fprintf ppf "%s-" (name a)
  | Any -> Format.pp_print_char ppf '*'
  | Any_dir Fwd -> Format.pp_print_char ppf '_'
  | Any_dir Bwd -> Format.pp_print_string ppf "_-"
  | Sub_closure (d, ls) ->
    Format.fprintf ppf "{%s}%s"
      (String.concat "," (Array.to_list (Array.map name ls)))
      (match d with Fwd -> "" | Bwd -> "-")
  | Type_to c -> Format.fprintf ppf "type->#%d" c

let op_name = function
  | Insert -> "ins"
  | Delete -> "del"
  | Subst -> "sub"
  | Super_prop _ -> "relax-sp"
  | Type_edge -> "relax-dr"

let pp_op ppf (op, c) =
  match op with
  | Super_prop depth -> Format.fprintf ppf "relax-sp^%d(+%d)" depth c
  | op -> Format.fprintf ppf "%s(+%d)" (op_name op) c

let pp_ops ppf = function
  | [] -> ()
  | ops ->
    Format.pp_print_string ppf " [";
    List.iteri (fun i o -> Format.fprintf ppf (if i = 0 then "%a" else ",%a") pp_op o) ops;
    Format.pp_print_char ppf ']'

let pp ?(name = string_of_int) ppf t =
  Format.fprintf ppf "@[<v>states=%d initial=%d@," t.state_count t.initial;
  List.iter
    (fun (s, w) -> Format.fprintf ppf "final %d (weight %d)%a@," s w pp_ops (final_ops t s))
    (finals t);
  iter_transitions t (fun s tr ->
      Format.fprintf ppf "%d --%a/%d--> %d%a@," s (pp_tlabel name) tr.lbl tr.cost tr.dst pp_ops
        tr.ops);
  Format.fprintf ppf "@]"
