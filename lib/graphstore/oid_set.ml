type t = {
  mutable bits : Bytes.t;
  mutable cardinal : int;
}

let create ?(capacity = 1024) () =
  { bits = Bytes.make ((max capacity 8 + 7) / 8) '\000'; cardinal = 0 }

let ensure t oid =
  let needed = (oid / 8) + 1 in
  let cap = Bytes.length t.bits in
  if needed > cap then begin
    let bits = Bytes.make (max needed (2 * cap)) '\000' in
    Bytes.blit t.bits 0 bits 0 cap;
    t.bits <- bits
  end

let mem t oid =
  if oid < 0 then invalid_arg "Oid_set.mem: negative oid";
  let byte = oid / 8 in
  byte < Bytes.length t.bits
  && Char.code (Bytes.unsafe_get t.bits byte) land (1 lsl (oid land 7)) <> 0

let add_new t oid =
  if oid < 0 then invalid_arg "Oid_set.add_new: negative oid";
  ensure t oid;
  let byte = oid / 8 in
  let mask = 1 lsl (oid land 7) in
  let v = Char.code (Bytes.unsafe_get t.bits byte) in
  if v land mask <> 0 then false
  else begin
    Bytes.unsafe_set t.bits byte (Char.chr (v lor mask));
    t.cardinal <- t.cardinal + 1;
    true
  end

let add t oid = ignore (add_new t oid)

let remove t oid =
  if mem t oid then begin
    let byte = oid / 8 in
    let mask = 1 lsl (oid land 7) in
    let v = Char.code (Bytes.get t.bits byte) in
    Bytes.set t.bits byte (Char.chr (v land lnot mask));
    t.cardinal <- t.cardinal - 1
  end

let cardinal t = t.cardinal

let is_empty t = t.cardinal = 0

let iter t f =
  let n = Bytes.length t.bits in
  for byte = 0 to n - 1 do
    let v = Char.code (Bytes.unsafe_get t.bits byte) in
    if v <> 0 then
      for bit = 0 to 7 do
        if v land (1 lsl bit) <> 0 then f ((byte * 8) + bit)
      done
  done

let to_list t =
  let acc = ref [] in
  iter t (fun oid -> acc := oid :: !acc);
  List.rev !acc

let union_into dst src = iter src (fun oid -> add dst oid)

let of_iter producer =
  let t = create () in
  producer (add t);
  t

let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.cardinal <- 0
