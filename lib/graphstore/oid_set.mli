(** Growable bit-sets over node object identifiers (oids).

    Sparksee exposes set operations over oid collections backed by bitmap
    vectors (Martinez-Bazan et al., IDEAS 2012); the paper's seeding functions
    ([GetAllNodesByLabel], [GetAllStartNodesByLabel]) rely on them to keep the
    set of already-emitted seed nodes distinct.  This module is the
    corresponding substrate: a dense bitmap over oids with the operations the
    engine needs. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty set.  [capacity] is a hint for the largest expected oid. *)

val mem : t -> int -> bool

val add : t -> int -> unit
(** [add t oid] inserts [oid]; the set grows transparently. *)

val add_new : t -> int -> bool
(** [add_new t oid] inserts [oid] and reports whether it was absent — the
    common test-and-set used for dedup. *)

val remove : t -> int -> unit

val cardinal : t -> int

val is_empty : t -> bool

val iter : t -> (int -> unit) -> unit
(** Iterate over members in increasing oid order. *)

val to_list : t -> int list
(** Members in increasing oid order. *)

val union_into : t -> t -> unit
(** [union_into dst src] adds all members of [src] to [dst]. *)

val of_iter : ((int -> unit) -> unit) -> t
(** [of_iter producer] collects every oid [producer] feeds to its callback —
    the bridge from the graph store's iterator API to a set. *)

val clear : t -> unit
