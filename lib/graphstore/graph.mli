(** The data-graph store.

    This is the substrate that stands in for Sparksee in the paper's
    architecture (Fig. 1).  It stores a directed edge-labelled graph
    [G = (V_G, E_G, Sigma)]:

    - every node has a unique string label (the paper stores it as an indexed
      Sparksee attribute; here it is an inverted index from label to oid);
    - every edge has a label drawn from [Sigma ∪ {type}], interned to an
      [int]; per-label adjacency is indexed in both directions, which mirrors
      Sparksee's "indexed neighbours" configuration the paper enables;
    - the functions {!neighbors}, {!heads_by_label}, {!tails_by_label} and
      {!tails_and_heads} correspond to the Sparksee API calls [Neighbors],
      [Heads], [Tails] and [TailsAndHeads] that Omega uses (§3.1).

    Oids are dense integers allocated from 0, so client code can use arrays
    and {!Oid_set} bitmaps keyed by oid.

    The store has two phases.  During the {e build} phase, adjacency lives in
    per-label hashtables and every construction function is available.
    {!freeze} then distils the adjacency into a compressed sparse row (CSR)
    index — per used label and direction, an offsets/targets int-array pair
    with each node's row sorted ascending — and every traversal function
    becomes a zero-allocation range scan over it.  Mutating a frozen graph is
    allowed: it simply drops the index (queries fall back to the hashtables)
    until {!freeze} is called again. *)

type t

type dir = Out | In | Both
(** Traversal direction relative to a node: outgoing edges, incoming edges,
    or both. *)

val create : ?initial_nodes:int -> unit -> t

val interner : t -> Interner.t
(** The label interner shared with the ontology. *)

val type_label : t -> int
(** The interned id of the distinguished [type] label. *)

(** {1 Construction} *)

val add_node : t -> string -> int
(** [add_node g label] returns the oid of the node with the given unique
    label, creating it if needed (idempotent). *)

val add_edge : t -> int -> int -> int -> unit
(** [add_edge g src label dst] adds a directed edge.  Duplicate edges are
    stored as given; generators are responsible for dedup. *)

val add_edge_s : t -> int -> string -> int -> unit
(** [add_edge_s g src label dst] interns [label] and adds the edge. *)

(** {1 Freezing}

    Call {!freeze} once the graph is loaded, before running queries: the
    engine's hot path ([Succ]'s neighbour scans) is allocation-free only on
    the frozen index. *)

val freeze : t -> unit
(** Build the CSR index from the current adjacency.  Idempotent; invalidated
    automatically by {!add_node}/{!add_edge}. *)

val unfreeze : t -> unit
(** Drop the CSR index, reverting traversals to the hashtable path (used by
    benchmarks and tests to compare both). *)

val frozen : t -> bool

val csr_bytes : t -> int
(** Heap footprint of the CSR index in bytes, 0 when not frozen. *)

(** {1 Lookup} *)

val find_node : t -> string -> int option
(** Inverted-index lookup: oid of the node labelled [label], if any. *)

val node_label : t -> int -> string
(** @raise Invalid_argument on an unallocated oid. *)

val n_nodes : t -> int
val n_edges : t -> int

val labels : t -> int list
(** All edge labels present in the graph ([Sigma ∪ {type}] if [type] edges
    exist), in interned-id order. *)

val mem_edge : t -> int -> int -> int -> bool
(** [mem_edge g src label dst] — linear in the out-degree of [src] under
    [label]. *)

(** {1 Traversal (the Sparksee API surface)} *)

val neighbors : t -> int -> int -> dir -> int list
(** [neighbors g n label dir]: nodes connected to [n] by a [label] edge in
    the given direction.  [Both] concatenates outgoing then incoming.  On a
    frozen graph each direction comes out in ascending oid order; prefer
    {!iter_neighbors}, which allocates nothing. *)

val iter_neighbors : t -> int -> int -> dir -> (int -> unit) -> unit
(** Allocation-free variant of {!neighbors}: a single offset-range scan on a
    frozen graph. *)

val iter_neighbors_any : t -> int -> (int -> unit) -> unit
(** All neighbours of [n] over every label, both directions — the retrieval
    pattern Omega uses for the APPROX wildcard [*] (the paper issues
    [Neighbors] over the generic ['edge'] type plus [type], in both
    directions).  Nodes reachable via several labels are visited once per
    connecting edge. *)

val iter_neighbors_all_labels : t -> int -> dir -> (int -> unit) -> unit
(** Neighbours of [n] under {e every} label in one direction (the APPROX
    [Any_dir] transition): on a frozen graph, a merged scan of the per-label
    ranges. *)

val iter_neighbors_labels : t -> int -> int array -> dir -> (int -> unit) -> unit
(** Neighbours of [n] under a restricted label set (the RELAX sub-property
    closure), visiting the labels' ranges in the order given. *)

val has_adjacent : t -> int -> int -> dir -> bool
(** [has_adjacent g n label dir]: whether [n] carries at least one [label]
    edge in the given direction — O(1) on a frozen graph.  Seeding uses this
    to enumerate start nodes without materialising oid sets. *)

val tails_by_label : t -> int -> Oid_set.t
(** Sources of all edges carrying [label] (Sparksee [Tails]). *)

val heads_by_label : t -> int -> Oid_set.t
(** Targets of all edges carrying [label] (Sparksee [Heads]). *)

val tails_and_heads : t -> int -> Oid_set.t
(** Union of {!tails_by_label} and {!heads_by_label}. *)

val out_degree : t -> int -> int -> int
(** [out_degree g n label]. *)

val in_degree : t -> int -> int -> int

(** {1 Whole-graph iteration} *)

val iter_nodes : t -> (int -> unit) -> unit
(** Visit every oid in increasing order. *)

val iter_edges : t -> (int -> int -> int -> unit) -> unit
(** [iter_edges g f] applies [f src label dst] to every stored edge. *)

(** {1 Statistics} *)

type stats = {
  nodes : int;
  edges : int;
  distinct_labels : int;
  max_out_degree : int;  (** largest out-degree under a single label *)
  max_in_degree : int;  (** largest in-degree under a single label *)
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
